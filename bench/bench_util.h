#ifndef JXP_BENCH_BENCH_UTIL_H_
#define JXP_BENCH_BENCH_UTIL_H_

#include <string>
#include <vector>

#include "common/flags.h"
#include "core/simulation.h"
#include "crawler/partitioner.h"
#include "datasets/collections.h"

namespace jxp {
namespace bench {

/// Common knobs of the paper-reproduction benches. Every bench binary runs
/// with reduced defaults (so the whole suite finishes in minutes on one
/// core) and accepts flags to go to paper scale:
///   --scale=1.0 --peers-per-category=10 --meetings=3000 --seed=7 ...
struct BenchConfig {
  /// Collection size multiplier (1.0 = the paper's collection sizes).
  double amazon_scale = 0.12;
  double web_scale = 0.05;
  /// Network shape (paper: 10 peers per category = 100 peers).
  size_t peers_per_category = 10;
  /// Meetings to simulate and evaluation cadence.
  size_t meetings = 1500;
  size_t eval_every = 100;
  /// Top-k compared (paper: 1000; Figure 9 uses 10000).
  size_t top_k = 1000;
  /// Query batch size of the query-serving benches (--queries=N).
  size_t queries = 200;
  /// Zipf exponent of the repeated-query trace of micro_query_throughput
  /// (--zipf_s / --zipf-s): the i-th distinct query of the pool is drawn
  /// with probability proportional to 1/(i+1)^zipf_s, the skew real web
  /// query logs show and the regime the serving-tier caches exist for.
  double zipf_s = 1.0;
  uint64_t seed = 7;
  /// Telemetry output: when non-empty, a JSON-lines trace sink is installed
  /// at this path (spans, events, and — at exit — a metrics snapshot).
  /// Flag spellings --metrics_out=PATH and --metrics-out=PATH both work.
  std::string metrics_out;
  /// Meeting byte accounting: --wire=estimated (the paper's analytic model,
  /// the default) or --wire=measured (encode every meeting through the
  /// binary wire format and count real frame bytes). The traffic summary
  /// reports both totals either way.
  core::MeetingWireMode wire_mode = core::MeetingWireMode::kEstimated;

  /// Parses the standard flags; unknown flags abort.
  static BenchConfig FromFlags(int argc, char** argv);
};

/// Builds a collection by name ("amazon" or "webcrawl") at the configured
/// scale.
datasets::Collection MakeCollection(const std::string& name, const BenchConfig& config);

/// The paper's Section 6.1 peer assignment: thematic crawls with
/// peers_per_category crawlers per category, with a crawl budget
/// proportional to the collection size (fragments overlap ~3x).
std::vector<std::vector<graph::PageId>> PaperPartition(
    const datasets::Collection& collection, const BenchConfig& config, uint64_t seed);

/// JXP options used by the benches: the paper's epsilon = 0.85 and a
/// tolerance tight enough for the error metrics yet fast.
core::JxpOptions BenchJxpOptions();

/// Prints "k v1 v2 ..." rows; helpers to keep bench output uniform.
void PrintHeader(const std::string& title, const datasets::Collection& collection,
                 const BenchConfig& config);
void PrintRow(const std::vector<double>& values);

/// Runs `sim` for config.meetings meetings, evaluating every
/// config.eval_every; prints "meetings footrule linear_error" rows with the
/// given label column and emits each point as a "convergence" trace event.
void RunConvergenceSeries(core::JxpSimulation& sim, const BenchConfig& config,
                          const std::string& label);

/// Prints the network-wide traffic bottom line ("# total traffic: ... MB
/// over N meetings, mean ... KB / max ... KB per meeting") from
/// Network::AggregateTraffic, and emits it as a "traffic_summary" event.
void PrintTrafficSummary(const core::JxpSimulation& sim);

}  // namespace bench
}  // namespace jxp

#endif  // JXP_BENCH_BENCH_UTIL_H_
