// Extension bench (Section 7 open problem): ranking distortion under
// score-inflation attackers, with and without the honest peers' message
// defenses. Reports the footrule distortion and the worst over-estimation
// factor at honest peers as the attacker fraction grows.

#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"

namespace jxp {
namespace bench {

void Run(int argc, char** argv) {
  BenchConfig config = BenchConfig::FromFlags(argc, argv);
  if (config.meetings > 800) config.meetings = 800;
  const datasets::Collection collection = MakeCollection("amazon", config);
  PrintHeader("Extension: inflation attackers vs message defenses (Amazon)", collection,
              config);
  const auto fragments = PaperPartition(collection, config, config.seed);

  std::printf("attackers\tdefense\tfootrule\tworst_overestimation\trejected_meetings\n");
  for (const size_t attackers : {0u, 5u, 15u, 30u}) {
    for (const bool defended : {false, true}) {
      core::SimulationConfig sim_config;
      sim_config.jxp = BenchJxpOptions();
      sim_config.jxp.defense.enabled = defended;
      sim_config.seed = config.seed;
      sim_config.eval_top_k = config.top_k;
      sim_config.num_attackers = attackers;
      sim_config.attack.type = core::AttackOptions::Type::kScoreInflation;
      sim_config.attack.inflation_factor = 25.0;
      core::JxpSimulation sim(collection.data.graph, fragments, sim_config);
      sim.RunMeetings(config.meetings);

      double worst = 0;
      size_t rejected = 0;
      for (const core::JxpPeer& peer : sim.peers()) {
        rejected += peer.rejected_meetings();
        if (peer.id() < attackers) continue;  // Honest peers only.
        const graph::Subgraph& fragment = peer.fragment();
        for (graph::Subgraph::LocalIndex i = 0; i < fragment.NumLocalPages(); ++i) {
          worst = std::max(worst, peer.local_scores()[i] /
                                      sim.global_scores()[fragment.GlobalId(i)]);
        }
      }
      std::printf("%zu\t%s\t%.6f\t%.2f\t%zu\n", attackers, defended ? "on" : "off",
                  sim.Evaluate().footrule, worst, rejected);
      std::fflush(stdout);
    }
  }
}

}  // namespace bench
}  // namespace jxp

int main(int argc, char** argv) {
  jxp::bench::Run(argc, argv);
  return 0;
}
