// Ablation A1: synopsis choice for the pre-meetings strategy — min-wise
// permutations (the paper's pick) vs Bloom filters vs Flajolet-Martin hash
// sketches vs exact sets. Reports containment-estimation error against wire
// size, over synthetic set pairs with controlled overlap.

#include <cmath>
#include <cstdio>
#include <unordered_set>

#include "common/flags.h"
#include "common/random.h"
#include "synopses/bloom.h"
#include "synopses/hash_sketch.h"
#include "synopses/minwise.h"

namespace jxp {
namespace bench {

namespace {

struct Trial {
  std::vector<uint64_t> a;
  std::vector<uint64_t> b;
  double true_containment;  // |A ∩ B| / |B|.
};

Trial MakeTrial(size_t size_a, size_t size_b, double containment, Random& rng) {
  Trial t;
  const size_t shared = static_cast<size_t>(containment * static_cast<double>(size_b));
  uint64_t next = 1;
  for (size_t i = 0; i < shared; ++i) {
    const uint64_t key = next++;
    t.a.push_back(key);
    t.b.push_back(key);
  }
  for (size_t i = shared; i < size_a; ++i) t.a.push_back(1000000 + next++);
  for (size_t i = shared; i < size_b; ++i) t.b.push_back(2000000 + next++);
  rng.Shuffle(t.a);
  rng.Shuffle(t.b);
  t.true_containment = static_cast<double>(shared) / static_cast<double>(size_b);
  return t;
}

}  // namespace

void Run(int argc, char** argv) {
  Flags flags;
  JXP_CHECK_OK(flags.Parse(argc, argv));
  const size_t trials = static_cast<size_t>(flags.GetInt("trials", 40));
  const size_t set_size = static_cast<size_t>(flags.GetInt("set-size", 2000));
  Random rng(static_cast<uint64_t>(flags.GetInt("seed", 5)));

  std::printf("# Ablation A1: containment estimation error vs synopsis bytes\n");
  std::printf("# %zu trials, |A| = |B| = %zu, containment swept over [0, 1]\n", trials,
              set_size);
  std::printf("synopsis\tbytes\tmean_abs_error\tmax_abs_error\n");

  const synopses::MinWiseFamily family_small(64, 42);
  const synopses::MinWiseFamily family_big(256, 42);

  double err_mips64 = 0, max_mips64 = 0;
  double err_mips256 = 0, max_mips256 = 0;
  double err_bloom = 0, max_bloom = 0;
  double err_sketch = 0, max_sketch = 0;
  double bytes_bloom = 0, bytes_sketch = 0;

  for (size_t trial = 0; trial < trials; ++trial) {
    const double containment = static_cast<double>(trial) / static_cast<double>(trials);
    const Trial t = MakeTrial(set_size, set_size, containment, rng);
    auto record = [&](double estimate, double& err, double& worst) {
      const double e = std::abs(estimate - t.true_containment);
      err += e / static_cast<double>(trials);
      worst = std::max(worst, e);
    };
    // MIPs.
    {
      const auto a64 = family_small.Sign(std::span<const uint64_t>(t.a));
      const auto b64 = family_small.Sign(std::span<const uint64_t>(t.b));
      record(EstimateContainment(a64, b64), err_mips64, max_mips64);
      const auto a256 = family_big.Sign(std::span<const uint64_t>(t.a));
      const auto b256 = family_big.Sign(std::span<const uint64_t>(t.b));
      record(EstimateContainment(a256, b256), err_mips256, max_mips256);
    }
    // Bloom.
    {
      synopses::BloomFilter a(16384, 4), b(16384, 4);
      for (uint64_t k : t.a) a.Add(k);
      for (uint64_t k : t.b) b.Add(k);
      bytes_bloom = static_cast<double>(a.SizeBytes());
      record(EstimateContainment(a, b), err_bloom, max_bloom);
    }
    // FM hash sketch.
    {
      synopses::HashSketch a(256), b(256);
      for (uint64_t k : t.a) a.Add(k);
      for (uint64_t k : t.b) b.Add(k);
      bytes_sketch = static_cast<double>(a.SizeBytes());
      record(EstimateContainment(a, b), err_sketch, max_sketch);
    }
  }
  std::printf("mips64\t%zu\t%.4f\t%.4f\n",
              static_cast<size_t>(family_small.NumPermutations() * 8 + 8), err_mips64,
              max_mips64);
  std::printf("mips256\t%zu\t%.4f\t%.4f\n",
              static_cast<size_t>(family_big.NumPermutations() * 8 + 8), err_mips256,
              max_mips256);
  std::printf("bloom16k\t%.0f\t%.4f\t%.4f\n", bytes_bloom, err_bloom, max_bloom);
  std::printf("fm256\t%.0f\t%.4f\t%.4f\n", bytes_sketch, err_sketch, max_sketch);
  std::printf("exact\t%zu\t0.0000\t0.0000\n", set_size * 8);
}

}  // namespace bench
}  // namespace jxp

int main(int argc, char** argv) {
  jxp::bench::Run(argc, argv);
  return 0;
}
