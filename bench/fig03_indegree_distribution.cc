// Figure 3: in-degree distributions (log-log) of the two collections.
// The paper shows both are close to a power law; this bench prints the
// log-binned distribution and the MLE exponent for each collection.

#include <cstdio>

#include "bench/bench_util.h"
#include "graph/stats.h"

namespace jxp {
namespace bench {

void Run(int argc, char** argv) {
  const BenchConfig config = BenchConfig::FromFlags(argc, argv);
  for (const char* name : {"amazon", "webcrawl"}) {
    const datasets::Collection collection = MakeCollection(name, config);
    PrintHeader(std::string("Figure 3: in-degree distribution (") + name + ")",
                collection, config);
    const auto histogram =
        DegreeHistogram(collection.data.graph, graph::DegreeKind::kIn);
    std::printf("indegree\tnum_pages\n");
    for (const auto& [degree, count] : graph::LogBinnedHistogram(histogram, 5)) {
      std::printf("%.2f\t%.0f\n", degree, count);
    }
    std::printf("# power-law exponent (MLE, xmin=4): %.3f\n",
                graph::PowerLawExponentMle(histogram, 4));
    std::printf("# dangling pages: %zu, largest WCC fraction: %.3f\n\n",
                graph::CountDangling(collection.data.graph),
                graph::LargestWccFraction(collection.data.graph));
  }
}

}  // namespace bench
}  // namespace jxp

int main(int argc, char** argv) {
  jxp::bench::Run(argc, argv);
  return 0;
}
