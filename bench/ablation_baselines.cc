// Baseline comparison: JXP vs the disjoint-partition distributed-PageRank
// family (ServerRank-style, Section 2.2) vs purely local scoring. The
// disjoint approaches need a clean partition — here they get one (pages
// assigned uniquely by category stripes), while JXP runs on overlapping
// autonomous crawls of the same collection and still converges closer to
// the true PageRank.

#include <cstdio>

#include "bench/bench_util.h"
#include "core/baselines.h"
#include "metrics/error.h"

namespace jxp {
namespace bench {

namespace {

core::AccuracyPoint EvaluateDense(const std::vector<double>& approx,
                                  std::span<const metrics::ScoredItem> global_top_k) {
  std::unordered_map<uint32_t, double> map;
  map.reserve(approx.size() * 2);
  for (uint32_t p = 0; p < approx.size(); ++p) map[p] = approx[p];
  return core::EvaluateAccuracy(map, global_top_k);
}

}  // namespace

void Run(int argc, char** argv) {
  const BenchConfig config = BenchConfig::FromFlags(argc, argv);
  const datasets::Collection collection = MakeCollection("amazon", config);
  PrintHeader("Baselines: JXP vs ServerRank-style vs local-only (Amazon)", collection,
              config);

  // Disjoint site assignment for the baselines: peers_per_category stripes
  // within each category (the favorable case for ServerRank).
  const uint32_t num_sites = static_cast<uint32_t>(
      config.peers_per_category * collection.data.num_categories);
  std::vector<uint32_t> site_of(collection.data.graph.NumNodes());
  std::vector<uint32_t> category_counter(collection.data.num_categories, 0);
  for (graph::PageId p = 0; p < collection.data.graph.NumNodes(); ++p) {
    const uint32_t category = collection.data.category[p];
    site_of[p] = static_cast<uint32_t>(category * config.peers_per_category +
                                       category_counter[category] % config.peers_per_category);
    category_counter[category]++;
  }

  pagerank::PageRankOptions pr_options;
  pr_options.tolerance = 1e-12;

  // JXP on overlapping crawls.
  core::SimulationConfig sim_config;
  sim_config.jxp = BenchJxpOptions();
  sim_config.seed = config.seed;
  sim_config.eval_top_k = config.top_k;
  core::JxpSimulation sim(collection.data.graph,
                          PaperPartition(collection, config, config.seed), sim_config);

  const core::AccuracyPoint local_only = EvaluateDense(
      core::LocalOnlyScores(collection.data.graph, site_of, num_sites, pr_options),
      sim.global_top_k());
  const core::AccuracyPoint serverrank = EvaluateDense(
      core::ServerRankScores(collection.data.graph, site_of, num_sites, pr_options),
      sim.global_top_k());
  const core::AccuracyPoint jxp_initial = sim.Evaluate();
  sim.RunMeetings(config.meetings);
  const core::AccuracyPoint jxp_final = sim.Evaluate();

  std::printf("method\tfootrule\tlinear_error\n");
  std::printf("local_only\t%.6f\t%.8g\n", local_only.footrule, local_only.linear_error);
  std::printf("serverrank\t%.6f\t%.8g\n", serverrank.footrule, serverrank.linear_error);
  std::printf("jxp_0_meetings\t%.6f\t%.8g\n", jxp_initial.footrule,
              jxp_initial.linear_error);
  std::printf("jxp_%zu_meetings\t%.6f\t%.8g\n", sim.meetings_done(), jxp_final.footrule,
              jxp_final.linear_error);
}

}  // namespace bench
}  // namespace jxp

int main(int argc, char** argv) {
  jxp::bench::Run(argc, argv);
  return 0;
}
