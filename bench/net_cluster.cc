// Multi-process loopback cluster driver (DESIGN.md §6k): forks N peer
// daemons, each owning one JXP peer loaded from a shared initial state,
// replays the exact meeting schedule of an in-process JxpSimulation oracle
// through the control protocol, and verifies that the networked cluster
// converges to *bit-identical* scores. With --chaos, every daemon fronts
// itself with a fault-injecting proxy and the run instead verifies crash-free
// degradation plus exact injected-vs-detected fault accounting.
//
//   net_cluster --peers=8 --meetings=64 --nodes=400 --seed=7 \
//       --out-dir=/tmp/net_cluster [--chaos --drop=0.05 --truncate=0.05 \
//       --corrupt=0.05] [--restart-peer=0]
//
// Exit code 0 = all checks passed. Per-daemon JSONL telemetry is written to
// <out-dir>/peer_<id>.jsonl; the driver prints a one-line JSON summary.

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/flags.h"
#include "common/random.h"
#include "core/jxp_peer.h"
#include "core/simulation.h"
#include "core/state_io.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "net/chaos_proxy.h"
#include "net/control_client.h"
#include "net/event_loop.h"
#include "net/peer_daemon.h"
#include "obs/json_writer.h"

namespace jxp {
namespace {

struct ClusterConfig {
  size_t peers = 8;
  size_t meetings = 64;
  size_t nodes = 400;
  uint64_t seed = 7;
  std::string out_dir = "/tmp/net_cluster";
  /// Thm 5.3 sampling cadence (meetings between checkpoints).
  size_t check_every = 16;
  /// Peer to SIGTERM + restart-from-checkpoint halfway through (-1 = none).
  int64_t restart_peer = 0;
  bool chaos = false;
  double drop = 0.05;
  double truncate = 0.05;
  double corrupt = 0.05;
};

core::JxpOptions PeerOptions() {
  core::JxpOptions options;
  options.wire_mode = core::MeetingWireMode::kMeasured;
  return options;
}

/// Random overlapping fragments: every node lands on 2 peers, and every
/// peer gets a contiguous base share so none is empty.
std::vector<std::vector<graph::PageId>> MakeFragments(size_t nodes, size_t peers,
                                                      uint64_t seed) {
  std::vector<std::vector<graph::PageId>> fragments(peers);
  Random rng(seed ^ 0x9e3779b97f4a7c15ULL);
  for (graph::PageId page = 0; page < nodes; ++page) {
    const size_t base = page % peers;
    fragments[base].push_back(page);
    const size_t extra = static_cast<size_t>(rng.NextBounded(peers));
    if (extra != base) fragments[extra].push_back(page);
  }
  return fragments;
}

std::string StatePath(const std::string& dir, const char* kind, size_t peer) {
  return dir + "/" + kind + "_peer_" + std::to_string(peer) + ".jxp";
}

// ---------------------------------------------------------------------------
// Daemon child process.

int g_shutdown_write_fd = -1;

void OnSigTerm(int) {
  const uint8_t byte = 1;
  // write() is async-signal-safe; everything else happens on the loop.
  (void)!::write(g_shutdown_write_fd, &byte, 1);
}

/// Child body: load state, serve until SIGTERM, checkpoint, dump telemetry,
/// exit 0. Reports "<bound_port> <advertised_port>\n" on `report_fd`.
int RunDaemon(const ClusterConfig& config, size_t peer_id,
              const std::string& state_in, int report_fd) {
  StatusOr<core::JxpPeer> loaded = core::LoadPeerState(state_in, PeerOptions());
  if (!loaded.ok()) {
    std::fprintf(stderr, "peer %zu: load failed: %s\n", peer_id,
                 loaded.status().ToString().c_str());
    return 1;
  }

  int shutdown_pipe[2];
  if (::pipe(shutdown_pipe) != 0) return 1;
  g_shutdown_write_fd = shutdown_pipe[1];
  struct sigaction action = {};
  action.sa_handler = OnSigTerm;
  ::sigaction(SIGTERM, &action, nullptr);

  net::PeerDaemonOptions options;
  options.state_path = StatePath(config.out_dir, "ckpt", peer_id);
  options.shutdown_fd = shutdown_pipe[0];
  options.rng_seed = config.seed + peer_id;
  net::EventLoop loop;
  net::PeerDaemon daemon(std::make_unique<core::JxpPeer>(std::move(loaded.value())),
                         options);
  if (Status status = daemon.Start(&loop); !status.ok()) {
    std::fprintf(stderr, "peer %zu: start failed: %s\n", peer_id,
                 status.ToString().c_str());
    return 1;
  }

  std::unique_ptr<net::ChaosProxy> proxy;
  if (config.chaos) {
    net::ChaosProxyOptions proxy_options;
    proxy_options.target_port = daemon.bound_port();
    proxy_options.plan.message_drop_probability = config.drop;
    proxy_options.plan.truncation_probability = config.truncate;
    proxy_options.plan.corruption_probability = config.corrupt;
    proxy_options.seed = config.seed * 1000003 + peer_id;
    proxy = std::make_unique<net::ChaosProxy>(proxy_options);
    if (Status status = proxy->Start(); !status.ok()) {
      std::fprintf(stderr, "peer %zu: proxy start failed: %s\n", peer_id,
                   status.ToString().c_str());
      return 1;
    }
    daemon.set_advertised_port(proxy->bound_port());
  }

  char report[64];
  std::snprintf(report, sizeof(report), "%u %u\n", daemon.bound_port(),
                daemon.advertised_port());
  if (::write(report_fd, report, std::strlen(report)) < 0) return 1;
  ::close(report_fd);

  loop.Run();  // Until SIGTERM -> shutdown_fd -> BeginShutdown -> Stop.
  if (proxy != nullptr) proxy->Stop();

  // Per-peer JSONL telemetry: one line of final daemon (and injector)
  // accounting, aggregated by the driver after the children exit.
  const net::DaemonStats& stats = daemon.stats();
  obs::JsonWriter line;
  line.Field("peer_id", peer_id)
      .Field("num_meetings", daemon.peer().num_meetings())
      .Field("world_score", daemon.peer().world_score())
      .Field("accepts", stats.accepts)
      .Field("dials", stats.dials)
      .Field("meetings_initiated", stats.meetings_initiated)
      .Field("meetings_accepted", stats.meetings_accepted)
      .Field("meetings_declined", stats.meetings_declined)
      .Field("meeting_failures", stats.meeting_failures)
      .Field("truncations_detected", stats.truncations_detected)
      .Field("corruptions_detected", stats.corruptions_detected)
      .Field("bytes_sent", stats.bytes_sent)
      .Field("bytes_received", stats.bytes_received)
      .Field("wasted_bytes", stats.wasted_bytes)
      .Field("checkpoints", stats.checkpoints)
      .Field("protocol_errors", stats.protocol_errors);
  if (proxy != nullptr) {
    const net::ChaosProxyStats injected = proxy->stats();
    line.Field("injected_dropped", injected.blobs_dropped)
        .Field("injected_truncated", injected.blobs_truncated)
        .Field("injected_corrupted", injected.blobs_corrupted)
        .Field("blobs_forwarded", injected.blobs_forwarded);
  }
  std::ofstream out(config.out_dir + "/peer_" + std::to_string(peer_id) + ".jsonl",
                    std::ios::app);
  out << line.TakeLine() << "\n";
  return out.good() ? 0 : 1;
}

// ---------------------------------------------------------------------------
// Driver.

struct Child {
  pid_t pid = -1;
  uint16_t bound_port = 0;
  uint16_t advertised_port = 0;
};

/// Forks one daemon child and reads back its ports.
bool SpawnDaemon(const ClusterConfig& config, size_t peer_id,
                 const std::string& state_in, Child* child) {
  int report_pipe[2];
  if (::pipe(report_pipe) != 0) return false;
  const pid_t pid = ::fork();
  if (pid < 0) return false;
  if (pid == 0) {
    ::close(report_pipe[0]);
    ::_exit(RunDaemon(config, peer_id, state_in, report_pipe[1]));
  }
  ::close(report_pipe[1]);
  char buffer[64] = {};
  size_t filled = 0;
  while (filled < sizeof(buffer) - 1) {
    const ssize_t got = ::read(report_pipe[0], buffer + filled,
                               sizeof(buffer) - 1 - filled);
    if (got <= 0) break;
    filled += static_cast<size_t>(got);
    if (std::memchr(buffer, '\n', filled) != nullptr) break;
  }
  ::close(report_pipe[0]);
  unsigned bound = 0, advertised = 0;
  if (std::sscanf(buffer, "%u %u", &bound, &advertised) != 2) {
    std::fprintf(stderr, "driver: peer %zu failed to report ports\n", peer_id);
    return false;
  }
  child->pid = pid;
  child->bound_port = static_cast<uint16_t>(bound);
  child->advertised_port = static_cast<uint16_t>(advertised);
  return true;
}

/// SIGTERMs a child and reaps it; true iff it exited cleanly with 0.
bool StopDaemon(Child* child) {
  if (child->pid < 0) return true;
  ::kill(child->pid, SIGTERM);
  int wstatus = 0;
  if (::waitpid(child->pid, &wstatus, 0) != child->pid) return false;
  child->pid = -1;
  return WIFEXITED(wstatus) && WEXITSTATUS(wstatus) == 0;
}

/// Reads one aggregated uint64 field from every per-peer JSONL file (the
/// files hold a single flat object per line, so a string scan suffices).
uint64_t SumJsonlField(const ClusterConfig& config, const std::string& field) {
  uint64_t total = 0;
  for (size_t peer = 0; peer < config.peers; ++peer) {
    std::ifstream in(config.out_dir + "/peer_" + std::to_string(peer) + ".jsonl");
    std::string line;
    while (std::getline(in, line)) {
      const std::string needle = "\"" + field + "\":";
      const size_t at = line.find(needle);
      if (at == std::string::npos) continue;
      total += std::strtoull(line.c_str() + at + needle.size(), nullptr, 10);
    }
  }
  return total;
}

int RunDriver(const ClusterConfig& config) {
  std::string mkdir = "mkdir -p " + config.out_dir;
  if (std::system(mkdir.c_str()) != 0) return 1;
  for (size_t peer = 0; peer < config.peers; ++peer) {
    std::remove((config.out_dir + "/peer_" + std::to_string(peer) + ".jsonl").c_str());
  }

  // --- Oracle: the same cluster, in-process, on the same seed/schedule.
  Random graph_rng(config.seed);
  const graph::Graph global = graph::BarabasiAlbert(config.nodes, 3, graph_rng);
  core::SimulationConfig sim_config;
  sim_config.jxp = PeerOptions();
  sim_config.seed = config.seed;
  sim_config.record_meeting_log = true;
  core::JxpSimulation oracle(global, MakeFragments(config.nodes, config.peers, config.seed),
                             sim_config);
  if (Status status = oracle.SaveAllPeerStates(config.out_dir); !status.ok()) {
    std::fprintf(stderr, "driver: save initial states: %s\n", status.ToString().c_str());
    return 1;
  }
  // SaveAllPeerStates writes peer_<id>.jxp; rename to the "init" scheme so
  // checkpoints cannot collide with them.
  for (size_t peer = 0; peer < config.peers; ++peer) {
    const std::string from = config.out_dir + "/peer_" + std::to_string(peer) + ".jxp";
    std::rename(from.c_str(), StatePath(config.out_dir, "init", peer).c_str());
  }
  oracle.RunMeetings(config.meetings);
  const auto& schedule = oracle.meeting_log();
  std::fprintf(stderr, "driver: oracle done, %zu meetings scheduled\n",
               schedule.size());

  // --- Fork the cluster.
  std::vector<Child> children(config.peers);
  for (size_t peer = 0; peer < config.peers; ++peer) {
    if (!SpawnDaemon(config, peer, StatePath(config.out_dir, "init", peer),
                     &children[peer])) {
      std::fprintf(stderr, "driver: spawn of peer %zu failed\n", peer);
      return 1;
    }
  }
  std::fprintf(stderr, "driver: %zu daemons up\n", config.peers);

  int failures = 0;
  const auto check = [&failures](bool ok, const char* what) {
    if (!ok) {
      std::fprintf(stderr, "driver: CHECK FAILED: %s\n", what);
      ++failures;
    }
  };

  // --- Replay the oracle's schedule through the control protocol.
  size_t restarted_at = 0;
  size_t commanded = 0, applied = 0, torn = 0;
  for (size_t m = 0; m < schedule.size(); ++m) {
    // Mid-run graceful restart: SIGTERM -> checkpoint -> re-fork from the
    // checkpoint. In clean mode the final bit-identity check proves the
    // round trip lost nothing.
    if (config.restart_peer >= 0 && m == schedule.size() / 2 &&
        static_cast<size_t>(config.restart_peer) < config.peers) {
      const size_t target = static_cast<size_t>(config.restart_peer);
      check(StopDaemon(&children[target]), "restarted daemon exited cleanly");
      check(SpawnDaemon(config, target, StatePath(config.out_dir, "ckpt", target),
                        &children[target]),
            "restarted daemon came back");
      restarted_at = m;
    }

    const auto [initiator, partner] = schedule[m];
    net::ControlClient control;
    Status status = control.Connect(children[initiator].bound_port);
    net::MeetResultMessage result;
    if (status.ok()) {
      status = control.Meet(partner, children[partner].advertised_port, &result);
    }
    check(status.ok(), "meet command round trip");
    ++commanded;
    if (result.applied) ++applied;
    if (result.salvaged) ++torn;
    if (!config.chaos) {
      check(result.applied && !result.salvaged, "clean meeting applied exactly");
    }

    // --- Thm 5.3 sampling: networked scores never overestimate true PR.
    if ((m + 1) % config.check_every == 0 || m + 1 == schedule.size()) {
      constexpr double kUpperBoundSlack = 1e-9;
      for (size_t peer = 0; peer < config.peers; ++peer) {
        net::ControlClient sampler;
        if (!sampler.Connect(children[peer].bound_port).ok()) {
          check(false, "sampler connect");
          continue;
        }
        net::ScoresReplyMessage scores;
        if (!sampler.GetScores(&scores).ok()) {
          check(false, "sampler scores");
          continue;
        }
        for (const net::ScoreEntry& entry : scores.entries) {
          if (entry.score > oracle.global_scores()[entry.page] + kUpperBoundSlack) {
            check(false, "Theorem 5.3 never-overestimate at checkpoint");
            break;
          }
        }
      }
    }
  }

  // --- Final verification against the oracle.
  double max_abs_diff = 0;
  if (!config.chaos) {
    for (size_t peer = 0; peer < config.peers; ++peer) {
      net::ControlClient control;
      if (!control.Connect(children[peer].bound_port).ok()) {
        check(false, "final connect");
        continue;
      }
      net::ScoresReplyMessage scores;
      if (!control.GetScores(&scores).ok()) {
        check(false, "final scores");
        continue;
      }
      const core::JxpPeer& expect = oracle.peers()[peer];
      check(scores.world_score == expect.world_score(), "world score bit-identical");
      check(scores.entries.size() == expect.local_scores().size(),
            "local page count matches");
      const graph::Subgraph& fragment = expect.fragment();
      for (const net::ScoreEntry& entry : scores.entries) {
        const graph::Subgraph::LocalIndex local = fragment.LocalIndexOf(entry.page);
        if (local == graph::Subgraph::kNotLocal) {
          check(false, "page present in oracle fragment");
          continue;
        }
        const double diff = std::abs(entry.score - expect.local_scores()[local]);
        if (diff > max_abs_diff) max_abs_diff = diff;
        if (entry.score != expect.local_scores()[local]) {
          check(false, "local score bit-identical to oracle");
          break;
        }
      }
    }
  }

  // --- Shutdown and aggregate telemetry.
  // Torn-transfer detections on the responder side are EOF events, not
  // ordered with the initiator's MeetResult; give the loops a beat to
  // drain them before the final stats are frozen.
  ::usleep(300000);
  for (size_t peer = 0; peer < config.peers; ++peer) {
    check(StopDaemon(&children[peer]), "daemon exited cleanly with 0");
  }
  const uint64_t detected_truncations = SumJsonlField(config, "truncations_detected");
  const uint64_t detected_corruptions = SumJsonlField(config, "corruptions_detected");
  const uint64_t wasted = SumJsonlField(config, "wasted_bytes");
  uint64_t injected_torn = 0, injected_corrupted = 0;
  if (config.chaos) {
    injected_torn = SumJsonlField(config, "injected_dropped") +
                    SumJsonlField(config, "injected_truncated");
    injected_corrupted = SumJsonlField(config, "injected_corrupted");
    // Exact accounting: every injected fault is detected exactly once.
    check(detected_truncations == injected_torn,
          "injected drops+truncations == detected truncations");
    check(detected_corruptions == injected_corrupted,
          "injected corruptions == detected corruptions");
    check(injected_corrupted == 0 || wasted > 0, "corruption produced wasted bytes");
  } else {
    check(detected_truncations == 0, "no truncations in clean run");
    check(detected_corruptions == 0, "no corruptions in clean run");
    check(wasted == 0, "no wasted bytes in clean run");
  }

  obs::JsonWriter summary;
  summary.Field("bench", "net_cluster")
      .Field("peers", config.peers)
      .Field("meetings", commanded)
      .Field("applied", applied)
      .Field("salvaged", torn)
      .Field("chaos", config.chaos)
      .Field("restarted_at_meeting", restarted_at)
      .Field("max_abs_score_diff", max_abs_diff)
      .Field("detected_truncations", detected_truncations)
      .Field("detected_corruptions", detected_corruptions)
      .Field("injected_torn", injected_torn)
      .Field("injected_corrupted", injected_corrupted)
      .Field("wasted_bytes", wasted)
      .Field("failures", failures);
  std::printf("%s\n", summary.TakeLine().c_str());
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace jxp

int main(int argc, char** argv) {
  jxp::Flags flags;
  if (jxp::Status status = flags.Parse(argc, argv); !status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  jxp::ClusterConfig config;
  config.peers = static_cast<size_t>(flags.GetInt("peers", 8));
  config.meetings = static_cast<size_t>(flags.GetInt("meetings", 64));
  config.nodes = static_cast<size_t>(flags.GetInt("nodes", 400));
  config.seed = static_cast<uint64_t>(flags.GetInt("seed", 7));
  config.out_dir = flags.GetString("out-dir", flags.GetString("out_dir", "/tmp/net_cluster"));
  config.check_every = static_cast<size_t>(flags.GetInt("check-every", 16));
  config.restart_peer = flags.GetInt("restart-peer", 0);
  config.chaos = flags.GetBool("chaos", false);
  config.drop = flags.GetDouble("drop", 0.05);
  config.truncate = flags.GetDouble("truncate", 0.05);
  config.corrupt = flags.GetDouble("corrupt", 0.05);
  return jxp::RunDriver(config);
}
