// Multi-process loopback cluster driver (DESIGN.md §6k): forks N peer
// daemons, each owning one JXP peer loaded from a shared initial state,
// replays the exact meeting schedule of an in-process JxpSimulation oracle
// through the control protocol, and verifies that the networked cluster
// converges to *bit-identical* scores. With --chaos, every daemon fronts
// itself with a fault-injecting proxy and the run instead verifies crash-free
// degradation plus exact injected-vs-detected fault accounting.
//
// With --self-scheduled, the daemons instead drive their own meetings
// (MeetingScheduler + ConnectionPool, DESIGN.md §6l) and the driver samples
// wall-clock vs accuracy until the cluster reaches the accuracy the oracle
// had after --meetings meetings (fig. 4 analogue), checking Thm 5.3 at
// every sample and that pooled dials stay strictly below meetings.
//
//   net_cluster --peers=8 --meetings=64 --nodes=400 --seed=7 \
//       --out-dir=/tmp/net_cluster [--chaos --drop=0.05 --truncate=0.05 \
//       --corrupt=0.05] [--restart-peer=0] [--self-scheduled \
//       --meet-interval-ms=40 --sample-every-ms=250 --max-wall-ms=60000]
//
// Exit code 0 = all checks passed. Per-daemon JSONL telemetry is written to
// <out-dir>/peer_<id>.jsonl (plus self_scheduled.jsonl samples in the
// self-scheduled arm); the driver prints a one-line JSON summary.

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/flags.h"
#include "common/random.h"
#include "core/evaluation.h"
#include "core/jxp_peer.h"
#include "core/simulation.h"
#include "core/state_io.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "net/chaos_proxy.h"
#include "net/control_client.h"
#include "net/event_loop.h"
#include "net/peer_daemon.h"
#include "obs/json_writer.h"

namespace jxp {
namespace {

struct ClusterConfig {
  size_t peers = 8;
  size_t meetings = 64;
  size_t nodes = 400;
  uint64_t seed = 7;
  std::string out_dir = "/tmp/net_cluster";
  /// Thm 5.3 sampling cadence (meetings between checkpoints).
  size_t check_every = 16;
  /// Peer to SIGTERM + restart-from-checkpoint halfway through (-1 = none).
  int64_t restart_peer = 0;
  bool chaos = false;
  double drop = 0.05;
  double truncate = 0.05;
  double corrupt = 0.05;

  /// Fig. 4 analogue (DESIGN.md §6l): instead of replaying the oracle's
  /// schedule, daemons run their own MeetingScheduler and the driver only
  /// samples wall-clock vs accuracy until the cluster reaches the accuracy
  /// the oracle had after `meetings` meetings. Restarts are a replay-mode
  /// feature and are ignored here.
  bool self_scheduled = false;
  uint64_t meet_interval_ms = 40;
  uint64_t meet_jitter_ms = 40;
  uint64_t gossip_interval_ms = 100;
  uint64_t sample_every_ms = 250;
  uint64_t max_wall_ms = 60000;
  /// Networked target = oracle footrule * slack + 1e-6 (the networked
  /// schedule differs, so exact equality is not the bar — reaching the same
  /// accuracy regime is).
  double target_slack = 1.10;
  /// 0 = auto: replay keeps the daemon default; self-scheduled drops to
  /// 1000 so dial collisions (both daemons mid-MeetPeer at each other)
  /// resolve quickly.
  uint64_t io_timeout_ms = 0;
};

core::JxpOptions PeerOptions() {
  core::JxpOptions options;
  options.wire_mode = core::MeetingWireMode::kMeasured;
  return options;
}

/// Random overlapping fragments: every node lands on 2 peers, and every
/// peer gets a contiguous base share so none is empty.
std::vector<std::vector<graph::PageId>> MakeFragments(size_t nodes, size_t peers,
                                                      uint64_t seed) {
  std::vector<std::vector<graph::PageId>> fragments(peers);
  Random rng(seed ^ 0x9e3779b97f4a7c15ULL);
  for (graph::PageId page = 0; page < nodes; ++page) {
    const size_t base = page % peers;
    fragments[base].push_back(page);
    const size_t extra = static_cast<size_t>(rng.NextBounded(peers));
    if (extra != base) fragments[extra].push_back(page);
  }
  return fragments;
}

std::string StatePath(const std::string& dir, const char* kind, size_t peer) {
  return dir + "/" + kind + "_peer_" + std::to_string(peer) + ".jxp";
}

// ---------------------------------------------------------------------------
// Daemon child process.

int g_shutdown_write_fd = -1;

void OnSigTerm(int) {
  const uint8_t byte = 1;
  // write() is async-signal-safe; everything else happens on the loop.
  (void)!::write(g_shutdown_write_fd, &byte, 1);
}

/// Child body: load state, serve until SIGTERM, checkpoint, dump telemetry,
/// exit 0. Reports "<bound_port> <advertised_port>\n" on `report_fd`.
/// `seeds` pre-populates the gossip directory (self-scheduled bootstrap:
/// each daemon knows the ones spawned before it; gossip spreads the rest).
int RunDaemon(const ClusterConfig& config, size_t peer_id,
              const std::string& state_in,
              const std::vector<net::GossipEntry>& seeds, int report_fd) {
  StatusOr<core::JxpPeer> loaded = core::LoadPeerState(state_in, PeerOptions());
  if (!loaded.ok()) {
    std::fprintf(stderr, "peer %zu: load failed: %s\n", peer_id,
                 loaded.status().ToString().c_str());
    return 1;
  }

  int shutdown_pipe[2];
  if (::pipe(shutdown_pipe) != 0) return 1;
  g_shutdown_write_fd = shutdown_pipe[1];
  struct sigaction action = {};
  action.sa_handler = OnSigTerm;
  ::sigaction(SIGTERM, &action, nullptr);

  net::PeerDaemonOptions options;
  options.state_path = StatePath(config.out_dir, "ckpt", peer_id);
  options.shutdown_fd = shutdown_pipe[0];
  options.rng_seed = config.seed + peer_id;
  if (config.io_timeout_ms != 0) {
    options.io_timeout_ms = config.io_timeout_ms;
  } else if (config.self_scheduled) {
    options.io_timeout_ms = 1000;
  }
  if (config.self_scheduled) {
    options.seed_peers = seeds;
    options.gossip_interval_ms = config.gossip_interval_ms;
    options.scheduler.enabled = true;
    options.scheduler.autostart = false;  // Driver starts the whole cluster.
    options.scheduler.interval_ms = config.meet_interval_ms;
    options.scheduler.jitter_ms = config.meet_jitter_ms;
  }
  net::EventLoop loop;
  net::PeerDaemon daemon(std::make_unique<core::JxpPeer>(std::move(loaded.value())),
                         options);
  if (Status status = daemon.Start(&loop); !status.ok()) {
    std::fprintf(stderr, "peer %zu: start failed: %s\n", peer_id,
                 status.ToString().c_str());
    return 1;
  }

  std::unique_ptr<net::ChaosProxy> proxy;
  if (config.chaos) {
    net::ChaosProxyOptions proxy_options;
    proxy_options.target_port = daemon.bound_port();
    proxy_options.plan.message_drop_probability = config.drop;
    proxy_options.plan.truncation_probability = config.truncate;
    proxy_options.plan.corruption_probability = config.corrupt;
    proxy_options.seed = config.seed * 1000003 + peer_id;
    proxy = std::make_unique<net::ChaosProxy>(proxy_options);
    if (Status status = proxy->Start(); !status.ok()) {
      std::fprintf(stderr, "peer %zu: proxy start failed: %s\n", peer_id,
                   status.ToString().c_str());
      return 1;
    }
    daemon.set_advertised_port(proxy->bound_port());
  }

  char report[64];
  std::snprintf(report, sizeof(report), "%u %u\n", daemon.bound_port(),
                daemon.advertised_port());
  if (::write(report_fd, report, std::strlen(report)) < 0) return 1;
  ::close(report_fd);

  loop.Run();  // Until SIGTERM -> shutdown_fd -> BeginShutdown -> Stop.
  if (proxy != nullptr) proxy->Stop();

  // Per-peer JSONL telemetry: one line of final daemon (and injector)
  // accounting, aggregated by the driver after the children exit.
  const net::DaemonStats& stats = daemon.stats();
  obs::JsonWriter line;
  line.Field("peer_id", peer_id)
      .Field("num_meetings", daemon.peer().num_meetings())
      .Field("world_score", daemon.peer().world_score())
      .Field("accepts", stats.accepts)
      .Field("dials", stats.dials)
      .Field("dial_failures", stats.dial_failures)
      .Field("meetings_initiated", stats.meetings_initiated)
      .Field("meetings_accepted", stats.meetings_accepted)
      .Field("meetings_declined", stats.meetings_declined)
      .Field("meeting_failures", stats.meeting_failures)
      .Field("truncations_detected", stats.truncations_detected)
      .Field("corruptions_detected", stats.corruptions_detected)
      .Field("bytes_sent", stats.bytes_sent)
      .Field("bytes_received", stats.bytes_received)
      .Field("wasted_bytes", stats.wasted_bytes)
      .Field("checkpoints", stats.checkpoints)
      .Field("protocol_errors", stats.protocol_errors)
      .Field("gossip_exchanges", stats.gossip_exchanges);
  const net::ConnectionPoolStats& pool = daemon.pool().stats();
  line.Field("pool_reuses", pool.reuses)
      .Field("pool_half_open", pool.half_open_detected)
      .Field("pool_redials", pool.redials)
      .Field("pool_evictions_idle", pool.evictions_idle)
      .Field("pool_evictions_lru", pool.evictions_lru)
      .Field("pool_busy_rejections", pool.busy_rejections)
      .Field("pool_released_broken", pool.released_broken);
  if (daemon.scheduler() != nullptr) {
    const net::MeetingSchedulerStats& sched = daemon.scheduler()->stats();
    line.Field("sched_ticks", sched.ticks)
        .Field("sched_meetings_started", sched.meetings_started)
        .Field("sched_meetings_applied", sched.meetings_applied)
        .Field("sched_declines", sched.declines)
        .Field("sched_failures", sched.failures)
        .Field("sched_busy", sched.busy)
        .Field("sched_skips_no_partner", sched.skips_no_partner)
        .Field("sched_skips_backoff", sched.skips_backoff)
        .Field("sched_backoffs_armed", sched.backoffs_armed);
  }
  if (proxy != nullptr) {
    const net::ChaosProxyStats injected = proxy->stats();
    line.Field("injected_dropped", injected.blobs_dropped)
        .Field("injected_truncated", injected.blobs_truncated)
        .Field("injected_corrupted", injected.blobs_corrupted)
        .Field("blobs_forwarded", injected.blobs_forwarded);
  }
  std::ofstream out(config.out_dir + "/peer_" + std::to_string(peer_id) + ".jsonl",
                    std::ios::app);
  out << line.TakeLine() << "\n";
  return out.good() ? 0 : 1;
}

// ---------------------------------------------------------------------------
// Driver.

struct Child {
  pid_t pid = -1;
  uint16_t bound_port = 0;
  uint16_t advertised_port = 0;
};

/// Forks one daemon child and reads back its ports.
bool SpawnDaemon(const ClusterConfig& config, size_t peer_id,
                 const std::string& state_in,
                 const std::vector<net::GossipEntry>& seeds, Child* child) {
  int report_pipe[2];
  if (::pipe(report_pipe) != 0) return false;
  const pid_t pid = ::fork();
  if (pid < 0) return false;
  if (pid == 0) {
    ::close(report_pipe[0]);
    ::_exit(RunDaemon(config, peer_id, state_in, seeds, report_pipe[1]));
  }
  ::close(report_pipe[1]);
  char buffer[64] = {};
  size_t filled = 0;
  while (filled < sizeof(buffer) - 1) {
    const ssize_t got = ::read(report_pipe[0], buffer + filled,
                               sizeof(buffer) - 1 - filled);
    if (got <= 0) break;
    filled += static_cast<size_t>(got);
    if (std::memchr(buffer, '\n', filled) != nullptr) break;
  }
  ::close(report_pipe[0]);
  unsigned bound = 0, advertised = 0;
  if (std::sscanf(buffer, "%u %u", &bound, &advertised) != 2) {
    std::fprintf(stderr, "driver: peer %zu failed to report ports\n", peer_id);
    return false;
  }
  child->pid = pid;
  child->bound_port = static_cast<uint16_t>(bound);
  child->advertised_port = static_cast<uint16_t>(advertised);
  return true;
}

/// SIGTERMs a child and reaps it; true iff it exited cleanly with 0.
bool StopDaemon(Child* child) {
  if (child->pid < 0) return true;
  ::kill(child->pid, SIGTERM);
  int wstatus = 0;
  if (::waitpid(child->pid, &wstatus, 0) != child->pid) return false;
  child->pid = -1;
  return WIFEXITED(wstatus) && WEXITSTATUS(wstatus) == 0;
}

/// Reads one aggregated uint64 field from every per-peer JSONL file (the
/// files hold a single flat object per line, so a string scan suffices).
uint64_t SumJsonlField(const ClusterConfig& config, const std::string& field) {
  uint64_t total = 0;
  for (size_t peer = 0; peer < config.peers; ++peer) {
    std::ifstream in(config.out_dir + "/peer_" + std::to_string(peer) + ".jsonl");
    std::string line;
    while (std::getline(in, line)) {
      const std::string needle = "\"" + field + "\":";
      const size_t at = line.find(needle);
      if (at == std::string::npos) continue;
      total += std::strtoull(line.c_str() + at + needle.size(), nullptr, 10);
    }
  }
  return total;
}

/// Self-scheduled arm (fig. 4 analogue): the daemons drive their own
/// meetings; the driver only starts them, samples wall-clock vs accuracy,
/// checks Thm 5.3 at every sample, and drains when the cluster reaches the
/// accuracy the oracle had after `meetings` replayed meetings. One JSONL
/// row per sample lands in <out-dir>/self_scheduled.jsonl.
int RunSelfScheduled(const ClusterConfig& config) {
  std::string mkdir = "mkdir -p " + config.out_dir;
  if (std::system(mkdir.c_str()) != 0) return 1;
  for (size_t peer = 0; peer < config.peers; ++peer) {
    std::remove((config.out_dir + "/peer_" + std::to_string(peer) + ".jsonl").c_str());
  }
  const std::string fig_path = config.out_dir + "/self_scheduled.jsonl";
  std::remove(fig_path.c_str());

  // --- Oracle: fixes the accuracy bar, not the schedule.
  Random graph_rng(config.seed);
  const graph::Graph global = graph::BarabasiAlbert(config.nodes, 3, graph_rng);
  core::SimulationConfig sim_config;
  sim_config.jxp = PeerOptions();
  sim_config.seed = config.seed;
  core::JxpSimulation oracle(global,
                             MakeFragments(config.nodes, config.peers, config.seed),
                             sim_config);
  if (Status status = oracle.SaveAllPeerStates(config.out_dir); !status.ok()) {
    std::fprintf(stderr, "driver: save initial states: %s\n", status.ToString().c_str());
    return 1;
  }
  for (size_t peer = 0; peer < config.peers; ++peer) {
    const std::string from = config.out_dir + "/peer_" + std::to_string(peer) + ".jxp";
    std::rename(from.c_str(), StatePath(config.out_dir, "init", peer).c_str());
  }
  oracle.RunMeetings(config.meetings);
  const core::AccuracyPoint oracle_accuracy =
      core::EvaluateAccuracy(oracle.GlobalJxpScores(), oracle.global_top_k());
  const double target_footrule =
      oracle_accuracy.footrule * config.target_slack + 1e-6;
  std::fprintf(stderr,
               "driver: oracle footrule %.6f after %zu meetings; target %.6f\n",
               oracle_accuracy.footrule, config.meetings, target_footrule);

  int failures = 0;
  const auto check = [&failures](bool ok, const char* what) {
    if (!ok) {
      std::fprintf(stderr, "driver: CHECK FAILED: %s\n", what);
      ++failures;
    }
  };

  // --- Decentralized bootstrap: spawn sequentially, daemon i seeded with
  // daemons 0..i-1 (daemon 0 starts alone and learns the rest from their
  // Hellos and gossip).
  std::vector<Child> children(config.peers);
  std::vector<net::GossipEntry> seeds;
  for (size_t peer = 0; peer < config.peers; ++peer) {
    if (!SpawnDaemon(config, peer, StatePath(config.out_dir, "init", peer), seeds,
                     &children[peer])) {
      std::fprintf(stderr, "driver: spawn of peer %zu failed\n", peer);
      return 1;
    }
    net::GossipEntry entry;
    entry.peer_id = static_cast<uint32_t>(peer);
    entry.port = children[peer].advertised_port;
    seeds.push_back(entry);
  }
  std::fprintf(stderr, "driver: %zu autonomous daemons up\n", config.peers);

  for (size_t peer = 0; peer < config.peers; ++peer) {
    net::ControlClient control;
    check(control.Connect(children[peer].bound_port).ok() &&
              control.StartScheduler().ok(),
          "scheduler start round trip");
  }

  // --- Sample until converged (or the wall-clock budget runs out).
  const auto t0 = std::chrono::steady_clock::now();
  std::ofstream fig(fig_path);
  bool converged = false;
  uint64_t final_meetings = 0, final_dials = 0, final_reuses = 0;
  double footrule = 1.0;
  while (true) {
    ::usleep(static_cast<useconds_t>(config.sample_every_ms * 1000));
    const uint64_t wall_ms = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
    // Rebuild the evaluation table from the wire: page -> average over the
    // peers holding it (BuildGlobalJxpScores's rule).
    std::unordered_map<graph::PageId, double> sum;
    std::unordered_map<graph::PageId, size_t> count;
    uint64_t meetings = 0, dials = 0, reuses = 0;
    bool sample_ok = true;
    constexpr double kUpperBoundSlack = 1e-9;
    for (size_t peer = 0; peer < config.peers; ++peer) {
      net::ControlClient control;
      if (!control.Connect(children[peer].bound_port).ok()) {
        sample_ok = false;
        continue;
      }
      net::ScoresReplyMessage scores;
      if (!control.GetScores(&scores).ok()) {
        sample_ok = false;
        continue;
      }
      for (const net::ScoreEntry& entry : scores.entries) {
        // Thm 5.3 holds under ANY meeting schedule, including the
        // autonomous one with faults: scores never overestimate true PR.
        if (entry.score > oracle.global_scores()[entry.page] + kUpperBoundSlack) {
          check(false, "Theorem 5.3 never-overestimate at sample");
          break;
        }
        sum[entry.page] += entry.score;
        ++count[entry.page];
      }
      net::NetStatsReplyMessage net_stats;
      if (control.GetNetStats(&net_stats).ok()) {
        meetings += net_stats.meetings_initiated;
        dials += net_stats.dials;
        reuses += net_stats.pool_reuses;
      } else {
        sample_ok = false;
      }
    }
    if (sample_ok) {
      std::unordered_map<graph::PageId, double> combined;
      combined.reserve(sum.size());
      for (const auto& [page, total] : sum) combined[page] = total / count[page];
      const core::AccuracyPoint accuracy =
          core::EvaluateAccuracy(combined, oracle.global_top_k());
      footrule = accuracy.footrule;
      final_meetings = meetings;
      final_dials = dials;
      final_reuses = reuses;
      obs::JsonWriter row;
      row.Field("bench", "net_cluster_self_scheduled")
          .Field("wall_ms", wall_ms)
          .Field("footrule", accuracy.footrule)
          .Field("linear_error", accuracy.linear_error)
          .Field("meetings", meetings)
          .Field("meetings_per_sec",
                 wall_ms > 0 ? meetings * 1000.0 / static_cast<double>(wall_ms) : 0.0)
          .Field("dials", dials)
          .Field("reuses", reuses);
      fig << row.TakeLine() << "\n";
      // Done when the cluster is at the oracle's accuracy AND pooling has
      // amortized the bootstrap fan-out (dials plateau at ~one per peer
      // pair while meetings keep accruing — the fig. 4 analogue's point).
      if (accuracy.footrule <= target_footrule && meetings > 0 && dials < meetings) {
        converged = true;
        break;
      }
    }
    if (wall_ms >= config.max_wall_ms) break;
  }
  fig.close();

  // Chaos trades meetings for faults; that arm's pass/fail is safety plus
  // exact accounting, not the accuracy bar.
  if (!config.chaos) {
    check(converged, "self-scheduled cluster reached the oracle accuracy target");
  }
  check(final_meetings > 0, "autonomous meetings happened");
  check(final_dials > 0, "pool dialed at least once");
  check(final_reuses > 0, "pool reused connections across meetings");
  check(final_dials < final_meetings,
        "persistent pool: dials strictly fewer than meetings");

  // --- Drain-and-quiesce through the control plane, verify terminal state.
  for (size_t peer = 0; peer < config.peers; ++peer) {
    net::ControlClient control;
    if (!control.Connect(children[peer].bound_port).ok() || !control.Drain().ok()) {
      check(false, "drain round trip");
      continue;
    }
    net::NetStatsReplyMessage net_stats;
    if (control.GetNetStats(&net_stats).ok()) {
      check(net_stats.scheduler_state ==
                static_cast<uint8_t>(net::SchedulerState::kDrained),
            "scheduler drained after drain request");
      check(net_stats.pool_open_connections == 0, "pool closed after drain");
    } else {
      check(false, "net stats after drain");
    }
  }

  // --- Shutdown and fault accounting (same exactness bar as replay mode).
  ::usleep(300000);
  for (size_t peer = 0; peer < config.peers; ++peer) {
    check(StopDaemon(&children[peer]), "daemon exited cleanly with 0");
  }
  const uint64_t detected_truncations = SumJsonlField(config, "truncations_detected");
  const uint64_t detected_corruptions = SumJsonlField(config, "corruptions_detected");
  const uint64_t wasted = SumJsonlField(config, "wasted_bytes");
  const uint64_t pool_half_open = SumJsonlField(config, "pool_half_open");
  const uint64_t pool_redials = SumJsonlField(config, "pool_redials");
  const uint64_t dial_failures = SumJsonlField(config, "dial_failures");
  uint64_t injected_torn = 0, injected_corrupted = 0;
  if (config.chaos) {
    injected_torn = SumJsonlField(config, "injected_dropped") +
                    SumJsonlField(config, "injected_truncated");
    injected_corrupted = SumJsonlField(config, "injected_corrupted");
    check(detected_truncations == injected_torn,
          "injected drops+truncations == detected truncations");
    check(detected_corruptions == injected_corrupted,
          "injected corruptions == detected corruptions");
  } else {
    check(detected_truncations == 0, "no truncations in clean run");
    check(detected_corruptions == 0, "no corruptions in clean run");
    check(wasted == 0, "no wasted bytes in clean run");
    // Teardown accounting (DESIGN.md §6l): every daemon stays reachable in
    // a clean run, so a pooled connection found dead must surface as pool
    // accounting, never as a spurious dial failure.
    check(dial_failures == 0, "no dial failures in clean run");
  }

  obs::JsonWriter summary;
  summary.Field("bench", "net_cluster_self_scheduled")
      .Field("peers", config.peers)
      .Field("converged", converged)
      .Field("footrule", footrule)
      .Field("target_footrule", target_footrule)
      .Field("oracle_footrule", oracle_accuracy.footrule)
      .Field("meetings", final_meetings)
      .Field("dials", final_dials)
      .Field("reuses", final_reuses)
      .Field("pool_half_open", pool_half_open)
      .Field("pool_redials", pool_redials)
      .Field("dial_failures", dial_failures)
      .Field("chaos", config.chaos)
      .Field("detected_truncations", detected_truncations)
      .Field("detected_corruptions", detected_corruptions)
      .Field("injected_torn", injected_torn)
      .Field("injected_corrupted", injected_corrupted)
      .Field("wasted_bytes", wasted)
      .Field("failures", failures);
  std::printf("%s\n", summary.TakeLine().c_str());
  return failures == 0 ? 0 : 1;
}

int RunDriver(const ClusterConfig& config) {
  // The driver's control connections can hit daemons mid-teardown; EPIPE
  // must come back as a Status, not kill the driver.
  ::signal(SIGPIPE, SIG_IGN);
  if (config.self_scheduled) return RunSelfScheduled(config);
  std::string mkdir = "mkdir -p " + config.out_dir;
  if (std::system(mkdir.c_str()) != 0) return 1;
  for (size_t peer = 0; peer < config.peers; ++peer) {
    std::remove((config.out_dir + "/peer_" + std::to_string(peer) + ".jsonl").c_str());
  }

  // --- Oracle: the same cluster, in-process, on the same seed/schedule.
  Random graph_rng(config.seed);
  const graph::Graph global = graph::BarabasiAlbert(config.nodes, 3, graph_rng);
  core::SimulationConfig sim_config;
  sim_config.jxp = PeerOptions();
  sim_config.seed = config.seed;
  sim_config.record_meeting_log = true;
  core::JxpSimulation oracle(global, MakeFragments(config.nodes, config.peers, config.seed),
                             sim_config);
  if (Status status = oracle.SaveAllPeerStates(config.out_dir); !status.ok()) {
    std::fprintf(stderr, "driver: save initial states: %s\n", status.ToString().c_str());
    return 1;
  }
  // SaveAllPeerStates writes peer_<id>.jxp; rename to the "init" scheme so
  // checkpoints cannot collide with them.
  for (size_t peer = 0; peer < config.peers; ++peer) {
    const std::string from = config.out_dir + "/peer_" + std::to_string(peer) + ".jxp";
    std::rename(from.c_str(), StatePath(config.out_dir, "init", peer).c_str());
  }
  oracle.RunMeetings(config.meetings);
  const auto& schedule = oracle.meeting_log();
  std::fprintf(stderr, "driver: oracle done, %zu meetings scheduled\n",
               schedule.size());

  // --- Fork the cluster.
  std::vector<Child> children(config.peers);
  for (size_t peer = 0; peer < config.peers; ++peer) {
    if (!SpawnDaemon(config, peer, StatePath(config.out_dir, "init", peer), {},
                     &children[peer])) {
      std::fprintf(stderr, "driver: spawn of peer %zu failed\n", peer);
      return 1;
    }
  }
  std::fprintf(stderr, "driver: %zu daemons up\n", config.peers);

  int failures = 0;
  const auto check = [&failures](bool ok, const char* what) {
    if (!ok) {
      std::fprintf(stderr, "driver: CHECK FAILED: %s\n", what);
      ++failures;
    }
  };

  // --- Replay the oracle's schedule through the control protocol.
  size_t restarted_at = 0;
  size_t commanded = 0, applied = 0, torn = 0;
  for (size_t m = 0; m < schedule.size(); ++m) {
    // Mid-run graceful restart: SIGTERM -> checkpoint -> re-fork from the
    // checkpoint. In clean mode the final bit-identity check proves the
    // round trip lost nothing.
    if (config.restart_peer >= 0 && m == schedule.size() / 2 &&
        static_cast<size_t>(config.restart_peer) < config.peers) {
      const size_t target = static_cast<size_t>(config.restart_peer);
      check(StopDaemon(&children[target]), "restarted daemon exited cleanly");
      check(SpawnDaemon(config, target, StatePath(config.out_dir, "ckpt", target), {},
                        &children[target]),
            "restarted daemon came back");
      restarted_at = m;
    }

    const auto [initiator, partner] = schedule[m];
    net::ControlClient control;
    Status status = control.Connect(children[initiator].bound_port);
    net::MeetResultMessage result;
    if (status.ok()) {
      status = control.Meet(partner, children[partner].advertised_port, &result);
    }
    check(status.ok(), "meet command round trip");
    ++commanded;
    if (result.applied) ++applied;
    if (result.salvaged) ++torn;
    if (!config.chaos) {
      check(result.applied && !result.salvaged, "clean meeting applied exactly");
    }

    // --- Thm 5.3 sampling: networked scores never overestimate true PR.
    if ((m + 1) % config.check_every == 0 || m + 1 == schedule.size()) {
      constexpr double kUpperBoundSlack = 1e-9;
      for (size_t peer = 0; peer < config.peers; ++peer) {
        net::ControlClient sampler;
        if (!sampler.Connect(children[peer].bound_port).ok()) {
          check(false, "sampler connect");
          continue;
        }
        net::ScoresReplyMessage scores;
        if (!sampler.GetScores(&scores).ok()) {
          check(false, "sampler scores");
          continue;
        }
        for (const net::ScoreEntry& entry : scores.entries) {
          if (entry.score > oracle.global_scores()[entry.page] + kUpperBoundSlack) {
            check(false, "Theorem 5.3 never-overestimate at checkpoint");
            break;
          }
        }
      }
    }
  }

  // --- Final verification against the oracle.
  double max_abs_diff = 0;
  if (!config.chaos) {
    for (size_t peer = 0; peer < config.peers; ++peer) {
      net::ControlClient control;
      if (!control.Connect(children[peer].bound_port).ok()) {
        check(false, "final connect");
        continue;
      }
      net::ScoresReplyMessage scores;
      if (!control.GetScores(&scores).ok()) {
        check(false, "final scores");
        continue;
      }
      const core::JxpPeer& expect = oracle.peers()[peer];
      check(scores.world_score == expect.world_score(), "world score bit-identical");
      check(scores.entries.size() == expect.local_scores().size(),
            "local page count matches");
      const graph::Subgraph& fragment = expect.fragment();
      for (const net::ScoreEntry& entry : scores.entries) {
        const graph::Subgraph::LocalIndex local = fragment.LocalIndexOf(entry.page);
        if (local == graph::Subgraph::kNotLocal) {
          check(false, "page present in oracle fragment");
          continue;
        }
        const double diff = std::abs(entry.score - expect.local_scores()[local]);
        if (diff > max_abs_diff) max_abs_diff = diff;
        if (entry.score != expect.local_scores()[local]) {
          check(false, "local score bit-identical to oracle");
          break;
        }
      }
    }
  }

  // --- Shutdown and aggregate telemetry.
  // Torn-transfer detections on the responder side are EOF events, not
  // ordered with the initiator's MeetResult; give the loops a beat to
  // drain them before the final stats are frozen.
  ::usleep(300000);
  for (size_t peer = 0; peer < config.peers; ++peer) {
    check(StopDaemon(&children[peer]), "daemon exited cleanly with 0");
  }
  const uint64_t detected_truncations = SumJsonlField(config, "truncations_detected");
  const uint64_t detected_corruptions = SumJsonlField(config, "corruptions_detected");
  const uint64_t wasted = SumJsonlField(config, "wasted_bytes");
  uint64_t injected_torn = 0, injected_corrupted = 0;
  if (config.chaos) {
    injected_torn = SumJsonlField(config, "injected_dropped") +
                    SumJsonlField(config, "injected_truncated");
    injected_corrupted = SumJsonlField(config, "injected_corrupted");
    // Exact accounting: every injected fault is detected exactly once.
    check(detected_truncations == injected_torn,
          "injected drops+truncations == detected truncations");
    check(detected_corruptions == injected_corrupted,
          "injected corruptions == detected corruptions");
    check(injected_corrupted == 0 || wasted > 0, "corruption produced wasted bytes");
  } else {
    check(detected_truncations == 0, "no truncations in clean run");
    check(detected_corruptions == 0, "no corruptions in clean run");
    check(wasted == 0, "no wasted bytes in clean run");
  }

  obs::JsonWriter summary;
  summary.Field("bench", "net_cluster")
      .Field("peers", config.peers)
      .Field("meetings", commanded)
      .Field("applied", applied)
      .Field("salvaged", torn)
      .Field("chaos", config.chaos)
      .Field("restarted_at_meeting", restarted_at)
      .Field("max_abs_score_diff", max_abs_diff)
      .Field("detected_truncations", detected_truncations)
      .Field("detected_corruptions", detected_corruptions)
      .Field("injected_torn", injected_torn)
      .Field("injected_corrupted", injected_corrupted)
      .Field("wasted_bytes", wasted)
      .Field("failures", failures);
  std::printf("%s\n", summary.TakeLine().c_str());
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace jxp

int main(int argc, char** argv) {
  jxp::Flags flags;
  if (jxp::Status status = flags.Parse(argc, argv); !status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  jxp::ClusterConfig config;
  config.peers = static_cast<size_t>(flags.GetInt("peers", 8));
  config.meetings = static_cast<size_t>(flags.GetInt("meetings", 64));
  config.nodes = static_cast<size_t>(flags.GetInt("nodes", 400));
  config.seed = static_cast<uint64_t>(flags.GetInt("seed", 7));
  config.out_dir = flags.GetString("out-dir", flags.GetString("out_dir", "/tmp/net_cluster"));
  config.check_every = static_cast<size_t>(flags.GetInt("check-every", 16));
  config.restart_peer = flags.GetInt("restart-peer", 0);
  config.chaos = flags.GetBool("chaos", false);
  config.drop = flags.GetDouble("drop", 0.05);
  config.truncate = flags.GetDouble("truncate", 0.05);
  config.corrupt = flags.GetDouble("corrupt", 0.05);
  config.self_scheduled =
      flags.GetBool("self-scheduled", flags.GetBool("self_scheduled", false));
  config.meet_interval_ms =
      static_cast<uint64_t>(flags.GetInt("meet-interval-ms", 40));
  config.meet_jitter_ms = static_cast<uint64_t>(flags.GetInt("meet-jitter-ms", 40));
  config.gossip_interval_ms =
      static_cast<uint64_t>(flags.GetInt("gossip-interval-ms", 100));
  config.sample_every_ms =
      static_cast<uint64_t>(flags.GetInt("sample-every-ms", 250));
  config.max_wall_ms = static_cast<uint64_t>(flags.GetInt("max-wall-ms", 60000));
  config.target_slack = flags.GetDouble("target-slack", 1.10);
  config.io_timeout_ms = static_cast<uint64_t>(flags.GetInt("io-timeout-ms", 0));
  return jxp::RunDriver(config);
}
