// Table 1: CPU time (milliseconds) per merge procedure — full merging vs
// light-weight merging — for the three biggest and three smallest peers of
// each collection. Paper shape: light-weight is consistently cheaper, and
// dramatically so for small peers; absolute numbers differ from the paper's
// 2005 hardware.

#include <algorithm>
#include <cstdio>

#include "bench/bench_util.h"

namespace jxp {
namespace bench {

struct PeerCost {
  size_t pages = 0;
  double full_ms = 0;
  double light_ms = 0;
};

void Run(int argc, char** argv) {
  BenchConfig config = BenchConfig::FromFlags(argc, argv);
  // CPU timing needs fewer meetings than the accuracy figures.
  if (config.meetings > 600) config.meetings = 600;

  for (const char* name : {"amazon", "webcrawl"}) {
    const datasets::Collection collection = MakeCollection(name, config);
    PrintHeader(std::string("Table 1: merge CPU time per meeting (") + name + ")",
                collection, config);
    const auto fragments = PaperPartition(collection, config, config.seed);

    std::vector<PeerCost> costs(fragments.size());
    for (const core::MergeMode mode :
         {core::MergeMode::kFullMerge, core::MergeMode::kLightWeight}) {
      core::SimulationConfig sim_config;
      sim_config.jxp = BenchJxpOptions();
      sim_config.jxp.merge_mode = mode;
      sim_config.seed = config.seed;
      sim_config.eval_top_k = 100;
      core::JxpSimulation sim(collection.data.graph, fragments, sim_config);
      sim.RunMeetings(config.meetings);
      for (size_t p = 0; p < fragments.size(); ++p) {
        const auto& millis = sim.peers()[p].meeting_cpu_millis();
        double mean = 0;
        for (double ms : millis) mean += ms;
        if (!millis.empty()) mean /= static_cast<double>(millis.size());
        costs[p].pages = sim.peers()[p].fragment().NumLocalPages();
        (mode == core::MergeMode::kFullMerge ? costs[p].full_ms : costs[p].light_ms) =
            mean;
      }
    }
    // Sort by fragment size, descending, as the paper does.
    std::sort(costs.begin(), costs.end(),
              [](const PeerCost& a, const PeerCost& b) { return a.pages > b.pages; });
    std::printf("peer\tlocal_pages\tfull_merging_ms\tlightweight_ms\tspeedup\n");
    const size_t n = costs.size();
    auto print = [&](size_t rank) {
      const PeerCost& c = costs[rank];
      std::printf("%zu\t%zu\t%.3f\t%.3f\t%.2fx\n", rank + 1, c.pages, c.full_ms,
                  c.light_ms, c.light_ms > 0 ? c.full_ms / c.light_ms : 0.0);
    };
    for (size_t r = 0; r < std::min<size_t>(3, n); ++r) print(r);
    if (n > 6) std::printf("...\n");
    for (size_t r = n >= 3 ? n - 3 : 0; r < n; ++r) print(r);
    std::printf("\n");
  }
}

}  // namespace bench
}  // namespace jxp

int main(int argc, char** argv) {
  jxp::bench::Run(argc, argv);
  return 0;
}
