// Microbenchmarks (google-benchmark) of the synopsis substrate: signature
// construction and containment estimation for MIPs, Bloom filters, and FM
// hash sketches.

#include <benchmark/benchmark.h>

#include "common/random.h"
#include "synopses/bloom.h"
#include "synopses/hash_sketch.h"
#include "synopses/minwise.h"

namespace jxp {
namespace {

std::vector<uint64_t> MakeKeys(size_t n) {
  std::vector<uint64_t> keys(n);
  Random rng(3);
  for (auto& k : keys) k = rng.NextUint64();
  return keys;
}

void BM_MinWiseSign(benchmark::State& state) {
  const synopses::MinWiseFamily family(static_cast<size_t>(state.range(1)), 1);
  const auto keys = MakeKeys(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(family.Sign(std::span<const uint64_t>(keys)));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_MinWiseSign)->Args({1000, 64})->Args({1000, 256})->Args({10000, 64});

void BM_MinWiseContainment(benchmark::State& state) {
  const synopses::MinWiseFamily family(256, 1);
  const auto k1 = MakeKeys(2000);
  const auto k2 = MakeKeys(2000);
  const auto a = family.Sign(std::span<const uint64_t>(k1));
  const auto b = family.Sign(std::span<const uint64_t>(k2));
  for (auto _ : state) {
    benchmark::DoNotOptimize(EstimateContainment(a, b));
  }
}
BENCHMARK(BM_MinWiseContainment);

void BM_BloomAdd(benchmark::State& state) {
  const auto keys = MakeKeys(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    synopses::BloomFilter filter(16384, 4);
    for (uint64_t k : keys) filter.Add(k);
    benchmark::DoNotOptimize(filter.PopCount());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_BloomAdd)->Arg(1000)->Arg(10000);

void BM_HashSketchAdd(benchmark::State& state) {
  const auto keys = MakeKeys(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    synopses::HashSketch sketch(128);
    for (uint64_t k : keys) sketch.Add(k);
    benchmark::DoNotOptimize(sketch.EstimateCardinality());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_HashSketchAdd)->Arg(1000)->Arg(10000);

}  // namespace
}  // namespace jxp

BENCHMARK_MAIN();
