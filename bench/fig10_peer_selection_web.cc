// Figure 10: peer-selection strategies — pre-meetings vs random — on the
// Web-crawl collection, top-1000. Paper shape: pre-meetings reaches footrule
// 0.1 in ~1,650 meetings vs ~2,480 for random.

#include "bench/bench_util.h"

namespace jxp {
namespace bench {

void Run(int argc, char** argv) {
  const BenchConfig config = BenchConfig::FromFlags(argc, argv);
  const datasets::Collection collection = MakeCollection("webcrawl", config);
  PrintHeader("Figure 10: peer-selection strategies (Web crawl, top-1000)", collection,
              config);
  std::printf("series\tmeetings\tfootrule\tlinear_error\n");
  for (const core::SelectionStrategy strategy :
       {core::SelectionStrategy::kRandom, core::SelectionStrategy::kPreMeetings}) {
    core::SimulationConfig sim_config;
    sim_config.jxp = BenchJxpOptions();
    sim_config.strategy = strategy;
    sim_config.seed = config.seed;
    sim_config.eval_top_k = config.top_k;
    core::JxpSimulation sim(collection.data.graph,
                            PaperPartition(collection, config, config.seed), sim_config);
    RunConvergenceSeries(sim, config,
                         strategy == core::SelectionStrategy::kRandom
                             ? "without_pre_meetings"
                             : "with_pre_meetings");
  }
}

}  // namespace bench
}  // namespace jxp

int main(int argc, char** argv) {
  jxp::bench::Run(argc, argv);
  return 0;
}
