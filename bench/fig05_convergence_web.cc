// Figure 5: Spearman's footrule distance and linear score error as a
// function of the number of meetings, Web-crawl collection, top-1000.
// Paper shape: footrule below 0.2 after ~1000 meetings.

#include "bench/bench_util.h"

namespace jxp {
namespace bench {

void Run(int argc, char** argv) {
  const BenchConfig config = BenchConfig::FromFlags(argc, argv);
  const datasets::Collection collection = MakeCollection("webcrawl", config);
  PrintHeader("Figure 5: JXP accuracy vs meetings (Web crawl, top-1000)", collection,
              config);

  core::SimulationConfig sim_config;
  sim_config.jxp = BenchJxpOptions();
  sim_config.jxp.merge_mode = core::MergeMode::kFullMerge;
  sim_config.jxp.combine_mode = core::CombineMode::kAverage;
  sim_config.seed = config.seed;
  sim_config.eval_top_k = config.top_k;
  core::JxpSimulation sim(collection.data.graph,
                          PaperPartition(collection, config, config.seed), sim_config);
  std::printf("series\tmeetings\tfootrule\tlinear_error\n");
  RunConvergenceSeries(sim, config, "jxp");
}

}  // namespace bench
}  // namespace jxp

int main(int argc, char** argv) {
  jxp::bench::Run(argc, argv);
  return 0;
}
