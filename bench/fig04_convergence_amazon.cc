// Figure 4: Spearman's footrule distance and linear score error as a
// function of the number of meetings, Amazon collection, top-1000.
// Paper shape: both errors drop steeply over the first ~1000 meetings
// (footrule below 0.3) and keep converging toward 0.

#include "bench/bench_util.h"

namespace jxp {
namespace bench {

void Run(int argc, char** argv) {
  const BenchConfig config = BenchConfig::FromFlags(argc, argv);
  const datasets::Collection collection = MakeCollection("amazon", config);
  PrintHeader("Figure 4: JXP accuracy vs meetings (Amazon, top-1000)", collection,
              config);

  core::SimulationConfig sim_config;
  sim_config.jxp = BenchJxpOptions();
  // The baseline JXP of Figures 4/5: full merging, averaged score lists,
  // random meetings.
  sim_config.jxp.merge_mode = core::MergeMode::kFullMerge;
  sim_config.jxp.combine_mode = core::CombineMode::kAverage;
  sim_config.seed = config.seed;
  sim_config.eval_top_k = config.top_k;
  core::JxpSimulation sim(collection.data.graph,
                          PaperPartition(collection, config, config.seed), sim_config);
  std::printf("series\tmeetings\tfootrule\tlinear_error\n");
  RunConvergenceSeries(sim, config, "jxp");
}

}  // namespace bench
}  // namespace jxp

int main(int argc, char** argv) {
  jxp::bench::Run(argc, argv);
  return 0;
}
