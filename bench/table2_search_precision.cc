// Table 2: precision@10 of 15 typical Web queries under (a) standard tf*idf
// ranking and (b) the weighted combination 0.6*tf*idf + 0.4*JXP, in the
// Section 6.3 Minerva setup: 40 peers = 10 categories x 4 fragments, each
// peer hosting 3 of the 4 fragments of its topic. Paper shape: the combined
// ranking lifts average precision (40% -> 57% in the paper).
//
// The paper's 15 manually assessed queries are emulated by 15 synthetic
// topical queries (the original query strings label the rows); relevance
// ground truth is programmatic — see search::RelevantPages.

#include <cstdio>

#include "bench/bench_util.h"
#include "metrics/ranking.h"
#include "obs/trace.h"
#include "search/engine.h"

namespace jxp {
namespace bench {

namespace {

constexpr const char* kQueryNames[15] = {
    "affirmative action", "amusement parks", "armstrong",      "basketball",
    "blues",              "censorship",      "cheese",         "iraq war",
    "jordan",             "moon landing",    "movies",         "roswell",
    "search engines",     "shakespeare",     "table tennis"};

}  // namespace

void Run(int argc, char** argv) {
  BenchConfig config = BenchConfig::FromFlags(argc, argv);
  const datasets::Collection collection = MakeCollection("webcrawl", config);
  PrintHeader("Table 2: precision@10, tf*idf vs 0.6*tf*idf + 0.4*JXP", collection,
              config);

  // Section 6.3 peer layout.
  Random rng(config.seed);
  const auto fragments = crawler::FragmentSplitPartition(collection.data, 4, 3, rng);

  // Converge JXP scores with the optimized algorithm.
  core::SimulationConfig sim_config;
  sim_config.jxp = BenchJxpOptions();
  sim_config.strategy = core::SelectionStrategy::kPreMeetings;
  sim_config.seed = config.seed;
  sim_config.eval_top_k = 200;
  core::JxpSimulation sim(collection.data.graph, fragments, sim_config);
  sim.RunMeetings(config.meetings);
  const auto jxp_scores = sim.GlobalJxpScores();
  std::printf("# after %zu meetings: footrule=%.3f\n", sim.meetings_done(),
              sim.Evaluate().footrule);

  // Corpus and engine.
  search::CorpusOptions corpus_options;
  const search::Corpus corpus =
      search::Corpus::Generate(collection.data, corpus_options, config.seed ^ 0xc0de);
  search::SearchOptions search_options;
  search_options.peers_to_route = 6;
  search_options.jxp_weight = 0.4;
  search::MinervaEngine engine(&corpus, search_options);
  for (size_t p = 0; p < fragments.size(); ++p) {
    engine.AddPeer(static_cast<p2p::PeerId>(p), fragments[p]);
  }

  std::printf("query\ttfidf_p@10\tcombined_p@10\n");
  double tfidf_sum = 0;
  double combined_sum = 0;
  for (int q = 0; q < 15; ++q) {
    const graph::CategoryId category =
        static_cast<graph::CategoryId>(q % collection.data.num_categories);
    const auto query = corpus.SampleQueryTerms(category, 2 + q % 2, rng);
    const auto relevant =
        search::RelevantPages(collection.data, sim.global_scores(), category, 0.05);
    const auto results =
        engine.ExecuteQuery(query, jxp_scores, search::RoutingPolicy::kDocumentFrequency);
    const double p_tfidf =
        metrics::PrecisionAtK(search::RankByTfIdf(results, 10), relevant, 10);
    const double p_combined =
        metrics::PrecisionAtK(search::RankByFused(results, 10), relevant, 10);
    tfidf_sum += p_tfidf;
    combined_sum += p_combined;
    std::printf("%s\t%.0f%%\t%.0f%%\n", kQueryNames[q], p_tfidf * 100, p_combined * 100);
    // Structured twin of the printed row, so --metrics_out captures this
    // bench like the throughput benches.
    obs::EmitEvent("bench_result", [&](obs::JsonWriter& w) {
      w.Field("bench", "table2_search_precision")
          .Field("row", "query")
          .Field("query", kQueryNames[q])
          .Field("category", static_cast<uint64_t>(category))
          .Field("tfidf_p10", p_tfidf)
          .Field("combined_p10", p_combined);
    });
  }
  std::printf("Average\t%.0f%%\t%.0f%%\n", tfidf_sum / 15 * 100, combined_sum / 15 * 100);
  obs::EmitEvent("bench_result", [&](obs::JsonWriter& w) {
    w.Field("bench", "table2_search_precision")
        .Field("row", "average")
        .Field("tfidf_p10", tfidf_sum / 15)
        .Field("combined_p10", combined_sum / 15);
  });
}

}  // namespace bench
}  // namespace jxp

int main(int argc, char** argv) {
  jxp::bench::Run(argc, argv);
  return 0;
}
