// Query-serving throughput over the compressed index: queries/second,
// postings decoded, and compressed bytes per posting in the Section 6.3
// Minerva peer layout, for the exhaustive, threshold-algorithm, and
// MaxScore processors at 1/2/4/8 worker threads. One JSON line per sweep
// point.
//
// Two ranking sweeps — pure tf*idf (prior weight 0) and the paper's fused
// ranking 0.6*tf*idf + 0.4*authority — crossed with a matrix of serving
// arms: block codec (vbyte vs the bit-packed layout), serving-tier caches
// plus threshold priming (on/off), and two query traces:
//
//   cold  the distinct query pool served once against a fresh server —
//         every query misses, so this isolates the codec, live-block
//         pruning, and term-primer wins;
//   zipf  --queries draws from the pool under a Zipf(--zipf_s) popularity
//         law, served against the now-warm server — the repeated-query
//         mix the result and threshold caches exist for.
//
// Results are bit-identical across every arm, trace, and thread count —
// only the timings change — and the bench aborts if any arm disagrees
// with the exhaustive oracle, if MaxScore fails to decode strictly fewer
// postings than exhaustive, if live-block pruning never skips a block on
// the primed cold trace, or if the warm Zipfian trace never hits a cache.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>
#include <string_view>
#include <vector>

#include "bench/bench_util.h"
#include "common/check.h"
#include "common/timer.h"
#include "obs/json_writer.h"
#include "obs/trace.h"
#include "pagerank/pagerank.h"
#include "qp/serving.h"

namespace jxp {
namespace bench {

namespace {

/// Blocks small enough that typical per-peer posting lists span several of
/// them: the Section 6.3 layout shards the collection over ~40 peers, so
/// per-peer lists run tens-to-hundreds of postings and need fine blocks
/// before block-max and live-block skipping can engage at all (with the
/// default 128-entry blocks a peer fits whole lists into one block). The
/// extra per-block metadata this buys is visible in bytes_per_posting —
/// the skipping-vs-size trade the JSONL lines expose.
constexpr size_t kBenchBlockSize = 16;

/// One serving configuration of the arm matrix.
struct Arm {
  qp::ProcessorKind processor;
  qp::BlockCodec codec;
  /// Enables the result cache, the threshold cache, and term-level
  /// threshold priming — the full serving tier. Off reproduces the plain
  /// processor (the PR-comparable baseline arm).
  bool cached;
};

/// Per-serve work totals, summed over the batch from the deterministic
/// QueryStats counters (thread-count invariant by construction).
struct ServeTotals {
  size_t postings_decoded = 0;
  size_t freqs_decoded = 0;
  size_t blocks_decoded = 0;
  size_t blocks_skipped = 0;
  size_t blocks_skipped_live = 0;
  size_t live_ranges = 0;
  size_t dead_ranges = 0;
  size_t candidates_scored = 0;
  size_t docs_pruned = 0;
  size_t ta_sorted = 0;
  size_t ta_random = 0;
  size_t cache_hits = 0;
};

ServeTotals Accumulate(const std::vector<qp::ServedResult>& results) {
  ServeTotals t;
  for (const qp::ServedResult& result : results) {
    t.postings_decoded += result.stats.decode.postings_decoded;
    t.freqs_decoded += result.stats.decode.freqs_decoded;
    t.blocks_decoded += result.stats.decode.blocks_decoded;
    t.blocks_skipped += result.stats.decode.blocks_skipped;
    t.blocks_skipped_live += result.stats.decode.blocks_skipped_live;
    t.live_ranges += result.stats.live_ranges;
    t.dead_ranges += result.stats.dead_ranges;
    t.candidates_scored += result.stats.candidates_scored;
    t.docs_pruned += result.stats.docs_pruned;
    t.ta_sorted += result.ta_sorted_accesses;
    t.ta_random += result.ta_random_accesses;
    if (result.cache_hit) ++t.cache_hits;
  }
  return t;
}

/// Full-decode microbenchmark of one frozen server: walks every posting of
/// every list (docids and frequencies) through the cursor and reports
/// nanoseconds per posting — the per-stage decode cost of the arm's codec,
/// independent of query mix and pruning.
double DecodeNsPerPosting(const qp::QueryServer& server) {
  size_t postings = 0;
  uint64_t checksum = 0;
  WallTimer wall;
  for (size_t peer = 0; peer < server.num_peers(); ++peer) {
    for (const auto& term_list : server.compressed(peer).lists()) {
      auto cursor = term_list.list.OpenCursor(nullptr);
      for (cursor.Next(); cursor.docid() != qp::BlockPostingList::kEndDocid;
           cursor.Next()) {
        checksum += cursor.docid() + cursor.freq();
      }
      postings += term_list.list.num_postings();
    }
  }
  const double nanos = wall.ElapsedSeconds() * 1e9;
  JXP_CHECK(postings == 0 || checksum > 0);  // keep the decode loop live
  return postings > 0 ? nanos / static_cast<double>(postings) : 0.0;
}

/// Draws `draws` pool indices under a Zipf(s) law over `pool_size` ranks
/// (rank 0 most popular). Deterministic in `rng`.
std::vector<size_t> SampleZipfTrace(size_t pool_size, size_t draws, double s,
                                    Random& rng) {
  std::vector<double> cdf(pool_size);
  double total = 0;
  for (size_t i = 0; i < pool_size; ++i) {
    total += std::pow(static_cast<double>(i + 1), -s);
    cdf[i] = total;
  }
  std::vector<size_t> picks;
  picks.reserve(draws);
  for (size_t i = 0; i < draws; ++i) {
    const double u = rng.NextDouble() * total;
    const size_t pick = static_cast<size_t>(
        std::upper_bound(cdf.begin(), cdf.end(), u) - cdf.begin());
    picks.push_back(std::min(pick, pool_size - 1));
  }
  return picks;
}

void CheckBitIdentical(const qp::TopKList& oracle, const qp::TopKList& got,
                       const char* context, size_t query) {
  JXP_CHECK_EQ(oracle.size(), got.size())
      << context << ": query " << query << " result count diverged";
  for (size_t i = 0; i < oracle.size(); ++i) {
    JXP_CHECK(oracle[i].first == got[i].first && oracle[i].second == got[i].second)
        << context << ": query " << query << " rank " << i
        << " diverged from the exhaustive oracle";
  }
}

}  // namespace

void Run(int argc, char** argv) {
  BenchConfig config = BenchConfig::FromFlags(argc, argv);
  const datasets::Collection collection = MakeCollection("webcrawl", config);
  PrintHeader("micro: query-serving throughput over the compressed index",
              collection, config);

  // Section 6.3 peer layout: 4 fragments per category, each peer hosting 3.
  Random rng(config.seed);
  const auto fragments = crawler::FragmentSplitPartition(collection.data, 4, 3, rng);
  const search::Corpus corpus = search::Corpus::Generate(
      collection.data, search::CorpusOptions(), config.seed ^ 0xc0de);
  std::vector<std::unique_ptr<search::PeerIndex>> indexes;
  for (size_t p = 0; p < fragments.size(); ++p) {
    auto index = std::make_unique<search::PeerIndex>(static_cast<p2p::PeerId>(p));
    for (graph::PageId page : fragments[p]) index->AddDocument(corpus.DocumentFor(page));
    indexes.push_back(std::move(index));
  }

  // Static authority prior: exact PageRank stands in for a converged JXP
  // estimate (the serving path treats either as an opaque per-page prior).
  const auto truth =
      pagerank::ComputePageRank(collection.data.graph, pagerank::PageRankOptions());
  std::unordered_map<graph::PageId, double> prior;
  for (graph::PageId p = 0; p < collection.data.graph.NumNodes(); ++p) {
    prior[p] = truth.scores[p];
  }

  // The distinct query pool — lengths 1..3 so the trace mixes selective
  // single-term queries (where live-block pruning bites hardest) with the
  // multi-term queries of the earlier benches — and the two traces over it.
  std::vector<qp::ServedQuery> pool;
  Random qrng(config.seed + 1);
  for (size_t i = 0; i < config.queries; ++i) {
    qp::ServedQuery query;
    query.terms = corpus.SampleQueryTerms(
        static_cast<graph::CategoryId>(i % collection.data.num_categories),
        1 + i % 3, qrng);
    pool.push_back(std::move(query));
  }
  Random zrng(config.seed + 2);
  const std::vector<size_t> zipf_picks =
      SampleZipfTrace(pool.size(), config.queries, config.zipf_s, zrng);
  std::vector<qp::ServedQuery> zipf_trace;
  zipf_trace.reserve(zipf_picks.size());
  for (const size_t pick : zipf_picks) zipf_trace.push_back(pool[pick]);

  std::printf(
      "sweep\tprocessor\tcodec\tcached\ttrace\tthreads\tqps\tpostings_decoded\t"
      "blocks_skipped_live\tcache_hit_rate\tbytes_per_posting\n");
  struct Sweep {
    const char* name;
    double prior_weight;
  };
  for (const Sweep sweep : {Sweep{"tfidf", 0.0}, Sweep{"fused", 0.4}}) {
    // Cold-trace oracle results and per-arm decode totals for the per-sweep
    // self-checks below (thread-count invariant by construction).
    std::vector<qp::TopKList> oracle_cold;
    size_t exhaustive_cold_postings = 0;
    size_t maxscore_cold_postings = 0;
    size_t primed_cold_postings = 0;
    size_t primed_cold_skipped_live = 0;
    size_t zipf_cache_hits = 0;

    const Arm arms[] = {
        {qp::ProcessorKind::kExhaustive, qp::BlockCodec::kVByte, false},
        {qp::ProcessorKind::kThresholdAlgorithm, qp::BlockCodec::kVByte, false},
        {qp::ProcessorKind::kMaxScore, qp::BlockCodec::kVByte, false},
        {qp::ProcessorKind::kMaxScore, qp::BlockCodec::kPacked, false},
        {qp::ProcessorKind::kMaxScore, qp::BlockCodec::kPacked, true},
    };
    for (const Arm& arm : arms) {
      // TA runs over the uncompressed index and has no prior support.
      if (sweep.prior_weight != 0.0 &&
          arm.processor == qp::ProcessorKind::kThresholdAlgorithm) {
        continue;
      }
      // Measured once per arm (codec-dependent, thread-count independent).
      double decode_ns_per_posting = 0;
      for (const size_t threads : {1u, 2u, 4u, 8u}) {
        qp::ServingOptions options;
        options.processor = arm.processor;
        options.k = 10;
        options.num_threads = threads;
        options.threshold_priming = arm.cached;
        if (arm.cached) {
          options.result_cache_capacity = pool.size();
          options.threshold_cache_capacity = pool.size();
        }
        qp::QueryServer server(&corpus, options);
        qp::CompressedIndexOptions copts;
        copts.block_size = kBenchBlockSize;
        copts.codec = arm.codec;
        copts.prior_weight = sweep.prior_weight;
        for (const auto& index : indexes) {
          server.AddPeer(index.get(),
                         sweep.prior_weight == 0.0
                             ? std::unordered_map<graph::PageId, double>{}
                             : prior,
                         copts);
        }
        if (threads == 1) decode_ns_per_posting = DecodeNsPerPosting(server);

        // Trace 1: the whole distinct pool against the fresh server (all
        // cold). Trace 2 (MaxScore arms): the Zipfian repeat mix against
        // the same — now cache-warm — server.
        struct TracedServe {
          const char* trace;
          std::vector<qp::ServedResult> results;
          double wall_seconds = 0;
        };
        std::vector<TracedServe> serves;
        {
          TracedServe cold{"cold", {}, 0};
          WallTimer wall;
          cold.results = server.ServeBatch(pool);
          cold.wall_seconds = wall.ElapsedSeconds();
          serves.push_back(std::move(cold));
        }
        if (arm.processor == qp::ProcessorKind::kMaxScore) {
          TracedServe zipf{"zipf", {}, 0};
          WallTimer wall;
          zipf.results = server.ServeBatch(zipf_trace);
          zipf.wall_seconds = wall.ElapsedSeconds();
          serves.push_back(std::move(zipf));
        }

        for (const TracedServe& serve : serves) {
          const bool is_cold = serve.results.size() == pool.size() &&
                               std::string_view(serve.trace) == "cold";
          const ServeTotals totals = Accumulate(serve.results);
          const double qps = serve.wall_seconds > 0
                                 ? static_cast<double>(serve.results.size()) /
                                       serve.wall_seconds
                                 : 0.0;
          const double hit_rate =
              serve.results.empty()
                  ? 0.0
                  : static_cast<double>(totals.cache_hits) /
                        static_cast<double>(serve.results.size());
          const double bytes_per_posting =
              server.index_stats().CompressedBytesPerPosting();
          const auto fill = [&](obs::JsonWriter& writer) {
            writer.Field("bench", "query_throughput")
                .Field("sweep", sweep.name)
                .Field("processor", qp::ProcessorName(arm.processor))
                .Field("codec", qp::BlockCodecName(arm.codec))
                .Field("cached", arm.cached)
                .Field("trace", serve.trace)
                .Field("zipf_s", config.zipf_s)
                .Field("threads", threads)
                .Field("queries", serve.results.size())
                .Field("k", options.k)
                .Field("peers", indexes.size())
                .Field("wall_seconds", serve.wall_seconds)
                .Field("qps", qps)
                .Field("decode_ns_per_posting", decode_ns_per_posting)
                .Field("postings_decoded", totals.postings_decoded)
                .Field("freqs_decoded", totals.freqs_decoded)
                .Field("blocks_decoded", totals.blocks_decoded)
                .Field("blocks_skipped", totals.blocks_skipped)
                .Field("blocks_skipped_live", totals.blocks_skipped_live)
                .Field("live_ranges", totals.live_ranges)
                .Field("dead_ranges", totals.dead_ranges)
                .Field("candidates_scored", totals.candidates_scored)
                .Field("docs_pruned", totals.docs_pruned)
                .Field("ta_sorted_accesses", totals.ta_sorted)
                .Field("ta_random_accesses", totals.ta_random)
                .Field("result_cache_hits", totals.cache_hits)
                .Field("result_cache_misses", serve.results.size() - totals.cache_hits)
                .Field("cache_hit_rate", hit_rate)
                .Field("bytes_per_posting", bytes_per_posting);
          };
          obs::JsonWriter line;
          fill(line);
          std::printf("%s\n", line.TakeLine().c_str());
          std::fflush(stdout);
          obs::EmitEvent("bench_result", fill);

          // The compressed payload must beat the 8-byte uncompressed
          // posting under either codec. Payload only: the all-in
          // bytes_per_posting reported above also carries the per-block
          // metadata, which the fine bench blocks trade for skipping.
          const auto& istats = server.index_stats();
          JXP_CHECK_LT(static_cast<double>(istats.docid_bytes + istats.freq_bytes) /
                           static_cast<double>(istats.num_postings),
                       qp::CompressedIndexStats::kUncompressedBytesPerPosting);

          // Bit-identity against the exhaustive oracle: the cold serve of
          // the first arm at 1 thread defines the per-pool-query truth;
          // every later serve — any arm, codec, cache state, thread count,
          // and the zipf trace through its pool picks — must match exactly.
          if (oracle_cold.empty() && is_cold) {
            JXP_CHECK(arm.processor == qp::ProcessorKind::kExhaustive);
            for (const qp::ServedResult& result : serve.results) {
              oracle_cold.push_back(result.results);
            }
          } else if (is_cold) {
            for (size_t q = 0; q < serve.results.size(); ++q) {
              CheckBitIdentical(oracle_cold[q], serve.results[q].results,
                                qp::ProcessorName(arm.processor), q);
            }
          } else {
            for (size_t q = 0; q < serve.results.size(); ++q) {
              CheckBitIdentical(oracle_cold[zipf_picks[q]], serve.results[q].results,
                                "zipf", q);
            }
          }

          // Capture the per-arm totals the post-sweep checks compare
          // (deterministic, so any thread count's serve is representative).
          if (is_cold && arm.processor == qp::ProcessorKind::kExhaustive) {
            exhaustive_cold_postings = totals.postings_decoded;
          }
          if (is_cold && arm.processor == qp::ProcessorKind::kMaxScore &&
              !arm.cached && arm.codec == qp::BlockCodec::kVByte) {
            maxscore_cold_postings = totals.postings_decoded;
          }
          if (is_cold && arm.cached) {
            primed_cold_postings = totals.postings_decoded;
            primed_cold_skipped_live = totals.blocks_skipped_live;
          }
          if (!is_cold && arm.cached) zipf_cache_hits = totals.cache_hits;
        }
      }
    }

    // Per-sweep self-checks: each axis of the serving tier must actually
    // engage at bench scale.
    JXP_CHECK_LT(maxscore_cold_postings, exhaustive_cold_postings)
        << "MaxScore failed to prune in sweep " << sweep.name;
    JXP_CHECK_LT(primed_cold_postings, maxscore_cold_postings)
        << "threshold priming failed to cut decode work in sweep " << sweep.name;
    JXP_CHECK_GT(primed_cold_skipped_live, 0u)
        << "live-block pruning never skipped a block in sweep " << sweep.name;
    JXP_CHECK_GT(zipf_cache_hits, 0u)
        << "the warm Zipfian trace never hit the result cache in sweep "
        << sweep.name;
  }
}

}  // namespace bench
}  // namespace jxp

int main(int argc, char** argv) {
  jxp::bench::Run(argc, argv);
  return 0;
}
