// Query-serving throughput over the compressed index: queries/second,
// postings decoded, and compressed bytes per posting for the exhaustive,
// threshold-algorithm, and MaxScore processors at 1/2/4/8 worker threads,
// in the Section 6.3 Minerva peer layout. One JSON line per sweep point.
//
// Two sweeps: pure tf*idf (prior weight 0), and the paper's fused ranking
// 0.6*tf*idf + 0.4*authority with the static prior folded into the block
// upper bounds (the TA arm runs uncompressed and supports only the pure
// tf*idf sweep). Results are bit-identical across processors and thread
// counts — only the timings change — and the bench aborts if MaxScore
// fails to decode strictly fewer postings than the exhaustive oracle.

#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "common/check.h"
#include "common/timer.h"
#include "obs/json_writer.h"
#include "obs/trace.h"
#include "pagerank/pagerank.h"
#include "qp/serving.h"

namespace jxp {
namespace bench {

namespace {

/// Blocks small enough that typical per-peer posting lists span several of
/// them; with the default 128-entry blocks, a few-hundred-document peer
/// fits whole lists into one block and block-max skipping never engages.
constexpr size_t kBenchBlockSize = 64;

struct SweepTotals {
  size_t postings_decoded = 0;
  size_t blocks_decoded = 0;
  size_t blocks_skipped = 0;
  size_t candidates_scored = 0;
  size_t docs_pruned = 0;
  size_t ta_sorted = 0;
  size_t ta_random = 0;
};

}  // namespace

void Run(int argc, char** argv) {
  BenchConfig config = BenchConfig::FromFlags(argc, argv);
  const datasets::Collection collection = MakeCollection("webcrawl", config);
  PrintHeader("micro: query-serving throughput over the compressed index",
              collection, config);

  // Section 6.3 peer layout: 4 fragments per category, each peer hosting 3.
  Random rng(config.seed);
  const auto fragments = crawler::FragmentSplitPartition(collection.data, 4, 3, rng);
  const search::Corpus corpus = search::Corpus::Generate(
      collection.data, search::CorpusOptions(), config.seed ^ 0xc0de);
  std::vector<std::unique_ptr<search::PeerIndex>> indexes;
  for (size_t p = 0; p < fragments.size(); ++p) {
    auto index = std::make_unique<search::PeerIndex>(static_cast<p2p::PeerId>(p));
    for (graph::PageId page : fragments[p]) index->AddDocument(corpus.DocumentFor(page));
    indexes.push_back(std::move(index));
  }

  // Static authority prior: exact PageRank stands in for a converged JXP
  // estimate (the serving path treats either as an opaque per-page prior).
  const auto truth =
      pagerank::ComputePageRank(collection.data.graph, pagerank::PageRankOptions());
  std::unordered_map<graph::PageId, double> prior;
  for (graph::PageId p = 0; p < collection.data.graph.NumNodes(); ++p) {
    prior[p] = truth.scores[p];
  }

  std::vector<qp::ServedQuery> queries;
  Random qrng(config.seed + 1);
  for (size_t i = 0; i < config.queries; ++i) {
    qp::ServedQuery query;
    query.terms = corpus.SampleQueryTerms(
        static_cast<graph::CategoryId>(i % collection.data.num_categories),
        2 + i % 2, qrng);
    queries.push_back(std::move(query));
  }

  std::printf("sweep\tprocessor\tthreads\tqps\tpostings_decoded\tbytes_per_posting\n");
  struct Sweep {
    const char* name;
    double prior_weight;
  };
  for (const Sweep sweep : {Sweep{"tfidf", 0.0}, Sweep{"fused", 0.4}}) {
    // Per-sweep decode totals, keyed by processor; thread-count invariant
    // by construction, so the self-check below compares any thread count.
    SweepTotals exhaustive_totals;
    SweepTotals maxscore_totals;
    for (const qp::ProcessorKind processor :
         {qp::ProcessorKind::kExhaustive, qp::ProcessorKind::kThresholdAlgorithm,
          qp::ProcessorKind::kMaxScore}) {
      // TA runs over the uncompressed index and has no prior support.
      if (sweep.prior_weight != 0.0 &&
          processor == qp::ProcessorKind::kThresholdAlgorithm) {
        continue;
      }
      for (const size_t threads : {1u, 2u, 4u, 8u}) {
        qp::ServingOptions options;
        options.processor = processor;
        options.k = 10;
        options.num_threads = threads;
        qp::QueryServer server(&corpus, options);
        qp::CompressedIndexOptions copts;
        copts.block_size = kBenchBlockSize;
        copts.prior_weight = sweep.prior_weight;
        for (const auto& index : indexes) {
          server.AddPeer(index.get(),
                         sweep.prior_weight == 0.0
                             ? std::unordered_map<graph::PageId, double>{}
                             : prior,
                         copts);
        }

        WallTimer wall;
        const std::vector<qp::ServedResult> results = server.ServeBatch(queries);
        const double wall_s = wall.ElapsedSeconds();

        SweepTotals totals;
        for (const qp::ServedResult& result : results) {
          totals.postings_decoded += result.stats.decode.postings_decoded;
          totals.blocks_decoded += result.stats.decode.blocks_decoded;
          totals.blocks_skipped += result.stats.decode.blocks_skipped;
          totals.candidates_scored += result.stats.candidates_scored;
          totals.docs_pruned += result.stats.docs_pruned;
          totals.ta_sorted += result.ta_sorted_accesses;
          totals.ta_random += result.ta_random_accesses;
        }
        if (processor == qp::ProcessorKind::kExhaustive) exhaustive_totals = totals;
        if (processor == qp::ProcessorKind::kMaxScore) maxscore_totals = totals;

        const double qps =
            wall_s > 0 ? static_cast<double>(queries.size()) / wall_s : 0.0;
        const double bytes_per_posting =
            server.index_stats().CompressedBytesPerPosting();
        const auto fill = [&](obs::JsonWriter& writer) {
          writer.Field("bench", "query_throughput")
              .Field("sweep", sweep.name)
              .Field("processor", qp::ProcessorName(processor))
              .Field("threads", threads)
              .Field("queries", queries.size())
              .Field("k", options.k)
              .Field("peers", indexes.size())
              .Field("wall_seconds", wall_s)
              .Field("qps", qps)
              .Field("postings_decoded", totals.postings_decoded)
              .Field("blocks_decoded", totals.blocks_decoded)
              .Field("blocks_skipped", totals.blocks_skipped)
              .Field("candidates_scored", totals.candidates_scored)
              .Field("docs_pruned", totals.docs_pruned)
              .Field("ta_sorted_accesses", totals.ta_sorted)
              .Field("ta_random_accesses", totals.ta_random)
              .Field("bytes_per_posting", bytes_per_posting);
        };
        obs::JsonWriter line;
        fill(line);
        std::printf("%s\n", line.TakeLine().c_str());
        std::fflush(stdout);
        obs::EmitEvent("bench_result", fill);

        // Self-checks: compression must beat the 8-byte uncompressed
        // posting, and dynamic pruning must actually prune.
        JXP_CHECK_LT(bytes_per_posting,
                     qp::CompressedIndexStats::kUncompressedBytesPerPosting);
        if (processor == qp::ProcessorKind::kMaxScore) {
          JXP_CHECK_LT(maxscore_totals.postings_decoded,
                       exhaustive_totals.postings_decoded)
              << "MaxScore failed to prune in sweep " << sweep.name << " at "
              << threads << " threads";
        }
      }
    }
  }
}

}  // namespace bench
}  // namespace jxp

int main(int argc, char** argv) {
  jxp::bench::Run(argc, argv);
  return 0;
}
