// Figure 8: combining score lists by averaging (baseline, Eq. 2) vs taking
// the bigger score (Section 4.2, Eq. 3), both collections, light-weight
// merging. Paper shape: take-the-bigger-score converges faster.

#include "bench/bench_util.h"

namespace jxp {
namespace bench {

void Run(int argc, char** argv) {
  const BenchConfig config = BenchConfig::FromFlags(argc, argv);
  for (const char* name : {"amazon", "webcrawl"}) {
    const datasets::Collection collection = MakeCollection(name, config);
    PrintHeader(std::string("Figure 8: score-combination methods (") + name +
                    ", top-1000)",
                collection, config);
    std::printf("series\tmeetings\tfootrule\tlinear_error\n");
    for (const core::CombineMode mode :
         {core::CombineMode::kAverage, core::CombineMode::kTakeMax}) {
      core::SimulationConfig sim_config;
      sim_config.jxp = BenchJxpOptions();
      sim_config.jxp.merge_mode = core::MergeMode::kLightWeight;
      sim_config.jxp.combine_mode = mode;
      sim_config.seed = config.seed;
      sim_config.eval_top_k = config.top_k;
      core::JxpSimulation sim(collection.data.graph,
                              PaperPartition(collection, config, config.seed),
                              sim_config);
      RunConvergenceSeries(
          sim, config,
          mode == core::CombineMode::kAverage ? "averaging" : "taking_bigger_score");
    }
    std::printf("\n");
  }
}

}  // namespace bench
}  // namespace jxp

int main(int argc, char** argv) {
  jxp::bench::Run(argc, argv);
  return 0;
}
