#!/usr/bin/env python3
"""Unit tests for bench/check_bench_regression.py (the CI bench gate).

Stdlib-only and unittest-compatible on purpose — the CI image has no
pytest. Run as either of:

  python3 -m unittest discover -s bench/tests -v
  pytest bench/tests            # works too, when pytest exists locally
"""

import importlib.util
import io
import json
import os
import sys
import tempfile
import unittest
from contextlib import redirect_stdout

_SCRIPT = os.path.join(os.path.dirname(os.path.abspath(__file__)), os.pardir,
                       "check_bench_regression.py")
_SPEC = importlib.util.spec_from_file_location("check_bench_regression", _SCRIPT)
cbr = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(cbr)


def run_main(argv):
    """Runs the script's main() with `argv`, returning (exit_code, stdout)."""
    out = io.StringIO()
    old_argv = sys.argv
    sys.argv = ["check_bench_regression.py"] + argv
    try:
        with redirect_stdout(out):
            code = cbr.main()
    finally:
        sys.argv = old_argv
    return code, out.getvalue()


class ParseJsonLinesTest(unittest.TestCase):
    def test_skips_headers_and_garbage(self):
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "log")
            with open(path, "w", encoding="utf-8") as handle:
                handle.write("# header line\n")
                handle.write('{"bench": "meeting_throughput", "threads": 1}\n')
                handle.write("{not json\n")
                handle.write("[1, 2, 3]\n")  # JSON, but not an object.
                handle.write('  {"bench": "other"}  \n')  # Leading whitespace.
            records = list(cbr.parse_json_lines(path))
        self.assertEqual(len(records), 2)
        self.assertEqual(records[0]["bench"], "meeting_throughput")
        self.assertEqual(records[1]["bench"], "other")


class ThresholdMathTest(unittest.TestCase):
    """compare() ratio gates: floors for higher_better, ceilings for
    lower_better, boundary values inclusive."""

    def _compare(self, summary, baseline, threshold=0.25):
        with redirect_stdout(io.StringIO()):
            return cbr.compare(summary, baseline, threshold)

    def test_higher_better_floor_is_inclusive(self):
        baseline = {"higher_better": {"qps": 100.0}}
        # Exactly at the floor (100 * 0.75) passes ...
        self.assertEqual(
            self._compare({"higher_better": {"qps": 75.0}}, baseline), [])
        # ... a hair under fails.
        failures = self._compare({"higher_better": {"qps": 74.999}}, baseline)
        self.assertEqual(len(failures), 1)
        self.assertIn("qps", failures[0])
        self.assertIn("dropped", failures[0])

    def test_lower_better_ceiling_is_inclusive(self):
        baseline = {"lower_better": {"cpu_ms": 10.0}}
        self.assertEqual(
            self._compare({"lower_better": {"cpu_ms": 12.5}}, baseline), [])
        failures = self._compare({"lower_better": {"cpu_ms": 12.501}}, baseline)
        self.assertEqual(len(failures), 1)
        self.assertIn("grew", failures[0])

    def test_improvements_never_fail(self):
        baseline = {"higher_better": {"qps": 100.0},
                    "lower_better": {"cpu_ms": 10.0}}
        summary = {"higher_better": {"qps": 1000.0},
                   "lower_better": {"cpu_ms": 0.1}}
        self.assertEqual(self._compare(summary, baseline), [])

    def test_threshold_is_respected(self):
        baseline = {"higher_better": {"qps": 100.0}}
        summary = {"higher_better": {"qps": 60.0}}  # A 40% drop.
        self.assertEqual(len(self._compare(summary, baseline, 0.25)), 1)
        self.assertEqual(self._compare(summary, baseline, 0.5), [])

    def test_zero_baseline_is_skipped(self):
        # A <= 0 baseline cannot anchor a ratio; the metric is not gated.
        baseline = {"higher_better": {"qps": 0.0}}
        summary = {"higher_better": {"qps": 50.0}}
        self.assertEqual(self._compare(summary, baseline), [])

    def test_missing_baseline_key_is_skipped_not_failed(self):
        # New metrics without committed numbers must not break CI.
        baseline = {"higher_better": {}}
        summary = {"higher_better": {"brand_new_metric": 42.0}}
        self.assertEqual(self._compare(summary, baseline), [])

    def test_info_section_is_never_gated(self):
        baseline = {"higher_better": {}, "info": {"p99_ms": 1.0}}
        summary = {"higher_better": {}, "info": {"p99_ms": 9999.0}}
        self.assertEqual(self._compare(summary, baseline), [])


class ExactKeyTest(unittest.TestCase):
    """Deterministic work counters ("exact" section) fail on ANY mismatch."""

    def _compare(self, summary, baseline, threshold=0.25):
        with redirect_stdout(io.StringIO()):
            return cbr.compare(summary, baseline, threshold)

    def test_exact_match_passes(self):
        baseline = {"exact": {"batch:queries": 500.0}}
        summary = {"exact": {"batch:queries": 500.0}}
        self.assertEqual(self._compare(summary, baseline), [])

    def test_any_drift_fails_even_within_threshold(self):
        baseline = {"exact": {"batch:queries": 500.0}}
        summary = {"exact": {"batch:queries": 501.0}}  # 0.2% "improvement".
        failures = self._compare(summary, baseline)
        self.assertEqual(len(failures), 1)
        self.assertIn("batch:queries", failures[0])
        self.assertIn("exactly", failures[0])

    def test_exact_in_both_directions(self):
        baseline = {"exact": {"k": 10.0}}
        self.assertEqual(len(self._compare({"exact": {"k": 9.0}}, baseline)), 1)
        self.assertEqual(len(self._compare({"exact": {"k": 11.0}}, baseline)), 1)

    def test_missing_exact_baseline_is_skipped(self):
        baseline = {"exact": {}}
        summary = {"exact": {"new_counter": 7.0}}
        self.assertEqual(self._compare(summary, baseline), [])


class SummarizeMeetingTest(unittest.TestCase):
    def test_best_rate_and_single_thread_cost(self):
        records = [
            {"bench": "meeting_throughput", "threads": 1,
             "meetings_per_sec": 100.0, "merge_cpu_millis_mean": 2.5},
            {"bench": "meeting_throughput", "threads": 4,
             "meetings_per_sec": 300.0, "merge_cpu_millis_mean": 3.0},
            {"bench": "unrelated", "meetings_per_sec": 9999.0},
        ]
        summary = cbr.summarize_meeting(records)
        self.assertEqual(summary["higher_better"]["meetings_per_sec"], 300.0)
        self.assertEqual(summary["lower_better"]["merge_cpu_millis_mean_1t"], 2.5)


class EndToEndTest(unittest.TestCase):
    """main() through temp files: exit codes for the CI-visible outcomes."""

    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory()
        self.dir = self._tmp.name

    def tearDown(self):
        self._tmp.cleanup()

    def _path(self, name):
        return os.path.join(self.dir, name)

    def _write_meeting_log(self, rate):
        path = self._path("meeting.log")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("# micro_meeting_throughput\n")
            handle.write(json.dumps({
                "bench": "meeting_throughput", "threads": 1,
                "meetings_per_sec": rate, "merge_cpu_millis_mean": 2.0}) + "\n")
        return path

    def test_update_baseline_then_pass(self):
        log = self._write_meeting_log(100.0)
        baseline = self._path("BASE.json")
        code, _ = run_main(["--bench", "meeting", "--input", log,
                            "--output", self._path("out.json"),
                            "--baseline", baseline, "--update-baseline"])
        self.assertEqual(code, 0)
        with open(baseline, encoding="utf-8") as handle:
            written = json.load(handle)
        self.assertEqual(written["higher_better"]["meetings_per_sec"], 100.0)

        code, out = run_main(["--bench", "meeting", "--input", log,
                              "--output", self._path("out2.json"),
                              "--baseline", baseline])
        self.assertEqual(code, 0)
        self.assertIn("PASS", out)

    def test_regression_exits_one(self):
        baseline = self._path("BASE.json")
        run_main(["--bench", "meeting",
                  "--input", self._write_meeting_log(100.0),
                  "--output", self._path("out.json"),
                  "--baseline", baseline, "--update-baseline"])
        code, out = run_main(["--bench", "meeting",
                              "--input", self._write_meeting_log(50.0),
                              "--output", self._path("out2.json"),
                              "--baseline", baseline])
        self.assertEqual(code, 1)
        self.assertIn("FAIL", out)
        self.assertIn("meetings_per_sec", out)

    def test_missing_baseline_exits_two(self):
        code, out = run_main(["--bench", "meeting",
                              "--input", self._write_meeting_log(100.0),
                              "--output", self._path("out.json"),
                              "--baseline", self._path("NOPE.json")])
        self.assertEqual(code, 2)
        self.assertIn("not found", out)

    def test_empty_input_exits_two(self):
        log = self._path("empty.log")
        with open(log, "w", encoding="utf-8") as handle:
            handle.write("# nothing but headers\n")
        code, out = run_main(["--bench", "meeting", "--input", log,
                              "--output", self._path("out.json")])
        self.assertEqual(code, 2)
        self.assertIn("no bench_result lines", out)

    def test_update_baseline_without_baseline_path_exits_two(self):
        code, out = run_main(["--bench", "meeting",
                              "--input", self._write_meeting_log(100.0),
                              "--output", self._path("out.json"),
                              "--update-baseline"])
        self.assertEqual(code, 2)
        self.assertIn("--update-baseline needs --baseline", out)

    def test_no_baseline_writes_summary_and_passes(self):
        out_path = self._path("out.json")
        code, out = run_main(["--bench", "meeting",
                              "--input", self._write_meeting_log(100.0),
                              "--output", out_path])
        self.assertEqual(code, 0)
        self.assertIn("nothing compared", out)
        self.assertTrue(os.path.exists(out_path))


if __name__ == "__main__":
    unittest.main()
