// Figure 7: full merging vs light-weight merging, Web-crawl collection.
// Paper shape: curves nearly coincide, as in Figure 6.

#include "bench/bench_util.h"

namespace jxp {
namespace bench {

void Run(int argc, char** argv) {
  const BenchConfig config = BenchConfig::FromFlags(argc, argv);
  const datasets::Collection collection = MakeCollection("webcrawl", config);
  PrintHeader("Figure 7: full vs light-weight merging (Web crawl, top-1000)",
              collection, config);
  std::printf("series\tmeetings\tfootrule\tlinear_error\n");
  for (const core::MergeMode mode :
       {core::MergeMode::kFullMerge, core::MergeMode::kLightWeight}) {
    core::SimulationConfig sim_config;
    sim_config.jxp = BenchJxpOptions();
    sim_config.jxp.merge_mode = mode;
    sim_config.jxp.combine_mode = core::CombineMode::kAverage;
    sim_config.seed = config.seed;
    sim_config.eval_top_k = config.top_k;
    core::JxpSimulation sim(collection.data.graph,
                            PaperPartition(collection, config, config.seed), sim_config);
    RunConvergenceSeries(
        sim, config,
        mode == core::MergeMode::kFullMerge ? "with_merging" : "without_merging");
  }
}

}  // namespace bench
}  // namespace jxp

int main(int argc, char** argv) {
  jxp::bench::Run(argc, argv);
  return 0;
}
