// Figure 11: per-peer message size (KBytes) at each of a peer's meetings —
// quartiles across peers — with and without the pre-meetings strategy,
// Amazon collection. Paper shape: sizes grow with meetings per peer as the
// world node accumulates knowledge; the pre-meetings variant is only
// slightly larger per message (piggybacked MIPs vectors).

#include <cstdio>

#include "bench/bench_util.h"
#include "metrics/summary.h"

namespace jxp {
namespace bench {

void PrintMessageSizeSeries(const core::JxpSimulation& sim, const char* label,
                            size_t max_meetings_per_peer) {
  for (size_t m = 0; m < max_meetings_per_peer; ++m) {
    std::vector<double> kbytes;
    for (p2p::PeerId p = 0; p < sim.network().NumPeers(); ++p) {
      const auto& series = sim.network().TrafficOf(p).bytes_per_meeting;
      if (m < series.size()) kbytes.push_back(series[m] / 1024.0);
    }
    if (kbytes.size() < 4) break;  // Too few peers reached this meeting count.
    const metrics::Summary s = metrics::Summarize(kbytes);
    std::printf("%s\t%zu\t%.1f\t%.1f\t%.1f\t%zu\n", label, m + 1, s.q1, s.median, s.q3,
                s.count);
  }
}

void Run(int argc, char** argv) {
  const BenchConfig config = BenchConfig::FromFlags(argc, argv);
  const datasets::Collection collection = MakeCollection("amazon", config);
  PrintHeader("Figure 11: message size per meeting (Amazon)", collection, config);
  std::printf("series\tmeetings_per_peer\tq1_kb\tmedian_kb\tq3_kb\tpeers\n");
  for (const core::SelectionStrategy strategy :
       {core::SelectionStrategy::kRandom, core::SelectionStrategy::kPreMeetings}) {
    core::SimulationConfig sim_config;
    sim_config.jxp = BenchJxpOptions();
    sim_config.jxp.wire_mode = config.wire_mode;
    sim_config.strategy = strategy;
    sim_config.seed = config.seed;
    sim_config.eval_top_k = 100;
    core::JxpSimulation sim(collection.data.graph,
                            PaperPartition(collection, config, config.seed), sim_config);
    sim.RunMeetings(config.meetings);
    PrintMessageSizeSeries(sim,
                           strategy == core::SelectionStrategy::kRandom
                               ? "without_pre_meetings"
                               : "with_pre_meetings",
                           50);
    // Total traffic, the paper's bandwidth bottom line.
    PrintTrafficSummary(sim);
  }
}

}  // namespace bench
}  // namespace jxp

int main(int argc, char** argv) {
  jxp::bench::Run(argc, argv);
  return 0;
}
