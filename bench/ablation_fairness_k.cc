// Ablation A3: the fairness knob of the biased peer-selection strategy.
// Section 5.3 requires every k-th selection to be uniformly random for the
// convergence proof to apply; this bench sweeps k and reports the accuracy
// reached after a fixed meeting budget. Too small a k wastes the bias; too
// large a k risks starving peers that the cache chains never reach.

#include "bench/bench_util.h"

namespace jxp {
namespace bench {

void Run(int argc, char** argv) {
  const BenchConfig config = BenchConfig::FromFlags(argc, argv);
  const datasets::Collection collection = MakeCollection("amazon", config);
  PrintHeader("Ablation A3: fairness parameter k of the pre-meetings strategy (Amazon)",
              collection, config);
  std::printf("random_every_k\tfootrule\tlinear_error\n");
  for (const size_t k : {2u, 5u, 10u, 25u, 100u}) {
    core::SimulationConfig sim_config;
    sim_config.jxp = BenchJxpOptions();
    sim_config.strategy = core::SelectionStrategy::kPreMeetings;
    sim_config.pre_meeting.random_every_k = k;
    sim_config.seed = config.seed;
    sim_config.eval_top_k = config.top_k;
    core::JxpSimulation sim(collection.data.graph,
                            PaperPartition(collection, config, config.seed), sim_config);
    sim.RunMeetings(config.meetings);
    const core::AccuracyPoint point = sim.Evaluate();
    std::printf("%zu\t%.6f\t%.8g\n", k, point.footrule, point.linear_error);
    std::fflush(stdout);
  }
}

}  // namespace bench
}  // namespace jxp

int main(int argc, char** argv) {
  jxp::bench::Run(argc, argv);
  return 0;
}
