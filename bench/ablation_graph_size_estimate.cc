// Ablation A4: sensitivity to the global-graph-size estimate N. The paper
// assumes N "is known or can be estimated with decent accuracy" and argues
// the assumption is not critical; this bench quantifies that claim by
// running JXP with N mis-estimated by up to 2x in both directions.

#include "bench/bench_util.h"

namespace jxp {
namespace bench {

void Run(int argc, char** argv) {
  const BenchConfig config = BenchConfig::FromFlags(argc, argv);
  const datasets::Collection collection = MakeCollection("amazon", config);
  PrintHeader("Ablation A4: sensitivity to the graph-size estimate N (Amazon)",
              collection, config);
  const double true_n = static_cast<double>(collection.data.graph.NumNodes());
  std::printf("estimate_over_true_N\tfootrule\tlinear_error\n");
  for (const double factor : {0.5, 0.75, 1.0, 1.5, 2.0}) {
    core::SimulationConfig sim_config;
    sim_config.jxp = BenchJxpOptions();
    sim_config.seed = config.seed;
    sim_config.eval_top_k = config.top_k;
    sim_config.global_size_estimate =
        std::max<size_t>(static_cast<size_t>(true_n * factor),
                         collection.data.graph.NumNodes() / 2 + 1);
    core::JxpSimulation sim(collection.data.graph,
                            PaperPartition(collection, config, config.seed), sim_config);
    sim.RunMeetings(config.meetings);
    const core::AccuracyPoint point = sim.Evaluate();
    std::printf("%.2f\t%.6f\t%.8g\n", factor, point.footrule, point.linear_error);
    std::fflush(stdout);
  }
}

}  // namespace bench
}  // namespace jxp

int main(int argc, char** argv) {
  jxp::bench::Run(argc, argv);
  return 0;
}
