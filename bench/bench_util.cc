#include "bench/bench_util.h"

#include <cstdio>
#include <cstdlib>
#include <string_view>

#include "common/check.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace jxp {
namespace bench {

namespace {

/// The bench-wide telemetry sink. Leaked deliberately: the atexit metrics
/// dump below must be able to write after main returns, regardless of
/// static-destruction order.
obs::JsonlTraceSink* g_bench_sink = nullptr;

void DumpMetricsAtExit() {
  if (g_bench_sink == nullptr) return;
  // One JSON line per metric, through the same sink as the spans so the
  // whole run lives in one stream.
  const std::string lines = obs::MetricsRegistry::Global().Snapshot().ToJsonLines();
  std::string_view rest = lines;
  while (!rest.empty()) {
    const size_t nl = rest.find('\n');
    const std::string_view line = rest.substr(0, nl);
    if (!line.empty()) g_bench_sink->WriteLine(line);
    if (nl == std::string_view::npos) break;
    rest.remove_prefix(nl + 1);
  }
  obs::InstallTraceSink(nullptr);
  g_bench_sink->Flush();
}

/// Installs the JSON-lines sink at config.metrics_out (if set) and emits a
/// "bench_start" event identifying the binary and configuration. Called
/// once, from FromFlags, so every bench binary gets telemetry for free.
void StartBenchTelemetry(const char* argv0, const BenchConfig& config) {
  if (config.metrics_out.empty()) return;
  auto sink = obs::JsonlTraceSink::Open(config.metrics_out);
  JXP_CHECK(sink != nullptr) << "cannot open --metrics_out path " << config.metrics_out;
  g_bench_sink = sink.release();
  obs::InstallTraceSink(g_bench_sink);
  std::atexit(DumpMetricsAtExit);

  std::string_view bench_name = argv0 == nullptr ? "bench" : argv0;
  if (const size_t slash = bench_name.rfind('/'); slash != std::string_view::npos) {
    bench_name.remove_prefix(slash + 1);
  }
  obs::EmitEvent("bench_start", [&](obs::JsonWriter& writer) {
    writer.Field("bench", bench_name)
        .Field("amazon_scale", config.amazon_scale)
        .Field("web_scale", config.web_scale)
        .Field("peers_per_category", config.peers_per_category)
        .Field("meetings", config.meetings)
        .Field("eval_every", config.eval_every)
        .Field("top_k", config.top_k)
        .Field("seed", config.seed)
        .Field("wire",
               config.wire_mode == core::MeetingWireMode::kMeasured ? "measured"
                                                                    : "estimated");
  });
}

}  // namespace

BenchConfig BenchConfig::FromFlags(int argc, char** argv) {
  Flags flags;
  JXP_CHECK_OK(flags.Parse(argc, argv));
  BenchConfig config;
  config.amazon_scale = flags.GetDouble("amazon-scale", config.amazon_scale);
  config.web_scale = flags.GetDouble("web-scale", config.web_scale);
  // --scale overrides both (e.g. --scale=1 for paper-sized collections).
  if (flags.Has("scale")) {
    config.amazon_scale = flags.GetDouble("scale", 1.0);
    config.web_scale = flags.GetDouble("scale", 1.0);
  }
  config.peers_per_category =
      static_cast<size_t>(flags.GetInt("peers-per-category",
                                       static_cast<int64_t>(config.peers_per_category)));
  config.meetings = static_cast<size_t>(
      flags.GetInt("meetings", static_cast<int64_t>(config.meetings)));
  config.eval_every = static_cast<size_t>(
      flags.GetInt("eval-every", static_cast<int64_t>(config.eval_every)));
  config.top_k =
      static_cast<size_t>(flags.GetInt("topk", static_cast<int64_t>(config.top_k)));
  config.queries =
      static_cast<size_t>(flags.GetInt("queries", static_cast<int64_t>(config.queries)));
  config.zipf_s = flags.GetDouble("zipf_s", config.zipf_s);
  config.zipf_s = flags.GetDouble("zipf-s", config.zipf_s);
  config.seed = static_cast<uint64_t>(flags.GetInt("seed", static_cast<int64_t>(config.seed)));
  config.metrics_out = flags.GetString("metrics_out", config.metrics_out);
  config.metrics_out = flags.GetString("metrics-out", config.metrics_out);
  const std::string wire = flags.GetString("wire", "estimated");
  if (wire == "measured") {
    config.wire_mode = core::MeetingWireMode::kMeasured;
  } else {
    JXP_CHECK(wire == "estimated") << "unknown --wire mode " << wire
                                   << " (expected estimated|measured)";
  }
  StartBenchTelemetry(argc > 0 ? argv[0] : nullptr, config);
  return config;
}

datasets::Collection MakeCollection(const std::string& name, const BenchConfig& config) {
  if (name == "amazon") return datasets::MakeAmazonLike(config.amazon_scale, config.seed);
  JXP_CHECK(name == "webcrawl") << "unknown collection " << name;
  return datasets::MakeWebCrawlLike(config.web_scale, config.seed);
}

std::vector<std::vector<graph::PageId>> PaperPartition(
    const datasets::Collection& collection, const BenchConfig& config, uint64_t seed) {
  Random rng(seed);
  crawler::PartitionOptions options;
  options.peers_per_category = config.peers_per_category;
  const size_t num_peers =
      config.peers_per_category * collection.data.num_categories;
  // ~3x total overlap across the network, as autonomous crawls of popular
  // regions produce, with widely varying per-peer crawl capacities (the
  // paper's peers span a ~20x size range, Table 1).
  options.crawler.max_pages =
      std::max<size_t>(20, collection.data.graph.NumNodes() * 3 / num_peers);
  options.crawler.max_depth = 8;
  options.budget_spread = 5.0;
  return CrawlBasedPartition(collection.data, options, rng);
}

core::JxpOptions BenchJxpOptions() {
  core::JxpOptions options;
  options.damping = 0.85;
  options.pr_tolerance = 1e-11;
  options.pr_max_iterations = 300;
  return options;
}

void PrintHeader(const std::string& title, const datasets::Collection& collection,
                 const BenchConfig& config) {
  std::printf("# %s\n", title.c_str());
  std::printf("# collection=%s pages=%zu links=%zu peers=%zu seed=%llu\n",
              collection.name.c_str(), collection.data.graph.NumNodes(),
              collection.data.graph.NumEdges(),
              config.peers_per_category * collection.data.num_categories,
              static_cast<unsigned long long>(config.seed));
}

void PrintRow(const std::vector<double>& values) {
  for (size_t i = 0; i < values.size(); ++i) {
    std::printf(i == 0 ? "%g" : "\t%g", values[i]);
  }
  std::printf("\n");
}

void RunConvergenceSeries(core::JxpSimulation& sim, const BenchConfig& config,
                          const std::string& label) {
  const auto emit = [&](size_t meetings, const core::AccuracyPoint& point) {
    obs::EmitEvent("convergence", [&](obs::JsonWriter& writer) {
      writer.Field("series", label)
          .Field("meetings", meetings)
          .Field("footrule", point.footrule)
          .Field("linear_error", point.linear_error)
          .Field("total_traffic_bytes", sim.network().TotalTrafficBytes());
    });
  };
  const core::AccuracyPoint start = sim.Evaluate();
  std::printf("%s\t0\t%.6f\t%.8g\n", label.c_str(), start.footrule, start.linear_error);
  std::fflush(stdout);
  emit(0, start);
  while (sim.meetings_done() < config.meetings) {
    const size_t batch =
        std::min(config.eval_every, config.meetings - sim.meetings_done());
    sim.RunMeetings(batch);
    const core::AccuracyPoint point = sim.Evaluate();
    std::printf("%s\t%zu\t%.6f\t%.8g\n", label.c_str(), sim.meetings_done(),
                point.footrule, point.linear_error);
    std::fflush(stdout);
    emit(sim.meetings_done(), point);
  }
}

void PrintTrafficSummary(const core::JxpSimulation& sim) {
  const p2p::PeerTrafficSummary traffic = sim.network().AggregateTraffic();
  const double estimated = sim.total_estimated_traffic_bytes();
  std::printf("# total traffic: %.1f MB over %zu meetings, per meeting mean %.1f KB / "
              "max %.1f KB\n",
              traffic.total_bytes / (1024.0 * 1024.0), sim.meetings_done(),
              traffic.mean_bytes / 1024.0, traffic.max_bytes / 1024.0);
  // Under --wire=measured the two totals differ; the ratio is the wire
  // format's real cost against the paper's analytic byte model.
  std::printf("# estimated (analytic model): %.1f MB, measured/estimated %.3f\n",
              estimated / (1024.0 * 1024.0),
              estimated > 0 ? traffic.total_bytes / estimated : 0.0);
  obs::EmitEvent("traffic_summary", [&](obs::JsonWriter& writer) {
    writer.Field("meetings", sim.meetings_done())
        .Field("total_bytes", traffic.total_bytes)
        .Field("mean_bytes", traffic.mean_bytes)
        .Field("max_bytes", traffic.max_bytes)
        .Field("estimated_total_bytes", estimated)
        .Field("measured_over_estimated",
               estimated > 0 ? traffic.total_bytes / estimated : 0.0);
  });
}

}  // namespace bench
}  // namespace jxp
