#include "bench/bench_util.h"

#include <cstdio>

#include "common/check.h"

namespace jxp {
namespace bench {

BenchConfig BenchConfig::FromFlags(int argc, char** argv) {
  Flags flags;
  JXP_CHECK_OK(flags.Parse(argc, argv));
  BenchConfig config;
  config.amazon_scale = flags.GetDouble("amazon-scale", config.amazon_scale);
  config.web_scale = flags.GetDouble("web-scale", config.web_scale);
  // --scale overrides both (e.g. --scale=1 for paper-sized collections).
  if (flags.Has("scale")) {
    config.amazon_scale = flags.GetDouble("scale", 1.0);
    config.web_scale = flags.GetDouble("scale", 1.0);
  }
  config.peers_per_category =
      static_cast<size_t>(flags.GetInt("peers-per-category",
                                       static_cast<int64_t>(config.peers_per_category)));
  config.meetings = static_cast<size_t>(
      flags.GetInt("meetings", static_cast<int64_t>(config.meetings)));
  config.eval_every = static_cast<size_t>(
      flags.GetInt("eval-every", static_cast<int64_t>(config.eval_every)));
  config.top_k =
      static_cast<size_t>(flags.GetInt("topk", static_cast<int64_t>(config.top_k)));
  config.seed = static_cast<uint64_t>(flags.GetInt("seed", static_cast<int64_t>(config.seed)));
  return config;
}

datasets::Collection MakeCollection(const std::string& name, const BenchConfig& config) {
  if (name == "amazon") return datasets::MakeAmazonLike(config.amazon_scale, config.seed);
  JXP_CHECK(name == "webcrawl") << "unknown collection " << name;
  return datasets::MakeWebCrawlLike(config.web_scale, config.seed);
}

std::vector<std::vector<graph::PageId>> PaperPartition(
    const datasets::Collection& collection, const BenchConfig& config, uint64_t seed) {
  Random rng(seed);
  crawler::PartitionOptions options;
  options.peers_per_category = config.peers_per_category;
  const size_t num_peers =
      config.peers_per_category * collection.data.num_categories;
  // ~3x total overlap across the network, as autonomous crawls of popular
  // regions produce, with widely varying per-peer crawl capacities (the
  // paper's peers span a ~20x size range, Table 1).
  options.crawler.max_pages =
      std::max<size_t>(20, collection.data.graph.NumNodes() * 3 / num_peers);
  options.crawler.max_depth = 8;
  options.budget_spread = 5.0;
  return CrawlBasedPartition(collection.data, options, rng);
}

core::JxpOptions BenchJxpOptions() {
  core::JxpOptions options;
  options.damping = 0.85;
  options.pr_tolerance = 1e-11;
  options.pr_max_iterations = 300;
  return options;
}

void PrintHeader(const std::string& title, const datasets::Collection& collection,
                 const BenchConfig& config) {
  std::printf("# %s\n", title.c_str());
  std::printf("# collection=%s pages=%zu links=%zu peers=%zu seed=%llu\n",
              collection.name.c_str(), collection.data.graph.NumNodes(),
              collection.data.graph.NumEdges(),
              config.peers_per_category * collection.data.num_categories,
              static_cast<unsigned long long>(config.seed));
}

void PrintRow(const std::vector<double>& values) {
  for (size_t i = 0; i < values.size(); ++i) {
    std::printf(i == 0 ? "%g" : "\t%g", values[i]);
  }
  std::printf("\n");
}

void RunConvergenceSeries(core::JxpSimulation& sim, const BenchConfig& config,
                          const std::string& label) {
  const core::AccuracyPoint start = sim.Evaluate();
  std::printf("%s\t0\t%.6f\t%.8g\n", label.c_str(), start.footrule, start.linear_error);
  std::fflush(stdout);
  while (sim.meetings_done() < config.meetings) {
    const size_t batch =
        std::min(config.eval_every, config.meetings - sim.meetings_done());
    sim.RunMeetings(batch);
    const core::AccuracyPoint point = sim.Evaluate();
    std::printf("%s\t%zu\t%.6f\t%.8g\n", label.c_str(), sim.meetings_done(),
                point.footrule, point.linear_error);
    std::fflush(stdout);
  }
}

}  // namespace bench
}  // namespace jxp
