// Sustained-load bench of the serving tier: how many queries per second can
// the MaxScore server sustain before its p99 end-to-end latency breaks the
// SLO, and where does the time go per stage?
//
// Three arms over the same Zipfian query trace:
//
//   batch   one deterministic ServeBatch pass (caches on, 1 thread). Its
//           work counters — postings decoded, cache hits — are pure
//           functions of the trace and are what CI gates against
//           bench/baselines/BENCH_LOAD.json. No latency is gated.
//   closed  N workers serving back-to-back (classic closed loop). Reported
//           for comparison only: a closed loop re-schedules the next query
//           only after the previous one finishes, so a slow query delays
//           the offered load and the measured percentiles hide exactly the
//           stalls an SLO cares about (coordinated omission).
//   open    the headline arm. Arrivals follow a Poisson process at a target
//           rate (exponential inter-arrival gaps, fixed up front from the
//           bench seed); each query's latency is measured from its
//           *scheduled arrival*, not from when a worker got around to
//           sending it, so queueing delay under overload is charged to the
//           queries that suffered it. The target rate ramps geometrically
//           until p99 exceeds --slo_ms; the last rate that held the SLO is
//           reported as max_sustainable_qps.
//
// Every arm reports per-stage latency percentiles (p50/p90/p99/p99.9 in
// nanoseconds) from the obs::HdrHistogram-backed LatencyRecorder, one JSON
// line per measurement (and a "bench_result" trace event when
// --metrics_out is set). The open and closed arms serve through
// QueryServer::ServeConcurrent, which bypasses the (single-writer) LRU
// caches; the bench cross-checks that path bit for bit against the batch
// oracle before taking any measurements.
//
// Extra flags on top of the common set:
//   --smoke              CI-sized run: short levels, fewer of them.
//   --threads=N          worker threads of the open/closed arms (default 4).
//   --duration_seconds=D seconds per measured level (default 2).
//   --slo_ms=L           p99 SLO of the open-loop ramp (default 20 ms).
//   --qps_start=R        first open-loop target rate (default 50).
//   --qps_ramp=F         geometric ramp factor (default 2).
//   --max_levels=K       ramp length cap (default 6).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/check.h"
#include "common/timer.h"
#include "obs/hdr_histogram.h"
#include "obs/json_writer.h"
#include "obs/latency_recorder.h"
#include "obs/trace.h"
#include "pagerank/pagerank.h"
#include "qp/serving.h"

namespace jxp {
namespace bench {

namespace {

/// Same fine blocks as micro_query_throughput (see the comment there): the
/// Section 6.3 layout needs small blocks before block-max skipping engages.
constexpr size_t kBenchBlockSize = 16;

struct LoadFlags {
  bool smoke = false;
  size_t threads = 4;
  double duration_seconds = 2.0;
  double slo_ms = 20.0;
  double qps_start = 50.0;
  double qps_ramp = 2.0;
  size_t max_levels = 6;
};

LoadFlags ParseLoadFlags(int argc, char** argv) {
  Flags flags;
  JXP_CHECK_OK(flags.Parse(argc, argv));
  LoadFlags f;
  f.smoke = flags.GetBool("smoke", f.smoke);
  if (f.smoke) {
    // CI-sized: two short levels still exercise the ramp logic (one level
    // can hold the SLO, the next can break it) without minutes of wall time.
    f.duration_seconds = 0.4;
    f.max_levels = 2;
    f.threads = 2;
  }
  f.threads = static_cast<size_t>(
      flags.GetInt("threads", static_cast<int64_t>(f.threads)));
  f.duration_seconds = flags.GetDouble("duration_seconds", f.duration_seconds);
  f.duration_seconds = flags.GetDouble("duration-seconds", f.duration_seconds);
  f.slo_ms = flags.GetDouble("slo_ms", f.slo_ms);
  f.slo_ms = flags.GetDouble("slo-ms", f.slo_ms);
  f.qps_start = flags.GetDouble("qps_start", f.qps_start);
  f.qps_start = flags.GetDouble("qps-start", f.qps_start);
  f.qps_ramp = flags.GetDouble("qps_ramp", f.qps_ramp);
  f.qps_ramp = flags.GetDouble("qps-ramp", f.qps_ramp);
  f.max_levels = static_cast<size_t>(
      flags.GetInt("max_levels", static_cast<int64_t>(f.max_levels)));
  JXP_CHECK_GT(f.threads, 0u);
  JXP_CHECK_GT(f.qps_start, 0.0);
  JXP_CHECK_GT(f.qps_ramp, 1.0);
  return f;
}

/// Draws `draws` pool indices under a Zipf(s) law (rank 0 most popular),
/// identical to micro_query_throughput's trace generator.
std::vector<size_t> SampleZipfTrace(size_t pool_size, size_t draws, double s,
                                    Random& rng) {
  std::vector<double> cdf(pool_size);
  double total = 0;
  for (size_t i = 0; i < pool_size; ++i) {
    total += std::pow(static_cast<double>(i + 1), -s);
    cdf[i] = total;
  }
  std::vector<size_t> picks;
  picks.reserve(draws);
  for (size_t i = 0; i < draws; ++i) {
    const double u = rng.NextDouble() * total;
    const size_t pick = static_cast<size_t>(
        std::upper_bound(cdf.begin(), cdf.end(), u) - cdf.begin());
    picks.push_back(std::min(pick, pool_size - 1));
  }
  return picks;
}

/// One measured serving run: end-to-end latencies (open loop: from the
/// scheduled arrival; closed loop: from the send) plus the per-stage
/// recorder, both merged across workers — integer-count merges, so the
/// aggregate is independent of which worker served which query. Filled via
/// an out-param (LatencyRecorder is neither copyable nor movable).
struct LoadResult {
  size_t queries = 0;
  double wall_seconds = 0;
  obs::HdrHistogram e2e;
  obs::LatencyRecorder stages;
};

/// Closed loop: each worker serves its share of the trace back-to-back.
void RunClosedLoop(qp::QueryServer& server, const std::vector<qp::ServedQuery>& trace,
                   size_t threads, double duration_seconds, LoadResult& out) {
  std::vector<obs::HdrHistogram> e2e(threads);
  std::vector<std::unique_ptr<obs::LatencyRecorder>> recorders;
  for (size_t w = 0; w < threads; ++w) {
    recorders.push_back(std::make_unique<obs::LatencyRecorder>());
  }
  std::atomic<size_t> served{0};
  const uint64_t start_ns = MonotonicNanos();
  const uint64_t deadline_ns =
      start_ns + static_cast<uint64_t>(duration_seconds * 1e9);
  std::vector<std::thread> workers;
  for (size_t w = 0; w < threads; ++w) {
    workers.emplace_back([&, w] {
      size_t i = w;
      while (MonotonicNanos() < deadline_ns) {
        const uint64_t t0 = MonotonicNanos();
        qp::ServedResult result;
        server.ServeConcurrent(trace[i % trace.size()], result, recorders[w].get());
        e2e[w].Record(MonotonicNanos() - t0);
        served.fetch_add(1, std::memory_order_relaxed);
        i += threads;
      }
    });
  }
  for (std::thread& t : workers) t.join();
  out.wall_seconds = static_cast<double>(MonotonicNanos() - start_ns) * 1e-9;
  out.queries = served.load();
  for (size_t w = 0; w < threads; ++w) {
    out.e2e.MergeFrom(e2e[w]);
    out.stages.MergeFrom(*recorders[w]);
  }
}

/// Open loop at `target_qps`: a Poisson arrival schedule is fixed up front
/// (deterministic in `seed`), workers own arrivals round-robin, and each
/// latency runs from the *scheduled* arrival — a worker that falls behind
/// keeps serving as fast as it can, and the backlog it accumulates is
/// charged to the delayed queries instead of silently thinning the load.
void RunOpenLoop(qp::QueryServer& server, const std::vector<qp::ServedQuery>& trace,
                 size_t threads, double duration_seconds, double target_qps,
                 uint64_t seed, LoadResult& out) {
  // Exponential inter-arrival gaps with mean 1/rate, in nanoseconds.
  std::vector<uint64_t> arrival_ns;
  Random rng(seed);
  double t_seconds = 0;
  while (t_seconds < duration_seconds) {
    const double u = rng.NextDouble();
    t_seconds += -std::log(1.0 - u) / target_qps;
    if (t_seconds >= duration_seconds) break;
    arrival_ns.push_back(static_cast<uint64_t>(t_seconds * 1e9));
  }

  std::vector<obs::HdrHistogram> e2e(threads);
  std::vector<std::unique_ptr<obs::LatencyRecorder>> recorders;
  for (size_t w = 0; w < threads; ++w) {
    recorders.push_back(std::make_unique<obs::LatencyRecorder>());
  }
  const uint64_t start_ns = MonotonicNanos();
  std::vector<std::thread> workers;
  for (size_t w = 0; w < threads; ++w) {
    workers.emplace_back([&, w] {
      for (size_t i = w; i < arrival_ns.size(); i += threads) {
        const uint64_t scheduled = start_ns + arrival_ns[i];
        const uint64_t now = MonotonicNanos();
        if (now < scheduled) {
          std::this_thread::sleep_for(std::chrono::nanoseconds(scheduled - now));
        }
        qp::ServedResult result;
        server.ServeConcurrent(trace[i % trace.size()], result, recorders[w].get());
        const uint64_t done = MonotonicNanos();
        e2e[w].Record(done > scheduled ? done - scheduled : 0);
      }
    });
  }
  for (std::thread& t : workers) t.join();
  out.wall_seconds = static_cast<double>(MonotonicNanos() - start_ns) * 1e-9;
  out.queries = arrival_ns.size();
  for (size_t w = 0; w < threads; ++w) {
    out.e2e.MergeFrom(e2e[w]);
    out.stages.MergeFrom(*recorders[w]);
  }
}

/// Shared latency fields of one measured arm: e2e percentiles in both ns
/// and ms (the SLO is stated in ms) plus the per-stage breakdown.
void FillLatencyFields(obs::JsonWriter& writer, const LoadResult& run) {
  writer.Field("queries", run.queries)
      .Field("wall_seconds", run.wall_seconds)
      .Field("achieved_qps", run.wall_seconds > 0
                                 ? static_cast<double>(run.queries) / run.wall_seconds
                                 : 0.0)
      .Field("p50_ms", static_cast<double>(run.e2e.ValueAtPercentile(50)) * 1e-6)
      .Field("p90_ms", static_cast<double>(run.e2e.ValueAtPercentile(90)) * 1e-6)
      .Field("p99_ms", static_cast<double>(run.e2e.ValueAtPercentile(99)) * 1e-6)
      .Field("p999_ms", static_cast<double>(run.e2e.ValueAtPercentile(99.9)) * 1e-6)
      .Field("max_ms", static_cast<double>(run.e2e.max()) * 1e-6);
  run.stages.WriteJsonFields(writer, "stage_");
}

void EmitLine(const std::function<void(obs::JsonWriter&)>& fill) {
  obs::JsonWriter line;
  fill(line);
  std::printf("%s\n", line.TakeLine().c_str());
  std::fflush(stdout);
  obs::EmitEvent("bench_result", fill);
}

}  // namespace

void Run(int argc, char** argv) {
  BenchConfig config = BenchConfig::FromFlags(argc, argv);
  const LoadFlags load = ParseLoadFlags(argc, argv);
  const datasets::Collection collection = MakeCollection("webcrawl", config);
  PrintHeader("bench: sustained serving load (open-loop SLO ramp)", collection,
              config);

  // Section 6.3 peer layout and query pool, identical to
  // micro_query_throughput so the two benches describe the same tier.
  Random rng(config.seed);
  const auto fragments = crawler::FragmentSplitPartition(collection.data, 4, 3, rng);
  const search::Corpus corpus = search::Corpus::Generate(
      collection.data, search::CorpusOptions(), config.seed ^ 0xc0de);
  std::vector<std::unique_ptr<search::PeerIndex>> indexes;
  for (size_t p = 0; p < fragments.size(); ++p) {
    auto index = std::make_unique<search::PeerIndex>(static_cast<p2p::PeerId>(p));
    for (graph::PageId page : fragments[p]) index->AddDocument(corpus.DocumentFor(page));
    indexes.push_back(std::move(index));
  }
  const auto truth =
      pagerank::ComputePageRank(collection.data.graph, pagerank::PageRankOptions());
  std::unordered_map<graph::PageId, double> prior;
  for (graph::PageId p = 0; p < collection.data.graph.NumNodes(); ++p) {
    prior[p] = truth.scores[p];
  }

  std::vector<qp::ServedQuery> pool;
  Random qrng(config.seed + 1);
  for (size_t i = 0; i < config.queries; ++i) {
    qp::ServedQuery query;
    query.terms = corpus.SampleQueryTerms(
        static_cast<graph::CategoryId>(i % collection.data.num_categories),
        1 + i % 3, qrng);
    pool.push_back(std::move(query));
  }
  Random zrng(config.seed + 2);
  const std::vector<size_t> zipf_picks =
      SampleZipfTrace(pool.size(), config.queries, config.zipf_s, zrng);
  std::vector<qp::ServedQuery> zipf_trace;
  zipf_trace.reserve(zipf_picks.size());
  for (const size_t pick : zipf_picks) zipf_trace.push_back(pool[pick]);

  // The production-shaped server: MaxScore over the packed codec with the
  // full serving tier (caches + priming).
  qp::ServingOptions options;
  options.processor = qp::ProcessorKind::kMaxScore;
  options.k = 10;
  options.num_threads = 1;
  options.threshold_priming = true;
  options.result_cache_capacity = pool.size();
  options.threshold_cache_capacity = pool.size();
  qp::QueryServer server(&corpus, options);
  qp::CompressedIndexOptions copts;
  copts.block_size = kBenchBlockSize;
  copts.codec = qp::BlockCodec::kPacked;
  copts.prior_weight = 0.4;
  for (const auto& index : indexes) server.AddPeer(index.get(), prior, copts);

  // --- Arm 1: deterministic batch pass (the CI-gated counters). Serve the
  // cold pool, then the Zipfian repeat trace against the warm caches — the
  // counters of both serves are pure functions of (collection, seed, trace).
  obs::LatencyRecorder batch_recorder;
  server.SetLatencyRecorder(&batch_recorder);
  const std::vector<qp::ServedResult> cold = server.ServeBatch(pool);
  const std::vector<qp::ServedResult> warm = server.ServeBatch(zipf_trace);
  server.SetLatencyRecorder(nullptr);
  size_t cold_postings = 0;
  size_t warm_hits = 0;
  size_t warm_postings = 0;
  for (const qp::ServedResult& r : cold) cold_postings += r.stats.decode.postings_decoded;
  for (const qp::ServedResult& r : warm) {
    warm_postings += r.stats.decode.postings_decoded;
    if (r.cache_hit) ++warm_hits;
  }
  EmitLine([&](obs::JsonWriter& writer) {
    writer.Field("bench", "sustained_load")
        .Field("arm", "batch")
        .Field("queries", pool.size() + zipf_trace.size())
        .Field("peers", indexes.size())
        .Field("k", options.k)
        .Field("zipf_s", config.zipf_s)
        .Field("cold_postings_decoded", cold_postings)
        .Field("warm_postings_decoded", warm_postings)
        .Field("warm_cache_hits", warm_hits)
        .Field("warm_cache_misses", zipf_trace.size() - warm_hits);
    batch_recorder.WriteJsonFields(writer, "stage_");
  });

  // --- Cross-check: the cache-bypassing concurrent path must reproduce the
  // batch oracle bit for bit (same pages, same doubles) before any load is
  // offered through it.
  for (size_t q = 0; q < pool.size(); ++q) {
    qp::ServedResult result;
    server.ServeConcurrent(pool[q], result);
    JXP_CHECK_EQ(result.results.size(), cold[q].results.size())
        << "ServeConcurrent diverged from ServeBatch on query " << q;
    for (size_t i = 0; i < result.results.size(); ++i) {
      JXP_CHECK(result.results[i].first == cold[q].results[i].first &&
                result.results[i].second == cold[q].results[i].second)
          << "ServeConcurrent diverged from ServeBatch on query " << q << " rank "
          << i;
    }
  }

  // --- Arm 2: closed loop (comparison only; see file comment).
  {
    LoadResult closed;
    RunClosedLoop(server, zipf_trace, load.threads, load.duration_seconds, closed);
    EmitLine([&](obs::JsonWriter& writer) {
      writer.Field("bench", "sustained_load")
          .Field("arm", "closed")
          .Field("threads", load.threads);
      FillLatencyFields(writer, closed);
    });
  }

  // --- Arm 3: the open-loop SLO ramp.
  double max_sustainable_qps = 0;
  double broke_at_qps = 0;
  double target = load.qps_start;
  for (size_t level = 0; level < load.max_levels; ++level) {
    LoadResult run;
    RunOpenLoop(server, zipf_trace, load.threads, load.duration_seconds, target,
                config.seed ^ (0xa11e + level), run);
    const double p99_ms = static_cast<double>(run.e2e.ValueAtPercentile(99)) * 1e-6;
    const bool met_slo = run.queries > 0 && p99_ms <= load.slo_ms;
    EmitLine([&](obs::JsonWriter& writer) {
      writer.Field("bench", "sustained_load")
          .Field("arm", "open")
          .Field("threads", load.threads)
          .Field("target_qps", target)
          .Field("slo_ms", load.slo_ms)
          .Field("met_slo", met_slo);
      FillLatencyFields(writer, run);
    });
    if (met_slo) {
      max_sustainable_qps = target;
    } else {
      broke_at_qps = target;
      break;
    }
    target *= load.qps_ramp;
  }

  EmitLine([&](obs::JsonWriter& writer) {
    writer.Field("bench", "sustained_load")
        .Field("arm", "summary")
        .Field("threads", load.threads)
        .Field("slo_ms", load.slo_ms)
        .Field("max_sustainable_qps", max_sustainable_qps)
        .Field("broke_at_qps", broke_at_qps);
  });
}

}  // namespace bench
}  // namespace jxp

int main(int argc, char** argv) {
  jxp::bench::Run(argc, argv);
  return 0;
}
