#!/usr/bin/env python3
"""Bench-regression gate for the CI bench job (stdlib only).

Reads the stdout of micro_meeting_throughput, micro_query_throughput,
sustained_load, or micro_pagerank --churn (JSON result lines mixed with
'#' headers), reduces it to a
small summary of throughput / cost metrics, writes that summary as JSON,
and compares it against a committed baseline: the check fails when any
throughput metric drops by more than --threshold (default 25%), any cost
metric grows by more than the same margin, or any "exact" metric (the
deterministic work counters of sustained_load's batch arm) differs at all.
Latency percentiles are never gated — they land in the summary's "info"
section, which compare() ignores.

Usage:
  check_bench_regression.py --bench meeting --input meeting.log \
      --output BENCH_MEETING.json [--baseline bench/baselines/BENCH_MEETING.json]
      [--threshold 0.25] [--update-baseline]

With --update-baseline the summary is also written to the baseline path
(used locally to refresh the committed numbers after an intentional change).
"""

import argparse
import json
import sys


def parse_json_lines(path):
    """Yields every line of `path` that parses as a JSON object."""
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line.startswith("{"):
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(obj, dict):
                yield obj


def summarize_meeting(records):
    """Summary of micro_meeting_throughput: best meetings/sec across thread
    counts (wall-clock noise is absorbed by taking the max) and the
    single-thread per-merge CPU cost."""
    best_rate = 0.0
    merge_cpu_1t = None
    for rec in records:
        if rec.get("bench") != "meeting_throughput":
            continue
        best_rate = max(best_rate, float(rec.get("meetings_per_sec", 0.0)))
        if rec.get("threads") == 1:
            merge_cpu_1t = float(rec.get("merge_cpu_millis_mean", 0.0))
    summary = {"higher_better": {}, "lower_better": {}}
    if best_rate > 0:
        summary["higher_better"]["meetings_per_sec"] = best_rate
    if merge_cpu_1t is not None and merge_cpu_1t > 0:
        summary["lower_better"]["merge_cpu_millis_mean_1t"] = merge_cpu_1t
    return summary


def summarize_query(records):
    """Summary of micro_query_throughput.

    Gated metrics are wall-clock qps of full-work serves (uncached arms on
    the cold trace, best across thread counts) plus deterministic work
    counters: per-codec compressed bytes per posting, the decode volume of
    the primed/cached arm on the cold trace, and the Zipfian-trace cache
    hit rate. The qps of the cache-warm Zipfian serve is near-free per
    query and too noisy to gate; it is reported under "info", which
    compare() ignores."""
    best_qps = {}
    info_qps = {}
    hit_rates = {}
    lower = {}
    for rec in records:
        if rec.get("bench") != "query_throughput":
            continue
        sweep = rec.get("sweep", "?")
        processor = rec.get("processor", "?")
        codec = rec.get("codec", "?")
        cached = bool(rec.get("cached", False))
        trace = rec.get("trace", "?")
        qps = float(rec.get("qps", 0.0))
        if rec.get("bytes_per_posting") is not None:
            lower["bytes_per_posting:%s" % codec] = float(rec["bytes_per_posting"])
        if cached:
            key = "qps:%s:%s:%s:cached:%s" % (sweep, processor, codec, trace)
            info_qps[key] = max(info_qps.get(key, 0.0), qps)
            if trace == "zipf":
                hit_rates["cache_hit_rate:%s:zipf" % sweep] = float(
                    rec.get("cache_hit_rate", 0.0))
            if trace == "cold" and rec.get("postings_decoded") is not None:
                lower["postings_decoded:%s:%s:primed:cold" % (sweep, processor)] = \
                    float(rec["postings_decoded"])
        elif trace == "cold":
            key = "qps:%s:%s:%s" % (sweep, processor, codec)
            best_qps[key] = max(best_qps.get(key, 0.0), qps)
    higher = dict(sorted(best_qps.items()))
    higher.update(sorted(hit_rates.items()))
    summary = {"higher_better": higher, "lower_better": dict(sorted(lower.items()))}
    if info_qps:
        summary["info"] = dict(sorted(info_qps.items()))
    return summary


def summarize_load(records):
    """Summary of sustained_load.

    The batch arm's work counters are pure functions of (collection, seed,
    trace) and are gated exactly — any drift means serving behavior changed,
    not that the machine was slow. Everything wall-clock — the open-loop
    ramp's percentiles, achieved qps, max_sustainable_qps — is info-only:
    one-core CI runners make latency gates pure noise."""
    exact = {}
    info = {}
    for rec in records:
        if rec.get("bench") != "sustained_load":
            continue
        arm = rec.get("arm", "?")
        if arm == "batch":
            for key in ("queries", "cold_postings_decoded",
                        "warm_postings_decoded", "warm_cache_hits",
                        "warm_cache_misses"):
                if rec.get(key) is not None:
                    exact["batch:%s" % key] = float(rec[key])
        elif arm == "open":
            prefix = "open:qps%g" % float(rec.get("target_qps", 0.0))
            for key in ("achieved_qps", "p50_ms", "p99_ms", "p999_ms",
                        "met_slo"):
                if rec.get(key) is not None:
                    info["%s:%s" % (prefix, key)] = float(rec[key])
        elif arm == "closed":
            for key in ("achieved_qps", "p50_ms", "p99_ms"):
                if rec.get(key) is not None:
                    info["closed:%s" % key] = float(rec[key])
        elif arm == "summary":
            info["max_sustainable_qps"] = float(
                rec.get("max_sustainable_qps", 0.0))
    summary = {"higher_better": {}, "lower_better": {},
               "exact": dict(sorted(exact.items()))}
    if info:
        summary["info"] = dict(sorted(info.items()))
    return summary


def summarize_pagerank(records):
    """Summary of micro_pagerank --churn.

    The trace is seeded, so the *solve counts* per arm are structural: the
    full arm runs one solve per meeting/churn event and the delta arm
    splits the same events between push repairs and fallbacks. Total solves
    per arm are gated exactly. The push/work counters depend on floating-
    point residual magnitudes near thresholds, so they get the ratio gate
    instead of an exact one: pushes and work ceilings, and a floor on
    work_ratio (full work / delta work) — the bench binary itself already
    exits nonzero unless the delta arm strictly beats the full arm, so the
    floor only catches gradual erosion. Wall-clock and the cross-arm score
    agreement are info-only."""
    exact = {}
    higher = {}
    lower = {}
    info = {}
    for rec in records:
        if rec.get("bench") != "pagerank_churn":
            continue
        arm = rec.get("arm", "?")
        if arm == "full":
            exact["full:solves"] = float(rec.get("full_solves", 0.0))
            exact["full:iterations"] = float(rec.get("full_iterations", 0.0))
            exact["full:work_entries"] = float(rec.get("full_work_entries", 0.0))
            info["full:wall_ms"] = float(rec.get("wall_ms", 0.0))
        elif arm == "delta":
            solves = (float(rec.get("incremental_solves", 0.0))
                      + float(rec.get("full_solves", 0.0)))
            exact["delta:solves"] = solves
            lower["delta:fallbacks"] = float(rec.get("fallbacks", 0.0))
            lower["delta:reseeds"] = float(rec.get("reseeds", 0.0))
            lower["delta:pushes"] = float(rec.get("pushes", 0.0))
            lower["delta:push_work_entries"] = float(
                rec.get("push_work_entries", 0.0))
            lower["delta:full_work_entries"] = float(
                rec.get("full_work_entries", 0.0))
            info["delta:wall_ms"] = float(rec.get("wall_ms", 0.0))
        elif arm == "compare":
            higher["work_ratio"] = float(rec.get("work_ratio", 0.0))
            info["max_score_diff"] = float(rec.get("max_score_diff", 0.0))
    summary = {"higher_better": dict(sorted(higher.items())),
               "lower_better": dict(sorted(lower.items())),
               "exact": dict(sorted(exact.items()))}
    if info:
        summary["info"] = dict(sorted(info.items()))
    return summary


def compare(summary, baseline, threshold):
    """Returns a list of regression messages (empty = pass)."""
    failures = []
    base_exact = baseline.get("exact", {})
    for name, current in summary.get("exact", {}).items():
        if name not in base_exact:
            print("note: no baseline for %s (skipped)" % name)
            continue
        base = float(base_exact[name])
        status = "OK" if current == base else "REGRESSION"
        print("%s %s: %.0f vs baseline %.0f (exact)" % (status, name, current, base))
        if current != base:
            failures.append("%s changed (%.0f -> %.0f); deterministic counter "
                            "must match exactly" % (name, base, current))
    for direction in ("higher_better", "lower_better"):
        base_metrics = baseline.get(direction, {})
        for name, current in summary.get(direction, {}).items():
            if name not in base_metrics:
                print("note: no baseline for %s (skipped)" % name)
                continue
            base = float(base_metrics[name])
            if base <= 0:
                continue
            if direction == "higher_better":
                floor = base * (1.0 - threshold)
                status = "OK" if current >= floor else "REGRESSION"
                print("%s %s: %.3f vs baseline %.3f (floor %.3f)"
                      % (status, name, current, base, floor))
                if current < floor:
                    failures.append("%s dropped %.1f%% (%.3f -> %.3f)"
                                    % (name, 100.0 * (1.0 - current / base),
                                       base, current))
            else:
                ceiling = base * (1.0 + threshold)
                status = "OK" if current <= ceiling else "REGRESSION"
                print("%s %s: %.3f vs baseline %.3f (ceiling %.3f)"
                      % (status, name, current, base, ceiling))
                if current > ceiling:
                    failures.append("%s grew %.1f%% (%.3f -> %.3f)"
                                    % (name, 100.0 * (current / base - 1.0),
                                       base, current))
    return failures


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bench", required=True,
                        choices=["meeting", "query", "load", "pagerank"])
    parser.add_argument("--input", required=True,
                        help="captured bench stdout (JSON lines + headers)")
    parser.add_argument("--output", required=True,
                        help="where to write the summary JSON")
    parser.add_argument("--baseline", default=None,
                        help="committed baseline summary to compare against")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="allowed fractional regression (default 0.25)")
    parser.add_argument("--update-baseline", action="store_true",
                        help="write the summary to the baseline path too")
    args = parser.parse_args()

    records = list(parse_json_lines(args.input))
    summarize = {"meeting": summarize_meeting, "query": summarize_query,
                 "load": summarize_load,
                 "pagerank": summarize_pagerank}[args.bench]
    summary = summarize(records)
    if (not summary["higher_better"] and not summary["lower_better"]
            and not summary.get("exact")):
        print("error: no bench_result lines found in %s" % args.input)
        return 2

    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(summary, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print("wrote %s" % args.output)

    if args.update_baseline:
        if not args.baseline:
            print("error: --update-baseline needs --baseline")
            return 2
        with open(args.baseline, "w", encoding="utf-8") as handle:
            json.dump(summary, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print("updated baseline %s" % args.baseline)
        return 0

    if not args.baseline:
        print("no baseline given; summary written, nothing compared")
        return 0
    try:
        with open(args.baseline, "r", encoding="utf-8") as handle:
            baseline = json.load(handle)
    except FileNotFoundError:
        print("error: baseline %s not found (run with --update-baseline "
              "locally and commit it)" % args.baseline)
        return 2

    failures = compare(summary, baseline, args.threshold)
    if failures:
        print("\nFAIL: %d regression(s) beyond %.0f%%:"
              % (len(failures), 100.0 * args.threshold))
        for failure in failures:
            print("  - " + failure)
        return 1
    print("\nPASS: all metrics within %.0f%% of baseline"
          % (100.0 * args.threshold))
    return 0


if __name__ == "__main__":
    sys.exit(main())
