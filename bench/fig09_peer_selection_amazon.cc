// Figure 9: peer-selection strategies — pre-meetings (Section 4.3) vs
// uniformly random — on the Amazon collection, top-10000. Paper shape: the
// curves start together; once caches fill, pre-meetings reaches a given
// footrule with distinctly fewer meetings (1,250 vs 1,770 for 0.2 in the
// paper).

#include "bench/bench_util.h"

namespace jxp {
namespace bench {

void Run(int argc, char** argv) {
  BenchConfig config = BenchConfig::FromFlags(argc, argv);
  // The paper compares the top-10000 for this figure; scale the default k
  // with the collection (10000 at scale 1).
  if (config.top_k == 1000) {
    config.top_k = std::max<size_t>(200, static_cast<size_t>(10000 * config.amazon_scale));
  }
  const datasets::Collection collection = MakeCollection("amazon", config);
  PrintHeader("Figure 9: peer-selection strategies (Amazon, top-10000-scaled)",
              collection, config);
  std::printf("series\tmeetings\tfootrule\tlinear_error\n");
  for (const core::SelectionStrategy strategy :
       {core::SelectionStrategy::kRandom, core::SelectionStrategy::kPreMeetings}) {
    core::SimulationConfig sim_config;
    sim_config.jxp = BenchJxpOptions();
    sim_config.strategy = strategy;
    sim_config.seed = config.seed;
    sim_config.eval_top_k = config.top_k;
    core::JxpSimulation sim(collection.data.graph,
                            PaperPartition(collection, config, config.seed), sim_config);
    RunConvergenceSeries(sim, config,
                         strategy == core::SelectionStrategy::kRandom
                             ? "without_pre_meetings"
                             : "with_pre_meetings");
  }
}

}  // namespace bench
}  // namespace jxp

int main(int argc, char** argv) {
  jxp::bench::Run(argc, argv);
  return 0;
}
