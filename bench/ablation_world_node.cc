// Ablation A2: world-node in-link weighting. The paper weighs every link
// from the world node by the learned score of the external page that owns
// it ("for a better approximation of the total authority score mass");
// this bench quantifies that choice against a strawman that spreads the
// world mass uniformly over the known in-linking pages.

#include "bench/bench_util.h"

namespace jxp {
namespace bench {

void Run(int argc, char** argv) {
  const BenchConfig config = BenchConfig::FromFlags(argc, argv);
  const datasets::Collection collection = MakeCollection("amazon", config);
  PrintHeader("Ablation A2: score-weighted vs uniform world-node links (Amazon)",
              collection, config);
  std::printf("series\tmeetings\tfootrule\tlinear_error\n");
  for (const bool uniform : {false, true}) {
    core::SimulationConfig sim_config;
    sim_config.jxp = BenchJxpOptions();
    sim_config.jxp.uniform_world_links = uniform;
    sim_config.seed = config.seed;
    sim_config.eval_top_k = config.top_k;
    core::JxpSimulation sim(collection.data.graph,
                            PaperPartition(collection, config, config.seed), sim_config);
    RunConvergenceSeries(sim, config, uniform ? "uniform_links" : "score_weighted");
  }
}

}  // namespace bench
}  // namespace jxp

int main(int argc, char** argv) {
  jxp::bench::Run(argc, argv);
  return 0;
}
