// Meeting-engine throughput: meetings/second and per-merge CPU cost of
// RunMeetingsParallel at 1/2/4/8 worker threads on the categorized
// web-crawl collection. One JSON line per configuration, so runs are easy
// to diff and plot. Per-peer scores are bit-identical across all thread
// counts (see DESIGN.md, "Concurrency model"); only the timings change.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/timer.h"
#include "obs/json_writer.h"
#include "obs/trace.h"

namespace jxp {
namespace bench {

void Run(int argc, char** argv) {
  BenchConfig config = BenchConfig::FromFlags(argc, argv);
  if (config.meetings > 600) config.meetings = 600;

  const datasets::Collection collection = MakeCollection("webcrawl", config);
  const auto fragments = PaperPartition(collection, config, config.seed);

  for (const size_t threads : {1u, 2u, 4u, 8u}) {
    core::SimulationConfig sim_config;
    sim_config.jxp = BenchJxpOptions();
    sim_config.seed = config.seed;
    sim_config.eval_top_k = 100;
    sim_config.num_threads = threads;
    core::JxpSimulation sim(collection.data.graph, fragments, sim_config);

    WallTimer wall;
    CpuTimer cpu;
    sim.RunMeetingsParallel(config.meetings);
    const double wall_s = wall.ElapsedSeconds();
    const double cpu_ms = cpu.ElapsedMillis();

    double merge_ms_total = 0;
    size_t merges = 0;
    for (const core::JxpPeer& peer : sim.peers()) {
      for (double ms : peer.meeting_cpu_millis()) merge_ms_total += ms;
      merges += peer.meeting_cpu_millis().size();
    }
    const core::AccuracyPoint accuracy = sim.Evaluate();
    // One fill, two destinations: the stdout result line and (when a
    // --metrics_out sink is installed) a "bench_result" trace event.
    const auto fill = [&](obs::JsonWriter& writer) {
      writer.Field("bench", "meeting_throughput")
          .Field("threads", threads)
          .Field("meetings", sim.meetings_done())
          .Field("wall_seconds", wall_s)
          .Field("meetings_per_sec",
                 wall_s > 0 ? static_cast<double>(sim.meetings_done()) / wall_s : 0.0)
          .Field("cpu_millis", cpu_ms)
          .Field("merge_cpu_millis_mean",
                 merges > 0 ? merge_ms_total / static_cast<double>(merges) : 0.0)
          .Field("footrule", accuracy.footrule);
    };
    obs::JsonWriter line;
    fill(line);
    std::printf("%s\n", line.TakeLine().c_str());
    std::fflush(stdout);
    obs::EmitEvent("bench_result", fill);
  }
}

}  // namespace bench
}  // namespace jxp

int main(int argc, char** argv) {
  jxp::bench::Run(argc, argv);
  return 0;
}
