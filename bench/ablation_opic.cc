// Related-work comparison: OPIC (Abiteboul et al., the storage-efficient
// online importance computation the paper discusses in Section 2.2) vs
// centralized PageRank. Reports the importance error as a function of the
// visit budget, and contrasts OPIC's centralized-bookkeeping model with
// JXP's fully decentralized one.

#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"
#include "metrics/error.h"
#include "pagerank/opic.h"

namespace jxp {
namespace bench {

void Run(int argc, char** argv) {
  const BenchConfig config = BenchConfig::FromFlags(argc, argv);
  const datasets::Collection collection = MakeCollection("amazon", config);
  PrintHeader("Related work: OPIC convergence vs visit budget (Amazon)", collection,
              config);

  pagerank::PageRankOptions pr_options;
  pr_options.tolerance = 1e-12;
  const pagerank::PageRankResult truth =
      ComputePageRank(collection.data.graph, pr_options);
  const auto top = metrics::TopK(std::span<const double>(truth.scores), config.top_k);

  std::printf("policy\tvisits_per_page\tfootrule\tlinear_error\n");
  for (const auto policy :
       {pagerank::OpicOptions::Policy::kGreedy, pagerank::OpicOptions::Policy::kRandom}) {
    for (const size_t visits_per_page : {2u, 8u, 32u, 128u}) {
      pagerank::OpicOptions options;
      options.policy = policy;
      options.num_visits = visits_per_page * collection.data.graph.NumNodes();
      Random rng(config.seed);
      const pagerank::OpicResult opic =
          ComputeOpic(collection.data.graph, options, rng);
      std::unordered_map<uint32_t, double> map;
      for (uint32_t p = 0; p < opic.importance.size(); ++p) map[p] = opic.importance[p];
      const auto opic_top = metrics::TopK(map, config.top_k);
      std::printf("%s\t%zu\t%.6f\t%.8g\n",
                  policy == pagerank::OpicOptions::Policy::kGreedy ? "greedy" : "random",
                  visits_per_page, metrics::SpearmanFootrule(opic_top, top),
                  metrics::LinearScoreError(top, map));
      std::fflush(stdout);
    }
  }
}

}  // namespace bench
}  // namespace jxp

int main(int argc, char** argv) {
  jxp::bench::Run(argc, argv);
  return 0;
}
