// Microbenchmarks (google-benchmark) of the computational substrate: graph
// construction, subgraph induction, the power-iteration kernel, the
// centralized PageRank, and one JXP meeting.

#include <benchmark/benchmark.h>

#include "common/random.h"
#include "core/jxp_peer.h"
#include "graph/generators.h"
#include "graph/subgraph.h"
#include "markov/gauss_seidel.h"
#include "pagerank/hits.h"
#include "pagerank/pagerank.h"

namespace jxp {
namespace {

graph::Graph MakeGraph(size_t nodes) {
  Random rng(42);
  return graph::BarabasiAlbert(nodes, 8, rng);
}

void BM_GraphBuild(benchmark::State& state) {
  const size_t nodes = static_cast<size_t>(state.range(0));
  Random rng(42);
  const graph::Graph base = graph::BarabasiAlbert(nodes, 8, rng);
  const std::vector<graph::Edge> edges = base.Edges();
  for (auto _ : state) {
    graph::GraphBuilder builder(nodes);
    for (const graph::Edge& e : edges) builder.AddEdge(e.from, e.to);
    benchmark::DoNotOptimize(builder.Build());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * edges.size()));
}
BENCHMARK(BM_GraphBuild)->Arg(1000)->Arg(10000);

void BM_SubgraphInduce(benchmark::State& state) {
  const graph::Graph g = MakeGraph(10000);
  std::vector<graph::PageId> pages;
  for (graph::PageId p = 0; p < static_cast<graph::PageId>(state.range(0)); ++p) {
    pages.push_back(p * 3 % 10000);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::Subgraph::Induce(g, pages));
  }
}
BENCHMARK(BM_SubgraphInduce)->Arg(500)->Arg(2000);

void BM_PowerIterationStep(benchmark::State& state) {
  const graph::Graph g = MakeGraph(static_cast<size_t>(state.range(0)));
  const markov::SparseMatrix m = pagerank::BuildLinkMatrix(g);
  std::vector<double> x(m.NumStates(), 1.0 / static_cast<double>(m.NumStates()));
  std::vector<double> y(m.NumStates());
  for (auto _ : state) {
    m.LeftMultiply(x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(m.NumEntries()));
}
BENCHMARK(BM_PowerIterationStep)->Arg(1000)->Arg(10000)->Arg(50000);

void BM_CentralizedPageRank(benchmark::State& state) {
  const graph::Graph g = MakeGraph(static_cast<size_t>(state.range(0)));
  pagerank::PageRankOptions options;
  options.tolerance = 1e-10;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputePageRank(g, options));
  }
}
BENCHMARK(BM_CentralizedPageRank)->Arg(1000)->Arg(10000);

void BM_GaussSeidelStationary(benchmark::State& state) {
  const graph::Graph g = MakeGraph(static_cast<size_t>(state.range(0)));
  const markov::SparseMatrix m = pagerank::BuildLinkMatrix(g);
  const std::vector<double> uniform(m.NumStates(),
                                    1.0 / static_cast<double>(m.NumStates()));
  markov::PowerIterationOptions options;
  options.tolerance = 1e-10;
  for (auto _ : state) {
    benchmark::DoNotOptimize(GaussSeidelStationary(m, uniform, uniform, {}, options));
  }
}
BENCHMARK(BM_GaussSeidelStationary)->Arg(1000)->Arg(10000);

void BM_Hits(benchmark::State& state) {
  const graph::Graph g = MakeGraph(static_cast<size_t>(state.range(0)));
  pagerank::HitsOptions options;
  options.tolerance = 1e-10;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeHits(g, options));
  }
}
BENCHMARK(BM_Hits)->Arg(1000)->Arg(10000);

void BM_JxpMeeting(benchmark::State& state) {
  const graph::Graph g = MakeGraph(4000);
  Random rng(7);
  std::vector<graph::PageId> frag_a;
  std::vector<graph::PageId> frag_b;
  for (graph::PageId p = 0; p < 4000; ++p) {
    if (rng.NextBool(0.25)) frag_a.push_back(p);
    if (rng.NextBool(0.25)) frag_b.push_back(p);
  }
  core::JxpOptions options;
  options.pr_tolerance = 1e-10;
  options.merge_mode = state.range(0) == 0 ? core::MergeMode::kFullMerge
                                           : core::MergeMode::kLightWeight;
  core::JxpPeer a(0, graph::Subgraph::Induce(g, frag_a), g.NumNodes(), options);
  core::JxpPeer b(1, graph::Subgraph::Induce(g, frag_b), g.NumNodes(), options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::JxpPeer::Meet(a, b));
  }
}
BENCHMARK(BM_JxpMeeting)->Arg(0)->Arg(1);

}  // namespace
}  // namespace jxp

BENCHMARK_MAIN();
