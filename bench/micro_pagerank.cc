// Microbenchmarks (google-benchmark) of the computational substrate: graph
// construction, subgraph induction, the power-iteration kernel, the
// centralized PageRank, and one JXP meeting.
//
// With --churn the binary instead runs the deterministic churn-trace
// comparison of full re-solve vs incremental delta-update (DESIGN.md §6j):
// two arms replay the identical meeting + fragment-edit schedule, one with
// incremental PageRank off and one with it on, and emit JSON result lines
// with each arm's deterministic work counters. The process self-checks that
// the arms' final scores agree and that the delta arm did strictly less
// work, so CI catches a broken or unprofitable incremental path even
// before the baseline comparison (check_bench_regression.py --bench
// pagerank) runs.

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <utility>
#include <vector>

#include "common/random.h"
#include "common/timer.h"
#include "core/jxp_peer.h"
#include "graph/generators.h"
#include "graph/subgraph.h"
#include "markov/gauss_seidel.h"
#include "obs/json_writer.h"
#include "pagerank/hits.h"
#include "pagerank/pagerank.h"

namespace jxp {
namespace {

graph::Graph MakeGraph(size_t nodes) {
  Random rng(42);
  return graph::BarabasiAlbert(nodes, 8, rng);
}

void BM_GraphBuild(benchmark::State& state) {
  const size_t nodes = static_cast<size_t>(state.range(0));
  Random rng(42);
  const graph::Graph base = graph::BarabasiAlbert(nodes, 8, rng);
  const std::vector<graph::Edge> edges = base.Edges();
  for (auto _ : state) {
    graph::GraphBuilder builder(nodes);
    for (const graph::Edge& e : edges) builder.AddEdge(e.from, e.to);
    benchmark::DoNotOptimize(builder.Build());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * edges.size()));
}
BENCHMARK(BM_GraphBuild)->Arg(1000)->Arg(10000);

void BM_SubgraphInduce(benchmark::State& state) {
  const graph::Graph g = MakeGraph(10000);
  std::vector<graph::PageId> pages;
  for (graph::PageId p = 0; p < static_cast<graph::PageId>(state.range(0)); ++p) {
    pages.push_back(p * 3 % 10000);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::Subgraph::Induce(g, pages));
  }
}
BENCHMARK(BM_SubgraphInduce)->Arg(500)->Arg(2000);

void BM_PowerIterationStep(benchmark::State& state) {
  const graph::Graph g = MakeGraph(static_cast<size_t>(state.range(0)));
  const markov::SparseMatrix m = pagerank::BuildLinkMatrix(g);
  std::vector<double> x(m.NumStates(), 1.0 / static_cast<double>(m.NumStates()));
  std::vector<double> y(m.NumStates());
  for (auto _ : state) {
    m.LeftMultiply(x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(m.NumEntries()));
}
BENCHMARK(BM_PowerIterationStep)->Arg(1000)->Arg(10000)->Arg(50000);

void BM_CentralizedPageRank(benchmark::State& state) {
  const graph::Graph g = MakeGraph(static_cast<size_t>(state.range(0)));
  pagerank::PageRankOptions options;
  options.tolerance = 1e-10;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputePageRank(g, options));
  }
}
BENCHMARK(BM_CentralizedPageRank)->Arg(1000)->Arg(10000);

void BM_GaussSeidelStationary(benchmark::State& state) {
  const graph::Graph g = MakeGraph(static_cast<size_t>(state.range(0)));
  const markov::SparseMatrix m = pagerank::BuildLinkMatrix(g);
  const std::vector<double> uniform(m.NumStates(),
                                    1.0 / static_cast<double>(m.NumStates()));
  markov::PowerIterationOptions options;
  options.tolerance = 1e-10;
  for (auto _ : state) {
    benchmark::DoNotOptimize(GaussSeidelStationary(m, uniform, uniform, {}, options));
  }
}
BENCHMARK(BM_GaussSeidelStationary)->Arg(1000)->Arg(10000);

void BM_Hits(benchmark::State& state) {
  const graph::Graph g = MakeGraph(static_cast<size_t>(state.range(0)));
  pagerank::HitsOptions options;
  options.tolerance = 1e-10;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeHits(g, options));
  }
}
BENCHMARK(BM_Hits)->Arg(1000)->Arg(10000);

void BM_JxpMeeting(benchmark::State& state) {
  const graph::Graph g = MakeGraph(4000);
  Random rng(7);
  std::vector<graph::PageId> frag_a;
  std::vector<graph::PageId> frag_b;
  for (graph::PageId p = 0; p < 4000; ++p) {
    if (rng.NextBool(0.25)) frag_a.push_back(p);
    if (rng.NextBool(0.25)) frag_b.push_back(p);
  }
  core::JxpOptions options;
  options.pr_tolerance = 1e-10;
  options.merge_mode = state.range(0) == 0 ? core::MergeMode::kFullMerge
                                           : core::MergeMode::kLightWeight;
  core::JxpPeer a(0, graph::Subgraph::Induce(g, frag_a), g.NumNodes(), options);
  core::JxpPeer b(1, graph::Subgraph::Induce(g, frag_b), g.NumNodes(), options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::JxpPeer::Meet(a, b));
  }
}
BENCHMARK(BM_JxpMeeting)->Arg(0)->Arg(1);

// ---------------------------------------------------------------------------
// --churn: full re-solve vs incremental delta-update on a churn trace.

/// One churn round: a fragment edit on one peer followed by a burst of
/// meetings. The whole trace is precomputed from a fixed seed so both arms
/// replay bit-identical schedules.
struct ChurnRound {
  size_t churn_peer = 0;
  std::vector<graph::PageId> new_pages;
  std::vector<std::pair<size_t, size_t>> meetings;
};

struct ChurnTrace {
  graph::Graph graph;
  std::vector<std::vector<graph::PageId>> fragments;
  std::vector<std::pair<size_t, size_t>> warmup_meetings;
  std::vector<ChurnRound> rounds;
};

ChurnTrace MakeChurnTrace() {
  constexpr size_t kNodes = 6000;
  constexpr size_t kPeers = 4;
  constexpr size_t kWarmupMeetings = 1200;
  constexpr size_t kRounds = 6;
  constexpr size_t kMeetingsPerRound = 16;
  constexpr size_t kPagesSwapped = 4;

  ChurnTrace trace;
  Random rng(20060912);
  trace.graph = graph::BarabasiAlbert(kNodes, 5, rng);
  trace.fragments.assign(kPeers, {});
  for (graph::PageId p = 0; p < kNodes; ++p) {
    trace.fragments[rng.NextBounded(kPeers)].push_back(p);
    if (rng.NextBool(0.3)) trace.fragments[rng.NextBounded(kPeers)].push_back(p);
  }
  const auto draw_pair = [&] {
    const size_t a = rng.NextBounded(kPeers);
    size_t b = rng.NextBounded(kPeers - 1);
    if (b >= a) ++b;
    return std::make_pair(a, b);
  };
  for (size_t i = 0; i < kWarmupMeetings; ++i) {
    trace.warmup_meetings.push_back(draw_pair());
  }
  // Fragment edits mutate a tracked copy so each round's page set is the
  // cumulative result of all edits so far.
  std::vector<std::vector<graph::PageId>> pages = trace.fragments;
  for (size_t r = 0; r < kRounds; ++r) {
    ChurnRound round;
    round.churn_peer = r % kPeers;
    std::vector<graph::PageId>& held = pages[round.churn_peer];
    for (size_t k = 0; k < kPagesSwapped && held.size() > 1; ++k) {
      held.erase(held.begin() + static_cast<ptrdiff_t>(rng.NextBounded(held.size())));
    }
    std::vector<bool> is_held(kNodes, false);
    for (graph::PageId p : held) is_held[p] = true;
    for (size_t k = 0; k < kPagesSwapped; ++k) {
      graph::PageId candidate = static_cast<graph::PageId>(rng.NextBounded(kNodes));
      while (is_held[candidate]) {
        candidate = static_cast<graph::PageId>((candidate + 1) % kNodes);
      }
      is_held[candidate] = true;
      held.push_back(candidate);
    }
    round.new_pages = held;
    for (size_t i = 0; i < kMeetingsPerRound; ++i) {
      round.meetings.push_back(draw_pair());
    }
    trace.rounds.push_back(std::move(round));
  }
  return trace;
}

struct ChurnArmResult {
  /// Work counters of the churn phase only (warmup and construction are
  /// subtracted out), summed over peers.
  core::IncrementalPrStats stats;
  double wall_ms = 0;
  std::vector<std::vector<double>> scores;
};

ChurnArmResult RunChurnArm(const ChurnTrace& trace, bool incremental) {
  core::JxpOptions options;
  options.pr_tolerance = 1e-10;
  options.pr_max_iterations = 500;
  options.incremental.enabled = incremental;
  // The push solver stops on the residual *infinity* norm; 3e-10 leaves it
  // at comparable solution accuracy to the full solver's 1e-10 L1 stopping
  // rule (the compare line's max_score_diff verifies the agreement). The
  // tight 0.05 dirty-set threshold routes the few post-churn meeting solves
  // whose residual has spread network-wide straight to the fallback (a full
  // warm-started sweep is cheaper there), keeping pushes for the quiet
  // solves with a handful of dirty rows, where they win by orders of
  // magnitude.
  options.incremental.tolerance = 3e-10;
  options.incremental.dirty_fallback_fraction = 0.05;
  std::vector<core::JxpPeer> peers;
  peers.reserve(trace.fragments.size());
  for (size_t p = 0; p < trace.fragments.size(); ++p) {
    peers.emplace_back(static_cast<p2p::PeerId>(p),
                       graph::Subgraph::Induce(trace.graph, trace.fragments[p]),
                       trace.graph.NumNodes(), options);
  }
  for (const auto& [a, b] : trace.warmup_meetings) {
    core::JxpPeer::Meet(peers[a], peers[b]);
  }
  std::vector<core::IncrementalPrStats> warmup_stats;
  for (const core::JxpPeer& peer : peers) {
    warmup_stats.push_back(peer.incremental_stats());
  }
  WallTimer wall;
  for (const ChurnRound& round : trace.rounds) {
    peers[round.churn_peer].ReplaceFragment(
        graph::Subgraph::Induce(trace.graph, round.new_pages));
    for (const auto& [a, b] : round.meetings) {
      core::JxpPeer::Meet(peers[a], peers[b]);
    }
  }
  ChurnArmResult result;
  result.wall_ms = wall.ElapsedMillis();
  for (size_t p = 0; p < peers.size(); ++p) {
    const core::IncrementalPrStats& total = peers[p].incremental_stats();
    const core::IncrementalPrStats& before = warmup_stats[p];
    result.stats.incremental_solves += total.incremental_solves - before.incremental_solves;
    result.stats.fallbacks += total.fallbacks - before.fallbacks;
    result.stats.reseeds += total.reseeds - before.reseeds;
    result.stats.pushes += total.pushes - before.pushes;
    result.stats.push_work_entries += total.push_work_entries - before.push_work_entries;
    result.stats.full_solves += total.full_solves - before.full_solves;
    result.stats.full_iterations += total.full_iterations - before.full_iterations;
    result.stats.full_work_entries += total.full_work_entries - before.full_work_entries;
    result.scores.push_back(peers[p].local_scores());
  }
  return result;
}

int RunChurnComparison() {
  const ChurnTrace trace = MakeChurnTrace();
  const ChurnArmResult full = RunChurnArm(trace, false);
  const ChurnArmResult delta = RunChurnArm(trace, true);

  const auto emit = [](const char* arm, const ChurnArmResult& r) {
    obs::JsonWriter line;
    line.Field("bench", "pagerank_churn")
        .Field("arm", arm)
        .Field("incremental_solves", r.stats.incremental_solves)
        .Field("fallbacks", r.stats.fallbacks)
        .Field("reseeds", r.stats.reseeds)
        .Field("pushes", r.stats.pushes)
        .Field("push_work_entries", r.stats.push_work_entries)
        .Field("full_solves", r.stats.full_solves)
        .Field("full_iterations", r.stats.full_iterations)
        .Field("full_work_entries", r.stats.full_work_entries)
        .Field("wall_ms", r.wall_ms);
    std::printf("%s\n", line.TakeLine().c_str());
  };
  emit("full", full);
  emit("delta", delta);

  double max_score_diff = 0;
  for (size_t p = 0; p < full.scores.size(); ++p) {
    if (full.scores[p].size() != delta.scores[p].size()) {
      std::fprintf(stderr, "FAIL: arms disagree on peer %zu fragment size\n", p);
      return 1;
    }
    for (size_t k = 0; k < full.scores[p].size(); ++k) {
      max_score_diff =
          std::max(max_score_diff, std::abs(full.scores[p][k] - delta.scores[p][k]));
    }
  }
  const size_t full_work = full.stats.full_work_entries;
  const size_t delta_work = delta.stats.push_work_entries + delta.stats.full_work_entries;
  obs::JsonWriter line;
  line.Field("bench", "pagerank_churn")
      .Field("arm", "compare")
      .Field("work_ratio",
             delta_work > 0 ? static_cast<double>(full_work) /
                                  static_cast<double>(delta_work)
                            : 0.0)
      .Field("max_score_diff", max_score_diff);
  std::printf("%s\n", line.TakeLine().c_str());
  std::fflush(stdout);

  // Self-checks: the incremental path must track the exact solver and must
  // beat the full re-solve on work, or the arm is broken regardless of what
  // the baseline says.
  if (max_score_diff > 1e-6) {
    std::fprintf(stderr, "FAIL: arms diverged (max score diff %g > 1e-6)\n",
                 max_score_diff);
    return 1;
  }
  if (delta_work >= full_work) {
    std::fprintf(stderr,
                 "FAIL: delta-update work (%zu entries) did not beat full "
                 "re-solve (%zu entries)\n",
                 delta_work, full_work);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace jxp

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--churn") == 0) return jxp::RunChurnComparison();
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
