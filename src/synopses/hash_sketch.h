#ifndef JXP_SYNOPSES_HASH_SKETCH_H_
#define JXP_SYNOPSES_HASH_SKETCH_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/check.h"

namespace jxp {
namespace synopses {

/// Flajolet–Martin hash sketch (PCSA variant) for distinct-count estimation
/// (the "hash sketches" of the paper's Section 4.3 literature list).
/// Supports lossless union, so overlap/containment can be estimated by
/// inclusion-exclusion. Ablation alternative to MIPs.
class HashSketch {
 public:
  /// Creates a sketch with `num_buckets` 64-bit bitmaps. All peers must use
  /// the same `seed`.
  explicit HashSketch(size_t num_buckets = 64, uint64_t seed = 0x2545f491u);

  /// Inserts a key.
  void Add(uint64_t key);

  /// Estimated number of distinct keys inserted:
  ///   E = (m / phi) * 2^(mean lowest-unset-bit index).
  double EstimateCardinality() const;

  /// In-place union (bitwise OR); the union sketch equals the sketch of the
  /// union of the inserted sets.
  void UnionWith(const HashSketch& other);

  /// Wire size in bytes (bitmaps only).
  size_t SizeBytes() const { return bitmaps_.size() * 8; }

  size_t num_buckets() const { return bitmaps_.size(); }
  uint64_t seed() const { return seed_; }

  /// Raw bucket bitmaps, for serialization (the wire codec ships them).
  std::span<const uint64_t> bitmaps() const { return bitmaps_; }

  /// Rebuilds a sketch from serialized state (the wire codec's decode side).
  static HashSketch FromBitmaps(uint64_t seed, std::vector<uint64_t> bitmaps);

 private:
  uint64_t seed_;
  std::vector<uint64_t> bitmaps_;
};

/// Estimated |A ∩ B| via inclusion-exclusion; sketches must share geometry
/// and seed.
double EstimateOverlap(const HashSketch& a, const HashSketch& b);

/// Estimated containment |A ∩ B| / |B|; 0 when B is (estimated) empty.
double EstimateContainment(const HashSketch& a, const HashSketch& b);

}  // namespace synopses
}  // namespace jxp

#endif  // JXP_SYNOPSES_HASH_SKETCH_H_
