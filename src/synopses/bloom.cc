#include "synopses/bloom.h"

#include <bit>
#include <cmath>

#include "common/hash.h"

namespace jxp {
namespace synopses {

BloomFilter::BloomFilter(size_t num_bits, size_t num_hashes, uint64_t seed)
    : num_bits_((num_bits + 63) / 64 * 64), num_hashes_(num_hashes), seed_(seed) {
  JXP_CHECK_GT(num_bits, 0u);
  JXP_CHECK_GT(num_hashes, 0u);
  words_.assign(num_bits_ / 64, 0);
}

void BloomFilter::Add(uint64_t key) {
  // Kirsch–Mitzenmacher double hashing: position_i = h1 + i * h2.
  const uint64_t h1 = Mix64(key ^ seed_);
  const uint64_t h2 = Mix64(key + 0x9e3779b97f4a7c15ULL + seed_) | 1;
  for (size_t i = 0; i < num_hashes_; ++i) {
    const uint64_t bit = (h1 + i * h2) % num_bits_;
    words_[bit / 64] |= uint64_t{1} << (bit % 64);
  }
}

bool BloomFilter::MayContain(uint64_t key) const {
  const uint64_t h1 = Mix64(key ^ seed_);
  const uint64_t h2 = Mix64(key + 0x9e3779b97f4a7c15ULL + seed_) | 1;
  for (size_t i = 0; i < num_hashes_; ++i) {
    const uint64_t bit = (h1 + i * h2) % num_bits_;
    if ((words_[bit / 64] & (uint64_t{1} << (bit % 64))) == 0) return false;
  }
  return true;
}

size_t BloomFilter::PopCount() const {
  size_t count = 0;
  for (uint64_t w : words_) count += static_cast<size_t>(std::popcount(w));
  return count;
}

double BloomFilter::EstimateCardinality() const {
  const double m = static_cast<double>(num_bits_);
  const double x = static_cast<double>(PopCount());
  if (x >= m) return m;  // Saturated filter: estimate diverges; clamp.
  return -(m / static_cast<double>(num_hashes_)) * std::log1p(-x / m);
}

void BloomFilter::UnionWith(const BloomFilter& other) {
  JXP_CHECK(CompatibleWith(other)) << "incompatible Bloom filters";
  for (size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
}

double EstimateOverlap(const BloomFilter& a, const BloomFilter& b) {
  BloomFilter u = a;
  u.UnionWith(b);
  const double overlap =
      a.EstimateCardinality() + b.EstimateCardinality() - u.EstimateCardinality();
  return overlap < 0 ? 0 : overlap;
}

double EstimateContainment(const BloomFilter& a, const BloomFilter& b) {
  const double nb = b.EstimateCardinality();
  if (nb <= 0) return 0;
  const double c = EstimateOverlap(a, b) / nb;
  return c > 1 ? 1 : c;
}

}  // namespace synopses
}  // namespace jxp
