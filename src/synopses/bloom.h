#ifndef JXP_SYNOPSES_BLOOM_H_
#define JXP_SYNOPSES_BLOOM_H_

#include <cstdint>
#include <vector>

#include "common/check.h"

namespace jxp {
namespace synopses {

/// Classic Bloom filter over 64-bit keys, with cardinality and set-overlap
/// estimation from fill ratios (Swamidass & Baldi). Provided as an
/// alternative synopsis for the pre-meetings strategy (ablation A1); the
/// paper itself uses MIPs.
class BloomFilter {
 public:
  /// Creates a filter with `num_bits` bits (rounded up to a multiple of 64)
  /// and `num_hashes` hash functions. All peers must use the same `seed`.
  BloomFilter(size_t num_bits, size_t num_hashes, uint64_t seed = 0x9d2c5680u);

  /// Inserts a key.
  void Add(uint64_t key);

  /// True if the key may be in the set; false means definitely absent.
  bool MayContain(uint64_t key) const;

  /// Number of set bits.
  size_t PopCount() const;

  /// Cardinality estimate from the fill ratio:
  ///   n ≈ -(m/k) * ln(1 - X/m), X = set bits.
  double EstimateCardinality() const;

  /// In-place union with a compatible filter (same geometry and seed).
  void UnionWith(const BloomFilter& other);

  /// Wire size in bytes (bit array only).
  size_t SizeBytes() const { return words_.size() * 8; }

  size_t num_bits() const { return num_bits_; }
  size_t num_hashes() const { return num_hashes_; }
  uint64_t seed() const { return seed_; }

 private:
  bool CompatibleWith(const BloomFilter& other) const {
    return num_bits_ == other.num_bits_ && num_hashes_ == other.num_hashes_ &&
           seed_ == other.seed_;
  }

  size_t num_bits_;
  size_t num_hashes_;
  uint64_t seed_;
  std::vector<uint64_t> words_;
};

/// Estimated |A ∩ B| by inclusion-exclusion over fill-ratio cardinalities:
/// |A∩B| ≈ n_A + n_B - n_{A∪B}. Filters must be compatible.
double EstimateOverlap(const BloomFilter& a, const BloomFilter& b);

/// Estimated containment |A ∩ B| / |B|; 0 when B is (estimated) empty.
double EstimateContainment(const BloomFilter& a, const BloomFilter& b);

}  // namespace synopses
}  // namespace jxp

#endif  // JXP_SYNOPSES_BLOOM_H_
