#ifndef JXP_SYNOPSES_MINWISE_H_
#define JXP_SYNOPSES_MINWISE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/check.h"
#include "common/random.h"

namespace jxp {
namespace synopses {

/// A min-wise-independent-permutations (MIPs) signature of a set: for each
/// of N random linear permutations h_i(x) = (a_i * x + b_i) mod U (U a large
/// prime), the minimum permuted value over the set, plus the exact set size
/// (a single integer the peers exchange alongside the vector).
class MinWiseSignature {
 public:
  MinWiseSignature() = default;
  MinWiseSignature(std::vector<uint64_t> minima, uint64_t set_size)
      : minima_(std::move(minima)), set_size_(set_size) {}

  /// The per-permutation minima.
  const std::vector<uint64_t>& minima() const { return minima_; }

  /// Exact cardinality of the summarized set.
  uint64_t set_size() const { return set_size_; }

  /// Number of permutations.
  size_t NumPermutations() const { return minima_.size(); }

  /// True iff the summarized set was empty.
  bool IsEmpty() const { return set_size_ == 0; }

  /// Signature of the union of the two summarized sets (element-wise min).
  /// The union size stored is the estimate from EstimateUnionSize.
  static MinWiseSignature Union(const MinWiseSignature& a, const MinWiseSignature& b);

  /// Serialized wire size in bytes: 8 per minimum + 8 for the set size.
  size_t SizeBytes() const { return minima_.size() * 8 + 8; }

 private:
  std::vector<uint64_t> minima_;
  uint64_t set_size_ = 0;
};

/// A family of shared random permutations. All peers in the network use the
/// same family (seeded identically) so their signatures are comparable.
class MinWiseFamily {
 public:
  /// Creates `num_permutations` linear permutations mod the Mersenne prime
  /// 2^61 - 1, with parameters drawn from `seed`.
  MinWiseFamily(size_t num_permutations, uint64_t seed);

  /// Number of permutations (signature length).
  size_t NumPermutations() const { return a_.size(); }

  /// Computes the signature of a set of 64-bit keys (e.g. PageIds).
  MinWiseSignature Sign(std::span<const uint64_t> keys) const;

  /// Convenience overload for 32-bit keys.
  MinWiseSignature Sign(std::span<const uint32_t> keys) const;

 private:
  uint64_t Permute(size_t i, uint64_t x) const;

  std::vector<uint64_t> a_;
  std::vector<uint64_t> b_;
};

/// Estimated resemblance |A ∩ B| / |A ∪ B|: the fraction of positions with
/// equal minima. Signatures must come from the same family.
double EstimateResemblance(const MinWiseSignature& a, const MinWiseSignature& b);

/// Estimated size of A ∪ B, from resemblance and the exact set sizes:
/// |A ∪ B| = (|A| + |B|) / (1 + r).
double EstimateUnionSize(const MinWiseSignature& a, const MinWiseSignature& b);

/// Estimated overlap |A ∩ B| = r * |A ∪ B|.
double EstimateOverlap(const MinWiseSignature& a, const MinWiseSignature& b);

/// Estimated containment |A ∩ B| / |B| (the fraction of B's elements that
/// are also in A), the measure the pre-meetings strategy ranks peers by.
/// Returns 0 when B is empty.
double EstimateContainment(const MinWiseSignature& a, const MinWiseSignature& b);

}  // namespace synopses
}  // namespace jxp

#endif  // JXP_SYNOPSES_MINWISE_H_
