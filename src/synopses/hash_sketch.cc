#include "synopses/hash_sketch.h"

#include <bit>
#include <cmath>

#include "common/hash.h"

namespace jxp {
namespace synopses {

namespace {
/// Flajolet–Martin magic constant.
constexpr double kPhi = 0.77351;
/// Small-cardinality correction exponent from Flajolet & Martin (1985):
/// E = (m/phi) * (2^A - 2^(-kappa*A)). Without it the estimator is biased
/// low for n/m below ~30.
constexpr double kKappa = 1.75;
}  // namespace

HashSketch::HashSketch(size_t num_buckets, uint64_t seed) : seed_(seed) {
  JXP_CHECK_GT(num_buckets, 0u);
  bitmaps_.assign(num_buckets, 0);
}

HashSketch HashSketch::FromBitmaps(uint64_t seed, std::vector<uint64_t> bitmaps) {
  JXP_CHECK_GT(bitmaps.size(), 0u);
  HashSketch sketch(bitmaps.size(), seed);
  sketch.bitmaps_ = std::move(bitmaps);
  return sketch;
}

void HashSketch::Add(uint64_t key) {
  const uint64_t h = Mix64(key ^ seed_);
  const size_t bucket = static_cast<size_t>(h % bitmaps_.size());
  const uint64_t rest = h / bitmaps_.size();
  // Index of the lowest set bit of `rest` follows Geometric(1/2).
  const int rank = rest == 0 ? 63 : std::countr_zero(rest);
  bitmaps_[bucket] |= uint64_t{1} << rank;
}

double HashSketch::EstimateCardinality() const {
  // PCSA estimator: mean index of the lowest *unset* bit across buckets,
  // with the small-cardinality correction term.
  double rank_sum = 0;
  for (uint64_t bitmap : bitmaps_) {
    rank_sum += static_cast<double>(std::countr_one(bitmap));
  }
  const double m = static_cast<double>(bitmaps_.size());
  const double mean_rank = rank_sum / m;
  return (m / kPhi) * (std::pow(2.0, mean_rank) - std::pow(2.0, -kKappa * mean_rank));
}

void HashSketch::UnionWith(const HashSketch& other) {
  JXP_CHECK_EQ(bitmaps_.size(), other.bitmaps_.size());
  JXP_CHECK_EQ(seed_, other.seed_);
  for (size_t i = 0; i < bitmaps_.size(); ++i) bitmaps_[i] |= other.bitmaps_[i];
}

double EstimateOverlap(const HashSketch& a, const HashSketch& b) {
  HashSketch u = a;
  u.UnionWith(b);
  const double overlap =
      a.EstimateCardinality() + b.EstimateCardinality() - u.EstimateCardinality();
  return overlap < 0 ? 0 : overlap;
}

double EstimateContainment(const HashSketch& a, const HashSketch& b) {
  const double nb = b.EstimateCardinality();
  if (nb <= 0) return 0;
  const double c = EstimateOverlap(a, b) / nb;
  return c > 1 ? 1 : c;
}

}  // namespace synopses
}  // namespace jxp
