#include "synopses/minwise.h"

#include <algorithm>

namespace jxp {
namespace synopses {

namespace {

/// The Mersenne prime 2^61 - 1; multiplication fits in 128 bits and the
/// modulo reduces with shifts.
constexpr uint64_t kPrime = (uint64_t{1} << 61) - 1;

uint64_t MulMod(uint64_t x, uint64_t y) {
  const __uint128_t product = static_cast<__uint128_t>(x) * y;
  uint64_t lo = static_cast<uint64_t>(product & kPrime);
  uint64_t hi = static_cast<uint64_t>(product >> 61);
  uint64_t sum = lo + hi;
  if (sum >= kPrime) sum -= kPrime;
  return sum;
}

}  // namespace

MinWiseFamily::MinWiseFamily(size_t num_permutations, uint64_t seed) {
  JXP_CHECK_GT(num_permutations, 0u);
  Random rng(seed);
  a_.reserve(num_permutations);
  b_.reserve(num_permutations);
  for (size_t i = 0; i < num_permutations; ++i) {
    a_.push_back(1 + rng.NextBounded(kPrime - 1));  // a in [1, p-1]
    b_.push_back(rng.NextBounded(kPrime));          // b in [0, p-1]
  }
}

uint64_t MinWiseFamily::Permute(size_t i, uint64_t x) const {
  uint64_t v = MulMod(a_[i], x % kPrime);
  v += b_[i];
  if (v >= kPrime) v -= kPrime;
  return v;
}

MinWiseSignature MinWiseFamily::Sign(std::span<const uint64_t> keys) const {
  std::vector<uint64_t> minima(NumPermutations(), kPrime);
  for (uint64_t key : keys) {
    for (size_t i = 0; i < NumPermutations(); ++i) {
      minima[i] = std::min(minima[i], Permute(i, key));
    }
  }
  return MinWiseSignature(std::move(minima), keys.size());
}

MinWiseSignature MinWiseFamily::Sign(std::span<const uint32_t> keys) const {
  std::vector<uint64_t> minima(NumPermutations(), kPrime);
  for (uint32_t key : keys) {
    for (size_t i = 0; i < NumPermutations(); ++i) {
      minima[i] = std::min(minima[i], Permute(i, key));
    }
  }
  return MinWiseSignature(std::move(minima), keys.size());
}

MinWiseSignature MinWiseSignature::Union(const MinWiseSignature& a, const MinWiseSignature& b) {
  JXP_CHECK_EQ(a.NumPermutations(), b.NumPermutations());
  std::vector<uint64_t> minima(a.NumPermutations());
  for (size_t i = 0; i < minima.size(); ++i) minima[i] = std::min(a.minima_[i], b.minima_[i]);
  const uint64_t size = static_cast<uint64_t>(EstimateUnionSize(a, b) + 0.5);
  return MinWiseSignature(std::move(minima), size);
}

double EstimateResemblance(const MinWiseSignature& a, const MinWiseSignature& b) {
  JXP_CHECK_EQ(a.NumPermutations(), b.NumPermutations());
  JXP_CHECK_GT(a.NumPermutations(), 0u);
  if (a.IsEmpty() && b.IsEmpty()) return 1.0;
  if (a.IsEmpty() || b.IsEmpty()) return 0.0;
  size_t equal = 0;
  for (size_t i = 0; i < a.NumPermutations(); ++i) {
    if (a.minima()[i] == b.minima()[i]) ++equal;
  }
  return static_cast<double>(equal) / static_cast<double>(a.NumPermutations());
}

double EstimateUnionSize(const MinWiseSignature& a, const MinWiseSignature& b) {
  const double r = EstimateResemblance(a, b);
  return static_cast<double>(a.set_size() + b.set_size()) / (1.0 + r);
}

double EstimateOverlap(const MinWiseSignature& a, const MinWiseSignature& b) {
  const double r = EstimateResemblance(a, b);
  const double overlap = r * EstimateUnionSize(a, b);
  // The overlap cannot exceed either set.
  return std::min(overlap,
                  static_cast<double>(std::min(a.set_size(), b.set_size())));
}

double EstimateContainment(const MinWiseSignature& a, const MinWiseSignature& b) {
  if (b.set_size() == 0) return 0.0;
  return EstimateOverlap(a, b) / static_cast<double>(b.set_size());
}

}  // namespace synopses
}  // namespace jxp
