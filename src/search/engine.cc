#include "search/engine.h"

#include <algorithm>
#include <cmath>

#include "qp/query_processor.h"
#include "search/threshold_top_k.h"

namespace jxp {
namespace search {

namespace {

double JxpScoreOf(const std::unordered_map<graph::PageId, double>& jxp_scores,
                  graph::PageId page) {
  const auto it = jxp_scores.find(page);
  return it == jxp_scores.end() ? 0.0 : it->second;
}

}  // namespace

MinervaEngine::MinervaEngine(const Corpus* corpus, const SearchOptions& options)
    : corpus_(corpus), options_(options) {
  JXP_CHECK(corpus_ != nullptr);
  JXP_CHECK_GT(options_.peers_to_route, 0u);
  JXP_CHECK_GE(options_.jxp_weight, 0.0);
  JXP_CHECK_LE(options_.jxp_weight, 1.0);
}

void MinervaEngine::AddPeer(p2p::PeerId id, std::span<const graph::PageId> pages) {
  PeerIndex index(id);
  for (graph::PageId page : pages) index.AddDocument(corpus_->DocumentFor(page));
  if (options_.use_compressed_index) {
    // Freeze with prior_weight 0: fusion with the JXP prior happens after
    // the cross-peer merge (with min-max normalization), so the per-peer
    // retrieval score must stay pure tf*idf — bit-identical to the
    // exhaustive path.
    qp::CompressedIndexOptions copts;
    copts.prior_weight = 0.0;
    compressed_.push_back(qp::CompressedPeerIndex::Freeze(index, *corpus_, {}, copts));
  }
  indexes_.push_back(std::move(index));
}

double MinervaEngine::TfIdfScore(std::span<const TermId> query, const Document& doc) const {
  const double num_docs = static_cast<double>(corpus_->NumDocuments());
  double score = 0;
  for (TermId term : query) {
    // Documents are small: linear scan over the sorted term list.
    const auto it = std::lower_bound(
        doc.terms.begin(), doc.terms.end(), term,
        [](const std::pair<TermId, uint32_t>& e, TermId t) { return e.first < t; });
    if (it == doc.terms.end() || it->first != term) continue;
    const uint32_t df = corpus_->DocumentFrequency(term);
    if (df == 0) continue;
    score += (1.0 + std::log(static_cast<double>(it->second))) *
             std::log(num_docs / static_cast<double>(df));
  }
  return score;
}

std::vector<p2p::PeerId> MinervaEngine::RoutePeers(
    std::span<const TermId> query,
    const std::unordered_map<graph::PageId, double>& jxp_scores,
    RoutingPolicy policy) const {
  std::vector<std::pair<double, p2p::PeerId>> ranked;
  ranked.reserve(indexes_.size());
  for (const PeerIndex& index : indexes_) {
    double goodness = 0;
    for (TermId term : query) {
      if (policy == RoutingPolicy::kDocumentFrequency) {
        goodness += static_cast<double>(index.LocalDocumentFrequency(term));
      } else {
        // JXP-guided routing: the authority mass the peer holds on matching
        // pages.
        if (const std::vector<Posting>* postings = index.PostingsFor(term)) {
          for (const Posting& posting : *postings) {
            goodness += JxpScoreOf(jxp_scores, posting.page);
          }
        }
      }
    }
    ranked.emplace_back(goodness, index.owner());
  }
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    return a.first != b.first ? a.first > b.first : a.second < b.second;
  });
  std::vector<p2p::PeerId> peers;
  peers.reserve(ranked.size());
  for (const auto& [goodness, peer] : ranked) peers.push_back(peer);
  return peers;
}

std::vector<SearchResult> MinervaEngine::ExecuteQuery(
    std::span<const TermId> query,
    const std::unordered_map<graph::PageId, double>& jxp_scores,
    RoutingPolicy policy) const {
  const std::vector<p2p::PeerId> routed = RoutePeers(query, jxp_scores, policy);
  const size_t fanout = std::min(options_.peers_to_route, routed.size());

  // Collect per-peer top results, deduplicating pages across peers (the
  // replicas hold identical documents, so any copy scores the same).
  std::unordered_map<graph::PageId, double> tfidf_of;
  for (size_t r = 0; r < fanout; ++r) {
    // Find the index owned by this peer.
    const PeerIndex* index = nullptr;
    size_t index_pos = 0;
    for (size_t i = 0; i < indexes_.size(); ++i) {
      if (indexes_[i].owner() == routed[r]) {
        index = &indexes_[i];
        index_pos = i;
        break;
      }
    }
    JXP_CHECK(index != nullptr);
    if (options_.use_compressed_index) {
      JXP_CHECK_LT(index_pos, compressed_.size());
      const qp::TopKList local = qp::MaxScoreTopK(
          compressed_[index_pos], query, options_.results_per_peer, nullptr);
      for (const auto& [page, score] : local) tfidf_of[page] = score;
      continue;
    }
    if (options_.use_threshold_algorithm) {
      const ThresholdTopKResult ta =
          ThresholdTopK(*index, *corpus_, query, options_.results_per_peer);
      for (const auto& [page, score] : ta.results) tfidf_of[page] = score;
      continue;
    }
    // Exhaustive: candidate pages are the union of the query terms'
    // postings; every candidate is fully scored.
    std::unordered_map<graph::PageId, double> local_scores;
    for (TermId term : query) {
      if (const std::vector<Posting>* postings = index->PostingsFor(term)) {
        for (const Posting& posting : *postings) {
          if (!local_scores.count(posting.page)) {
            local_scores[posting.page] = TfIdfScore(query, corpus_->DocumentFor(posting.page));
          }
        }
      }
    }
    // Keep the peer's best results_per_peer.
    std::vector<std::pair<double, graph::PageId>> local(local_scores.size());
    size_t i = 0;
    for (const auto& [page, score] : local_scores) local[i++] = {score, page};
    const size_t keep = std::min(options_.results_per_peer, local.size());
    // (score desc, page asc) — the documented tie-break; std::greater would
    // prefer the *larger* page id among tied scores.
    std::partial_sort(local.begin(), local.begin() + keep, local.end(),
                      [](const std::pair<double, graph::PageId>& a,
                         const std::pair<double, graph::PageId>& b) {
                        return a.first != b.first ? a.first > b.first
                                                  : a.second < b.second;
                      });
    for (size_t j = 0; j < keep; ++j) tfidf_of[local[j].second] = local[j].first;
  }

  // Merge and fuse.
  std::vector<SearchResult> results;
  results.reserve(tfidf_of.size());
  double max_tfidf = 0;
  double max_jxp = 0;
  for (const auto& [page, tfidf] : tfidf_of) {
    SearchResult result;
    result.page = page;
    result.tfidf = tfidf;
    result.jxp = JxpScoreOf(jxp_scores, page);
    max_tfidf = std::max(max_tfidf, result.tfidf);
    max_jxp = std::max(max_jxp, result.jxp);
    results.push_back(result);
  }
  for (SearchResult& result : results) {
    const double norm_tfidf = max_tfidf > 0 ? result.tfidf / max_tfidf : 0;
    const double norm_jxp = max_jxp > 0 ? result.jxp / max_jxp : 0;
    result.fused = (1.0 - options_.jxp_weight) * norm_tfidf + options_.jxp_weight * norm_jxp;
  }
  std::sort(results.begin(), results.end(), [](const SearchResult& a, const SearchResult& b) {
    return a.fused != b.fused ? a.fused > b.fused : a.page < b.page;
  });
  return results;
}

void MinervaEngine::PublishToDirectory(
    DhtDirectory& directory,
    const std::unordered_map<graph::PageId, double>& jxp_scores) const {
  for (const PeerIndex& index : indexes_) {
    for (const auto& [term, postings] : index.postings()) {
      TermPost post;
      post.peer = index.owner();
      post.document_frequency = static_cast<uint32_t>(postings.size());
      for (const Posting& posting : postings) {
        post.jxp_mass += JxpScoreOf(jxp_scores, posting.page);
      }
      directory.Publish(term, post);
    }
  }
}

std::vector<p2p::PeerId> MinervaEngine::RoutePeersViaDirectory(
    std::span<const TermId> query, const DhtDirectory& directory,
    p2p::PeerId asking_peer, RoutingPolicy policy) const {
  std::unordered_map<p2p::PeerId, double> goodness;
  for (TermId term : query) {
    for (const TermPost& post : directory.Lookup(term, asking_peer)) {
      goodness[post.peer] += policy == RoutingPolicy::kDocumentFrequency
                                 ? static_cast<double>(post.document_frequency)
                                 : post.jxp_mass;
    }
  }
  std::vector<std::pair<double, p2p::PeerId>> ranked;
  ranked.reserve(goodness.size());
  for (const auto& [peer, score] : goodness) ranked.emplace_back(score, peer);
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    return a.first != b.first ? a.first > b.first : a.second < b.second;
  });
  std::vector<p2p::PeerId> peers;
  peers.reserve(ranked.size());
  for (const auto& [score, peer] : ranked) peers.push_back(peer);
  return peers;
}

std::vector<graph::PageId> RankByTfIdf(std::vector<SearchResult> results, size_t k) {
  std::sort(results.begin(), results.end(), [](const SearchResult& a, const SearchResult& b) {
    return a.tfidf != b.tfidf ? a.tfidf > b.tfidf : a.page < b.page;
  });
  std::vector<graph::PageId> pages;
  for (size_t i = 0; i < results.size() && i < k; ++i) pages.push_back(results[i].page);
  return pages;
}

std::vector<graph::PageId> RankByFused(std::vector<SearchResult> results, size_t k) {
  std::sort(results.begin(), results.end(), [](const SearchResult& a, const SearchResult& b) {
    return a.fused != b.fused ? a.fused > b.fused : a.page < b.page;
  });
  std::vector<graph::PageId> pages;
  for (size_t i = 0; i < results.size() && i < k; ++i) pages.push_back(results[i].page);
  return pages;
}

}  // namespace search
}  // namespace jxp
