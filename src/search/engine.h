#ifndef JXP_SEARCH_ENGINE_H_
#define JXP_SEARCH_ENGINE_H_

#include <span>
#include <unordered_map>
#include <vector>

#include "qp/compressed_index.h"
#include "search/directory.h"
#include "search/index.h"

namespace jxp {
namespace search {

/// How the engine chooses the remote peers a query is forwarded to.
enum class RoutingPolicy {
  /// Rank peers by the sum of their local document frequencies of the query
  /// terms (a CORI-style resource-selection heuristic).
  kDocumentFrequency,
  /// Rank peers by the JXP authority mass they hold on pages matching the
  /// query terms (the paper's Section 7 plan: "integrate the JXP scores into
  /// the query routing mechanism").
  kJxpAuthority,
};

/// Options of the Minerva-style engine.
struct SearchOptions {
  /// Queries are forwarded to this many peers ("a small number of remote
  /// peers for additional results").
  size_t peers_to_route = 6;
  /// Per-peer result-list cap before merging.
  size_t results_per_peer = 50;
  /// Fusion weight: final = (1 - jxp_weight) * tfidf + jxp_weight * jxp,
  /// both min-max normalized over the candidate set. The paper uses 0.4.
  double jxp_weight = 0.4;
  /// Per-peer retrieval strategy: exhaustively score every candidate
  /// (false) or run Fagin's Threshold Algorithm with early termination
  /// (true). The result lists are identical; TA touches fewer postings.
  bool use_threshold_algorithm = false;
  /// Serve per-peer retrieval from block-compressed posting lists with
  /// MaxScore dynamic pruning (src/qp/) instead of the uncompressed index.
  /// Peers added under this option are additionally frozen into the
  /// compressed layout at AddPeer time. Results are bit-identical to the
  /// exhaustive path; only the work per query changes. Takes precedence
  /// over use_threshold_algorithm.
  bool use_compressed_index = false;
};

/// One merged search result with its component scores.
struct SearchResult {
  graph::PageId page = graph::kInvalidPage;
  double tfidf = 0;
  double jxp = 0;
  /// Weighted fusion of the normalized components.
  double fused = 0;
};

/// A simulated Minerva network: per-peer inverted indexes, query routing,
/// tf*idf retrieval, and ranking fusion with JXP authority scores
/// (Section 6.3).
class MinervaEngine {
 public:
  /// `corpus` provides documents and global df statistics; must outlive the
  /// engine.
  MinervaEngine(const Corpus* corpus, const SearchOptions& options);

  /// Registers a peer hosting `pages`, building its local index.
  void AddPeer(p2p::PeerId id, std::span<const graph::PageId> pages);

  /// Number of registered peers.
  size_t NumPeers() const { return indexes_.size(); }

  /// Ranks all peers for a query (best first) under a routing policy.
  /// `jxp_scores` is the network JXP score table (used by kJxpAuthority).
  std::vector<p2p::PeerId> RoutePeers(
      std::span<const TermId> query,
      const std::unordered_map<graph::PageId, double>& jxp_scores,
      RoutingPolicy policy) const;

  /// Executes the query: routes it to the top peers, retrieves each peer's
  /// tf*idf top results, merges duplicates, and computes the fused scores.
  /// The returned list is sorted by *fused* score; re-sort by `tfidf` for
  /// the text-only baseline ranking.
  std::vector<SearchResult> ExecuteQuery(
      std::span<const TermId> query,
      const std::unordered_map<graph::PageId, double>& jxp_scores,
      RoutingPolicy policy) const;

  /// tf*idf document score for a query: sum over query terms of
  /// (1 + log tf) * log(N / df) with corpus-wide N and df.
  double TfIdfScore(std::span<const TermId> query, const Document& doc) const;

  /// Publishes every registered peer's per-term statistics (document
  /// frequency and JXP authority mass) into the distributed directory, as
  /// Minerva peers do after indexing. Peers must already be on the
  /// directory's ring.
  void PublishToDirectory(
      DhtDirectory& directory,
      const std::unordered_map<graph::PageId, double>& jxp_scores) const;

  /// Directory-backed routing: ranks peers for the query from the posts
  /// fetched out of the DHT (instead of the omniscient RoutePeers). Only
  /// peers with at least one post for a query term are returned.
  std::vector<p2p::PeerId> RoutePeersViaDirectory(std::span<const TermId> query,
                                                  const DhtDirectory& directory,
                                                  p2p::PeerId asking_peer,
                                                  RoutingPolicy policy) const;

 private:
  const Corpus* corpus_;
  SearchOptions options_;
  std::vector<PeerIndex> indexes_;
  /// Frozen compressed twin of indexes_[i] (same position), populated only
  /// when options_.use_compressed_index is set.
  std::vector<qp::CompressedPeerIndex> compressed_;
};

/// Extracts the top-k page ids from results re-sorted by pure tf*idf.
std::vector<graph::PageId> RankByTfIdf(std::vector<SearchResult> results, size_t k);

/// Extracts the top-k page ids in fused order.
std::vector<graph::PageId> RankByFused(std::vector<SearchResult> results, size_t k);

}  // namespace search
}  // namespace jxp

#endif  // JXP_SEARCH_ENGINE_H_
