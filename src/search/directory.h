#ifndef JXP_SEARCH_DIRECTORY_H_
#define JXP_SEARCH_DIRECTORY_H_

#include <unordered_map>
#include <vector>

#include "p2p/chord.h"
#include "search/corpus.h"

namespace jxp {
namespace search {

/// One peer's published statistics for one term.
struct TermPost {
  p2p::PeerId peer = p2p::kInvalidPeer;
  /// Number of the peer's documents containing the term.
  uint32_t document_frequency = 0;
  /// Summed JXP authority of the peer's pages containing the term (powers
  /// the JXP-guided routing policy).
  double jxp_mass = 0;
};

/// The Minerva-style distributed directory: for every term, the peer owning
/// hash(term) on the Chord ring stores the per-peer statistics posts. Peers
/// publish their posts and fetch other peers' posts by routed DHT lookups;
/// the directory accounts the routing hops and wire bytes these operations
/// cost.
class DhtDirectory {
 public:
  /// The ring must outlive the directory.
  explicit DhtDirectory(const p2p::ChordRing* ring);

  /// Publishes (or refreshes) `post` for `term`, routed from the posting
  /// peer. A repeated publish from the same peer replaces its old post.
  void Publish(TermId term, const TermPost& post);

  /// All posts for `term` (empty if none), fetched by a routed lookup from
  /// `asking_peer`.
  const std::vector<TermPost>& Lookup(TermId term, p2p::PeerId asking_peer) const;

  /// Cumulative routing hops spent on publishes and lookups.
  size_t total_publish_hops() const { return publish_hops_; }
  size_t total_lookup_hops() const { return lookup_hops_; }

  /// Cumulative wire bytes (each post: 8-byte term key + 4 + 4 + 8 payload,
  /// once per routing hop).
  double total_wire_bytes() const { return wire_bytes_; }

  /// Number of terms with at least one post.
  size_t NumTerms() const { return posts_.size(); }

  /// DHT key of a term.
  static uint64_t KeyOf(TermId term);

 private:
  const p2p::ChordRing* ring_;
  std::unordered_map<TermId, std::vector<TermPost>> posts_;
  mutable size_t publish_hops_ = 0;
  mutable size_t lookup_hops_ = 0;
  mutable double wire_bytes_ = 0;
  std::vector<TermPost> empty_;
};

}  // namespace search
}  // namespace jxp

#endif  // JXP_SEARCH_DIRECTORY_H_
