#include "search/corpus.h"

#include <algorithm>
#include <cmath>
#include <map>

namespace jxp {
namespace search {

namespace {

/// Draws a Zipf-like rank in [0, slots): log-uniform, so rank r is drawn
/// with probability ~ 1/r (a Zipf(1) approximation that needs no tables).
size_t DrawZipfRank(size_t slots, Random& rng) {
  JXP_CHECK_GT(slots, 0u);
  const double u = rng.NextDouble();
  const size_t rank = static_cast<size_t>(std::pow(static_cast<double>(slots), u)) - 1;
  return std::min(rank, slots - 1);
}

}  // namespace

Corpus Corpus::Generate(const graph::CategorizedGraph& collection,
                        const CorpusOptions& options, uint64_t seed) {
  const size_t category_slice = options.category_vocab_size;
  const size_t reserved = static_cast<size_t>(collection.num_categories) * category_slice;
  JXP_CHECK_GT(options.vocabulary_size, reserved)
      << "vocabulary too small for the category slices";
  const size_t shared_base = reserved;
  const size_t shared_size = options.vocabulary_size - reserved;
  JXP_CHECK_GE(options.max_doc_length, options.min_doc_length);

  Corpus corpus;
  corpus.options_ = options;
  corpus.num_categories_ = collection.num_categories;
  corpus.df_.assign(options.vocabulary_size, 0);
  corpus.documents_.resize(collection.graph.NumNodes());

  Random rng(seed);
  std::map<TermId, uint32_t> bag;
  for (graph::PageId p = 0; p < collection.graph.NumNodes(); ++p) {
    const graph::CategoryId topic = collection.category[p];
    Document& doc = corpus.documents_[p];
    doc.page = p;
    doc.topic = topic;
    doc.length = options.min_doc_length +
                 static_cast<uint32_t>(rng.NextBounded(
                     options.max_doc_length - options.min_doc_length + 1));
    bag.clear();
    for (uint32_t token = 0; token < doc.length; ++token) {
      TermId term;
      if (rng.NextBool(options.on_topic_probability)) {
        term = static_cast<TermId>(static_cast<size_t>(topic) * category_slice +
                                   DrawZipfRank(category_slice, rng));
      } else {
        term = static_cast<TermId>(shared_base + DrawZipfRank(shared_size, rng));
      }
      bag[term]++;
    }
    doc.terms.assign(bag.begin(), bag.end());
    for (const auto& [term, tf] : doc.terms) corpus.df_[term]++;
  }
  return corpus;
}

std::vector<TermId> Corpus::SampleQueryTerms(graph::CategoryId category, size_t num_terms,
                                             Random& rng) const {
  JXP_CHECK_LT(category, num_categories_);
  const size_t slice = options_.category_vocab_size;
  // Query terms come from the frequent head of the category slice.
  const size_t head = std::max<size_t>(num_terms, slice / 16);
  std::vector<TermId> terms;
  const std::vector<size_t> picks =
      rng.SampleWithoutReplacement(head, std::min(num_terms, head));
  terms.reserve(picks.size());
  for (size_t rank : picks) {
    terms.push_back(static_cast<TermId>(static_cast<size_t>(category) * slice + rank));
  }
  return terms;
}

std::unordered_set<graph::PageId> RelevantPages(const graph::CategorizedGraph& collection,
                                                std::span<const double> pagerank,
                                                graph::CategoryId category,
                                                double authority_fraction) {
  JXP_CHECK_EQ(pagerank.size(), collection.graph.NumNodes());
  JXP_CHECK_GT(authority_fraction, 0.0);
  JXP_CHECK_LE(authority_fraction, 1.0);
  // Rank the category's pages by true PR; the top fraction is core-relevant.
  std::vector<std::pair<double, graph::PageId>> on_topic;
  for (graph::PageId p = 0; p < collection.graph.NumNodes(); ++p) {
    if (collection.category[p] == category) on_topic.emplace_back(pagerank[p], p);
  }
  std::sort(on_topic.begin(), on_topic.end(), std::greater<>());
  const size_t core_count = std::max<size_t>(
      1, static_cast<size_t>(static_cast<double>(on_topic.size()) * authority_fraction));

  std::unordered_set<graph::PageId> relevant;
  for (size_t i = 0; i < core_count && i < on_topic.size(); ++i) {
    relevant.insert(on_topic[i].second);
  }
  // Extension (paper Section 6.3): on-topic pages linking to a core page
  // also count as relevant — but only those with at least median authority
  // within the category, so that linking to a hub alone does not make a
  // fringe page relevant (hubs have so many in-links that the unrestricted
  // extension would cover most of the category).
  const double median_score =
      on_topic.empty() ? 0.0 : on_topic[on_topic.size() / 2].first;
  std::unordered_set<graph::PageId> extended = relevant;
  for (graph::PageId core : relevant) {
    for (graph::PageId pred : collection.graph.InNeighbors(core)) {
      if (collection.category[pred] == category && pagerank[pred] >= median_score) {
        extended.insert(pred);
      }
    }
  }
  return extended;
}

}  // namespace search
}  // namespace jxp
