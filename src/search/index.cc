#include "search/index.h"

#include <algorithm>

namespace jxp {
namespace search {

void PeerIndex::AddDocument(const Document& doc) {
  for (const auto& [term, tf] : doc.terms) {
    std::vector<Posting>& list = postings_[term];
    // Maintain the sorted-by-page invariant (see the class comment). Pages
    // are usually added in ascending order, so the common case is a plain
    // append; out-of-order additions insert at the right spot.
    if (list.empty() || list.back().page < doc.page) {
      list.push_back({doc.page, tf});
    } else {
      const auto it = std::lower_bound(
          list.begin(), list.end(), doc.page,
          [](const Posting& p, graph::PageId page) { return p.page < page; });
      JXP_CHECK(it == list.end() || it->page != doc.page)
          << "document " << doc.page << " indexed twice";
      list.insert(it, {doc.page, tf});
    }
  }
  ++num_documents_;
}

}  // namespace search
}  // namespace jxp
