#include "search/index.h"

namespace jxp {
namespace search {

void PeerIndex::AddDocument(const Document& doc) {
  for (const auto& [term, tf] : doc.terms) {
    postings_[term].push_back({doc.page, tf});
  }
  ++num_documents_;
}

}  // namespace search
}  // namespace jxp
