#ifndef JXP_SEARCH_CORPUS_H_
#define JXP_SEARCH_CORPUS_H_

#include <cstdint>
#include <span>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/random.h"
#include "graph/generators.h"

namespace jxp {
namespace search {

/// Identifier of a vocabulary term.
using TermId = uint32_t;

/// A page's textual content in bag-of-words form.
struct Document {
  graph::PageId page = graph::kInvalidPage;
  graph::CategoryId topic = 0;
  /// (term, term frequency), sorted by term id.
  std::vector<std::pair<TermId, uint32_t>> terms;
  /// Total token count.
  uint32_t length = 0;
};

/// Options of the synthetic topic-aligned corpus (the stand-in for the
/// paper's crawled page contents; see DESIGN.md section 3).
struct CorpusOptions {
  /// Total vocabulary size. The first num_categories * category_vocab_size
  /// terms are split into per-category characteristic slices; the remainder
  /// is topic-neutral shared vocabulary.
  size_t vocabulary_size = 20000;
  /// Characteristic terms per category.
  size_t category_vocab_size = 800;
  /// Document lengths are uniform in [min, max].
  uint32_t min_doc_length = 40;
  uint32_t max_doc_length = 160;
  /// Probability that a token comes from the page's own category slice
  /// (otherwise from the shared slice).
  double on_topic_probability = 0.6;
};

/// A generated corpus: one document per page of a categorized graph, with
/// Zipf-like term frequencies concentrated on the page's category slice.
class Corpus {
 public:
  /// Generates the corpus for `collection`.
  static Corpus Generate(const graph::CategorizedGraph& collection,
                         const CorpusOptions& options, uint64_t seed);

  /// The document of page `p`.
  const Document& DocumentFor(graph::PageId p) const {
    JXP_CHECK_LT(p, documents_.size());
    return documents_[p];
  }

  /// Number of documents (== pages).
  size_t NumDocuments() const { return documents_.size(); }

  /// Corpus-wide document frequency of a term.
  uint32_t DocumentFrequency(TermId term) const {
    return term < df_.size() ? df_[term] : 0;
  }

  /// Number of categories.
  uint32_t num_categories() const { return num_categories_; }

  /// Samples `num_terms` distinct characteristic query terms of `category`,
  /// biased toward its frequent terms (the way popular Web queries use the
  /// salient words of a topic).
  std::vector<TermId> SampleQueryTerms(graph::CategoryId category, size_t num_terms,
                                       Random& rng) const;

 private:
  std::vector<Document> documents_;
  std::vector<uint32_t> df_;
  CorpusOptions options_;
  uint32_t num_categories_ = 0;
};

/// Programmatic relevance ground truth for a topical query (replaces the
/// paper's manual assessment, same mechanism): the *relevant* pages of a
/// category are its authoritative pages — topic == category and true PR
/// within the top `authority_fraction` of the category — plus, following the
/// paper's extension, the on-topic pages that link to one of those.
std::unordered_set<graph::PageId> RelevantPages(const graph::CategorizedGraph& collection,
                                                std::span<const double> pagerank,
                                                graph::CategoryId category,
                                                double authority_fraction);

}  // namespace search
}  // namespace jxp

#endif  // JXP_SEARCH_CORPUS_H_
