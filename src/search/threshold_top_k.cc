#include "search/threshold_top_k.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/check.h"

namespace jxp {
namespace search {

namespace {

/// Per-term contribution of a document: (1 + log tf) * idf; 0 when absent.
double TermScore(const Document& doc, TermId term, double idf) {
  const auto it = std::lower_bound(
      doc.terms.begin(), doc.terms.end(), term,
      [](const std::pair<TermId, uint32_t>& e, TermId t) { return e.first < t; });
  if (it == doc.terms.end() || it->first != term) return 0;
  return (1.0 + std::log(static_cast<double>(it->second))) * idf;
}

}  // namespace

ThresholdTopKResult ThresholdTopK(const PeerIndex& index, const Corpus& corpus,
                                  std::span<const TermId> query, size_t k) {
  ThresholdTopKResult out;
  JXP_CHECK_GT(k, 0u);
  const double num_docs = static_cast<double>(corpus.NumDocuments());

  // Materialize the sorted-access views: per query term, postings ordered
  // by descending per-term score. (A production index would store impact-
  // ordered lists; building them here keeps the index layout simple.)
  struct SortedList {
    TermId term = 0;
    double idf = 0;
    std::vector<std::pair<double, graph::PageId>> entries;  // Descending.
    size_t cursor = 0;
  };
  std::vector<SortedList> lists;
  for (TermId term : query) {
    const std::vector<Posting>* postings = index.PostingsFor(term);
    if (postings == nullptr) continue;
    const uint32_t df = corpus.DocumentFrequency(term);
    if (df == 0) continue;
    SortedList list;
    list.term = term;
    list.idf = std::log(num_docs / static_cast<double>(df));
    list.entries.reserve(postings->size());
    for (const Posting& posting : *postings) {
      list.entries.emplace_back(
          (1.0 + std::log(static_cast<double>(posting.tf))) * list.idf, posting.page);
    }
    std::sort(list.entries.begin(), list.entries.end(), std::greater<>());
    lists.push_back(std::move(list));
  }
  if (lists.empty()) return out;

  // Top-k bookkeeping: the worst of the current top-k at the front, under
  // the documented total order (score descending, page ascending on ties) —
  // the same tie-break as the final sort, so which of two tied-score pages
  // survives eviction never depends on posting traversal order.
  std::vector<std::pair<double, graph::PageId>> top;
  const auto heap_better = [](const std::pair<double, graph::PageId>& a,
                              const std::pair<double, graph::PageId>& b) {
    return a.first != b.first ? a.first > b.first : a.second < b.second;
  };
  std::unordered_set<graph::PageId> seen;

  bool exhausted = false;
  while (!exhausted) {
    exhausted = true;
    double threshold = 0;
    for (SortedList& list : lists) {
      if (list.cursor >= list.entries.size()) continue;
      exhausted = false;
      const auto [score, page] = list.entries[list.cursor];
      ++list.cursor;
      ++out.sorted_accesses;
      threshold += score;
      if (seen.insert(page).second) {
        // One random access per newly seen document (Fagin-style
        // accounting): the probe fetches the document once and aggregates
        // all query terms from it.
        ++out.random_accesses;
        double full = 0;
        const Document& doc = corpus.DocumentFor(page);
        for (const SortedList& other : lists) {
          full += TermScore(doc, other.term, other.idf);
        }
        if (top.size() < k) {
          top.emplace_back(full, page);
          std::push_heap(top.begin(), top.end(), heap_better);
        } else if (heap_better({full, page}, top.front())) {
          std::pop_heap(top.begin(), top.end(), heap_better);
          top.back() = {full, page};
          std::push_heap(top.begin(), top.end(), heap_better);
        }
      }
    }
    // TA stopping rule: no unseen document can beat the current k-th
    // result. Strictly greater, not >=: an unseen document could still
    // reach exactly `threshold`, and with a smaller page id it would win
    // the tie against the current k-th under the documented tie-break.
    if (!exhausted && top.size() == k && top.front().first > threshold) {
      out.early_terminated = true;
      break;
    }
  }

  std::sort(top.begin(), top.end(), [](const auto& a, const auto& b) {
    return a.first != b.first ? a.first > b.first : a.second < b.second;
  });
  out.results.reserve(top.size());
  for (const auto& [score, page] : top) out.results.emplace_back(page, score);
  return out;
}

}  // namespace search
}  // namespace jxp
