#ifndef JXP_SEARCH_INDEX_H_
#define JXP_SEARCH_INDEX_H_

#include <unordered_map>
#include <vector>

#include "p2p/network.h"
#include "search/corpus.h"

namespace jxp {
namespace search {

/// One inverted-index posting: a document and the term's frequency in it.
struct Posting {
  graph::PageId page = graph::kInvalidPage;
  uint32_t tf = 0;
};

/// A peer's local inverted index over the documents of its crawled pages
/// (each Minerva peer is "a full-fledged search engine with its own crawler,
/// indexer, and query processor").
///
/// Invariant: every posting list is sorted by ascending page id, maintained
/// at AddDocument time. Downstream consumers depend on it: the compressed
/// builder (qp::CompressedPeerIndex::Freeze) requires strictly increasing
/// docids for delta encoding, and deterministic traversal orders in the
/// threshold algorithm and the engine follow from it.
class PeerIndex {
 public:
  explicit PeerIndex(p2p::PeerId owner) : owner_(owner) {}

  /// Indexes one document, keeping each touched posting list sorted by page
  /// id. A page must be added at most once per index.
  void AddDocument(const Document& doc);

  /// Postings of a term, sorted by ascending page id, or nullptr if the
  /// peer has none.
  const std::vector<Posting>* PostingsFor(TermId term) const {
    const auto it = postings_.find(term);
    return it == postings_.end() ? nullptr : &it->second;
  }

  /// Peer-local document frequency of a term (the per-peer statistics that
  /// drive query routing).
  uint32_t LocalDocumentFrequency(TermId term) const {
    const auto it = postings_.find(term);
    return it == postings_.end() ? 0 : static_cast<uint32_t>(it->second.size());
  }

  /// Number of indexed documents.
  size_t NumDocuments() const { return num_documents_; }

  /// All posting lists (term -> postings), e.g. for publishing per-term
  /// statistics into the distributed directory.
  const std::unordered_map<TermId, std::vector<Posting>>& postings() const {
    return postings_;
  }

  /// Owning peer.
  p2p::PeerId owner() const { return owner_; }

 private:
  p2p::PeerId owner_;
  std::unordered_map<TermId, std::vector<Posting>> postings_;
  size_t num_documents_ = 0;
};

}  // namespace search
}  // namespace jxp

#endif  // JXP_SEARCH_INDEX_H_
