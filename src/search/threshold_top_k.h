#ifndef JXP_SEARCH_THRESHOLD_TOP_K_H_
#define JXP_SEARCH_THRESHOLD_TOP_K_H_

#include <span>
#include <utility>
#include <vector>

#include "search/corpus.h"
#include "search/index.h"

namespace jxp {
namespace search {

/// Result of a threshold-algorithm top-k run.
struct ThresholdTopKResult {
  /// (page, aggregated tf*idf score), best first, at most k entries.
  std::vector<std::pair<graph::PageId, double>> results;
  /// Sorted accesses performed (posting entries read in score order).
  size_t sorted_accesses = 0;
  /// Random accesses performed: one per newly seen document (each probe
  /// fetches the document once and aggregates every query term from it).
  size_t random_accesses = 0;
  /// True when the algorithm stopped before exhausting the posting lists.
  bool early_terminated = false;
};

/// Fagin's Threshold Algorithm (TA) over a peer's inverted index: finds the
/// exact top-k documents by aggregated tf*idf without scoring every
/// candidate. Posting lists are walked in descending per-term score order
/// (sorted access); each newly seen page is fully scored (random access);
/// the scan stops as soon as the k-th best full score strictly exceeds the
/// threshold (the aggregated score an unseen document could still achieve —
/// at exactly the threshold, an unseen page could still win the page-id
/// tie-break). Ties are broken (score desc, page asc), the same total
/// order as the engine's final sort.
///
/// This is the query-processing style Minerva-class P2P engines use to keep
/// per-peer work sublinear in the posting-list lengths; the result list is
/// identical to exhaustive scoring.
ThresholdTopKResult ThresholdTopK(const PeerIndex& index, const Corpus& corpus,
                                  std::span<const TermId> query, size_t k);

}  // namespace search
}  // namespace jxp

#endif  // JXP_SEARCH_THRESHOLD_TOP_K_H_
