#include "search/directory.h"

#include "common/hash.h"

namespace jxp {
namespace search {

namespace {
/// Wire size of one routed post message: term key (8) + peer id (4) +
/// df (4) + jxp mass (8).
constexpr double kPostBytes = 8 + 4 + 4 + 8;
}  // namespace

DhtDirectory::DhtDirectory(const p2p::ChordRing* ring) : ring_(ring) {
  JXP_CHECK(ring_ != nullptr);
}

uint64_t DhtDirectory::KeyOf(TermId term) {
  return Mix64(static_cast<uint64_t>(term) + 0x7e21b6c3d5ULL);
}

void DhtDirectory::Publish(TermId term, const TermPost& post) {
  JXP_CHECK(ring_->Contains(post.peer)) << "publisher not on the ring";
  const p2p::ChordRing::LookupResult route = ring_->Lookup(KeyOf(term), post.peer);
  publish_hops_ += route.hops;
  wire_bytes_ += kPostBytes * static_cast<double>(route.hops + 1);
  std::vector<TermPost>& posts = posts_[term];
  for (TermPost& existing : posts) {
    if (existing.peer == post.peer) {
      existing = post;
      return;
    }
  }
  posts.push_back(post);
}

const std::vector<TermPost>& DhtDirectory::Lookup(TermId term,
                                                  p2p::PeerId asking_peer) const {
  JXP_CHECK(ring_->Contains(asking_peer)) << "asker not on the ring";
  const p2p::ChordRing::LookupResult route = ring_->Lookup(KeyOf(term), asking_peer);
  lookup_hops_ += route.hops;
  const auto it = posts_.find(term);
  const std::vector<TermPost>& result = it == posts_.end() ? empty_ : it->second;
  // Request travels hops; the response carries the posts back.
  wire_bytes_ += 8.0 * static_cast<double>(route.hops + 1) +
                 kPostBytes * static_cast<double>(result.size());
  return result;
}

}  // namespace search
}  // namespace jxp
