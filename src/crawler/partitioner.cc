#include "crawler/partitioner.h"

#include <cmath>
#include <unordered_set>

namespace jxp {
namespace crawler {

std::vector<std::vector<graph::PageId>> CrawlBasedPartition(
    const graph::CategorizedGraph& collection, const PartitionOptions& options, Random& rng) {
  JXP_CHECK_GT(options.peers_per_category, 0u);
  JXP_CHECK_GE(options.budget_spread, 1.0);
  std::vector<std::vector<graph::PageId>> fragments;
  fragments.reserve(collection.num_categories * options.peers_per_category);
  for (graph::CategoryId cat = 0; cat < collection.num_categories; ++cat) {
    for (size_t peer = 0; peer < options.peers_per_category; ++peer) {
      CrawlerOptions crawl = options.crawler;
      if (options.budget_spread > 1.0) {
        const double log_spread = std::log(options.budget_spread);
        const double factor = std::exp((2 * rng.NextDouble() - 1) * log_spread);
        crawl.max_pages = std::max<size_t>(
            10, static_cast<size_t>(static_cast<double>(crawl.max_pages) * factor));
      }
      fragments.push_back(ThematicCrawl(collection, cat, crawl, rng));
    }
  }
  if (options.ensure_coverage) {
    std::unordered_set<graph::PageId> covered;
    for (const auto& fragment : fragments) covered.insert(fragment.begin(), fragment.end());
    for (graph::PageId p = 0; p < collection.graph.NumNodes(); ++p) {
      if (covered.count(p)) continue;
      // Assign to a random peer of the page's own category.
      const size_t base = static_cast<size_t>(collection.category[p]) *
                          options.peers_per_category;
      const size_t peer = base + rng.NextBounded(options.peers_per_category);
      fragments[peer].push_back(p);
    }
  }
  return fragments;
}

std::vector<std::vector<graph::PageId>> FragmentSplitPartition(
    const graph::CategorizedGraph& collection, size_t num_fragments,
    size_t fragments_per_peer, Random& rng) {
  JXP_CHECK_GT(num_fragments, 0u);
  JXP_CHECK_GT(fragments_per_peer, 0u);
  JXP_CHECK_LE(fragments_per_peer, num_fragments);

  std::vector<std::vector<graph::PageId>> peers;
  peers.reserve(collection.num_categories * num_fragments);
  for (graph::CategoryId cat = 0; cat < collection.num_categories; ++cat) {
    std::vector<graph::PageId> pages;
    for (graph::PageId p = 0; p < collection.graph.NumNodes(); ++p) {
      if (collection.category[p] == cat) pages.push_back(p);
    }
    rng.Shuffle(pages);
    // Chunk boundaries.
    std::vector<std::vector<graph::PageId>> chunks(num_fragments);
    for (size_t i = 0; i < pages.size(); ++i) {
      chunks[i % num_fragments].push_back(pages[i]);
    }
    // One peer per fragment index, hosting fragments_per_peer consecutive
    // chunks starting at its index.
    for (size_t j = 0; j < num_fragments; ++j) {
      std::vector<graph::PageId> fragment;
      for (size_t o = 0; o < fragments_per_peer; ++o) {
        const auto& chunk = chunks[(j + o) % num_fragments];
        fragment.insert(fragment.end(), chunk.begin(), chunk.end());
      }
      peers.push_back(std::move(fragment));
    }
  }
  return peers;
}

}  // namespace crawler
}  // namespace jxp
