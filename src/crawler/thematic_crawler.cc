#include "crawler/thematic_crawler.h"

#include <deque>
#include <unordered_set>

namespace jxp {
namespace crawler {

std::vector<graph::PageId> ThematicCrawl(const graph::CategorizedGraph& collection,
                                         graph::CategoryId category,
                                         const CrawlerOptions& options, Random& rng) {
  JXP_CHECK_LT(category, collection.num_categories);
  JXP_CHECK_GT(options.num_seeds, 0u);
  const graph::Graph& g = collection.graph;

  // Candidate seeds: all pages of the category.
  std::vector<graph::PageId> category_pages;
  for (graph::PageId p = 0; p < g.NumNodes(); ++p) {
    if (collection.category[p] == category) category_pages.push_back(p);
  }
  JXP_CHECK(!category_pages.empty()) << "category " << category << " has no pages";

  std::vector<graph::PageId> crawled;
  std::unordered_set<graph::PageId> visited;
  std::deque<std::pair<graph::PageId, size_t>> frontier;  // (page, depth)

  const size_t num_seeds = std::min(options.num_seeds, category_pages.size());
  for (size_t i : rng.SampleWithoutReplacement(category_pages.size(), num_seeds)) {
    const graph::PageId seed = category_pages[i];
    if (visited.insert(seed).second) frontier.emplace_back(seed, 0);
  }

  while (!frontier.empty() && crawled.size() < options.max_pages) {
    const auto [page, depth] = frontier.front();
    frontier.pop_front();
    crawled.push_back(page);
    if (depth >= options.max_depth) continue;
    // Follow this page's links: always for on-category pages, with a coin
    // flip for off-category ones.
    const bool follow = collection.category[page] == category ||
                        rng.NextBool(options.follow_off_category_probability);
    if (!follow) continue;
    for (graph::PageId next : g.OutNeighbors(page)) {
      if (visited.insert(next).second) frontier.emplace_back(next, depth + 1);
    }
  }
  return crawled;
}

}  // namespace crawler
}  // namespace jxp
