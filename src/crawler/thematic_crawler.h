#ifndef JXP_CRAWLER_THEMATIC_CRAWLER_H_
#define JXP_CRAWLER_THEMATIC_CRAWLER_H_

#include <vector>

#include "common/random.h"
#include "graph/generators.h"

namespace jxp {
namespace crawler {

/// Options of the simulated focused crawler (paper Section 6.1).
struct CrawlerOptions {
  /// Number of random seed pages, drawn from the peer's category.
  size_t num_seeds = 5;
  /// Crawl budget: stop after indexing this many pages.
  size_t max_pages = 600;
  /// BFS depth cap ("up to a certain predefined depth").
  size_t max_depth = 6;
  /// Probability of following the links of an off-category page (the paper
  /// flips a fair coin, i.e. 0.5).
  double follow_off_category_probability = 0.5;
};

/// Simulates one peer's thematic crawl: breadth-first from random seeds of
/// `category`, fetching pages along links; links of an off-category page are
/// followed only with the configured probability. Returns the set of crawled
/// pages (the peer's fragment), in crawl order.
std::vector<graph::PageId> ThematicCrawl(const graph::CategorizedGraph& collection,
                                         graph::CategoryId category,
                                         const CrawlerOptions& options, Random& rng);

}  // namespace crawler
}  // namespace jxp

#endif  // JXP_CRAWLER_THEMATIC_CRAWLER_H_
