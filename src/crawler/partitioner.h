#ifndef JXP_CRAWLER_PARTITIONER_H_
#define JXP_CRAWLER_PARTITIONER_H_

#include <vector>

#include "crawler/thematic_crawler.h"

namespace jxp {
namespace crawler {

/// Options for the crawl-based assignment of pages to peers.
struct PartitionOptions {
  /// Peers per category (the paper runs 10 per category).
  size_t peers_per_category = 10;
  /// Per-peer crawler options.
  CrawlerOptions crawler;
  /// Autonomous peers have very different crawl capacities: each peer's
  /// page budget is crawler.max_pages scaled by a log-uniform factor in
  /// [1/budget_spread, budget_spread]. 1.0 = identical budgets; the paper's
  /// collections show a ~20x size range between the biggest and smallest
  /// peers (Table 1).
  double budget_spread = 1.0;
  /// If true, every page left uncovered by all crawls is appended to a
  /// random peer of its own category, so the union of the fragments covers
  /// the collection (as the paper's collections do — they *are* the union
  /// of the peers' crawls).
  bool ensure_coverage = true;
};

/// The paper's Section 6.1 setup: peers_per_category autonomous thematic
/// crawlers per category. Fragments overlap arbitrarily; with
/// ensure_coverage they jointly cover the collection. Returns one page list
/// per peer (num_categories * peers_per_category entries, grouped by
/// category).
std::vector<std::vector<graph::PageId>> CrawlBasedPartition(
    const graph::CategorizedGraph& collection, const PartitionOptions& options, Random& rng);

/// The paper's Section 6.3 setup: each category's page set is split into
/// `num_fragments` equal fragments; one peer is created per fragment index,
/// hosting `fragments_per_peer` consecutive fragments (mod num_fragments) of
/// its category — e.g. 4 fragments with 3 hosted gives 40 peers over 10
/// categories with high same-topic overlap.
std::vector<std::vector<graph::PageId>> FragmentSplitPartition(
    const graph::CategorizedGraph& collection, size_t num_fragments,
    size_t fragments_per_peer, Random& rng);

}  // namespace crawler
}  // namespace jxp

#endif  // JXP_CRAWLER_PARTITIONER_H_
