#include "datasets/io.h"

#include <fstream>

#include "graph/edge_list.h"

namespace jxp {
namespace datasets {

Status SaveCollection(const Collection& collection, const std::string& prefix) {
  JXP_RETURN_IF_ERROR(WriteEdgeList(collection.data.graph, prefix + ".edges"));
  std::ofstream out(prefix + ".categories");
  if (!out) return Status::IOError("cannot open " + prefix + ".categories for writing");
  out << "categories " << collection.data.num_categories << " nodes "
      << collection.data.graph.NumNodes() << "\n";
  for (graph::CategoryId c : collection.data.category) out << c << "\n";
  out.flush();
  if (!out) return Status::IOError("write error on " + prefix + ".categories");
  return Status::OK();
}

StatusOr<Collection> LoadCollection(const std::string& prefix, const std::string& name) {
  std::ifstream in(prefix + ".categories");
  if (!in) return Status::IOError("cannot open " + prefix + ".categories");
  std::string kw_categories;
  std::string kw_nodes;
  uint32_t num_categories = 0;
  size_t num_nodes = 0;
  if (!(in >> kw_categories >> num_categories >> kw_nodes >> num_nodes) ||
      kw_categories != "categories" || kw_nodes != "nodes") {
    return Status::Corruption(prefix + ".categories: bad header");
  }
  if (num_categories == 0) {
    return Status::Corruption(prefix + ".categories: zero categories");
  }
  Collection collection;
  collection.name = name;
  collection.data.num_categories = num_categories;
  collection.data.category.resize(num_nodes);
  for (size_t p = 0; p < num_nodes; ++p) {
    uint32_t category = 0;
    if (!(in >> category)) {
      return Status::Corruption(prefix + ".categories: truncated category list");
    }
    if (category >= num_categories) {
      return Status::Corruption(prefix + ".categories: category id out of range");
    }
    collection.data.category[p] = category;
  }
  // The graph may have trailing isolated nodes; min_nodes pins the count.
  JXP_ASSIGN_OR_RETURN(collection.data.graph,
                       graph::ReadEdgeList(prefix + ".edges", num_nodes));
  if (collection.data.graph.NumNodes() != num_nodes) {
    return Status::Corruption(prefix + ": edge list mentions more nodes than the "
                              "category file declares");
  }
  return collection;
}

}  // namespace datasets
}  // namespace jxp
