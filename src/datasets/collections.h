#ifndef JXP_DATASETS_COLLECTIONS_H_
#define JXP_DATASETS_COLLECTIONS_H_

#include <string>

#include "graph/generators.h"

namespace jxp {
namespace datasets {

/// A named evaluation collection.
struct Collection {
  std::string name;
  graph::CategorizedGraph data;
};

/// Synthetic stand-in for the paper's Amazon.com product collection
/// (55,196 pages, 237,160 links, 10 categories; mean out-degree ~4.3,
/// power-law in-degree). `scale` multiplies the node count (1.0 = paper
/// size); the shape parameters stay fixed. See DESIGN.md section 3 for the
/// substitution rationale.
Collection MakeAmazonLike(double scale, uint64_t seed);

/// Synthetic stand-in for the paper's focused Web crawl (103,591 pages,
/// 1,633,276 links, 10 categories; mean out-degree ~15.8, heavier hubs).
Collection MakeWebCrawlLike(double scale, uint64_t seed);

}  // namespace datasets
}  // namespace jxp

#endif  // JXP_DATASETS_COLLECTIONS_H_
