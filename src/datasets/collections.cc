#include "datasets/collections.h"

#include <algorithm>

#include "common/check.h"

namespace jxp {
namespace datasets {

namespace {
constexpr size_t kAmazonNodes = 55196;
constexpr size_t kWebCrawlNodes = 103591;
}  // namespace

Collection MakeAmazonLike(double scale, uint64_t seed) {
  JXP_CHECK_GT(scale, 0.0);
  Random rng(seed);
  graph::WebGraphParams params;
  params.num_nodes = std::max<size_t>(200, static_cast<size_t>(kAmazonNodes * scale));
  params.num_categories = 10;
  // 237,160 / 55,196 ≈ 4.3 links per product ("similar recommended
  // products" lists are short).
  params.mean_out_degree = 4.3;
  params.copy_probability = 0.65;
  params.intra_category_probability = 0.85;
  return {"amazon", GenerateWebGraph(params, rng)};
}

Collection MakeWebCrawlLike(double scale, uint64_t seed) {
  JXP_CHECK_GT(scale, 0.0);
  Random rng(seed);
  graph::WebGraphParams params;
  params.num_nodes = std::max<size_t>(200, static_cast<size_t>(kWebCrawlNodes * scale));
  params.num_categories = 10;
  // 1,633,276 / 103,591 ≈ 15.8 links per page; stronger hub structure than
  // the product graph.
  params.mean_out_degree = 15.8;
  params.copy_probability = 0.75;
  params.intra_category_probability = 0.8;
  return {"webcrawl", GenerateWebGraph(params, rng)};
}

}  // namespace datasets
}  // namespace jxp
