#ifndef JXP_DATASETS_IO_H_
#define JXP_DATASETS_IO_H_

#include <string>

#include "common/statusor.h"
#include "datasets/collections.h"

namespace jxp {
namespace datasets {

/// Persistence of evaluation collections, so the (deterministic but not
/// free) generation step can be cached and collections can be exchanged as
/// plain text. A collection is stored as two files:
///   <prefix>.edges       — "u v" edge list (graph/edge_list.h format)
///   <prefix>.categories  — header "categories <k> nodes <n>" followed by
///                          one category id per line, in page-id order.

/// Writes `collection` under `prefix`.
Status SaveCollection(const Collection& collection, const std::string& prefix);

/// Loads a collection saved with SaveCollection. `name` becomes the
/// collection's name. Validates shape consistency between the two files.
StatusOr<Collection> LoadCollection(const std::string& prefix, const std::string& name);

}  // namespace datasets
}  // namespace jxp

#endif  // JXP_DATASETS_IO_H_
