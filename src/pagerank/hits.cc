#include "pagerank/hits.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace jxp {
namespace pagerank {

namespace {

void NormalizeL1(std::vector<double>& v) {
  double sum = 0;
  for (double x : v) sum += x;
  if (sum <= 0) {
    std::fill(v.begin(), v.end(), 1.0 / static_cast<double>(v.size()));
    return;
  }
  for (double& x : v) x /= sum;
}

}  // namespace

HitsResult ComputeHits(const graph::Graph& g, const HitsOptions& options) {
  const size_t n = g.NumNodes();
  JXP_CHECK_GT(n, 0u);
  HitsResult result;
  result.authority.assign(n, 1.0 / static_cast<double>(n));
  result.hub.assign(n, 1.0 / static_cast<double>(n));
  std::vector<double> next(n);

  for (result.iterations = 0; result.iterations < options.max_iterations;) {
    // Authority update: a(p) = sum of hub scores of predecessors.
    std::fill(next.begin(), next.end(), 0.0);
    for (graph::PageId u = 0; u < n; ++u) {
      const double h = result.hub[u];
      if (h == 0) continue;
      for (graph::PageId v : g.OutNeighbors(u)) next[v] += h;
    }
    NormalizeL1(next);
    double residual = 0;
    for (size_t i = 0; i < n; ++i) residual += std::abs(next[i] - result.authority[i]);
    result.authority.swap(next);

    // Hub update: h(p) = sum of authority scores of successors.
    std::fill(next.begin(), next.end(), 0.0);
    for (graph::PageId u = 0; u < n; ++u) {
      double sum = 0;
      for (graph::PageId v : g.OutNeighbors(u)) sum += result.authority[v];
      next[u] = sum;
    }
    NormalizeL1(next);
    result.hub.swap(next);

    ++result.iterations;
    if (residual <= options.tolerance) {
      result.converged = true;
      break;
    }
  }
  return result;
}

}  // namespace pagerank
}  // namespace jxp
