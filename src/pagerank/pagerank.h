#ifndef JXP_PAGERANK_PAGERANK_H_
#define JXP_PAGERANK_PAGERANK_H_

#include <vector>

#include "graph/graph.h"
#include "markov/power_iteration.h"

namespace jxp {
namespace pagerank {

/// Options for the centralized PageRank computation.
struct PageRankOptions {
  /// Probability epsilon of following a link; 1 - epsilon is the random-jump
  /// probability. The paper uses 0.85.
  double damping = 0.85;
  /// L1 convergence threshold.
  double tolerance = 1e-10;
  /// Iteration cap.
  int max_iterations = 500;
  /// Worker threads of the power iteration (see
  /// markov::PowerIterationOptions::num_threads); 1 = sequential.
  int num_threads = 1;
};

/// Result of a PageRank computation.
struct PageRankResult {
  /// scores[p] is the PageRank of page p; the vector sums to 1.
  std::vector<double> scores;
  /// Power iterations performed.
  int iterations = 0;
  /// True iff the tolerance was reached.
  bool converged = false;
};

/// Computes global PageRank over the full link graph by power iteration.
///
/// Dangling pages (out-degree 0) distribute their mass uniformly over all
/// pages — the same convention the JXP extended local graph uses, so JXP
/// scores converge to exactly these values (see DESIGN.md section 2).
PageRankResult ComputePageRank(const graph::Graph& g, const PageRankOptions& options);

/// Builds the row-substochastic link matrix of `g`: row u has weight
/// 1/OutDegree(u) on each successor; dangling rows are empty.
markov::SparseMatrix BuildLinkMatrix(const graph::Graph& g);

}  // namespace pagerank
}  // namespace jxp

#endif  // JXP_PAGERANK_PAGERANK_H_
