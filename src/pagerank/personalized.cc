#include "pagerank/personalized.h"

#include <unordered_set>

namespace jxp {
namespace pagerank {

PageRankResult ComputePersonalizedPageRank(const graph::Graph& g,
                                           std::span<const graph::PageId> teleport_set,
                                           const PageRankOptions& options) {
  JXP_CHECK_GT(g.NumNodes(), 0u);
  JXP_CHECK(!teleport_set.empty()) << "empty teleport set";
  std::unordered_set<graph::PageId> unique(teleport_set.begin(), teleport_set.end());
  std::vector<double> teleport(g.NumNodes(), 0.0);
  const double share = 1.0 / static_cast<double>(unique.size());
  for (graph::PageId p : unique) {
    JXP_CHECK_LT(p, g.NumNodes());
    teleport[p] = share;
  }

  const markov::SparseMatrix matrix = BuildLinkMatrix(g);
  markov::PowerIterationOptions pi_options;
  pi_options.damping = options.damping;
  pi_options.tolerance = options.tolerance;
  pi_options.max_iterations = options.max_iterations;
  markov::PowerIterationResult pi =
      StationaryDistribution(matrix, teleport, teleport, {}, pi_options);
  PageRankResult result;
  result.scores = std::move(pi.distribution);
  result.iterations = pi.iterations;
  result.converged = pi.converged;
  return result;
}

}  // namespace pagerank
}  // namespace jxp
