#ifndef JXP_PAGERANK_HITS_H_
#define JXP_PAGERANK_HITS_H_

#include <vector>

#include "graph/graph.h"

namespace jxp {
namespace pagerank {

/// Options for the HITS computation.
struct HitsOptions {
  /// L1 convergence threshold on the authority vector.
  double tolerance = 1e-10;
  /// Iteration cap.
  int max_iterations = 200;
};

/// Result of a HITS computation.
struct HitsResult {
  /// Authority score per page (sums to 1).
  std::vector<double> authority;
  /// Hub score per page (sums to 1).
  std::vector<double> hub;
  int iterations = 0;
  bool converged = false;
};

/// Kleinberg's HITS, the other seminal Eigenvector-based link-analysis
/// method the paper builds its motivation on: authorities are pages pointed
/// to by good hubs, hubs are pages pointing to good authorities. Computed
/// by alternating power iteration on A^T A / A A^T with L1 normalization.
HitsResult ComputeHits(const graph::Graph& g, const HitsOptions& options);

}  // namespace pagerank
}  // namespace jxp

#endif  // JXP_PAGERANK_HITS_H_
