#ifndef JXP_PAGERANK_OPIC_H_
#define JXP_PAGERANK_OPIC_H_

#include <vector>

#include "common/random.h"
#include "graph/graph.h"

namespace jxp {
namespace pagerank {

/// Options for the OPIC computation.
struct OpicOptions {
  /// Total page visits to simulate (the "long-running crawl process").
  size_t num_visits = 100000;
  /// Probability of following a real link; 1 - damping of each visited
  /// page's cash flows to the virtual root (the random-jump equivalent).
  double damping = 0.85;
  /// Page-visit policy.
  enum class Policy {
    /// Visit pages uniformly at random ("randomly... visiting Web pages").
    kRandom,
    /// Visit the page with the largest accumulated cash ("or otherwise
    /// fairly"); converges faster.
    kGreedy,
  };
  Policy policy = Policy::kGreedy;
};

/// Result of an OPIC run.
struct OpicResult {
  /// importance[p] ~ accumulated credit history of p, normalized to sum 1.
  /// Approximates the PageRank-style importance without damping.
  std::vector<double> importance;
  size_t visits = 0;
};

/// OPIC — Adaptive On-Line Page Importance Computation (Abiteboul, Preda,
/// Cobena; WWW 2003), one of the storage-efficient alternatives the paper
/// contrasts JXP with (Section 2.2) and whose fairness argument Theorem 5.4
/// re-uses. Each page holds "cash"; visiting a page distributes its cash to
/// its successors and credits the page's history. The history vector
/// converges to the importance (stationary) vector provided every page is
/// visited infinitely often — the same fairness notion as JXP's meetings.
///
/// This implementation adds the standard virtual root page to guarantee
/// ergodicity (every page implicitly links to the root and the root links
/// to every page), mirroring PageRank's random jump; dangling pages send
/// all cash to the root.
OpicResult ComputeOpic(const graph::Graph& g, const OpicOptions& options, Random& rng);

}  // namespace pagerank
}  // namespace jxp

#endif  // JXP_PAGERANK_OPIC_H_
