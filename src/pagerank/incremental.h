#ifndef JXP_PAGERANK_INCREMENTAL_H_
#define JXP_PAGERANK_INCREMENTAL_H_

#include <cstdint>
#include <span>
#include <vector>

#include "markov/sparse_matrix.h"

namespace jxp {
namespace pagerank {

/// Tuning of the Gauss–Southwell residual-push solver.
struct GaussSouthwellOptions {
  /// Link-following probability of the PageRank system being solved.
  double damping = 0.85;
  /// Residual infinity-norm target: the solver pushes until every entry of
  /// the effective residual r = c + xM - x satisfies |r_k| <= tolerance.
  /// The solution error is then bounded by ||r||_1 / (1 - damping) in L1
  /// (see DESIGN.md §6j).
  double tolerance = 1e-12;
  /// Push cap per Solve call; exceeding it returns converged = false so the
  /// caller can fall back to full power iteration. 0 = uncapped.
  size_t max_pushes = 0;
};

/// Outcome of one Solve call.
struct GaussSouthwellResult {
  /// True iff the residual target was reached within the push cap.
  bool converged = false;
  /// Residual pushes performed (each relaxes one state).
  size_t pushes = 0;
  /// Distinct states pushed at least once.
  size_t touched_rows = 0;
  /// Dense flushes of the lazily accumulated dangling-mass residual.
  size_t flushes = 0;
  /// Matrix entries (plus dense vector slots) read or written — the
  /// apples-to-apples work counter the churn bench compares against
  /// iterations * NumEntries() of full power iteration.
  size_t work_entries = 0;
};

/// Incremental stationary-distribution solver for the substochastic PageRank
/// systems of markov::StationaryDistribution:
///
///   x = x * M + c,   M = damping * (P + complement ⊗ dangling),
///   c = (1 - damping) * teleport,   complement_i = 1 - RowSum(i),
///
/// whose unique fixed point is the stationary distribution (it sums to 1
/// when teleport does). The solver keeps a candidate solution x and its
/// residual r = c + xM - x across calls, and repairs the solution after
/// *local* changes — a few combined scores, a regenerated world row — by
/// Gauss–Southwell residual pushes instead of full power iteration:
///
///   push at i:  x_i += r_i;  r += r_i * (M_i - e_i)
///
/// Each push moves |r_i| of residual mass through row i and destroys a
/// (1 - damping) fraction of it (M's rows sum to at most damping), so the
/// residual L1 norm decreases monotonically and the number of pushes to
/// reach ||r||_inf <= tol is bounded by ||r_seed||_1 / ((1-damping) * tol).
///
/// The dangling term is rank-one (every row adds complement_i * dangling),
/// so pushes do not touch it entry by entry: its coefficient accumulates in
/// a scalar (`pending_`) and is flushed densely only when it could matter
/// at the tolerance scale. States holding an outsized dangling share (in
/// the extended system, the world state carries nearly all of it) are
/// folded *eagerly* on every pending change instead — O(1) per push — so
/// the dense-flush trigger scales with the largest *lazy* share (~1/N) and
/// flushes stay rare even at tight tolerances. All updates are sequential
/// and deterministic: the work queue is FIFO, seeded in ascending state
/// order.
///
/// The solver never normalizes: the exact fixed point already sums to 1, and
/// the caller's tolerance bounds the drift of an approximate one.
class GaussSouthwellSolver {
 public:
  /// True once Reseed has run and no Invalidate intervened. All other calls
  /// except Reseed require a valid solver.
  bool valid() const { return valid_; }

  /// Dimension of the system the state describes.
  size_t num_states() const { return x_.size(); }

  /// The current candidate solution.
  std::span<const double> solution() const { return x_; }

  /// The options of the last Reseed.
  const GaussSouthwellOptions& options() const { return options_; }

  /// Drops the state; the next use must Reseed. Called when the system is
  /// replaced wholesale (fragment churn re-indexes every state).
  void Invalidate() { valid_ = false; }

  /// (Re)binds the solver to a system and a starting guess `x`, computing
  /// the dense residual in O(entries + states). The teleport and dangling
  /// vectors are copied and must be bit-identical on later delta calls
  /// (checked by TeleportMatches).
  void Reseed(const markov::SparseMatrix& matrix, const std::vector<double>& teleport,
              const std::vector<double>& dangling, const GaussSouthwellOptions& options,
              std::vector<double> x);

  /// True iff `teleport` and `dangling` equal the vectors captured at
  /// Reseed bit for bit. A mismatch (the global size estimate moved) means
  /// the cheap delta path is invalid and the caller must Reseed.
  bool TeleportMatches(const std::vector<double>& teleport,
                       const std::vector<double>& dangling) const;

  /// Folds an external overwrite of solution entry `i` (a meeting combined
  /// a new score into it) into the residual in O(row degree). The matrix
  /// row `i` must be unchanged since the state last saw it.
  void UpdateSolutionEntry(const markov::SparseMatrix& matrix, uint32_t i, double value);

  /// Folds an in-place rewrite of matrix row `row` (the world row after a
  /// meeting or a denominator rescale) into the residual in
  /// O(|old row| + |new row|). `old_row` / `old_row_sum` are the row's
  /// contents *before* the rewrite; the matrix already holds the new row.
  void UpdateRow(const markov::SparseMatrix& matrix, uint32_t row,
                 std::span<const markov::MatrixEntry> old_row, double old_row_sum);

  /// Number of states whose effective residual exceeds the tolerance — the
  /// dirty set the fallback threshold is measured against. O(states).
  size_t CountDirty() const;

  /// Pushes until the effective residual infinity-norm is below the
  /// tolerance or the push cap is hit. The matrix must be the one the
  /// residual was maintained against.
  GaussSouthwellResult Solve(const markov::SparseMatrix& matrix);

 private:
  /// Adds `delta` to r_[k] and maintains the work queue.
  void BumpResidual(uint32_t k, double delta);

  /// Adds `delta` to the rank-one dangling coefficient, folding the share
  /// of eager (high-dangling) states into their residuals immediately.
  void AddPending(double delta);

  /// Applies a solution change x_[i] += delta to the residual (shared by
  /// pushes and UpdateSolutionEntry).
  void ApplySolutionDelta(const markov::SparseMatrix& matrix, uint32_t i, double delta,
                          size_t& work);

  /// Distributes the pending dangling residual densely; O(states).
  void FlushPending(size_t& work);

  void PushQueue(uint32_t k);
  uint32_t PopQueue();
  bool QueueEmpty() const { return queue_head_ >= queue_.size(); }

  bool valid_ = false;
  GaussSouthwellOptions options_;
  /// Push when |r| exceeds this; half the tolerance so the flushed-in
  /// pending share cannot lift a settled entry above the target.
  double push_threshold_ = 0;
  /// Flush when |pending_| * max_lazy_dangling_ exceeds this (the other
  /// half).
  double pending_limit_ = 0;
  /// Largest dangling share among *lazy* (non-eager) states.
  double max_lazy_dangling_ = 0;
  std::vector<double> teleport_;
  std::vector<double> dangling_;
  /// States whose dangling share is far above uniform; their pending
  /// contribution is folded into r_ eagerly on every AddPending.
  std::vector<uint32_t> eager_states_;
  std::vector<uint8_t> eager_mask_;
  std::vector<double> x_;
  /// Residual minus the lazily accumulated dangling term: the effective
  /// residual is r_[k] + pending_ * dangling_[k] for lazy states, and
  /// r_[k] alone for eager ones (their share is folded in continuously).
  std::vector<double> r_;
  double pending_ = 0;
  /// FIFO work queue of states whose |r_| exceeds the push threshold.
  std::vector<uint32_t> queue_;
  size_t queue_head_ = 0;
  std::vector<uint8_t> in_queue_;
  /// Per-Solve scratch marking states already counted as touched.
  std::vector<uint8_t> touched_;
};

}  // namespace pagerank
}  // namespace jxp

#endif  // JXP_PAGERANK_INCREMENTAL_H_
