#include "pagerank/opic.h"

#include <queue>

#include "common/check.h"

namespace jxp {
namespace pagerank {

OpicResult ComputeOpic(const graph::Graph& g, const OpicOptions& options, Random& rng) {
  const size_t n = g.NumNodes();
  JXP_CHECK_GT(n, 0u);
  JXP_CHECK_GT(options.damping, 0.0);
  JXP_CHECK_LE(options.damping, 1.0);
  const uint32_t root = static_cast<uint32_t>(n);  // The virtual root page.
  const double eps = options.damping;

  std::vector<double> cash(n + 1, 1.0 / static_cast<double>(n + 1));
  std::vector<double> history(n + 1, 0.0);

  // Lazy max-heap of (cash-at-push, node) for the greedy policy; stale
  // entries (whose value no longer matches the node's cash) are skipped.
  using HeapEntry = std::pair<double, uint32_t>;
  std::priority_queue<HeapEntry> heap;
  if (options.policy == OpicOptions::Policy::kGreedy) {
    for (uint32_t p = 0; p <= n; ++p) heap.emplace(cash[p], p);
  }

  // Lazy-heap compaction bound: stale entries accumulate (every credit
  // pushes one, and a root visit credits all n pages), so the heap is
  // rebuilt from the live cash values when it outgrows this factor.
  const size_t max_heap_size = 16 * (n + 1) + 1024;
  auto credit = [&](uint32_t node, double amount) {
    cash[node] += amount;
    if (options.policy == OpicOptions::Policy::kGreedy) {
      heap.emplace(cash[node], node);
      if (heap.size() > max_heap_size) {
        std::priority_queue<HeapEntry> fresh;
        for (uint32_t p = 0; p <= n; ++p) {
          if (cash[p] > 0) fresh.emplace(cash[p], p);
        }
        heap.swap(fresh);
      }
    }
  };

  OpicResult result;
  for (size_t visit = 0; visit < options.num_visits; ++visit) {
    uint32_t page;
    if (options.policy == OpicOptions::Policy::kRandom) {
      page = static_cast<uint32_t>(rng.NextBounded(n + 1));
    } else {
      // Pop until a fresh entry surfaces.
      while (true) {
        JXP_CHECK(!heap.empty());
        const auto [value, node] = heap.top();
        heap.pop();
        if (value == cash[node] && value > 0) {
          page = node;
          break;
        }
      }
    }
    const double c = cash[page];
    if (c == 0 && options.policy == OpicOptions::Policy::kRandom) {
      continue;  // Nothing to distribute; not counted as progress.
    }
    history[page] += c;
    cash[page] = 0;
    ++result.visits;

    if (page == root) {
      // The root endorses every page uniformly.
      const double share = c / static_cast<double>(n);
      for (uint32_t q = 0; q < n; ++q) credit(q, share);
      continue;
    }
    const auto successors = g.OutNeighbors(page);
    if (successors.empty()) {
      credit(root, c);  // Dangling: everything through the root.
      continue;
    }
    credit(root, (1.0 - eps) * c);
    const double share = eps * c / static_cast<double>(successors.size());
    for (graph::PageId q : successors) credit(q, share);
  }

  // Importance = normalized credit history over the real pages. Add the
  // still-undistributed cash so short runs are less biased toward the pages
  // visited first (the paper's "history + cash" estimator).
  result.importance.assign(n, 0.0);
  double total = 0;
  for (uint32_t p = 0; p < n; ++p) {
    result.importance[p] = history[p] + cash[p];
    total += result.importance[p];
  }
  if (total > 0) {
    for (double& v : result.importance) v /= total;
  }
  return result;
}

}  // namespace pagerank
}  // namespace jxp
