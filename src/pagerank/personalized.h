#ifndef JXP_PAGERANK_PERSONALIZED_H_
#define JXP_PAGERANK_PERSONALIZED_H_

#include <span>

#include "pagerank/pagerank.h"

namespace jxp {
namespace pagerank {

/// Topic-sensitive PageRank (Haveliwala): the random jump lands only on the
/// pages of `teleport_set` instead of uniformly on the whole Web, biasing
/// authority toward a topic — the personalization the paper's introduction
/// motivates for peers acting as "personalized power search engines".
/// Dangling mass follows the same personalized distribution.
///
/// `teleport_set` must be non-empty; duplicates are counted once.
PageRankResult ComputePersonalizedPageRank(const graph::Graph& g,
                                           std::span<const graph::PageId> teleport_set,
                                           const PageRankOptions& options);

}  // namespace pagerank
}  // namespace jxp

#endif  // JXP_PAGERANK_PERSONALIZED_H_
