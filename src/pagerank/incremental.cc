#include "pagerank/incremental.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace jxp {
namespace pagerank {

void GaussSouthwellSolver::PushQueue(uint32_t k) {
  queue_.push_back(k);
  in_queue_[k] = 1;
}

uint32_t GaussSouthwellSolver::PopQueue() {
  const uint32_t k = queue_[queue_head_++];
  // Compact once the dead prefix dominates, keeping the amortized cost O(1).
  if (queue_head_ > 64 && queue_head_ * 2 > queue_.size()) {
    queue_.erase(queue_.begin(), queue_.begin() + static_cast<ptrdiff_t>(queue_head_));
    queue_head_ = 0;
  }
  return k;
}

void GaussSouthwellSolver::BumpResidual(uint32_t k, double delta) {
  r_[k] += delta;
  if (!in_queue_[k] && std::abs(r_[k]) > push_threshold_) PushQueue(k);
}

void GaussSouthwellSolver::AddPending(double delta) {
  pending_ += delta;
  for (const uint32_t k : eager_states_) BumpResidual(k, delta * dangling_[k]);
}

void GaussSouthwellSolver::Reseed(const markov::SparseMatrix& matrix,
                                  const std::vector<double>& teleport,
                                  const std::vector<double>& dangling,
                                  const GaussSouthwellOptions& options,
                                  std::vector<double> x) {
  const size_t n = matrix.NumStates();
  JXP_CHECK_EQ(teleport.size(), n);
  JXP_CHECK_EQ(dangling.size(), n);
  JXP_CHECK_EQ(x.size(), n);
  JXP_CHECK_GT(options.tolerance, 0.0);
  JXP_CHECK_GT(options.damping, 0.0);
  JXP_CHECK_LT(options.damping, 1.0);
  options_ = options;
  push_threshold_ = 0.5 * options.tolerance;
  pending_limit_ = 0.5 * options.tolerance;
  teleport_ = teleport;
  dangling_ = dangling;
  // States holding far more than a uniform dangling share (in the extended
  // system, the world state holds nearly all of it) get their pending
  // contribution folded eagerly; the dense-flush trigger then only has to
  // cover the largest *lazy* share, which is ~1/N, so flushes stay rare.
  eager_states_.clear();
  eager_mask_.assign(n, 0);
  max_lazy_dangling_ = 0;
  for (uint32_t k = 0; k < n; ++k) {
    if (dangling_[k] * static_cast<double>(n) > 8.0) {
      eager_states_.push_back(k);
      eager_mask_[k] = 1;
    } else {
      max_lazy_dangling_ = std::max(max_lazy_dangling_, dangling_[k]);
    }
  }
  x_ = std::move(x);

  // Dense residual r = c + xM - x with the dangling (rank-one) term folded
  // in directly; pending_ restarts at zero.
  r_.assign(n, 0.0);
  const double jump = 1.0 - options_.damping;
  double missing = 0;  // sum_i x_i * (1 - RowSum(i))
  for (uint32_t i = 0; i < n; ++i) {
    const double xi = x_[i];
    missing += xi * (1.0 - matrix.RowSum(i));
    if (xi == 0) continue;
    for (const markov::MatrixEntry& e : matrix.Row(i)) {
      r_[e.column] += xi * options_.damping * e.weight;
    }
  }
  for (uint32_t k = 0; k < n; ++k) {
    r_[k] += jump * teleport_[k] + options_.damping * missing * dangling_[k] - x_[k];
  }
  pending_ = 0;

  queue_.clear();
  queue_head_ = 0;
  in_queue_.assign(n, 0);
  touched_.assign(n, 0);
  for (uint32_t k = 0; k < n; ++k) {
    if (std::abs(r_[k]) > push_threshold_) PushQueue(k);
  }
  valid_ = true;
}

bool GaussSouthwellSolver::TeleportMatches(const std::vector<double>& teleport,
                                           const std::vector<double>& dangling) const {
  return valid_ && teleport == teleport_ && dangling == dangling_;
}

void GaussSouthwellSolver::ApplySolutionDelta(const markov::SparseMatrix& matrix,
                                              uint32_t i, double delta, size_t& work) {
  // x_i moving by delta moves (xM)_k by delta * M_ik and -x_i by -delta:
  //   r_k += delta * damping * P_ik     (sparse row entries)
  //   r_i -= delta
  //   pending += delta * damping * (1 - RowSum(i))   (rank-one dangling term)
  x_[i] += delta;
  BumpResidual(i, -delta);
  const auto row = matrix.Row(i);
  for (const markov::MatrixEntry& e : row) {
    BumpResidual(e.column, delta * options_.damping * e.weight);
  }
  AddPending(delta * options_.damping * (1.0 - matrix.RowSum(i)));
  work += row.size() + 1 + eager_states_.size();
}

void GaussSouthwellSolver::UpdateSolutionEntry(const markov::SparseMatrix& matrix,
                                               uint32_t i, double value) {
  JXP_CHECK(valid_);
  JXP_CHECK_LT(i, x_.size());
  size_t work = 0;
  ApplySolutionDelta(matrix, i, value - x_[i], work);
}

void GaussSouthwellSolver::UpdateRow(const markov::SparseMatrix& matrix, uint32_t row,
                                     std::span<const markov::MatrixEntry> old_row,
                                     double old_row_sum) {
  JXP_CHECK(valid_);
  JXP_CHECK_LT(row, x_.size());
  // Row `row` moving from P_old to P_new moves (xM)_k by
  // x_row * damping * (P_new - P_old)_k, and the row's dangling complement
  // by x_row * damping * (old_sum - new_sum).
  const double scale = x_[row] * options_.damping;
  if (scale != 0) {
    for (const markov::MatrixEntry& e : old_row) {
      BumpResidual(e.column, -scale * e.weight);
    }
    for (const markov::MatrixEntry& e : matrix.Row(row)) {
      BumpResidual(e.column, scale * e.weight);
    }
    AddPending(scale * (old_row_sum - matrix.RowSum(row)));
  }
}

size_t GaussSouthwellSolver::CountDirty() const {
  JXP_CHECK(valid_);
  size_t dirty = 0;
  for (size_t k = 0; k < r_.size(); ++k) {
    const double lazy = eager_mask_[k] ? 0.0 : pending_ * dangling_[k];
    if (std::abs(r_[k] + lazy) > options_.tolerance) ++dirty;
  }
  return dirty;
}

void GaussSouthwellSolver::FlushPending(size_t& work) {
  // Eager states already carry their full pending contribution in r_, so
  // only the lazy tail is distributed here.
  const double pending = pending_;
  pending_ = 0;
  for (uint32_t k = 0; k < static_cast<uint32_t>(r_.size()); ++k) {
    if (!eager_mask_[k]) BumpResidual(k, pending * dangling_[k]);
  }
  work += r_.size();
}

GaussSouthwellResult GaussSouthwellSolver::Solve(const markov::SparseMatrix& matrix) {
  JXP_CHECK(valid_);
  JXP_CHECK_EQ(matrix.NumStates(), x_.size());
  GaussSouthwellResult result;
  std::fill(touched_.begin(), touched_.end(), 0);
  for (;;) {
    // Deferred dangling mass is only distributed when it could lift an entry
    // past the push threshold; the first check also covers mass accumulated
    // by UpdateRow / UpdateSolutionEntry calls since the last Solve.
    if (std::abs(pending_) * max_lazy_dangling_ > pending_limit_) {
      FlushPending(result.work_entries);
      ++result.flushes;
    }
    if (QueueEmpty()) break;
    while (!QueueEmpty()) {
      if (options_.max_pushes != 0 && result.pushes >= options_.max_pushes) {
        return result;  // converged stays false; caller falls back.
      }
      const uint32_t i = PopQueue();
      in_queue_[i] = 0;
      const double ri = r_[i];
      if (std::abs(ri) <= push_threshold_) continue;  // Settled since queued.
      ApplySolutionDelta(matrix, i, ri, result.work_entries);
      ++result.pushes;
      if (!touched_[i]) {
        touched_[i] = 1;
        ++result.touched_rows;
      }
      if (std::abs(pending_) * max_lazy_dangling_ > pending_limit_) {
        FlushPending(result.work_entries);
        ++result.flushes;
      }
    }
  }
  // Queue empty and pending below its limit: every effective residual entry
  // is within push_threshold_ + pending_limit_ = tolerance.
  result.converged = true;
  return result;
}

}  // namespace pagerank
}  // namespace jxp
