#include "pagerank/pagerank.h"

namespace jxp {
namespace pagerank {

markov::SparseMatrix BuildLinkMatrix(const graph::Graph& g) {
  markov::SparseMatrixBuilder builder(g.NumNodes());
  for (graph::PageId u = 0; u < g.NumNodes(); ++u) {
    const auto successors = g.OutNeighbors(u);
    if (successors.empty()) continue;
    builder.ReserveRow(u, successors.size());
    const double w = 1.0 / static_cast<double>(successors.size());
    for (graph::PageId v : successors) builder.Add(u, v, w);
  }
  return builder.Build();
}

PageRankResult ComputePageRank(const graph::Graph& g, const PageRankOptions& options) {
  JXP_CHECK_GT(g.NumNodes(), 0u);
  const markov::SparseMatrix matrix = BuildLinkMatrix(g);
  markov::PowerIterationOptions pi_options;
  pi_options.damping = options.damping;
  pi_options.tolerance = options.tolerance;
  pi_options.max_iterations = options.max_iterations;
  pi_options.num_threads = options.num_threads;
  markov::PowerIterationResult pi = StationaryDistribution(matrix, pi_options);
  PageRankResult result;
  result.scores = std::move(pi.distribution);
  result.iterations = pi.iterations;
  result.converged = pi.converged;
  return result;
}

}  // namespace pagerank
}  // namespace jxp
