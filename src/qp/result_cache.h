#ifndef JXP_QP_RESULT_CACHE_H_
#define JXP_QP_RESULT_CACHE_H_

#include <cstdint>
#include <list>
#include <unordered_map>
#include <utility>
#include <vector>

#include "search/corpus.h"

namespace jxp {
namespace qp {

/// A deterministic LRU map: the eviction order is a pure function of the
/// Get/Put call sequence (recency list + hash index, no clocks, no
/// randomized admission), which is what lets QueryServer consult its caches
/// from a serial phase and keep results and metrics bit-identical at any
/// thread count. capacity == 0 disables the cache (Put is a no-op, Get
/// always misses).
template <typename Key, typename Value, typename Hash = std::hash<Key>>
class DeterministicLru {
 public:
  explicit DeterministicLru(size_t capacity = 0) : capacity_(capacity) {}

  size_t capacity() const { return capacity_; }
  size_t size() const { return entries_.size(); }

  void Clear() {
    entries_.clear();
    index_.clear();
  }

  /// Returns the cached value (marking the entry most-recently-used) or
  /// nullptr. The pointer is invalidated by the next Put or Clear.
  Value* Get(const Key& key) {
    const auto it = index_.find(key);
    if (it == index_.end()) return nullptr;
    entries_.splice(entries_.begin(), entries_, it->second);
    return &it->second->second;
  }

  /// Inserts or overwrites, marking the entry most-recently-used; the
  /// least-recently-used entry is evicted when the capacity is exceeded.
  void Put(const Key& key, Value value) {
    if (capacity_ == 0) return;
    const auto it = index_.find(key);
    if (it != index_.end()) {
      it->second->second = std::move(value);
      entries_.splice(entries_.begin(), entries_, it->second);
      return;
    }
    entries_.emplace_front(key, std::move(value));
    index_.emplace(key, entries_.begin());
    if (entries_.size() > capacity_) {
      index_.erase(entries_.back().first);
      entries_.pop_back();
    }
  }

  /// Keys in recency order, most recent first (test/debug aid).
  std::vector<Key> Keys() const {
    std::vector<Key> keys;
    keys.reserve(entries_.size());
    for (const auto& entry : entries_) keys.push_back(entry.first);
    return keys;
  }

 private:
  size_t capacity_;
  std::list<std::pair<Key, Value>> entries_;
  std::unordered_map<Key, typename std::list<std::pair<Key, Value>>::iterator, Hash>
      index_;
};

/// FNV-1a over the term sequence — order-sensitive on purpose: result-cache
/// keys are the *exact* term sequence (scores are accumulated in query-term
/// order, so permutations are distinct queries bit-wise), threshold-cache
/// keys are pre-sorted by the caller.
struct TermSequenceHash {
  size_t operator()(const std::vector<search::TermId>& terms) const {
    uint64_t h = 1469598103934665603ull;
    for (search::TermId term : terms) {
      h ^= static_cast<uint64_t>(term);
      h *= 1099511628211ull;
    }
    return static_cast<size_t>(h);
  }
};

}  // namespace qp
}  // namespace jxp

#endif  // JXP_QP_RESULT_CACHE_H_
