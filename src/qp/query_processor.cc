#include "qp/query_processor.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>

#include "common/timer.h"

namespace jxp {
namespace qp {

namespace {

/// Multiplicative inflation applied to every upper bound before it is
/// compared against the current k-th score. Exact per-term impacts are
/// doubles summed in descending-bound order during pruning but in query-term
/// order during final scoring; the two orders can round differently, so a
/// raw partial sum is not a strict bound of the canonical sum. Inflating by
/// 1 + 1e-12 (orders of magnitude above the worst-case reassociation error
/// of the few dozen terms a query has) restores "bound >= canonical score",
/// making pruning provably lossless while costing next to nothing in
/// selectivity.
constexpr double kBoundSlack = 1.0 + 1e-12;

/// Exact impact of the cursor's current posting, the same expression (and
/// the same double arithmetic) as MinervaEngine::TfIdfScore.
double Impact(BlockPostingList::Cursor& cursor, double idf) {
  return (1.0 + std::log(static_cast<double>(cursor.freq()))) * idf;
}

bool BetterPair(const std::pair<double, graph::PageId>& a,
                const std::pair<double, graph::PageId>& b) {
  return BetterResult(a.first, a.second, b.first, b.second);
}

TopKList FinishRanked(std::vector<std::pair<double, graph::PageId>> ranked, size_t k) {
  const size_t keep = std::min(k, ranked.size());
  std::partial_sort(ranked.begin(), ranked.begin() + static_cast<ptrdiff_t>(keep),
                    ranked.end(), BetterPair);
  TopKList out;
  out.reserve(keep);
  for (size_t i = 0; i < keep; ++i) out.emplace_back(ranked[i].second, ranked[i].first);
  return out;
}

}  // namespace

TopKList ExhaustiveTopK(const CompressedPeerIndex& index,
                        std::span<const search::TermId> query, size_t k,
                        QueryStats* stats, StageNanos* stages) {
  JXP_CHECK_GT(k, 0u);
  QueryStats local;
  QueryStats* s = stats != nullptr ? stats : &local;
  const double w = index.prior_weight();
  // Profiling is strictly additive: clocks are read only when the caller
  // asked for a profile, and nothing downstream of a clock read influences
  // the evaluation (see StageNanos).
  const bool prof = stages != nullptr;
  uint64_t t0 = prof ? MonotonicNanos() : 0;

  // Term-at-a-time: the outer loop follows query-term order, so every
  // document's accumulator receives its contributions in exactly the order
  // MinervaEngine::TfIdfScore sums them — the accumulated doubles are
  // bit-identical.
  std::unordered_map<graph::PageId, double> tfidf;
  for (search::TermId term : query) {
    const CompressedPeerIndex::TermList* entry = index.ListFor(term);
    if (entry == nullptr) continue;
    BlockPostingList::Cursor cursor = entry->list.OpenCursor(&s->decode);
    for (cursor.Next(); cursor.docid() != BlockPostingList::kEndDocid; cursor.Next()) {
      tfidf[cursor.docid()] += Impact(cursor, entry->idf);
    }
  }
  s->candidates_scored += tfidf.size();
  if (prof) {
    const uint64_t t1 = MonotonicNanos();
    stages->decode_ns += t1 - t0;
    t0 = t1;
  }

  std::vector<std::pair<double, graph::PageId>> ranked;
  ranked.reserve(tfidf.size());
  for (const auto& [page, text_score] : tfidf) {
    const double score =
        w == 0.0 ? text_score : (1.0 - w) * text_score + w * index.PriorOf(page);
    ranked.emplace_back(score, page);
  }
  if (prof) {
    const uint64_t t1 = MonotonicNanos();
    stages->scoring_ns += t1 - t0;
    t0 = t1;
  }

  TopKList out = FinishRanked(std::move(ranked), k);
  if (prof) stages->heap_ns += MonotonicNanos() - t0;
  return out;
}

namespace {

struct ListCursor {
  size_t query_pos;
  const CompressedPeerIndex::TermList* entry;
  BlockPostingList::Cursor cursor;
  double ub;  // Quantized list-level impact upper bound, widened.
};

/// Per-query live-block computation (DESIGN.md §6h): the docid space is cut
/// at every block boundary of every query list, and each resulting range is
/// scored by the sum of the covering blocks' quantized max impacts (plus the
/// covering max prior under fused ranking). A range whose slack-inflated
/// bound cannot beat the threshold is *dead*: no document inside it can
/// enter the top-k, so the candidate loop jumps over it without moving past
/// one posting. Within a range every list's covering block is constant (the
/// cuts include all block edges), which is what makes the per-range bound a
/// true upper bound of any document in it.
struct LiveRanges {
  /// Range r covers docids [start[r], start[r+1]) (the last range is open).
  std::vector<uint32_t> start;
  std::vector<uint8_t> live;
  size_t at = 0;
  bool active = false;

  void Advance(uint32_t d) {
    while (at + 1 < start.size() && start[at + 1] <= d) ++at;
  }
  bool IsLive(uint32_t d) {
    if (!active) return true;
    Advance(d);
    return live[at] != 0;
  }
  /// First docid >= d inside a live range (kEndDocid when none remains).
  uint32_t NextLiveStart(uint32_t d) {
    Advance(d);
    for (size_t r = at; r < start.size(); ++r) {
      if (live[r] != 0) return std::max(d, start[r]);
    }
    return BlockPostingList::kEndDocid;
  }
};

void BuildLiveRanges(const std::vector<ListCursor>& lists, double w, double theta,
                     double slack, QueryStats* s, LiveRanges& out) {
  out.start.clear();
  out.start.push_back(0);
  for (const ListCursor& lc : lists) {
    const BlockPostingList& list = lc.entry->list;
    for (size_t b = 0; b < list.num_blocks(); ++b) {
      out.start.push_back(list.block_last_docid(b) + 1);
    }
  }
  std::sort(out.start.begin(), out.start.end());
  out.start.erase(std::unique(out.start.begin(), out.start.end()), out.start.end());
  out.live.assign(out.start.size(), 0);
  out.at = 0;
  out.active = true;

  std::vector<size_t> block_of(lists.size(), 0);
  for (size_t r = 0; r < out.start.size(); ++r) {
    const uint32_t first = out.start[r];
    double impact_sum = 0;
    double prior_max = 0;
    bool covered = false;
    for (size_t i = 0; i < lists.size(); ++i) {
      const BlockPostingList& list = lists[i].entry->list;
      size_t& b = block_of[i];
      while (b < list.num_blocks() && list.block_last_docid(b) < first) ++b;
      if (b >= list.num_blocks()) continue;
      covered = true;
      impact_sum += static_cast<double>(list.block_max_impact(b));
      prior_max = std::max(prior_max, static_cast<double>(list.block_max_prior(b)));
    }
    // Identical bound discipline to the per-document pruning below: a dead
    // range's bound dominates the canonical fused score of every document
    // in it (fl-monotone sums, reassociation absorbed by the slack), so
    // skipping the range discards only documents the per-document check
    // would also have discarded.
    const double bound = slack * ((1.0 - w) * impact_sum + w * prior_max);
    out.live[r] = (covered && bound > theta) ? 1 : 0;
    if (out.live[r] != 0) {
      ++s->live_ranges;
    } else {
      ++s->dead_ranges;
    }
  }
}

}  // namespace

TopKList MaxScoreTopK(const CompressedPeerIndex& index,
                      std::span<const search::TermId> query, size_t k,
                      QueryStats* stats) {
  return MaxScoreTopK(index, query, k, MaxScoreOptions{}, stats);
}

TopKList MaxScoreTopK(const CompressedPeerIndex& index,
                      std::span<const search::TermId> query, size_t k,
                      const MaxScoreOptions& options, QueryStats* stats,
                      StageNanos* stages) {
  JXP_CHECK_GT(k, 0u);
  QueryStats local;
  QueryStats* s = stats != nullptr ? stats : &local;
  const double w = index.prior_weight();
  // Scoring and heap work are rare relative to cursor movement, so only
  // those two get their own clocks; decode falls out as the residual of the
  // whole run (see StageNanos). No clocks are read when stages == nullptr.
  const bool prof = stages != nullptr;
  const uint64_t run_t0 = prof ? MonotonicNanos() : 0;
  uint64_t scoring_acc = 0;
  uint64_t heap_acc = 0;

  std::vector<ListCursor> lists;
  lists.reserve(query.size());
  for (size_t qi = 0; qi < query.size(); ++qi) {
    const CompressedPeerIndex::TermList* entry = index.ListFor(query[qi]);
    if (entry == nullptr || entry->list.num_postings() == 0) continue;
    lists.push_back(ListCursor{qi, entry, entry->list.OpenCursor(&s->decode),
                               static_cast<double>(entry->list.max_impact())});
  }
  if (lists.empty()) return {};

  // MaxScore order: ascending upper bound, with a deterministic tie-break so
  // the traversal (and thus the decode counters) never depends on input
  // ordering quirks.
  std::sort(lists.begin(), lists.end(), [](const ListCursor& a, const ListCursor& b) {
    if (a.ub != b.ub) return a.ub < b.ub;
    if (a.entry->term != b.entry->term) return a.entry->term < b.entry->term;
    return a.query_pos < b.query_pos;
  });
  const size_t n = lists.size();
  std::vector<double> prefix_ub(n);
  double running = 0;
  for (size_t i = 0; i < n; ++i) {
    running += lists[i].ub;
    prefix_ub[i] = running;
  }
  const double prior_ub = w == 0.0 ? 0.0 : static_cast<double>(index.max_prior_bound());

  // Canonical-order view for the final rescore of surviving candidates.
  std::vector<ListCursor*> by_query(n);
  for (size_t i = 0; i < n; ++i) by_query[i] = &lists[i];
  std::sort(by_query.begin(), by_query.end(),
            [](const ListCursor* a, const ListCursor* b) { return a->query_pos < b->query_pos; });

  for (ListCursor& lc : lists) lc.cursor.Next();

  // Min-heap under BetterResult: front is the current k-th (worst) result.
  std::vector<std::pair<double, graph::PageId>> heap;
  heap.reserve(k);
  double theta = -std::numeric_limits<double>::infinity();
  // lists[0..essential) are non-essential: their combined upper bound cannot
  // beat theta, so no document found *only* there can enter the top-k.
  size_t essential = 0;
  const auto raise_essential = [&] {
    const size_t before = essential;
    while (essential < n &&
           kBoundSlack * ((1.0 - w) * prefix_ub[essential] + w * prior_ub) <= theta) {
      ++essential;
    }
    return essential != before;
  };

  // The range set is rebuilt when the threshold first materializes (priming
  // or first heap fill) and whenever a list leaves the essential set — at
  // most n + 2 builds, each a pure function of (index, query, k, options).
  LiveRanges ranges;
  const auto rebuild_live = [&] {
    if (options.live_blocks) BuildLiveRanges(lists, w, theta, kBoundSlack, s, ranges);
  };

  if (options.primed_threshold > 0) {
    // The heap never narrows theta back below the primer (std::max below):
    // early survivors that score under the primer stay in the heap as
    // placeholders — everything above the primer is exact, which is all the
    // caller's merge consumes — but must not weaken pruning.
    theta = options.primed_threshold;
    raise_essential();
    rebuild_live();
  }

  while (essential < n) {
    // Candidate: smallest docid on any essential list.
    uint32_t d = BlockPostingList::kEndDocid;
    for (size_t i = essential; i < n; ++i) d = std::min(d, lists[i].cursor.docid());
    if (d == BlockPostingList::kEndDocid) break;

    if (ranges.active && !ranges.IsLive(d)) {
      // Dead range: every document in it is provably below theta. Jump all
      // essential cursors to the next live range; block skips caused by the
      // jump are reclassified from blocks_skipped (shallow per-document
      // skipping) into blocks_skipped_live so the two stay disjoint.
      const uint32_t next = ranges.NextLiveStart(d);
      const size_t skipped_before = s->decode.blocks_skipped;
      for (size_t i = essential; i < n; ++i) {
        if (lists[i].cursor.docid() < next) lists[i].cursor.NextGEQ(next);
      }
      const size_t moved = s->decode.blocks_skipped - skipped_before;
      s->decode.blocks_skipped -= moved;
      s->decode.blocks_skipped_live += moved;
      continue;
    }

    // Exact partial score from the essential lists. Each matching cursor
    // sits inside a decoded block that contains d, so that block's quantized
    // max_prior bounds this document's static prior — the per-block prior
    // quantization replacing a random access during pruning.
    double partial = 0;
    double prior_bound_d = prior_ub;
    for (size_t i = essential; i < n; ++i) {
      if (lists[i].cursor.docid() != d) continue;
      partial += Impact(lists[i].cursor, lists[i].entry->idf);
      if (w != 0.0) {
        float block_impact = 0;
        float block_prior = 0;
        if (lists[i].cursor.SeekBlock(d, &block_impact, &block_prior)) {
          prior_bound_d = std::min(prior_bound_d, static_cast<double>(block_prior));
        }
      }
    }

    // Descend through the non-essential lists, tightest budget first. Each
    // step first checks the list-level bound, then — via a shallow seek that
    // touches only block metadata — the block-level bound, and only decodes
    // when the document is still alive.
    bool pruned = false;
    for (size_t i = essential; i-- > 0;) {
      if (kBoundSlack * ((1.0 - w) * (partial + prefix_ub[i]) + w * prior_bound_d) <=
          theta) {
        pruned = true;
        break;
      }
      float block_impact = 0;
      float block_prior = 0;
      if (!lists[i].cursor.SeekBlock(d, &block_impact, &block_prior)) continue;
      const double head = i > 0 ? prefix_ub[i - 1] : 0.0;
      if (kBoundSlack * ((1.0 - w) *
                             (partial + head + static_cast<double>(block_impact)) +
                         w * prior_bound_d) <= theta) {
        pruned = true;
        break;
      }
      if (lists[i].cursor.NextGEQ(d) && lists[i].cursor.docid() == d) {
        partial += Impact(lists[i].cursor, lists[i].entry->idf);
      }
    }

    if (pruned) {
      ++s->docs_pruned;
    } else {
      uint64_t t0 = prof ? MonotonicNanos() : 0;
      // Survivor: every live cursor now sits at docid >= d (== d exactly
      // when the document contains the term), so re-aggregate in original
      // query-term order for the canonical, engine-identical double.
      double exact = 0;
      for (ListCursor* lc : by_query) {
        if (lc->cursor.docid() == d) exact += Impact(lc->cursor, lc->entry->idf);
      }
      const double score = w == 0.0 ? exact : (1.0 - w) * exact + w * index.PriorOf(d);
      ++s->candidates_scored;
      if (prof) {
        const uint64_t t1 = MonotonicNanos();
        scoring_acc += t1 - t0;
        t0 = t1;
      }
      if (heap.size() < k) {
        heap.emplace_back(score, d);
        std::push_heap(heap.begin(), heap.end(), BetterPair);
        if (heap.size() == k) {
          theta = std::max(theta, heap.front().first);
          raise_essential();
          rebuild_live();
        }
      } else if (BetterResult(score, d, heap.front().first, heap.front().second)) {
        std::pop_heap(heap.begin(), heap.end(), BetterPair);
        heap.back() = {score, d};
        std::push_heap(heap.begin(), heap.end(), BetterPair);
        theta = std::max(theta, heap.front().first);
        if (raise_essential()) rebuild_live();
      }
      if (prof) heap_acc += MonotonicNanos() - t0;
    }

    for (size_t i = essential; i < n; ++i) {
      if (lists[i].cursor.docid() == d) lists[i].cursor.Next();
    }
  }

  const uint64_t sort_t0 = prof ? MonotonicNanos() : 0;
  std::sort(heap.begin(), heap.end(), BetterPair);
  TopKList out;
  out.reserve(heap.size());
  for (const auto& [score, page] : heap) out.emplace_back(page, score);
  if (prof) {
    heap_acc += MonotonicNanos() - sort_t0;
    const uint64_t total = MonotonicNanos() - run_t0;
    const uint64_t accounted = scoring_acc + heap_acc;
    stages->scoring_ns += scoring_acc;
    stages->heap_ns += heap_acc;
    // Residual; guarded because each accumulated interval ends with its own
    // later clock read, so rounding can push accounted past total by a hair.
    stages->decode_ns += total > accounted ? total - accounted : 0;
  }
  return out;
}

}  // namespace qp
}  // namespace jxp
