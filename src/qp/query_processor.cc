#include "qp/query_processor.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>

namespace jxp {
namespace qp {

namespace {

/// Multiplicative inflation applied to every upper bound before it is
/// compared against the current k-th score. Exact per-term impacts are
/// doubles summed in descending-bound order during pruning but in query-term
/// order during final scoring; the two orders can round differently, so a
/// raw partial sum is not a strict bound of the canonical sum. Inflating by
/// 1 + 1e-12 (orders of magnitude above the worst-case reassociation error
/// of the few dozen terms a query has) restores "bound >= canonical score",
/// making pruning provably lossless while costing next to nothing in
/// selectivity.
constexpr double kBoundSlack = 1.0 + 1e-12;

/// Exact impact of the cursor's current posting, the same expression (and
/// the same double arithmetic) as MinervaEngine::TfIdfScore.
double Impact(BlockPostingList::Cursor& cursor, double idf) {
  return (1.0 + std::log(static_cast<double>(cursor.freq()))) * idf;
}

bool BetterPair(const std::pair<double, graph::PageId>& a,
                const std::pair<double, graph::PageId>& b) {
  return BetterResult(a.first, a.second, b.first, b.second);
}

TopKList FinishRanked(std::vector<std::pair<double, graph::PageId>> ranked, size_t k) {
  const size_t keep = std::min(k, ranked.size());
  std::partial_sort(ranked.begin(), ranked.begin() + static_cast<ptrdiff_t>(keep),
                    ranked.end(), BetterPair);
  TopKList out;
  out.reserve(keep);
  for (size_t i = 0; i < keep; ++i) out.emplace_back(ranked[i].second, ranked[i].first);
  return out;
}

}  // namespace

TopKList ExhaustiveTopK(const CompressedPeerIndex& index,
                        std::span<const search::TermId> query, size_t k,
                        QueryStats* stats) {
  JXP_CHECK_GT(k, 0u);
  QueryStats local;
  QueryStats* s = stats != nullptr ? stats : &local;
  const double w = index.prior_weight();

  // Term-at-a-time: the outer loop follows query-term order, so every
  // document's accumulator receives its contributions in exactly the order
  // MinervaEngine::TfIdfScore sums them — the accumulated doubles are
  // bit-identical.
  std::unordered_map<graph::PageId, double> tfidf;
  for (search::TermId term : query) {
    const CompressedPeerIndex::TermList* entry = index.ListFor(term);
    if (entry == nullptr) continue;
    BlockPostingList::Cursor cursor = entry->list.OpenCursor(&s->decode);
    for (cursor.Next(); cursor.docid() != BlockPostingList::kEndDocid; cursor.Next()) {
      tfidf[cursor.docid()] += Impact(cursor, entry->idf);
    }
  }
  s->candidates_scored += tfidf.size();

  std::vector<std::pair<double, graph::PageId>> ranked;
  ranked.reserve(tfidf.size());
  for (const auto& [page, text_score] : tfidf) {
    const double score =
        w == 0.0 ? text_score : (1.0 - w) * text_score + w * index.PriorOf(page);
    ranked.emplace_back(score, page);
  }
  return FinishRanked(std::move(ranked), k);
}

TopKList MaxScoreTopK(const CompressedPeerIndex& index,
                      std::span<const search::TermId> query, size_t k,
                      QueryStats* stats) {
  JXP_CHECK_GT(k, 0u);
  QueryStats local;
  QueryStats* s = stats != nullptr ? stats : &local;
  const double w = index.prior_weight();

  struct ListCursor {
    size_t query_pos;
    const CompressedPeerIndex::TermList* entry;
    BlockPostingList::Cursor cursor;
    double ub;  // Quantized list-level impact upper bound, widened.
  };
  std::vector<ListCursor> lists;
  lists.reserve(query.size());
  for (size_t qi = 0; qi < query.size(); ++qi) {
    const CompressedPeerIndex::TermList* entry = index.ListFor(query[qi]);
    if (entry == nullptr || entry->list.num_postings() == 0) continue;
    lists.push_back(ListCursor{qi, entry, entry->list.OpenCursor(&s->decode),
                               static_cast<double>(entry->list.max_impact())});
  }
  if (lists.empty()) return {};

  // MaxScore order: ascending upper bound, with a deterministic tie-break so
  // the traversal (and thus the decode counters) never depends on input
  // ordering quirks.
  std::sort(lists.begin(), lists.end(), [](const ListCursor& a, const ListCursor& b) {
    if (a.ub != b.ub) return a.ub < b.ub;
    if (a.entry->term != b.entry->term) return a.entry->term < b.entry->term;
    return a.query_pos < b.query_pos;
  });
  const size_t n = lists.size();
  std::vector<double> prefix_ub(n);
  double running = 0;
  for (size_t i = 0; i < n; ++i) {
    running += lists[i].ub;
    prefix_ub[i] = running;
  }
  const double prior_ub = w == 0.0 ? 0.0 : static_cast<double>(index.max_prior_bound());

  // Canonical-order view for the final rescore of surviving candidates.
  std::vector<ListCursor*> by_query(n);
  for (size_t i = 0; i < n; ++i) by_query[i] = &lists[i];
  std::sort(by_query.begin(), by_query.end(),
            [](const ListCursor* a, const ListCursor* b) { return a->query_pos < b->query_pos; });

  for (ListCursor& lc : lists) lc.cursor.Next();

  // Min-heap under BetterResult: front is the current k-th (worst) result.
  std::vector<std::pair<double, graph::PageId>> heap;
  heap.reserve(k);
  double theta = -std::numeric_limits<double>::infinity();
  // lists[0..essential) are non-essential: their combined upper bound cannot
  // beat theta, so no document found *only* there can enter the top-k.
  size_t essential = 0;
  const auto raise_essential = [&] {
    while (essential < n &&
           kBoundSlack * ((1.0 - w) * prefix_ub[essential] + w * prior_ub) <= theta) {
      ++essential;
    }
  };

  while (essential < n) {
    // Candidate: smallest docid on any essential list.
    uint32_t d = BlockPostingList::kEndDocid;
    for (size_t i = essential; i < n; ++i) d = std::min(d, lists[i].cursor.docid());
    if (d == BlockPostingList::kEndDocid) break;

    // Exact partial score from the essential lists. Each matching cursor
    // sits inside a decoded block that contains d, so that block's quantized
    // max_prior bounds this document's static prior — the per-block prior
    // quantization replacing a random access during pruning.
    double partial = 0;
    double prior_bound_d = prior_ub;
    for (size_t i = essential; i < n; ++i) {
      if (lists[i].cursor.docid() != d) continue;
      partial += Impact(lists[i].cursor, lists[i].entry->idf);
      if (w != 0.0) {
        float block_impact = 0;
        float block_prior = 0;
        if (lists[i].cursor.SeekBlock(d, &block_impact, &block_prior)) {
          prior_bound_d = std::min(prior_bound_d, static_cast<double>(block_prior));
        }
      }
    }

    // Descend through the non-essential lists, tightest budget first. Each
    // step first checks the list-level bound, then — via a shallow seek that
    // touches only block metadata — the block-level bound, and only decodes
    // when the document is still alive.
    bool pruned = false;
    for (size_t i = essential; i-- > 0;) {
      if (kBoundSlack * ((1.0 - w) * (partial + prefix_ub[i]) + w * prior_bound_d) <=
          theta) {
        pruned = true;
        break;
      }
      float block_impact = 0;
      float block_prior = 0;
      if (!lists[i].cursor.SeekBlock(d, &block_impact, &block_prior)) continue;
      const double head = i > 0 ? prefix_ub[i - 1] : 0.0;
      if (kBoundSlack * ((1.0 - w) *
                             (partial + head + static_cast<double>(block_impact)) +
                         w * prior_bound_d) <= theta) {
        pruned = true;
        break;
      }
      if (lists[i].cursor.NextGEQ(d) && lists[i].cursor.docid() == d) {
        partial += Impact(lists[i].cursor, lists[i].entry->idf);
      }
    }

    if (pruned) {
      ++s->docs_pruned;
    } else {
      // Survivor: every live cursor now sits at docid >= d (== d exactly
      // when the document contains the term), so re-aggregate in original
      // query-term order for the canonical, engine-identical double.
      double exact = 0;
      for (ListCursor* lc : by_query) {
        if (lc->cursor.docid() == d) exact += Impact(lc->cursor, lc->entry->idf);
      }
      const double score = w == 0.0 ? exact : (1.0 - w) * exact + w * index.PriorOf(d);
      ++s->candidates_scored;
      if (heap.size() < k) {
        heap.emplace_back(score, d);
        std::push_heap(heap.begin(), heap.end(), BetterPair);
        if (heap.size() == k) {
          theta = heap.front().first;
          raise_essential();
        }
      } else if (BetterResult(score, d, heap.front().first, heap.front().second)) {
        std::pop_heap(heap.begin(), heap.end(), BetterPair);
        heap.back() = {score, d};
        std::push_heap(heap.begin(), heap.end(), BetterPair);
        theta = heap.front().first;
        raise_essential();
      }
    }

    for (size_t i = essential; i < n; ++i) {
      if (lists[i].cursor.docid() == d) lists[i].cursor.Next();
    }
  }

  std::sort(heap.begin(), heap.end(), BetterPair);
  TopKList out;
  out.reserve(heap.size());
  for (const auto& [score, page] : heap) out.emplace_back(page, score);
  return out;
}

}  // namespace qp
}  // namespace jxp
