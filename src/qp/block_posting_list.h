#ifndef JXP_QP_BLOCK_POSTING_LIST_H_
#define JXP_QP_BLOCK_POSTING_LIST_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/check.h"
#include "common/varint.h"

namespace jxp {
namespace qp {

/// Work counters of the decode side. Every counter is a pure function of the
/// (index, query, k) inputs — never of timing or thread count — so they feed
/// the deterministic `jxp.qp.*` metrics.
struct DecodeStats {
  /// Docid entries materialized from compressed blocks.
  size_t postings_decoded = 0;
  /// Term frequencies materialized (lazy: only for blocks that get scored).
  size_t freqs_decoded = 0;
  /// Docid blocks decompressed.
  size_t blocks_decoded = 0;
  /// Blocks passed over on metadata alone (never decompressed).
  size_t blocks_skipped = 0;
  /// Blocks passed over because per-query live-block computation proved
  /// their whole docid range dead (disjoint from blocks_skipped: a
  /// liveness-driven jump reclassifies its metadata skips into this
  /// counter). DESIGN.md §6h.
  size_t blocks_skipped_live = 0;

  void MergeFrom(const DecodeStats& other) {
    postings_decoded += other.postings_decoded;
    freqs_decoded += other.freqs_decoded;
    blocks_decoded += other.blocks_decoded;
    blocks_skipped += other.blocks_skipped;
    blocks_skipped_live += other.blocks_skipped_live;
  }
};

/// How a block's docid deltas and frequencies are compressed.
enum class BlockCodec : uint8_t {
  /// VByte byte streams, the PR 4 layout (no per-area header byte).
  kVByte = 0,
  /// Fixed-width bit-packed lanes, selected per block: each area starts
  /// with one width byte (1..32 = packed lane width; 0 = this area fell
  /// back to VByte because packing would have been larger, e.g. one huge
  /// delta in an otherwise dense block). Decoding is branch-free per value
  /// (load, shift, mask) — the SIMD-friendly layout of DESIGN.md §6h.
  kPacked = 1,
};

/// Stable lowercase label for JSON output and metrics attributes.
const char* BlockCodecName(BlockCodec codec);

/// Appends `value` VByte-encoded (7 data bits per byte, high bit set on all
/// but the final byte) to `out`. Thin alias of the shared common/varint.h
/// implementation (one codec, two call sites: qp blocks and the wire layer).
inline void VByteEncode(uint32_t value, std::vector<uint8_t>& out) {
  VByteEncode32(value, out);
}

/// Decodes one VByte value starting at `data[offset]`, advancing `offset`.
inline uint32_t VByteDecode(const uint8_t* data, size_t& offset) {
  return VByteDecode32(data, offset);
}

/// Smallest float f with (double)f >= v; the rounding direction that keeps
/// quantized per-block metadata a true upper bound of the exact doubles it
/// summarizes (the qp pruning invariant, DESIGN.md §6f).
inline float UpperBoundAsFloat(double v) { return UpperBoundFloat(v); }

/// One term's immutable compressed posting list: docid-sorted postings split
/// into fixed-size blocks, each block holding VByte-encoded docid deltas
/// followed by VByte-encoded term frequencies, plus per-block metadata (last
/// docid, upper-rounded max impact, upper-rounded max static prior). The
/// metadata makes every block skippable without decompression: a cursor can
/// rule a block out (by docid range or by score bound) from metadata alone.
class BlockPostingList {
 public:
  /// Postings per block; the last block may be short.
  static constexpr size_t kDefaultBlockSize = 128;
  /// Sentinel docid of an exhausted cursor (== graph::kInvalidPage).
  static constexpr uint32_t kEndDocid = 0xffffffffu;
  /// Wire size of one block's metadata: last docid (4) + docid offset (4) +
  /// freq offset (4) + count (2) + max impact (4) + max prior (4). The
  /// in-memory struct is padded; compressed-size stats report this figure.
  static constexpr size_t kBlockMetadataBytes = 22;

  /// Builder input: one posting with its exact impact score ((1 + log tf) *
  /// idf) and the exact static prior of its document (0 when none).
  struct PostingIn {
    uint32_t docid = 0;
    uint32_t tf = 0;
    double impact = 0;
    double prior = 0;
  };

  BlockPostingList() = default;

  /// Freezes `postings` (strictly increasing docids, tf >= 1) into the
  /// compressed layout.
  static BlockPostingList Build(std::span<const PostingIn> postings, size_t block_size,
                                BlockCodec codec = BlockCodec::kVByte);

  size_t num_postings() const { return num_postings_; }
  size_t num_blocks() const { return blocks_.size(); }
  BlockCodec codec() const { return codec_; }
  /// Upper bound (>=) of every posting's exact impact / document prior.
  float max_impact() const { return max_impact_; }
  float max_prior() const { return max_prior_; }
  /// Compressed payload split, for bytes-per-posting accounting.
  size_t docid_bytes() const { return docid_bytes_; }
  size_t freq_bytes() const { return bytes_.size() - docid_bytes_; }
  size_t metadata_bytes() const { return blocks_.size() * kBlockMetadataBytes; }

  /// A forward cursor over the list. Traversal is strictly docid-ascending:
  /// Next / NextGEQ never move backwards, matching document-at-a-time query
  /// processing. All decode work is counted into `stats` (optional).
  class Cursor {
   public:
    Cursor(const BlockPostingList* list, DecodeStats* stats)
        : list_(list), stats_(stats) {}

    /// Current docid; kEndDocid once exhausted. Valid only after the first
    /// Next() or NextGEQ() call.
    uint32_t docid() const { return docid_; }

    /// Term frequency of the current posting (decodes the block's
    /// frequencies on first use).
    uint32_t freq();

    /// Advances to the next posting (to the first posting on the initial
    /// call).
    void Next();

    /// Advances to the first posting with docid >= target (no-op when the
    /// current posting already qualifies). Blocks whose last docid is below
    /// `target` are skipped from metadata without decompression. Returns
    /// false when the list is exhausted.
    bool NextGEQ(uint32_t target);

    /// Shallow seek: moves the block pointer to the block that would contain
    /// the first docid >= target *without decoding it* and reports that
    /// block's score upper bounds. Returns false when no such block exists
    /// (list exhausted). A subsequent NextGEQ(target) decodes exactly the
    /// reported block. This is the block-max hook of the MaxScore processor:
    /// the bound decides whether the decode happens at all.
    bool SeekBlock(uint32_t target, float* block_max_impact, float* block_max_prior);

   private:
    /// Decompresses the docids of blocks_[block_]; leaves pos_ at 0.
    void DecodeDocids();

    const BlockPostingList* list_;
    DecodeStats* stats_;
    size_t block_ = 0;
    size_t pos_ = 0;
    bool started_ = false;
    /// Whether docids_ / freqs_ hold blocks_[block_].
    bool docids_decoded_ = false;
    bool freqs_decoded_ = false;
    uint32_t docid_ = kEndDocid;
    std::vector<uint32_t> docids_;
    std::vector<uint32_t> freqs_;
  };

  Cursor OpenCursor(DecodeStats* stats) const { return Cursor(this, stats); }

  /// Per-block metadata reads for callers that reason about blocks without a
  /// cursor — the live-block computation (query_processor.cc) intersects
  /// these bounds across a query's lists before any descent.
  uint32_t block_last_docid(size_t block) const { return blocks_[block].last_docid; }
  float block_max_impact(size_t block) const { return blocks_[block].max_impact; }
  float block_max_prior(size_t block) const { return blocks_[block].max_prior; }

 private:
  struct BlockMeta {
    /// Largest docid in the block (the skip key).
    uint32_t last_docid = 0;
    /// Byte offsets into bytes_: [docid_begin, freq_begin) holds the docid
    /// deltas, [freq_begin, next block's docid_begin) the frequencies.
    uint32_t docid_begin = 0;
    uint32_t freq_begin = 0;
    uint32_t count = 0;
    /// Upper bounds (float, rounded up) over the block's postings.
    float max_impact = 0;
    float max_prior = 0;
  };

  size_t FreqEnd(size_t block) const {
    return block + 1 < blocks_.size() ? blocks_[block + 1].docid_begin : bytes_.size();
  }
  /// Docid preceding block `block`'s first delta (0 before the first block).
  uint32_t BaseDocid(size_t block) const {
    return block == 0 ? 0 : blocks_[block - 1].last_docid;
  }

  /// Appends one block area (docid deltas or frequencies) under codec_.
  void AppendArea(const std::vector<uint32_t>& values);
  /// Decodes the `count` values of the area at bytes_[begin..end) into
  /// `out`. Bounds-checked: a malformed area aborts (JXP_CHECK) instead of
  /// reading past the buffer.
  void DecodeArea(size_t begin, size_t end, uint32_t count, uint32_t* out) const;

  std::vector<uint8_t> bytes_;
  std::vector<BlockMeta> blocks_;
  size_t num_postings_ = 0;
  size_t docid_bytes_ = 0;
  float max_impact_ = 0;
  float max_prior_ = 0;
  BlockCodec codec_ = BlockCodec::kVByte;
};

}  // namespace qp
}  // namespace jxp

#endif  // JXP_QP_BLOCK_POSTING_LIST_H_
