#ifndef JXP_QP_COMPRESSED_INDEX_H_
#define JXP_QP_COMPRESSED_INDEX_H_

#include <unordered_map>
#include <vector>

#include "qp/block_posting_list.h"
#include "search/corpus.h"
#include "search/index.h"

namespace jxp {
namespace qp {

/// How a PeerIndex is frozen into the compressed serving layout.
struct CompressedIndexOptions {
  /// Postings per compressed block.
  size_t block_size = BlockPostingList::kDefaultBlockSize;
  /// Block compression codec (kVByte is the PR 4 layout; kPacked is the
  /// SIMD-friendly bit-packed layout with per-block VByte fallback). Both
  /// are lossless, so every processor returns bit-identical results under
  /// either.
  BlockCodec codec = BlockCodec::kVByte;
  /// When > 0, Freeze also computes a term-level threshold primer per list
  /// with at least primer_k postings: the primer_k-th largest value of
  ///   (1 - w) * impact(d) + w * prior(d)
  /// over the list's postings (exact doubles, same expression shape as the
  /// canonical fused score). Any top-primer_k result set over a query
  /// containing the term has a k-th score >= this primer — the safe
  /// lower bound threshold priming starts the MaxScore heap from
  /// (DESIGN.md §6h). 0 skips the computation.
  size_t primer_k = 0;
  /// Weight w of the static JXP prior in the fused per-peer score
  ///   score(d) = (1 - w) * tfidf(d) + w * jxp(d).
  /// 0 (the default) scores pure tf*idf, bit-identical to
  /// MinervaEngine::TfIdfScore — the setting the engine-equivalence tests
  /// pin down. With w > 0 the prior is folded into every per-block upper
  /// bound, so MaxScore prunes against the *fused* score (the JXP-aware
  /// dynamic pruning of DESIGN.md §6f).
  double prior_weight = 0.0;
};

/// Compressed-size accounting of a frozen index.
struct CompressedIndexStats {
  size_t num_terms = 0;
  size_t num_postings = 0;
  size_t num_blocks = 0;
  size_t docid_bytes = 0;
  size_t freq_bytes = 0;
  size_t block_metadata_bytes = 0;
  /// Per-list directory entry: term id (4) + idf (8) + list max bounds (8).
  size_t list_metadata_bytes = 0;
  /// Static-prior table: docid (4) + score (8) per stored document.
  size_t prior_bytes = 0;

  /// Posting-payload bytes (docids + frequencies + per-block metadata) per
  /// posting; the figure compared against the 8-byte uncompressed
  /// search::Posting baseline.
  double CompressedBytesPerPosting() const {
    if (num_postings == 0) return 0;
    return static_cast<double>(docid_bytes + freq_bytes + block_metadata_bytes) /
           static_cast<double>(num_postings);
  }
  /// sizeof(search::Posting): 4-byte page id + 4-byte tf.
  static constexpr double kUncompressedBytesPerPosting = 8.0;

  void MergeFrom(const CompressedIndexStats& other);
};

/// A peer's inverted index frozen into block-compressed posting lists with
/// score-bound metadata (the serving-side counterpart of the mutable
/// search::PeerIndex). Freezing captures, per term, the exact idf the
/// MinervaEngine scoring uses (log(N / df) with corpus-wide N and df) and,
/// per document, the exact JXP static prior, so the query processors in
/// qp/query_processor.h reproduce MinervaEngine scores bit for bit while
/// the quantized per-block bounds stay true upper bounds for pruning.
class CompressedPeerIndex {
 public:
  /// One term's frozen list together with its scoring weight.
  struct TermList {
    search::TermId term = 0;
    double idf = 0;
    /// Safe threshold primer (see CompressedIndexOptions::primer_k); 0 when
    /// priming is off or the list is shorter than primer_k.
    double primer = 0;
    BlockPostingList list;
  };

  CompressedPeerIndex() = default;

  /// Freezes `index`. `jxp_scores` supplies the static prior of each
  /// document (pages absent from the table have prior 0); pass an empty map
  /// when options.prior_weight == 0. Posting lists must be sorted by page
  /// id, the PeerIndex invariant (search/index.h).
  static CompressedPeerIndex Freeze(
      const search::PeerIndex& index, const search::Corpus& corpus,
      const std::unordered_map<graph::PageId, double>& jxp_scores,
      const CompressedIndexOptions& options);

  /// Every frozen list in deterministic (ascending-term) order.
  const std::vector<TermList>& lists() const { return lists_; }

  /// The frozen list of a term, or nullptr if the peer has none.
  const TermList* ListFor(search::TermId term) const {
    const auto it = list_of_.find(term);
    return it == list_of_.end() ? nullptr : &lists_[it->second];
  }

  /// Exact static prior of a document (0 when absent). Only consulted when
  /// prior_weight() > 0.
  double PriorOf(graph::PageId page) const {
    const auto it = priors_.find(page);
    return it == priors_.end() ? 0.0 : it->second;
  }

  /// Upper bound (>=) of every document's exact prior.
  float max_prior_bound() const { return max_prior_bound_; }

  double prior_weight() const { return prior_weight_; }
  p2p::PeerId owner() const { return owner_; }
  size_t num_terms() const { return lists_.size(); }
  const CompressedIndexStats& stats() const { return stats_; }

 private:
  p2p::PeerId owner_ = p2p::kInvalidPeer;
  double prior_weight_ = 0;
  std::vector<TermList> lists_;
  std::unordered_map<search::TermId, size_t> list_of_;
  std::unordered_map<graph::PageId, double> priors_;
  float max_prior_bound_ = 0;
  CompressedIndexStats stats_;
};

}  // namespace qp
}  // namespace jxp

#endif  // JXP_QP_COMPRESSED_INDEX_H_
