#ifndef JXP_QP_SERVING_H_
#define JXP_QP_SERVING_H_

#include <atomic>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/thread_pool.h"
#include "obs/latency_recorder.h"
#include "obs/metrics.h"
#include "qp/query_processor.h"
#include "qp/result_cache.h"

namespace jxp {
namespace search {
class PeerIndex;
}  // namespace search

namespace qp {

/// Which per-peer top-k processor a QueryServer runs.
enum class ProcessorKind {
  /// Term-at-a-time over compressed lists, every posting decoded (oracle).
  kExhaustive,
  /// Fagin's Threshold Algorithm over the uncompressed PeerIndex
  /// (search/threshold_top_k.h); only valid when every frozen index has
  /// prior_weight == 0, since TA ranks by pure tf*idf.
  kThresholdAlgorithm,
  /// MaxScore with block-max skipping over compressed lists (fast path).
  kMaxScore,
};

/// Stable lowercase label for JSON output and metrics attributes.
const char* ProcessorName(ProcessorKind kind);

struct ServingOptions {
  ProcessorKind processor = ProcessorKind::kMaxScore;
  /// Results kept per query (after merging across peers).
  size_t k = 10;
  /// ParallelFor width for ServeBatch. Results and all non-timing metrics
  /// are bit-identical at any value, including 1.
  size_t num_threads = 1;
  /// Merged-result LRU capacity, keyed by the *exact* term sequence (scores
  /// are accumulated in query-term order, so permutations are distinct
  /// queries bit-wise). An exact hit short-circuits serving entirely. 0 (the
  /// default) disables the cache and preserves the uncached code path — and
  /// its metrics — exactly.
  size_t result_cache_capacity = 0;
  /// Query-threshold LRU capacity, keyed by the sorted term multiset. Stores
  /// the merged k-th score of fully-filled results; later queries prime the
  /// MaxScore heap from the exact key or any drop-one sub-multiset (scores
  /// are monotone in the query-term multiset), deflated so the primed
  /// threshold stays a strict lower bound. 0 disables the cache.
  size_t threshold_cache_capacity = 0;
  /// Term-level threshold priming (MaxScore only): AddPeer computes a safe
  /// per-term primer at freeze time (CompressedIndexOptions::primer_k) and
  /// queries start their heap from the best primer among their terms. Works
  /// with or without the caches; bit-identity is unconditional.
  bool threshold_priming = true;
  /// Emit one "qp.query" trace event per served query (query id, terms,
  /// cache_hit, postings decoded, per-stage nanoseconds) to the installed
  /// TraceSink. Off by default: per-query events are high-volume and would
  /// distort throughput benches. Like all telemetry, gated on
  /// JXP_OBS_ENABLED / obs::Enabled() and never affects results.
  bool trace_queries = false;
};

/// One query of a batch.
struct ServedQuery {
  std::vector<search::TermId> terms;
};

/// One query's outcome.
struct ServedResult {
  /// Top-k merged across all peers (replicas deduplicated by page), best
  /// first under BetterResult.
  TopKList results;
  /// Work counters aggregated over the peers (compressed processors only).
  QueryStats stats;
  /// Threshold-Algorithm accounting (kThresholdAlgorithm only).
  size_t ta_sorted_accesses = 0;
  size_t ta_random_accesses = 0;
  /// True when the result came from the result cache (or from an identical
  /// query earlier in the same batch) without running a processor; `stats`
  /// and the TA counters stay zero — a hit does no decode work, and the
  /// metrics report work actually performed.
  bool cache_hit = false;
};

/// A batched query-serving driver: holds every peer's frozen compressed
/// index (plus a borrowed view of the mutable index for the TA arm) and
/// evaluates query streams across the deterministic thread pool. Each query
/// runs its processor against every registered peer and merges the per-peer
/// top-k lists; queries are statically partitioned over workers, per-query
/// work is a pure function of (indexes, query, k), and work counters flow
/// into `jxp.qp.*` metrics through thread-local shards — so results and
/// non-timing metric snapshots are bit-identical at any thread count.
class QueryServer {
 public:
  /// `corpus` must outlive the server (used by the TA arm and for df stats).
  QueryServer(const search::Corpus* corpus, const ServingOptions& options);

  /// Registers one peer: borrows `index` (must outlive the server) for the
  /// TA arm and freezes it into the compressed layout for the compressed
  /// arms. When threshold_priming is on, primer_k = k is folded into `copts`
  /// before freezing and the per-term primer table is refreshed. Both caches
  /// are invalidated (results may change). Not concurrency-safe against
  /// ServeBatch.
  void AddPeer(const search::PeerIndex* index,
               const std::unordered_map<graph::PageId, double>& jxp_scores,
               const CompressedIndexOptions& copts);

  /// Serves `queries`, one ServedResult per query, in input order. Cache
  /// lookups, threshold priming, and cache insertion happen in two serial
  /// phases around the parallel evaluation of the distinct misses, so
  /// results, cache contents, and every non-timing metric are a pure
  /// function of the query sequence — independent of thread count.
  std::vector<ServedResult> ServeBatch(std::span<const ServedQuery> queries);

  /// Serves one query on the calling thread, safe to run concurrently with
  /// other ServeConcurrent calls (NOT with ServeBatch or AddPeer). Bypasses
  /// both LRU caches — their recency updates are single-writer — and primes
  /// only from the immutable per-term primer table, so results match a
  /// cache-less server bit for bit. Stage latencies go to `recorder` when
  /// non-null (pass a per-worker recorder and MergeFrom afterwards for
  /// contention-free recording). This is the open-loop load harness' entry
  /// point (bench/sustained_load.cc).
  void ServeConcurrent(const ServedQuery& query, ServedResult& out,
                       obs::LatencyRecorder* recorder = nullptr);

  /// Installs the stage-latency sink ServeBatch records into (nullptr =
  /// none, the default — no clocks are read). Borrowed; must outlive the
  /// server or be reset. Latencies are diagnostics only: results and
  /// non-timing metrics are bit-identical with or without a recorder.
  void SetLatencyRecorder(obs::LatencyRecorder* recorder) {
    latency_recorder_ = recorder;
  }

  size_t num_peers() const { return compressed_.size(); }
  const CompressedPeerIndex& compressed(size_t i) const { return compressed_[i]; }
  /// Compressed-size stats aggregated over every frozen peer.
  const CompressedIndexStats& index_stats() const { return index_stats_; }
  const ServingOptions& options() const { return options_; }

 private:
  /// What the result cache stores per exact term sequence: only the merged
  /// list — work counters are not replayed on a hit.
  struct CachedResult {
    TopKList results;
  };

  /// `query_id` is the query's serial position in the server's lifetime
  /// stream (assigned in ServeBatch phase 1 / ServeConcurrent issue order);
  /// it only labels trace events. `cache_lookup_ns` / `priming_ns` were
  /// measured by the caller's serial phase and are recorded/emitted here so
  /// each query's stage profile lands in one place. `recorder` receives one
  /// sample per stage when non-null.
  void ServeOne(const ServedQuery& query, double primed_threshold, uint64_t query_id,
                uint64_t cache_lookup_ns, uint64_t priming_ns,
                obs::LatencyRecorder* recorder, ServedResult& out);
  /// Strict lower bound of the query's merged k-th score from term primers
  /// and the threshold cache (deflated), or 0 when nothing can prime.
  /// Mutates threshold-cache recency — call only from a serial phase.
  double PrimedThreshold(const std::vector<search::TermId>& terms);

  const search::Corpus* corpus_;
  ServingOptions options_;
  std::vector<const search::PeerIndex*> peer_indexes_;
  std::vector<CompressedPeerIndex> compressed_;
  CompressedIndexStats index_stats_;
  /// True while every frozen peer has prior_weight == 0 (TA precondition).
  bool priors_disabled_ = true;
  std::unique_ptr<ThreadPool> pool_;

  /// Stage-latency sink for ServeBatch (see SetLatencyRecorder).
  obs::LatencyRecorder* latency_recorder_ = nullptr;
  /// Lifetime query counter, the source of trace-event query ids. Atomic
  /// only for ServeConcurrent; ServeBatch claims ids serially in phase 1.
  std::atomic<uint64_t> queries_served_{0};

  /// Best (max) freeze-time threshold primer of each term across peers.
  std::unordered_map<search::TermId, double> term_primers_;
  DeterministicLru<std::vector<search::TermId>, CachedResult, TermSequenceHash>
      result_cache_;
  DeterministicLru<std::vector<search::TermId>, double, TermSequenceHash>
      threshold_cache_;

  obs::Counter queries_total_;
  obs::Counter postings_decoded_;
  obs::Counter freqs_decoded_;
  obs::Counter blocks_decoded_;
  obs::Counter blocks_skipped_;
  obs::Counter blocks_skipped_live_;
  obs::Counter candidates_scored_;
  obs::Counter docs_pruned_;
  obs::Counter live_ranges_;
  obs::Counter dead_ranges_;
  obs::Counter ta_sorted_accesses_;
  obs::Counter ta_random_accesses_;
  obs::Counter result_cache_hits_;
  obs::Counter result_cache_misses_;
  obs::Counter primed_queries_;
  obs::Histogram postings_decoded_per_query_;
  obs::Histogram results_per_query_;
  obs::Histogram query_latency_ms_;
};

}  // namespace qp
}  // namespace jxp

#endif  // JXP_QP_SERVING_H_
