#include "qp/block_posting_list.h"

#include <algorithm>

namespace jxp {
namespace qp {

BlockPostingList BlockPostingList::Build(std::span<const PostingIn> postings,
                                         size_t block_size) {
  JXP_CHECK_GT(block_size, 0u);
  BlockPostingList list;
  list.num_postings_ = postings.size();
  if (postings.empty()) return list;

  list.blocks_.reserve((postings.size() + block_size - 1) / block_size);
  for (size_t begin = 0; begin < postings.size(); begin += block_size) {
    const size_t end = std::min(begin + block_size, postings.size());
    BlockMeta meta;
    meta.count = static_cast<uint32_t>(end - begin);
    meta.docid_begin = static_cast<uint32_t>(list.bytes_.size());
    double max_impact = 0;
    double max_prior = 0;
    uint32_t prev = list.BaseDocid(list.blocks_.size());
    for (size_t i = begin; i < end; ++i) {
      const PostingIn& posting = postings[i];
      JXP_CHECK_LT(posting.docid, kEndDocid);
      JXP_CHECK_GE(posting.tf, 1u);
      // Strictly increasing docids; the first posting of the whole list may
      // have docid 0 (delta from the implicit base 0).
      if (i > 0) {
        JXP_CHECK_LT(postings[i - 1].docid, posting.docid);
      }
      VByteEncode(posting.docid - prev, list.bytes_);
      prev = posting.docid;
      max_impact = std::max(max_impact, posting.impact);
      max_prior = std::max(max_prior, posting.prior);
    }
    meta.last_docid = prev;
    meta.freq_begin = static_cast<uint32_t>(list.bytes_.size());
    for (size_t i = begin; i < end; ++i) VByteEncode(postings[i].tf, list.bytes_);
    meta.max_impact = UpperBoundAsFloat(max_impact);
    meta.max_prior = UpperBoundAsFloat(max_prior);
    list.max_impact_ = std::max(list.max_impact_, meta.max_impact);
    list.max_prior_ = std::max(list.max_prior_, meta.max_prior);
    list.docid_bytes_ += meta.freq_begin - meta.docid_begin;
    list.blocks_.push_back(meta);
  }
  return list;
}

void BlockPostingList::Cursor::DecodeDocids() {
  const BlockMeta& meta = list_->blocks_[block_];
  docids_.resize(meta.count);
  size_t offset = meta.docid_begin;
  uint32_t prev = list_->BaseDocid(block_);
  for (uint32_t i = 0; i < meta.count; ++i) {
    prev += VByteDecode(list_->bytes_.data(), offset);
    docids_[i] = prev;
  }
  docids_decoded_ = true;
  freqs_decoded_ = false;
  pos_ = 0;
  if (stats_ != nullptr) {
    ++stats_->blocks_decoded;
    stats_->postings_decoded += meta.count;
  }
}

uint32_t BlockPostingList::Cursor::freq() {
  JXP_CHECK(started_ && docid_ != kEndDocid);
  if (!freqs_decoded_) {
    const BlockMeta& meta = list_->blocks_[block_];
    freqs_.resize(meta.count);
    size_t offset = meta.freq_begin;
    for (uint32_t i = 0; i < meta.count; ++i) {
      freqs_[i] = VByteDecode(list_->bytes_.data(), offset);
    }
    freqs_decoded_ = true;
    if (stats_ != nullptr) stats_->freqs_decoded += meta.count;
  }
  return freqs_[pos_];
}

void BlockPostingList::Cursor::Next() {
  started_ = true;
  // Exhaustion is tracked by the block pointer (docid_ alone is ambiguous:
  // it is also kEndDocid on a fresh cursor and after a shallow SeekBlock).
  if (block_ >= list_->blocks_.size()) {
    docid_ = kEndDocid;
    return;
  }
  if (!docids_decoded_) {
    // First call, or a SeekBlock moved the block pointer without decoding:
    // position at the first posting of the current block.
    DecodeDocids();
    docid_ = docids_[pos_];
    return;
  }
  if (pos_ + 1 < docids_.size()) {
    ++pos_;
    docid_ = docids_[pos_];
    return;
  }
  ++block_;
  docids_decoded_ = false;
  if (block_ >= list_->blocks_.size()) {
    docid_ = kEndDocid;
    return;
  }
  DecodeDocids();
  docid_ = docids_[pos_];
}

bool BlockPostingList::Cursor::NextGEQ(uint32_t target) {
  started_ = true;
  if (docid_ != kEndDocid && docids_decoded_ && docid_ >= target) return true;
  // Skip whole blocks on metadata alone.
  bool moved = false;
  while (block_ < list_->blocks_.size() &&
         list_->blocks_[block_].last_docid < target) {
    if (stats_ != nullptr && !docids_decoded_) ++stats_->blocks_skipped;
    ++block_;
    docids_decoded_ = false;
    moved = true;
  }
  if (block_ >= list_->blocks_.size()) {
    docid_ = kEndDocid;
    return false;
  }
  const size_t search_from = (!moved && docids_decoded_) ? pos_ : 0;
  if (!docids_decoded_) DecodeDocids();
  const auto it =
      std::lower_bound(docids_.begin() + static_cast<ptrdiff_t>(search_from),
                       docids_.end(), target);
  JXP_CHECK(it != docids_.end());  // Guaranteed by last_docid >= target.
  pos_ = static_cast<size_t>(it - docids_.begin());
  docid_ = docids_[pos_];
  return true;
}

bool BlockPostingList::Cursor::SeekBlock(uint32_t target, float* block_max_impact,
                                         float* block_max_prior) {
  started_ = true;
  while (block_ < list_->blocks_.size() &&
         list_->blocks_[block_].last_docid < target) {
    if (stats_ != nullptr && !docids_decoded_) ++stats_->blocks_skipped;
    ++block_;
    docids_decoded_ = false;
  }
  if (block_ >= list_->blocks_.size()) {
    docid_ = kEndDocid;
    return false;
  }
  const BlockMeta& meta = list_->blocks_[block_];
  *block_max_impact = meta.max_impact;
  *block_max_prior = meta.max_prior;
  return true;
}

}  // namespace qp
}  // namespace jxp
