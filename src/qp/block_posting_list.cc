#include "qp/block_posting_list.h"

#include <algorithm>

#include "qp/bitpack.h"

namespace jxp {
namespace qp {

const char* BlockCodecName(BlockCodec codec) {
  switch (codec) {
    case BlockCodec::kVByte:
      return "vbyte";
    case BlockCodec::kPacked:
      return "packed";
  }
  return "unknown";
}

void BlockPostingList::AppendArea(const std::vector<uint32_t>& values) {
  if (codec_ == BlockCodec::kVByte) {
    for (uint32_t v : values) VByteEncode(v, bytes_);
    return;
  }
  // kPacked: one width byte, then either fixed-width lanes or (width 0) the
  // VByte fallback — whichever encodes this area smaller. The choice is a
  // pure function of the values, so the layout stays deterministic.
  uint32_t width = 1;
  for (uint32_t v : values) width = std::max(width, BitWidth32(v));
  const size_t packed_bytes = (values.size() * width + 7) / 8;
  std::vector<uint8_t> vbyte;
  for (uint32_t v : values) VByteEncode(v, vbyte);
  if (vbyte.size() < packed_bytes) {
    bytes_.push_back(0);
    bytes_.insert(bytes_.end(), vbyte.begin(), vbyte.end());
  } else {
    bytes_.push_back(static_cast<uint8_t>(width));
    PackBits(values.data(), values.size(), width, bytes_);
  }
}

void BlockPostingList::DecodeArea(size_t begin, size_t end, uint32_t count,
                                  uint32_t* out) const {
  const uint8_t* data = bytes_.data();
  const size_t size = bytes_.size();
  if (codec_ == BlockCodec::kVByte) {
    size_t offset = begin;
    JXP_CHECK(VByteDecodeArray32(data, size, offset, count, out))
        << "truncated VByte block area";
    JXP_CHECK_LE(offset, end);
    return;
  }
  JXP_CHECK_LT(begin, end);
  const uint8_t width = data[begin];
  if (width == 0) {
    size_t offset = begin + 1;
    JXP_CHECK(VByteDecodeArray32(data, size, offset, count, out))
        << "truncated VByte-fallback block area";
    JXP_CHECK_LE(offset, end);
    return;
  }
  // The packed area must fit its declared span; wide loads may read past
  // `end` into the following area but never past the buffer (UnpackBits
  // masks the excess bits and bounds every load by `size`).
  JXP_CHECK_LE(begin + 1 + (static_cast<size_t>(count) * width + 7) / 8, end);
  JXP_CHECK(UnpackBits(data, size, begin + 1, count, width, out))
      << "truncated packed block area";
}

BlockPostingList BlockPostingList::Build(std::span<const PostingIn> postings,
                                         size_t block_size, BlockCodec codec) {
  JXP_CHECK_GT(block_size, 0u);
  BlockPostingList list;
  list.codec_ = codec;
  list.num_postings_ = postings.size();
  if (postings.empty()) return list;

  list.blocks_.reserve((postings.size() + block_size - 1) / block_size);
  std::vector<uint32_t> deltas;
  std::vector<uint32_t> freqs;
  for (size_t begin = 0; begin < postings.size(); begin += block_size) {
    const size_t end = std::min(begin + block_size, postings.size());
    BlockMeta meta;
    meta.count = static_cast<uint32_t>(end - begin);
    meta.docid_begin = static_cast<uint32_t>(list.bytes_.size());
    double max_impact = 0;
    double max_prior = 0;
    uint32_t prev = list.BaseDocid(list.blocks_.size());
    deltas.clear();
    freqs.clear();
    for (size_t i = begin; i < end; ++i) {
      const PostingIn& posting = postings[i];
      JXP_CHECK_LT(posting.docid, kEndDocid);
      JXP_CHECK_GE(posting.tf, 1u);
      // Strictly increasing docids; the first posting of the whole list may
      // have docid 0 (delta from the implicit base 0).
      if (i > 0) {
        JXP_CHECK_LT(postings[i - 1].docid, posting.docid);
      }
      deltas.push_back(posting.docid - prev);
      freqs.push_back(posting.tf);
      prev = posting.docid;
      max_impact = std::max(max_impact, posting.impact);
      max_prior = std::max(max_prior, posting.prior);
    }
    list.AppendArea(deltas);
    meta.last_docid = prev;
    meta.freq_begin = static_cast<uint32_t>(list.bytes_.size());
    list.AppendArea(freqs);
    meta.max_impact = UpperBoundAsFloat(max_impact);
    meta.max_prior = UpperBoundAsFloat(max_prior);
    list.max_impact_ = std::max(list.max_impact_, meta.max_impact);
    list.max_prior_ = std::max(list.max_prior_, meta.max_prior);
    list.docid_bytes_ += meta.freq_begin - meta.docid_begin;
    list.blocks_.push_back(meta);
  }
  return list;
}

void BlockPostingList::Cursor::DecodeDocids() {
  const BlockMeta& meta = list_->blocks_[block_];
  docids_.resize(meta.count);
  list_->DecodeArea(meta.docid_begin, meta.freq_begin, meta.count, docids_.data());
  // Deltas -> absolute docids. The prefix sum stays a separate scalar pass
  // so the decode loop above remains branch-free and vectorizable.
  uint32_t prev = list_->BaseDocid(block_);
  for (uint32_t i = 0; i < meta.count; ++i) {
    prev += docids_[i];
    docids_[i] = prev;
  }
  docids_decoded_ = true;
  freqs_decoded_ = false;
  pos_ = 0;
  if (stats_ != nullptr) {
    ++stats_->blocks_decoded;
    stats_->postings_decoded += meta.count;
  }
}

uint32_t BlockPostingList::Cursor::freq() {
  JXP_CHECK(started_ && docid_ != kEndDocid);
  if (!freqs_decoded_) {
    const BlockMeta& meta = list_->blocks_[block_];
    freqs_.resize(meta.count);
    list_->DecodeArea(meta.freq_begin, list_->FreqEnd(block_), meta.count,
                      freqs_.data());
    freqs_decoded_ = true;
    if (stats_ != nullptr) stats_->freqs_decoded += meta.count;
  }
  return freqs_[pos_];
}

void BlockPostingList::Cursor::Next() {
  started_ = true;
  // Exhaustion is tracked by the block pointer (docid_ alone is ambiguous:
  // it is also kEndDocid on a fresh cursor and after a shallow SeekBlock).
  if (block_ >= list_->blocks_.size()) {
    docid_ = kEndDocid;
    return;
  }
  if (!docids_decoded_) {
    // First call, or a SeekBlock moved the block pointer without decoding:
    // position at the first posting of the current block.
    DecodeDocids();
    docid_ = docids_[pos_];
    return;
  }
  if (pos_ + 1 < docids_.size()) {
    ++pos_;
    docid_ = docids_[pos_];
    return;
  }
  ++block_;
  docids_decoded_ = false;
  if (block_ >= list_->blocks_.size()) {
    docid_ = kEndDocid;
    return;
  }
  DecodeDocids();
  docid_ = docids_[pos_];
}

bool BlockPostingList::Cursor::NextGEQ(uint32_t target) {
  started_ = true;
  if (docid_ != kEndDocid && docids_decoded_ && docid_ >= target) return true;
  // Skip whole blocks on metadata alone.
  bool moved = false;
  while (block_ < list_->blocks_.size() &&
         list_->blocks_[block_].last_docid < target) {
    if (stats_ != nullptr && !docids_decoded_) ++stats_->blocks_skipped;
    ++block_;
    docids_decoded_ = false;
    moved = true;
  }
  if (block_ >= list_->blocks_.size()) {
    docid_ = kEndDocid;
    return false;
  }
  const size_t search_from = (!moved && docids_decoded_) ? pos_ : 0;
  if (!docids_decoded_) DecodeDocids();
  const auto it =
      std::lower_bound(docids_.begin() + static_cast<ptrdiff_t>(search_from),
                       docids_.end(), target);
  JXP_CHECK(it != docids_.end());  // Guaranteed by last_docid >= target.
  pos_ = static_cast<size_t>(it - docids_.begin());
  docid_ = docids_[pos_];
  return true;
}

bool BlockPostingList::Cursor::SeekBlock(uint32_t target, float* block_max_impact,
                                         float* block_max_prior) {
  started_ = true;
  while (block_ < list_->blocks_.size() &&
         list_->blocks_[block_].last_docid < target) {
    if (stats_ != nullptr && !docids_decoded_) ++stats_->blocks_skipped;
    ++block_;
    docids_decoded_ = false;
  }
  if (block_ >= list_->blocks_.size()) {
    docid_ = kEndDocid;
    return false;
  }
  const BlockMeta& meta = list_->blocks_[block_];
  *block_max_impact = meta.max_impact;
  *block_max_prior = meta.max_prior;
  return true;
}

}  // namespace qp
}  // namespace jxp
