#include "qp/serving.h"

#include <algorithm>

#include "common/timer.h"
#include "obs/trace.h"
#include "search/threshold_top_k.h"

namespace jxp {
namespace qp {

namespace {

/// Fixed ParallelFor grain: block boundaries must not depend on the thread
/// count, or per-worker metric shards would partition differently (still
/// deterministic after merging, but keep scheduling canonical anyway).
constexpr size_t kServeGrain = 1;

}  // namespace

const char* ProcessorName(ProcessorKind kind) {
  switch (kind) {
    case ProcessorKind::kExhaustive:
      return "exhaustive";
    case ProcessorKind::kThresholdAlgorithm:
      return "ta";
    case ProcessorKind::kMaxScore:
      return "maxscore";
  }
  return "unknown";
}

QueryServer::QueryServer(const search::Corpus* corpus, const ServingOptions& options)
    : corpus_(corpus), options_(options) {
  JXP_CHECK(corpus_ != nullptr);
  JXP_CHECK_GT(options_.k, 0u);
  pool_ = std::make_unique<ThreadPool>(std::max<size_t>(options_.num_threads, 1));

  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  queries_total_ = registry.GetCounter("jxp.qp.queries");
  postings_decoded_ = registry.GetCounter("jxp.qp.postings_decoded");
  freqs_decoded_ = registry.GetCounter("jxp.qp.freqs_decoded");
  blocks_decoded_ = registry.GetCounter("jxp.qp.blocks_decoded");
  blocks_skipped_ = registry.GetCounter("jxp.qp.blocks_skipped");
  candidates_scored_ = registry.GetCounter("jxp.qp.candidates_scored");
  docs_pruned_ = registry.GetCounter("jxp.qp.docs_pruned");
  ta_sorted_accesses_ = registry.GetCounter("jxp.qp.ta_sorted_accesses");
  ta_random_accesses_ = registry.GetCounter("jxp.qp.ta_random_accesses");
  postings_decoded_per_query_ = registry.GetHistogram(
      "jxp.qp.postings_decoded_per_query",
      {0, 8, 32, 128, 512, 2048, 8192, 32768, 131072});
  results_per_query_ =
      registry.GetHistogram("jxp.qp.results_per_query", {0, 1, 2, 5, 10, 20, 50, 100});
  query_latency_ms_ = registry.GetHistogram(
      "jxp.qp.query_latency_ms", {0.01, 0.05, 0.1, 0.5, 1, 5, 10, 50, 100, 500});
}

void QueryServer::AddPeer(const search::PeerIndex* index,
                          const std::unordered_map<graph::PageId, double>& jxp_scores,
                          const CompressedIndexOptions& copts) {
  JXP_CHECK(index != nullptr);
  peer_indexes_.push_back(index);
  compressed_.push_back(CompressedPeerIndex::Freeze(*index, *corpus_, jxp_scores, copts));
  index_stats_.MergeFrom(compressed_.back().stats());
  if (copts.prior_weight != 0.0) priors_disabled_ = false;
}

void QueryServer::ServeOne(const ServedQuery& query, ServedResult& out) {
  WallTimer timer;
  // Per-peer top-k, merged with replica deduplication: a page hosted by
  // several peers scores bit-identically on each (the score is a pure
  // function of corpus statistics, the query, and the prior table), so any
  // copy stands for all of them — the same dedup MinervaEngine applies.
  std::unordered_map<graph::PageId, double> best;
  for (size_t p = 0; p < compressed_.size(); ++p) {
    TopKList local;
    switch (options_.processor) {
      case ProcessorKind::kExhaustive:
        local = ExhaustiveTopK(compressed_[p], query.terms, options_.k, &out.stats);
        break;
      case ProcessorKind::kMaxScore:
        local = MaxScoreTopK(compressed_[p], query.terms, options_.k, &out.stats);
        break;
      case ProcessorKind::kThresholdAlgorithm: {
        const search::ThresholdTopKResult ta = search::ThresholdTopK(
            *peer_indexes_[p], *corpus_, query.terms, options_.k);
        local = ta.results;
        out.ta_sorted_accesses += ta.sorted_accesses;
        out.ta_random_accesses += ta.random_accesses;
        break;
      }
    }
    for (const auto& [page, score] : local) best[page] = score;
  }
  std::vector<std::pair<double, graph::PageId>> ranked;
  ranked.reserve(best.size());
  for (const auto& [page, score] : best) ranked.emplace_back(score, page);
  const size_t keep = std::min(options_.k, ranked.size());
  std::partial_sort(ranked.begin(), ranked.begin() + static_cast<ptrdiff_t>(keep),
                    ranked.end(), [](const auto& a, const auto& b) {
                      return BetterResult(a.first, a.second, b.first, b.second);
                    });
  out.results.reserve(keep);
  for (size_t i = 0; i < keep; ++i) out.results.emplace_back(ranked[i].second, ranked[i].first);

  queries_total_.Increment();
  postings_decoded_.Increment(out.stats.decode.postings_decoded);
  freqs_decoded_.Increment(out.stats.decode.freqs_decoded);
  blocks_decoded_.Increment(out.stats.decode.blocks_decoded);
  blocks_skipped_.Increment(out.stats.decode.blocks_skipped);
  candidates_scored_.Increment(out.stats.candidates_scored);
  docs_pruned_.Increment(out.stats.docs_pruned);
  ta_sorted_accesses_.Increment(out.ta_sorted_accesses);
  ta_random_accesses_.Increment(out.ta_random_accesses);
  postings_decoded_per_query_.Observe(
      static_cast<double>(out.stats.decode.postings_decoded));
  results_per_query_.Observe(static_cast<double>(out.results.size()));
  query_latency_ms_.Observe(timer.ElapsedMillis());
}

std::vector<ServedResult> QueryServer::ServeBatch(std::span<const ServedQuery> queries) {
  if (options_.processor == ProcessorKind::kThresholdAlgorithm) {
    // TA ranks by pure tf*idf; a nonzero prior weight would change the
    // target ranking out from under it.
    JXP_CHECK(priors_disabled_) << "TA serving requires prior_weight == 0";
  }
  obs::TraceSpan span("qp.serve_batch");
  if (span.active()) {
    span.AddAttr("processor", ProcessorName(options_.processor));
    span.AddAttr("num_queries", queries.size());
    span.AddAttr("num_peers", compressed_.size());
    span.AddAttr("threads", pool_->num_threads());
    span.AddAttr("k", options_.k);
  }
  std::vector<ServedResult> results(queries.size());
  pool_->ParallelFor(0, queries.size(), kServeGrain,
                     [&](size_t i) { ServeOne(queries[i], results[i]); });
  return results;
}

}  // namespace qp
}  // namespace jxp
