#include "qp/serving.h"

#include <algorithm>

#include "common/timer.h"
#include "obs/trace.h"
#include "search/threshold_top_k.h"

namespace jxp {
namespace qp {

namespace {

/// Fixed ParallelFor grain: block boundaries must not depend on the thread
/// count, or per-worker metric shards would partition differently (still
/// deterministic after merging, but keep scheduling canonical anyway).
constexpr size_t kServeGrain = 1;

/// Every primed threshold is multiplied by this before it reaches the
/// MaxScore heap. Term primers and cached thresholds are lower bounds of the
/// true merged k-th score in exact arithmetic; the deflation absorbs the
/// floating-point reassociation slack between the term order the bound was
/// derived under and the order the query actually sums in (~n*eps, orders of
/// magnitude below 1e-12) AND makes the bound strict, so a primed run can
/// never prune a document that ties the true k-th score.
constexpr double kPrimeDeflate = 1.0 - 1e-12;

constexpr size_t kNotDup = static_cast<size_t>(-1);

/// One "qp.query" trace line. All *_ns fields are wall nanoseconds of this
/// query; stage semantics follow obs::LatencyStage. Emitted from pool
/// workers (misses) and the serial phase 3 (cache hits) alike — the sink is
/// thread-safe, and line order is scheduling-dependent like every trace.
void EmitQueryEvent(uint64_t query_id, const std::vector<search::TermId>& terms,
                    bool cache_hit, size_t postings_decoded, uint64_t cache_lookup_ns,
                    uint64_t priming_ns, const StageNanos& stages, uint64_t fan_in_ns,
                    uint64_t total_ns) {
  obs::EmitEvent("qp.query", [&](obs::JsonWriter& w) {
    w.Field("query_id", query_id);
    w.BeginArray("terms");
    for (search::TermId term : terms) w.Element(static_cast<double>(term));
    w.End();
    w.Field("cache_hit", cache_hit);
    w.Field("postings_decoded", static_cast<uint64_t>(postings_decoded));
    w.Field("cache_lookup_ns", cache_lookup_ns);
    w.Field("priming_ns", priming_ns);
    w.Field("decode_ns", stages.decode_ns);
    w.Field("scoring_ns", stages.scoring_ns);
    w.Field("heap_ns", stages.heap_ns);
    w.Field("fan_in_ns", fan_in_ns);
    w.Field("total_ns", total_ns);
  });
}

}  // namespace

const char* ProcessorName(ProcessorKind kind) {
  switch (kind) {
    case ProcessorKind::kExhaustive:
      return "exhaustive";
    case ProcessorKind::kThresholdAlgorithm:
      return "ta";
    case ProcessorKind::kMaxScore:
      return "maxscore";
  }
  return "unknown";
}

QueryServer::QueryServer(const search::Corpus* corpus, const ServingOptions& options)
    : corpus_(corpus),
      options_(options),
      result_cache_(options.result_cache_capacity),
      threshold_cache_(options.threshold_cache_capacity) {
  JXP_CHECK(corpus_ != nullptr);
  JXP_CHECK_GT(options_.k, 0u);
  pool_ = std::make_unique<ThreadPool>(std::max<size_t>(options_.num_threads, 1));

  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  queries_total_ = registry.GetCounter("jxp.qp.queries");
  postings_decoded_ = registry.GetCounter("jxp.qp.postings_decoded");
  freqs_decoded_ = registry.GetCounter("jxp.qp.freqs_decoded");
  blocks_decoded_ = registry.GetCounter("jxp.qp.blocks_decoded");
  blocks_skipped_ = registry.GetCounter("jxp.qp.blocks_skipped");
  blocks_skipped_live_ = registry.GetCounter("jxp.qp.blocks_skipped_live");
  candidates_scored_ = registry.GetCounter("jxp.qp.candidates_scored");
  docs_pruned_ = registry.GetCounter("jxp.qp.docs_pruned");
  live_ranges_ = registry.GetCounter("jxp.qp.live_ranges");
  dead_ranges_ = registry.GetCounter("jxp.qp.dead_ranges");
  ta_sorted_accesses_ = registry.GetCounter("jxp.qp.ta_sorted_accesses");
  ta_random_accesses_ = registry.GetCounter("jxp.qp.ta_random_accesses");
  result_cache_hits_ = registry.GetCounter("jxp.qp.result_cache_hits");
  result_cache_misses_ = registry.GetCounter("jxp.qp.result_cache_misses");
  primed_queries_ = registry.GetCounter("jxp.qp.primed_queries");
  postings_decoded_per_query_ = registry.GetHistogram(
      "jxp.qp.postings_decoded_per_query",
      {0, 8, 32, 128, 512, 2048, 8192, 32768, 131072});
  results_per_query_ =
      registry.GetHistogram("jxp.qp.results_per_query", {0, 1, 2, 5, 10, 20, 50, 100});
  query_latency_ms_ = registry.GetHistogram(
      "jxp.qp.query_latency_ms", {0.01, 0.05, 0.1, 0.5, 1, 5, 10, 50, 100, 500});
}

void QueryServer::AddPeer(const search::PeerIndex* index,
                          const std::unordered_map<graph::PageId, double>& jxp_scores,
                          const CompressedIndexOptions& copts) {
  JXP_CHECK(index != nullptr);
  CompressedIndexOptions opts = copts;
  if (options_.threshold_priming) opts.primer_k = options_.k;
  peer_indexes_.push_back(index);
  compressed_.push_back(CompressedPeerIndex::Freeze(*index, *corpus_, jxp_scores, opts));
  index_stats_.MergeFrom(compressed_.back().stats());
  if (opts.prior_weight != 0.0) priors_disabled_ = false;
  // A per-peer primer stays a valid merged-score bound globally: the merged
  // k-th score dominates every peer's k-th score, which dominates that
  // peer's primer. Take the best across peers per term.
  for (const CompressedPeerIndex::TermList& entry : compressed_.back().lists()) {
    if (entry.primer > 0.0) {
      double& primer = term_primers_[entry.term];
      primer = std::max(primer, entry.primer);
    }
  }
  // New postings change merged results and thresholds alike.
  result_cache_.Clear();
  threshold_cache_.Clear();
}

double QueryServer::PrimedThreshold(const std::vector<search::TermId>& terms) {
  if (options_.processor != ProcessorKind::kMaxScore || terms.empty()) return 0.0;
  double theta = 0.0;
  if (options_.threshold_priming) {
    for (search::TermId term : terms) {
      const auto it = term_primers_.find(term);
      if (it != term_primers_.end()) theta = std::max(theta, it->second);
    }
  }
  if (threshold_cache_.capacity() > 0) {
    // Scores are monotone in the query-term multiset (every impact is
    // nonnegative), so the threshold of the exact sorted multiset or of any
    // drop-one sub-multiset bounds this query's k-th score from below.
    std::vector<search::TermId> key = terms;
    std::sort(key.begin(), key.end());
    if (const double* cached = threshold_cache_.Get(key)) {
      theta = std::max(theta, *cached);
    }
    if (key.size() >= 2) {
      std::vector<search::TermId> sub(key.size() - 1);
      for (size_t drop = 0; drop < key.size(); ++drop) {
        // Dropping either of two equal terms yields the same sub-multiset.
        if (drop > 0 && key[drop] == key[drop - 1]) continue;
        size_t out = 0;
        for (size_t j = 0; j < key.size(); ++j) {
          if (j != drop) sub[out++] = key[j];
        }
        if (const double* cached = threshold_cache_.Get(sub)) {
          theta = std::max(theta, *cached);
        }
      }
    }
  }
  return theta > 0.0 ? theta * kPrimeDeflate : 0.0;
}

void QueryServer::ServeOne(const ServedQuery& query, double primed_threshold,
                           uint64_t query_id, uint64_t cache_lookup_ns,
                           uint64_t priming_ns, obs::LatencyRecorder* recorder,
                           ServedResult& out) {
  WallTimer timer;
  const bool trace = options_.trace_queries && obs::Enabled();
  const bool prof = obs::Enabled() && (recorder != nullptr || trace);
  StageNanos stages;
  StageNanos* sp = prof ? &stages : nullptr;
  uint64_t fan_in_ns = 0;
  const uint64_t total_t0 = prof ? MonotonicNanos() : 0;

  // Per-peer top-k, merged with replica deduplication: a page hosted by
  // several peers scores bit-identically on each (the score is a pure
  // function of corpus statistics, the query, and the prior table), so any
  // copy stands for all of them — the same dedup MinervaEngine applies.
  std::unordered_map<graph::PageId, double> best;
  for (size_t p = 0; p < compressed_.size(); ++p) {
    TopKList local;
    switch (options_.processor) {
      case ProcessorKind::kExhaustive:
        local = ExhaustiveTopK(compressed_[p], query.terms, options_.k, &out.stats, sp);
        break;
      case ProcessorKind::kMaxScore: {
        MaxScoreOptions mopts;
        // The same primed threshold is valid against every peer: it lower-
        // bounds the *merged* k-th score, and per-peer entries below it can
        // never reach the merged top-k.
        mopts.primed_threshold = primed_threshold;
        local = MaxScoreTopK(compressed_[p], query.terms, options_.k, mopts, &out.stats,
                             sp);
        break;
      }
      case ProcessorKind::kThresholdAlgorithm: {
        // TA is not stage-split (see StageNanos): its whole run reports
        // under scoring_ns.
        const uint64_t ta_t0 = prof ? MonotonicNanos() : 0;
        const search::ThresholdTopKResult ta = search::ThresholdTopK(
            *peer_indexes_[p], *corpus_, query.terms, options_.k);
        if (prof) stages.scoring_ns += MonotonicNanos() - ta_t0;
        local = ta.results;
        out.ta_sorted_accesses += ta.sorted_accesses;
        out.ta_random_accesses += ta.random_accesses;
        break;
      }
    }
    const uint64_t merge_t0 = prof ? MonotonicNanos() : 0;
    for (const auto& [page, score] : local) best[page] = score;
    if (prof) fan_in_ns += MonotonicNanos() - merge_t0;
  }
  const uint64_t rank_t0 = prof ? MonotonicNanos() : 0;
  std::vector<std::pair<double, graph::PageId>> ranked;
  ranked.reserve(best.size());
  for (const auto& [page, score] : best) ranked.emplace_back(score, page);
  const size_t keep = std::min(options_.k, ranked.size());
  std::partial_sort(ranked.begin(), ranked.begin() + static_cast<ptrdiff_t>(keep),
                    ranked.end(), [](const auto& a, const auto& b) {
                      return BetterResult(a.first, a.second, b.first, b.second);
                    });
  out.results.reserve(keep);
  for (size_t i = 0; i < keep; ++i) out.results.emplace_back(ranked[i].second, ranked[i].first);
  if (prof) fan_in_ns += MonotonicNanos() - rank_t0;

  queries_total_.Increment();
  postings_decoded_.Increment(out.stats.decode.postings_decoded);
  freqs_decoded_.Increment(out.stats.decode.freqs_decoded);
  blocks_decoded_.Increment(out.stats.decode.blocks_decoded);
  blocks_skipped_.Increment(out.stats.decode.blocks_skipped);
  blocks_skipped_live_.Increment(out.stats.decode.blocks_skipped_live);
  candidates_scored_.Increment(out.stats.candidates_scored);
  docs_pruned_.Increment(out.stats.docs_pruned);
  live_ranges_.Increment(out.stats.live_ranges);
  dead_ranges_.Increment(out.stats.dead_ranges);
  ta_sorted_accesses_.Increment(out.ta_sorted_accesses);
  ta_random_accesses_.Increment(out.ta_random_accesses);
  if (primed_threshold > 0.0) primed_queries_.Increment();
  postings_decoded_per_query_.Observe(
      static_cast<double>(out.stats.decode.postings_decoded));
  results_per_query_.Observe(static_cast<double>(out.results.size()));
  query_latency_ms_.Observe(timer.ElapsedMillis());

  if (prof) {
    // Total covers the stages plus glue (cursor setup, metric flushes);
    // cache lookup and priming happened in the caller's serial phase and are
    // reported alongside, not inside, the total.
    const uint64_t total_ns = MonotonicNanos() - total_t0;
    if (recorder != nullptr) {
      recorder->Record(obs::LatencyStage::kCacheLookup, cache_lookup_ns);
      recorder->Record(obs::LatencyStage::kPriming, priming_ns);
      recorder->Record(obs::LatencyStage::kDecode, stages.decode_ns);
      recorder->Record(obs::LatencyStage::kScoring, stages.scoring_ns);
      recorder->Record(obs::LatencyStage::kHeap, stages.heap_ns);
      recorder->Record(obs::LatencyStage::kFanIn, fan_in_ns);
      recorder->Record(obs::LatencyStage::kTotal, total_ns);
    }
    if (trace) {
      EmitQueryEvent(query_id, query.terms, /*cache_hit=*/false,
                     out.stats.decode.postings_decoded, cache_lookup_ns, priming_ns,
                     stages, fan_in_ns, total_ns);
    }
  }
}

std::vector<ServedResult> QueryServer::ServeBatch(std::span<const ServedQuery> queries) {
  if (options_.processor == ProcessorKind::kThresholdAlgorithm) {
    // TA ranks by pure tf*idf; a nonzero prior weight would change the
    // target ranking out from under it.
    JXP_CHECK(priors_disabled_) << "TA serving requires prior_weight == 0";
  }
  obs::TraceSpan span("qp.serve_batch");
  if (span.active()) {
    span.AddAttr("processor", ProcessorName(options_.processor));
    span.AddAttr("num_queries", queries.size());
    span.AddAttr("num_peers", compressed_.size());
    span.AddAttr("threads", pool_->num_threads());
    span.AddAttr("k", options_.k);
  }
  std::vector<ServedResult> results(queries.size());
  const bool use_result_cache = result_cache_.capacity() > 0;
  const bool trace = options_.trace_queries && obs::Enabled();
  const bool prof = obs::Enabled() && (latency_recorder_ != nullptr || trace);
  // Query ids label trace events with the query's position in the server's
  // lifetime stream; claimed up front so phase 2 needs no synchronization.
  const uint64_t id_base =
      queries_served_.fetch_add(queries.size(), std::memory_order_relaxed);

  // Phase 1 (serial): result-cache lookups, in-batch dedup by exact term
  // sequence, and threshold priming. Everything that touches cache recency
  // happens here in query order, so cache state — and with it every primed
  // threshold and work counter — is a pure function of the query sequence.
  // When profiling, the phase also clocks each query's lookup and priming;
  // the samples ride into ServeOne (misses) or phase 3 (hits).
  std::vector<size_t> misses;
  std::vector<double> primed(queries.size(), 0.0);
  std::vector<size_t> dup_of(queries.size(), kNotDup);
  std::vector<uint64_t> lookup_ns;
  std::vector<uint64_t> prime_ns;
  if (prof) {
    lookup_ns.assign(queries.size(), 0);
    prime_ns.assign(queries.size(), 0);
  }
  std::unordered_map<std::vector<search::TermId>, size_t, TermSequenceHash> first_of;
  for (size_t i = 0; i < queries.size(); ++i) {
    uint64_t t0 = prof ? MonotonicNanos() : 0;
    if (use_result_cache) {
      if (const CachedResult* hit = result_cache_.Get(queries[i].terms)) {
        results[i].results = hit->results;
        results[i].cache_hit = true;
        if (prof) lookup_ns[i] = MonotonicNanos() - t0;
        continue;
      }
      const auto [it, inserted] = first_of.try_emplace(queries[i].terms, i);
      if (!inserted) {
        dup_of[i] = it->second;
        if (prof) lookup_ns[i] = MonotonicNanos() - t0;
        continue;
      }
      result_cache_misses_.Increment();
    }
    if (prof) {
      const uint64_t t1 = MonotonicNanos();
      lookup_ns[i] = t1 - t0;
      t0 = t1;
    }
    primed[i] = PrimedThreshold(queries[i].terms);
    if (prof) prime_ns[i] = MonotonicNanos() - t0;
    misses.push_back(i);
  }

  // Phase 2 (parallel): evaluate the distinct misses. With caching off this
  // is the exact PR 4 loop over all queries.
  pool_->ParallelFor(0, misses.size(), kServeGrain, [&](size_t j) {
    const size_t i = misses[j];
    ServeOne(queries[i], primed[i], id_base + i, prof ? lookup_ns[i] : 0,
             prof ? prime_ns[i] : 0, latency_recorder_, results[i]);
  });

  // Phase 3 (serial, query order): fan results out to in-batch duplicates,
  // record hit metrics and hit latency profiles, and admit new entries into
  // both caches.
  for (size_t i = 0; i < queries.size(); ++i) {
    if (dup_of[i] != kNotDup) {
      results[i].results = results[dup_of[i]].results;
      results[i].cache_hit = true;
    }
    if (results[i].cache_hit) {
      queries_total_.Increment();
      result_cache_hits_.Increment();
      results_per_query_.Observe(static_cast<double>(results[i].results.size()));
      if (prof) {
        // A hit's whole service is the cache probe; the decode/scoring/heap
        // stages record no sample (no work happened), keeping stage counts
        // equal to the number of queries that actually ran that stage.
        if (latency_recorder_ != nullptr) {
          latency_recorder_->Record(obs::LatencyStage::kCacheLookup, lookup_ns[i]);
          latency_recorder_->Record(obs::LatencyStage::kTotal, lookup_ns[i]);
        }
        if (trace) {
          EmitQueryEvent(id_base + i, queries[i].terms, /*cache_hit=*/true,
                         /*postings_decoded=*/0, lookup_ns[i], /*priming_ns=*/0,
                         StageNanos{}, /*fan_in_ns=*/0, /*total_ns=*/lookup_ns[i]);
        }
      }
      continue;
    }
    if (use_result_cache) {
      result_cache_.Put(queries[i].terms, CachedResult{results[i].results});
    }
    if (threshold_cache_.capacity() > 0 && results[i].results.size() == options_.k) {
      // The k-th (worst) merged score of a *full* result list is the exact
      // threshold of this term multiset; partial lists have no k-th score.
      std::vector<search::TermId> key = queries[i].terms;
      std::sort(key.begin(), key.end());
      threshold_cache_.Put(std::move(key), results[i].results.back().second);
    }
  }
  return results;
}

void QueryServer::ServeConcurrent(const ServedQuery& query, ServedResult& out,
                                  obs::LatencyRecorder* recorder) {
  if (options_.processor == ProcessorKind::kThresholdAlgorithm) {
    JXP_CHECK(priors_disabled_) << "TA serving requires prior_weight == 0";
  }
  const bool trace = options_.trace_queries && obs::Enabled();
  const bool prof = obs::Enabled() && (recorder != nullptr || trace);
  const uint64_t query_id =
      queries_served_.fetch_add(1, std::memory_order_relaxed);

  // Priming uses only the immutable per-term primer table — never the
  // threshold cache, whose recency list is single-writer. The primer is
  // deflated exactly like PrimedThreshold's, so results match a server with
  // both caches disabled bit for bit.
  const uint64_t prime_t0 = prof ? MonotonicNanos() : 0;
  double theta = 0.0;
  if (options_.processor == ProcessorKind::kMaxScore && options_.threshold_priming) {
    for (search::TermId term : query.terms) {
      const auto it = term_primers_.find(term);
      if (it != term_primers_.end()) theta = std::max(theta, it->second);
    }
  }
  const double primed = theta > 0.0 ? theta * kPrimeDeflate : 0.0;
  const uint64_t prime_ns = prof ? MonotonicNanos() - prime_t0 : 0;

  ServeOne(query, primed, query_id, /*cache_lookup_ns=*/0, prime_ns, recorder, out);
}

}  // namespace qp
}  // namespace jxp
