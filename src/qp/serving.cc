#include "qp/serving.h"

#include <algorithm>

#include "common/timer.h"
#include "obs/trace.h"
#include "search/threshold_top_k.h"

namespace jxp {
namespace qp {

namespace {

/// Fixed ParallelFor grain: block boundaries must not depend on the thread
/// count, or per-worker metric shards would partition differently (still
/// deterministic after merging, but keep scheduling canonical anyway).
constexpr size_t kServeGrain = 1;

/// Every primed threshold is multiplied by this before it reaches the
/// MaxScore heap. Term primers and cached thresholds are lower bounds of the
/// true merged k-th score in exact arithmetic; the deflation absorbs the
/// floating-point reassociation slack between the term order the bound was
/// derived under and the order the query actually sums in (~n*eps, orders of
/// magnitude below 1e-12) AND makes the bound strict, so a primed run can
/// never prune a document that ties the true k-th score.
constexpr double kPrimeDeflate = 1.0 - 1e-12;

constexpr size_t kNotDup = static_cast<size_t>(-1);

}  // namespace

const char* ProcessorName(ProcessorKind kind) {
  switch (kind) {
    case ProcessorKind::kExhaustive:
      return "exhaustive";
    case ProcessorKind::kThresholdAlgorithm:
      return "ta";
    case ProcessorKind::kMaxScore:
      return "maxscore";
  }
  return "unknown";
}

QueryServer::QueryServer(const search::Corpus* corpus, const ServingOptions& options)
    : corpus_(corpus),
      options_(options),
      result_cache_(options.result_cache_capacity),
      threshold_cache_(options.threshold_cache_capacity) {
  JXP_CHECK(corpus_ != nullptr);
  JXP_CHECK_GT(options_.k, 0u);
  pool_ = std::make_unique<ThreadPool>(std::max<size_t>(options_.num_threads, 1));

  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  queries_total_ = registry.GetCounter("jxp.qp.queries");
  postings_decoded_ = registry.GetCounter("jxp.qp.postings_decoded");
  freqs_decoded_ = registry.GetCounter("jxp.qp.freqs_decoded");
  blocks_decoded_ = registry.GetCounter("jxp.qp.blocks_decoded");
  blocks_skipped_ = registry.GetCounter("jxp.qp.blocks_skipped");
  blocks_skipped_live_ = registry.GetCounter("jxp.qp.blocks_skipped_live");
  candidates_scored_ = registry.GetCounter("jxp.qp.candidates_scored");
  docs_pruned_ = registry.GetCounter("jxp.qp.docs_pruned");
  live_ranges_ = registry.GetCounter("jxp.qp.live_ranges");
  dead_ranges_ = registry.GetCounter("jxp.qp.dead_ranges");
  ta_sorted_accesses_ = registry.GetCounter("jxp.qp.ta_sorted_accesses");
  ta_random_accesses_ = registry.GetCounter("jxp.qp.ta_random_accesses");
  result_cache_hits_ = registry.GetCounter("jxp.qp.result_cache_hits");
  result_cache_misses_ = registry.GetCounter("jxp.qp.result_cache_misses");
  primed_queries_ = registry.GetCounter("jxp.qp.primed_queries");
  postings_decoded_per_query_ = registry.GetHistogram(
      "jxp.qp.postings_decoded_per_query",
      {0, 8, 32, 128, 512, 2048, 8192, 32768, 131072});
  results_per_query_ =
      registry.GetHistogram("jxp.qp.results_per_query", {0, 1, 2, 5, 10, 20, 50, 100});
  query_latency_ms_ = registry.GetHistogram(
      "jxp.qp.query_latency_ms", {0.01, 0.05, 0.1, 0.5, 1, 5, 10, 50, 100, 500});
}

void QueryServer::AddPeer(const search::PeerIndex* index,
                          const std::unordered_map<graph::PageId, double>& jxp_scores,
                          const CompressedIndexOptions& copts) {
  JXP_CHECK(index != nullptr);
  CompressedIndexOptions opts = copts;
  if (options_.threshold_priming) opts.primer_k = options_.k;
  peer_indexes_.push_back(index);
  compressed_.push_back(CompressedPeerIndex::Freeze(*index, *corpus_, jxp_scores, opts));
  index_stats_.MergeFrom(compressed_.back().stats());
  if (opts.prior_weight != 0.0) priors_disabled_ = false;
  // A per-peer primer stays a valid merged-score bound globally: the merged
  // k-th score dominates every peer's k-th score, which dominates that
  // peer's primer. Take the best across peers per term.
  for (const CompressedPeerIndex::TermList& entry : compressed_.back().lists()) {
    if (entry.primer > 0.0) {
      double& primer = term_primers_[entry.term];
      primer = std::max(primer, entry.primer);
    }
  }
  // New postings change merged results and thresholds alike.
  result_cache_.Clear();
  threshold_cache_.Clear();
}

double QueryServer::PrimedThreshold(const std::vector<search::TermId>& terms) {
  if (options_.processor != ProcessorKind::kMaxScore || terms.empty()) return 0.0;
  double theta = 0.0;
  if (options_.threshold_priming) {
    for (search::TermId term : terms) {
      const auto it = term_primers_.find(term);
      if (it != term_primers_.end()) theta = std::max(theta, it->second);
    }
  }
  if (threshold_cache_.capacity() > 0) {
    // Scores are monotone in the query-term multiset (every impact is
    // nonnegative), so the threshold of the exact sorted multiset or of any
    // drop-one sub-multiset bounds this query's k-th score from below.
    std::vector<search::TermId> key = terms;
    std::sort(key.begin(), key.end());
    if (const double* cached = threshold_cache_.Get(key)) {
      theta = std::max(theta, *cached);
    }
    if (key.size() >= 2) {
      std::vector<search::TermId> sub(key.size() - 1);
      for (size_t drop = 0; drop < key.size(); ++drop) {
        // Dropping either of two equal terms yields the same sub-multiset.
        if (drop > 0 && key[drop] == key[drop - 1]) continue;
        size_t out = 0;
        for (size_t j = 0; j < key.size(); ++j) {
          if (j != drop) sub[out++] = key[j];
        }
        if (const double* cached = threshold_cache_.Get(sub)) {
          theta = std::max(theta, *cached);
        }
      }
    }
  }
  return theta > 0.0 ? theta * kPrimeDeflate : 0.0;
}

void QueryServer::ServeOne(const ServedQuery& query, double primed_threshold,
                           ServedResult& out) {
  WallTimer timer;
  // Per-peer top-k, merged with replica deduplication: a page hosted by
  // several peers scores bit-identically on each (the score is a pure
  // function of corpus statistics, the query, and the prior table), so any
  // copy stands for all of them — the same dedup MinervaEngine applies.
  std::unordered_map<graph::PageId, double> best;
  for (size_t p = 0; p < compressed_.size(); ++p) {
    TopKList local;
    switch (options_.processor) {
      case ProcessorKind::kExhaustive:
        local = ExhaustiveTopK(compressed_[p], query.terms, options_.k, &out.stats);
        break;
      case ProcessorKind::kMaxScore: {
        MaxScoreOptions mopts;
        // The same primed threshold is valid against every peer: it lower-
        // bounds the *merged* k-th score, and per-peer entries below it can
        // never reach the merged top-k.
        mopts.primed_threshold = primed_threshold;
        local = MaxScoreTopK(compressed_[p], query.terms, options_.k, mopts, &out.stats);
        break;
      }
      case ProcessorKind::kThresholdAlgorithm: {
        const search::ThresholdTopKResult ta = search::ThresholdTopK(
            *peer_indexes_[p], *corpus_, query.terms, options_.k);
        local = ta.results;
        out.ta_sorted_accesses += ta.sorted_accesses;
        out.ta_random_accesses += ta.random_accesses;
        break;
      }
    }
    for (const auto& [page, score] : local) best[page] = score;
  }
  std::vector<std::pair<double, graph::PageId>> ranked;
  ranked.reserve(best.size());
  for (const auto& [page, score] : best) ranked.emplace_back(score, page);
  const size_t keep = std::min(options_.k, ranked.size());
  std::partial_sort(ranked.begin(), ranked.begin() + static_cast<ptrdiff_t>(keep),
                    ranked.end(), [](const auto& a, const auto& b) {
                      return BetterResult(a.first, a.second, b.first, b.second);
                    });
  out.results.reserve(keep);
  for (size_t i = 0; i < keep; ++i) out.results.emplace_back(ranked[i].second, ranked[i].first);

  queries_total_.Increment();
  postings_decoded_.Increment(out.stats.decode.postings_decoded);
  freqs_decoded_.Increment(out.stats.decode.freqs_decoded);
  blocks_decoded_.Increment(out.stats.decode.blocks_decoded);
  blocks_skipped_.Increment(out.stats.decode.blocks_skipped);
  blocks_skipped_live_.Increment(out.stats.decode.blocks_skipped_live);
  candidates_scored_.Increment(out.stats.candidates_scored);
  docs_pruned_.Increment(out.stats.docs_pruned);
  live_ranges_.Increment(out.stats.live_ranges);
  dead_ranges_.Increment(out.stats.dead_ranges);
  ta_sorted_accesses_.Increment(out.ta_sorted_accesses);
  ta_random_accesses_.Increment(out.ta_random_accesses);
  if (primed_threshold > 0.0) primed_queries_.Increment();
  postings_decoded_per_query_.Observe(
      static_cast<double>(out.stats.decode.postings_decoded));
  results_per_query_.Observe(static_cast<double>(out.results.size()));
  query_latency_ms_.Observe(timer.ElapsedMillis());
}

std::vector<ServedResult> QueryServer::ServeBatch(std::span<const ServedQuery> queries) {
  if (options_.processor == ProcessorKind::kThresholdAlgorithm) {
    // TA ranks by pure tf*idf; a nonzero prior weight would change the
    // target ranking out from under it.
    JXP_CHECK(priors_disabled_) << "TA serving requires prior_weight == 0";
  }
  obs::TraceSpan span("qp.serve_batch");
  if (span.active()) {
    span.AddAttr("processor", ProcessorName(options_.processor));
    span.AddAttr("num_queries", queries.size());
    span.AddAttr("num_peers", compressed_.size());
    span.AddAttr("threads", pool_->num_threads());
    span.AddAttr("k", options_.k);
  }
  std::vector<ServedResult> results(queries.size());
  const bool use_result_cache = result_cache_.capacity() > 0;

  // Phase 1 (serial): result-cache lookups, in-batch dedup by exact term
  // sequence, and threshold priming. Everything that touches cache recency
  // happens here in query order, so cache state — and with it every primed
  // threshold and work counter — is a pure function of the query sequence.
  std::vector<size_t> misses;
  std::vector<double> primed(queries.size(), 0.0);
  std::vector<size_t> dup_of(queries.size(), kNotDup);
  std::unordered_map<std::vector<search::TermId>, size_t, TermSequenceHash> first_of;
  for (size_t i = 0; i < queries.size(); ++i) {
    if (use_result_cache) {
      if (const CachedResult* hit = result_cache_.Get(queries[i].terms)) {
        results[i].results = hit->results;
        results[i].cache_hit = true;
        continue;
      }
      const auto [it, inserted] = first_of.try_emplace(queries[i].terms, i);
      if (!inserted) {
        dup_of[i] = it->second;
        continue;
      }
      result_cache_misses_.Increment();
    }
    primed[i] = PrimedThreshold(queries[i].terms);
    misses.push_back(i);
  }

  // Phase 2 (parallel): evaluate the distinct misses. With caching off this
  // is the exact PR 4 loop over all queries.
  pool_->ParallelFor(0, misses.size(), kServeGrain, [&](size_t j) {
    const size_t i = misses[j];
    ServeOne(queries[i], primed[i], results[i]);
  });

  // Phase 3 (serial, query order): fan results out to in-batch duplicates,
  // record hit metrics, and admit new entries into both caches.
  for (size_t i = 0; i < queries.size(); ++i) {
    if (dup_of[i] != kNotDup) {
      results[i].results = results[dup_of[i]].results;
      results[i].cache_hit = true;
    }
    if (results[i].cache_hit) {
      queries_total_.Increment();
      result_cache_hits_.Increment();
      results_per_query_.Observe(static_cast<double>(results[i].results.size()));
      continue;
    }
    if (use_result_cache) {
      result_cache_.Put(queries[i].terms, CachedResult{results[i].results});
    }
    if (threshold_cache_.capacity() > 0 && results[i].results.size() == options_.k) {
      // The k-th (worst) merged score of a *full* result list is the exact
      // threshold of this term multiset; partial lists have no k-th score.
      std::vector<search::TermId> key = queries[i].terms;
      std::sort(key.begin(), key.end());
      threshold_cache_.Put(std::move(key), results[i].results.back().second);
    }
  }
  return results;
}

}  // namespace qp
}  // namespace jxp
