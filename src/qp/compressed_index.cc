#include "qp/compressed_index.h"

#include <algorithm>
#include <cmath>
#include <functional>

namespace jxp {
namespace qp {

void CompressedIndexStats::MergeFrom(const CompressedIndexStats& other) {
  num_terms += other.num_terms;
  num_postings += other.num_postings;
  num_blocks += other.num_blocks;
  docid_bytes += other.docid_bytes;
  freq_bytes += other.freq_bytes;
  block_metadata_bytes += other.block_metadata_bytes;
  list_metadata_bytes += other.list_metadata_bytes;
  prior_bytes += other.prior_bytes;
}

CompressedPeerIndex CompressedPeerIndex::Freeze(
    const search::PeerIndex& index, const search::Corpus& corpus,
    const std::unordered_map<graph::PageId, double>& jxp_scores,
    const CompressedIndexOptions& options) {
  JXP_CHECK_GE(options.prior_weight, 0.0);
  JXP_CHECK_LE(options.prior_weight, 1.0);
  CompressedPeerIndex frozen;
  frozen.owner_ = index.owner();
  frozen.prior_weight_ = options.prior_weight;

  // Deterministic layout: freeze terms in sorted order regardless of the
  // source map's iteration order.
  std::vector<search::TermId> terms;
  terms.reserve(index.postings().size());
  for (const auto& [term, postings] : index.postings()) terms.push_back(term);
  std::sort(terms.begin(), terms.end());

  const double num_docs = static_cast<double>(corpus.NumDocuments());
  const double w = options.prior_weight;
  std::vector<BlockPostingList::PostingIn> ins;
  std::vector<double> primer_values;
  for (search::TermId term : terms) {
    const std::vector<search::Posting>* postings = index.PostingsFor(term);
    const uint32_t df = corpus.DocumentFrequency(term);
    // A df of 0 would contribute nothing to any score (the engine skips such
    // terms); an indexed term always appears in at least one document.
    JXP_CHECK_GE(df, 1u);
    const double idf = std::log(num_docs / static_cast<double>(df));
    ins.clear();
    ins.reserve(postings->size());
    for (const search::Posting& posting : *postings) {
      BlockPostingList::PostingIn in;
      in.docid = posting.page;
      in.tf = posting.tf;
      in.impact = (1.0 + std::log(static_cast<double>(posting.tf))) * idf;
      const auto it = jxp_scores.find(posting.page);
      in.prior = it == jxp_scores.end() ? 0.0 : it->second;
      if (in.prior != 0.0 && !frozen.priors_.count(posting.page)) {
        frozen.priors_.emplace(posting.page, in.prior);
      }
      ins.push_back(in);
    }
    TermList entry;
    entry.term = term;
    entry.idf = idf;
    entry.list = BlockPostingList::Build(ins, options.block_size, options.codec);
    if (options.primer_k > 0 && ins.size() >= options.primer_k) {
      // Per-posting lower bound of the document's fused score (the same
      // double expression shape as the canonical score, so fl-monotonicity
      // guarantees score(d) >= value(d)). The primer_k-th largest value is
      // then a lower bound of the k-th best score of ANY query containing
      // this term: its top primer_k postings each score at least their own
      // value, hence at least the primer.
      primer_values.clear();
      primer_values.reserve(ins.size());
      for (const BlockPostingList::PostingIn& in : ins) {
        primer_values.push_back(w == 0.0 ? in.impact
                                         : (1.0 - w) * in.impact + w * in.prior);
      }
      std::nth_element(primer_values.begin(),
                       primer_values.begin() + static_cast<ptrdiff_t>(options.primer_k - 1),
                       primer_values.end(), std::greater<double>());
      entry.primer = primer_values[options.primer_k - 1];
    }
    frozen.max_prior_bound_ =
        std::max(frozen.max_prior_bound_, entry.list.max_prior());

    frozen.stats_.num_terms += 1;
    frozen.stats_.num_postings += entry.list.num_postings();
    frozen.stats_.num_blocks += entry.list.num_blocks();
    frozen.stats_.docid_bytes += entry.list.docid_bytes();
    frozen.stats_.freq_bytes += entry.list.freq_bytes();
    frozen.stats_.block_metadata_bytes += entry.list.metadata_bytes();
    frozen.stats_.list_metadata_bytes += sizeof(search::TermId) + sizeof(double) + 2 * sizeof(float);

    frozen.list_of_.emplace(term, frozen.lists_.size());
    frozen.lists_.push_back(std::move(entry));
  }
  frozen.stats_.prior_bytes =
      frozen.priors_.size() * (sizeof(graph::PageId) + sizeof(double));
  return frozen;
}

}  // namespace qp
}  // namespace jxp
