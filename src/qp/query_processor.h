#ifndef JXP_QP_QUERY_PROCESSOR_H_
#define JXP_QP_QUERY_PROCESSOR_H_

#include <span>
#include <utility>
#include <vector>

#include "qp/compressed_index.h"

namespace jxp {
namespace qp {

/// Work counters of one top-k evaluation. Pure functions of (index, query,
/// k) — independent of timing and thread count — so aggregating them into
/// `jxp.qp.*` metrics keeps snapshots bit-identical at any parallelism.
struct QueryStats {
  DecodeStats decode;
  /// Documents fully scored (all query terms aggregated in canonical order).
  size_t candidates_scored = 0;
  /// Documents ruled out by an upper-bound check before full scoring
  /// (always 0 for the exhaustive processor). Documents inside dead ranges
  /// are never enumerated at all and appear in neither counter.
  size_t docs_pruned = 0;
  /// Live-block computation outcome, accumulated over every (re)build of
  /// the range set: docid ranges whose combined block bounds can still beat
  /// the threshold vs. ranges proven dead (MaxScore only).
  size_t live_ranges = 0;
  size_t dead_ranges = 0;

  void MergeFrom(const QueryStats& other) {
    decode.MergeFrom(other.decode);
    candidates_scored += other.candidates_scored;
    docs_pruned += other.docs_pruned;
    live_ranges += other.live_ranges;
    dead_ranges += other.dead_ranges;
  }
};

/// Optional per-run wall-time profile of one top-k evaluation, in integer
/// nanoseconds. Pure diagnostics: timing never feeds back into evaluation,
/// so results are bit-identical whether a profile is collected or not.
/// When the caller passes nullptr the processors read no clocks at all
/// (zero-cost-off, matching the obs layer's contract).
///
/// Stage semantics per processor:
///   - ExhaustiveTopK: decode_ns = the TAAT cursor walk (decode +
///     accumulate), scoring_ns = prior fusion over the accumulator,
///     heap_ns = final partial sort.
///   - MaxScoreTopK: scoring_ns = canonical-order rescoring of surviving
///     candidates, heap_ns = top-k heap maintenance + final sort,
///     decode_ns = the rest of the descent (cursor advancement, block
///     seeks, bound checks) measured as total minus the other two.
///   - ThresholdTopK (serving's TA arm): not stage-split; the serving
///     layer reports its whole run under scoring_ns.
struct StageNanos {
  uint64_t decode_ns = 0;
  uint64_t scoring_ns = 0;
  uint64_t heap_ns = 0;

  void MergeFrom(const StageNanos& other) {
    decode_ns += other.decode_ns;
    scoring_ns += other.scoring_ns;
    heap_ns += other.heap_ns;
  }
};

/// The documented result order: fused score descending, page id ascending on
/// ties. Every processor (and MinervaEngine's per-peer retrieval) breaks
/// ties this way, which is what makes top-k results well-defined when
/// distinct documents score bit-identically.
inline bool BetterResult(double score_a, graph::PageId page_a, double score_b,
                         graph::PageId page_b) {
  if (score_a != score_b) return score_a > score_b;
  return page_a < page_b;
}

/// (page, fused score) pairs, best first under BetterResult, at most k.
using TopKList = std::vector<std::pair<graph::PageId, double>>;

/// Correctness oracle: term-at-a-time exhaustive evaluation over the
/// compressed lists. Every posting of every query term is decoded; each
/// candidate's tf*idf is accumulated in query-term order (bit-identical to
/// MinervaEngine::TfIdfScore) and fused with the static prior when the index
/// was frozen with prior_weight > 0:
///   score(d) = (1 - w) * tfidf(d) + w * prior(d)   [w == 0 => plain tfidf].
/// `stats` and `stages` are optional (nullptr = not collected).
TopKList ExhaustiveTopK(const CompressedPeerIndex& index,
                        std::span<const search::TermId> query, size_t k,
                        QueryStats* stats, StageNanos* stages = nullptr);

/// Tuning knobs of the MaxScore processor. Every setting preserves
/// bit-identity with ExhaustiveTopK; only the amount of decode work changes.
struct MaxScoreOptions {
  /// Threshold the top-k heap is primed with before descent (0 = cold). The
  /// caller must guarantee the value is a strict lower bound of the true
  /// k-th best fused score over the union of all result lists the query
  /// will be merged across (QueryServer derives it from term-level primers
  /// and the query-threshold cache, deflated by 1e-12 — never the raw k-th
  /// score itself). A primed run may return fewer or different entries
  /// *below* the primed threshold, but everything scoring above it is
  /// exact, which is what the merged top-k consumes.
  double primed_threshold = 0;
  /// Per-query live-block computation: before a candidate is enumerated,
  /// docid ranges whose combined per-block upper bounds cannot beat the
  /// current threshold are skipped without cursor decode work. The range
  /// set is (re)built when the threshold first materializes and whenever a
  /// list leaves the essential set — a pure function of (index, query, k,
  /// primed_threshold), so DecodeStats stay deterministic.
  bool live_blocks = true;
};

/// Fast path: document-at-a-time MaxScore with block-max skipping. Lists are
/// split into essential and non-essential by their quantized score upper
/// bounds; candidates come only from essential lists, and non-essential
/// lists are probed cheapest-bound-first with a shallow SeekBlock (block
/// metadata only) before any decompression. All pruning compares upper
/// bounds inflated by a tiny slack against the current k-th score, so a
/// document is only discarded when it provably cannot enter the top-k;
/// survivors are re-scored in canonical query-term order. The returned list
/// is therefore bit-identical to ExhaustiveTopK — same pages, same scores —
/// while decoding strictly less (postings are only materialized when a
/// block's upper bound keeps the document alive).
TopKList MaxScoreTopK(const CompressedPeerIndex& index,
                      std::span<const search::TermId> query, size_t k,
                      QueryStats* stats);

/// As above with explicit options (threshold priming, live-block skipping)
/// and an optional stage profile.
TopKList MaxScoreTopK(const CompressedPeerIndex& index,
                      std::span<const search::TermId> query, size_t k,
                      const MaxScoreOptions& options, QueryStats* stats,
                      StageNanos* stages = nullptr);

}  // namespace qp
}  // namespace jxp

#endif  // JXP_QP_QUERY_PROCESSOR_H_
