#ifndef JXP_QP_BITPACK_H_
#define JXP_QP_BITPACK_H_

#include <cstdint>
#include <cstring>
#include <vector>

#include "common/check.h"

namespace jxp {
namespace qp {

/// Fixed-width bit packing for the kPacked block codec (DESIGN.md §6h): every
/// value of a block occupies exactly `width` bits, little-endian within the
/// byte stream, so lane i lives at bit offset i*width. Fixed lanes are what
/// makes decoding SIMD-friendly: each value is one unaligned 64-bit load, a
/// shift, and a mask, with no data-dependent branches — the loop unrolls and
/// auto-vectorizes, unlike VByte's per-byte continuation-bit test.

/// Bits needed to represent `v` (>= 1 even for 0, so a width byte is never 0
/// — the codec reserves width 0 as its per-block VByte-fallback marker).
inline uint32_t BitWidth32(uint32_t v) {
  uint32_t bits = 1;
  while (v >>= 1) ++bits;
  return bits;
}

/// Appends `count` values at `width` bits each to `out` (ceil(count*width/8)
/// bytes). Every value must fit in `width` bits.
inline void PackBits(const uint32_t* values, size_t count, uint32_t width,
                     std::vector<uint8_t>& out) {
  JXP_CHECK_GE(width, 1u);
  JXP_CHECK_LE(width, 32u);
  const size_t begin = out.size();
  out.resize(begin + (count * width + 7) / 8, 0);
  uint8_t* base = out.data() + begin;
  for (size_t i = 0; i < count; ++i) {
    const uint64_t v = values[i];
    JXP_CHECK(width == 32 || v < (uint64_t{1} << width));
    const size_t bit = i * width;
    size_t byte = bit >> 3;
    uint32_t used = static_cast<uint32_t>(bit & 7);
    uint64_t acc = v << used;
    uint32_t pending = used + width;
    while (pending > 0) {
      base[byte++] |= static_cast<uint8_t>(acc);
      acc >>= 8;
      pending = pending > 8 ? pending - 8 : 0;
    }
  }
}

/// Decodes `count` values of `width` bits starting at `data[byte_offset]`
/// into `out`. `readable` is the number of bytes that may be *loaded* (the
/// whole backing buffer), which can exceed the packed area itself: the fast
/// path reads an unaligned 64-bit window per value and masks the excess, so
/// mid-buffer areas decode branch-free and only the last few values of the
/// buffer drop to the byte-at-a-time scalar tail. Returns false when the
/// packed area itself (ceil(count*width/8) bytes) does not fit in
/// `readable` — truncated input is an error, never an out-of-bounds read.
inline bool UnpackBits(const uint8_t* data, size_t readable, size_t byte_offset,
                       size_t count, uint32_t width, uint32_t* out) {
  if (width < 1 || width > 32) return false;
  const size_t total_bytes = (count * width + 7) / 8;
  if (byte_offset > readable || total_bytes > readable - byte_offset) return false;
  const uint8_t* base = data + byte_offset;
  const uint64_t mask = width == 32 ? ~uint64_t{0} >> 32 : (uint64_t{1} << width) - 1;
  // A value starting at bit b needs bytes [b/8, b/8 + 8) loadable: widths
  // <= 32 plus a bit phase <= 7 always fit in one 64-bit window.
  size_t i = 0;
  if (readable - byte_offset >= 8) {
    const size_t wide_bytes = readable - byte_offset - 8;
    size_t wide = count;
    while (wide > 0 && ((wide - 1) * width) / 8 > wide_bytes) --wide;
    size_t k = 0;
    for (; k + 4 <= wide; k += 4) {
      const size_t bit = k * width;
      uint64_t w0, w1, w2, w3;
      std::memcpy(&w0, base + ((bit + 0 * width) >> 3), 8);
      std::memcpy(&w1, base + ((bit + 1 * width) >> 3), 8);
      std::memcpy(&w2, base + ((bit + 2 * width) >> 3), 8);
      std::memcpy(&w3, base + ((bit + 3 * width) >> 3), 8);
      out[k + 0] = static_cast<uint32_t>((w0 >> ((bit + 0 * width) & 7)) & mask);
      out[k + 1] = static_cast<uint32_t>((w1 >> ((bit + 1 * width) & 7)) & mask);
      out[k + 2] = static_cast<uint32_t>((w2 >> ((bit + 2 * width) & 7)) & mask);
      out[k + 3] = static_cast<uint32_t>((w3 >> ((bit + 3 * width) & 7)) & mask);
    }
    for (; k < wide; ++k) {
      const size_t bit = k * width;
      uint64_t window;
      std::memcpy(&window, base + (bit >> 3), 8);
      out[k] = static_cast<uint32_t>((window >> (bit & 7)) & mask);
    }
    i = wide;
  }
  // Scalar tail: assemble byte by byte, never loading past `readable`.
  for (; i < count; ++i) {
    const size_t bit = i * width;
    uint64_t acc = 0;
    uint32_t got = 0;
    size_t byte = bit >> 3;
    const uint32_t phase = static_cast<uint32_t>(bit & 7);
    while (got < phase + width) {
      acc |= static_cast<uint64_t>(base[byte]) << got;
      ++byte;
      got += 8;
    }
    out[i] = static_cast<uint32_t>((acc >> phase) & mask);
  }
  return true;
}

}  // namespace qp
}  // namespace jxp

#endif  // JXP_QP_BITPACK_H_
