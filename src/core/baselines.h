#ifndef JXP_CORE_BASELINES_H_
#define JXP_CORE_BASELINES_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "pagerank/pagerank.h"

namespace jxp {
namespace core {

/// Disjoint-partition distributed PageRank, the family of approaches JXP is
/// contrasted with in Section 2.2 (Wang & DeWitt's ServerRank, Wu & Aberer's
/// layered Markov model, Kamvar et al.'s BlockRank): it requires a
/// *disjoint* assignment of pages to sites, which autonomous P2P crawlers
/// cannot provide — the motivating limitation behind JXP.
///
/// The approximation works in three steps:
///   1. each site runs PageRank over its intra-site links only;
///   2. a site-level graph (one node per site, edge weights = number of
///      inter-site links) is ranked with PageRank;
///   3. the global score of page p at site s is approximated by
///      localPR(p) * siteRank(s).
///
/// `site_of[p]` assigns page p to a site in [0, num_sites). Returns the
/// approximate global scores (normalized to sum 1).
std::vector<double> ServerRankScores(const graph::Graph& global,
                                     const std::vector<uint32_t>& site_of,
                                     uint32_t num_sites,
                                     const pagerank::PageRankOptions& options);

/// The no-collaboration baseline: every page is scored by PageRank over its
/// site's intra-site links only, ignoring the rest of the Web (what a JXP
/// peer would report if it never met anyone and did not model the world
/// node). Scores are normalized per site by site size so the vector sums
/// to 1.
std::vector<double> LocalOnlyScores(const graph::Graph& global,
                                    const std::vector<uint32_t>& site_of,
                                    uint32_t num_sites,
                                    const pagerank::PageRankOptions& options);

}  // namespace core
}  // namespace jxp

#endif  // JXP_CORE_BASELINES_H_
