#ifndef JXP_CORE_EXTENDED_GRAPH_H_
#define JXP_CORE_EXTENDED_GRAPH_H_

#include <vector>

#include "core/world_node.h"
#include "graph/subgraph.h"
#include "markov/sparse_matrix.h"

namespace jxp {
namespace core {

/// How the world node's outgoing links are weighted (ablation A2 in
/// DESIGN.md; the paper always uses score-proportional weights).
enum class WorldLinkWeighting {
  /// Paper Eq. 8: weight (1/out(r)) * alpha(r)/alpha_w per link.
  kScoreProportional,
  /// Strawman: ignore the learned scores; every known external in-linking
  /// page is assumed to carry an equal share of the world mass.
  kUniform,
};

/// The transition system of a peer's extended local graph G' = G + W
/// (paper Section 5, Eqs. 5-10): n local states plus the world node as
/// state n.
struct ExtendedGraphSystem {
  /// (n+1) x (n+1) link matrix. Local rows follow Eq. 6/7; the world row
  /// follows Eq. 8/9. Dangling local pages have empty rows (their mass is
  /// redistributed along `dangling`).
  markov::SparseMatrix matrix;
  /// Random-jump distribution (Eq. 10): 1/N per local page, (N-n)/N to the
  /// world node.
  std::vector<double> teleport;
  /// Dangling-mass distribution: identical to teleport (a dangling page in
  /// the global chain jumps uniformly over all N pages, of which n are
  /// local).
  std::vector<double> dangling;
  /// True iff the world row's outgoing mass had to be clamped because the
  /// stored external scores momentarily exceeded the world score (a
  /// transient of the take-max combination; see JxpPeer).
  bool world_row_clamped = false;
};

/// Incremental builder of ExtendedGraphSystem, exploiting that only the
/// world row depends on the denominator alpha_w and on the (per-meeting)
/// world-node scores, while the local rows depend on the fragment alone:
///
/// - local rows are built once per fragment and reused across meetings;
///   they are dropped only by InvalidateFragment() (called on
///   ReplaceFragment, the sole structural fragment change);
/// - Prepare() snapshots the world node's raw link terms (target, 1/out(r),
///   alpha(r)) and regenerates the world row for the given denominator —
///   O(world entries), no local-row rebuild, no builder sort of local rows;
/// - Rescale() regenerates the world row for a new denominator from the
///   snapshot — the O(world entries) step JxpPeer's self-consistent
///   denominator guard loop runs instead of a full BuildExtendedSystem.
///
/// The world row is regenerated with arithmetic identical to a fresh
/// BuildExtendedSystem at the same denominator, so the cached and the
/// freshly built systems agree bit for bit.
class ExtendedSystemCache {
 public:
  ExtendedSystemCache() = default;

  /// Returns the extended system of `fragment` + `world` at denominator
  /// `world_score` (see BuildExtendedSystem for the semantics). The
  /// returned reference stays valid — and is updated in place — across
  /// subsequent Prepare/Rescale calls. The fragment must be unchanged since
  /// the previous Prepare unless InvalidateFragment() was called in
  /// between; the world node may change freely between calls.
  const ExtendedGraphSystem& Prepare(const graph::Subgraph& fragment,
                                     const WorldNode& world, double world_score,
                                     size_t global_size, WorldLinkWeighting weighting);

  /// Regenerates the world row for a new denominator, keeping the local
  /// rows, the world snapshot, and the teleport/dangling vectors of the
  /// last Prepare. Only valid after a Prepare.
  const ExtendedGraphSystem& Rescale(double world_score);

  /// Drops the cached local rows; the next Prepare rebuilds them. Must be
  /// called whenever the fragment changes structurally (ReplaceFragment).
  void InvalidateFragment() { local_rows_valid_ = false; }

  /// True when the cached system's local rows are valid and describe a
  /// fragment of `num_local` pages — i.e. the next Prepare will only rewrite
  /// the world row in place. The incremental PageRank path uses this to
  /// decide whether a world-row delta against the cached matrix is sound.
  bool CachedLocalRowsMatch(size_t num_local) const {
    return prepared_ && local_rows_valid_ && num_local_ == num_local;
  }

  /// The cached system of the last Prepare/Rescale. Only valid after a
  /// Prepare; updated in place by subsequent calls (see Prepare).
  const ExtendedGraphSystem& system() const {
    JXP_CHECK(prepared_);
    return system_;
  }

  /// Moves the built system out (used by the one-shot BuildExtendedSystem).
  ExtendedGraphSystem TakeSystem() && { return std::move(system_); }

 private:
  /// One raw world-row term: external page r contributes weight
  /// (1/out(r)) * alpha(r)/alpha_w to local page `target`.
  struct WorldTerm {
    uint32_t target = 0;
    double inv_out = 0;
    double score = 0;
  };

  void RebuildLocalRows(const graph::Subgraph& fragment);
  void RebuildWorldRow(double denominator);

  bool local_rows_valid_ = false;
  bool prepared_ = false;
  size_t num_local_ = 0;
  size_t global_size_ = 0;
  WorldLinkWeighting weighting_ = WorldLinkWeighting::kScoreProportional;
  double uniform_share_ = 0;
  double dangling_mass_ = 0;
  std::vector<WorldTerm> terms_;
  std::vector<markov::MatrixEntry> world_row_;  // Scratch, reused per rebuild.
  ExtendedGraphSystem system_;
};

/// Builds the extended transition system of `fragment` + `world`:
///
/// - local page i with global out-degree d: weight 1/d per local successor;
///   the external successors contribute weight (#external successors)/d to
///   the world column (Eq. 7);
/// - world row: for each known external in-linking page r with targets T and
///   score alpha(r), weight (1/out(r)) * alpha(r)/world_score per target
///   (Eq. 8); the self-loop absorbs the rest (Eq. 9);
/// - teleport/dangling per Eq. 10 with `global_size` = N.
///
/// `world_score` is the peer's current world-node score (alpha_w at meeting
/// t-1), which weights the world row. One-shot convenience over
/// ExtendedSystemCache; repeated builds over the same fragment should use
/// the cache directly.
ExtendedGraphSystem BuildExtendedSystem(
    const graph::Subgraph& fragment, const WorldNode& world, double world_score,
    size_t global_size,
    WorldLinkWeighting weighting = WorldLinkWeighting::kScoreProportional);

}  // namespace core
}  // namespace jxp

#endif  // JXP_CORE_EXTENDED_GRAPH_H_
