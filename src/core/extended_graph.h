#ifndef JXP_CORE_EXTENDED_GRAPH_H_
#define JXP_CORE_EXTENDED_GRAPH_H_

#include <vector>

#include "core/world_node.h"
#include "graph/subgraph.h"
#include "markov/sparse_matrix.h"

namespace jxp {
namespace core {

/// How the world node's outgoing links are weighted (ablation A2 in
/// DESIGN.md; the paper always uses score-proportional weights).
enum class WorldLinkWeighting {
  /// Paper Eq. 8: weight (1/out(r)) * alpha(r)/alpha_w per link.
  kScoreProportional,
  /// Strawman: ignore the learned scores; every known external in-linking
  /// page is assumed to carry an equal share of the world mass.
  kUniform,
};

/// The transition system of a peer's extended local graph G' = G + W
/// (paper Section 5, Eqs. 5-10): n local states plus the world node as
/// state n.
struct ExtendedGraphSystem {
  /// (n+1) x (n+1) link matrix. Local rows follow Eq. 6/7; the world row
  /// follows Eq. 8/9. Dangling local pages have empty rows (their mass is
  /// redistributed along `dangling`).
  markov::SparseMatrix matrix;
  /// Random-jump distribution (Eq. 10): 1/N per local page, (N-n)/N to the
  /// world node.
  std::vector<double> teleport;
  /// Dangling-mass distribution: identical to teleport (a dangling page in
  /// the global chain jumps uniformly over all N pages, of which n are
  /// local).
  std::vector<double> dangling;
  /// True iff the world row's outgoing mass had to be clamped because the
  /// stored external scores momentarily exceeded the world score (a
  /// transient of the take-max combination; see JxpPeer).
  bool world_row_clamped = false;
};

/// Builds the extended transition system of `fragment` + `world`:
///
/// - local page i with global out-degree d: weight 1/d per local successor;
///   the external successors contribute weight (#external successors)/d to
///   the world column (Eq. 7);
/// - world row: for each known external in-linking page r with targets T and
///   score alpha(r), weight (1/out(r)) * alpha(r)/world_score per target
///   (Eq. 8); the self-loop absorbs the rest (Eq. 9);
/// - teleport/dangling per Eq. 10 with `global_size` = N.
///
/// `world_score` is the peer's current world-node score (alpha_w at meeting
/// t-1), which weights the world row.
ExtendedGraphSystem BuildExtendedSystem(
    const graph::Subgraph& fragment, const WorldNode& world, double world_score,
    size_t global_size,
    WorldLinkWeighting weighting = WorldLinkWeighting::kScoreProportional);

}  // namespace core
}  // namespace jxp

#endif  // JXP_CORE_EXTENDED_GRAPH_H_
