#include "core/world_node.h"

#include <algorithm>

#include "common/check.h"

namespace jxp {
namespace core {

void WorldNode::Observe(graph::PageId page, uint32_t out_degree, double score,
                        std::span<const graph::PageId> targets, CombineMode mode,
                        bool authoritative) {
  JXP_CHECK_GT(out_degree, 0u) << "external in-linking page must have out-links";
  JXP_CHECK_GE(score, 0.0);
  auto [it, inserted] = entries_.try_emplace(page);
  ExternalPageInfo& info = it->second;
  if (inserted) {
    info.out_degree = out_degree;
    info.score = score;
    info.targets.assign(targets.begin(), targets.end());
    std::sort(info.targets.begin(), info.targets.end());
    info.targets.erase(std::unique(info.targets.begin(), info.targets.end()),
                       info.targets.end());
    return;
  }
  JXP_CHECK_EQ(info.out_degree, out_degree)
      << "conflicting out-degree reports for page " << page;
  if (authoritative) {
    info.score = score;
  } else {
    info.score = mode == CombineMode::kTakeMax ? std::max(info.score, score)
                                               : 0.5 * (info.score + score);
  }
  // Union the target lists (both sides sorted unique).
  std::vector<graph::PageId> merged;
  merged.reserve(info.targets.size() + targets.size());
  std::vector<graph::PageId> incoming(targets.begin(), targets.end());
  std::sort(incoming.begin(), incoming.end());
  std::set_union(info.targets.begin(), info.targets.end(), incoming.begin(), incoming.end(),
                 std::back_inserter(merged));
  merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
  info.targets = std::move(merged);
}

void WorldNode::ObserveDangling(graph::PageId page, double score, CombineMode mode,
                                bool authoritative) {
  JXP_CHECK_GE(score, 0.0);
  auto [it, inserted] = dangling_scores_.try_emplace(page, score);
  if (inserted || authoritative) {
    it->second = score;
    return;
  }
  it->second = mode == CombineMode::kTakeMax ? std::max(it->second, score)
                                             : 0.5 * (it->second + score);
}

void WorldNode::ScaleScores(double factor) {
  JXP_CHECK_GE(factor, 0.0);
  for (auto& [page, info] : entries_) info.score *= factor;
  for (auto& [page, score] : dangling_scores_) score *= factor;
}

double WorldNode::TotalDanglingScore() const {
  // Summed in page-id order, not map order: the map's iteration order
  // depends on its insertion history, and this sum feeds the world row, so
  // a peer restored from a state_io file must accumulate it identically.
  std::vector<std::pair<graph::PageId, double>> sorted(dangling_scores_.begin(),
                                                       dangling_scores_.end());
  std::sort(sorted.begin(), sorted.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  double total = 0;
  for (const auto& [page, score] : sorted) total += score;
  return total;
}

size_t WorldNode::NumLinks() const {
  size_t links = 0;
  for (const auto& [page, info] : entries_) links += info.targets.size();
  return links;
}

double WorldNode::WireBytes() const {
  return static_cast<double>(entries_.size()) * (8 + 4 + 8) +
         static_cast<double>(NumLinks()) * 8 +
         static_cast<double>(dangling_scores_.size()) * (8 + 8);
}

}  // namespace core
}  // namespace jxp
