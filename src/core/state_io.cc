#include "core/state_io.h"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/hash.h"

namespace jxp {
namespace core {

namespace {

constexpr char kMagic[] = "JXPSTATE v1";

uint64_t ChecksumOf(const std::string& body) {
  return HashString(body);
}

}  // namespace

Status SavePeerState(const JxpPeer& peer, const std::string& path) {
  std::ostringstream body;
  body.precision(17);
  body << kMagic << "\n";
  body << "peer " << peer.id() << "\n";
  body << "global_size " << peer.global_size() << "\n";
  body << "world_score " << peer.world_score() << "\n";

  const graph::Subgraph& fragment = peer.fragment();
  body << "pages " << fragment.NumLocalPages() << "\n";
  for (graph::Subgraph::LocalIndex i = 0; i < fragment.NumLocalPages(); ++i) {
    body << fragment.GlobalId(i) << " " << peer.local_scores()[i];
    const auto successors = fragment.Successors(i);
    body << " " << successors.size();
    for (graph::PageId s : successors) body << " " << s;
    body << "\n";
  }

  const WorldNode& world = peer.world_node();
  body << "world_entries " << world.NumEntries() << "\n";
  for (const auto& [page, info] : world.entries()) {
    body << page << " " << info.out_degree << " " << info.score << " "
         << info.targets.size();
    for (graph::PageId t : info.targets) body << " " << t;
    body << "\n";
  }
  body << "dangling " << world.dangling_scores().size() << "\n";
  for (const auto& [page, score] : world.dangling_scores()) {
    body << page << " " << score << "\n";
  }

  const std::string content = body.str();
  const std::string temp_path = path + ".tmp";
  {
    std::ofstream out(temp_path, std::ios::trunc);
    if (!out) return Status::IOError("cannot open " + temp_path + " for writing");
    out << content << "checksum " << ChecksumOf(content) << "\n";
    out.flush();
    if (!out) return Status::IOError("write error on " + temp_path);
  }
  if (std::rename(temp_path.c_str(), path.c_str()) != 0) {
    return Status::IOError("cannot rename " + temp_path + " to " + path);
  }
  return Status::OK();
}

StatusOr<JxpPeer> LoadPeerState(const std::string& path, const JxpOptions& options) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return Status::IOError("read error on " + path);
  const std::string content = buffer.str();

  // Split off and verify the checksum line.
  const size_t checksum_pos = content.rfind("checksum ");
  if (checksum_pos == std::string::npos || checksum_pos == 0) {
    return Status::Corruption(path + ": missing checksum");
  }
  const std::string body = content.substr(0, checksum_pos);
  uint64_t stored = 0;
  if (std::sscanf(content.c_str() + checksum_pos, "checksum %" SCNu64, &stored) != 1) {
    return Status::Corruption(path + ": malformed checksum line");
  }
  if (stored != ChecksumOf(body)) {
    return Status::Corruption(path + ": checksum mismatch");
  }

  std::istringstream parse(body);
  std::string line;
  if (!std::getline(parse, line) || line != kMagic) {
    return Status::Corruption(path + ": bad magic");
  }
  std::string keyword;
  uint32_t peer_id = 0;
  size_t global_size = 0;
  double world_score = 0;
  size_t num_pages = 0;
  if (!(parse >> keyword >> peer_id) || keyword != "peer") {
    return Status::Corruption(path + ": bad peer line");
  }
  if (!(parse >> keyword >> global_size) || keyword != "global_size") {
    return Status::Corruption(path + ": bad global_size line");
  }
  if (!(parse >> keyword >> world_score) || keyword != "world_score") {
    return Status::Corruption(path + ": bad world_score line");
  }
  if (!(parse >> keyword >> num_pages) || keyword != "pages") {
    return Status::Corruption(path + ": bad pages line");
  }
  std::vector<graph::PageId> pages(num_pages);
  std::vector<double> scores(num_pages);
  std::vector<std::vector<graph::PageId>> successors(num_pages);
  for (size_t i = 0; i < num_pages; ++i) {
    size_t count = 0;
    if (!(parse >> pages[i] >> scores[i] >> count)) {
      return Status::Corruption(path + ": bad page record");
    }
    successors[i].resize(count);
    for (size_t j = 0; j < count; ++j) {
      if (!(parse >> successors[i][j])) {
        return Status::Corruption(path + ": truncated successor list");
      }
    }
  }

  WorldNode world;
  size_t num_entries = 0;
  if (!(parse >> keyword >> num_entries) || keyword != "world_entries") {
    return Status::Corruption(path + ": bad world_entries line");
  }
  for (size_t e = 0; e < num_entries; ++e) {
    graph::PageId page = 0;
    uint32_t out_degree = 0;
    double score = 0;
    size_t count = 0;
    if (!(parse >> page >> out_degree >> score >> count)) {
      return Status::Corruption(path + ": bad world entry");
    }
    std::vector<graph::PageId> targets(count);
    for (size_t j = 0; j < count; ++j) {
      if (!(parse >> targets[j])) {
        return Status::Corruption(path + ": truncated world targets");
      }
    }
    if (count == 0) return Status::Corruption(path + ": world entry without targets");
    // Validate before WorldNode::Observe: its invariants are JXP_CHECKs,
    // and a tampered file must surface as Corruption, not a process abort.
    if (out_degree == 0) {
      return Status::Corruption(path + ": world entry with zero out-degree");
    }
    if (!(score >= 0)) {
      return Status::Corruption(path + ": negative world entry score");
    }
    world.Observe(page, out_degree, score, targets, options.combine_mode);
  }
  size_t num_dangling = 0;
  if (!(parse >> keyword >> num_dangling) || keyword != "dangling") {
    return Status::Corruption(path + ": bad dangling line");
  }
  for (size_t d = 0; d < num_dangling; ++d) {
    graph::PageId page = 0;
    double score = 0;
    if (!(parse >> page >> score)) {
      return Status::Corruption(path + ": bad dangling record");
    }
    if (!(score >= 0)) {
      return Status::Corruption(path + ": negative dangling score");
    }
    world.ObserveDangling(page, score, options.combine_mode);
  }

  if (num_pages == 0) return Status::Corruption(path + ": peer without pages");
  graph::Subgraph fragment =
      graph::Subgraph::FromKnowledge(std::move(pages), std::move(successors));
  if (fragment.NumLocalPages() != num_pages) {
    return Status::Corruption(path + ": duplicate pages in fragment");
  }
  // Scores were written in fragment order (sorted by global id), which
  // FromKnowledge preserves.
  if (!(world_score > 0) || world_score >= 1 || global_size < num_pages) {
    return Status::Corruption(path + ": implausible scalar state");
  }
  for (double s : scores) {
    // JXP scores live in (0, 1): they are entries of a (sub-)stochastic
    // distribution and the restore constructor assumes a positive score sum.
    if (!(s > 0) || s >= 1) {
      return Status::Corruption(path + ": implausible local score");
    }
  }
  return JxpPeer(peer_id, std::move(fragment), global_size, options, std::move(scores),
                 std::move(world), world_score);
}

}  // namespace core
}  // namespace jxp
