#include "core/baselines.h"

#include "common/check.h"
#include "markov/power_iteration.h"
#include "markov/sparse_matrix.h"

namespace jxp {
namespace core {

namespace {

/// Local PageRank per site over intra-site links only. Returns per-page
/// scores, each site's block normalized to sum 1.
std::vector<double> PerSiteLocalPageRank(const graph::Graph& global,
                                         const std::vector<uint32_t>& site_of,
                                         uint32_t num_sites,
                                         const pagerank::PageRankOptions& options) {
  JXP_CHECK_EQ(site_of.size(), global.NumNodes());
  // Dense page -> site-local index mapping.
  std::vector<uint32_t> local_index(global.NumNodes());
  std::vector<std::vector<graph::PageId>> site_pages(num_sites);
  for (graph::PageId p = 0; p < global.NumNodes(); ++p) {
    JXP_CHECK_LT(site_of[p], num_sites);
    local_index[p] = static_cast<uint32_t>(site_pages[site_of[p]].size());
    site_pages[site_of[p]].push_back(p);
  }

  std::vector<double> scores(global.NumNodes(), 0.0);
  for (uint32_t s = 0; s < num_sites; ++s) {
    const std::vector<graph::PageId>& pages = site_pages[s];
    if (pages.empty()) continue;
    markov::SparseMatrixBuilder builder(pages.size());
    for (uint32_t i = 0; i < pages.size(); ++i) {
      const graph::PageId p = pages[i];
      // Intra-site successors only; weights use the *local* out-degree, as
      // the ServerRank-style methods do.
      std::vector<uint32_t> local_successors;
      for (graph::PageId q : global.OutNeighbors(p)) {
        if (site_of[q] == s) local_successors.push_back(local_index[q]);
      }
      if (local_successors.empty()) continue;
      const double w = 1.0 / static_cast<double>(local_successors.size());
      for (uint32_t j : local_successors) builder.Add(i, j, w);
    }
    markov::PowerIterationOptions pi_options;
    pi_options.damping = options.damping;
    pi_options.tolerance = options.tolerance;
    pi_options.max_iterations = options.max_iterations;
    const markov::PowerIterationResult result =
        StationaryDistribution(builder.Build(), pi_options);
    for (uint32_t i = 0; i < pages.size(); ++i) scores[pages[i]] = result.distribution[i];
  }
  return scores;
}

}  // namespace

std::vector<double> ServerRankScores(const graph::Graph& global,
                                     const std::vector<uint32_t>& site_of,
                                     uint32_t num_sites,
                                     const pagerank::PageRankOptions& options) {
  const std::vector<double> local =
      PerSiteLocalPageRank(global, site_of, num_sites, options);

  // Site-level graph: transition mass proportional to inter-site link
  // counts (including intra-site links as self-loops).
  std::vector<std::vector<double>> site_links(num_sites,
                                              std::vector<double>(num_sites, 0.0));
  std::vector<double> site_out(num_sites, 0.0);
  for (graph::PageId p = 0; p < global.NumNodes(); ++p) {
    for (graph::PageId q : global.OutNeighbors(p)) {
      site_links[site_of[p]][site_of[q]] += 1.0;
      site_out[site_of[p]] += 1.0;
    }
  }
  markov::SparseMatrixBuilder builder(num_sites);
  for (uint32_t s = 0; s < num_sites; ++s) {
    if (site_out[s] == 0) continue;
    for (uint32_t t = 0; t < num_sites; ++t) {
      if (site_links[s][t] > 0) builder.Add(s, t, site_links[s][t] / site_out[s]);
    }
  }
  markov::PowerIterationOptions pi_options;
  pi_options.damping = options.damping;
  pi_options.tolerance = options.tolerance;
  pi_options.max_iterations = options.max_iterations;
  const markov::PowerIterationResult site_rank =
      StationaryDistribution(builder.Build(), pi_options);

  // Combine: global(p) ~ local(p) * siteRank(site(p)); normalize.
  std::vector<double> scores(global.NumNodes(), 0.0);
  double total = 0;
  for (graph::PageId p = 0; p < global.NumNodes(); ++p) {
    scores[p] = local[p] * site_rank.distribution[site_of[p]];
    total += scores[p];
  }
  JXP_CHECK_GT(total, 0.0);
  for (double& s : scores) s /= total;
  return scores;
}

std::vector<double> LocalOnlyScores(const graph::Graph& global,
                                    const std::vector<uint32_t>& site_of,
                                    uint32_t num_sites,
                                    const pagerank::PageRankOptions& options) {
  std::vector<double> scores = PerSiteLocalPageRank(global, site_of, num_sites, options);
  // Weight each site by its page count (no site-level ranking at all).
  std::vector<size_t> site_size(num_sites, 0);
  for (uint32_t s : site_of) site_size[s]++;
  double total = 0;
  for (graph::PageId p = 0; p < global.NumNodes(); ++p) {
    scores[p] *= static_cast<double>(site_size[site_of[p]]) /
                 static_cast<double>(global.NumNodes());
    total += scores[p];
  }
  if (total > 0) {
    for (double& s : scores) s /= total;
  }
  return scores;
}

}  // namespace core
}  // namespace jxp
