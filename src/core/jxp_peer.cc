#include "core/jxp_peer.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>

#include "common/timer.h"
#include "core/extended_graph.h"
#include "core/meeting_wire.h"
#include "markov/power_iteration.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace jxp {
namespace core {

namespace {

/// Meeting-path observables (DESIGN.md §6d). Counters and the non-"_ms"
/// histograms are pure functions of the simulated meetings and therefore
/// bit-identical across runs and thread counts; the "_ms" histograms carry
/// wall-clock-dependent timings.
struct MeetingMetrics {
  obs::Counter meetings = obs::MetricsRegistry::Global().GetCounter("jxp.meetings");
  obs::Counter merges = obs::MetricsRegistry::Global().GetCounter("jxp.merges");
  obs::Counter merges_rejected =
      obs::MetricsRegistry::Global().GetCounter("jxp.merges_rejected");
  obs::Histogram wire_bytes = obs::MetricsRegistry::Global().GetHistogram(
      "jxp.meeting.wire_bytes", p2p::WireByteBuckets());
  obs::Histogram merge_cpu_ms = obs::MetricsRegistry::Global().GetHistogram(
      "jxp.merge.cpu_ms", {0.1, 0.3, 1, 3, 10, 30, 100, 300, 1000, 3000});
  obs::Histogram pr_iterations = obs::MetricsRegistry::Global().GetHistogram(
      "jxp.merge.pr_iterations", {1, 2, 5, 10, 20, 50, 100, 200, 500});
  obs::Histogram world_update_ms = obs::MetricsRegistry::Global().GetHistogram(
      "jxp.merge.world_update_ms", {0.01, 0.03, 0.1, 0.3, 1, 3, 10, 30, 100});
  /// Measured-wire-mode observables: per-message encoded size, analytic /
  /// measured compression ratio (both deterministic), and codec CPU.
  obs::Histogram wire_message_bytes = obs::MetricsRegistry::Global().GetHistogram(
      "jxp.wire.message_bytes", p2p::WireByteBuckets());
  obs::Histogram wire_compression_ratio = obs::MetricsRegistry::Global().GetHistogram(
      "jxp.wire.compression_ratio", {0.5, 1, 1.5, 2, 2.5, 3, 4, 6, 8, 12});
  obs::Histogram wire_encode_ms = obs::MetricsRegistry::Global().GetHistogram(
      "jxp.wire.encode_ms", {0.001, 0.003, 0.01, 0.03, 0.1, 0.3, 1, 3, 10});
  obs::Histogram wire_decode_ms = obs::MetricsRegistry::Global().GetHistogram(
      "jxp.wire.decode_ms", {0.001, 0.003, 0.01, 0.03, 0.1, 0.3, 1, 3, 10});
};

MeetingMetrics& GetMeetingMetrics() {
  static MeetingMetrics metrics;
  return metrics;
}

/// Observables of the incremental local PageRank path (DESIGN.md §6j).
/// Counters and histograms are pure functions of the simulated meetings:
/// push order is deterministic, so they are bit-identical across runs and
/// thread counts.
struct IncrementalPrMetrics {
  obs::Counter solves =
      obs::MetricsRegistry::Global().GetCounter("jxp.pr.incremental.solves");
  obs::Counter pushes =
      obs::MetricsRegistry::Global().GetCounter("jxp.pr.incremental.pushes");
  obs::Counter fallbacks =
      obs::MetricsRegistry::Global().GetCounter("jxp.pr.incremental.fallbacks");
  obs::Counter reseeds =
      obs::MetricsRegistry::Global().GetCounter("jxp.pr.incremental.reseeds");
  obs::Histogram pushes_per_solve = obs::MetricsRegistry::Global().GetHistogram(
      "jxp.pr.incremental.pushes_per_solve",
      {1, 3, 10, 30, 100, 300, 1000, 3000, 10000});
  obs::Histogram touched_rows = obs::MetricsRegistry::Global().GetHistogram(
      "jxp.pr.incremental.touched_rows", {1, 2, 5, 10, 20, 50, 100, 200, 500});
  obs::Histogram dirty_rows = obs::MetricsRegistry::Global().GetHistogram(
      "jxp.pr.incremental.dirty_rows", {1, 2, 5, 10, 20, 50, 100, 200, 500});
};

IncrementalPrMetrics& GetIncrementalPrMetrics() {
  static IncrementalPrMetrics metrics;
  return metrics;
}

/// Numerical floor for the world score; Theorem 5.3 keeps the true value
/// well above this, so the floor only guards against pathological inputs.
constexpr double kWorldScoreFloor = 1e-12;

/// Network-wide constants of the distributed page-count sketch; all peers
/// must share them for sketch unions to be meaningful.
constexpr size_t kPageSketchBuckets = 256;
constexpr uint64_t kPageSketchSeed = 0x9a6e5c0117ULL;

double CombineScores(CombineMode mode, double a, double b) {
  return mode == CombineMode::kTakeMax ? std::max(a, b) : 0.5 * (a + b);
}

}  // namespace

JxpPeer::JxpPeer(p2p::PeerId id, graph::Subgraph fragment, size_t global_size,
                 const JxpOptions& options)
    : id_(id),
      fragment_(std::move(fragment)),
      global_size_(global_size),
      options_(options),
      page_sketch_(kPageSketchBuckets, kPageSketchSeed) {
  JXP_CHECK_GT(fragment_.NumLocalPages(), 0u) << "peer with empty fragment";
  JXP_CHECK_GE(global_size_, fragment_.NumLocalPages());
  SeedPageSketch();
  RefreshGlobalSizeEstimate();
  // Algorithm 1: uniform initial scores, then one local PR run.
  scores_.assign(fragment_.NumLocalPages(), 1.0 / static_cast<double>(global_size_));
  RunLocalPageRank();
}

JxpPeer::JxpPeer(p2p::PeerId id, graph::Subgraph fragment, size_t global_size,
                 const JxpOptions& options, std::vector<double> scores, WorldNode world,
                 double world_score)
    : id_(id),
      fragment_(std::move(fragment)),
      global_size_(global_size),
      options_(options),
      scores_(std::move(scores)),
      world_score_(world_score),
      world_(std::move(world)),
      page_sketch_(kPageSketchBuckets, kPageSketchSeed) {
  JXP_CHECK_GT(fragment_.NumLocalPages(), 0u);
  JXP_CHECK_EQ(scores_.size(), fragment_.NumLocalPages());
  JXP_CHECK_GE(global_size_, fragment_.NumLocalPages());
  JXP_CHECK_GT(world_score_, 0.0);
  JXP_CHECK_LT(world_score_, 1.0);
  SeedPageSketch();
}

void JxpPeer::SeedPageSketch() {
  // A crawler knows its own pages plus every link target it saw; both count
  // as distinct pages of the global graph.
  for (graph::Subgraph::LocalIndex i = 0; i < fragment_.NumLocalPages(); ++i) {
    page_sketch_.Add(fragment_.GlobalId(i));
    for (graph::PageId successor : fragment_.Successors(i)) {
      page_sketch_.Add(successor);
    }
  }
}

void JxpPeer::RefreshGlobalSizeEstimate() {
  if (!options_.estimate_global_size) return;
  const double estimate = page_sketch_.EstimateCardinality();
  global_size_ = std::max<size_t>(fragment_.NumLocalPages() + 1,
                                  static_cast<size_t>(estimate + 0.5));
}

double JxpPeer::ScoreOfGlobal(graph::PageId page) const {
  const graph::Subgraph::LocalIndex i = fragment_.LocalIndexOf(page);
  return i == graph::Subgraph::kNotLocal ? 0.0 : scores_[i];
}

std::vector<uint8_t> JxpPeer::EncodeMeetingBytes() const {
  const PeerView view = MakeView();
  return EncodeMeetingMessage(*view.fragment, view.scores, view.world,
                              options_.estimate_global_size ? view.page_sketch
                                                            : nullptr);
}

RemoteMeetingApply JxpPeer::ApplyMeetingBytes(std::span<const uint8_t> bytes) {
  RemoteMeetingApply result;
  DecodedMeetingMessage decoded = DecodeMeetingMessage(bytes);
  result.bytes_consumed = decoded.bytes_consumed;
  result.salvaged = !decoded.error.ok();
  if (decoded.fragment == nullptr) return result;  // Degenerates to a drop.
  PeerView view;
  view.owned_fragment = decoded.fragment;
  view.fragment = view.owned_fragment.get();
  view.scores = std::move(decoded.scores);
  view.world = std::move(decoded.world);
  view.owned_sketch = decoded.sketch;
  view.page_sketch = view.owned_sketch.get();
  view.wire_bytes = static_cast<double>(decoded.bytes_consumed);
  result.cpu_millis = ProcessMeeting(view);
  result.pr_iterations = last_pr_iterations_;
  result.applied = true;
  return result;
}

MeetingOutcome JxpPeer::Meet(JxpPeer& initiator, JxpPeer& partner) {
  return Meet(initiator, partner, p2p::MeetingFaultDecision());
}

MeetingOutcome JxpPeer::Meet(JxpPeer& initiator, JxpPeer& partner,
                             const p2p::MeetingFaultDecision& faults) {
  JXP_CHECK_NE(initiator.id_, partner.id_) << "peer meeting itself";
  JXP_CHECK(!faults.abandoned) << "abandoned meeting must not run";
  JXP_CHECK(initiator.options_.merge_mode == partner.options_.merge_mode &&
            initiator.options_.combine_mode == partner.options_.combine_mode &&
            initiator.options_.wire_mode == partner.options_.wire_mode)
      << "meeting peers must share JXP options";
  if (initiator.options_.wire_mode == MeetingWireMode::kMeasured) {
    return MeetMeasured(initiator, partner, faults);
  }
  obs::TraceSpan span("jxp.meeting");
  span.AddAttr("initiator", initiator.id_);
  span.AddAttr("partner", partner.id_);

  // Snapshot both messages first: the exchange is simultaneous, so each side
  // must see the other's pre-meeting state.
  PeerView initiator_view = initiator.MakeView();
  PeerView partner_view = partner.MakeView();

  MeetingOutcome outcome;
  outcome.bytes_sent_initiator = initiator_view.wire_bytes;
  outcome.bytes_sent_partner = partner_view.wire_bytes;
  outcome.wire_bytes = initiator_view.wire_bytes + partner_view.wire_bytes;
  outcome.estimated_bytes_initiator = outcome.bytes_sent_initiator;
  outcome.estimated_bytes_partner = outcome.bytes_sent_partner;
  outcome.estimated_wire_bytes = outcome.wire_bytes;

  // Resolve the transport faults of each direction: what (if anything) of
  // the sender's message reaches the receiver. A truncation so severe that
  // not even one page arrives degenerates to a drop.
  PeerView truncated_to_initiator;
  PeerView truncated_to_partner;
  const PeerView* message_to_initiator = &partner_view;
  const PeerView* message_to_partner = &initiator_view;
  double delivered_to_initiator = faults.drop_to_initiator ? 0.0 : 1.0;
  double delivered_to_partner = faults.drop_to_partner ? 0.0 : 1.0;
  if (delivered_to_initiator > 0 && faults.keep_to_initiator < 1.0) {
    if (TruncateView(partner_view, faults.keep_to_initiator, truncated_to_initiator)) {
      message_to_initiator = &truncated_to_initiator;
      delivered_to_initiator = faults.keep_to_initiator;
    } else {
      delivered_to_initiator = 0.0;
    }
  }
  if (delivered_to_partner > 0 && faults.keep_to_partner < 1.0) {
    if (TruncateView(initiator_view, faults.keep_to_partner, truncated_to_partner)) {
      message_to_partner = &truncated_to_partner;
      delivered_to_partner = faults.keep_to_partner;
    } else {
      delivered_to_partner = 0.0;
    }
  }

  // A side applies its incoming message only when something was delivered
  // and the side did not crash mid-meeting; a suppressed side's state does
  // not advance at all (no meeting count, no history entry).
  outcome.applied_initiator = delivered_to_initiator > 0 && !faults.crash_initiator;
  outcome.applied_partner = delivered_to_partner > 0 && !faults.crash_partner;
  if (outcome.applied_initiator) {
    outcome.cpu_millis_initiator = initiator.ProcessMeeting(*message_to_initiator);
    outcome.pr_iterations_initiator = initiator.last_pr_iterations_;
  }
  if (outcome.applied_partner) {
    outcome.cpu_millis_partner = partner.ProcessMeeting(*message_to_partner);
    outcome.pr_iterations_partner = partner.last_pr_iterations_;
  }

  // Wasted-byte accounting, attributed to the sender: everything the sender
  // shipped beyond what the receiver actually applied.
  outcome.wasted_bytes_initiator =
      outcome.bytes_sent_initiator *
      (1.0 - (outcome.applied_partner ? delivered_to_partner : 0.0));
  outcome.wasted_bytes_partner =
      outcome.bytes_sent_partner *
      (1.0 - (outcome.applied_initiator ? delivered_to_initiator : 0.0));
  outcome.wasted_bytes = outcome.wasted_bytes_initiator + outcome.wasted_bytes_partner;

  if (obs::Enabled()) {
    MeetingMetrics& metrics = GetMeetingMetrics();
    metrics.meetings.Increment();
    metrics.wire_bytes.Observe(outcome.wire_bytes);
  }
  if (span.active()) {
    if (!faults.Clean()) {
      span.AddAttr("applied_initiator", outcome.applied_initiator);
      span.AddAttr("applied_partner", outcome.applied_partner);
      span.AddAttr("wasted_bytes", outcome.wasted_bytes);
    }
    span.AddAttr("wire_bytes", outcome.wire_bytes);
    span.AddAttr("cpu_ms_initiator", outcome.cpu_millis_initiator);
    span.AddAttr("cpu_ms_partner", outcome.cpu_millis_partner);
    span.AddAttr("pr_iterations",
                 outcome.pr_iterations_initiator + outcome.pr_iterations_partner);
  }
  return outcome;
}

MeetingOutcome JxpPeer::MeetMeasured(JxpPeer& initiator, JxpPeer& partner,
                                     const p2p::MeetingFaultDecision& faults) {
  obs::TraceSpan span("jxp.meeting");
  span.AddAttr("initiator", initiator.id_);
  span.AddAttr("partner", partner.id_);
  span.AddAttr("wire_mode", "measured");

  PeerView initiator_view = initiator.MakeView();
  PeerView partner_view = partner.MakeView();

  // Serialize both messages through the wire codec; from here on the bytes
  // *are* the message, and faults act on them.
  std::optional<ThreadCpuTimer> encode_timer;
  if (obs::Enabled()) encode_timer.emplace();
  const std::vector<uint8_t> initiator_bytes = EncodeMeetingMessage(
      *initiator_view.fragment, initiator_view.scores, initiator_view.world,
      initiator.options_.estimate_global_size ? initiator_view.page_sketch : nullptr);
  const std::vector<uint8_t> partner_bytes = EncodeMeetingMessage(
      *partner_view.fragment, partner_view.scores, partner_view.world,
      partner.options_.estimate_global_size ? partner_view.page_sketch : nullptr);
  if (encode_timer.has_value()) {
    GetMeetingMetrics().wire_encode_ms.Observe(encode_timer->ElapsedMillis());
  }

  MeetingOutcome outcome;
  outcome.bytes_sent_initiator = static_cast<double>(initiator_bytes.size());
  outcome.bytes_sent_partner = static_cast<double>(partner_bytes.size());
  outcome.wire_bytes = outcome.bytes_sent_initiator + outcome.bytes_sent_partner;
  outcome.estimated_bytes_initiator = initiator_view.wire_bytes;
  outcome.estimated_bytes_partner = partner_view.wire_bytes;
  outcome.estimated_wire_bytes = initiator_view.wire_bytes + partner_view.wire_bytes;

  // Resolves one direction's transport: truncation keeps a byte prefix,
  // corruption flips one bit of what arrives, and the receiver's decoder
  // salvages the intact frame prefix. Returns false when nothing usable
  // arrived (drop, or damage so early that no page decoded); the delivered
  // fraction is measured in decoded bytes over sent bytes.
  const auto resolve = [](const std::vector<uint8_t>& sent, bool drop, double keep,
                          bool corrupt, double corrupt_offset, int corrupt_bit,
                          PeerView& received, double& fraction) -> bool {
    fraction = 0;
    if (drop || sent.empty()) return false;
    std::vector<uint8_t> delivered = sent;
    if (keep < 1.0) {
      delivered.resize(static_cast<size_t>(keep * static_cast<double>(delivered.size())));
      if (delivered.empty()) return false;
    }
    if (corrupt) {
      const size_t at = std::min(
          delivered.size() - 1,
          static_cast<size_t>(corrupt_offset * static_cast<double>(delivered.size())));
      delivered[at] ^= static_cast<uint8_t>(1u << (corrupt_bit & 7));
    }
    DecodedMeetingMessage decoded = DecodeMeetingMessage(delivered);
    if (decoded.fragment == nullptr) return false;
    received.owned_fragment = decoded.fragment;
    received.fragment = received.owned_fragment.get();
    received.scores = std::move(decoded.scores);
    received.world = std::move(decoded.world);
    received.owned_sketch = decoded.sketch;
    received.page_sketch = received.owned_sketch.get();
    received.wire_bytes = static_cast<double>(decoded.bytes_consumed);
    fraction = static_cast<double>(decoded.bytes_consumed) /
               static_cast<double>(sent.size());
    return true;
  };

  std::optional<ThreadCpuTimer> decode_timer;
  if (obs::Enabled()) decode_timer.emplace();
  PeerView to_initiator;
  PeerView to_partner;
  double delivered_to_initiator = 0;
  double delivered_to_partner = 0;
  const bool initiator_got_message = resolve(
      partner_bytes, faults.drop_to_initiator, faults.keep_to_initiator,
      faults.corrupt_to_initiator, faults.corrupt_offset_to_initiator,
      faults.corrupt_bit_to_initiator, to_initiator, delivered_to_initiator);
  const bool partner_got_message = resolve(
      initiator_bytes, faults.drop_to_partner, faults.keep_to_partner,
      faults.corrupt_to_partner, faults.corrupt_offset_to_partner,
      faults.corrupt_bit_to_partner, to_partner, delivered_to_partner);
  if (decode_timer.has_value()) {
    GetMeetingMetrics().wire_decode_ms.Observe(decode_timer->ElapsedMillis());
  }

  outcome.applied_initiator = initiator_got_message && !faults.crash_initiator;
  outcome.applied_partner = partner_got_message && !faults.crash_partner;
  if (outcome.applied_initiator) {
    outcome.cpu_millis_initiator = initiator.ProcessMeeting(to_initiator);
    outcome.pr_iterations_initiator = initiator.last_pr_iterations_;
  }
  if (outcome.applied_partner) {
    outcome.cpu_millis_partner = partner.ProcessMeeting(to_partner);
    outcome.pr_iterations_partner = partner.last_pr_iterations_;
  }

  // Same wasted-byte convention as the estimated path, but against measured
  // sizes: what a sender shipped minus what its receiver decoded and used.
  outcome.wasted_bytes_initiator =
      outcome.bytes_sent_initiator *
      (1.0 - (outcome.applied_partner ? delivered_to_partner : 0.0));
  outcome.wasted_bytes_partner =
      outcome.bytes_sent_partner *
      (1.0 - (outcome.applied_initiator ? delivered_to_initiator : 0.0));
  outcome.wasted_bytes = outcome.wasted_bytes_initiator + outcome.wasted_bytes_partner;

  if (obs::Enabled()) {
    MeetingMetrics& metrics = GetMeetingMetrics();
    metrics.meetings.Increment();
    metrics.wire_bytes.Observe(outcome.wire_bytes);
    metrics.wire_message_bytes.Observe(outcome.bytes_sent_initiator);
    metrics.wire_message_bytes.Observe(outcome.bytes_sent_partner);
    if (outcome.bytes_sent_initiator > 0) {
      metrics.wire_compression_ratio.Observe(outcome.estimated_bytes_initiator /
                                             outcome.bytes_sent_initiator);
    }
    if (outcome.bytes_sent_partner > 0) {
      metrics.wire_compression_ratio.Observe(outcome.estimated_bytes_partner /
                                             outcome.bytes_sent_partner);
    }
  }
  if (span.active()) {
    if (!faults.Clean()) {
      span.AddAttr("applied_initiator", outcome.applied_initiator);
      span.AddAttr("applied_partner", outcome.applied_partner);
      span.AddAttr("wasted_bytes", outcome.wasted_bytes);
    }
    span.AddAttr("wire_bytes", outcome.wire_bytes);
    span.AddAttr("estimated_wire_bytes", outcome.estimated_wire_bytes);
    span.AddAttr("cpu_ms_initiator", outcome.cpu_millis_initiator);
    span.AddAttr("cpu_ms_partner", outcome.cpu_millis_partner);
    span.AddAttr("pr_iterations",
                 outcome.pr_iterations_initiator + outcome.pr_iterations_partner);
  }
  return outcome;
}

bool JxpPeer::TruncateView(const PeerView& full, double keep_fraction, PeerView& out) {
  const graph::Subgraph& frag = *full.fragment;
  const size_t n = frag.NumLocalPages();
  const size_t k =
      static_cast<size_t>(keep_fraction * static_cast<double>(n));
  if (k == 0) return false;
  if (k >= n) {
    // Nothing was actually cut; the "truncated" message is the full one.
    out = full;
    return true;
  }
  // The page table is serialized in local-index order, so the first k
  // records arrive complete (each with its full successor list).
  std::vector<graph::PageId> pages;
  std::vector<std::vector<graph::PageId>> successors;
  pages.reserve(k);
  successors.reserve(k);
  for (graph::Subgraph::LocalIndex i = 0; i < k; ++i) {
    pages.push_back(frag.GlobalId(i));
    const auto succ = frag.Successors(i);
    successors.emplace_back(succ.begin(), succ.end());
  }
  auto owned = std::make_shared<graph::Subgraph>(
      graph::Subgraph::FromKnowledge(std::move(pages), std::move(successors)));
  out.scores.assign(k, 0.0);
  for (graph::Subgraph::LocalIndex i = 0; i < k; ++i) {
    const graph::Subgraph::LocalIndex j = owned->LocalIndexOf(frag.GlobalId(i));
    JXP_CHECK_NE(j, graph::Subgraph::kNotLocal);
    out.scores[j] = full.scores[i];
  }
  out.fragment = owned.get();
  out.owned_fragment = std::move(owned);
  // The world node and page sketch ride at the tail of the message: lost.
  out.world = WorldNode();
  out.page_sketch = nullptr;
  out.wire_bytes = full.wire_bytes * keep_fraction;
  return true;
}

JxpPeer::PeerView JxpPeer::MakeView() const {
  PeerView view;
  view.fragment = &fragment_;
  view.scores = scores_;
  view.world = world_;
  view.page_sketch = &page_sketch_;
  view.wire_bytes = MessageWireBytes();
  if (options_.estimate_global_size) {
    view.wire_bytes += static_cast<double>(page_sketch_.SizeBytes());
  }
  // A cheating peer corrupts its outgoing message (Section 7's open
  // problem; see AttackOptions).
  switch (options_.attack.type) {
    case AttackOptions::Type::kNone:
      break;
    case AttackOptions::Type::kScoreInflation: {
      const double factor = options_.attack.inflation_factor;
      for (double& s : view.scores) s *= factor;
      view.world.ScaleScores(factor);
      break;
    }
    case AttackOptions::Type::kRandomScores: {
      Random noise(options_.attack.seed ^ (num_meetings_ * 0x9e3779b9ULL));
      for (double& s : view.scores) s = noise.NextDouble();
      break;
    }
  }
  return view;
}

bool JxpPeer::ShouldRejectMessage(const PeerView& partner) const {
  if (!options_.defense.enabled) return false;
  // Mass test: an honest score list is part of a distribution.
  double mass = 0;
  for (double s : partner.scores) mass += s;
  if (mass > options_.defense.max_reported_mass) return true;
  // Overlap-divergence test: two honest peers' scores for a shared page are
  // underestimates of the same PageRank and typically close, so the median
  // |log(reported/own)| over the overlap is small; broad inflation and
  // random noise both push it up. (Two-sided so that undervaluing garbage
  // is caught as well.)
  std::vector<double> divergences;
  const graph::Subgraph& other = *partner.fragment;
  for (graph::Subgraph::LocalIndex k = 0; k < other.NumLocalPages(); ++k) {
    const graph::Subgraph::LocalIndex mine = fragment_.LocalIndexOf(other.GlobalId(k));
    if (mine == graph::Subgraph::kNotLocal) continue;
    if (scores_[mine] <= 0 || partner.scores[k] <= 0) {
      divergences.push_back(std::numeric_limits<double>::infinity());
      continue;
    }
    divergences.push_back(std::abs(std::log(partner.scores[k] / scores_[mine])));
  }
  if (divergences.size() < options_.defense.min_overlap_to_judge) return false;
  std::nth_element(divergences.begin(), divergences.begin() + divergences.size() / 2,
                   divergences.end());
  const double median = divergences[divergences.size() / 2];
  return median > std::log(options_.defense.max_overlap_divergence);
}

double JxpPeer::ProcessMeeting(const PeerView& partner) {
  obs::TraceSpan span("jxp.process_meeting");
  span.AddAttr("peer", id_);
  span.AddAttr("merge_mode",
               options_.merge_mode == MergeMode::kLightWeight ? "light_weight"
                                                              : "full_merge");
  CpuTimer timer;
  if (ShouldRejectMessage(partner)) {
    ++num_meetings_;
    ++rejected_meetings_;
    meeting_cpu_millis_.push_back(timer.ElapsedMillis());
    world_score_history_.push_back(world_score_);
    if (obs::Enabled()) GetMeetingMetrics().merges_rejected.Increment();
    span.AddAttr("rejected", true);
    return meeting_cpu_millis_.back();
  }
  if (options_.estimate_global_size && partner.page_sketch != nullptr) {
    page_sketch_.UnionWith(*partner.page_sketch);
    RefreshGlobalSizeEstimate();
  }
  if (options_.merge_mode == MergeMode::kLightWeight) {
    ProcessLightWeight(partner);
  } else {
    ProcessFullMerge(partner);
  }
  const double millis = timer.ElapsedMillis();
  ++num_meetings_;
  meeting_cpu_millis_.push_back(millis);
  world_score_history_.push_back(world_score_);
  if (obs::Enabled()) {
    MeetingMetrics& metrics = GetMeetingMetrics();
    metrics.merges.Increment();
    metrics.merge_cpu_ms.Observe(millis);
    metrics.pr_iterations.Observe(last_pr_iterations_);
  }
  if (span.active()) {
    span.AddAttr("rejected", false);
    span.AddAttr("pr_iterations", last_pr_iterations_);
    span.AddAttr("cpu_ms", millis);
  }
  return millis;
}

bool JxpPeer::HasLocallyConverged(size_t window, double tolerance) const {
  JXP_CHECK_GT(window, 0u);
  JXP_CHECK_GE(tolerance, 0.0);
  if (world_score_history_.size() < window) return false;
  const double oldest = world_score_history_[world_score_history_.size() - window];
  return std::abs(oldest - world_score_) <= tolerance;
}

void JxpPeer::CombineLocalScore(graph::Subgraph::LocalIndex i, double reported) {
  scores_[i] = CombineScores(options_.combine_mode, scores_[i], reported);
}

void JxpPeer::ProcessLightWeight(const PeerView& partner) {
  std::optional<ThreadCpuTimer> world_timer;
  if (obs::Enabled()) world_timer.emplace();
  const graph::Subgraph& other = *partner.fragment;
  // Fold the partner's local pages into our view: overlapping pages combine
  // score lists; external pages that link into our fragment enter the world
  // node with their out-degree, score, and the in-links they contribute.
  std::vector<graph::PageId> targets;
  for (graph::Subgraph::LocalIndex k = 0; k < other.NumLocalPages(); ++k) {
    const graph::PageId page = other.GlobalId(k);
    const double reported = partner.scores[k];
    const graph::Subgraph::LocalIndex mine = fragment_.LocalIndexOf(page);
    if (mine != graph::Subgraph::kNotLocal) {
      CombineLocalScore(mine, reported);
      continue;
    }
    if (other.GlobalOutDegree(k) == 0) {
      // External dangling page: its mass reaches us via the uniform
      // redistribution, which the world row models in aggregate.
      world_.ObserveDangling(page, reported, options_.combine_mode,
                             options_.authoritative_refresh);
      continue;
    }
    targets.clear();
    for (graph::PageId successor : other.Successors(k)) {
      if (fragment_.Contains(successor)) targets.push_back(successor);
    }
    if (!targets.empty()) {
      world_.Observe(page, static_cast<uint32_t>(other.GlobalOutDegree(k)), reported,
                     targets, options_.combine_mode, options_.authoritative_refresh);
    }
  }
  // Fold the partner's world node: entries about our own pages refresh our
  // score list; entries about external pages that link into our fragment
  // extend our world node (the "union of the links represented in them").
  for (const auto& [page, info] : partner.world.entries()) {
    const graph::Subgraph::LocalIndex mine = fragment_.LocalIndexOf(page);
    if (mine != graph::Subgraph::kNotLocal) {
      CombineLocalScore(mine, info.score);
      continue;
    }
    targets.clear();
    for (graph::PageId target : info.targets) {
      if (fragment_.Contains(target)) targets.push_back(target);
    }
    if (!targets.empty()) {
      world_.Observe(page, info.out_degree, info.score, targets, options_.combine_mode);
    }
  }
  for (const auto& [page, score] : partner.world.dangling_scores()) {
    const graph::Subgraph::LocalIndex mine = fragment_.LocalIndexOf(page);
    if (mine != graph::Subgraph::kNotLocal) {
      CombineLocalScore(mine, score);
    } else {
      world_.ObserveDangling(page, score, options_.combine_mode);
    }
  }
  if (world_timer.has_value()) {
    GetMeetingMetrics().world_update_ms.Observe(world_timer->ElapsedMillis());
  }
  RunLocalPageRank();
}

void JxpPeer::ProcessFullMerge(const PeerView& partner) {
  std::optional<ThreadCpuTimer> world_timer;
  if (obs::Enabled()) world_timer.emplace();
  const graph::Subgraph& other = *partner.fragment;
  // Merged graph G_M = union of the two fragments with full out-link
  // knowledge; merged score list L_M combines overlapping pages.
  graph::Subgraph merged = graph::Subgraph::Merge(fragment_, other);
  const size_t m = merged.NumLocalPages();
  std::vector<double> merged_scores(m, 0.0);
  for (graph::Subgraph::LocalIndex i = 0; i < fragment_.NumLocalPages(); ++i) {
    merged_scores[merged.LocalIndexOf(fragment_.GlobalId(i))] = scores_[i];
  }
  for (graph::Subgraph::LocalIndex k = 0; k < other.NumLocalPages(); ++k) {
    const graph::Subgraph::LocalIndex mi = merged.LocalIndexOf(other.GlobalId(k));
    if (fragment_.Contains(other.GlobalId(k))) {
      merged_scores[mi] =
          CombineScores(options_.combine_mode, merged_scores[mi], partner.scores[k]);
    } else {
      merged_scores[mi] = partner.scores[k];
    }
  }

  // Merged world node W_M: union of both world nodes minus links that became
  // explicit in G_M (paper: T_M = (T_A ∪ T_B) − E_M; entries whose source
  // page is itself in V_M are dropped because those links are now edges).
  WorldNode merged_world;
  const auto absorb_world = [&](const WorldNode& w) {
    for (const auto& [page, info] : w.entries()) {
      if (merged.Contains(page)) continue;
      merged_world.Observe(page, info.out_degree, info.score, info.targets,
                           options_.combine_mode);
    }
    for (const auto& [page, score] : w.dangling_scores()) {
      if (merged.Contains(page)) continue;
      merged_world.ObserveDangling(page, score, options_.combine_mode);
    }
  };
  absorb_world(world_);
  absorb_world(partner.world);
  if (world_timer.has_value()) {
    GetMeetingMetrics().world_update_ms.Observe(world_timer->ElapsedMillis());
  }

  // World-node score per Eq. 1, then PageRank on G_M + W_M, with the same
  // self-consistent-denominator guard as RunLocalPageRank.
  double local_mass = 0;
  for (double s : merged_scores) local_mass += s;
  double denominator = std::max(1.0 - local_mass, kWorldScoreFloor);
  std::vector<double> init = merged_scores;
  init.push_back(denominator);
  markov::PowerIterationOptions pi_options;
  pi_options.damping = options_.damping;
  pi_options.tolerance = options_.pr_tolerance;
  pi_options.max_iterations = options_.pr_max_iterations;
  markov::PowerIterationResult result;
  int total_iterations = 0;
  // The merged graph lives only for this meeting, but the guard loop below
  // still reuses its local rows: only the world row is regenerated per
  // denominator.
  ExtendedSystemCache merged_cache;
  const ExtendedGraphSystem* system =
      &merged_cache.Prepare(merged, merged_world, denominator, global_size_,
                            options_.uniform_world_links
                                ? WorldLinkWeighting::kUniform
                                : WorldLinkWeighting::kScoreProportional);
  for (int guard = 0; guard < 64; ++guard) {
    ever_clamped_world_row_ |= system->world_row_clamped;
    result = StationaryDistribution(system->matrix, system->teleport, system->dangling,
                                    init, pi_options);
    total_iterations += result.iterations;
    if (result.distribution[m] <= denominator + 1e-13) break;
    denominator = result.distribution[m];
    init = result.distribution;
    system = &merged_cache.Rescale(denominator);
  }
  last_pr_iterations_ = total_iterations;
  const double pr_world = result.distribution[m];
  // Score update: Eq. 2 re-weights external (world-node) scores in the
  // baseline mode; Eq. 3 leaves them unchanged in take-max mode.
  if (options_.combine_mode == CombineMode::kAverage) {
    merged_world.ScaleScores(pr_world / denominator);
  }

  // Project back onto our fragment (the disconnect step of Figure 1):
  // local scores from the merged result ...
  for (graph::Subgraph::LocalIndex i = 0; i < fragment_.NumLocalPages(); ++i) {
    scores_[i] = result.distribution[merged.LocalIndexOf(fragment_.GlobalId(i))];
  }
  // ... and a new world node: W_M's links into V_A, plus the partner's pages
  // (E_B links) that point into V_A, now valued at their merged PR scores.
  WorldNode new_world;
  std::vector<graph::PageId> targets;
  for (const auto& [page, info] : merged_world.entries()) {
    targets.clear();
    for (graph::PageId t : info.targets) {
      if (fragment_.Contains(t)) targets.push_back(t);
    }
    if (!targets.empty()) {
      new_world.Observe(page, info.out_degree, info.score, targets, options_.combine_mode);
    }
  }
  for (const auto& [page, score] : merged_world.dangling_scores()) {
    new_world.ObserveDangling(page, score, options_.combine_mode);
  }
  for (graph::Subgraph::LocalIndex k = 0; k < other.NumLocalPages(); ++k) {
    const graph::PageId page = other.GlobalId(k);
    if (fragment_.Contains(page)) continue;
    const double score = result.distribution[merged.LocalIndexOf(page)];
    if (other.GlobalOutDegree(k) == 0) {
      new_world.ObserveDangling(page, score, options_.combine_mode,
                                options_.authoritative_refresh);
      continue;
    }
    targets.clear();
    for (graph::PageId successor : other.Successors(k)) {
      if (fragment_.Contains(successor)) targets.push_back(successor);
    }
    if (!targets.empty()) {
      new_world.Observe(page, static_cast<uint32_t>(other.GlobalOutDegree(k)), score,
                        targets, options_.combine_mode, options_.authoritative_refresh);
    }
  }
  world_ = std::move(new_world);
  // The world node again represents *everything* outside V_A (including the
  // partner's pages), so its score is the complement of the local mass.
  double my_mass = 0;
  for (double s : scores_) my_mass += s;
  world_score_ = std::max(1.0 - my_mass, kWorldScoreFloor);
}

void JxpPeer::RunLocalPageRank() {
  if (options_.incremental.enabled) {
    RunLocalPageRankIncremental();
  } else {
    RunLocalPageRankFull();
  }
}

void JxpPeer::RunLocalPageRankFull() {
  const size_t n = fragment_.NumLocalPages();
  // The world row's weights are alpha(r)/alpha_w^{t-1} (Eq. 8). Using the
  // *previous run's* world score as the denominator — not the post-combine
  // complement 1 - sum(scores), which the take-max combination can push
  // below it — keeps the row's flow per entry at most alpha(r)/out(r).
  //
  // One subtlety the paper's proof glosses over: safety (Theorem 5.3) needs
  // the run's *resulting* world score to stay <= the denominator, otherwise
  // the realized flow alpha_w^t * p_wi exceeds alpha(r)/out(r) and scores
  // can transiently overestimate the true PageRank. We therefore iterate to
  // a self-consistent denominator: if the result exceeds it, re-run with
  // the larger value (the map D -> alpha_w(D) is increasing and bounded by
  // 1, so this converges; in the normal monotone regime the first run
  // already satisfies the condition and the loop body executes once).
  double denominator = std::max(world_score_, kWorldScoreFloor);
  double local_mass = 0;
  for (double s : scores_) local_mass += s;
  std::vector<double> init = scores_;
  init.push_back(std::max(1.0 - local_mass, kWorldScoreFloor));

  markov::PowerIterationOptions pi_options;
  pi_options.damping = options_.damping;
  pi_options.tolerance = options_.pr_tolerance;
  pi_options.max_iterations = options_.pr_max_iterations;

  markov::PowerIterationResult result;
  int total_iterations = 0;
  // The cache keeps the local rows across meetings (the world row is
  // regenerated per pass, its scores change at every meeting) and the guard
  // loop below only rescales the world row per denominator.
  const ExtendedGraphSystem* system =
      &extended_cache_.Prepare(fragment_, world_, denominator, global_size_,
                               options_.uniform_world_links
                                   ? WorldLinkWeighting::kUniform
                                   : WorldLinkWeighting::kScoreProportional);
  for (int guard = 0; guard < 64; ++guard) {
    ever_clamped_world_row_ |= system->world_row_clamped;
    result = StationaryDistribution(system->matrix, system->teleport, system->dangling,
                                    init, pi_options);
    total_iterations += result.iterations;
    incremental_stats_.full_work_entries +=
        static_cast<size_t>(result.iterations) * system->matrix.NumEntries();
    const double pr_world = result.distribution[n];
    if (pr_world <= denominator + 1e-13) break;
    denominator = pr_world;
    init = result.distribution;  // Warm start for the re-run.
    system = &extended_cache_.Rescale(denominator);
  }
  last_pr_iterations_ = total_iterations;
  ++incremental_stats_.full_solves;
  incremental_stats_.full_iterations += static_cast<size_t>(total_iterations);

  const double pr_world = result.distribution[n];
  if (options_.combine_mode == CombineMode::kAverage) {
    // Eq. 2: external scores are re-weighted by PR(W)/L(W).
    world_.ScaleScores(pr_world / denominator);
  }
  scores_.assign(result.distribution.begin(), result.distribution.begin() + n);
  world_score_ = pr_world;
}

void JxpPeer::RunLocalPageRankIncremental() {
  const size_t n = fragment_.NumLocalPages();
  const uint32_t world_state = static_cast<uint32_t>(n);
  double denominator = std::max(world_score_, kWorldScoreFloor);

  // The cheap delta path is sound only when the cached system survives this
  // Prepare with nothing but its world row rewritten: same fragment (same
  // state indexing, untouched local rows) and a solver state of matching
  // dimension. Snapshot the world row before Prepare overwrites it in place.
  std::vector<markov::MatrixEntry> old_row;
  double old_row_sum = 0;
  bool delta_path = incremental_.valid() && incremental_.num_states() == n + 1 &&
                    extended_cache_.CachedLocalRowsMatch(n);
  if (delta_path) {
    const auto row = extended_cache_.system().matrix.Row(world_state);
    old_row.assign(row.begin(), row.end());
    old_row_sum = extended_cache_.system().matrix.RowSum(world_state);
  }
  const ExtendedGraphSystem* system =
      &extended_cache_.Prepare(fragment_, world_, denominator, global_size_,
                               options_.uniform_world_links
                                   ? WorldLinkWeighting::kUniform
                                   : WorldLinkWeighting::kScoreProportional);
  ever_clamped_world_row_ |= system->world_row_clamped;
  // A moved global-size estimate changes teleport/dangling densely; the
  // sparse delta cannot express that.
  if (delta_path && !incremental_.TeleportMatches(system->teleport, system->dangling)) {
    delta_path = false;
  }

  pagerank::GaussSouthwellOptions gs;
  gs.damping = options_.damping;
  gs.tolerance = options_.incremental.tolerance > 0 ? options_.incremental.tolerance
                                                    : options_.pr_tolerance;
  gs.max_pushes = options_.incremental.max_push_factor * (n + 1);

  // dirty_fallback_fraction <= 0 forces the fallback without touching the
  // solver at all (the fallback-equivalence escape hatch).
  bool attempt = options_.incremental.dirty_fallback_fraction > 0;
  if (attempt) {
    if (delta_path) {
      // Fold the meeting's changes into the residual: every local score the
      // combine step moved, then the rewritten world row. Only the world
      // row changed, so UpdateSolutionEntry reads consistent local rows;
      // UpdateRow uses x[world], which no combine touches.
      const std::span<const double> x = incremental_.solution();
      for (uint32_t i = 0; i < static_cast<uint32_t>(n); ++i) {
        if (scores_[i] != x[i]) {
          incremental_.UpdateSolutionEntry(system->matrix, i, scores_[i]);
        }
      }
      incremental_.UpdateRow(system->matrix, world_state, old_row, old_row_sum);
    } else {
      double local_mass = 0;
      for (double s : scores_) local_mass += s;
      std::vector<double> x0 = scores_;
      x0.push_back(std::max(1.0 - local_mass, kWorldScoreFloor));
      incremental_.Reseed(system->matrix, system->teleport, system->dangling, gs,
                          std::move(x0));
      ++incremental_stats_.reseeds;
      incremental_stats_.push_work_entries += system->matrix.NumEntries() + n + 1;
      if (obs::Enabled()) GetIncrementalPrMetrics().reseeds.Increment();
    }
    const size_t dirty = incremental_.CountDirty();
    const size_t dirty_limit = static_cast<size_t>(
        options_.incremental.dirty_fallback_fraction * static_cast<double>(n + 1));
    if (obs::Enabled()) {
      GetIncrementalPrMetrics().dirty_rows.Observe(static_cast<double>(dirty));
    }
    attempt = dirty <= dirty_limit;
  }

  if (attempt) {
    size_t total_pushes = 0;
    size_t total_touched = 0;
    bool converged = true;
    // Same self-consistent-denominator guard as the full path: when the
    // solved world score exceeds the denominator the world row was weighted
    // with, re-weight the row at the larger value and repair by pushes.
    for (int guard = 0; guard < 64; ++guard) {
      const pagerank::GaussSouthwellResult res = incremental_.Solve(system->matrix);
      total_pushes += res.pushes;
      total_touched += res.touched_rows;
      incremental_stats_.push_work_entries += res.work_entries;
      if (!res.converged) {
        converged = false;  // Push budget exhausted; fall back.
        break;
      }
      const double pr_world = incremental_.solution()[world_state];
      if (pr_world <= denominator + 1e-13) break;
      denominator = pr_world;
      const auto row = system->matrix.Row(world_state);
      old_row.assign(row.begin(), row.end());
      old_row_sum = system->matrix.RowSum(world_state);
      system = &extended_cache_.Rescale(denominator);
      ever_clamped_world_row_ |= system->world_row_clamped;
      incremental_.UpdateRow(system->matrix, world_state, old_row, old_row_sum);
    }
    if (converged) {
      const std::span<const double> x = incremental_.solution();
      const double pr_world = x[world_state];
      if (options_.combine_mode == CombineMode::kAverage) {
        world_.ScaleScores(pr_world / denominator);
      }
      scores_.assign(x.begin(), x.begin() + static_cast<ptrdiff_t>(n));
      // The floor only matters for pathological inputs (the solver's fixed
      // point has a strictly positive world score); it keeps the next run's
      // denominator usable without perturbing the solver state.
      world_score_ = std::max(pr_world, kWorldScoreFloor);
      last_pr_iterations_ = 0;  // No power iterations ran.
      ++incremental_stats_.incremental_solves;
      incremental_stats_.pushes += total_pushes;
      if (obs::Enabled()) {
        IncrementalPrMetrics& metrics = GetIncrementalPrMetrics();
        metrics.solves.Increment();
        metrics.pushes.Increment(total_pushes);
        metrics.pushes_per_solve.Observe(static_cast<double>(total_pushes));
        metrics.touched_rows.Observe(static_cast<double>(total_touched));
      }
      return;
    }
  }

  // Fallback: exact solve, then reseed the push state from its result so
  // the next meeting can delta from a converged solution.
  ++incremental_stats_.fallbacks;
  if (obs::Enabled()) GetIncrementalPrMetrics().fallbacks.Increment();
  RunLocalPageRankFull();
  const ExtendedGraphSystem& solved = extended_cache_.system();
  std::vector<double> x = scores_;
  x.push_back(world_score_);
  incremental_.Reseed(solved.matrix, solved.teleport, solved.dangling, gs, std::move(x));
  ++incremental_stats_.reseeds;
  incremental_stats_.push_work_entries += solved.matrix.NumEntries() + n + 1;
  if (obs::Enabled()) GetIncrementalPrMetrics().reseeds.Increment();
}

double JxpPeer::MessageWireBytes() const {
  // Page table: id (8) + out-degree (4) + score (8) per local page;
  // successor lists: 8 per link; world node entries as WorldNode::WireBytes.
  const double page_bytes = static_cast<double>(fragment_.NumLocalPages()) * (8 + 4 + 8);
  const double link_bytes = static_cast<double>(fragment_.NumLocalEdges() +
                                                fragment_.NumExternalOutEdges()) * 8;
  return page_bytes + link_bytes + world_.WireBytes();
}

void JxpPeer::ReplaceFragment(graph::Subgraph fragment) {
  JXP_CHECK_GT(fragment.NumLocalPages(), 0u);
  std::vector<double> new_scores(fragment.NumLocalPages(), 0.0);
  for (graph::Subgraph::LocalIndex i = 0; i < fragment.NumLocalPages(); ++i) {
    const graph::PageId page = fragment.GlobalId(i);
    const graph::Subgraph::LocalIndex old = fragment_.LocalIndexOf(page);
    if (old != graph::Subgraph::kNotLocal) {
      new_scores[i] = scores_[old];
    } else if (const ExternalPageInfo* info = world_.Find(page)) {
      // The page was known through the world node: keep that estimate.
      new_scores[i] = std::max(info->score, 1.0 / static_cast<double>(global_size_));
    } else if (const auto it = world_.dangling_scores().find(page);
               it != world_.dangling_scores().end()) {
      new_scores[i] = std::max(it->second, 1.0 / static_cast<double>(global_size_));
    } else {
      new_scores[i] = 1.0 / static_cast<double>(global_size_);
    }
  }
  const graph::Subgraph old_fragment = std::move(fragment_);
  const std::vector<double> old_scores = std::move(scores_);
  fragment_ = std::move(fragment);
  scores_ = std::move(new_scores);
  // The cached extended-system local rows describe the old fragment, and the
  // push solver's state is indexed by the old fragment's local indices: both
  // must be rebuilt. The next incremental run reseeds densely from the
  // carried-over scores and repairs by pushes — churn's fast path.
  extended_cache_.InvalidateFragment();
  incremental_.Invalidate();
  // Drop world knowledge about pages that became local, and in-links aimed
  // at pages we no longer hold.
  for (graph::Subgraph::LocalIndex i = 0; i < fragment_.NumLocalPages(); ++i) {
    world_.Erase(fragment_.GlobalId(i));
  }
  world_.FilterTargets([this](graph::PageId t) { return fragment_.Contains(t); });
  // Retain what the peer learned from crawling the dropped pages: a dropped
  // page that links into the retained set becomes a world-node entry with
  // its last known score.
  std::vector<graph::PageId> targets;
  for (graph::Subgraph::LocalIndex i = 0; i < old_fragment.NumLocalPages(); ++i) {
    const graph::PageId page = old_fragment.GlobalId(i);
    if (fragment_.Contains(page)) continue;
    if (old_fragment.GlobalOutDegree(i) == 0) {
      world_.ObserveDangling(page, old_scores[i], options_.combine_mode,
                             options_.authoritative_refresh);
      continue;
    }
    targets.clear();
    for (graph::PageId successor : old_fragment.Successors(i)) {
      if (fragment_.Contains(successor)) targets.push_back(successor);
    }
    if (!targets.empty()) {
      world_.Observe(page, static_cast<uint32_t>(old_fragment.GlobalOutDegree(i)),
                     old_scores[i], targets, options_.combine_mode,
                     options_.authoritative_refresh);
    }
  }
  // The re-crawl may have discovered new pages; the sketch only ever grows
  // (departed pages still exist in the global graph).
  SeedPageSketch();
  RefreshGlobalSizeEstimate();
  RunLocalPageRank();
}

}  // namespace core
}  // namespace jxp
