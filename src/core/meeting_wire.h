#ifndef JXP_CORE_MEETING_WIRE_H_
#define JXP_CORE_MEETING_WIRE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/status.h"
#include "core/world_node.h"
#include "graph/subgraph.h"
#include "synopses/hash_sketch.h"
#include "wire/meeting_codec.h"

namespace jxp {
namespace core {

/// Bridge between the peer vocabulary (Subgraph, WorldNode, HashSketch) and
/// the wire codec (DESIGN.md §6g): the encode side flattens peer state into
/// the codec's plain records, the decode side rebuilds it. Lives in core —
/// not wire — so the wire library never depends on core types.

/// Serializes one complete meeting message: the page table (fragment +
/// scores, chunked), the world knowledge (skipped when empty), and, when
/// `sketch` is non-null, the page sketch.
std::vector<uint8_t> EncodeMeetingMessage(const graph::Subgraph& fragment,
                                          std::span<const double> scores,
                                          const WorldNode& world,
                                          const synopses::HashSketch* sketch,
                                          const wire::EncodeOptions& options = {});

/// What a receiver recovers from a (possibly truncated or corrupted)
/// meeting message.
struct DecodedMeetingMessage {
  /// The sender's fragment as reconstructed from the decoded page table (a
  /// prefix of the sender's real fragment under truncation); null when not
  /// even one page decoded — the message then degenerates to a drop.
  std::shared_ptr<const graph::Subgraph> fragment;
  /// Scores by the rebuilt fragment's local index.
  std::vector<double> scores;
  /// World knowledge; empty when the world frame was absent or lost.
  WorldNode world;
  /// Page sketch; null when the synopsis frame was absent or lost.
  std::shared_ptr<const synopses::HashSketch> sketch;
  /// Bytes of fully-decoded frames.
  size_t bytes_consumed = 0;
  /// Stream-reuse point after a salvaged decode (see
  /// wire::DecodedMeeting::resync_offset): one past the rejected frame when
  /// its extent was still trustworthy, else == bytes_consumed.
  size_t resync_offset = 0;
  /// OK when the entire buffer decoded; otherwise why decoding stopped.
  Status error;
};

/// Decodes the longest valid prefix of `bytes` (lenient, fault-tolerant;
/// see wire::DecodeMeeting).
DecodedMeetingMessage DecodeMeetingMessage(std::span<const uint8_t> bytes);

}  // namespace core
}  // namespace jxp

#endif  // JXP_CORE_MEETING_WIRE_H_
