#include "core/evaluation.h"

#include "metrics/error.h"

namespace jxp {
namespace core {

std::unordered_map<graph::PageId, double> BuildGlobalJxpScores(
    const std::vector<JxpPeer>& peers, const p2p::Network* network) {
  std::unordered_map<graph::PageId, double> sum;
  std::unordered_map<graph::PageId, uint32_t> count;
  for (const JxpPeer& peer : peers) {
    if (network != nullptr && !network->IsAlive(peer.id())) continue;
    const graph::Subgraph& fragment = peer.fragment();
    const std::vector<double>& scores = peer.local_scores();
    for (graph::Subgraph::LocalIndex i = 0; i < fragment.NumLocalPages(); ++i) {
      sum[fragment.GlobalId(i)] += scores[i];
      count[fragment.GlobalId(i)] += 1;
    }
  }
  for (auto& [page, total] : sum) total /= static_cast<double>(count[page]);
  return sum;
}

AccuracyPoint EvaluateAccuracy(
    const std::unordered_map<graph::PageId, double>& jxp_scores,
    std::span<const metrics::ScoredItem> global_top_k) {
  AccuracyPoint point;
  const std::vector<metrics::ScoredItem> jxp_top_k =
      metrics::TopK(jxp_scores, global_top_k.size());
  point.footrule = metrics::SpearmanFootrule(jxp_top_k, global_top_k);
  point.linear_error = metrics::LinearScoreError(global_top_k, jxp_scores);
  return point;
}

}  // namespace core
}  // namespace jxp
