#include "core/peer_selection.h"

#include <algorithm>

namespace jxp {
namespace core {

PreMeetingSelector::PreMeetingSelector(const Options& options,
                                       const std::vector<JxpPeer>* peers)
    : options_(options),
      peers_(peers),
      family_(options.mips_permutations, options.mips_seed) {
  JXP_CHECK(peers_ != nullptr);
  states_.resize(peers_->size());
}

PreMeetingSelector::PeerState& PreMeetingSelector::StateOf(p2p::PeerId peer) {
  if (peer >= states_.size()) states_.resize(peer + 1);
  return states_[peer];
}

void PreMeetingSelector::EnsureSignatures(p2p::PeerId peer) {
  PeerState& state = StateOf(peer);
  if (state.signatures_ready) return;
  JXP_CHECK_LT(peer, peers_->size());
  const graph::Subgraph& fragment = (*peers_)[peer].fragment();
  state.local_signature = family_.Sign(fragment.Pages());
  const std::vector<graph::PageId> successors = fragment.AllSuccessors();
  state.successors_signature =
      family_.Sign(std::span<const graph::PageId>(successors));
  state.signatures_ready = true;
}

void PreMeetingSelector::OnFragmentChanged(p2p::PeerId peer) {
  PeerState& state = StateOf(peer);
  state.signatures_ready = false;
  // Cached judgments were made against the old fragment; drop them.
  state.cached.clear();
  state.candidates.clear();
}

void PreMeetingSelector::CachePeer(PeerState& state, p2p::PeerId peer) {
  const auto it = std::find(state.cached.begin(), state.cached.end(), peer);
  if (it != state.cached.end()) {
    // Refresh recency: move to the back.
    state.cached.erase(it);
  } else if (state.cached.size() >= options_.max_cached_peers) {
    state.cached.erase(state.cached.begin());
  }
  state.cached.push_back(peer);
}

double PreMeetingSelector::ConsiderCandidate(p2p::PeerId owner, PeerState& state,
                                             p2p::PeerId candidate) {
  if (candidate == owner) return 0;
  const auto already = [candidate](const std::pair<p2p::PeerId, double>& c) {
    return c.first == candidate;
  };
  if (std::any_of(state.candidates.begin(), state.candidates.end(), already)) return 0;
  if (std::find(state.cached.begin(), state.cached.end(), candidate) != state.cached.end()) {
    return 0;  // Already known to be good; reachable through the cache.
  }
  // Pre-meeting: fetch the candidate's successors signature and estimate
  // Containment(successors(C), local(owner)).
  EnsureSignatures(candidate);
  EnsureSignatures(owner);
  // EstimateContainment(succ(C), local(owner)) = the fraction of the owner's
  // local pages that C's pages link to.
  const double containment = synopses::EstimateContainment(
      StateOf(candidate).successors_signature, StateOf(owner).local_signature);
  state.candidates.emplace_back(candidate, containment);
  std::sort(state.candidates.begin(), state.candidates.end(),
            [](const auto& a, const auto& b) { return a.second < b.second; });
  if (state.candidates.size() > options_.max_candidates) {
    state.candidates.erase(state.candidates.begin());
  }
  return SignatureBytes();
}

SelectionResult PreMeetingSelector::SelectPartner(p2p::PeerId initiator,
                                                  const p2p::Network& network, Random& rng) {
  PeerState& state = StateOf(initiator);
  ++state.selections;
  // Fairness: every k-th pick is uniformly random (Section 5.3), and so is
  // the very first one (nothing is known yet).
  if (options_.random_every_k > 0 && state.selections % options_.random_every_k == 0) {
    return {network.RandomAlivePeer(rng, initiator), 0.0};
  }
  // Best live candidate, if any.
  while (!state.candidates.empty()) {
    const p2p::PeerId best = state.candidates.back().first;
    state.candidates.pop_back();  // Dropped from the temporary list once used.
    if (network.IsAlive(best) && best != initiator) return {best, 0.0};
  }
  // Cached peers are re-visited with smaller probability; otherwise random.
  if (!state.cached.empty() && rng.NextBool(options_.revisit_probability)) {
    // Prefer recently confirmed entries (back of the list).
    for (size_t i = state.cached.size(); i-- > 0;) {
      const p2p::PeerId cached = state.cached[i];
      if (network.IsAlive(cached) && cached != initiator) return {cached, 0.0};
    }
  }
  return {network.RandomAlivePeer(rng, initiator), 0.0};
}

double PreMeetingSelector::AfterMeeting(p2p::PeerId a, p2p::PeerId b,
                                        const p2p::Network& network) {
  EnsureSignatures(a);
  EnsureSignatures(b);
  PeerState& sa = StateOf(a);
  PeerState& sb = StateOf(b);
  // The meeting piggybacks both peers' two signatures (local + successors).
  double bytes = 4 * SignatureBytes();

  const double containment_b_into_a =
      synopses::EstimateContainment(sb.successors_signature, sa.local_signature);
  const double containment_a_into_b =
      synopses::EstimateContainment(sa.successors_signature, sb.local_signature);
  if (containment_b_into_a > options_.containment_threshold) CachePeer(sa, b);
  if (containment_a_into_b > options_.containment_threshold) CachePeer(sb, a);

  // High overlap of the local page sets => peers likely profit from each
  // other's caches: exchange the cached-id lists and run pre-meetings
  // against the received ids.
  const double overlap =
      synopses::EstimateResemblance(sa.local_signature, sb.local_signature);
  if (overlap > options_.overlap_threshold) {
    bytes += static_cast<double>(sa.cached.size() + sb.cached.size()) * 8;
    const std::vector<p2p::PeerId> from_b = sb.cached;  // Copy: Consider mutates.
    const std::vector<p2p::PeerId> from_a = sa.cached;
    for (p2p::PeerId candidate : from_b) {
      if (candidate != b && network.IsAlive(candidate)) {
        bytes += ConsiderCandidate(a, sa, candidate);
      }
    }
    for (p2p::PeerId candidate : from_a) {
      if (candidate != a && network.IsAlive(candidate)) {
        bytes += ConsiderCandidate(b, sb, candidate);
      }
    }
  }
  return bytes;
}

}  // namespace core
}  // namespace jxp
