#ifndef JXP_CORE_JXP_PEER_H_
#define JXP_CORE_JXP_PEER_H_

#include <cstdint>
#include <span>
#include <vector>

#include <memory>

#include "core/extended_graph.h"
#include "core/jxp_options.h"
#include "core/world_node.h"
#include "graph/subgraph.h"
#include "p2p/faults.h"
#include "p2p/network.h"
#include "pagerank/incremental.h"
#include "synopses/hash_sketch.h"

namespace jxp {
namespace core {

/// Measurements of one peer meeting.
struct MeetingOutcome {
  /// Total bytes moved over the wire (both directions). Under
  /// MeetingWireMode::kEstimated this is the analytic model; under
  /// kMeasured it is the actual encoded frame size.
  double wire_bytes = 0;
  /// Bytes each side sent (its fragment structure + score list + world
  /// node); wire_bytes is their sum.
  double bytes_sent_initiator = 0;
  double bytes_sent_partner = 0;
  /// The analytic size estimate of the same messages, always computed so
  /// fig11/fig12 can report measured and estimated side by side. Equal to
  /// the bytes_sent_* fields in kEstimated mode.
  double estimated_bytes_initiator = 0;
  double estimated_bytes_partner = 0;
  double estimated_wire_bytes = 0;
  /// CPU milliseconds each side spent on its merge + local PR.
  double cpu_millis_initiator = 0;
  double cpu_millis_partner = 0;
  /// Power iterations each side's PageRank run needed.
  int pr_iterations_initiator = 0;
  int pr_iterations_partner = 0;
  /// Whether each side actually applied the partner's message (false when
  /// its incoming message was dropped or the side crashed mid-meeting).
  bool applied_initiator = true;
  bool applied_partner = true;
  /// Bytes each side sent that produced no state change (fault injection);
  /// see p2p::FaultStats::wasted_bytes. Zero in a clean meeting.
  double wasted_bytes_initiator = 0;
  double wasted_bytes_partner = 0;
  /// Sum of the two per-side wasted counts.
  double wasted_bytes = 0;
};

/// Deterministic work counters of a peer's local PageRank runs, split by
/// solver path (DESIGN.md §6j). Pure functions of the simulated meetings —
/// bit-identical across runs and thread counts — so tests and the churn
/// bench can gate on them exactly. `work_entries` counters are in units of
/// matrix entries (plus dense vector slots) touched, making the incremental
/// and full paths directly comparable.
struct IncrementalPrStats {
  /// Solves completed by residual pushes alone.
  size_t incremental_solves = 0;
  /// Solves that fell back to full power iteration (dirty set too large,
  /// push cap hit, or no valid solver state to delta from).
  size_t fallbacks = 0;
  /// Dense residual reseeds of the push solver (first run, fragment churn,
  /// and after every fallback).
  size_t reseeds = 0;
  /// Residual pushes across all incremental solves.
  size_t pushes = 0;
  /// Work of the incremental path: pushes + reseeds + dangling flushes.
  size_t push_work_entries = 0;
  /// Full power-iteration solves (every solve when incremental is off).
  size_t full_solves = 0;
  /// Power iterations summed over full solves.
  size_t full_iterations = 0;
  /// Work of the full path: iterations * matrix entries.
  size_t full_work_entries = 0;
};

/// Outcome of applying a remotely-received meeting message (the networked
/// runtime path, where the two halves of a meeting run in different
/// processes and only bytes cross between them).
struct RemoteMeetingApply {
  /// The message decoded (possibly only a salvaged prefix) and this peer's
  /// state advanced. False when nothing usable arrived — the peer's state
  /// is then bit-identical to before the call.
  bool applied = false;
  /// The decoder rejected part of the message and only the intact frame
  /// prefix applied (torn or corrupted transfer).
  bool salvaged = false;
  /// Bytes of fully-decoded frames (wasted = received - consumed).
  size_t bytes_consumed = 0;
  double cpu_millis = 0;
  int pr_iterations = 0;
};

/// A JXP peer: a local Web fragment, the world node summarizing everything
/// else, and the current JXP score list (paper Section 3).
///
/// Construction runs the initialization procedure (Algorithm 1): local
/// scores start at 1/N, the world node at (N-n)/N, and one local PageRank
/// run on the extended graph produces the initial JXP scores. Meetings
/// (JxpPeer::Meet) then refine the scores; with fair meeting schedules they
/// converge to the true global PageRank (Theorem 5.4).
class JxpPeer {
 public:
  /// Creates the peer over `fragment`. `global_size` is the (estimated)
  /// total number of pages N in the network (Section 3 discusses why
  /// assuming this estimate is uncritical; the estimate may be off — see the
  /// graph-size ablation).
  JxpPeer(p2p::PeerId id, graph::Subgraph fragment, size_t global_size,
          const JxpOptions& options);

  /// Restores a peer from persisted state (see core/state_io.h): members
  /// are adopted as-is and *no* initialization PageRank run is performed,
  /// so a saved and re-loaded peer resumes exactly where it stopped.
  JxpPeer(p2p::PeerId id, graph::Subgraph fragment, size_t global_size,
          const JxpOptions& options, std::vector<double> scores, WorldNode world,
          double world_score);

  JxpPeer(const JxpPeer&) = delete;
  JxpPeer& operator=(const JxpPeer&) = delete;
  JxpPeer(JxpPeer&&) noexcept = default;
  JxpPeer& operator=(JxpPeer&&) noexcept = default;

  /// Performs one meeting: both peers exchange their extended local graphs
  /// and score lists and each recomputes its scores independently (the
  /// paper's asynchronous double-sided update, serialized here). The merge
  /// procedure and score combination follow the peers' options; both peers
  /// must share the same options.
  static MeetingOutcome Meet(JxpPeer& initiator, JxpPeer& partner);

  /// Meeting under an injected fault schedule (see p2p::FaultPlan): lost
  /// messages and mid-meeting crashes suppress one side's application
  /// entirely (that peer's state does not change at all), truncated
  /// messages deliver only a prefix of the sender's page table (the world
  /// node, at the message tail, is lost). A default-constructed (clean)
  /// decision performs exactly Meet(initiator, partner). Stale-resume and
  /// retry faults are handled by the caller (JxpSimulation) before this
  /// runs.
  static MeetingOutcome Meet(JxpPeer& initiator, JxpPeer& partner,
                             const p2p::MeetingFaultDecision& faults);

  /// Serializes this peer's meeting message exactly as the in-process
  /// kMeasured meeting path does (same codec, same sketch gating), so a
  /// networked exchange of these bytes is bit-identical to MeetMeasured.
  /// Snapshot semantics: callers exchanging messages must encode BOTH sides
  /// before applying either (the meeting is a simultaneous exchange).
  std::vector<uint8_t> EncodeMeetingBytes() const;

  /// Applies a meeting message received as raw bytes: runs the
  /// fault-tolerant decode salvage, then this peer's half of the meeting
  /// (merge + local PageRank). Mirrors one side of MeetMeasured, so a
  /// daemon pair doing Encode/exchange/Apply matches Meet() exactly.
  RemoteMeetingApply ApplyMeetingBytes(std::span<const uint8_t> bytes);

  /// The peer's network id.
  p2p::PeerId id() const { return id_; }

  /// The local fragment.
  const graph::Subgraph& fragment() const { return fragment_; }

  /// The world node.
  const WorldNode& world_node() const { return world_; }

  /// Current JXP score of the world node (alpha_w).
  double world_score() const { return world_score_; }

  /// Current JXP scores of local pages, indexed by Subgraph local index.
  const std::vector<double>& local_scores() const { return scores_; }

  /// JXP score of a page by global id; 0 when the page is not local.
  double ScoreOfGlobal(graph::PageId page) const;

  /// Sum of the local page scores (1 - world_score, Theorem 5.2's monotone
  /// quantity).
  double LocalScoreMass() const { return 1.0 - world_score_; }

  /// Number of meetings this peer has taken part in.
  size_t num_meetings() const { return num_meetings_; }

  /// CPU milliseconds of each merge procedure this peer performed, in
  /// meeting order (Table 1 reports the per-peer average).
  const std::vector<double>& meeting_cpu_millis() const { return meeting_cpu_millis_; }

  /// Iterations of the most recent local PageRank run.
  int last_pr_iterations() const { return last_pr_iterations_; }

  /// Number of meetings whose incoming message this peer rejected as
  /// implausible (see DefenseOptions).
  size_t rejected_meetings() const { return rejected_meetings_; }

  /// Local convergence heuristic. A peer cannot observe the global error,
  /// but it can watch its own world-node score: the score is monotonically
  /// non-increasing (Theorem 5.1) and converges to pi_w (Theorem 5.4), so
  /// once it has moved by less than `tolerance` over the peer's last
  /// `window` meetings, the peer's local view has (heuristically) settled
  /// and it can throttle its meeting rate. Returns false until the peer has
  /// had at least `window` meetings.
  bool HasLocallyConverged(size_t window, double tolerance) const;

  /// World score after each of this peer's meetings, in meeting order.
  const std::vector<double>& world_score_history() const {
    return world_score_history_;
  }

  /// True if any extended-system build had to clamp the world row (see
  /// ExtendedGraphSystem::world_row_clamped).
  bool ever_clamped_world_row() const { return ever_clamped_world_row_; }

  /// The options (shared network-wide).
  const JxpOptions& options() const { return options_; }

  /// The global page count estimate N. With
  /// options().estimate_global_size this evolves as the peer's page sketch
  /// absorbs other peers' sketches.
  size_t global_size() const { return global_size_; }

  /// The peer's distinct-page sketch (all page ids it has ever seen or
  /// heard of); drives the N estimate when estimate_global_size is on.
  const synopses::HashSketch& page_sketch() const { return page_sketch_; }

  /// Wire size of this peer's meeting message: fragment structure + score
  /// list + world node (Section 6.2's message accounting: ids, degrees and
  /// scores only, never page content).
  double MessageWireBytes() const;

  /// Replaces the local fragment (peer re-crawl / content change, Section
  /// 7). Scores of retained pages are kept; new pages start at 1/N; world
  /// knowledge pointing at dropped pages is discarded; then one local PR
  /// run refreshes the scores.
  void ReplaceFragment(graph::Subgraph fragment);

  /// Work counters of this peer's local PageRank solves (see
  /// IncrementalPrStats). Accumulated on both solver paths, so the churn
  /// bench can compare incremental-on and incremental-off runs.
  const IncrementalPrStats& incremental_stats() const { return incremental_stats_; }

 private:
  /// Immutable snapshot of the state a peer ships in a meeting message.
  struct PeerView {
    const graph::Subgraph* fragment = nullptr;
    std::vector<double> scores;  // By the fragment's local index.
    WorldNode world;
    const synopses::HashSketch* page_sketch = nullptr;
    double wire_bytes = 0;
    /// Storage backing `fragment` for truncated (fault-injected) and
    /// wire-decoded views; the clean path points `fragment` at the sender's
    /// own fragment instead.
    std::shared_ptr<const graph::Subgraph> owned_fragment;
    /// Storage backing `page_sketch` for wire-decoded views.
    std::shared_ptr<const synopses::HashSketch> owned_sketch;
  };

  PeerView MakeView() const;

  /// The kMeasured meeting path: both views are serialized through the wire
  /// codec, faults (drop / truncation / bit corruption) act on the real
  /// bytes, and each receiver applies whatever its decoder salvages.
  static MeetingOutcome MeetMeasured(JxpPeer& initiator, JxpPeer& partner,
                                     const p2p::MeetingFaultDecision& faults);

  /// Models a transfer that aborted after `keep_fraction` of the message: a
  /// view carrying the prefix of the page table that fully arrived, without
  /// the world node and page sketch (they ride at the message tail).
  /// Returns false (leaving `out` untouched) when not even one page
  /// arrived — the truncation then degenerates to a full message drop.
  static bool TruncateView(const PeerView& full, double keep_fraction, PeerView& out);

  /// One side of a meeting: absorb the partner's message, recompute.
  /// Returns CPU milliseconds spent.
  double ProcessMeeting(const PeerView& partner);

  /// Defense gate: true when the partner's message should be discarded as
  /// implausible (DefenseOptions).
  bool ShouldRejectMessage(const PeerView& partner) const;

  /// Light-weight procedure (Algorithm 3 / Section 4.1).
  void ProcessLightWeight(const PeerView& partner);

  /// Full-merge procedure (Algorithm 2).
  void ProcessFullMerge(const PeerView& partner);

  /// Combines a partner-reported score for a *local* page into scores_[i].
  void CombineLocalScore(graph::Subgraph::LocalIndex i, double reported);

  /// Recomputes world_score_ as 1 - sum(local scores) (Eq. 1) and runs the
  /// local PageRank on the extended graph, applying the Eq. 2 / Eq. 3 score
  /// update rule. Dispatches to the full power-iteration path or, behind
  /// options().incremental, the Gauss–Southwell delta path.
  void RunLocalPageRank();

  /// The exact path: power iteration inside the self-consistent-denominator
  /// guard loop. The only path when options().incremental.enabled is false
  /// (results bit-identical to builds without the incremental solver), and
  /// the fallback the incremental path reseeds from.
  void RunLocalPageRankFull();

  /// The delta path (DESIGN.md §6j): fold the meeting's score combines and
  /// the regenerated world row into the push solver's residual, repair by
  /// residual pushes, and fall back to RunLocalPageRankFull when the dirty
  /// set exceeds the threshold or the push budget is exhausted.
  void RunLocalPageRankIncremental();

  /// Feeds the fragment's pages and known successors into page_sketch_ and,
  /// when estimation is enabled, refreshes global_size_ from it.
  void SeedPageSketch();
  void RefreshGlobalSizeEstimate();

  p2p::PeerId id_;
  graph::Subgraph fragment_;
  size_t global_size_;
  JxpOptions options_;

  std::vector<double> scores_;  // JXP scores of local pages, by local index.
  double world_score_ = 1.0;
  WorldNode world_;

  size_t num_meetings_ = 0;
  size_t rejected_meetings_ = 0;
  std::vector<double> meeting_cpu_millis_;
  std::vector<double> world_score_history_;
  int last_pr_iterations_ = 0;
  bool ever_clamped_world_row_ = false;
  synopses::HashSketch page_sketch_;
  /// Cached extended-system CSR: the local rows survive across meetings
  /// (only ReplaceFragment invalidates them) and the denominator guard loop
  /// of RunLocalPageRank rescales the world row instead of rebuilding.
  ExtendedSystemCache extended_cache_;
  /// Persistent state of the incremental path: the last solve's solution
  /// and residual over the cached extended system. Invalidated by
  /// ReplaceFragment (states are re-indexed); unused when
  /// options_.incremental.enabled is false.
  pagerank::GaussSouthwellSolver incremental_;
  IncrementalPrStats incremental_stats_;
};

}  // namespace core
}  // namespace jxp

#endif  // JXP_CORE_JXP_PEER_H_
