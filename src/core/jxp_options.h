#ifndef JXP_CORE_JXP_OPTIONS_H_
#define JXP_CORE_JXP_OPTIONS_H_

#include <cstddef>
#include <cstdint>

namespace jxp {
namespace core {

/// Adversarial behaviour of a *cheating* peer (the paper's Section 7 open
/// problem: "egoistic, cheating, and malicious peers"). The attack corrupts
/// the peer's outgoing meeting messages; its own local computation stays
/// intact (the attacker wants to distort others, typically to boost the
/// perceived authority of its own pages).
struct AttackOptions {
  enum class Type {
    kNone,
    /// Reports all scores (local pages and world knowledge) multiplied by
    /// inflation_factor — self-promotion.
    kScoreInflation,
    /// Reports uniformly random scores in [0, 1] — vandalism.
    kRandomScores,
  };
  Type type = Type::kNone;
  double inflation_factor = 20.0;
  /// Seed of the kRandomScores noise.
  uint64_t seed = 0xbadbadbadULL;
};

/// Defenses an honest peer applies to incoming meeting messages (a
/// simplified TrustJXP: the follow-up work to this paper). Both defenses
/// exploit structural properties of honest messages:
///  - an honest score list is part of a probability distribution, so its
///    local scores can never sum above 1;
///  - for pages both peers host, two honest JXP scores are underestimates
///    of the same true PageRank and therefore close; systematically
///    divergent reports betray manipulation.
struct DefenseOptions {
  bool enabled = false;
  /// Reject messages whose local scores sum above this (honest bound: 1).
  double max_reported_mass = 1.0 + 1e-6;
  /// Reject a partner when the *median* ratio reported/own over the
  /// overlapping pages exceeds this factor (honest divergence stems from
  /// knowledge asymmetry and is far smaller).
  double max_overlap_divergence = 8.0;
  /// Overlap size required before the divergence test is trusted.
  size_t min_overlap_to_judge = 3;
};

/// How a peer meeting combines the two peers' graph knowledge.
enum class MergeMode {
  /// Algorithm 2 (baseline): form the full union of the two local graphs
  /// and world nodes, run PageRank on the merged extended graph, then
  /// project back to each peer's own fragment.
  kFullMerge,
  /// Section 4.1 (optimized, the variant the convergence proof covers):
  /// only fold the partner's relevant links into the local world node and
  /// run PageRank on the *local* extended graph.
  kLightWeight,
};

/// How meeting message sizes are obtained.
enum class MeetingWireMode {
  /// Analytic byte model (the pre-wire accounting, Section 6.2's id /
  /// degree / score counts): no bytes are actually serialized. The default;
  /// every simulation result is bit-identical to builds before the wire
  /// layer existed.
  kEstimated,
  /// Real binary framing: each meeting serializes both messages through the
  /// wire codec (src/wire), transport faults act on the actual bytes, and
  /// traffic accounting reports measured encoded sizes (the analytic
  /// estimate is still reported alongside, see MeetingOutcome).
  kMeasured,
};

/// How scores known to both peers are combined during a meeting.
enum class CombineMode {
  /// Baseline: average the two scores; after the PR run, scores of
  /// non-local pages are re-weighted by PR(W)/L(W) (paper Eq. 2).
  kAverage,
  /// Section 4.2 (optimized): take the larger score — safe because JXP
  /// scores never overestimate true PR (Theorem 5.3) — and leave non-local
  /// scores unchanged after the PR run (paper Eq. 3).
  kTakeMax,
};

/// The incremental (Gauss–Southwell residual-push) local PageRank path
/// (DESIGN.md §6j). Off by default: the full power-iteration path then runs
/// unchanged and every result is bit-identical to builds without the
/// incremental solver. When enabled, a meeting's score combines and world-row
/// rewrite seed residual mass only at the touched rows, and pushes repair the
/// solution to within `tolerance` — falling back to full power iteration when
/// the dirty set is too large for localized repair to win.
struct IncrementalPrOptions {
  bool enabled = false;
  /// Residual infinity-norm target of the push solver; 0 = reuse
  /// JxpOptions::pr_tolerance. The published scores then agree with the
  /// exact solver's fixed point to within tolerance * (n+1) / (1 - damping)
  /// in L1 (the property suite's oracle bound).
  double tolerance = 0;
  /// Fall back to full power iteration when more than this fraction of the
  /// extended system's states carries residual above tolerance. Values <= 0
  /// force the fallback on every run (the bit-identity escape hatch the
  /// fallback-equivalence property test exercises).
  double dirty_fallback_fraction = 0.25;
  /// Push budget per solve as a multiple of the state count; exceeding it
  /// abandons the incremental attempt and falls back.
  size_t max_push_factor = 64;
};

/// Options of the JXP computation shared by all peers.
struct JxpOptions {
  /// Link-following probability epsilon; 1 - damping is the random-jump
  /// probability (paper uses 0.85).
  double damping = 0.85;
  /// L1 tolerance of each local PageRank run.
  double pr_tolerance = 1e-12;
  /// Iteration cap of each local PageRank run.
  int pr_max_iterations = 300;
  /// Meeting procedure.
  MergeMode merge_mode = MergeMode::kLightWeight;
  /// Score combination policy.
  CombineMode combine_mode = CombineMode::kTakeMax;
  /// Drops the "N is known" assumption (Section 3): when true, peers
  /// estimate the global page count themselves with Flajolet-Martin hash
  /// sketches of the page-id sets, unioned at every meeting — the
  /// "efficient techniques for distributed counting with duplicate
  /// elimination" the paper alludes to. The constructor's global_size
  /// parameter is then only used as the initial guess. Best combined with
  /// authoritative_refresh, since the early N underestimates inflate early
  /// scores, which must be allowed to heal.
  bool estimate_global_size = false;
  /// Ablation knob (DESIGN.md A2): when true, the world row ignores the
  /// learned external scores and spreads the world mass uniformly over the
  /// known in-linking pages. The paper's weighting (false) is both more
  /// accurate and required for the convergence proof.
  bool uniform_world_links = false;
  /// Churn-robustness extension (not in the paper): when true, a score
  /// reported by a peer that hosts the page *locally* overwrites the stored
  /// estimate instead of being combined. In a static network scores only
  /// grow, so this matches take-max in the limit; under churn and re-crawls
  /// it lets the network shed transient overestimates that take-max would
  /// keep alive forever. It sacrifices the strict world-score monotonicity
  /// of Theorem 5.1 (overlapping peers may report at different knowledge
  /// levels), hence the default preserves the paper's semantics.
  bool authoritative_refresh = false;
  /// Whether meeting traffic is byte-accurate (encoded frames) or modeled.
  MeetingWireMode wire_mode = MeetingWireMode::kEstimated;
  /// Incremental local PageRank (residual push instead of full power
  /// iteration when the per-meeting change is small).
  IncrementalPrOptions incremental;
  /// Adversarial behaviour of this peer (kNone for honest peers).
  AttackOptions attack;
  /// Defenses this peer applies to incoming messages.
  DefenseOptions defense;
};

}  // namespace core
}  // namespace jxp

#endif  // JXP_CORE_JXP_OPTIONS_H_
