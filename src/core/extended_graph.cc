#include "core/extended_graph.h"

#include <algorithm>

namespace jxp {
namespace core {

ExtendedGraphSystem BuildExtendedSystem(const graph::Subgraph& fragment,
                                        const WorldNode& world, double world_score,
                                        size_t global_size,
                                        WorldLinkWeighting weighting) {
  const size_t n = fragment.NumLocalPages();
  const size_t num_states = n + 1;
  const uint32_t world_state = static_cast<uint32_t>(n);
  JXP_CHECK_GE(global_size, n) << "global size estimate below local page count";
  JXP_CHECK_GT(world_score, 0.0);

  ExtendedGraphSystem system;
  markov::SparseMatrixBuilder builder(num_states);

  // Local rows (Eqs. 6-7).
  for (graph::Subgraph::LocalIndex i = 0; i < n; ++i) {
    const size_t degree = fragment.GlobalOutDegree(i);
    if (degree == 0) continue;  // Dangling: handled by the dangling vector.
    const double w = 1.0 / static_cast<double>(degree);
    for (graph::Subgraph::LocalIndex j : fragment.LocalOutNeighbors(i)) {
      builder.Add(i, j, w);
    }
    const size_t external = fragment.NumExternalSuccessors(i);
    if (external > 0) {
      builder.Add(i, world_state, w * static_cast<double>(external));
    }
  }

  // World row (Eqs. 8-9). Weight per target: (1/out(r)) * alpha(r)/alpha_w.
  double world_out_mass = 0;
  std::vector<std::pair<uint32_t, double>> world_entries;
  // Under uniform weighting every known external page is assumed to carry
  // an equal slice of the world mass.
  const double uniform_share =
      world.NumEntries() > 0 ? 1.0 / static_cast<double>(world.NumEntries()) : 0.0;
  for (const auto& [page, info] : world.entries()) {
    const double assumed_score = weighting == WorldLinkWeighting::kScoreProportional
                                     ? info.score
                                     : world_score * uniform_share;
    const double per_target =
        (1.0 / static_cast<double>(info.out_degree)) * (assumed_score / world_score);
    for (graph::PageId target : info.targets) {
      const graph::Subgraph::LocalIndex t = fragment.LocalIndexOf(target);
      if (t == graph::Subgraph::kNotLocal) continue;  // Target projected away.
      world_entries.emplace_back(t, per_target);
      world_out_mass += per_target;
    }
  }
  // Known external dangling pages link (by the uniform-redistribution
  // convention) to every page, so their aggregated score mass flows 1/N to
  // each local page.
  const double dangling_mass = world.TotalDanglingScore();
  if (dangling_mass > 0 && n > 0) {
    const double per_page =
        (dangling_mass / world_score) / static_cast<double>(global_size);
    for (uint32_t i = 0; i < n; ++i) world_entries.emplace_back(i, per_page);
    world_out_mass += per_page * static_cast<double>(n);
  }
  // Transiently, the stored external scores can exceed the world score
  // (e.g. right after take-max combining but before the local PR re-run);
  // scale the row back into stochasticity instead of producing a negative
  // self-loop.
  double scale = 1.0;
  if (world_out_mass > 1.0) {
    scale = 1.0 / world_out_mass;
    system.world_row_clamped = true;
  }
  for (const auto& [t, w] : world_entries) builder.Add(world_state, t, w * scale);
  const double self_loop = 1.0 - std::min(world_out_mass * scale, 1.0);
  if (self_loop > 0) builder.Add(world_state, world_state, self_loop);

  system.matrix = builder.Build();

  // Teleport / dangling vectors (Eq. 10).
  const double uniform = 1.0 / static_cast<double>(global_size);
  system.teleport.assign(num_states, uniform);
  system.teleport[world_state] =
      static_cast<double>(global_size - n) / static_cast<double>(global_size);
  if (global_size == n) system.teleport[world_state] = 0.0;
  system.dangling = system.teleport;
  return system;
}

}  // namespace core
}  // namespace jxp
