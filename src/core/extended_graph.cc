#include "core/extended_graph.h"

#include <algorithm>
#include <utility>

#include "obs/metrics.h"

namespace jxp {
namespace core {

namespace {

/// Cache effectiveness counters (DESIGN.md §6d): a hit reuses the cached
/// local rows and only regenerates the world row; a miss rebuilds the local
/// rows; a rescale is the guard-loop world-row regeneration.
struct CacheMetrics {
  obs::Counter hits = obs::MetricsRegistry::Global().GetCounter("jxp.extended_cache.hits");
  obs::Counter misses =
      obs::MetricsRegistry::Global().GetCounter("jxp.extended_cache.misses");
  obs::Counter rescales =
      obs::MetricsRegistry::Global().GetCounter("jxp.extended_cache.rescales");
};

CacheMetrics& GetCacheMetrics() {
  static CacheMetrics metrics;
  return metrics;
}

}  // namespace

void ExtendedSystemCache::RebuildLocalRows(const graph::Subgraph& fragment) {
  const size_t n = fragment.NumLocalPages();
  const size_t num_states = n + 1;
  const uint32_t world_state = static_cast<uint32_t>(n);
  markov::SparseMatrixBuilder builder(num_states);

  // Local rows (Eqs. 6-7). The world row (state n) stays empty here; every
  // Prepare/Rescale splices it in via ReplaceLastRow.
  for (graph::Subgraph::LocalIndex i = 0; i < n; ++i) {
    const size_t degree = fragment.GlobalOutDegree(i);
    if (degree == 0) continue;  // Dangling: handled by the dangling vector.
    const auto locals = fragment.LocalOutNeighbors(i);
    const size_t external = fragment.NumExternalSuccessors(i);
    builder.ReserveRow(i, locals.size() + (external > 0 ? 1 : 0));
    const double w = 1.0 / static_cast<double>(degree);
    for (graph::Subgraph::LocalIndex j : locals) {
      builder.Add(i, j, w);
    }
    if (external > 0) {
      builder.Add(i, world_state, w * static_cast<double>(external));
    }
  }
  system_.matrix = builder.Build();
  num_local_ = n;
  local_rows_valid_ = true;
}

void ExtendedSystemCache::RebuildWorldRow(double denominator) {
  JXP_CHECK_GT(denominator, 0.0);
  const uint32_t world_state = static_cast<uint32_t>(num_local_);

  // World row (Eqs. 8-9), regenerated from the raw terms with the exact
  // arithmetic of a from-scratch build: weight per target
  // (1/out(r)) * (alpha(r)/alpha_w), generation-order mass accumulation,
  // clamp-scaling applied per entry before the sort/merge.
  world_row_.clear();
  double world_out_mass = 0;
  for (const WorldTerm& term : terms_) {
    const double assumed_score = weighting_ == WorldLinkWeighting::kScoreProportional
                                     ? term.score
                                     : denominator * uniform_share_;
    const double per_target = term.inv_out * (assumed_score / denominator);
    world_row_.push_back({term.target, per_target});
    world_out_mass += per_target;
  }
  // Known external dangling pages link (by the uniform-redistribution
  // convention) to every page, so their aggregated score mass flows 1/N to
  // each local page.
  if (dangling_mass_ > 0 && num_local_ > 0) {
    const double per_page =
        (dangling_mass_ / denominator) / static_cast<double>(global_size_);
    for (uint32_t i = 0; i < num_local_; ++i) world_row_.push_back({i, per_page});
    world_out_mass += per_page * static_cast<double>(num_local_);
  }
  // Transiently, the stored external scores can exceed the world score
  // (e.g. right after take-max combining but before the local PR re-run);
  // scale the row back into stochasticity instead of producing a negative
  // self-loop.
  double scale = 1.0;
  system_.world_row_clamped = false;
  if (world_out_mass > 1.0) {
    scale = 1.0 / world_out_mass;
    system_.world_row_clamped = true;
  }
  for (markov::MatrixEntry& e : world_row_) e.weight = e.weight * scale;
  const double self_loop = 1.0 - std::min(world_out_mass * scale, 1.0);
  if (self_loop > 0) world_row_.push_back({world_state, self_loop});
  markov::SortAndMergeRow(world_row_);
  system_.matrix.ReplaceLastRow(world_row_);
}

const ExtendedGraphSystem& ExtendedSystemCache::Prepare(const graph::Subgraph& fragment,
                                                        const WorldNode& world,
                                                        double world_score,
                                                        size_t global_size,
                                                        WorldLinkWeighting weighting) {
  const size_t n = fragment.NumLocalPages();
  JXP_CHECK_GE(global_size, n) << "global size estimate below local page count";
  JXP_CHECK_GT(world_score, 0.0);

  if (!local_rows_valid_ || num_local_ != n) {
    GetCacheMetrics().misses.Increment();
    RebuildLocalRows(fragment);
  } else {
    GetCacheMetrics().hits.Increment();
  }

  // Snapshot the world node's raw link terms, projected onto the fragment.
  terms_.clear();
  uniform_share_ =
      world.NumEntries() > 0 ? 1.0 / static_cast<double>(world.NumEntries()) : 0.0;
  for (const auto& [page, info] : world.entries()) {
    const double inv_out = 1.0 / static_cast<double>(info.out_degree);
    for (graph::PageId target : info.targets) {
      const graph::Subgraph::LocalIndex t = fragment.LocalIndexOf(target);
      if (t == graph::Subgraph::kNotLocal) continue;  // Target projected away.
      terms_.push_back({t, inv_out, info.score});
    }
  }
  // Canonical term order. The map's iteration order depends on its insertion
  // history, which differs between a live peer and the same peer restored
  // from a state_io file; sorting makes the world row's accumulation order —
  // and with it every downstream float — a function of the world node's
  // *content* only, so a saved-and-reloaded peer computes bit-identical
  // scores.
  std::sort(terms_.begin(), terms_.end(), [](const WorldTerm& a, const WorldTerm& b) {
    if (a.target != b.target) return a.target < b.target;
    if (a.inv_out != b.inv_out) return a.inv_out < b.inv_out;
    return a.score < b.score;
  });
  dangling_mass_ = world.TotalDanglingScore();
  global_size_ = global_size;
  weighting_ = weighting;

  // Teleport / dangling vectors (Eq. 10).
  const size_t num_states = n + 1;
  const uint32_t world_state = static_cast<uint32_t>(n);
  const double uniform = 1.0 / static_cast<double>(global_size);
  system_.teleport.assign(num_states, uniform);
  system_.teleport[world_state] =
      static_cast<double>(global_size - n) / static_cast<double>(global_size);
  if (global_size == n) system_.teleport[world_state] = 0.0;
  system_.dangling = system_.teleport;

  RebuildWorldRow(world_score);
  prepared_ = true;
  return system_;
}

const ExtendedGraphSystem& ExtendedSystemCache::Rescale(double world_score) {
  JXP_CHECK(prepared_ && local_rows_valid_) << "Rescale before Prepare";
  GetCacheMetrics().rescales.Increment();
  RebuildWorldRow(world_score);
  return system_;
}

ExtendedGraphSystem BuildExtendedSystem(const graph::Subgraph& fragment,
                                        const WorldNode& world, double world_score,
                                        size_t global_size,
                                        WorldLinkWeighting weighting) {
  ExtendedSystemCache cache;
  cache.Prepare(fragment, world, world_score, global_size, weighting);
  return std::move(cache).TakeSystem();
}

}  // namespace core
}  // namespace jxp
