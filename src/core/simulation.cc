#include "core/simulation.h"

#include <algorithm>
#include <filesystem>
#include <system_error>
#include <utility>

#include "core/state_io.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace jxp {
namespace core {

namespace {

/// Convergence gauges (last recorded sample). Set only from the simulation
/// thread (single writer), as the Gauge contract requires.
struct ConvergenceMetrics {
  obs::Gauge footrule =
      obs::MetricsRegistry::Global().GetGauge("jxp.convergence.footrule");
  obs::Gauge linear_error =
      obs::MetricsRegistry::Global().GetGauge("jxp.convergence.linear_error");
};

ConvergenceMetrics& GetConvergenceMetrics() {
  static ConvergenceMetrics metrics;
  return metrics;
}

}  // namespace

JxpSimulation::JxpSimulation(const graph::Graph& global,
                             std::vector<std::vector<graph::PageId>> fragments,
                             const SimulationConfig& config)
    : global_(global), config_(config), rng_(config.seed) {
  JXP_CHECK_GE(fragments.size(), 2u) << "a P2P network needs at least two peers";

  // Centralized baseline.
  pagerank::PageRankOptions pr_options;
  pr_options.damping = config_.jxp.damping;
  pr_options.tolerance = config_.baseline_tolerance;
  pr_options.max_iterations = config_.baseline_max_iterations;
  pr_options.num_threads = static_cast<int>(config_.baseline_num_threads);
  pagerank::PageRankResult baseline = ComputePageRank(global, pr_options);
  JXP_CHECK(baseline.converged) << "centralized PageRank did not converge";
  global_scores_ = std::move(baseline.scores);
  global_top_k_ = metrics::TopK(global_scores_, config_.eval_top_k);

  // Peers.
  const size_t n = config_.global_size_estimate > 0 ? config_.global_size_estimate
                                                    : global.NumNodes();
  peers_.reserve(fragments.size());
  for (std::vector<graph::PageId>& pages : fragments) {
    const p2p::PeerId id = network_.AddPeer();
    JxpOptions options = config_.jxp;
    if (id < config_.num_attackers) options.attack = config_.attack;
    peers_.emplace_back(id, graph::Subgraph::Induce(global, std::move(pages)), n,
                        options);
  }

  // Partner selection.
  if (config_.strategy == SelectionStrategy::kPreMeetings) {
    selector_ = std::make_unique<PreMeetingSelector>(config_.pre_meeting, &peers_);
  } else {
    selector_ = std::make_unique<RandomPeerSelector>();
  }

  // Churn (off unless probabilities are set).
  if (config_.churn.leave_probability > 0 || config_.churn.join_probability > 0) {
    churn_ = std::make_unique<p2p::ChurnModel>(config_.churn, config_.seed ^ 0xc0ffee);
  }

  // Fault injection (off unless the plan enables a fault). Stale-resume
  // faults roll peers back to their last checkpoint, so every peer gets an
  // initial checkpoint up front.
  if (config_.faults.Enabled()) {
    injector_ = std::make_unique<p2p::FaultInjector>(config_.faults);
    if (config_.faults.stale_resume_probability > 0) {
      JXP_CHECK(!config_.fault_checkpoint_dir.empty())
          << "stale-resume faults need SimulationConfig::fault_checkpoint_dir";
      JXP_CHECK_GT(config_.checkpoint_every, 0u);
      std::filesystem::create_directories(config_.fault_checkpoint_dir);
      meetings_at_checkpoint_.assign(peers_.size(), 0);
      for (const JxpPeer& peer : peers_) CheckpointPeer(peer.id());
    }
  }

  if (config_.monitor_every > 0) {
    next_monitor_at_ = config_.monitor_every;
    RecordConvergencePoint();  // The meetings=0 baseline sample.
  }
}

void JxpSimulation::RecordConvergencePoint() {
  ConvergencePoint point;
  point.meetings = meetings_done_;
  point.accuracy = Evaluate();
  point.total_traffic_bytes = network_.TotalTrafficBytes();
  double world_sum = 0;
  size_t alive = 0;
  for (const JxpPeer& peer : peers_) {
    if (!network_.IsAlive(peer.id())) continue;
    world_sum += peer.world_score();
    ++alive;
  }
  point.mean_world_score = alive > 0 ? world_sum / static_cast<double>(alive) : 0;
  convergence_series_.push_back(point);

  if (obs::Enabled()) {
    ConvergenceMetrics& metrics = GetConvergenceMetrics();
    metrics.footrule.Set(point.accuracy.footrule);
    metrics.linear_error.Set(point.accuracy.linear_error);
  }
  obs::EmitEvent("convergence", [&](obs::JsonWriter& writer) {
    writer.Field("meetings", point.meetings)
        .Field("footrule", point.accuracy.footrule)
        .Field("linear_error", point.accuracy.linear_error)
        .Field("total_traffic_bytes", point.total_traffic_bytes)
        .Field("mean_world_score", point.mean_world_score);
  });
}

void JxpSimulation::MaybeMonitor() {
  if (config_.monitor_every == 0 || meetings_done_ < next_monitor_at_) return;
  while (next_monitor_at_ <= meetings_done_) next_monitor_at_ += config_.monitor_every;
  RecordConvergencePoint();
}

void JxpSimulation::RunMeetings(size_t count) {
  for (size_t m = 0; m < count; ++m) {
    if (churn_ != nullptr) churn_->Step(network_);
    JXP_CHECK_GE(network_.NumAlive(), 2u) << "network too small to meet";
    const p2p::PeerId initiator = network_.RandomAlivePeer(rng_, p2p::kInvalidPeer);
    const SelectionResult selection = selector_->SelectPartner(initiator, network_, rng_);
    JXP_CHECK(selection.partner != initiator && network_.IsAlive(selection.partner));
    p2p::MeetingFaultDecision faults;
    if (injector_ != nullptr) {
      faults = injector_->NextMeeting(initiator, selection.partner);
      AccountProbes(faults, initiator);
      // An abandoned attempt consumes the schedule slot (the initiator
      // spent its meeting opportunity on failed contacts) but no meeting
      // happens and meetings_done_ does not advance.
      if (faults.abandoned) continue;
      ApplyStaleResume(faults, initiator, selection.partner);
    }
    if (config_.record_meeting_log) {
      meeting_log_.emplace_back(initiator, selection.partner);
    }
    MeetingOutcome outcome =
        JxpPeer::Meet(peers_[initiator], peers_[selection.partner], faults);
    const double extra = selector_->AfterMeeting(initiator, selection.partner, network_) +
                         selection.synopsis_bytes;
    // Attribute to each participant the bytes it sent plus half of the
    // selection/synopsis overhead.
    network_.RecordMeetingTraffic(initiator, outcome.bytes_sent_initiator + extra / 2);
    network_.RecordMeetingTraffic(selection.partner,
                                  outcome.bytes_sent_partner + extra / 2);
    total_estimated_traffic_bytes_ += outcome.estimated_wire_bytes + extra;
    if (injector_ != nullptr) {
      AccountWasted(outcome, initiator, selection.partner);
      MaybeCheckpoint(initiator);
      MaybeCheckpoint(selection.partner);
    }
    ++meetings_done_;
    MaybeMonitor();
  }
}

void JxpSimulation::RunMeetingsParallel(size_t count) {
  if (pool_ == nullptr) {
    pool_ = std::make_unique<ThreadPool>(std::max<size_t>(1, config_.num_threads));
  }
  struct PlannedMeeting {
    p2p::PeerId initiator = p2p::kInvalidPeer;
    SelectionResult selection;
    p2p::MeetingFaultDecision faults;
  };
  std::vector<PlannedMeeting> round;
  std::vector<MeetingOutcome> outcomes;
  std::vector<char> used;
  size_t remaining = count;
  while (remaining > 0) {
    if (churn_ != nullptr) churn_->Step(network_);
    JXP_CHECK_GE(network_.NumAlive(), 2u) << "network too small to meet";
    // Draw a round of pairwise-disjoint meetings: a greedy random matching
    // over the alive peers. All RNG and selector state is consumed here, on
    // the simulation thread, so the schedule is a pure function of the seed
    // — independent, in particular, of the thread count.
    round.clear();
    used.assign(network_.NumPeers(), 0);
    std::vector<p2p::PeerId> order = network_.AlivePeers();
    rng_.Shuffle(order);
    const size_t max_pairs = std::min(remaining, order.size() / 2);
    for (const p2p::PeerId initiator : order) {
      if (round.size() >= max_pairs) break;
      if (used[initiator]) continue;
      const SelectionResult selection =
          selector_->SelectPartner(initiator, network_, rng_);
      JXP_CHECK(selection.partner != initiator && network_.IsAlive(selection.partner));
      if (used[selection.partner]) continue;  // Greedy matching: drop the pick.
      used[initiator] = used[selection.partner] = 1;
      PlannedMeeting planned{initiator, selection, {}};
      if (injector_ != nullptr) {
        // Fault schedules are drawn here, at planning time, so the fault
        // sequence — like the meeting schedule — is consumed on the
        // scheduling thread and independent of the thread count. Stale
        // resumes mutate peer state and therefore also apply now, before
        // the round executes (the pair is disjoint from every other pair).
        planned.faults = injector_->NextMeeting(initiator, selection.partner);
        AccountProbes(planned.faults, initiator);
        if (!planned.faults.abandoned) {
          ApplyStaleResume(planned.faults, initiator, selection.partner);
        }
      }
      round.push_back(std::move(planned));
    }
    JXP_CHECK(!round.empty());
    // Disjoint pairs share no mutable peer state, so one round's meetings
    // run concurrently without locks. Abandoned attempts hold their slot in
    // the round (the slot was spent on failed contacts) but do not meet.
    outcomes.assign(round.size(), MeetingOutcome{});
    pool_->ParallelFor(0, round.size(), 1, [&](size_t i) {
      if (round[i].faults.abandoned) return;
      outcomes[i] = JxpPeer::Meet(peers_[round[i].initiator],
                                  peers_[round[i].selection.partner], round[i].faults);
    });
    // Selector bookkeeping and traffic accounting mutate shared state; they
    // run sequentially, in round order.
    for (size_t i = 0; i < round.size(); ++i) {
      if (round[i].faults.abandoned) continue;
      if (config_.record_meeting_log) {
        meeting_log_.emplace_back(round[i].initiator, round[i].selection.partner);
      }
      const double extra =
          selector_->AfterMeeting(round[i].initiator, round[i].selection.partner,
                                  network_) +
          round[i].selection.synopsis_bytes;
      network_.RecordMeetingTraffic(round[i].initiator,
                                    outcomes[i].bytes_sent_initiator + extra / 2);
      network_.RecordMeetingTraffic(round[i].selection.partner,
                                    outcomes[i].bytes_sent_partner + extra / 2);
      total_estimated_traffic_bytes_ += outcomes[i].estimated_wire_bytes + extra;
      if (injector_ != nullptr) {
        AccountWasted(outcomes[i], round[i].initiator, round[i].selection.partner);
        MaybeCheckpoint(round[i].initiator);
        MaybeCheckpoint(round[i].selection.partner);
      }
      ++meetings_done_;
    }
    remaining -= round.size();
    // One sample per cadence crossing; a round that jumps several multiples
    // still yields one point (at the round boundary), and because the round
    // structure is a pure function of the seed the series is identical at
    // every thread count.
    MaybeMonitor();
  }
}

AccuracyPoint JxpSimulation::Evaluate() const {
  return EvaluateAccuracy(GlobalJxpScores(), global_top_k_);
}

std::string JxpSimulation::PeerStatePath(const std::string& dir, p2p::PeerId peer) {
  return dir + "/peer_" + std::to_string(peer) + ".jxp";
}

void JxpSimulation::CheckpointPeer(p2p::PeerId peer) {
  const Status status =
      SavePeerState(peers_[peer], PeerStatePath(config_.fault_checkpoint_dir, peer));
  JXP_CHECK(status.ok()) << "checkpoint of peer " << peer
                         << " failed: " << status.ToString();
  meetings_at_checkpoint_[peer] = peers_[peer].num_meetings();
}

void JxpSimulation::MaybeCheckpoint(p2p::PeerId peer) {
  if (meetings_at_checkpoint_.empty()) return;
  if (peers_[peer].num_meetings() - meetings_at_checkpoint_[peer] >=
      config_.checkpoint_every) {
    CheckpointPeer(peer);
  }
}

void JxpSimulation::ApplyStaleResume(const p2p::MeetingFaultDecision& faults,
                                     p2p::PeerId initiator, p2p::PeerId partner) {
  if (!faults.stale_resume_initiator && !faults.stale_resume_partner) return;
  const auto restore = [&](p2p::PeerId peer) {
    StatusOr<JxpPeer> restored =
        LoadPeerState(PeerStatePath(config_.fault_checkpoint_dir, peer),
                      peers_[peer].options());
    JXP_CHECK(restored.ok()) << "stale resume of peer " << peer
                             << " failed: " << restored.status().ToString();
    // The checkpointed fragment is identical to the live one, so selector
    // caches keyed on fragment content stay valid.
    peers_[peer] = std::move(restored).value();
    meetings_at_checkpoint_[peer] = peers_[peer].num_meetings();
  };
  if (faults.stale_resume_initiator) restore(initiator);
  if (faults.stale_resume_partner) restore(partner);
}

void JxpSimulation::AccountProbes(const p2p::MeetingFaultDecision& faults,
                                  p2p::PeerId initiator) {
  if (faults.failed_attempts == 0) return;
  const double probes =
      static_cast<double>(faults.failed_attempts) * config_.faults.probe_bytes;
  if (probes <= 0) return;
  network_.RecordWastedTraffic(initiator, probes);
  injector_->RecordWasted(probes);
}

void JxpSimulation::AccountWasted(const MeetingOutcome& outcome, p2p::PeerId initiator,
                                  p2p::PeerId partner) {
  if (outcome.wasted_bytes <= 0) return;
  network_.RecordWastedTraffic(initiator, outcome.wasted_bytes_initiator);
  network_.RecordWastedTraffic(partner, outcome.wasted_bytes_partner);
  injector_->RecordWasted(outcome.wasted_bytes);
}

Status JxpSimulation::SaveAllPeerStates(const std::string& dir) const {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return Status::IOError("cannot create " + dir + ": " + ec.message());
  for (const JxpPeer& peer : peers_) {
    const Status status = SavePeerState(peer, PeerStatePath(dir, peer.id()));
    if (!status.ok()) return status;
  }
  return Status::OK();
}

Status JxpSimulation::LoadAllPeerStates(const std::string& dir) {
  for (JxpPeer& peer : peers_) {
    StatusOr<JxpPeer> restored =
        LoadPeerState(PeerStatePath(dir, peer.id()), peer.options());
    if (!restored.ok()) return restored.status();
    JXP_CHECK_EQ(restored.value().id(), peer.id());
    peer = std::move(restored).value();
  }
  if (!meetings_at_checkpoint_.empty()) {
    for (const JxpPeer& peer : peers_) CheckpointPeer(peer.id());
  }
  return Status::OK();
}

void JxpSimulation::ReplaceFragment(p2p::PeerId peer, std::vector<graph::PageId> pages) {
  JXP_CHECK_LT(peer, peers_.size());
  peers_[peer].ReplaceFragment(graph::Subgraph::Induce(global_, std::move(pages)));
  selector_->OnFragmentChanged(peer);
}

}  // namespace core
}  // namespace jxp
