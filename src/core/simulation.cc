#include "core/simulation.h"

#include <utility>

namespace jxp {
namespace core {

JxpSimulation::JxpSimulation(const graph::Graph& global,
                             std::vector<std::vector<graph::PageId>> fragments,
                             const SimulationConfig& config)
    : global_(global), config_(config), rng_(config.seed) {
  JXP_CHECK_GE(fragments.size(), 2u) << "a P2P network needs at least two peers";

  // Centralized baseline.
  pagerank::PageRankOptions pr_options;
  pr_options.damping = config_.jxp.damping;
  pr_options.tolerance = config_.baseline_tolerance;
  pr_options.max_iterations = config_.baseline_max_iterations;
  pagerank::PageRankResult baseline = ComputePageRank(global, pr_options);
  JXP_CHECK(baseline.converged) << "centralized PageRank did not converge";
  global_scores_ = std::move(baseline.scores);
  global_top_k_ = metrics::TopK(global_scores_, config_.eval_top_k);

  // Peers.
  const size_t n = config_.global_size_estimate > 0 ? config_.global_size_estimate
                                                    : global.NumNodes();
  peers_.reserve(fragments.size());
  for (std::vector<graph::PageId>& pages : fragments) {
    const p2p::PeerId id = network_.AddPeer();
    JxpOptions options = config_.jxp;
    if (id < config_.num_attackers) options.attack = config_.attack;
    peers_.emplace_back(id, graph::Subgraph::Induce(global, std::move(pages)), n,
                        options);
  }

  // Partner selection.
  if (config_.strategy == SelectionStrategy::kPreMeetings) {
    selector_ = std::make_unique<PreMeetingSelector>(config_.pre_meeting, &peers_);
  } else {
    selector_ = std::make_unique<RandomPeerSelector>();
  }

  // Churn (off unless probabilities are set).
  if (config_.churn.leave_probability > 0 || config_.churn.join_probability > 0) {
    churn_ = std::make_unique<p2p::ChurnModel>(config_.churn, config_.seed ^ 0xc0ffee);
  }
}

void JxpSimulation::RunMeetings(size_t count) {
  for (size_t m = 0; m < count; ++m) {
    if (churn_ != nullptr) churn_->Step(network_);
    JXP_CHECK_GE(network_.NumAlive(), 2u) << "network too small to meet";
    const p2p::PeerId initiator = network_.RandomAlivePeer(rng_, p2p::kInvalidPeer);
    const SelectionResult selection = selector_->SelectPartner(initiator, network_, rng_);
    JXP_CHECK(selection.partner != initiator && network_.IsAlive(selection.partner));
    MeetingOutcome outcome = JxpPeer::Meet(peers_[initiator], peers_[selection.partner]);
    const double extra = selector_->AfterMeeting(initiator, selection.partner, network_) +
                         selection.synopsis_bytes;
    // Attribute to each participant the bytes it sent plus half of the
    // selection/synopsis overhead.
    network_.RecordMeetingTraffic(initiator, outcome.bytes_sent_initiator + extra / 2);
    network_.RecordMeetingTraffic(selection.partner,
                                  outcome.bytes_sent_partner + extra / 2);
    ++meetings_done_;
  }
}

AccuracyPoint JxpSimulation::Evaluate() const {
  return EvaluateAccuracy(GlobalJxpScores(), global_top_k_);
}

void JxpSimulation::ReplaceFragment(p2p::PeerId peer, std::vector<graph::PageId> pages) {
  JXP_CHECK_LT(peer, peers_.size());
  peers_[peer].ReplaceFragment(graph::Subgraph::Induce(global_, std::move(pages)));
  selector_->OnFragmentChanged(peer);
}

}  // namespace core
}  // namespace jxp
