#ifndef JXP_CORE_WORLD_NODE_H_
#define JXP_CORE_WORLD_NODE_H_

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/jxp_options.h"
#include "graph/graph.h"

namespace jxp {
namespace core {

/// What a peer knows about one external page that links into its local
/// graph: the page's global out-degree, its most recently learned JXP score,
/// and which local pages it points to. This is the paper's "for every page r
/// in W we store out(r) and alpha(r), both learned from a previous meeting".
struct ExternalPageInfo {
  /// Global out-degree of the external page (> 0 by construction: it has at
  /// least one out-link, namely the one into the local graph).
  uint32_t out_degree = 0;
  /// Last learned JXP score of the page.
  double score = 0;
  /// Local pages (global ids, sorted unique) this external page links to.
  std::vector<graph::PageId> targets;
};

/// The JXP world node: the aggregate of all pages a peer has not crawled.
///
/// It carries the peer's accumulated knowledge of *external in-links*: for
/// each known external page that points into the local fragment, an
/// ExternalPageInfo entry. Links from external pages to other external pages
/// are represented implicitly by the world node's self-loop, whose weight the
/// extended-graph construction derives as the complement of the outgoing
/// weights (paper Eq. 9).
class WorldNode {
 public:
  WorldNode() = default;

  /// Records (or refreshes) knowledge about external page `page`:
  /// `targets` are local pages it links to (global ids), `score` the
  /// reporting peer's JXP score for it. On a repeated observation the target
  /// lists are unioned and the scores combined per `mode` (average / max).
  ///
  /// `authoritative` marks a report that comes from a peer hosting `page`
  /// *locally* (or from this peer's own crawl of it): such a report carries
  /// the page's current score and overwrites the stored one instead of
  /// combining. This keeps the static-network behaviour of the paper (scores
  /// only grow there, so max == latest) while letting the network self-heal
  /// from transient overestimates after re-crawls and churn, which take-max
  /// would otherwise keep alive forever.
  void Observe(graph::PageId page, uint32_t out_degree, double score,
               std::span<const graph::PageId> targets, CombineMode mode,
               bool authoritative = false);

  /// Records (or refreshes) knowledge about an external *dangling* page
  /// (out-degree 0). Under the uniform-redistribution convention a dangling
  /// page effectively links to every page, so its score mass flows 1/N to
  /// each local page; the extended-graph construction adds that flow to the
  /// world row. Same `mode`/`authoritative` semantics as Observe.
  void ObserveDangling(graph::PageId page, double score, CombineMode mode,
                       bool authoritative = false);

  /// Removes the entry for `page` (used when the page becomes local after a
  /// full merge). No-op if absent.
  void Erase(graph::PageId page) {
    entries_.erase(page);
    dangling_scores_.erase(page);
  }

  /// Drops targets not satisfying `keep` and erases entries left with no
  /// targets. Used to project a merged world node back onto one fragment.
  template <typename Predicate>
  void FilterTargets(Predicate keep) {
    for (auto it = entries_.begin(); it != entries_.end();) {
      auto& targets = it->second.targets;
      std::erase_if(targets, [&keep](graph::PageId t) { return !keep(t); });
      it = targets.empty() ? entries_.erase(it) : ++it;
    }
  }

  /// Scales every stored external score by `factor` (the Eq. 2 re-weighting
  /// of the baseline combine mode).
  void ScaleScores(double factor);

  /// Number of known external in-linking pages.
  size_t NumEntries() const { return entries_.size(); }

  /// Total number of known external in-links (sum of target-list sizes).
  size_t NumLinks() const;

  /// Lookup; nullptr if unknown.
  const ExternalPageInfo* Find(graph::PageId page) const {
    const auto it = entries_.find(page);
    return it == entries_.end() ? nullptr : &it->second;
  }

  /// Iteration over all entries (unordered).
  const std::unordered_map<graph::PageId, ExternalPageInfo>& entries() const {
    return entries_;
  }

  /// Known external dangling pages (page -> score).
  const std::unordered_map<graph::PageId, double>& dangling_scores() const {
    return dangling_scores_;
  }

  /// Sum of the known external dangling pages' scores.
  double TotalDanglingScore() const;

  /// Wire size in bytes when shipped in a meeting message: per entry one
  /// page id (8) + out-degree (4) + score (8) + one id per target; per
  /// dangling entry id (8) + score (8).
  double WireBytes() const;

 private:
  std::unordered_map<graph::PageId, ExternalPageInfo> entries_;
  std::unordered_map<graph::PageId, double> dangling_scores_;
};

}  // namespace core
}  // namespace jxp

#endif  // JXP_CORE_WORLD_NODE_H_
