#include "core/meeting_wire.h"

#include <algorithm>
#include <utility>

#include "common/check.h"

namespace jxp {
namespace core {

std::vector<uint8_t> EncodeMeetingMessage(const graph::Subgraph& fragment,
                                          std::span<const double> scores,
                                          const WorldNode& world,
                                          const synopses::HashSketch* sketch,
                                          const wire::EncodeOptions& options) {
  std::vector<uint8_t> out;
  wire::EncodeScoreList(fragment, scores, options, out);

  // The codec wants world records sorted by page id; the world node stores
  // hash maps, so flatten and sort (targets are already sorted unique).
  std::vector<wire::WorldEntryIn> entries;
  entries.reserve(world.NumEntries());
  for (const auto& [page, info] : world.entries()) {
    wire::WorldEntryIn entry;
    entry.page = page;
    entry.out_degree = info.out_degree;
    entry.score = info.score;
    entry.targets = info.targets;
    entries.push_back(entry);
  }
  std::sort(entries.begin(), entries.end(),
            [](const wire::WorldEntryIn& a, const wire::WorldEntryIn& b) {
              return a.page < b.page;
            });
  std::vector<wire::DanglingIn> dangling;
  dangling.reserve(world.dangling_scores().size());
  for (const auto& [page, score] : world.dangling_scores()) {
    dangling.push_back({page, score});
  }
  std::sort(dangling.begin(), dangling.end(),
            [](const wire::DanglingIn& a, const wire::DanglingIn& b) {
              return a.page < b.page;
            });
  wire::EncodeWorldKnowledge(entries, dangling, out);

  if (sketch != nullptr) wire::EncodeSynopsis(*sketch, out);
  return out;
}

DecodedMeetingMessage DecodeMeetingMessage(std::span<const uint8_t> bytes) {
  wire::DecodedMeeting decoded = wire::DecodeMeeting(bytes);
  DecodedMeetingMessage result;
  result.bytes_consumed = decoded.bytes_consumed;
  result.resync_offset = decoded.resync_offset;
  result.error = std::move(decoded.error);

  if (!decoded.pages.empty()) {
    std::vector<graph::PageId> pages;
    std::vector<std::vector<graph::PageId>> successors;
    pages.reserve(decoded.pages.size());
    successors.reserve(decoded.pages.size());
    result.scores.reserve(decoded.pages.size());
    for (wire::ScoreListPage& record : decoded.pages) {
      pages.push_back(record.page);
      successors.push_back(std::move(record.successors));
    }
    auto fragment = std::make_shared<graph::Subgraph>(
        graph::Subgraph::FromKnowledge(std::move(pages), std::move(successors)));
    // The page table arrives in ascending-page order, which is exactly the
    // rebuilt fragment's local-index order; still map defensively.
    result.scores.assign(fragment->NumLocalPages(), 0.0);
    for (const wire::ScoreListPage& record : decoded.pages) {
      const graph::Subgraph::LocalIndex i = fragment->LocalIndexOf(record.page);
      JXP_CHECK_NE(i, graph::Subgraph::kNotLocal);
      result.scores[i] = record.score;
    }
    result.fragment = std::move(fragment);
  }

  for (const wire::WorldEntryOut& entry : decoded.world_entries) {
    result.world.Observe(entry.page, entry.out_degree, entry.score, entry.targets,
                         CombineMode::kTakeMax);
  }
  for (const wire::DanglingOut& record : decoded.world_dangling) {
    result.world.ObserveDangling(record.page, record.score, CombineMode::kTakeMax);
  }

  if (decoded.has_synopsis) {
    result.sketch = std::make_shared<synopses::HashSketch>(
        synopses::HashSketch::FromBitmaps(decoded.synopsis_seed,
                                          std::move(decoded.synopsis_bitmaps)));
  }
  return result;
}

}  // namespace core
}  // namespace jxp
