#ifndef JXP_CORE_EVALUATION_H_
#define JXP_CORE_EVALUATION_H_

#include <span>
#include <unordered_map>
#include <vector>

#include "core/jxp_peer.h"
#include "metrics/ranking.h"
#include "p2p/network.h"

namespace jxp {
namespace core {

/// Builds the network-wide JXP score table used for evaluation (Section
/// 6.2): page -> average of the page's JXP scores over all peers that hold
/// it locally. (The paper notes this total ranking exists only for the
/// evaluation; the real P2P system never materializes it.) When `network`
/// is non-null, departed peers are excluded.
std::unordered_map<graph::PageId, double> BuildGlobalJxpScores(
    const std::vector<JxpPeer>& peers, const p2p::Network* network);

/// Accuracy of a JXP snapshot against the centralized PageRank baseline.
struct AccuracyPoint {
  /// Normalized Spearman's footrule distance between the JXP and PR top-k
  /// rankings (0 = identical).
  double footrule = 0;
  /// Average |JXP - PR| over the PR top-k pages.
  double linear_error = 0;
};

/// Compares the JXP score table against the centralized top-k ranking
/// (`global_top_k` from metrics::TopK over the true PR vector).
AccuracyPoint EvaluateAccuracy(
    const std::unordered_map<graph::PageId, double>& jxp_scores,
    std::span<const metrics::ScoredItem> global_top_k);

}  // namespace core
}  // namespace jxp

#endif  // JXP_CORE_EVALUATION_H_
