#ifndef JXP_CORE_PEER_SELECTION_H_
#define JXP_CORE_PEER_SELECTION_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/random.h"
#include "core/jxp_peer.h"
#include "p2p/network.h"
#include "synopses/minwise.h"

namespace jxp {
namespace core {

/// Outcome of a partner selection.
struct SelectionResult {
  p2p::PeerId partner = p2p::kInvalidPeer;
  /// Synopsis bytes the selection itself moved (pre-meetings, Section 4.3);
  /// zero for the random strategy.
  double synopsis_bytes = 0;
};

/// Strategy interface for choosing the next meeting partner (Section 4.3).
///
/// Implementations may keep per-peer state (caches, candidate lists) and may
/// read the peers' fragments through the attached peer vector. AfterMeeting
/// is invoked once per completed meeting and returns any extra bytes the
/// strategy's bookkeeping moved (piggybacked synopses, cache-list exchange).
class PeerSelector {
 public:
  virtual ~PeerSelector() = default;

  /// Chooses an alive partner != initiator.
  virtual SelectionResult SelectPartner(p2p::PeerId initiator, const p2p::Network& network,
                                        Random& rng) = 0;

  /// Hook called after peers `a` and `b` finished a meeting.
  virtual double AfterMeeting(p2p::PeerId a, p2p::PeerId b, const p2p::Network& network) = 0;

  /// Hook called when a peer's fragment changed (churn / re-crawl).
  virtual void OnFragmentChanged(p2p::PeerId peer) = 0;
};

/// The baseline strategy: uniformly random alive partner.
class RandomPeerSelector : public PeerSelector {
 public:
  RandomPeerSelector() = default;

  SelectionResult SelectPartner(p2p::PeerId initiator, const p2p::Network& network,
                                Random& rng) override {
    return {network.RandomAlivePeer(rng, initiator), 0.0};
  }

  double AfterMeeting(p2p::PeerId, p2p::PeerId, const p2p::Network&) override { return 0; }
  void OnFragmentChanged(p2p::PeerId) override {}
};

/// The pre-meetings strategy (Section 4.3), driven by min-wise permutation
/// synopses:
///
/// - every peer carries two MIPs signatures, local(A) over its page set and
///   successors(A) over the union of its pages' successor lists;
/// - after a meeting of A and B, A caches B's id if
///   Containment(successors(B), local(A)) exceeds `containment_threshold`
///   (B's pages send many in-links into A), and vice versa;
/// - if additionally the two peers' page sets overlap strongly
///   (resemblance above `overlap_threshold`), they exchange their cached-id
///   lists; the received ids become *candidates*, each measured by a
///   pre-meeting that transfers only the candidate's successors signature;
/// - at selection time the best-scored candidate is taken; every k-th
///   selection falls back to a uniformly random peer so the meeting sequence
///   stays fair (the precondition of Theorem 5.4), and with probability
///   `revisit_probability` a cached peer is re-visited to keep the cache
///   fresh.
class PreMeetingSelector : public PeerSelector {
 public:
  struct Options {
    /// Signature length (number of permutations).
    size_t mips_permutations = 64;
    /// Shared seed of the permutation family (network-wide constant).
    uint64_t mips_seed = 0xa11ce5eedULL;
    /// Cache a met peer whose successors->local containment exceeds this.
    double containment_threshold = 0.05;
    /// Exchange cached-id lists when local-set resemblance exceeds this.
    double overlap_threshold = 0.2;
    /// Cache capacity per peer (oldest evicted first).
    size_t max_cached_peers = 20;
    /// Candidate list capacity per peer.
    size_t max_candidates = 20;
    /// Every k-th selection is uniformly random (fairness knob).
    size_t random_every_k = 10;
    /// Probability of picking a cached peer (rather than random) when no
    /// candidate is available.
    double revisit_probability = 0.5;
  };

  /// `peers` must outlive the selector and hold one JxpPeer per network
  /// peer, indexed by PeerId.
  PreMeetingSelector(const Options& options, const std::vector<JxpPeer>* peers);

  SelectionResult SelectPartner(p2p::PeerId initiator, const p2p::Network& network,
                                Random& rng) override;
  double AfterMeeting(p2p::PeerId a, p2p::PeerId b, const p2p::Network& network) override;
  void OnFragmentChanged(p2p::PeerId peer) override;

  /// Wire size of one signature (vector of 8-byte minima + set size).
  double SignatureBytes() const {
    return static_cast<double>(options_.mips_permutations) * 8 + 8;
  }

 private:
  struct PeerState {
    synopses::MinWiseSignature local_signature;
    synopses::MinWiseSignature successors_signature;
    bool signatures_ready = false;
    /// Ids of peers with high in-link contribution, oldest first.
    std::vector<p2p::PeerId> cached;
    /// (candidate id, estimated containment), best last.
    std::vector<std::pair<p2p::PeerId, double>> candidates;
    size_t selections = 0;
  };

  PeerState& StateOf(p2p::PeerId peer);
  void EnsureSignatures(p2p::PeerId peer);

  /// Adds `candidate` to `state`'s candidate list, measuring it by a
  /// pre-meeting (transfers one successors signature). Returns the bytes
  /// moved (0 if the candidate was skipped).
  double ConsiderCandidate(p2p::PeerId owner, PeerState& state, p2p::PeerId candidate);

  void CachePeer(PeerState& state, p2p::PeerId peer);

  Options options_;
  const std::vector<JxpPeer>* peers_;
  synopses::MinWiseFamily family_;
  std::vector<PeerState> states_;
};

}  // namespace core
}  // namespace jxp

#endif  // JXP_CORE_PEER_SELECTION_H_
