#ifndef JXP_CORE_SIMULATION_H_
#define JXP_CORE_SIMULATION_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "core/evaluation.h"
#include "core/jxp_options.h"
#include "core/jxp_peer.h"
#include "core/peer_selection.h"
#include "p2p/churn.h"
#include "p2p/faults.h"
#include "p2p/network.h"
#include "pagerank/pagerank.h"

namespace jxp {
namespace core {

/// Which partner-selection strategy the simulation uses.
enum class SelectionStrategy {
  kRandom,
  kPreMeetings,
};

/// Configuration of a JXP network simulation.
struct SimulationConfig {
  /// JXP algorithm options shared by all peers.
  JxpOptions jxp;
  /// Partner selection strategy.
  SelectionStrategy strategy = SelectionStrategy::kRandom;
  /// Options of the pre-meetings strategy (used when strategy ==
  /// kPreMeetings).
  PreMeetingSelector::Options pre_meeting;
  /// Churn model; default = no churn (the paper's main setting).
  p2p::ChurnModel::Options churn;
  /// Master seed; the whole run is deterministic in it.
  uint64_t seed = 1;
  /// Size of the top-k rankings compared in Evaluate() (the paper uses
  /// 1000, and 10000 for Figure 9).
  size_t eval_top_k = 1000;
  /// Centralized-PR options for the baseline (damping mirrors jxp.damping).
  double baseline_tolerance = 1e-12;
  int baseline_max_iterations = 500;
  /// Override for the global page count announced to peers (the paper's
  /// "N is known or can be estimated"). 0 = use the true node count.
  size_t global_size_estimate = 0;
  /// Adversarial setting (Section 7 open problem): the first
  /// `num_attackers` peers run `attack`; all peers apply jxp.defense.
  size_t num_attackers = 0;
  AttackOptions attack;
  /// Worker threads for RunMeetingsParallel's meeting rounds. Results are
  /// deterministic in `seed` at every thread count (see DESIGN.md,
  /// "Concurrency model").
  size_t num_threads = 1;
  /// Worker threads of the centralized-baseline power iteration run at
  /// construction (it dominates construction on large graphs). Kept
  /// separate from num_threads because the parallel pull kernel is
  /// bit-reproducible across thread counts > 1 but not bit-identical with
  /// the sequential kernel.
  size_t baseline_num_threads = 1;
  /// Fault-injection plan (all faults off by default). When disabled, no
  /// FaultInjector is created, no fault randomness is drawn, and the run is
  /// bit-identical to a build without the fault layer.
  p2p::FaultPlan faults;
  /// Directory for the per-peer state_io checkpoints that back the
  /// stale-resume fault (created if missing). Required — and only used —
  /// when faults.stale_resume_probability > 0.
  std::string fault_checkpoint_dir;
  /// A peer is re-checkpointed every time it has applied this many meetings
  /// since its last checkpoint (so a stale resume rolls it back by at most
  /// this many meetings).
  size_t checkpoint_every = 8;
  /// Convergence monitoring cadence: when > 0, the simulation records a
  /// ConvergencePoint (accuracy vs the centralized baseline, cumulative
  /// traffic, mean world score) at construction and then each time
  /// meetings_done() crosses a multiple of this value, also emitting a
  /// "convergence" trace event and updating the jxp.convergence.* gauges.
  /// Monitoring reads only sequentially-owned state, so the recorded series
  /// is identical between RunMeetings and RunMeetingsParallel schedules at
  /// matching meeting counts, and across thread counts. 0 = off.
  size_t monitor_every = 0;
  /// When true, every executed meeting's (initiator, partner) pair is
  /// recorded in meeting_log(), in execution order. External drivers replay
  /// the exact schedule elsewhere — the networked cluster driver feeds it
  /// to its daemons and compares their converged scores against this
  /// simulation as an oracle.
  bool record_meeting_log = false;
};

/// One sample of the convergence monitor (see SimulationConfig::monitor_every).
struct ConvergencePoint {
  /// Meetings executed when the sample was taken.
  size_t meetings = 0;
  /// Accuracy against centralized PageRank at that moment.
  AccuracyPoint accuracy;
  /// Cumulative network traffic (Network::TotalTrafficBytes convention).
  double total_traffic_bytes = 0;
  /// Mean world score over alive peers — the paper's Theorem 5.3 monotone
  /// quantity, a cheap scalar proxy of global convergence.
  double mean_world_score = 0;
};

/// A complete JXP network simulation: the global graph, one JxpPeer per
/// fragment, a meeting loop with pluggable partner selection, traffic
/// accounting, optional churn, and evaluation against centralized PageRank.
class JxpSimulation {
 public:
  /// `fragments[p]` lists the global pages crawled by peer p (fragments may
  /// overlap arbitrarily). The global graph must outlive the simulation.
  JxpSimulation(const graph::Graph& global, std::vector<std::vector<graph::PageId>> fragments,
                const SimulationConfig& config);

  /// Executes `count` meetings (each meeting updates both participants).
  void RunMeetings(size_t count);

  /// Executes `count` meetings in rounds of pairwise-disjoint peer pairs (a
  /// greedy random matching drawn from the configured selector), running
  /// each round's meetings concurrently on config.num_threads workers.
  /// Disjointness means no two concurrent meetings share peer state, so no
  /// locks are needed, and the whole run — schedule, scores, traffic — is a
  /// pure function of the seed, bit-identical at every thread count. The
  /// meeting *schedule* differs from RunMeetings (rounds cannot revisit a
  /// peer; churn steps once per round), but both schedules are fair and
  /// converge per Theorem 5.4.
  void RunMeetingsParallel(size_t count);

  /// Compares the current network-wide JXP snapshot against centralized PR.
  AccuracyPoint Evaluate() const;

  /// Number of meetings executed so far.
  size_t meetings_done() const { return meetings_done_; }

  /// Samples recorded by the convergence monitor (empty when
  /// config.monitor_every == 0).
  const std::vector<ConvergencePoint>& convergence_series() const {
    return convergence_series_;
  }

  /// Executed meetings in order (empty unless config.record_meeting_log).
  const std::vector<std::pair<p2p::PeerId, p2p::PeerId>>& meeting_log() const {
    return meeting_log_;
  }

  /// The peers, indexed by PeerId.
  const std::vector<JxpPeer>& peers() const { return peers_; }

  /// Overlay membership and traffic statistics.
  const p2p::Network& network() const { return network_; }

  /// Cumulative *analytic* estimate of all meeting traffic (the kEstimated
  /// byte model plus selection overhead), accumulated alongside the real
  /// totals so experiments can report measured and estimated side by side.
  /// Equals Network::TotalTrafficBytes() when jxp.wire_mode == kEstimated.
  double total_estimated_traffic_bytes() const { return total_estimated_traffic_bytes_; }

  /// True global PageRank scores (the comparison baseline).
  const std::vector<double>& global_scores() const { return global_scores_; }

  /// Centralized top-k ranking (k = config.eval_top_k).
  const std::vector<metrics::ScoredItem>& global_top_k() const { return global_top_k_; }

  /// Current network-wide JXP score table (averaged over replicas).
  std::unordered_map<graph::PageId, double> GlobalJxpScores() const {
    return BuildGlobalJxpScores(peers_, &network_);
  }

  /// Forces a peer to depart / rejoin (used by churn experiments beyond the
  /// probabilistic model).
  void ForceLeave(p2p::PeerId peer) { network_.Leave(peer); }
  void ForceRejoin(p2p::PeerId peer) { network_.Rejoin(peer); }

  /// Replaces a peer's fragment (re-crawl), refreshing selector state.
  void ReplaceFragment(p2p::PeerId peer, std::vector<graph::PageId> pages);

  /// Fault accounting of the run so far; nullptr when config.faults is
  /// disabled.
  const p2p::FaultStats* fault_stats() const {
    return injector_ == nullptr ? nullptr : &injector_->stats();
  }

  /// Persists every peer's state under `dir` (one state_io file per peer,
  /// named peer_<id>.jxp) / restores every peer from such a directory.
  /// Fragments round-trip exactly, so selector state stays valid; a
  /// save + load + continue run is bit-identical to an uninterrupted one.
  Status SaveAllPeerStates(const std::string& dir) const;
  Status LoadAllPeerStates(const std::string& dir);

 private:
  /// Path of a peer's stale-resume checkpoint / saved-state file.
  static std::string PeerStatePath(const std::string& dir, p2p::PeerId peer);
  /// Writes a peer's stale-resume checkpoint and remembers its meeting count.
  void CheckpointPeer(p2p::PeerId peer);
  /// Re-checkpoints a participant that applied >= checkpoint_every meetings
  /// since its last checkpoint (no-op unless stale resume is configured).
  void MaybeCheckpoint(p2p::PeerId peer);
  /// Applies the decision's stale-resume faults: rolls the flagged sides
  /// back to their last checkpoint before the meeting runs.
  void ApplyStaleResume(const p2p::MeetingFaultDecision& faults, p2p::PeerId initiator,
                        p2p::PeerId partner);
  /// Charges failed-contact probe bytes and (post-meeting) wasted bytes.
  void AccountProbes(const p2p::MeetingFaultDecision& faults, p2p::PeerId initiator);
  void AccountWasted(const MeetingOutcome& outcome, p2p::PeerId initiator,
                     p2p::PeerId partner);
  /// Appends a ConvergencePoint for the current state and emits it as a
  /// "convergence" trace event + gauge updates.
  void RecordConvergencePoint();
  /// Records a point if meetings_done_ crossed the monitoring cadence.
  void MaybeMonitor();

  const graph::Graph& global_;
  SimulationConfig config_;
  Random rng_;
  p2p::Network network_;
  std::vector<JxpPeer> peers_;
  std::unique_ptr<PeerSelector> selector_;
  std::unique_ptr<p2p::ChurnModel> churn_;
  /// Created only when config.faults.Enabled(); all draws happen on the
  /// scheduling thread (RunMeetingsParallel draws each round's schedules at
  /// planning time), so fault sequences are thread-count independent.
  std::unique_ptr<p2p::FaultInjector> injector_;
  /// Meeting count of each peer at its last stale-resume checkpoint; empty
  /// unless stale resume is configured.
  std::vector<size_t> meetings_at_checkpoint_;
  std::unique_ptr<ThreadPool> pool_;  // Lazily created by RunMeetingsParallel.
  std::vector<double> global_scores_;
  std::vector<metrics::ScoredItem> global_top_k_;
  size_t meetings_done_ = 0;
  double total_estimated_traffic_bytes_ = 0;
  std::vector<std::pair<p2p::PeerId, p2p::PeerId>> meeting_log_;
  std::vector<ConvergencePoint> convergence_series_;
  size_t next_monitor_at_ = 0;  // Next meetings_done_ threshold to sample at.
};

}  // namespace core
}  // namespace jxp

#endif  // JXP_CORE_SIMULATION_H_
