#ifndef JXP_CORE_STATE_IO_H_
#define JXP_CORE_STATE_IO_H_

#include <string>

#include "common/statusor.h"
#include "core/jxp_peer.h"

namespace jxp {
namespace core {

/// Persistence of a peer's JXP state — fragment, score list, world node —
/// so a peer can stop and later resume exactly where it left off (peers are
/// long-running processes; the paper's algorithm "in principle, runs
/// forever").
///
/// Format: a line-based text file with a version header and a trailing
/// FNV-1a checksum over everything before it. Loading verifies the
/// checksum and every structural invariant, returning Corruption on any
/// mismatch.

/// Writes `peer`'s state to `path` (atomically: temp file + rename).
Status SavePeerState(const JxpPeer& peer, const std::string& path);

/// Restores a peer saved with SavePeerState. `options` supplies the runtime
/// options (they are not persisted; all peers of a network share them).
StatusOr<JxpPeer> LoadPeerState(const std::string& path, const JxpOptions& options);

}  // namespace core
}  // namespace jxp

#endif  // JXP_CORE_STATE_IO_H_
