#ifndef JXP_MARKOV_POWER_ITERATION_H_
#define JXP_MARKOV_POWER_ITERATION_H_

#include <vector>

#include "markov/sparse_matrix.h"

namespace jxp {

class ThreadPool;

namespace markov {

/// Options for the damped power iteration.
struct PowerIterationOptions {
  /// Probability of following a link (the paper's epsilon, usually 0.85);
  /// 1 - damping is the random-jump probability. Set to 1 for an undamped
  /// chain (requires ergodicity of the matrix itself).
  double damping = 0.85;
  /// L1 convergence threshold on successive iterates.
  double tolerance = 1e-10;
  /// Iteration cap.
  int max_iterations = 500;
  /// Worker threads. 1 runs the classic sequential push kernel; > 1 runs
  /// the pull-based (transposed CSR) kernel, where each thread owns a
  /// disjoint output range and reductions are combined blockwise, so the
  /// result is bit-identical at every thread count > 1 (and very close to,
  /// but not bit-identical with, the sequential kernel).
  int num_threads = 1;
  /// Optional externally owned pool to run the parallel kernel on (its size
  /// governs the concurrency); when null and num_threads > 1, a temporary
  /// pool of num_threads workers is created for the call.
  ThreadPool* pool = nullptr;
};

/// Result of a power iteration run.
struct PowerIterationResult {
  /// The (approximate) stationary distribution; sums to 1.
  std::vector<double> distribution;
  /// Number of iterations performed.
  int iterations = 0;
  /// Final L1 difference between the last two iterates.
  double residual = 0;
  /// True iff residual <= tolerance was reached within max_iterations.
  bool converged = false;
};

/// Computes the stationary distribution of the damped chain
///
///   x' = damping * (x * P + m(x) * dangling) + (1 - damping) * teleport
///
/// where m(x) = sum_i x_i * (1 - RowSum(i)) is the mass lost to
/// substochastic rows, redistributed along the `dangling` distribution.
///
/// - `teleport` and `dangling` must be probability distributions over the
///   matrix states (each sums to 1); pass the uniform distribution for
///   classic PageRank.
/// - `init` is the starting vector; it is normalized internally. Pass an
///   empty vector for the uniform start.
PowerIterationResult StationaryDistribution(const SparseMatrix& matrix,
                                            const std::vector<double>& teleport,
                                            const std::vector<double>& dangling,
                                            const std::vector<double>& init,
                                            const PowerIterationOptions& options);

/// Convenience overload using uniform teleport and dangling distributions
/// and a uniform start.
PowerIterationResult StationaryDistribution(const SparseMatrix& matrix,
                                            const PowerIterationOptions& options);

}  // namespace markov
}  // namespace jxp

#endif  // JXP_MARKOV_POWER_ITERATION_H_
