#include "markov/sparse_matrix.h"

#include <algorithm>
#include <utility>

namespace jxp {
namespace markov {

void SortAndMergeRow(std::vector<MatrixEntry>& row) {
  std::sort(row.begin(), row.end(),
            [](const MatrixEntry& a, const MatrixEntry& b) { return a.column < b.column; });
  size_t w = 0;
  for (size_t r = 0; r < row.size(); ++r) {
    if (w > 0 && row[w - 1].column == row[r].column) {
      row[w - 1].weight += row[r].weight;
    } else {
      row[w++] = row[r];
    }
  }
  row.resize(w);
}

void SparseMatrix::LeftMultiply(std::span<const double> x, std::span<double> y) const {
  JXP_CHECK_EQ(x.size(), NumStates());
  JXP_CHECK_EQ(y.size(), NumStates());
  std::fill(y.begin(), y.end(), 0.0);
  for (uint32_t i = 0; i < NumStates(); ++i) {
    const double xi = x[i];
    if (xi == 0) continue;
    for (const MatrixEntry& e : Row(i)) y[e.column] += xi * e.weight;
  }
}

void SparseMatrix::ReplaceLastRow(std::span<const MatrixEntry> entries) {
  JXP_CHECK_GT(NumStates(), 0u);
  const size_t last = NumStates() - 1;
  entries_.resize(row_offsets_[last]);
  entries_.insert(entries_.end(), entries.begin(), entries.end());
  row_offsets_[last + 1] = entries_.size();
  double sum = 0;
  for (const MatrixEntry& e : entries) {
    JXP_CHECK_LT(e.column, NumStates());
    JXP_CHECK_GE(e.weight, 0.0);
    sum += e.weight;
  }
  JXP_CHECK_LE(sum, 1.0 + 1e-9) << "replacement last row is super-stochastic";
  row_sums_[last] = sum;
}

TransposedMatrix::TransposedMatrix(const SparseMatrix& m) {
  const size_t n = m.NumStates();
  col_offsets_.assign(n + 1, 0);
  for (uint32_t i = 0; i < n; ++i) {
    for (const MatrixEntry& e : m.Row(i)) ++col_offsets_[e.column + 1];
  }
  for (size_t c = 0; c < n; ++c) col_offsets_[c + 1] += col_offsets_[c];
  entries_.resize(m.NumEntries());
  std::vector<uint64_t> cursor(col_offsets_.begin(), col_offsets_.end() - 1);
  // Row-ascending fill keeps each column's in-entries sorted by source row.
  for (uint32_t i = 0; i < n; ++i) {
    for (const MatrixEntry& e : m.Row(i)) {
      entries_[cursor[e.column]++] = {i, e.weight};
    }
  }
}

void TransposedMatrix::PullMultiply(std::span<const double> x, std::span<double> y,
                                    size_t begin_col, size_t end_col) const {
  JXP_CHECK_EQ(x.size(), NumStates());
  JXP_CHECK_EQ(y.size(), NumStates());
  JXP_CHECK_LE(end_col, NumStates());
  for (size_t j = begin_col; j < end_col; ++j) {
    double sum = 0;
    const MatrixEntry* e = entries_.data() + col_offsets_[j];
    const MatrixEntry* stop = entries_.data() + col_offsets_[j + 1];
    for (; e != stop; ++e) sum += x[e->column] * e->weight;
    y[j] = sum;
  }
}

void SparseMatrixBuilder::Add(uint32_t row, uint32_t column, double weight) {
  JXP_CHECK_LT(row, num_states_);
  JXP_CHECK_LT(column, num_states_);
  JXP_CHECK_GE(weight, 0.0);
  rows_[row].push_back({column, weight});
}

SparseMatrix SparseMatrixBuilder::Build() {
  SparseMatrix m;
  m.row_offsets_.assign(num_states_ + 1, 0);
  m.row_sums_.assign(num_states_, 0.0);
  size_t total = 0;
  for (auto& row : rows_) {
    SortAndMergeRow(row);
    total += row.size();
  }
  m.entries_.reserve(total);
  for (size_t i = 0; i < num_states_; ++i) {
    double sum = 0;
    for (const MatrixEntry& e : rows_[i]) sum += e.weight;
    // Bulk-move the merged row into the flat array (one memcpy-sized insert
    // instead of per-entry push_back) and release its storage right away.
    m.entries_.insert(m.entries_.end(), rows_[i].begin(), rows_[i].end());
    std::vector<MatrixEntry>().swap(rows_[i]);
    JXP_CHECK_LE(sum, 1.0 + 1e-9) << "row " << i << " is super-stochastic";
    m.row_sums_[i] = sum;
    m.row_offsets_[i + 1] = m.entries_.size();
  }
  rows_.clear();
  return m;
}

}  // namespace markov
}  // namespace jxp
