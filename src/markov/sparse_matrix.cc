#include "markov/sparse_matrix.h"

#include <algorithm>

namespace jxp {
namespace markov {

void SparseMatrix::LeftMultiply(std::span<const double> x, std::span<double> y) const {
  JXP_CHECK_EQ(x.size(), NumStates());
  JXP_CHECK_EQ(y.size(), NumStates());
  std::fill(y.begin(), y.end(), 0.0);
  for (uint32_t i = 0; i < NumStates(); ++i) {
    const double xi = x[i];
    if (xi == 0) continue;
    for (const MatrixEntry& e : Row(i)) y[e.column] += xi * e.weight;
  }
}

void SparseMatrixBuilder::Add(uint32_t row, uint32_t column, double weight) {
  JXP_CHECK_LT(row, num_states_);
  JXP_CHECK_LT(column, num_states_);
  JXP_CHECK_GE(weight, 0.0);
  rows_[row].push_back({column, weight});
}

SparseMatrix SparseMatrixBuilder::Build() {
  SparseMatrix m;
  m.row_offsets_.assign(num_states_ + 1, 0);
  m.row_sums_.assign(num_states_, 0.0);
  size_t total = 0;
  for (auto& row : rows_) {
    // Merge duplicate columns.
    std::sort(row.begin(), row.end(),
              [](const MatrixEntry& a, const MatrixEntry& b) { return a.column < b.column; });
    size_t w = 0;
    for (size_t r = 0; r < row.size(); ++r) {
      if (w > 0 && row[w - 1].column == row[r].column) {
        row[w - 1].weight += row[r].weight;
      } else {
        row[w++] = row[r];
      }
    }
    row.resize(w);
    total += w;
  }
  m.entries_.reserve(total);
  for (size_t i = 0; i < num_states_; ++i) {
    double sum = 0;
    for (const MatrixEntry& e : rows_[i]) {
      m.entries_.push_back(e);
      sum += e.weight;
    }
    JXP_CHECK_LE(sum, 1.0 + 1e-9) << "row " << i << " is super-stochastic";
    m.row_sums_[i] = sum;
    m.row_offsets_[i + 1] = m.entries_.size();
  }
  rows_.clear();
  return m;
}

}  // namespace markov
}  // namespace jxp
