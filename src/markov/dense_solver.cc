#include "markov/dense_solver.h"

#include <algorithm>
#include <cmath>

namespace jxp {
namespace markov {

StatusOr<std::vector<double>> SolveLinearSystem(std::vector<std::vector<double>> a,
                                                std::vector<double> b) {
  const size_t n = b.size();
  if (a.size() != n) return Status::InvalidArgument("matrix/vector dimension mismatch");
  for (const auto& row : a) {
    if (row.size() != n) return Status::InvalidArgument("matrix is not square");
  }

  // Forward elimination with partial pivoting.
  for (size_t col = 0; col < n; ++col) {
    size_t pivot = col;
    for (size_t r = col + 1; r < n; ++r) {
      if (std::abs(a[r][col]) > std::abs(a[pivot][col])) pivot = r;
    }
    if (std::abs(a[pivot][col]) < 1e-13) {
      return Status::FailedPrecondition("singular system");
    }
    std::swap(a[col], a[pivot]);
    std::swap(b[col], b[pivot]);
    const double inv = 1.0 / a[col][col];
    for (size_t r = col + 1; r < n; ++r) {
      const double factor = a[r][col] * inv;
      if (factor == 0) continue;
      for (size_t c = col; c < n; ++c) a[r][c] -= factor * a[col][c];
      b[r] -= factor * b[col];
    }
  }
  // Back substitution.
  std::vector<double> x(n, 0.0);
  for (size_t ri = n; ri-- > 0;) {
    double sum = b[ri];
    for (size_t c = ri + 1; c < n; ++c) sum -= a[ri][c] * x[c];
    x[ri] = sum / a[ri][ri];
  }
  return x;
}

std::vector<std::vector<double>> ToDense(const SparseMatrix& matrix) {
  const size_t n = matrix.NumStates();
  std::vector<std::vector<double>> dense(n, std::vector<double>(n, 0.0));
  for (uint32_t i = 0; i < n; ++i) {
    for (const MatrixEntry& e : matrix.Row(i)) dense[i][e.column] = e.weight;
  }
  return dense;
}

StatusOr<std::vector<double>> ExactStationaryDistribution(
    const std::vector<std::vector<double>>& p) {
  const size_t n = p.size();
  if (n == 0) return Status::InvalidArgument("empty chain");
  // Build (P^T - I), then replace the last row by the normalization
  // constraint sum(pi) = 1.
  std::vector<std::vector<double>> a(n, std::vector<double>(n, 0.0));
  for (size_t i = 0; i < n; ++i) {
    if (p[i].size() != n) return Status::InvalidArgument("matrix is not square");
    for (size_t j = 0; j < n; ++j) a[j][i] = p[i][j];
    a[i][i] -= 1.0;
  }
  std::vector<double> b(n, 0.0);
  for (size_t j = 0; j < n; ++j) a[n - 1][j] = 1.0;
  b[n - 1] = 1.0;
  JXP_ASSIGN_OR_RETURN(std::vector<double> pi, SolveLinearSystem(std::move(a), std::move(b)));
  for (double& v : pi) {
    if (v < 0 && v > -1e-9) v = 0;  // Clamp numerical noise.
  }
  return pi;
}

StatusOr<std::vector<double>> MeanFirstPassageTimes(const std::vector<std::vector<double>>& p,
                                                    uint32_t target) {
  const size_t n = p.size();
  if (target >= n) return Status::InvalidArgument("target out of range");
  // Unknowns: m_i for i != target. System: m_i - sum_{j != target} p_ij m_j = 1.
  const size_t dim = n - 1;
  auto reduced_index = [target](size_t i) { return i < target ? i : i - 1; };
  std::vector<std::vector<double>> a(dim, std::vector<double>(dim, 0.0));
  std::vector<double> b(dim, 1.0);
  for (size_t i = 0; i < n; ++i) {
    if (i == target) continue;
    const size_t ri = reduced_index(i);
    a[ri][ri] += 1.0;
    for (size_t j = 0; j < n; ++j) {
      if (j == target) continue;
      a[ri][reduced_index(j)] -= p[i][j];
    }
  }
  JXP_ASSIGN_OR_RETURN(std::vector<double> reduced,
                       SolveLinearSystem(std::move(a), std::move(b)));
  std::vector<double> m(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    if (i != target) m[i] = reduced[reduced_index(i)];
  }
  return m;
}

}  // namespace markov
}  // namespace jxp
