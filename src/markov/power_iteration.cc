#include "markov/power_iteration.h"

#include <algorithm>
#include <cmath>

namespace jxp {
namespace markov {

namespace {

/// Normalizes v to sum 1; falls back to uniform when the sum is 0.
void NormalizeL1(std::vector<double>& v) {
  double sum = 0;
  for (double x : v) sum += x;
  if (sum <= 0) {
    std::fill(v.begin(), v.end(), 1.0 / static_cast<double>(v.size()));
    return;
  }
  for (double& x : v) x /= sum;
}

double CheckDistribution(const std::vector<double>& v, size_t n, const char* what) {
  JXP_CHECK_EQ(v.size(), n) << what << " has wrong size";
  double sum = 0;
  for (double x : v) {
    JXP_CHECK_GE(x, 0.0) << what << " has a negative entry";
    sum += x;
  }
  JXP_CHECK(std::abs(sum - 1.0) < 1e-6) << what << " does not sum to 1 (sum=" << sum << ")";
  return sum;
}

}  // namespace

PowerIterationResult StationaryDistribution(const SparseMatrix& matrix,
                                            const std::vector<double>& teleport,
                                            const std::vector<double>& dangling,
                                            const std::vector<double>& init,
                                            const PowerIterationOptions& options) {
  const size_t n = matrix.NumStates();
  JXP_CHECK_GT(n, 0u);
  JXP_CHECK_GT(options.damping, 0.0);
  JXP_CHECK_LE(options.damping, 1.0);
  CheckDistribution(teleport, n, "teleport");
  CheckDistribution(dangling, n, "dangling");

  PowerIterationResult result;
  std::vector<double>& x = result.distribution;
  if (init.empty()) {
    x.assign(n, 1.0 / static_cast<double>(n));
  } else {
    JXP_CHECK_EQ(init.size(), n);
    x = init;
    NormalizeL1(x);
  }

  std::vector<double> next(n);
  const double jump = 1.0 - options.damping;
  for (result.iterations = 0; result.iterations < options.max_iterations;) {
    matrix.LeftMultiply(x, next);
    // Mass lost to substochastic rows.
    double missing = 0;
    for (size_t i = 0; i < n; ++i) missing += x[i] * (1.0 - matrix.RowSum(i));
    if (missing < 0) missing = 0;
    double residual = 0;
    for (size_t i = 0; i < n; ++i) {
      const double v =
          options.damping * (next[i] + missing * dangling[i]) + jump * teleport[i];
      residual += std::abs(v - x[i]);
      next[i] = v;
    }
    x.swap(next);
    ++result.iterations;
    result.residual = residual;
    if (residual <= options.tolerance) {
      result.converged = true;
      break;
    }
  }
  // Counter floating-point drift so downstream sums are exact.
  NormalizeL1(x);
  return result;
}

PowerIterationResult StationaryDistribution(const SparseMatrix& matrix,
                                            const PowerIterationOptions& options) {
  const std::vector<double> uniform(matrix.NumStates(),
                                    1.0 / static_cast<double>(matrix.NumStates()));
  return StationaryDistribution(matrix, uniform, uniform, {}, options);
}

}  // namespace markov
}  // namespace jxp
