#include "markov/power_iteration.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <optional>

#include "common/thread_pool.h"
#include "common/timer.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace jxp {
namespace markov {

namespace {

/// Power-iteration observables (DESIGN.md §6d). Everything but the "_ms"
/// histograms is a pure function of the inputs and bit-identical across
/// runs and thread counts.
struct PowerIterationMetrics {
  obs::Counter runs =
      obs::MetricsRegistry::Global().GetCounter("markov.power_iteration.runs");
  obs::Counter iterations_total =
      obs::MetricsRegistry::Global().GetCounter("markov.power_iteration.iterations_total");
  obs::Histogram iterations = obs::MetricsRegistry::Global().GetHistogram(
      "markov.power_iteration.iterations", {1, 2, 5, 10, 20, 50, 100, 200, 500});
  obs::Histogram final_residual = obs::MetricsRegistry::Global().GetHistogram(
      "markov.power_iteration.final_residual",
      {1e-15, 1e-13, 1e-11, 1e-9, 1e-7, 1e-5, 1e-3, 1e-1});
  obs::Histogram run_ms = obs::MetricsRegistry::Global().GetHistogram(
      "markov.power_iteration.run_ms", {0.01, 0.03, 0.1, 0.3, 1, 3, 10, 30, 100, 300, 1000});
  obs::Histogram iteration_ms = obs::MetricsRegistry::Global().GetHistogram(
      "markov.power_iteration.iteration_ms",
      {0.001, 0.003, 0.01, 0.03, 0.1, 0.3, 1, 3, 10});
};

PowerIterationMetrics& GetPowerIterationMetrics() {
  static PowerIterationMetrics metrics;
  return metrics;
}

/// Block size of the parallel kernel. The block partition — and therefore
/// the order in which blockwise reduction partials are combined — depends
/// only on this constant, never on the thread count, which is what makes
/// the parallel path bit-reproducible at any concurrency.
constexpr size_t kParallelGrain = 1024;

/// Normalizes v to sum 1; falls back to uniform when the sum is 0.
void NormalizeL1(std::vector<double>& v) {
  double sum = 0;
  for (double x : v) sum += x;
  if (sum <= 0) {
    std::fill(v.begin(), v.end(), 1.0 / static_cast<double>(v.size()));
    return;
  }
  for (double& x : v) x /= sum;
}

double CheckDistribution(const std::vector<double>& v, size_t n, const char* what) {
  JXP_CHECK_EQ(v.size(), n) << what << " has wrong size";
  double sum = 0;
  for (double x : v) {
    JXP_CHECK_GE(x, 0.0) << what << " has a negative entry";
    sum += x;
  }
  JXP_CHECK(std::abs(sum - 1.0) < 1e-6) << what << " does not sum to 1 (sum=" << sum << ")";
  return sum;
}

/// The sequential push kernel (the seed implementation, with the
/// 1 - RowSum(i) complement hoisted out of the per-iteration loop).
void IterateSequential(const SparseMatrix& matrix, const std::vector<double>& teleport,
                       const std::vector<double>& dangling,
                       const std::vector<double>& complement,
                       const PowerIterationOptions& options, PowerIterationResult& result) {
  const size_t n = matrix.NumStates();
  std::vector<double>& x = result.distribution;
  std::vector<double> next(n);
  const double jump = 1.0 - options.damping;
  for (result.iterations = 0; result.iterations < options.max_iterations;) {
    matrix.LeftMultiply(x, next);
    // Mass lost to substochastic rows.
    double missing = 0;
    for (size_t i = 0; i < n; ++i) missing += x[i] * complement[i];
    if (missing < 0) missing = 0;
    double residual = 0;
    for (size_t i = 0; i < n; ++i) {
      const double v =
          options.damping * (next[i] + missing * dangling[i]) + jump * teleport[i];
      residual += std::abs(v - x[i]);
      next[i] = v;
    }
    x.swap(next);
    ++result.iterations;
    result.residual = residual;
    if (residual <= options.tolerance) {
      result.converged = true;
      break;
    }
  }
}

/// The parallel pull kernel: each block of kParallelGrain output states is
/// produced by exactly one worker from the transposed matrix (no scatter
/// races), and the missing-mass / residual reductions accumulate per block
/// and combine in block order.
void IterateParallel(const SparseMatrix& matrix, const std::vector<double>& teleport,
                     const std::vector<double>& dangling,
                     const std::vector<double>& complement,
                     const PowerIterationOptions& options, ThreadPool& pool,
                     PowerIterationResult& result) {
  const size_t n = matrix.NumStates();
  const TransposedMatrix transposed(matrix);
  std::vector<double>& x = result.distribution;
  std::vector<double> next(n);
  const double jump = 1.0 - options.damping;
  const size_t num_blocks = (n + kParallelGrain - 1) / kParallelGrain;
  std::vector<double> partial(num_blocks);
  for (result.iterations = 0; result.iterations < options.max_iterations;) {
    pool.ParallelForBlocks(0, n, kParallelGrain,
                           [&](size_t begin, size_t end, size_t block) {
                             transposed.PullMultiply(x, next, begin, end);
                             double m = 0;
                             for (size_t i = begin; i < end; ++i) m += x[i] * complement[i];
                             partial[block] = m;
                           });
    double missing = 0;
    for (size_t b = 0; b < num_blocks; ++b) missing += partial[b];
    if (missing < 0) missing = 0;
    pool.ParallelForBlocks(0, n, kParallelGrain,
                           [&](size_t begin, size_t end, size_t block) {
                             double r = 0;
                             for (size_t i = begin; i < end; ++i) {
                               const double v = options.damping *
                                                    (next[i] + missing * dangling[i]) +
                                                jump * teleport[i];
                               r += std::abs(v - x[i]);
                               next[i] = v;
                             }
                             partial[block] = r;
                           });
    double residual = 0;
    for (size_t b = 0; b < num_blocks; ++b) residual += partial[b];
    x.swap(next);
    ++result.iterations;
    result.residual = residual;
    if (residual <= options.tolerance) {
      result.converged = true;
      break;
    }
  }
}

}  // namespace

PowerIterationResult StationaryDistribution(const SparseMatrix& matrix,
                                            const std::vector<double>& teleport,
                                            const std::vector<double>& dangling,
                                            const std::vector<double>& init,
                                            const PowerIterationOptions& options) {
  const size_t n = matrix.NumStates();
  JXP_CHECK_GT(n, 0u);
  JXP_CHECK_GT(options.damping, 0.0);
  JXP_CHECK_LE(options.damping, 1.0);
  CheckDistribution(teleport, n, "teleport");
  CheckDistribution(dangling, n, "dangling");

  obs::TraceSpan span("markov.power_iteration");
  span.AddAttr("states", n);
  span.AddAttr("threads", options.num_threads);
  std::optional<WallTimer> wall;
  if (obs::Enabled()) wall.emplace();

  PowerIterationResult result;
  std::vector<double>& x = result.distribution;
  if (init.empty()) {
    x.assign(n, 1.0 / static_cast<double>(n));
  } else {
    JXP_CHECK_EQ(init.size(), n);
    x = init;
    NormalizeL1(x);
  }

  // The per-row missing-mass complement 1 - RowSum(i), hoisted out of the
  // iteration loop (both kernels read it every iteration).
  std::vector<double> complement(n);
  for (size_t i = 0; i < n; ++i) complement[i] = 1.0 - matrix.RowSum(i);

  if (options.num_threads > 1) {
    ThreadPool* pool = options.pool;
    std::unique_ptr<ThreadPool> owned;
    if (pool == nullptr) {
      owned = std::make_unique<ThreadPool>(static_cast<size_t>(options.num_threads));
      pool = owned.get();
    }
    IterateParallel(matrix, teleport, dangling, complement, options, *pool, result);
  } else {
    IterateSequential(matrix, teleport, dangling, complement, options, result);
  }
  // Counter floating-point drift so downstream sums are exact.
  NormalizeL1(x);

  if (wall.has_value()) {
    PowerIterationMetrics& metrics = GetPowerIterationMetrics();
    metrics.runs.Increment();
    metrics.iterations_total.Increment(static_cast<uint64_t>(result.iterations));
    metrics.iterations.Observe(result.iterations);
    metrics.final_residual.Observe(result.residual);
    const double run_ms = wall->ElapsedMillis();
    metrics.run_ms.Observe(run_ms);
    if (result.iterations > 0) {
      metrics.iteration_ms.Observe(run_ms / result.iterations);
    }
  }
  if (span.active()) {
    span.AddAttr("iterations", result.iterations);
    span.AddAttr("residual", result.residual);
    span.AddAttr("converged", result.converged);
  }
  return result;
}

PowerIterationResult StationaryDistribution(const SparseMatrix& matrix,
                                            const PowerIterationOptions& options) {
  const std::vector<double> uniform(matrix.NumStates(),
                                    1.0 / static_cast<double>(matrix.NumStates()));
  return StationaryDistribution(matrix, uniform, uniform, {}, options);
}

}  // namespace markov
}  // namespace jxp
