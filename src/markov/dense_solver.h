#ifndef JXP_MARKOV_DENSE_SOLVER_H_
#define JXP_MARKOV_DENSE_SOLVER_H_

#include <vector>

#include "common/statusor.h"
#include "markov/sparse_matrix.h"

namespace jxp {
namespace markov {

/// Small dense linear-algebra helpers used to validate the iterative code on
/// small chains (tests and the theorem checks). All solvers are O(n^3) and
/// intended for n up to a few thousand.

/// Solves the linear system A x = b by Gaussian elimination with partial
/// pivoting. `a` is row-major n x n. Returns InvalidArgument on dimension
/// mismatch and FailedPrecondition on a (numerically) singular matrix.
StatusOr<std::vector<double>> SolveLinearSystem(std::vector<std::vector<double>> a,
                                                std::vector<double> b);

/// Converts a sparse transition matrix to dense row-major form.
std::vector<std::vector<double>> ToDense(const SparseMatrix& matrix);

/// Computes the exact stationary distribution of an irreducible stochastic
/// matrix P (rows sum to 1) by solving pi (P - I) = 0 with the normalization
/// sum(pi) = 1 replacing one equation. Returns FailedPrecondition if the
/// chain is reducible (singular system).
StatusOr<std::vector<double>> ExactStationaryDistribution(
    const std::vector<std::vector<double>>& p);

/// Mean first passage times to the single `target` state: m[i] is the
/// expected number of steps to first reach `target` from i (m[target] = 0).
/// Solves m_i = 1 + sum_{j != target} p_ij m_j.
StatusOr<std::vector<double>> MeanFirstPassageTimes(const std::vector<std::vector<double>>& p,
                                                    uint32_t target);

}  // namespace markov
}  // namespace jxp

#endif  // JXP_MARKOV_DENSE_SOLVER_H_
