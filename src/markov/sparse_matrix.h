#ifndef JXP_MARKOV_SPARSE_MATRIX_H_
#define JXP_MARKOV_SPARSE_MATRIX_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/check.h"

namespace jxp {
namespace markov {

/// One weighted entry of a sparse matrix row.
struct MatrixEntry {
  uint32_t column = 0;
  double weight = 0;
};

/// Square sparse row-major matrix of transition probabilities.
///
/// Rows may be *substochastic* (sum < 1): a row summing to zero models a
/// dangling state whose mass the power iteration redistributes according to
/// a caller-supplied dangling distribution. Weights must be non-negative and
/// row sums must not exceed 1 (+ small numerical slack).
class SparseMatrix {
 public:
  SparseMatrix() = default;

  /// Number of states (rows == columns).
  size_t NumStates() const { return row_offsets_.size() - 1; }

  /// Number of stored entries.
  size_t NumEntries() const { return entries_.size(); }

  /// Entries of row `i` (unordered columns, no duplicates).
  std::span<const MatrixEntry> Row(uint32_t i) const {
    JXP_CHECK_LT(i, NumStates());
    return {entries_.data() + row_offsets_[i], entries_.data() + row_offsets_[i + 1]};
  }

  /// Sum of the weights of row `i` (precomputed).
  double RowSum(uint32_t i) const {
    JXP_CHECK_LT(i, NumStates());
    return row_sums_[i];
  }

  /// Computes y = x * M (vector-matrix product from the left, the power
  /// iteration step). x and y must have NumStates() elements; y is
  /// overwritten.
  void LeftMultiply(std::span<const double> x, std::span<double> y) const;

 private:
  friend class SparseMatrixBuilder;

  std::vector<uint64_t> row_offsets_ = {0};
  std::vector<MatrixEntry> entries_;
  std::vector<double> row_sums_;
};

/// Row-by-row builder for SparseMatrix.
class SparseMatrixBuilder {
 public:
  /// Creates a builder for an n x n matrix.
  explicit SparseMatrixBuilder(size_t num_states) : num_states_(num_states) {
    rows_.resize(num_states);
  }

  /// Adds `weight` to entry (row, column); accumulates if called twice for
  /// the same cell. Weight must be non-negative.
  void Add(uint32_t row, uint32_t column, double weight);

  /// Finalizes the matrix, verifying that every row sums to at most
  /// 1 + 1e-9. The builder is left empty.
  SparseMatrix Build();

 private:
  size_t num_states_;
  std::vector<std::vector<MatrixEntry>> rows_;
};

}  // namespace markov
}  // namespace jxp

#endif  // JXP_MARKOV_SPARSE_MATRIX_H_
