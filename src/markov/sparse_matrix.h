#ifndef JXP_MARKOV_SPARSE_MATRIX_H_
#define JXP_MARKOV_SPARSE_MATRIX_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/check.h"

namespace jxp {
namespace markov {

/// One weighted entry of a sparse matrix row.
struct MatrixEntry {
  uint32_t column = 0;
  double weight = 0;
};

/// Sorts `row` by column and merges duplicate columns by adding their
/// weights (left to right in sorted order). Shared by SparseMatrixBuilder
/// and core::ExtendedSystemCache so both produce bit-identical rows.
void SortAndMergeRow(std::vector<MatrixEntry>& row);

/// Square sparse row-major matrix of transition probabilities.
///
/// Rows may be *substochastic* (sum < 1): a row summing to zero models a
/// dangling state whose mass the power iteration redistributes according to
/// a caller-supplied dangling distribution. Weights must be non-negative and
/// row sums must not exceed 1 (+ small numerical slack).
class SparseMatrix {
 public:
  SparseMatrix() = default;

  /// Number of states (rows == columns).
  size_t NumStates() const { return row_offsets_.size() - 1; }

  /// Number of stored entries.
  size_t NumEntries() const { return entries_.size(); }

  /// Entries of row `i` (unordered columns, no duplicates).
  std::span<const MatrixEntry> Row(uint32_t i) const {
    JXP_CHECK_LT(i, NumStates());
    return {entries_.data() + row_offsets_[i], entries_.data() + row_offsets_[i + 1]};
  }

  /// Sum of the weights of row `i` (precomputed).
  double RowSum(uint32_t i) const {
    JXP_CHECK_LT(i, NumStates());
    return row_sums_[i];
  }

  /// Computes y = x * M (vector-matrix product from the left, the power
  /// iteration step). x and y must have NumStates() elements; y is
  /// overwritten.
  void LeftMultiply(std::span<const double> x, std::span<double> y) const;

  /// Replaces the entries of the *last* row in place, leaving every other
  /// row untouched (the extended-system cache keeps the immutable local
  /// rows and splices in a fresh world row). Columns must be unique and in
  /// range; the new row sum must stay stochastic. The row sum is recomputed
  /// by summing the entries in storage order, matching
  /// SparseMatrixBuilder::Build.
  void ReplaceLastRow(std::span<const MatrixEntry> entries);

 private:
  friend class SparseMatrixBuilder;

  std::vector<uint64_t> row_offsets_ = {0};
  std::vector<MatrixEntry> entries_;
  std::vector<double> row_sums_;
};

/// Column-major (in-edge) view of a SparseMatrix for pull-based iteration:
/// y[j] is produced from j's in-entries only, so concurrent PullMultiply
/// calls on disjoint column ranges are race-free by construction. Within a
/// column the source rows are stored ascending, so the accumulation order —
/// and hence the floating-point result — is independent of how the columns
/// are partitioned across threads.
class TransposedMatrix {
 public:
  /// Builds the transposed view in O(entries). The source matrix is copied
  /// into column-major storage; it need not outlive the view.
  explicit TransposedMatrix(const SparseMatrix& m);

  /// Number of states (rows == columns).
  size_t NumStates() const { return col_offsets_.size() - 1; }

  /// Computes y[j] = sum_i x[i] * M(i, j) for j in [begin_col, end_col),
  /// writing only that range of y.
  void PullMultiply(std::span<const double> x, std::span<double> y, size_t begin_col,
                    size_t end_col) const;

 private:
  std::vector<uint64_t> col_offsets_ = {0};
  // `column` holds the *source row* of the entry.
  std::vector<MatrixEntry> entries_;
};

/// Row-by-row builder for SparseMatrix.
class SparseMatrixBuilder {
 public:
  /// Creates a builder for an n x n matrix.
  explicit SparseMatrixBuilder(size_t num_states) : num_states_(num_states) {
    rows_.resize(num_states);
  }

  /// Reserves capacity for `expected` entries in `row` — callers that know
  /// exact degrees up front (link-matrix and extended-system builds) avoid
  /// the push_back growth reallocations.
  void ReserveRow(uint32_t row, size_t expected) {
    JXP_CHECK_LT(row, num_states_);
    rows_[row].reserve(expected);
  }

  /// Adds `weight` to entry (row, column); accumulates if called twice for
  /// the same cell. Weight must be non-negative.
  void Add(uint32_t row, uint32_t column, double weight);

  /// Finalizes the matrix, verifying that every row sums to at most
  /// 1 + 1e-9. The builder is left empty.
  SparseMatrix Build();

 private:
  size_t num_states_;
  std::vector<std::vector<MatrixEntry>> rows_;
};

}  // namespace markov
}  // namespace jxp

#endif  // JXP_MARKOV_SPARSE_MATRIX_H_
