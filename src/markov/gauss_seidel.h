#ifndef JXP_MARKOV_GAUSS_SEIDEL_H_
#define JXP_MARKOV_GAUSS_SEIDEL_H_

#include "markov/power_iteration.h"

namespace jxp {
namespace markov {

/// Gauss-Seidel solver for the damped stationary equation
///
///   x = damping * (x P + m(x) dangling) + (1 - damping) teleport
///
/// updating components in place. On slowly-mixing chains (real Web graphs,
/// whose second eigenvalue is close to the damping factor) in-place updates
/// propagate mass much faster than Jacobi-style power iteration — the
/// "efficient PageRank computation" line of related work the paper cites;
/// on rapidly-mixing graphs the two are comparable and ordering effects can
/// even favor Jacobi. Needs the matrix in column-accessible form, so a
/// transposed copy is built once.
///
/// Semantics and parameters mirror StationaryDistribution; results agree to
/// the tolerance.
PowerIterationResult GaussSeidelStationary(const SparseMatrix& matrix,
                                           const std::vector<double>& teleport,
                                           const std::vector<double>& dangling,
                                           const std::vector<double>& init,
                                           const PowerIterationOptions& options);

}  // namespace markov
}  // namespace jxp

#endif  // JXP_MARKOV_GAUSS_SEIDEL_H_
