#include "markov/gauss_seidel.h"

#include <algorithm>
#include <cmath>

namespace jxp {
namespace markov {

PowerIterationResult GaussSeidelStationary(const SparseMatrix& matrix,
                                           const std::vector<double>& teleport,
                                           const std::vector<double>& dangling,
                                           const std::vector<double>& init,
                                           const PowerIterationOptions& options) {
  const size_t n = matrix.NumStates();
  JXP_CHECK_GT(n, 0u);
  JXP_CHECK_EQ(teleport.size(), n);
  JXP_CHECK_EQ(dangling.size(), n);

  // Transpose into per-column incoming lists; the diagonal is split out so
  // the update can solve for x_j exactly.
  std::vector<std::vector<MatrixEntry>> incoming(n);
  std::vector<double> diagonal(n, 0.0);
  for (uint32_t i = 0; i < n; ++i) {
    for (const MatrixEntry& e : matrix.Row(i)) {
      if (e.column == i) {
        diagonal[i] += e.weight;
      } else {
        incoming[e.column].push_back({i, e.weight});
      }
    }
  }

  PowerIterationResult result;
  std::vector<double>& x = result.distribution;
  if (init.empty()) {
    x.assign(n, 1.0 / static_cast<double>(n));
  } else {
    JXP_CHECK_EQ(init.size(), n);
    x = init;
  }

  const double eps = options.damping;
  const double jump = 1.0 - eps;
  // Missing (dangling) mass, maintained incrementally across updates.
  double missing = 0;
  for (size_t i = 0; i < n; ++i) missing += x[i] * (1.0 - matrix.RowSum(i));

  for (result.iterations = 0; result.iterations < options.max_iterations;) {
    double residual = 0;
    for (uint32_t j = 0; j < n; ++j) {
      double inflow = 0;
      for (const MatrixEntry& e : incoming[j]) inflow += x[e.column] * e.weight;
      const double lost_j = 1.0 - matrix.RowSum(j);
      const double missing_without_j = missing - x[j] * lost_j;
      const double denominator = 1.0 - eps * diagonal[j] - eps * lost_j * dangling[j];
      JXP_CHECK_GT(denominator, 0.0);
      const double updated =
          (eps * (inflow + missing_without_j * dangling[j]) + jump * teleport[j]) /
          denominator;
      residual += std::abs(updated - x[j]);
      missing += (updated - x[j]) * lost_j;
      x[j] = updated;
    }
    ++result.iterations;
    result.residual = residual;
    if (residual <= options.tolerance) {
      result.converged = true;
      break;
    }
  }
  // Normalize (Gauss-Seidel preserves the fixpoint, not intermediate sums).
  double sum = 0;
  for (double v : x) sum += v;
  if (sum > 0) {
    for (double& v : x) v /= sum;
  }
  return result;
}

}  // namespace markov
}  // namespace jxp
