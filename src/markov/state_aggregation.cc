#include "markov/state_aggregation.h"

namespace jxp {
namespace markov {

StatusOr<AggregatedChain> AggregateChain(const std::vector<std::vector<double>>& p,
                                         const std::vector<double>& pi,
                                         const std::vector<uint32_t>& block_of,
                                         uint32_t num_blocks) {
  const size_t n = p.size();
  if (pi.size() != n || block_of.size() != n) {
    return Status::InvalidArgument("pi/block_of size mismatch");
  }
  AggregatedChain out;
  out.block_mass.assign(num_blocks, 0.0);
  for (size_t i = 0; i < n; ++i) {
    if (block_of[i] >= num_blocks) return Status::InvalidArgument("block id out of range");
    out.block_mass[block_of[i]] += pi[i];
  }
  for (uint32_t b = 0; b < num_blocks; ++b) {
    if (out.block_mass[b] <= 0) {
      return Status::FailedPrecondition("block " + std::to_string(b) +
                                        " has zero stationary mass");
    }
  }
  out.transitions.assign(num_blocks, std::vector<double>(num_blocks, 0.0));
  for (size_t i = 0; i < n; ++i) {
    if (p[i].size() != n) return Status::InvalidArgument("matrix is not square");
    const uint32_t a = block_of[i];
    const double weight = pi[i] / out.block_mass[a];
    for (size_t j = 0; j < n; ++j) {
      out.transitions[a][block_of[j]] += weight * p[i][j];
    }
  }
  return out;
}

}  // namespace markov
}  // namespace jxp
