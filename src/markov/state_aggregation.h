#ifndef JXP_MARKOV_STATE_AGGREGATION_H_
#define JXP_MARKOV_STATE_AGGREGATION_H_

#include <cstdint>
#include <vector>

#include "common/statusor.h"
#include "markov/sparse_matrix.h"

namespace jxp {
namespace markov {

/// Exact state aggregation (lumping) of a Markov chain, the theory the JXP
/// world node builds on (paper Section 5, after Courtois/Meyer/Stewart).
///
/// Given a chain P with stationary distribution pi and a partition of the
/// states into blocks, the aggregated chain has one state per block and
/// transition probabilities
///
///   Q[A][B] = sum_{i in A} (pi_i / pi_A) * sum_{j in B} P[i][j]
///
/// Its stationary distribution equals the block sums of pi — which is why a
/// peer that aggregates all external pages into one world node with the
/// *correct* external scores observes the exact local stationary mass.
struct AggregatedChain {
  /// Aggregated transition matrix, one row per block.
  std::vector<std::vector<double>> transitions;
  /// Stationary mass per block (block sums of pi).
  std::vector<double> block_mass;
};

/// Computes the exact aggregation of the chain `p` (dense, rows sum to 1)
/// under `block_of` (block id per state, dense ids 0..num_blocks-1), using
/// stationary weights `pi`. Returns InvalidArgument on shape errors and
/// FailedPrecondition if some block has zero stationary mass.
StatusOr<AggregatedChain> AggregateChain(const std::vector<std::vector<double>>& p,
                                         const std::vector<double>& pi,
                                         const std::vector<uint32_t>& block_of,
                                         uint32_t num_blocks);

}  // namespace markov
}  // namespace jxp

#endif  // JXP_MARKOV_STATE_AGGREGATION_H_
