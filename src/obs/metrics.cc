#include "obs/metrics.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "obs/json_writer.h"

namespace jxp {
namespace obs {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

// ---------------------------------------------------------------------------
// HistogramData

HistogramData::HistogramData(std::vector<double> upper_bounds)
    : upper_bounds_(std::move(upper_bounds)),
      counts_(upper_bounds_.size() + 1, 0),
      min_(kInf),
      max_(-kInf) {
  for (size_t i = 0; i < upper_bounds_.size(); ++i) {
    JXP_CHECK(std::isfinite(upper_bounds_[i])) << "histogram bound must be finite";
    if (i > 0) {
      JXP_CHECK_GT(upper_bounds_[i], upper_bounds_[i - 1])
          << "histogram bounds must be strictly increasing";
    }
  }
}

int64_t HistogramData::ToSumUnits(double value) {
  // floor(v * scale + 0.5): deterministic round-half-up; exact integer math
  // from here on, so partial sums merge associatively.
  return static_cast<int64_t>(std::floor(value * kSumScale + 0.5));
}

size_t HistogramData::BucketIndexOf(double value) const {
  // First bound >= value: bucket i covers (bound[i-1], bound[i]], so a
  // value exactly on a bound lands in that bound's bucket.
  return static_cast<size_t>(
      std::lower_bound(upper_bounds_.begin(), upper_bounds_.end(), value) -
      upper_bounds_.begin());
}

void HistogramData::Observe(double value) {
  JXP_CHECK(std::isfinite(value)) << "histogram sample must be finite";
  JXP_CHECK_LE(std::abs(value), kMaxValue) << "histogram sample out of range";
  ++counts_[BucketIndexOf(value)];
  ++count_;
  sum_units_ += ToSumUnits(value);
  if (value < min_) min_ = value;
  if (value > max_) max_ = value;
}

uint64_t HistogramData::bucket_count(size_t i) const {
  JXP_CHECK_LT(i, upper_bounds_.size());
  return counts_[i];
}

void HistogramData::MergeFrom(const HistogramData& other) {
  JXP_CHECK(SameBuckets(other)) << "merging histograms with different buckets";
  for (size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  count_ += other.count_;
  sum_units_ += other.sum_units_;
  if (other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
}

void HistogramData::AccumulateRaw(const uint64_t* bucket_counts, size_t num_counts,
                                  uint64_t count, int64_t sum_units, double min_value,
                                  double max_value) {
  JXP_CHECK_EQ(num_counts, counts_.size());
  for (size_t i = 0; i < num_counts; ++i) counts_[i] += bucket_counts[i];
  count_ += count;
  sum_units_ += sum_units;
  if (min_value < min_) min_ = min_value;
  if (max_value > max_) max_ = max_value;
}

void HistogramData::Clear() {
  std::fill(counts_.begin(), counts_.end(), 0);
  count_ = 0;
  sum_units_ = 0;
  min_ = kInf;
  max_ = -kInf;
}

// ---------------------------------------------------------------------------
// Registry shards

struct MetricsRegistry::GaugeCell {
  std::atomic<uint64_t> bits{0};
  std::atomic<uint64_t> set_count{0};
};

struct MetricsRegistry::Shard {
  /// Per-shard accumulators of one histogram. Cells are relaxed atomics
  /// written only by the owning thread (plain load-modify-store, exact) and
  /// read by Snapshot, so concurrent snapshots are race-free.
  struct HistShard {
    explicit HistShard(size_t num_buckets) : num_counts(num_buckets + 1) {
      counts = std::make_unique<std::atomic<uint64_t>[]>(num_counts);
      for (size_t i = 0; i < num_counts; ++i) counts[i].store(0, std::memory_order_relaxed);
      min_bits.store(std::bit_cast<uint64_t>(kInf), std::memory_order_relaxed);
      max_bits.store(std::bit_cast<uint64_t>(-kInf), std::memory_order_relaxed);
    }
    std::unique_ptr<std::atomic<uint64_t>[]> counts;
    size_t num_counts;
    std::atomic<uint64_t> count{0};
    std::atomic<int64_t> sum_units{0};
    std::atomic<uint64_t> min_bits;
    std::atomic<uint64_t> max_bits;
  };

  std::array<std::atomic<uint64_t>, kMaxMetrics> counters{};
  std::array<std::atomic<HistShard*>, kMaxMetrics> hists{};
  /// Owns the HistShards published in `hists`. Appended only by the owning
  /// thread; freed with the registry.
  std::vector<std::unique_ptr<HistShard>> owned;
};

// ---------------------------------------------------------------------------
// MetricsRegistry

namespace {
std::atomic<uint64_t> g_next_registry_id{1};
}  // namespace

MetricsRegistry::MetricsRegistry()
    : registry_id_(g_next_registry_id.fetch_add(1, std::memory_order_relaxed)),
      gauges_(std::make_unique<GaugeCell[]>(kMaxMetrics)) {}

MetricsRegistry::~MetricsRegistry() = default;

MetricsRegistry& MetricsRegistry::Global() {
  // Leaked deliberately: bench exporters run from atexit handlers, which
  // would otherwise race static destruction order.
  static MetricsRegistry* global = new MetricsRegistry();
  return *global;
}

uint32_t MetricsRegistry::Register(std::string_view name, Kind kind,
                                   std::vector<double> upper_bounds) {
  JXP_CHECK(!name.empty());
  std::lock_guard<std::mutex> lock(mutex_);
  for (size_t id = 0; id < metrics_.size(); ++id) {
    if (metrics_[id].name != name) continue;
    JXP_CHECK(metrics_[id].kind == kind)
        << "metric '" << metrics_[id].name << "' re-registered with a different kind";
    if (kind == Kind::kHistogram) {
      JXP_CHECK(metrics_[id].upper_bounds == upper_bounds)
          << "histogram '" << metrics_[id].name << "' re-registered with different buckets";
    }
    return static_cast<uint32_t>(id);
  }
  JXP_CHECK_LT(metrics_.size(), kMaxMetrics) << "metrics registry full";
  metrics_.push_back({std::string(name), kind, std::move(upper_bounds)});
  return static_cast<uint32_t>(metrics_.size() - 1);
}

Counter MetricsRegistry::GetCounter(std::string_view name) {
  return Counter(this, Register(name, Kind::kCounter, {}));
}

Gauge MetricsRegistry::GetGauge(std::string_view name) {
  return Gauge(this, Register(name, Kind::kGauge, {}));
}

Histogram MetricsRegistry::GetHistogram(std::string_view name,
                                        std::vector<double> upper_bounds) {
  const uint32_t id = Register(name, Kind::kHistogram, std::move(upper_bounds));
  const std::vector<double>* bounds;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    bounds = &metrics_[id].upper_bounds;  // Stable: metrics_ is a deque.
  }
  return Histogram(this, id, bounds);
}

MetricsRegistry::Shard& MetricsRegistry::LocalShard() {
  struct CacheEntry {
    uint64_t registry_id;
    Shard* shard;
  };
  thread_local std::vector<CacheEntry> cache;
  for (const CacheEntry& entry : cache) {
    if (entry.registry_id == registry_id_) return *entry.shard;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  shards_.push_back(std::make_unique<Shard>());
  Shard* shard = shards_.back().get();
  cache.push_back({registry_id_, shard});
  return *shard;
}

void MetricsRegistry::AddCounter(uint32_t id, uint64_t n) {
  std::atomic<uint64_t>& cell = LocalShard().counters[id];
  cell.store(cell.load(std::memory_order_relaxed) + n, std::memory_order_relaxed);
}

void MetricsRegistry::SetGauge(uint32_t id, double value) {
  GaugeCell& cell = gauges_[id];
  cell.bits.store(std::bit_cast<uint64_t>(value), std::memory_order_relaxed);
  cell.set_count.fetch_add(1, std::memory_order_relaxed);
}

void MetricsRegistry::ObserveHistogram(uint32_t id, const std::vector<double>& bounds,
                                       double value) {
  JXP_CHECK(std::isfinite(value)) << "histogram sample must be finite";
  JXP_CHECK_LE(std::abs(value), HistogramData::kMaxValue)
      << "histogram sample out of range";
  Shard& shard = LocalShard();
  Shard::HistShard* hist = shard.hists[id].load(std::memory_order_acquire);
  if (hist == nullptr) {
    shard.owned.push_back(std::make_unique<Shard::HistShard>(bounds.size()));
    hist = shard.owned.back().get();
    shard.hists[id].store(hist, std::memory_order_release);
  }
  const size_t bucket = static_cast<size_t>(
      std::lower_bound(bounds.begin(), bounds.end(), value) - bounds.begin());
  std::atomic<uint64_t>& bucket_cell = hist->counts[bucket];
  bucket_cell.store(bucket_cell.load(std::memory_order_relaxed) + 1,
                    std::memory_order_relaxed);
  hist->count.store(hist->count.load(std::memory_order_relaxed) + 1,
                    std::memory_order_relaxed);
  hist->sum_units.store(
      hist->sum_units.load(std::memory_order_relaxed) + HistogramData::ToSumUnits(value),
      std::memory_order_relaxed);
  if (value < std::bit_cast<double>(hist->min_bits.load(std::memory_order_relaxed))) {
    hist->min_bits.store(std::bit_cast<uint64_t>(value), std::memory_order_relaxed);
  }
  if (value > std::bit_cast<double>(hist->max_bits.load(std::memory_order_relaxed))) {
    hist->max_bits.store(std::bit_cast<uint64_t>(value), std::memory_order_relaxed);
  }
}

void Counter::Increment(uint64_t n) {
  if (!Enabled() || registry_ == nullptr) return;
  registry_->AddCounter(id_, n);
}

void Gauge::Set(double value) {
  if (!Enabled() || registry_ == nullptr) return;
  registry_->SetGauge(id_, value);
}

void Histogram::Observe(double value) {
  if (!Enabled() || registry_ == nullptr) return;
  registry_->ObserveHistogram(id_, *bounds_, value);
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snapshot;
  std::lock_guard<std::mutex> lock(mutex_);
  for (size_t id = 0; id < metrics_.size(); ++id) {
    const MetricInfo& info = metrics_[id];
    switch (info.kind) {
      case Kind::kCounter: {
        uint64_t total = 0;
        for (const auto& shard : shards_) {
          total += shard->counters[id].load(std::memory_order_relaxed);
        }
        snapshot.counters.push_back({info.name, total});
        break;
      }
      case Kind::kGauge: {
        const GaugeCell& cell = gauges_[id];
        const bool set = cell.set_count.load(std::memory_order_relaxed) > 0;
        snapshot.gauges.push_back(
            {info.name, std::bit_cast<double>(cell.bits.load(std::memory_order_relaxed)),
             set});
        break;
      }
      case Kind::kHistogram: {
        HistogramData merged{info.upper_bounds};
        for (const auto& shard : shards_) {
          const Shard::HistShard* hist = shard->hists[id].load(std::memory_order_acquire);
          if (hist == nullptr) continue;
          std::vector<uint64_t> counts(hist->num_counts);
          for (size_t i = 0; i < hist->num_counts; ++i) {
            counts[i] = hist->counts[i].load(std::memory_order_relaxed);
          }
          merged.AccumulateRaw(
              counts.data(), counts.size(), hist->count.load(std::memory_order_relaxed),
              hist->sum_units.load(std::memory_order_relaxed),
              std::bit_cast<double>(hist->min_bits.load(std::memory_order_relaxed)),
              std::bit_cast<double>(hist->max_bits.load(std::memory_order_relaxed)));
        }
        snapshot.histograms.push_back({info.name, std::move(merged)});
        break;
      }
    }
  }
  const auto by_name = [](const auto& a, const auto& b) { return a.name < b.name; };
  std::sort(snapshot.counters.begin(), snapshot.counters.end(), by_name);
  std::sort(snapshot.gauges.begin(), snapshot.gauges.end(), by_name);
  std::sort(snapshot.histograms.begin(), snapshot.histograms.end(), by_name);
  return snapshot;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& shard : shards_) {
    for (auto& counter : shard->counters) counter.store(0, std::memory_order_relaxed);
    for (auto& owned : shard->owned) {
      for (size_t i = 0; i < owned->num_counts; ++i) {
        owned->counts[i].store(0, std::memory_order_relaxed);
      }
      owned->count.store(0, std::memory_order_relaxed);
      owned->sum_units.store(0, std::memory_order_relaxed);
      owned->min_bits.store(std::bit_cast<uint64_t>(kInf), std::memory_order_relaxed);
      owned->max_bits.store(std::bit_cast<uint64_t>(-kInf), std::memory_order_relaxed);
    }
  }
  for (size_t id = 0; id < metrics_.size(); ++id) {
    gauges_[id].bits.store(0, std::memory_order_relaxed);
    gauges_[id].set_count.store(0, std::memory_order_relaxed);
  }
}

// ---------------------------------------------------------------------------
// Snapshot serialization

bool IsTimingMetric(std::string_view name) {
  return name.ends_with("_ms") || name.ends_with("_seconds") || name.ends_with("_ns");
}

std::string MetricNameViolation(std::string_view name) {
  if (name.empty()) return "empty name";
  for (const char c : name) {
    if ((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_' || c == '.') {
      continue;
    }
    return std::string("illegal character '") + c + "' (allowed: [a-z0-9_.])";
  }
  if (name.front() == '.' || name.back() == '.' ||
      name.find("..") != std::string_view::npos) {
    return "empty dot-separated segment";
  }
  if (name.front() == '_' || name.back() == '_') {
    return "leading or trailing underscore";
  }
  // Timing metrics must use the three canonical suffixes and nothing that
  // merely looks like one: a near-miss suffix would carry nondeterministic
  // values yet survive ToJsonLines(include_timing=false), breaking the
  // cross-thread-count byte-for-byte determinism tests.
  if (!IsTimingMetric(name)) {
    static constexpr std::string_view kNearMisses[] = {
        "_millis", "_msec",   "_msecs",  "_sec",      "_secs",
        "_nanos",  "_micros", "_us",     "_duration", "_elapsed",
        "_latency", "_time",  "_wall",   "_cpu"};
    for (const std::string_view suffix : kNearMisses) {
      if (name.ends_with(suffix)) {
        return std::string("suffix '") + std::string(suffix) +
               "' looks like a timing unit; timing metrics must end in _ms, "
               "_seconds, or _ns";
      }
    }
  }
  return "";
}

std::string MetricsSnapshot::ToJsonLines(bool include_timing) const {
  std::string out;
  JsonWriter writer;
  for (const CounterValue& counter : counters) {
    if (!include_timing && IsTimingMetric(counter.name)) continue;
    writer.Field("type", "counter").Field("name", counter.name).Field("value",
                                                                      counter.value);
    out += writer.TakeLine();
    out.push_back('\n');
  }
  for (const GaugeValue& gauge : gauges) {
    if (!include_timing && IsTimingMetric(gauge.name)) continue;
    writer.Field("type", "gauge").Field("name", gauge.name);
    if (gauge.set) {
      writer.Field("value", gauge.value);
    } else {
      writer.FieldRawJson("value", "null");
    }
    out += writer.TakeLine();
    out.push_back('\n');
  }
  for (const HistogramValue& histogram : histograms) {
    if (!include_timing && IsTimingMetric(histogram.name)) continue;
    const HistogramData& data = histogram.data;
    writer.Field("type", "histogram")
        .Field("name", histogram.name)
        .Field("count", data.count())
        .Field("sum", data.sum());
    if (data.count() > 0) {
      writer.Field("mean", data.mean()).Field("min", data.min()).Field("max", data.max());
    }
    writer.BeginArray("buckets");
    for (size_t i = 0; i < data.num_buckets(); ++i) {
      writer.BeginArrayObject()
          .Field("le", data.upper_bounds()[i])
          .Field("count", data.bucket_count(i))
          .End();
    }
    writer.BeginArrayObject()
        .Field("le", "+Inf")
        .Field("count", data.overflow_count())
        .End();
    writer.End();
    out += writer.TakeLine();
    out.push_back('\n');
  }
  return out;
}

}  // namespace obs
}  // namespace jxp
