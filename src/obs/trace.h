#ifndef JXP_OBS_TRACE_H_
#define JXP_OBS_TRACE_H_

#include <cstdint>
#include <cstdio>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "obs/json_writer.h"
#include "obs/telemetry.h"

namespace jxp {
namespace obs {

/// Consumer of the structured telemetry stream: one complete JSON object
/// per WriteLine call (no trailing newline). Implementations must be
/// thread-safe — spans complete on pool workers.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void WriteLine(std::string_view line) = 0;
  virtual void Flush() {}
};

/// Writes JSON lines to a FILE*, mutex-guarded.
class JsonlTraceSink : public TraceSink {
 public:
  /// Opens `path` for writing; null on failure.
  static std::unique_ptr<JsonlTraceSink> Open(const std::string& path);
  /// Takes ownership of `file` when `owns_file` (closed on destruction).
  JsonlTraceSink(std::FILE* file, bool owns_file);
  ~JsonlTraceSink() override;

  void WriteLine(std::string_view line) override;
  void Flush() override;

 private:
  std::mutex mutex_;
  std::FILE* file_;
  bool owns_file_;
};

/// Collects lines in memory (tests).
class StringTraceSink : public TraceSink {
 public:
  void WriteLine(std::string_view line) override;
  std::vector<std::string> TakeLines();

 private:
  std::mutex mutex_;
  std::vector<std::string> lines_;
};

/// Installs the process-wide sink spans and events are emitted to; pass
/// nullptr to uninstall. The caller keeps ownership and must keep the sink
/// alive until uninstalled. Returns the previous sink.
TraceSink* InstallTraceSink(TraceSink* sink);
TraceSink* CurrentTraceSink();

/// RAII install/restore, for tests and bench scopes.
class ScopedTraceSink {
 public:
  explicit ScopedTraceSink(TraceSink* sink) : previous_(InstallTraceSink(sink)) {}
  ScopedTraceSink(const ScopedTraceSink&) = delete;
  ScopedTraceSink& operator=(const ScopedTraceSink&) = delete;
  ~ScopedTraceSink() { InstallTraceSink(previous_); }

 private:
  TraceSink* previous_;
};

/// A scoped trace span: measures wall time and per-thread CPU time between
/// construction and destruction and emits one "span" JSON line to the
/// installed sink. Spans nest per thread (each record carries its id, its
/// parent's id, and its depth) and carry key/value attributes in insertion
/// order.
///
/// When telemetry is disabled or no sink is installed, construction is one
/// atomic load and no clocks are read. `name` must outlive the span (pass a
/// string literal). Unlike metrics, the trace stream is a *diagnostic*
/// layer: line order and span ids depend on thread scheduling.
class TraceSpan {
 public:
  explicit TraceSpan(std::string_view name);
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
  ~TraceSpan();

  /// True when this span will emit a record (sink installed and telemetry
  /// enabled at construction); use to skip expensive attribute computation.
  bool active() const { return active_; }

  void AddAttr(std::string_view key, double value);
  void AddAttr(std::string_view key, std::string_view value);
  void AddAttr(std::string_view key, const char* value);
  void AddAttr(std::string_view key, bool value);
  template <typename T, std::enable_if_t<std::is_integral_v<T> && !std::is_same_v<T, bool>,
                                         int> = 0>
  void AddAttr(std::string_view key, T value) {
    if (!active_) return;
    if constexpr (std::is_signed_v<T>) {
      AddAttrInt(key, static_cast<int64_t>(value));
    } else {
      AddAttrUint(key, static_cast<uint64_t>(value));
    }
  }

 private:
  void AddAttrInt(std::string_view key, int64_t value);
  void AddAttrUint(std::string_view key, uint64_t value);

  bool active_ = false;
  std::string_view name_;
  uint64_t id_ = 0;
  uint64_t parent_ = 0;
  int depth_ = 0;
  double wall_start_seconds_ = 0;
  double cpu_start_seconds_ = 0;
  /// Attribute fields, pre-serialized as `"key":value` JSON fragments.
  std::string attrs_;
};

/// Emits one standalone "event" JSON line: {"type":"event","name":<name>,
/// ...fields added by `fill`}. `fill` is only invoked when a sink is
/// installed and telemetry is enabled, so callers may compute values
/// lazily. Thread-safe.
void EmitEvent(std::string_view name, const std::function<void(JsonWriter&)>& fill);

}  // namespace obs
}  // namespace jxp

#endif  // JXP_OBS_TRACE_H_
