#ifndef JXP_OBS_METRICS_H_
#define JXP_OBS_METRICS_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/telemetry.h"

namespace jxp {
namespace obs {

class MetricsRegistry;

/// A fixed-bucket histogram *value*: bucket counts plus count / sum / min /
/// max of the observed samples. Doubles twice in this layer: it is the
/// standalone accumulator used outside the registry (e.g.
/// p2p::PeerTraffic), and it is the merged per-metric result inside a
/// MetricsSnapshot.
///
/// Determinism contract: every accumulated quantity is order-independent —
/// bucket counts and the sample count are integers, min/max are exact, and
/// the sum is accumulated in fixed-point units of 2^-20 (kSumScale) so that
/// merging partial histograms is integer addition and therefore associative
/// and commutative. Observing the same multiset of values, in any order and
/// split across any number of threads/shards, yields bit-identical state.
/// The price is quantization: sums are exact to 2^-20 per sample (values
/// must stay below 1e12 in magnitude; enforced).
class HistogramData {
 public:
  /// Fixed-point scale of the sum accumulator (2^20).
  static constexpr double kSumScale = 1048576.0;
  /// Largest |value| Observe accepts (keeps the scaled sum inside int64
  /// shard accumulators for any realistic sample count).
  static constexpr double kMaxValue = 1e12;

  /// A histogram with no buckets still tracks count/sum/min/max.
  HistogramData() : HistogramData(std::vector<double>{}) {}
  /// `upper_bounds` must be strictly increasing and finite. Bucket i counts
  /// observations in (upper_bounds[i-1], upper_bounds[i]]; one implicit
  /// overflow bucket counts observations above the last bound.
  explicit HistogramData(std::vector<double> upper_bounds);

  /// Records one sample. `value` must be finite and |value| <= kMaxValue.
  void Observe(double value);

  /// Merges another histogram with identical bucket bounds into this one.
  void MergeFrom(const HistogramData& other);

  /// Quantizes `value` to the fixed-point sum units (the exact integer a
  /// single Observe adds to the sum accumulator).
  static int64_t ToSumUnits(double value);

  uint64_t count() const { return count_; }
  /// Sum of samples, exact to 2^-20 per sample.
  double sum() const { return static_cast<double>(sum_units_) / kSumScale; }
  double mean() const { return count_ == 0 ? 0.0 : sum() / static_cast<double>(count_); }
  /// Smallest / largest observed sample; +inf / -inf when empty.
  double min() const { return min_; }
  double max() const { return max_; }

  size_t num_buckets() const { return upper_bounds_.size(); }
  const std::vector<double>& upper_bounds() const { return upper_bounds_; }
  /// Count of bucket i (i < num_buckets()).
  uint64_t bucket_count(size_t i) const;
  /// Count of samples above the last bound (all samples when bucketless).
  uint64_t overflow_count() const { return counts_.back(); }
  /// Index of the bucket `value` falls into; num_buckets() for overflow.
  size_t BucketIndexOf(double value) const;

  /// Drops all samples, keeps the bucket layout.
  void Clear();

  bool SameBuckets(const HistogramData& other) const {
    return upper_bounds_ == other.upper_bounds_;
  }

 private:
  friend class MetricsRegistry;

  /// Registry-internal: folds raw shard accumulators into this histogram.
  void AccumulateRaw(const uint64_t* bucket_counts, size_t num_counts, uint64_t count,
                     int64_t sum_units, double min_value, double max_value);

  std::vector<double> upper_bounds_;
  std::vector<uint64_t> counts_;  // num_buckets() + 1; last = overflow.
  uint64_t count_ = 0;
  __int128 sum_units_ = 0;
  double min_;
  double max_;
};

/// Handles vended by MetricsRegistry. Cheap to copy; a default-constructed
/// handle is a no-op. All operations are thread-safe (each thread writes
/// its own registry shard) and lock-free on the hot path.
class Counter {
 public:
  Counter() = default;
  void Increment(uint64_t n = 1);

 private:
  friend class MetricsRegistry;
  Counter(MetricsRegistry* registry, uint32_t id) : registry_(registry), id_(id) {}
  MetricsRegistry* registry_ = nullptr;
  uint32_t id_ = 0;
};

/// A settable value. Unlike counters and histograms, gauges are stored in
/// one registry-level cell (last Set wins), so they are deterministic only
/// under single-writer use; set them from sequential code (e.g. the
/// simulation thread), not from pool workers.
class Gauge {
 public:
  Gauge() = default;
  void Set(double value);

 private:
  friend class MetricsRegistry;
  Gauge(MetricsRegistry* registry, uint32_t id) : registry_(registry), id_(id) {}
  MetricsRegistry* registry_ = nullptr;
  uint32_t id_ = 0;
};

class Histogram {
 public:
  Histogram() = default;
  void Observe(double value);

 private:
  friend class MetricsRegistry;
  Histogram(MetricsRegistry* registry, uint32_t id, const std::vector<double>* bounds)
      : registry_(registry), id_(id), bounds_(bounds) {}
  MetricsRegistry* registry_ = nullptr;
  uint32_t id_ = 0;
  /// Points into the registry's stable metric table (std::deque), so the
  /// hot path reads bucket bounds without touching the registry lock.
  const std::vector<double>* bounds_ = nullptr;
};

/// A deterministic point-in-time view of a registry: every metric merged
/// across all thread shards, sorted by name.
struct MetricsSnapshot {
  struct CounterValue {
    std::string name;
    uint64_t value = 0;
  };
  struct GaugeValue {
    std::string name;
    double value = 0;
    /// False until the first Set (the exporter then emits null).
    bool set = false;
  };
  struct HistogramValue {
    std::string name;
    HistogramData data;
  };

  std::vector<CounterValue> counters;
  std::vector<GaugeValue> gauges;
  std::vector<HistogramValue> histograms;

  /// Serializes the snapshot as JSON lines (one '\n'-terminated line per
  /// metric, metrics sorted by name within each kind, counters first, then
  /// gauges, then histograms). When `include_timing` is false, metrics under
  /// the timing naming convention (IsTimingMetric) are skipped — the form
  /// the cross-thread-count determinism tests compare byte for byte.
  std::string ToJsonLines(bool include_timing = true) const;
};

/// Naming convention: metrics measuring elapsed time carry an "_ms",
/// "_seconds", or "_ns" suffix. They are the only metrics whose values vary
/// from run to run; everything else is a pure function of the simulated
/// work and is bit-identical across runs and thread counts (see DESIGN.md
/// §6d and docs/METRICS.md).
bool IsTimingMetric(std::string_view name);

/// Registry hygiene check behind the convention above: returns an empty
/// string when `name` conforms, else a human-readable reason. Enforced
/// rules: lowercase [a-z0-9_.] only, non-empty dot-separated segments, and
/// no near-miss timing suffix ("_millis", "_nanos", "_secs", "_latency",
/// "_time", ... ) — a metric that measures elapsed time must end in
/// exactly "_ms", "_seconds", or "_ns" so ToJsonLines(include_timing=false)
/// provably excludes it. Tests snapshot the registry and run every
/// registered name through this check (tests/obs/metrics_test.cc,
/// tests/qp/serving_test.cc).
std::string MetricNameViolation(std::string_view name);

/// A registry of named counters, gauges, and histograms.
///
/// Writes go to thread-local shards: each (thread, registry) pair owns a
/// shard, so recording needs no locks and no cross-thread RMW contention —
/// safe inside ThreadPool::ParallelFor / JxpSimulation::RunMeetingsParallel.
/// Shard cells are relaxed atomics (single writer each), so Snapshot() may
/// run concurrently with writers without data races; for a *deterministic*
/// snapshot, call it from a point with a happens-before edge to the writers
/// (e.g. after ParallelFor returns — the pool joins every block).
///
/// Metric registration (GetCounter/GetGauge/GetHistogram) takes a lock and
/// may be called from any thread; re-registering the same name returns the
/// same metric (kind and bucket bounds must match). Capacity is fixed at
/// kMaxMetrics per registry.
class MetricsRegistry {
 public:
  static constexpr size_t kMaxMetrics = 256;

  MetricsRegistry();
  ~MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter GetCounter(std::string_view name);
  Gauge GetGauge(std::string_view name);
  Histogram GetHistogram(std::string_view name, std::vector<double> upper_bounds);

  /// Merges all shards into a deterministic snapshot (see class comment).
  MetricsSnapshot Snapshot() const;

  /// Zeroes every metric, keeping registrations and shards (outstanding
  /// handles stay valid). Requires no concurrent writers.
  void Reset();

  /// The process-wide registry the built-in instrumentation records into.
  static MetricsRegistry& Global();

 private:
  friend class Counter;
  friend class Gauge;
  friend class Histogram;

  enum class Kind { kCounter, kGauge, kHistogram };

  struct MetricInfo {
    std::string name;
    Kind kind = Kind::kCounter;
    std::vector<double> upper_bounds;  // Histograms only.
  };

  struct Shard;
  struct GaugeCell;

  uint32_t Register(std::string_view name, Kind kind, std::vector<double> upper_bounds);
  Shard& LocalShard();
  void AddCounter(uint32_t id, uint64_t n);
  void SetGauge(uint32_t id, double value);
  void ObserveHistogram(uint32_t id, const std::vector<double>& bounds, double value);

  const uint64_t registry_id_;
  mutable std::mutex mutex_;
  /// deque: stable addresses, so hot paths may read entries lock-free once
  /// they hold an id.
  std::deque<MetricInfo> metrics_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::unique_ptr<GaugeCell[]> gauges_;
};

}  // namespace obs
}  // namespace jxp

#endif  // JXP_OBS_METRICS_H_
