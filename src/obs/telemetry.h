#ifndef JXP_OBS_TELEMETRY_H_
#define JXP_OBS_TELEMETRY_H_

/// Master compile-time switch of the observability layer. Default-on; build
/// with -DJXP_OBS_ENABLED=0 to compile every metric increment, histogram
/// observation, and trace span down to nothing (the instrumentation calls
/// stay in the source, the optimizer removes their bodies).
#ifndef JXP_OBS_ENABLED
#define JXP_OBS_ENABLED 1
#endif

namespace jxp {
namespace obs {

#if JXP_OBS_ENABLED
/// Runtime switch, default-on. When off, every instrumentation call
/// reduces to one relaxed atomic load. Telemetry never feeds back into the
/// algorithms, so results are bit-identical with telemetry on or off (see
/// tests/obs/telemetry_integration_test.cc).
bool Enabled();
void SetEnabled(bool enabled);
#else
constexpr bool Enabled() { return false; }
inline void SetEnabled(bool) {}
#endif

/// RAII toggle, mainly for tests.
class ScopedEnable {
 public:
  explicit ScopedEnable(bool enabled) : previous_(Enabled()) { SetEnabled(enabled); }
  ScopedEnable(const ScopedEnable&) = delete;
  ScopedEnable& operator=(const ScopedEnable&) = delete;
  ~ScopedEnable() { SetEnabled(previous_); }

 private:
  bool previous_;
};

}  // namespace obs
}  // namespace jxp

#endif  // JXP_OBS_TELEMETRY_H_
