#include "obs/json_writer.h"

#include <charconv>
#include <cmath>
#include <cstdio>

#include "common/check.h"

namespace jxp {
namespace obs {

JsonWriter::JsonWriter() {
  out_.push_back('{');
  scopes_.push_back(true);
  has_member_.push_back(false);
}

void JsonWriter::AppendEscaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          // Multi-byte UTF-8 sequences pass through unchanged.
          out.push_back(c);
        }
    }
  }
}

std::string JsonWriter::Escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  AppendEscaped(out, s);
  return out;
}

void JsonWriter::AppendDouble(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";
    return;
  }
  char buf[32];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  JXP_CHECK(ec == std::errc());
  out.append(buf, end);
}

void JsonWriter::BeginValue(std::string_view key) {
  JXP_CHECK(!scopes_.empty()) << "JsonWriter already finished";
  JXP_CHECK(scopes_.back()) << "Field() inside an array; use Element()";
  if (has_member_.back()) out_.push_back(',');
  has_member_.back() = true;
  out_.push_back('"');
  AppendEscaped(out_, key);
  out_ += "\":";
}

void JsonWriter::BeginElement() {
  JXP_CHECK(!scopes_.empty()) << "JsonWriter already finished";
  JXP_CHECK(!scopes_.back()) << "Element() outside an array";
  if (has_member_.back()) out_.push_back(',');
  has_member_.back() = true;
}

JsonWriter& JsonWriter::Field(std::string_view key, std::string_view value) {
  BeginValue(key);
  out_.push_back('"');
  AppendEscaped(out_, value);
  out_.push_back('"');
  return *this;
}

JsonWriter& JsonWriter::Field(std::string_view key, const char* value) {
  return Field(key, std::string_view(value));
}

JsonWriter& JsonWriter::Field(std::string_view key, double value) {
  BeginValue(key);
  AppendDouble(out_, value);
  return *this;
}

JsonWriter& JsonWriter::Field(std::string_view key, bool value) {
  BeginValue(key);
  out_ += value ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::FieldInt(std::string_view key, int64_t value) {
  BeginValue(key);
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::FieldUint(std::string_view key, uint64_t value) {
  BeginValue(key);
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::FieldRawJson(std::string_view key, std::string_view json) {
  BeginValue(key);
  out_ += json;
  return *this;
}

JsonWriter& JsonWriter::BeginObject(std::string_view key) {
  BeginValue(key);
  out_.push_back('{');
  scopes_.push_back(true);
  has_member_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::BeginArray(std::string_view key) {
  BeginValue(key);
  out_.push_back('[');
  scopes_.push_back(false);
  has_member_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::BeginArrayObject() {
  BeginElement();
  out_.push_back('{');
  scopes_.push_back(true);
  has_member_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::Element(double value) {
  BeginElement();
  AppendDouble(out_, value);
  return *this;
}

JsonWriter& JsonWriter::Element(std::string_view value) {
  BeginElement();
  out_.push_back('"');
  AppendEscaped(out_, value);
  out_.push_back('"');
  return *this;
}

JsonWriter& JsonWriter::End() {
  JXP_CHECK_GT(scopes_.size(), 1u) << "End() would close the root object; use TakeLine()";
  out_.push_back(scopes_.back() ? '}' : ']');
  scopes_.pop_back();
  has_member_.pop_back();
  return *this;
}

std::string JsonWriter::TakeLine() {
  while (scopes_.size() > 1) End();
  out_.push_back('}');
  std::string line = std::move(out_);
  out_.clear();
  out_.push_back('{');
  scopes_.assign(1, true);
  has_member_.assign(1, false);
  return line;
}

}  // namespace obs
}  // namespace jxp
