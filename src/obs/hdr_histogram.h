#ifndef JXP_OBS_HDR_HISTOGRAM_H_
#define JXP_OBS_HDR_HISTOGRAM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace jxp {
namespace obs {

/// An HDR-style log-linear histogram over non-negative integer values
/// (latencies in nanoseconds). Where HistogramData needs bucket bounds
/// chosen per call site, HdrHistogram covers the whole uint64 range —
/// nanoseconds through minutes and far beyond — at a fixed relative
/// resolution, so one layout resolves a p99.9 spanning a ~50 ns cache hit
/// and a ~10 ms cold MaxScore descent in the same histogram.
///
/// Layout: values below kSubBucketCount (256) get one slot each (exact).
/// Above that, each power-of-two range is cut into kSubBucketCount/2 = 128
/// linear sub-buckets, so a slot's width is at most 1/128 of its value:
/// ~2 significant digits of resolution everywhere (relative slot width
/// 2^-7 ≈ 0.78%).
///
/// Determinism contract (mirrors HistogramData): every accumulated
/// quantity is an exact integer — slot counts, the total count, the value
/// sum (128-bit, cannot overflow), and min/max. Recording the same
/// multiset of values in any order, or split across any number of
/// histograms later combined with MergeFrom, yields bit-identical state;
/// MergeFrom is associative and commutative. Not internally synchronized:
/// record into one histogram per thread and merge, or guard externally
/// (LatencyRecorder does the latter).
class HdrHistogram {
 public:
  /// log2 of the linear slot count of the lowest (exact) value range.
  static constexpr int kSubBucketBits = 8;
  static constexpr uint64_t kSubBucketCount = uint64_t{1} << kSubBucketBits;
  static constexpr uint64_t kSubBucketHalf = kSubBucketCount / 2;
  /// One exact range + one half-range per remaining power of two.
  static constexpr size_t kNumSlots =
      static_cast<size_t>(kSubBucketCount) + (64 - kSubBucketBits) * kSubBucketHalf;

  HdrHistogram();

  /// Records one value. Any uint64 is representable; no saturation.
  void Record(uint64_t value) { RecordMany(value, 1); }
  /// Records `n` observations of `value` in O(1).
  void RecordMany(uint64_t value, uint64_t n);

  /// Adds another histogram's counts into this one (integer addition —
  /// order-independent).
  void MergeFrom(const HdrHistogram& other);

  /// Drops all samples.
  void Clear();

  uint64_t count() const { return count_; }
  /// Smallest / largest recorded value, exact; 0 when empty.
  uint64_t min() const { return count_ == 0 ? 0 : min_; }
  uint64_t max() const { return count_ == 0 ? 0 : max_; }
  /// Exact sum of all recorded values.
  double sum() const { return static_cast<double>(sum_); }
  double mean() const {
    return count_ == 0 ? 0.0 : sum() / static_cast<double>(count_);
  }

  /// The value at the given percentile (0..100), defined as the upper edge
  /// of the smallest slot whose cumulative count reaches
  /// ceil(percentile/100 * count), clamped to the exact recorded max.
  ///
  /// Error bounds: let q* be the true percentile value of the recorded
  /// multiset (the ceil(p/100*n)-th smallest sample). The returned value v
  /// satisfies q* <= v <= q* * (1 + 2^-7), i.e. v overestimates by at most
  /// ~0.79%, and is exact (v == q*) for q* < 256. Percentiles <= 0 return
  /// min(); >= 100 return max(); an empty histogram returns 0.
  uint64_t ValueAtPercentile(double percentile) const;

  /// Slot arithmetic, exposed for tests and iteration.
  static size_t SlotIndexOf(uint64_t value);
  /// Largest value mapping to slot `index`.
  static uint64_t SlotUpperBound(size_t index);
  uint64_t count_at(size_t index) const { return counts_[index]; }

  /// Bit-identity comparison (used by the determinism tests).
  bool operator==(const HdrHistogram& other) const;

 private:
  std::vector<uint64_t> counts_;  // kNumSlots.
  uint64_t count_ = 0;
  unsigned __int128 sum_ = 0;
  uint64_t min_ = 0;
  uint64_t max_ = 0;
};

}  // namespace obs
}  // namespace jxp

#endif  // JXP_OBS_HDR_HISTOGRAM_H_
