#include "obs/hdr_histogram.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/check.h"

namespace jxp {
namespace obs {

HdrHistogram::HdrHistogram() : counts_(kNumSlots, 0) {}

size_t HdrHistogram::SlotIndexOf(uint64_t value) {
  if (value < kSubBucketCount) return static_cast<size_t>(value);
  // bit_width is in (kSubBucketBits, 64]; bucket b >= 1 holds the values
  // whose top bit is at position kSubBucketBits + b - 1. Shifting by b
  // lands the value in [kSubBucketHalf, kSubBucketCount).
  const int bucket = std::bit_width(value) - kSubBucketBits;
  const uint64_t sub = value >> bucket;
  return static_cast<size_t>(kSubBucketCount) +
         static_cast<size_t>(bucket - 1) * static_cast<size_t>(kSubBucketHalf) +
         static_cast<size_t>(sub - kSubBucketHalf);
}

uint64_t HdrHistogram::SlotUpperBound(size_t index) {
  JXP_CHECK_LT(index, kNumSlots);
  if (index < kSubBucketCount) return static_cast<uint64_t>(index);
  const size_t rel = index - static_cast<size_t>(kSubBucketCount);
  const int bucket = static_cast<int>(rel / kSubBucketHalf) + 1;
  const uint64_t sub = kSubBucketHalf + rel % kSubBucketHalf;
  // Slot covers [sub << bucket, ((sub + 1) << bucket) - 1].
  return ((sub + 1) << bucket) - 1;
}

void HdrHistogram::RecordMany(uint64_t value, uint64_t n) {
  if (n == 0) return;
  counts_[SlotIndexOf(value)] += n;
  if (count_ == 0 || value < min_) min_ = value;
  if (count_ == 0 || value > max_) max_ = value;
  count_ += n;
  sum_ += static_cast<unsigned __int128>(value) * n;
}

void HdrHistogram::MergeFrom(const HdrHistogram& other) {
  if (other.count_ == 0) return;
  for (size_t i = 0; i < kNumSlots; ++i) counts_[i] += other.counts_[i];
  if (count_ == 0 || other.min_ < min_) min_ = other.min_;
  if (count_ == 0 || other.max_ > max_) max_ = other.max_;
  count_ += other.count_;
  sum_ += other.sum_;
}

void HdrHistogram::Clear() {
  std::fill(counts_.begin(), counts_.end(), 0);
  count_ = 0;
  sum_ = 0;
  min_ = 0;
  max_ = 0;
}

uint64_t HdrHistogram::ValueAtPercentile(double percentile) const {
  if (count_ == 0) return 0;
  if (percentile <= 0.0) return min();
  if (percentile >= 100.0) return max();
  const uint64_t target = std::max<uint64_t>(
      1, static_cast<uint64_t>(
             std::ceil(percentile / 100.0 * static_cast<double>(count_))));
  uint64_t cumulative = 0;
  for (size_t i = 0; i < kNumSlots; ++i) {
    cumulative += counts_[i];
    if (cumulative >= target) {
      // The slot's upper edge can exceed every recorded value (the max sits
      // somewhere inside its slot); clamp so no percentile exceeds max().
      return std::min(SlotUpperBound(i), max_);
    }
  }
  return max_;
}

bool HdrHistogram::operator==(const HdrHistogram& other) const {
  return count_ == other.count_ && sum_ == other.sum_ && min_ == other.min_ &&
         max_ == other.max_ && counts_ == other.counts_;
}

}  // namespace obs
}  // namespace jxp
