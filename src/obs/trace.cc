#include "obs/trace.h"

#include <atomic>
#include <chrono>
#include <ctime>

#include "common/check.h"

namespace jxp {
namespace obs {

namespace {

std::atomic<TraceSink*> g_sink{nullptr};
std::atomic<uint64_t> g_next_span_id{1};
std::atomic<uint64_t> g_next_thread_ordinal{0};

uint64_t ThreadOrdinal() {
  thread_local const uint64_t ordinal =
      g_next_thread_ordinal.fetch_add(1, std::memory_order_relaxed);
  return ordinal;
}

std::vector<uint64_t>& SpanStack() {
  thread_local std::vector<uint64_t> stack;
  return stack;
}

double WallNowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

double ThreadCpuNowSeconds() {
  timespec ts{};
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) + static_cast<double>(ts.tv_nsec) * 1e-9;
}

void AppendAttr(std::string& attrs, std::string_view key) {
  if (!attrs.empty()) attrs.push_back(',');
  attrs.push_back('"');
  JsonWriter::AppendEscaped(attrs, key);
  attrs += "\":";
}

}  // namespace

// ---------------------------------------------------------------------------
// Sinks

std::unique_ptr<JsonlTraceSink> JsonlTraceSink::Open(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) return nullptr;
  return std::make_unique<JsonlTraceSink>(file, /*owns_file=*/true);
}

JsonlTraceSink::JsonlTraceSink(std::FILE* file, bool owns_file)
    : file_(file), owns_file_(owns_file) {
  JXP_CHECK(file_ != nullptr);
}

JsonlTraceSink::~JsonlTraceSink() {
  if (owns_file_) std::fclose(file_);
}

void JsonlTraceSink::WriteLine(std::string_view line) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::fwrite(line.data(), 1, line.size(), file_);
  std::fputc('\n', file_);
}

void JsonlTraceSink::Flush() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::fflush(file_);
}

void StringTraceSink::WriteLine(std::string_view line) {
  std::lock_guard<std::mutex> lock(mutex_);
  lines_.emplace_back(line);
}

std::vector<std::string> StringTraceSink::TakeLines() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> lines = std::move(lines_);
  lines_.clear();
  return lines;
}

TraceSink* InstallTraceSink(TraceSink* sink) {
  return g_sink.exchange(sink, std::memory_order_acq_rel);
}

TraceSink* CurrentTraceSink() { return g_sink.load(std::memory_order_acquire); }

// ---------------------------------------------------------------------------
// Spans

TraceSpan::TraceSpan(std::string_view name) {
  if (!Enabled() || CurrentTraceSink() == nullptr) return;
  active_ = true;
  name_ = name;
  id_ = g_next_span_id.fetch_add(1, std::memory_order_relaxed);
  std::vector<uint64_t>& stack = SpanStack();
  parent_ = stack.empty() ? 0 : stack.back();
  depth_ = static_cast<int>(stack.size());
  stack.push_back(id_);
  wall_start_seconds_ = WallNowSeconds();
  cpu_start_seconds_ = ThreadCpuNowSeconds();
}

TraceSpan::~TraceSpan() {
  if (!active_) return;
  const double cpu_ms = (ThreadCpuNowSeconds() - cpu_start_seconds_) * 1e3;
  const double wall_ms = (WallNowSeconds() - wall_start_seconds_) * 1e3;
  std::vector<uint64_t>& stack = SpanStack();
  JXP_CHECK(!stack.empty() && stack.back() == id_)
      << "trace spans must be destroyed in LIFO order per thread";
  stack.pop_back();
  // The sink may have been uninstalled while the span was open.
  TraceSink* sink = CurrentTraceSink();
  if (sink == nullptr) return;
  JsonWriter writer;
  writer.Field("type", "span")
      .Field("name", name_)
      .Field("id", id_)
      .Field("parent", parent_)
      .Field("depth", depth_)
      .Field("thread", ThreadOrdinal())
      .Field("wall_ms", wall_ms)
      .Field("cpu_ms", cpu_ms);
  if (!attrs_.empty()) {
    std::string attrs_json;
    attrs_json.reserve(attrs_.size() + 2);
    attrs_json.push_back('{');
    attrs_json += attrs_;
    attrs_json.push_back('}');
    writer.FieldRawJson("attrs", attrs_json);
  }
  sink->WriteLine(writer.TakeLine());
}

void TraceSpan::AddAttr(std::string_view key, double value) {
  if (!active_) return;
  AppendAttr(attrs_, key);
  JsonWriter::AppendDouble(attrs_, value);
}

void TraceSpan::AddAttr(std::string_view key, std::string_view value) {
  if (!active_) return;
  AppendAttr(attrs_, key);
  attrs_.push_back('"');
  JsonWriter::AppendEscaped(attrs_, value);
  attrs_.push_back('"');
}

void TraceSpan::AddAttr(std::string_view key, const char* value) {
  AddAttr(key, std::string_view(value));
}

void TraceSpan::AddAttr(std::string_view key, bool value) {
  if (!active_) return;
  AppendAttr(attrs_, key);
  attrs_ += value ? "true" : "false";
}

void TraceSpan::AddAttrInt(std::string_view key, int64_t value) {
  AppendAttr(attrs_, key);
  attrs_ += std::to_string(value);
}

void TraceSpan::AddAttrUint(std::string_view key, uint64_t value) {
  AppendAttr(attrs_, key);
  attrs_ += std::to_string(value);
}

// ---------------------------------------------------------------------------
// Events

void EmitEvent(std::string_view name, const std::function<void(JsonWriter&)>& fill) {
  if (!Enabled()) return;
  TraceSink* sink = CurrentTraceSink();
  if (sink == nullptr) return;
  JsonWriter writer;
  writer.Field("type", "event").Field("name", name);
  if (fill) fill(writer);
  sink->WriteLine(writer.TakeLine());
}

}  // namespace obs
}  // namespace jxp
