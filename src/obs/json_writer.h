#ifndef JXP_OBS_JSON_WRITER_H_
#define JXP_OBS_JSON_WRITER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

namespace jxp {
namespace obs {

/// Builds one JSON value — typically a single JSON-lines record — with
/// proper string escaping and *stable key order* (keys appear exactly in
/// insertion order; nothing is sorted behind the caller's back, so the same
/// call sequence always yields the same bytes). Shared by the metrics
/// exporter, the trace sink, and the bench binaries so every JSON line in
/// the repo is produced by one code path.
///
/// Usage:
///   JsonWriter w;
///   w.Field("bench", "meeting_throughput").Field("threads", 4);
///   w.BeginArray("buckets");
///   w.BeginArrayObject().Field("le", 10.0).Field("count", 3).End();
///   w.End();
///   std::string line = w.TakeLine();  // {"bench":"meeting_throughput",...}
///
/// Doubles are written with the shortest representation that round-trips
/// (std::to_chars); non-finite doubles become null (JSON has no NaN/Inf).
class JsonWriter {
 public:
  /// Starts the root object.
  JsonWriter();

  /// Scalar fields.
  JsonWriter& Field(std::string_view key, std::string_view value);
  JsonWriter& Field(std::string_view key, const char* value);
  JsonWriter& Field(std::string_view key, double value);
  JsonWriter& Field(std::string_view key, bool value);
  template <typename T, std::enable_if_t<std::is_integral_v<T> && !std::is_same_v<T, bool>,
                                         int> = 0>
  JsonWriter& Field(std::string_view key, T value) {
    if constexpr (std::is_signed_v<T>) {
      return FieldInt(key, static_cast<int64_t>(value));
    } else {
      return FieldUint(key, static_cast<uint64_t>(value));
    }
  }
  /// A field whose value is already valid JSON (e.g. a nested line built by
  /// another JsonWriter, or "null").
  JsonWriter& FieldRawJson(std::string_view key, std::string_view json);

  /// Containers. End() closes the innermost open object or array.
  JsonWriter& BeginObject(std::string_view key);
  JsonWriter& BeginArray(std::string_view key);
  /// An object element of the innermost (open) array.
  JsonWriter& BeginArrayObject();
  /// Scalar elements of the innermost (open) array.
  JsonWriter& Element(double value);
  JsonWriter& Element(std::string_view value);
  JsonWriter& End();

  /// Closes every open scope and returns the finished line (no trailing
  /// newline). The writer is reset to a fresh root object afterwards.
  std::string TakeLine();

  /// Appends `s` JSON-escaped (without surrounding quotes) to `out`.
  static void AppendEscaped(std::string& out, std::string_view s);
  /// Returns `s` JSON-escaped, without surrounding quotes.
  static std::string Escape(std::string_view s);
  /// Appends the shortest round-trip decimal representation of `v`
  /// ("null" when non-finite).
  static void AppendDouble(std::string& out, double v);

 private:
  JsonWriter& FieldInt(std::string_view key, int64_t value);
  JsonWriter& FieldUint(std::string_view key, uint64_t value);
  /// Writes the separating comma and, inside objects, the quoted key.
  void BeginValue(std::string_view key);
  void BeginElement();

  std::string out_;
  /// Open scopes; true = object, false = array.
  std::vector<bool> scopes_;
  /// Whether the current scope already has a member (comma handling).
  std::vector<bool> has_member_;
};

}  // namespace obs
}  // namespace jxp

#endif  // JXP_OBS_JSON_WRITER_H_
