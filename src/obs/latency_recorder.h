#ifndef JXP_OBS_LATENCY_RECORDER_H_
#define JXP_OBS_LATENCY_RECORDER_H_

#include <array>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>

#include "obs/hdr_histogram.h"
#include "obs/telemetry.h"

namespace jxp {
namespace obs {

class JsonWriter;

/// The serving pipeline's per-query stages, in pipeline order. Fixed here
/// (not stringly-typed) so recording is an array index and every producer
/// and consumer agrees on the same stage set.
enum class LatencyStage : uint8_t {
  /// Result-cache probe (batch phase 1, or the concurrent path's probe).
  kCacheLookup = 0,
  /// Threshold priming: term primers + threshold-cache lookups.
  kPriming,
  /// Posting decode: cursor advancement, block seeks, and bound checks
  /// (MaxScore reports it as descent time minus scoring and heap time).
  kDecode,
  /// Canonical-order rescoring / score fusion of surviving candidates.
  kScoring,
  /// Top-k heap maintenance and final ranking.
  kHeap,
  /// Cross-peer fan-in: merging per-peer top-k lists and the final
  /// partial sort.
  kFanIn,
  /// End-to-end service time of one query (all stages plus glue).
  kTotal,
};
inline constexpr size_t kNumLatencyStages = 7;

/// Stable lowercase label ("cache_lookup", "priming", ...).
const char* LatencyStageName(LatencyStage stage);

/// Owns one HdrHistogram per LatencyStage. Record() is thread-safe
/// (mutex-guarded — recording is a handful of calls per query, not a
/// per-posting operation; for contention-free recording give each worker
/// its own recorder and MergeFrom them afterwards, which yields the same
/// bit-identical state as recording into one). Gated on obs::Enabled():
/// when telemetry is off (or compiled out) Record is a no-op, so the
/// latency layer obeys the same zero-cost-off switch as the metrics
/// registry.
class LatencyRecorder {
 public:
  LatencyRecorder() = default;
  LatencyRecorder(const LatencyRecorder&) = delete;
  LatencyRecorder& operator=(const LatencyRecorder&) = delete;

  /// Records `nanos` into the stage's histogram (no-op when telemetry is
  /// disabled).
  void Record(LatencyStage stage, uint64_t nanos);

  /// Point-in-time copy of one stage's histogram.
  HdrHistogram StageSnapshot(LatencyStage stage) const;

  /// Merges another recorder's histograms into this one.
  void MergeFrom(const LatencyRecorder& other);

  /// Samples recorded across all stages.
  uint64_t TotalCount() const;

  void Clear();

  /// Appends per-stage percentile fields to `writer`:
  ///   <prefix><stage>_{count,p50_ns,p90_ns,p99_ns,p999_ns,max_ns,mean_ns}
  /// Empty stages are skipped. Field order follows the stage enum, so the
  /// same recorder state always serializes to the same bytes.
  void WriteJsonFields(JsonWriter& writer, std::string_view prefix = "") const;

 private:
  mutable std::mutex mutex_;
  std::array<HdrHistogram, kNumLatencyStages> stages_;
};

}  // namespace obs
}  // namespace jxp

#endif  // JXP_OBS_LATENCY_RECORDER_H_
