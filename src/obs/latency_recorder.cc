#include "obs/latency_recorder.h"

#include "common/check.h"
#include "obs/json_writer.h"

namespace jxp {
namespace obs {

const char* LatencyStageName(LatencyStage stage) {
  switch (stage) {
    case LatencyStage::kCacheLookup:
      return "cache_lookup";
    case LatencyStage::kPriming:
      return "priming";
    case LatencyStage::kDecode:
      return "decode";
    case LatencyStage::kScoring:
      return "scoring";
    case LatencyStage::kHeap:
      return "heap";
    case LatencyStage::kFanIn:
      return "fan_in";
    case LatencyStage::kTotal:
      return "total";
  }
  return "unknown";
}

void LatencyRecorder::Record(LatencyStage stage, uint64_t nanos) {
  if (!Enabled()) return;
  const size_t index = static_cast<size_t>(stage);
  JXP_CHECK_LT(index, kNumLatencyStages);
  std::lock_guard<std::mutex> lock(mutex_);
  stages_[index].Record(nanos);
}

HdrHistogram LatencyRecorder::StageSnapshot(LatencyStage stage) const {
  const size_t index = static_cast<size_t>(stage);
  JXP_CHECK_LT(index, kNumLatencyStages);
  std::lock_guard<std::mutex> lock(mutex_);
  return stages_[index];
}

void LatencyRecorder::MergeFrom(const LatencyRecorder& other) {
  // Lock ordering: callers merge worker recorders into an aggregate from
  // one thread, so taking the two locks in argument order cannot deadlock
  // unless two threads merge two recorders into each other — don't.
  std::lock_guard<std::mutex> lock(mutex_);
  std::lock_guard<std::mutex> other_lock(other.mutex_);
  for (size_t i = 0; i < kNumLatencyStages; ++i) {
    stages_[i].MergeFrom(other.stages_[i]);
  }
}

uint64_t LatencyRecorder::TotalCount() const {
  std::lock_guard<std::mutex> lock(mutex_);
  uint64_t total = 0;
  for (const HdrHistogram& h : stages_) total += h.count();
  return total;
}

void LatencyRecorder::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (HdrHistogram& h : stages_) h.Clear();
}

void LatencyRecorder::WriteJsonFields(JsonWriter& writer, std::string_view prefix) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string key;
  for (size_t i = 0; i < kNumLatencyStages; ++i) {
    const HdrHistogram& h = stages_[i];
    if (h.count() == 0) continue;
    const char* name = LatencyStageName(static_cast<LatencyStage>(i));
    const auto field = [&](const char* suffix, uint64_t value) {
      key.assign(prefix);
      key += name;
      key += suffix;
      writer.Field(key, value);
    };
    field("_count", h.count());
    field("_p50_ns", h.ValueAtPercentile(50));
    field("_p90_ns", h.ValueAtPercentile(90));
    field("_p99_ns", h.ValueAtPercentile(99));
    field("_p999_ns", h.ValueAtPercentile(99.9));
    field("_max_ns", h.max());
    key.assign(prefix);
    key += name;
    key += "_mean_ns";
    writer.Field(key, h.mean());
  }
}

}  // namespace obs
}  // namespace jxp
