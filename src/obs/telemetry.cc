#include "obs/telemetry.h"

#include <atomic>

namespace jxp {
namespace obs {

#if JXP_OBS_ENABLED

namespace {
std::atomic<bool> g_enabled{true};
}  // namespace

bool Enabled() { return g_enabled.load(std::memory_order_relaxed); }

void SetEnabled(bool enabled) { g_enabled.store(enabled, std::memory_order_relaxed); }

#endif  // JXP_OBS_ENABLED

}  // namespace obs
}  // namespace jxp
