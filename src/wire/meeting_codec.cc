#include "wire/meeting_codec.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>

#include "common/check.h"
#include "obs/metrics.h"

namespace jxp {
namespace wire {

namespace {

/// Codec observables. All counters are pure functions of the encoded /
/// decoded messages (byte and frame counts), so they stay bit-identical
/// across runs and thread counts (DESIGN.md §6d).
struct WireMetrics {
  obs::Counter score_bytes =
      obs::MetricsRegistry::Global().GetCounter("jxp.wire.score_bytes");
  obs::Counter world_bytes =
      obs::MetricsRegistry::Global().GetCounter("jxp.wire.world_bytes");
  obs::Counter synopsis_bytes =
      obs::MetricsRegistry::Global().GetCounter("jxp.wire.synopsis_bytes");
  obs::Counter frames_encoded =
      obs::MetricsRegistry::Global().GetCounter("jxp.wire.frames_encoded");
  obs::Counter frames_decoded =
      obs::MetricsRegistry::Global().GetCounter("jxp.wire.frames_decoded");
  obs::Counter frames_rejected =
      obs::MetricsRegistry::Global().GetCounter("jxp.wire.frames_rejected");
  obs::Counter decoded_bytes =
      obs::MetricsRegistry::Global().GetCounter("jxp.wire.decoded_bytes");
};

WireMetrics& GetWireMetrics() {
  static WireMetrics metrics;
  return metrics;
}

/// Hard cap on a decoded synopsis's bucket count; real sketches use a few
/// hundred buckets, and the cap bounds the allocation a corrupt count can
/// request before per-element reads start failing.
constexpr uint32_t kMaxSynopsisBuckets = 1u << 20;

Status BadPayload(const char* what) {
  return Status::Corruption(std::string("bad frame payload: ") + what);
}

/// Reads a delta-encoded id: absolute when `first`, else prev + delta with
/// delta >= 1 (ids are strictly ascending) and overflow rejected.
bool ReadAscendingId(ByteReader& reader, bool first, graph::PageId prev,
                     graph::PageId* id) {
  uint32_t raw = 0;
  if (!reader.GetVarint32(&raw)) return false;
  if (first) {
    *id = raw;
    return true;
  }
  if (raw == 0) return false;
  if (raw > std::numeric_limits<graph::PageId>::max() - prev) return false;
  *id = prev + raw;
  return true;
}

/// Reads a wire score: a finite, non-negative float (scores are probability
/// masses; anything else is corruption).
bool ReadScore(ByteReader& reader, float* score) {
  if (!reader.GetFloat(score)) return false;
  return std::isfinite(*score) && *score >= 0.0f;
}

void WriteAscendingIds(ByteWriter& writer, std::span<const graph::PageId> ids) {
  graph::PageId prev = 0;
  for (size_t i = 0; i < ids.size(); ++i) {
    if (i == 0) {
      writer.PutVarint32(ids[i]);
    } else {
      JXP_CHECK_GT(ids[i], prev) << "wire ids must be strictly ascending";
      writer.PutVarint32(ids[i] - prev);
    }
    prev = ids[i];
  }
}

Status DecodeScoreChunk(std::span<const uint8_t> payload, DecodedMeeting& out) {
  ByteReader reader(payload);
  uint32_t first_index = 0;
  uint32_t count = 0;
  if (!reader.GetVarint32(&first_index) || !reader.GetVarint32(&count)) {
    return BadPayload("truncated chunk header");
  }
  if (count == 0) return BadPayload("empty score chunk");
  // Each record is at least 6 bytes (id + score + degree), so a count beyond
  // the payload size cannot be genuine; reject before reserving memory.
  if (count > payload.size()) return BadPayload("chunk count exceeds payload");
  if (first_index != out.pages.size()) {
    return BadPayload("score chunk out of sequence");
  }
  // Parse into a scratch vector so a mid-frame failure leaves `out` with
  // whole frames only.
  std::vector<ScoreListPage> records;
  records.reserve(count);
  graph::PageId prev_page =
      out.pages.empty() ? 0 : out.pages.back().page;
  const bool first_record_of_message = out.pages.empty();
  for (uint32_t i = 0; i < count; ++i) {
    ScoreListPage record;
    const bool first = first_record_of_message && i == 0;
    if (!ReadAscendingId(reader, first, prev_page, &record.page)) {
      return BadPayload("page ids not strictly ascending");
    }
    prev_page = record.page;
    if (!ReadScore(reader, &record.score)) return BadPayload("invalid page score");
    uint32_t degree = 0;
    if (!reader.GetVarint32(&degree)) return BadPayload("truncated degree");
    if (degree > payload.size()) return BadPayload("degree exceeds payload");
    record.successors.reserve(degree);
    graph::PageId prev_succ = 0;
    for (uint32_t j = 0; j < degree; ++j) {
      graph::PageId succ = 0;
      if (!ReadAscendingId(reader, j == 0, prev_succ, &succ)) {
        return BadPayload("successors not strictly ascending");
      }
      prev_succ = succ;
      record.successors.push_back(succ);
    }
    records.push_back(std::move(record));
  }
  if (!reader.AtEnd()) return BadPayload("trailing bytes in score chunk");
  out.pages.insert(out.pages.end(), std::make_move_iterator(records.begin()),
                   std::make_move_iterator(records.end()));
  return Status::OK();
}

Status DecodeWorldKnowledge(std::span<const uint8_t> payload, DecodedMeeting& out) {
  ByteReader reader(payload);
  uint32_t num_entries = 0;
  if (!reader.GetVarint32(&num_entries)) return BadPayload("truncated world header");
  if (num_entries > payload.size()) return BadPayload("world count exceeds payload");
  std::vector<WorldEntryOut> entries;
  entries.reserve(num_entries);
  graph::PageId prev_page = 0;
  for (uint32_t i = 0; i < num_entries; ++i) {
    WorldEntryOut entry;
    if (!ReadAscendingId(reader, i == 0, prev_page, &entry.page)) {
      return BadPayload("world pages not strictly ascending");
    }
    prev_page = entry.page;
    if (!ReadScore(reader, &entry.score)) return BadPayload("invalid world score");
    if (!reader.GetVarint32(&entry.out_degree) || entry.out_degree == 0) {
      return BadPayload("invalid world out-degree");
    }
    uint32_t num_targets = 0;
    if (!reader.GetVarint32(&num_targets) || num_targets == 0 ||
        num_targets > entry.out_degree) {
      return BadPayload("world target count out of range");
    }
    if (num_targets > payload.size()) return BadPayload("target count exceeds payload");
    entry.targets.reserve(num_targets);
    graph::PageId prev_target = 0;
    for (uint32_t j = 0; j < num_targets; ++j) {
      graph::PageId target = 0;
      if (!ReadAscendingId(reader, j == 0, prev_target, &target)) {
        return BadPayload("world targets not strictly ascending");
      }
      prev_target = target;
      entry.targets.push_back(target);
    }
    entries.push_back(std::move(entry));
  }
  uint32_t num_dangling = 0;
  if (!reader.GetVarint32(&num_dangling)) return BadPayload("truncated dangling header");
  if (num_dangling > payload.size()) return BadPayload("dangling count exceeds payload");
  std::vector<DanglingOut> dangling;
  dangling.reserve(num_dangling);
  prev_page = 0;
  for (uint32_t i = 0; i < num_dangling; ++i) {
    DanglingOut record;
    if (!ReadAscendingId(reader, i == 0, prev_page, &record.page)) {
      return BadPayload("dangling pages not strictly ascending");
    }
    prev_page = record.page;
    if (!ReadScore(reader, &record.score)) return BadPayload("invalid dangling score");
    dangling.push_back(record);
  }
  if (!reader.AtEnd()) return BadPayload("trailing bytes in world frame");
  if (entries.empty() && dangling.empty()) {
    return BadPayload("empty world frame");  // Empty world knowledge is not framed.
  }
  out.world_entries = std::move(entries);
  out.world_dangling = std::move(dangling);
  return Status::OK();
}

Status DecodeSynopsis(std::span<const uint8_t> payload, DecodedMeeting& out) {
  ByteReader reader(payload);
  uint64_t seed = 0;
  uint32_t num_buckets = 0;
  if (!reader.GetU64(&seed) || !reader.GetVarint32(&num_buckets)) {
    return BadPayload("truncated synopsis header");
  }
  if (num_buckets == 0 || num_buckets > kMaxSynopsisBuckets) {
    return BadPayload("synopsis bucket count out of range");
  }
  std::vector<uint64_t> bitmaps;
  bitmaps.reserve(std::min<size_t>(num_buckets, payload.size()));
  for (uint32_t i = 0; i < num_buckets; ++i) {
    uint64_t bitmap = 0;
    if (!reader.GetVarint64(&bitmap)) return BadPayload("truncated synopsis bitmap");
    bitmaps.push_back(bitmap);
  }
  if (!reader.AtEnd()) return BadPayload("trailing bytes in synopsis frame");
  out.has_synopsis = true;
  out.synopsis_seed = seed;
  out.synopsis_bitmaps = std::move(bitmaps);
  return Status::OK();
}

}  // namespace

void EncodeScoreList(const graph::Subgraph& fragment, std::span<const double> scores,
                     const EncodeOptions& options, std::vector<uint8_t>& out) {
  JXP_CHECK_EQ(scores.size(), fragment.NumLocalPages());
  JXP_CHECK_GT(options.pages_per_chunk, 0u);
  const size_t start = out.size();
  const size_t n = fragment.NumLocalPages();
  size_t frames = 0;
  for (size_t begin = 0; begin < n; begin += options.pages_per_chunk) {
    const size_t end = std::min(begin + options.pages_per_chunk, n);
    const size_t payload_start = out.size();
    ByteWriter writer(out);
    writer.PutVarint32(static_cast<uint32_t>(begin));
    writer.PutVarint32(static_cast<uint32_t>(end - begin));
    graph::PageId prev = begin == 0 ? 0 : fragment.GlobalId(
        static_cast<graph::Subgraph::LocalIndex>(begin - 1));
    for (size_t i = begin; i < end; ++i) {
      const auto local = static_cast<graph::Subgraph::LocalIndex>(i);
      const graph::PageId page = fragment.GlobalId(local);
      if (i == 0) {
        writer.PutVarint32(page);
      } else {
        // Local-index order is ascending-global-id order, by construction.
        JXP_CHECK_GT(page, prev);
        writer.PutVarint32(page - prev);
      }
      prev = page;
      writer.PutFloat(LowerBoundFloat(scores[i]));
      const auto successors = fragment.Successors(local);
      writer.PutVarint32(static_cast<uint32_t>(successors.size()));
      WriteAscendingIds(writer, successors);
    }
    SealFrame(MessageType::kScoreChunk, payload_start, out);
    ++frames;
  }
  if (obs::Enabled()) {
    WireMetrics& metrics = GetWireMetrics();
    metrics.score_bytes.Increment(out.size() - start);
    metrics.frames_encoded.Increment(frames);
  }
}

void EncodeWorldKnowledge(std::span<const WorldEntryIn> entries,
                          std::span<const DanglingIn> dangling,
                          std::vector<uint8_t>& out) {
  if (entries.empty() && dangling.empty()) return;
  const size_t payload_start = out.size();
  ByteWriter writer(out);
  writer.PutVarint32(static_cast<uint32_t>(entries.size()));
  graph::PageId prev = 0;
  for (size_t i = 0; i < entries.size(); ++i) {
    const WorldEntryIn& entry = entries[i];
    JXP_CHECK_GE(entry.out_degree, 1u);
    JXP_CHECK_GE(entry.targets.size(), 1u);
    JXP_CHECK_LE(entry.targets.size(), entry.out_degree);
    if (i == 0) {
      writer.PutVarint32(entry.page);
    } else {
      JXP_CHECK_GT(entry.page, prev) << "world entries must be sorted by page";
      writer.PutVarint32(entry.page - prev);
    }
    prev = entry.page;
    writer.PutFloat(LowerBoundFloat(entry.score));
    writer.PutVarint32(entry.out_degree);
    writer.PutVarint32(static_cast<uint32_t>(entry.targets.size()));
    WriteAscendingIds(writer, entry.targets);
  }
  writer.PutVarint32(static_cast<uint32_t>(dangling.size()));
  prev = 0;
  for (size_t i = 0; i < dangling.size(); ++i) {
    if (i == 0) {
      writer.PutVarint32(dangling[i].page);
    } else {
      JXP_CHECK_GT(dangling[i].page, prev) << "dangling records must be sorted";
      writer.PutVarint32(dangling[i].page - prev);
    }
    prev = dangling[i].page;
    writer.PutFloat(LowerBoundFloat(dangling[i].score));
  }
  SealFrame(MessageType::kWorldKnowledge, payload_start, out);
  if (obs::Enabled()) {
    WireMetrics& metrics = GetWireMetrics();
    metrics.world_bytes.Increment(out.size() - payload_start);
    metrics.frames_encoded.Increment();
  }
}

void EncodeSynopsis(const synopses::HashSketch& sketch, std::vector<uint8_t>& out) {
  const size_t payload_start = out.size();
  ByteWriter writer(out);
  writer.PutU64(sketch.seed());
  writer.PutVarint32(static_cast<uint32_t>(sketch.num_buckets()));
  for (uint64_t bitmap : sketch.bitmaps()) writer.PutVarint64(bitmap);
  SealFrame(MessageType::kSynopsis, payload_start, out);
  if (obs::Enabled()) {
    WireMetrics& metrics = GetWireMetrics();
    metrics.synopsis_bytes.Increment(out.size() - payload_start);
    metrics.frames_encoded.Increment();
  }
}

DecodedMeeting DecodeMeeting(std::span<const uint8_t> data) {
  DecodedMeeting result;
  // Frames arrive in a fixed section order (score chunks, then world, then
  // synopsis); a frame of an earlier section after a later one is corrupt.
  MessageType last_section = MessageType::kScoreChunk;
  bool seen_world = false;
  size_t offset = 0;
  while (offset < data.size()) {
    FrameView frame;
    Status status = ParseFrame(data, offset, frame);
    // ParseFrame advances `offset` past the frame exactly when the frame was
    // syntactically delimited (header + checksum valid); a payload-semantics
    // rejection below then still leaves a trustworthy resync point there.
    const bool frame_delimited = status.ok();
    if (status.ok()) {
      switch (frame.type) {
        case MessageType::kScoreChunk:
          status = last_section != MessageType::kScoreChunk
                       ? BadPayload("score chunk after later section")
                       : DecodeScoreChunk(frame.payload, result);
          break;
        case MessageType::kWorldKnowledge:
          status = (seen_world || last_section == MessageType::kSynopsis)
                       ? BadPayload("duplicate or misplaced world frame")
                       : DecodeWorldKnowledge(frame.payload, result);
          seen_world = seen_world || status.ok();
          break;
        case MessageType::kSynopsis:
          status = result.has_synopsis ? BadPayload("duplicate synopsis frame")
                                       : DecodeSynopsis(frame.payload, result);
          break;
      }
    }
    if (!status.ok()) {
      // Frame boundaries past a bad frame cannot be trusted (the length
      // field itself may be the corrupted byte), so decoding stops here.
      // When only the payload semantics were rejected the frame's extent is
      // still known, and a streaming caller can resume right after it.
      result.error = status;
      result.resync_offset = frame_delimited ? offset : result.bytes_consumed;
      break;
    }
    last_section = frame.type;
    ++result.frames_decoded;
    result.bytes_consumed = offset;
    result.resync_offset = offset;
  }
  if (obs::Enabled()) {
    WireMetrics& metrics = GetWireMetrics();
    metrics.frames_decoded.Increment(result.frames_decoded);
    metrics.decoded_bytes.Increment(result.bytes_consumed);
    if (!result.error.ok()) metrics.frames_rejected.Increment();
  }
  return result;
}

Status DecodeMeetingStrict(std::span<const uint8_t> data, DecodedMeeting* out) {
  DecodedMeeting result = DecodeMeeting(data);
  if (!result.error.ok()) return result.error;
  *out = std::move(result);
  return Status::OK();
}

}  // namespace wire
}  // namespace jxp
