#ifndef JXP_WIRE_FRAME_ASSEMBLER_H_
#define JXP_WIRE_FRAME_ASSEMBLER_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"
#include "wire/wire_format.h"

namespace jxp {
namespace wire {

/// Incremental reassembly of wire frames from a byte stream that arrives in
/// arbitrary pieces (partial socket reads). The assembler accumulates the
/// 16-byte header, validates magic / version / payload length as soon as
/// the header is complete — an oversized length is rejected *before* any
/// payload allocation, so a corrupt or hostile length field can never make
/// the receiver reserve memory — then accumulates the payload and verifies
/// the checksum when it is complete.
///
/// Unlike ParseFrame (which decodes a complete in-memory message and
/// restricts types to the meeting payload set), the assembler passes the
/// type byte through unvalidated: the net layer runs its own control types
/// over the same frame header, and each consumer rejects types it does not
/// understand.
///
/// Feed() deliberately stops consuming input as soon as one frame is
/// complete. This gives the caller byte-exact boundary control: a protocol
/// can switch the same stream into a raw-blob mode right after a header
/// frame (src/net's meeting transfer does), with no bytes trapped inside
/// the assembler.
///
/// Errors are sticky: once a header fails validation or a checksum
/// mismatches, the stream's frame boundaries cannot be trusted, so every
/// further Feed() consumes nothing until Reset().
class FrameAssembler {
 public:
  /// Default payload cap. Control-plane consumers should pass something far
  /// smaller; this default merely bounds the worst case.
  static constexpr size_t kDefaultMaxPayloadBytes = 1u << 26;  // 64 MiB

  explicit FrameAssembler(size_t max_payload_bytes = kDefaultMaxPayloadBytes)
      : max_payload_bytes_(max_payload_bytes) {}

  /// Consumes bytes from `data` until a complete frame is assembled, an
  /// error is detected, or `data` is exhausted. Returns the number of bytes
  /// consumed (0 when a frame is already pending or the assembler is in the
  /// error state).
  size_t Feed(std::span<const uint8_t> data);

  /// True when a complete, checksum-verified frame is ready. Feed() will
  /// not consume further input until ConsumeFrame() releases it.
  bool HasFrame() const { return state_ == State::kFrameReady; }

  /// Type byte and payload of the pending frame. Valid only while
  /// HasFrame(); the payload view is invalidated by ConsumeFrame().
  uint8_t frame_type() const { return header_[3]; }
  std::span<const uint8_t> frame_payload() const { return payload_; }

  /// Releases the pending frame and starts assembling the next one.
  void ConsumeFrame();

  /// Sticky error state; OK while the stream is healthy.
  const Status& error() const { return error_; }
  bool failed() const { return !error_.ok(); }

  /// Clears all state (buffered bytes and error), e.g. after the caller
  /// resynchronized the stream out-of-band.
  void Reset();

  /// Bytes of the current partial frame buffered so far (header + payload);
  /// 0 when idle. Exposed for accounting and tests.
  size_t buffered_bytes() const;

 private:
  enum class State { kHeader, kPayload, kFrameReady, kFailed };

  /// Validates the completed header; transitions to kPayload / kFrameReady
  /// (empty payload) or kFailed.
  void OnHeaderComplete();

  /// Verifies the checksum of the completed frame; kFrameReady or kFailed.
  void OnPayloadComplete();

  size_t max_payload_bytes_;
  State state_ = State::kHeader;
  uint8_t header_[kFrameHeaderBytes] = {};
  size_t header_filled_ = 0;
  std::vector<uint8_t> payload_;
  size_t payload_expected_ = 0;
  Status error_ = Status::OK();
};

}  // namespace wire
}  // namespace jxp

#endif  // JXP_WIRE_FRAME_ASSEMBLER_H_
