#ifndef JXP_WIRE_MEETING_CODEC_H_
#define JXP_WIRE_MEETING_CODEC_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"
#include "graph/subgraph.h"
#include "synopses/hash_sketch.h"
#include "wire/wire_format.h"

namespace jxp {
namespace wire {

/// Encode/Decode pairs for the three meeting payload types (DESIGN.md §6g).
/// This layer speaks graph/synopses vocabulary only; the core layer bridges
/// WorldNode and PeerView to/from the plain records here (core depends on
/// wire, never the reverse).

/// Encoder options.
struct EncodeOptions {
  /// Page-table records per kScoreChunk frame. Smaller chunks lose less to
  /// a torn transfer but pay 16 header bytes each; 64 keeps the overhead
  /// at a fraction of a byte per page.
  size_t pages_per_chunk = 64;
};

/// One world-node entry as shipped on the wire (encode side: target list
/// viewed in place, sorted unique ascending as WorldNode stores it).
struct WorldEntryIn {
  graph::PageId page = 0;
  uint32_t out_degree = 0;
  double score = 0;
  std::span<const graph::PageId> targets;
};

/// Encode-side dangling-page record.
struct DanglingIn {
  graph::PageId page = 0;
  double score = 0;
};

/// Decode-side page-table record. `score` is the sender's score after the
/// wire's round-down float quantization.
struct ScoreListPage {
  graph::PageId page = 0;
  float score = 0;
  std::vector<graph::PageId> successors;
};

/// Decode-side world-node entry.
struct WorldEntryOut {
  graph::PageId page = 0;
  uint32_t out_degree = 0;
  float score = 0;
  std::vector<graph::PageId> targets;
};

/// Decode-side dangling-page record.
struct DanglingOut {
  graph::PageId page = 0;
  float score = 0;
};

/// Everything the decoder recovered from the (possibly truncated or
/// corrupted) byte stream of one meeting message.
struct DecodedMeeting {
  /// Page-table records, in the sender's local-index order (== ascending
  /// page id). May be a prefix of the sender's table when the stream was
  /// cut or a later chunk was rejected.
  std::vector<ScoreListPage> pages;
  /// World knowledge; empty when the world frame was absent, lost, or the
  /// sender's world node was empty (an empty world node is not framed).
  std::vector<WorldEntryOut> world_entries;
  std::vector<DanglingOut> world_dangling;
  /// Page sketch; present iff a synopsis frame arrived intact.
  bool has_synopsis = false;
  uint64_t synopsis_seed = 0;
  std::vector<uint64_t> synopsis_bitmaps;
  /// Bytes of fully-decoded frames (what the receiver actually consumed).
  size_t bytes_consumed = 0;
  /// Where the next frame would start if the caller wants to reuse the
  /// stream after a salvaged decode. When the rejected frame was still
  /// syntactically delimited — header magic/version/length valid and the
  /// checksum matching, i.e. only the *payload semantics* were rejected —
  /// this points one past that frame, so the caller can resynchronize and
  /// decode what follows as a fresh message. When the frame header itself
  /// was untrustworthy (bad magic, corrupt length, checksum mismatch) no
  /// boundary is knowable and this equals bytes_consumed. Equals
  /// bytes_consumed on a fully-clean decode too.
  size_t resync_offset = 0;
  size_t frames_decoded = 0;
  /// Why decoding stopped early; OK when the whole buffer decoded. At most
  /// one frame is rejected — everything after a bad frame is undecodable
  /// (frame boundaries cannot be trusted past a corrupt length field).
  Status error = Status::OK();
};

/// Appends the page-table frames (kScoreChunk) for `fragment` + `scores`
/// (by local index) to `out`.
void EncodeScoreList(const graph::Subgraph& fragment, std::span<const double> scores,
                     const EncodeOptions& options, std::vector<uint8_t>& out);

/// Appends one kWorldKnowledge frame. `entries` and `dangling` must be
/// sorted by page id ascending (strictly); entries need out_degree >= 1 and
/// 1 <= |targets| <= out_degree. Appends nothing when both are empty.
void EncodeWorldKnowledge(std::span<const WorldEntryIn> entries,
                          std::span<const DanglingIn> dangling,
                          std::vector<uint8_t>& out);

/// Appends one kSynopsis frame.
void EncodeSynopsis(const synopses::HashSketch& sketch, std::vector<uint8_t>& out);

/// Decodes the longest valid frame prefix of `data` (the fault-tolerant
/// entry point: a truncated or bit-flipped transfer yields the intact
/// prefix plus a non-OK `error`). Strict per-frame validation: out-of-range
/// counts, non-finite or negative scores, non-ascending ids, duplicate or
/// out-of-order frames all reject the frame.
DecodedMeeting DecodeMeeting(std::span<const uint8_t> data);

/// Strict whole-message decode for round-trip tests and future transports:
/// any rejected frame or trailing garbage is an error and `out` is left in
/// an unspecified state.
Status DecodeMeetingStrict(std::span<const uint8_t> data, DecodedMeeting* out);

}  // namespace wire
}  // namespace jxp

#endif  // JXP_WIRE_MEETING_CODEC_H_
