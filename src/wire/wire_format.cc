#include "wire/wire_format.h"

#include "common/check.h"
#include "common/hash.h"

namespace jxp {
namespace wire {

uint64_t ComputeFrameChecksum(const uint8_t* header8, std::span<const uint8_t> payload) {
  std::string buffer;
  buffer.reserve(kChecksumOffset + payload.size());
  buffer.append(reinterpret_cast<const char*>(header8), kChecksumOffset);
  buffer.append(reinterpret_cast<const char*>(payload.data()), payload.size());
  return HashString(buffer);
}

namespace {

bool ValidType(uint8_t type) {
  return type == static_cast<uint8_t>(MessageType::kScoreChunk) ||
         type == static_cast<uint8_t>(MessageType::kWorldKnowledge) ||
         type == static_cast<uint8_t>(MessageType::kSynopsis);
}

void WriteHeader(uint8_t type, std::span<const uint8_t> payload, uint8_t* header) {
  header[0] = kMagic0;
  header[1] = kMagic1;
  header[2] = kVersion;
  header[3] = type;
  const uint32_t len = static_cast<uint32_t>(payload.size());
  for (int i = 0; i < 4; ++i) header[4 + i] = static_cast<uint8_t>(len >> (8 * i));
  const uint64_t checksum = ComputeFrameChecksum(header, payload);
  for (int i = 0; i < 8; ++i) {
    header[kChecksumOffset + i] = static_cast<uint8_t>(checksum >> (8 * i));
  }
}

}  // namespace

bool ByteReader::GetVarint32(uint32_t* v) {
  uint64_t wide = 0;
  const size_t saved = pos_;
  if (!GetVarint64(&wide) || wide > 0xffffffffull) {
    pos_ = saved;
    return false;
  }
  *v = static_cast<uint32_t>(wide);
  return true;
}

bool ByteReader::GetVarint64(uint64_t* v) {
  const size_t saved = pos_;
  uint64_t value = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    if (pos_ >= data_.size()) {
      pos_ = saved;
      return false;
    }
    const uint8_t byte = data_[pos_++];
    const uint64_t bits = byte & 0x7fu;
    // The 10th byte may only carry the final bit of a 64-bit value.
    if (shift == 63 && bits > 1) {
      pos_ = saved;
      return false;
    }
    value |= bits << shift;
    if ((byte & 0x80u) == 0) {
      *v = value;
      return true;
    }
  }
  pos_ = saved;
  return false;
}

void AppendFrame(MessageType type, std::span<const uint8_t> payload,
                 std::vector<uint8_t>& out) {
  AppendFrameRaw(static_cast<uint8_t>(type), payload, out);
}

void AppendFrameRaw(uint8_t type, std::span<const uint8_t> payload,
                    std::vector<uint8_t>& out) {
  uint8_t header[kFrameHeaderBytes];
  WriteHeader(type, payload, header);
  out.insert(out.end(), header, header + kFrameHeaderBytes);
  out.insert(out.end(), payload.begin(), payload.end());
}

void SealFrame(MessageType type, size_t payload_start, std::vector<uint8_t>& out) {
  JXP_CHECK_LE(payload_start, out.size());
  uint8_t header[kFrameHeaderBytes];
  // The header depends only on the payload bytes, which insert() may move;
  // compute it first, from the payload at its pre-insert location.
  WriteHeader(static_cast<uint8_t>(type),
              std::span<const uint8_t>(out.data() + payload_start,
                                       out.size() - payload_start),
              header);
  out.insert(out.begin() + static_cast<ptrdiff_t>(payload_start), header,
             header + kFrameHeaderBytes);
}

Status ParseFrame(std::span<const uint8_t> data, size_t& offset, FrameView& frame) {
  if (offset > data.size()) return Status::OutOfRange("frame offset past buffer");
  const size_t available = data.size() - offset;
  if (available < kFrameHeaderBytes) {
    return Status::Corruption("truncated frame header (" + std::to_string(available) +
                              " of " + std::to_string(kFrameHeaderBytes) + " bytes)");
  }
  const uint8_t* header = data.data() + offset;
  if (header[0] != kMagic0 || header[1] != kMagic1) {
    return Status::Corruption("bad frame magic");
  }
  if (header[2] != kVersion) {
    return Status::Corruption("unsupported wire version " + std::to_string(header[2]));
  }
  if (!ValidType(header[3])) {
    return Status::Corruption("unknown message type " + std::to_string(header[3]));
  }
  uint32_t payload_len = 0;
  for (int i = 0; i < 4; ++i) {
    payload_len |= static_cast<uint32_t>(header[4 + i]) << (8 * i);
  }
  if (payload_len > available - kFrameHeaderBytes) {
    return Status::Corruption("frame payload runs past buffer (" +
                              std::to_string(payload_len) + " > " +
                              std::to_string(available - kFrameHeaderBytes) + ")");
  }
  uint64_t stored = 0;
  for (int i = 0; i < 8; ++i) {
    stored |= static_cast<uint64_t>(header[kChecksumOffset + i]) << (8 * i);
  }
  const std::span<const uint8_t> payload(header + kFrameHeaderBytes, payload_len);
  if (stored != ComputeFrameChecksum(header, payload)) {
    return Status::Corruption("frame checksum mismatch");
  }
  frame.type = static_cast<MessageType>(header[3]);
  frame.payload = payload;
  offset += kFrameHeaderBytes + payload_len;
  return Status::OK();
}

}  // namespace wire
}  // namespace jxp
