#include "wire/frame_assembler.h"

#include <algorithm>
#include <cstring>
#include <string>

namespace jxp {
namespace wire {

size_t FrameAssembler::Feed(std::span<const uint8_t> data) {
  size_t consumed = 0;
  while (consumed < data.size()) {
    switch (state_) {
      case State::kFrameReady:
      case State::kFailed:
        return consumed;
      case State::kHeader: {
        const size_t want = kFrameHeaderBytes - header_filled_;
        const size_t take = std::min(want, data.size() - consumed);
        std::memcpy(header_ + header_filled_, data.data() + consumed, take);
        header_filled_ += take;
        consumed += take;
        if (header_filled_ == kFrameHeaderBytes) OnHeaderComplete();
        break;
      }
      case State::kPayload: {
        const size_t want = payload_expected_ - payload_.size();
        const size_t take = std::min(want, data.size() - consumed);
        payload_.insert(payload_.end(), data.data() + consumed,
                        data.data() + consumed + take);
        consumed += take;
        if (payload_.size() == payload_expected_) OnPayloadComplete();
        break;
      }
    }
  }
  return consumed;
}

void FrameAssembler::OnHeaderComplete() {
  if (header_[0] != kMagic0 || header_[1] != kMagic1) {
    error_ = Status::Corruption("bad frame magic");
    state_ = State::kFailed;
    return;
  }
  if (header_[2] != kVersion) {
    error_ = Status::Corruption("unsupported wire version " + std::to_string(header_[2]));
    state_ = State::kFailed;
    return;
  }
  uint32_t payload_len = 0;
  for (int i = 0; i < 4; ++i) {
    payload_len |= static_cast<uint32_t>(header_[4 + i]) << (8 * i);
  }
  // Reject before reserving: the length field is untrusted input, and this
  // is the only place it could turn into an allocation.
  if (payload_len > max_payload_bytes_) {
    error_ = Status::OutOfRange("frame payload length " + std::to_string(payload_len) +
                                " exceeds cap " + std::to_string(max_payload_bytes_));
    state_ = State::kFailed;
    return;
  }
  payload_.clear();
  payload_expected_ = payload_len;
  if (payload_expected_ == 0) {
    OnPayloadComplete();
  } else {
    payload_.reserve(payload_expected_);
    state_ = State::kPayload;
  }
}

void FrameAssembler::OnPayloadComplete() {
  uint64_t stored = 0;
  for (int i = 0; i < 8; ++i) {
    stored |= static_cast<uint64_t>(header_[kChecksumOffset + i]) << (8 * i);
  }
  if (stored != ComputeFrameChecksum(header_, payload_)) {
    error_ = Status::Corruption("frame checksum mismatch");
    state_ = State::kFailed;
    return;
  }
  state_ = State::kFrameReady;
}

void FrameAssembler::ConsumeFrame() {
  if (state_ != State::kFrameReady) return;
  payload_.clear();
  payload_expected_ = 0;
  header_filled_ = 0;
  state_ = State::kHeader;
}

void FrameAssembler::Reset() {
  payload_.clear();
  payload_expected_ = 0;
  header_filled_ = 0;
  error_ = Status::OK();
  state_ = State::kHeader;
}

size_t FrameAssembler::buffered_bytes() const {
  switch (state_) {
    case State::kHeader:
      return header_filled_;
    case State::kPayload:
    case State::kFrameReady:
      return kFrameHeaderBytes + payload_.size();
    case State::kFailed:
      return 0;
  }
  return 0;
}

}  // namespace wire
}  // namespace jxp
