#ifndef JXP_WIRE_WIRE_FORMAT_H_
#define JXP_WIRE_WIRE_FORMAT_H_

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/varint.h"

namespace jxp {
namespace wire {

/// The binary framing of every meeting payload (DESIGN.md §6g). A meeting
/// message is a sequence of self-contained frames:
///
///   [0:2)   magic 0x4A 0x58 ("JX")
///   [2]     version (currently 1)
///   [3]     message type (MessageType)
///   [4:8)   payload length, uint32 little-endian
///   [8:16)  checksum, uint64 little-endian — HashString over the first 8
///           header bytes plus the payload, so a flip of *any* frame byte
///           except inside the checksum itself changes the hashed content
///           (and a flip inside the checksum mismatches trivially)
///   [16:16+len) payload
///
/// Versioning rules: the header layout is frozen; `version` is bumped when
/// any payload encoding changes incompatibly, and decoders reject frames
/// from versions they do not understand (Status, never a crash). New message
/// types may be added within a version; decoders reject unknown types.
///
/// Integers inside payloads are VByte varints (common/varint.h), id
/// sequences are delta-encoded (first absolute, then strictly positive
/// deltas), and scores are 4-byte little-endian floats quantized with
/// LowerBoundFloat so a decoded score never exceeds the sender's exact
/// double (JXP safety, Theorem 5.3).

/// Kinds of meeting payload frames.
enum class MessageType : uint8_t {
  /// A chunk of the sender's page table: (page id, score, successor list)
  /// records in local-index order. Chunking bounds the blast radius of a
  /// torn or corrupted transfer: every chunk frame that arrived intact
  /// still decodes, exactly like the analytic model's prefix truncation.
  kScoreChunk = 1,
  /// The sender's world-node knowledge (external in-link entries and
  /// dangling scores). Rides behind the score chunks, so a truncated
  /// transfer loses it first.
  kWorldKnowledge = 2,
  /// The sender's distinct-page hash sketch (only shipped when global-size
  /// estimation is on). Last in the message.
  kSynopsis = 3,
};

inline constexpr uint8_t kMagic0 = 0x4a;  // 'J'
inline constexpr uint8_t kMagic1 = 0x58;  // 'X'
inline constexpr uint8_t kVersion = 1;
inline constexpr size_t kFrameHeaderBytes = 16;
/// Offset of the checksum field within the header.
inline constexpr size_t kChecksumOffset = 8;

/// Little-endian byte sink for payloads. Appends to an external buffer so a
/// whole message (many frames) lives in one allocation.
class ByteWriter {
 public:
  explicit ByteWriter(std::vector<uint8_t>& out) : out_(out) {}

  void PutU8(uint8_t v) { out_.push_back(v); }
  void PutU32(uint32_t v) {
    for (int i = 0; i < 4; ++i) out_.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
  void PutU64(uint64_t v) {
    for (int i = 0; i < 8; ++i) out_.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
  void PutVarint32(uint32_t v) { VByteEncode32(v, out_); }
  void PutVarint64(uint64_t v) { VByteEncode64(v, out_); }
  void PutFloat(float v) {
    uint32_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    PutU32(bits);
  }

  size_t size() const { return out_.size(); }

 private:
  std::vector<uint8_t>& out_;
};

/// Bounds-checked little-endian reader over untrusted bytes. Every getter
/// returns false (leaving the cursor untouched) instead of reading past the
/// end, so decoders turn malformed input into an error Status, never UB.
class ByteReader {
 public:
  explicit ByteReader(std::span<const uint8_t> data) : data_(data) {}

  bool GetU8(uint8_t* v) {
    if (pos_ + 1 > data_.size()) return false;
    *v = data_[pos_++];
    return true;
  }
  bool GetU32(uint32_t* v) {
    if (pos_ + 4 > data_.size()) return false;
    uint32_t out = 0;
    for (int i = 0; i < 4; ++i) out |= static_cast<uint32_t>(data_[pos_ + i]) << (8 * i);
    pos_ += 4;
    *v = out;
    return true;
  }
  bool GetU64(uint64_t* v) {
    if (pos_ + 8 > data_.size()) return false;
    uint64_t out = 0;
    for (int i = 0; i < 8; ++i) out |= static_cast<uint64_t>(data_[pos_ + i]) << (8 * i);
    pos_ += 8;
    *v = out;
    return true;
  }
  /// Varint decode with strict bounds and width checks: rejects encodings
  /// that run off the buffer or carry more than 32/64 value bits.
  bool GetVarint32(uint32_t* v);
  bool GetVarint64(uint64_t* v);
  bool GetFloat(float* v) {
    uint32_t bits = 0;
    if (!GetU32(&bits)) return false;
    std::memcpy(v, &bits, sizeof(*v));
    return true;
  }

  size_t position() const { return pos_; }
  size_t remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  std::span<const uint8_t> data_;
  size_t pos_ = 0;
};

/// A parsed frame: its type and a view of its payload (into the caller's
/// buffer; valid while that buffer lives).
struct FrameView {
  MessageType type = MessageType::kScoreChunk;
  std::span<const uint8_t> payload;
};

/// The frame checksum: common FNV-1a/Mix64 over the 8 pre-checksum header
/// bytes plus the payload. Exposed so incremental reassemblers
/// (FrameAssembler) and other transports can verify frames without
/// re-implementing the hash.
uint64_t ComputeFrameChecksum(const uint8_t* header8, std::span<const uint8_t> payload);

/// Appends one frame (header + `payload`) to `out`.
void AppendFrame(MessageType type, std::span<const uint8_t> payload,
                 std::vector<uint8_t>& out);

/// Same framing with an arbitrary type byte. The meeting decoder rejects
/// types outside MessageType; this overload exists for layers that define
/// their own type space over the same frame header (src/net's control
/// protocol uses 0x10+).
void AppendFrameRaw(uint8_t type, std::span<const uint8_t> payload,
                    std::vector<uint8_t>& out);

/// Convenience: frames the bytes `out[payload_start:]` in place, i.e. the
/// payload was written directly into `out` and the 16 header bytes are
/// inserted before it. Avoids a payload copy per frame.
void SealFrame(MessageType type, size_t payload_start, std::vector<uint8_t>& out);

/// Parses the frame starting at `data[offset]`. On success advances
/// `offset` past the frame and fills `frame`. On failure (truncated header,
/// bad magic/version/type, payload running past the buffer, checksum
/// mismatch) returns a Corruption/OutOfRange Status and leaves `offset`
/// untouched.
Status ParseFrame(std::span<const uint8_t> data, size_t& offset, FrameView& frame);

}  // namespace wire
}  // namespace jxp

#endif  // JXP_WIRE_WIRE_FORMAT_H_
