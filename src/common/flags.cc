#include "common/flags.h"

#include <cstdlib>
#include <string_view>

#include "common/check.h"

namespace jxp {

Status Flags::Parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg(argv[i]);
    if (arg.size() < 3 || arg.substr(0, 2) != "--") {
      return Status::InvalidArgument("expected --name[=value], got: " + std::string(arg));
    }
    arg.remove_prefix(2);
    const size_t eq = arg.find('=');
    if (eq != std::string_view::npos) {
      values_[std::string(arg.substr(0, eq))] = std::string(arg.substr(eq + 1));
    } else if (i + 1 < argc && std::string_view(argv[i + 1]).substr(0, 2) != "--") {
      values_[std::string(arg)] = argv[++i];
    } else {
      values_[std::string(arg)] = "true";
    }
  }
  return Status::OK();
}

std::string Flags::GetString(const std::string& name, const std::string& def) const {
  const auto it = values_.find(name);
  return it == values_.end() ? def : it->second;
}

int64_t Flags::GetInt(const std::string& name, int64_t def) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return def;
  char* end = nullptr;
  const int64_t v = std::strtoll(it->second.c_str(), &end, 10);
  JXP_CHECK(end != nullptr && *end == '\0') << "flag --" << name << " is not an integer: "
                                            << it->second;
  return v;
}

double Flags::GetDouble(const std::string& name, double def) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return def;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  JXP_CHECK(end != nullptr && *end == '\0') << "flag --" << name << " is not a number: "
                                            << it->second;
  return v;
}

bool Flags::GetBool(const std::string& name, bool def) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return def;
  const std::string& v = it->second;
  if (v == "true" || v == "1") return true;
  if (v == "false" || v == "0") return false;
  JXP_CHECK(false) << "flag --" << name << " is not a bool: " << v;
  return def;
}

}  // namespace jxp
