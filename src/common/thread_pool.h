#ifndef JXP_COMMON_THREAD_POOL_H_
#define JXP_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace jxp {

/// A small fixed-size thread pool built for *deterministic* data
/// parallelism.
///
/// ParallelFor / ParallelForBlocks split [begin, end) into fixed-size
/// blocks of `grain` indices. Block boundaries depend only on
/// (begin, end, grain) — never on the thread count — and blocks are
/// assigned statically (block b runs on worker b % num_threads, no work
/// stealing). Any computation whose writes are disjoint per index, plus any
/// reduction that accumulates per block and combines the block partials in
/// block order, therefore produces bit-identical results at every thread
/// count, including 1.
///
/// The calling thread participates as worker 0, so a pool of size T spawns
/// T - 1 background threads (ThreadPool(1) spawns none and runs everything
/// inline). Calls must not be nested: a ParallelFor body must not invoke
/// ParallelFor on the same pool. Bodies must not throw.
class ThreadPool {
 public:
  /// Creates a pool of `num_threads` workers (clamped to at least 1).
  explicit ThreadPool(size_t num_threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool();

  /// Number of workers, including the calling thread.
  size_t num_threads() const { return num_threads_; }

  /// Runs `body(block_begin, block_end, block_index)` once per block of the
  /// fixed partition of [begin, end) into blocks of `grain` indices (the
  /// last block may be short). Blocks are executed round-robin across
  /// workers; the call returns after every block has finished.
  void ParallelForBlocks(size_t begin, size_t end, size_t grain,
                         const std::function<void(size_t, size_t, size_t)>& body);

  /// Per-index convenience wrapper: runs `fn(i)` for every i in [begin, end)
  /// using the same deterministic block partition.
  void ParallelFor(size_t begin, size_t end, size_t grain,
                   const std::function<void(size_t)>& fn);

 private:
  /// The immutable description of one ParallelForBlocks launch.
  struct Launch {
    const std::function<void(size_t, size_t, size_t)>* body = nullptr;
    size_t begin = 0;
    size_t end = 0;
    size_t grain = 1;
    size_t num_blocks = 0;
  };

  /// Runs the blocks statically assigned to `worker` for launch `launch`.
  static void RunAssignedBlocks(const Launch& launch, size_t worker, size_t num_threads);

  void WorkerLoop(size_t worker);

  const size_t num_threads_;
  std::vector<std::thread> threads_;

  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  Launch launch_;
  uint64_t generation_ = 0;
  size_t workers_done_ = 0;
  bool shutdown_ = false;
};

}  // namespace jxp

#endif  // JXP_COMMON_THREAD_POOL_H_
