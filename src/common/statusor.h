#ifndef JXP_COMMON_STATUSOR_H_
#define JXP_COMMON_STATUSOR_H_

#include <optional>
#include <utility>

#include "common/check.h"
#include "common/status.h"

namespace jxp {

/// StatusOr<T> holds either a value of type T or an error Status.
///
/// Accessing the value of an error-state StatusOr aborts the process (the
/// library is exception-free); callers must test ok() or use
/// JXP_ASSIGN_OR_RETURN.
template <typename T>
class StatusOr {
 public:
  /// Constructs from an error status. Must not be OK: an OK status without a
  /// value is a logic error.
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT(google-explicit-constructor)
    JXP_CHECK(!status_.ok()) << "StatusOr constructed from OK status without value";
  }

  /// Constructs from a value; the status is OK.
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)

  StatusOr(const StatusOr&) = default;
  StatusOr& operator=(const StatusOr&) = default;
  StatusOr(StatusOr&&) noexcept = default;
  StatusOr& operator=(StatusOr&&) noexcept = default;

  /// True iff a value is present.
  bool ok() const { return status_.ok(); }

  /// The status; OK when a value is present.
  const Status& status() const { return status_; }

  /// Value accessors; abort if no value is present.
  const T& value() const& {
    JXP_CHECK(ok()) << "StatusOr::value() on error: " << status_.ToString();
    return *value_;
  }
  T& value() & {
    JXP_CHECK(ok()) << "StatusOr::value() on error: " << status_.ToString();
    return *value_;
  }
  T&& value() && {
    JXP_CHECK(ok()) << "StatusOr::value() on error: " << status_.ToString();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace jxp

/// Assigns the value of a StatusOr expression to `lhs`, or propagates the
/// error from the enclosing function.
#define JXP_ASSIGN_OR_RETURN(lhs, expr)                  \
  JXP_ASSIGN_OR_RETURN_IMPL_(                            \
      JXP_STATUS_MACRO_CONCAT_(_jxp_statusor, __LINE__), lhs, expr)

#define JXP_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                               \
  if (!tmp.ok()) return tmp.status();              \
  lhs = std::move(tmp).value()

#define JXP_STATUS_MACRO_CONCAT_INNER_(x, y) x##y
#define JXP_STATUS_MACRO_CONCAT_(x, y) JXP_STATUS_MACRO_CONCAT_INNER_(x, y)

#endif  // JXP_COMMON_STATUSOR_H_
