#include "common/random.h"

#include <unordered_set>

namespace jxp {

uint64_t Random::NextBounded(uint64_t bound) {
  JXP_CHECK_GT(bound, 0u);
  // Lemire's method: multiply into a 128-bit product; reject the small
  // biased region at the bottom.
  uint64_t x = NextUint64();
  __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
  uint64_t low = static_cast<uint64_t>(m);
  if (low < bound) {
    const uint64_t threshold = (0 - bound) % bound;
    while (low < threshold) {
      x = NextUint64();
      m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
      low = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Random::NextInRange(int64_t lo, int64_t hi) {
  JXP_CHECK_LE(lo, hi);
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextBounded(span));
}

std::vector<size_t> Random::SampleWithoutReplacement(size_t n, size_t k) {
  JXP_CHECK_LE(k, n);
  // For dense samples use a partial Fisher-Yates over an index vector; for
  // sparse samples use rejection into a hash set.
  if (k * 3 >= n) {
    std::vector<size_t> idx(n);
    for (size_t i = 0; i < n; ++i) idx[i] = i;
    for (size_t i = 0; i < k; ++i) {
      const size_t j = i + static_cast<size_t>(NextBounded(n - i));
      std::swap(idx[i], idx[j]);
    }
    idx.resize(k);
    return idx;
  }
  std::unordered_set<size_t> seen;
  std::vector<size_t> out;
  out.reserve(k);
  while (out.size() < k) {
    const size_t candidate = static_cast<size_t>(NextBounded(n));
    if (seen.insert(candidate).second) out.push_back(candidate);
  }
  return out;
}

size_t WeightedPick(const std::vector<double>& weights, Random& rng) {
  JXP_CHECK(!weights.empty());
  double total = 0;
  for (double w : weights) {
    JXP_CHECK_GE(w, 0.0);
    total += w;
  }
  JXP_CHECK_GT(total, 0.0);
  double r = rng.NextDouble() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r < 0) return i;
  }
  return weights.size() - 1;  // Guard against accumulated rounding.
}

}  // namespace jxp
