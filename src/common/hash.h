#ifndef JXP_COMMON_HASH_H_
#define JXP_COMMON_HASH_H_

#include <cstdint>
#include <string_view>

namespace jxp {

/// Finalizing 64-bit mixer (the MurmurHash3 fmix64 function). Maps any
/// 64-bit key to a well-distributed 64-bit value; bijective.
inline uint64_t Mix64(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

/// Combines a hash with a new value, boost::hash_combine style but 64-bit.
inline uint64_t HashCombine(uint64_t seed, uint64_t value) {
  return seed ^ (Mix64(value) + 0x9e3779b97f4a7c15ULL + (seed << 12) + (seed >> 4));
}

/// FNV-1a hash of a byte string; used for term/URL keys.
inline uint64_t HashString(std::string_view s) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return Mix64(h);
}

}  // namespace jxp

#endif  // JXP_COMMON_HASH_H_
