#ifndef JXP_COMMON_VARINT_H_
#define JXP_COMMON_VARINT_H_

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

namespace jxp {

/// Compact-encoding primitives shared by the qp posting-list compression and
/// the meeting wire codec (DESIGN.md §6f / §6g): VByte variable-length
/// integers (7 data bits per byte, high bit set on all but the final byte)
/// and the never-narrowing float quantization used for per-block metadata
/// and wire scores.

/// Appends `value` VByte-encoded to `out`.
inline void VByteEncode32(uint32_t value, std::vector<uint8_t>& out) {
  while (value >= 0x80u) {
    out.push_back(static_cast<uint8_t>((value & 0x7fu) | 0x80u));
    value >>= 7;
  }
  out.push_back(static_cast<uint8_t>(value));
}

inline void VByteEncode64(uint64_t value, std::vector<uint8_t>& out) {
  while (value >= 0x80u) {
    out.push_back(static_cast<uint8_t>((value & 0x7fu) | 0x80u));
    value >>= 7;
  }
  out.push_back(static_cast<uint8_t>(value));
}

/// Decodes one VByte value starting at `data[offset]`, advancing `offset`.
/// Trusted-input variant (no bounds checking): the caller guarantees a
/// complete encoding is present, as qp's in-memory blocks do. Untrusted
/// input (wire frames) goes through wire::ByteReader instead.
inline uint32_t VByteDecode32(const uint8_t* data, size_t& offset) {
  uint32_t value = 0;
  int shift = 0;
  while (true) {
    const uint8_t byte = data[offset++];
    value |= static_cast<uint32_t>(byte & 0x7fu) << shift;
    if ((byte & 0x80u) == 0) return value;
    shift += 7;
  }
}

/// Smallest float f with (double)f >= v; the rounding direction that keeps a
/// quantized *upper bound* a true upper bound of the exact doubles it
/// summarizes (the qp pruning invariant).
inline float UpperBoundFloat(double v) {
  float f = static_cast<float>(v);
  if (static_cast<double>(f) < v) {
    f = std::nextafter(f, std::numeric_limits<float>::infinity());
  }
  return f;
}

/// Largest float f with (double)f <= v; the rounding direction for wire
/// scores, which must never *overestimate* the sender's exact value (JXP
/// safety, Theorem 5.3: reported scores are underestimates of the true
/// PageRank, and quantization must not break that).
inline float LowerBoundFloat(double v) {
  float f = static_cast<float>(v);
  if (static_cast<double>(f) > v) {
    f = std::nextafter(f, -std::numeric_limits<float>::infinity());
  }
  return f;
}

}  // namespace jxp

#endif  // JXP_COMMON_VARINT_H_
