#ifndef JXP_COMMON_VARINT_H_
#define JXP_COMMON_VARINT_H_

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <vector>

namespace jxp {

/// Compact-encoding primitives shared by the qp posting-list compression and
/// the meeting wire codec (DESIGN.md §6f / §6g): VByte variable-length
/// integers (7 data bits per byte, high bit set on all but the final byte)
/// and the never-narrowing float quantization used for per-block metadata
/// and wire scores.

/// Appends `value` VByte-encoded to `out`.
inline void VByteEncode32(uint32_t value, std::vector<uint8_t>& out) {
  while (value >= 0x80u) {
    out.push_back(static_cast<uint8_t>((value & 0x7fu) | 0x80u));
    value >>= 7;
  }
  out.push_back(static_cast<uint8_t>(value));
}

inline void VByteEncode64(uint64_t value, std::vector<uint8_t>& out) {
  while (value >= 0x80u) {
    out.push_back(static_cast<uint8_t>((value & 0x7fu) | 0x80u));
    value >>= 7;
  }
  out.push_back(static_cast<uint8_t>(value));
}

/// Decodes one VByte value starting at `data[offset]`, advancing `offset`.
/// Trusted-input variant (no bounds checking): the caller guarantees a
/// complete encoding is present, as qp's in-memory blocks do. Untrusted
/// input (wire frames) goes through wire::ByteReader instead.
inline uint32_t VByteDecode32(const uint8_t* data, size_t& offset) {
  uint32_t value = 0;
  int shift = 0;
  while (true) {
    const uint8_t byte = data[offset++];
    value |= static_cast<uint32_t>(byte & 0x7fu) << shift;
    if ((byte & 0x80u) == 0) return value;
    shift += 7;
  }
}

/// Bounds-checked decode of one VByte value from `data[offset..size)`.
/// Returns false — leaving `offset` untouched — when the encoding runs off
/// the buffer or carries more than 32 value bits (an overlong or truncated
/// final value must surface as an error, never as a read past the buffer).
inline bool VByteDecode32Checked(const uint8_t* data, size_t size, size_t& offset,
                                 uint32_t* value) {
  uint32_t v = 0;
  int shift = 0;
  size_t pos = offset;
  while (pos < size) {
    const uint8_t byte = data[pos++];
    v |= static_cast<uint32_t>(byte & 0x7fu) << shift;
    if ((byte & 0x80u) == 0) {
      // The final byte of a 5-byte encoding may only carry 4 data bits.
      if (shift == 28 && (byte & 0x70u) != 0) return false;
      *value = v;
      offset = pos;
      return true;
    }
    shift += 7;
    if (shift >= 35) return false;
  }
  return false;
}

inline bool VByteDecode64Checked(const uint8_t* data, size_t size, size_t& offset,
                                 uint64_t* value) {
  uint64_t v = 0;
  int shift = 0;
  size_t pos = offset;
  while (pos < size) {
    const uint8_t byte = data[pos++];
    v |= static_cast<uint64_t>(byte & 0x7fu) << shift;
    if ((byte & 0x80u) == 0) {
      if (shift == 63 && (byte & 0x7eu) != 0) return false;
      *value = v;
      offset = pos;
      return true;
    }
    shift += 7;
    if (shift >= 70) return false;
  }
  return false;
}

/// Decodes `count` consecutive VByte values from `data[offset..size)` into
/// `out`, advancing `offset`. Bounds-checked like VByteDecode32Checked, with
/// an unrolled fast path: whenever the next eight bytes are all single-byte
/// encodings (no continuation bits — the common case for small deltas and
/// term frequencies), one 8-byte load and a mask test emit eight values with
/// no per-byte branching. Falls back to the checked scalar loop around any
/// multi-byte value and re-enters the wide path after it.
inline bool VByteDecodeArray32(const uint8_t* data, size_t size, size_t& offset,
                               size_t count, uint32_t* out) {
  size_t pos = offset;
  size_t i = 0;
  while (i < count) {
    if (i + 8 <= count && pos + 8 <= size) {
      uint64_t window;
      std::memcpy(&window, data + pos, sizeof(window));
      if ((window & 0x8080808080808080ull) == 0) {
        out[i + 0] = static_cast<uint8_t>(window);
        out[i + 1] = static_cast<uint8_t>(window >> 8);
        out[i + 2] = static_cast<uint8_t>(window >> 16);
        out[i + 3] = static_cast<uint8_t>(window >> 24);
        out[i + 4] = static_cast<uint8_t>(window >> 32);
        out[i + 5] = static_cast<uint8_t>(window >> 40);
        out[i + 6] = static_cast<uint8_t>(window >> 48);
        out[i + 7] = static_cast<uint8_t>(window >> 56);
        i += 8;
        pos += 8;
        continue;
      }
    }
    if (!VByteDecode32Checked(data, size, pos, &out[i])) return false;
    ++i;
  }
  offset = pos;
  return true;
}

/// Smallest float f with (double)f >= v; the rounding direction that keeps a
/// quantized *upper bound* a true upper bound of the exact doubles it
/// summarizes (the qp pruning invariant).
inline float UpperBoundFloat(double v) {
  float f = static_cast<float>(v);
  if (static_cast<double>(f) < v) {
    f = std::nextafter(f, std::numeric_limits<float>::infinity());
  }
  return f;
}

/// Largest float f with (double)f <= v; the rounding direction for wire
/// scores, which must never *overestimate* the sender's exact value (JXP
/// safety, Theorem 5.3: reported scores are underestimates of the true
/// PageRank, and quantization must not break that).
inline float LowerBoundFloat(double v) {
  float f = static_cast<float>(v);
  if (static_cast<double>(f) > v) {
    f = std::nextafter(f, -std::numeric_limits<float>::infinity());
  }
  return f;
}

}  // namespace jxp

#endif  // JXP_COMMON_VARINT_H_
