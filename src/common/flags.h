#ifndef JXP_COMMON_FLAGS_H_
#define JXP_COMMON_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>

#include "common/status.h"

namespace jxp {

/// Minimal command-line flag parser for bench and example binaries.
///
/// Accepts arguments of the form `--name=value` or `--name value`; a bare
/// `--name` is treated as the boolean value "true". Unknown flags are kept
/// and can be rejected by the caller via UnparsedFlags().
class Flags {
 public:
  /// Parses argv (argv[0] is skipped). Returns InvalidArgument on malformed
  /// input such as a positional argument.
  Status Parse(int argc, char** argv);

  /// Returns the flag value as a string, or `def` when absent.
  std::string GetString(const std::string& name, const std::string& def) const;

  /// Returns the flag value parsed as int64, or `def` when absent. Aborts on
  /// unparsable values (bench binaries want loud failures).
  int64_t GetInt(const std::string& name, int64_t def) const;

  /// Returns the flag value parsed as double, or `def` when absent.
  double GetDouble(const std::string& name, double def) const;

  /// Returns the flag value parsed as bool ("true"/"1"/"false"/"0").
  bool GetBool(const std::string& name, bool def) const;

  /// True iff the flag was present on the command line.
  bool Has(const std::string& name) const { return values_.count(name) > 0; }

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace jxp

#endif  // JXP_COMMON_FLAGS_H_
