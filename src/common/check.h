#ifndef JXP_COMMON_CHECK_H_
#define JXP_COMMON_CHECK_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

#include "common/status.h"

namespace jxp {
namespace internal_check {

/// Collects a failure message via operator<< and aborts on destruction.
/// Used only through the JXP_CHECK* macros below.
class CheckFailureStream {
 public:
  CheckFailureStream(const char* condition, const char* file, int line) {
    stream_ << "JXP_CHECK failed: " << condition << " at " << file << ":" << line << " ";
  }

  [[noreturn]] ~CheckFailureStream() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }

  template <typename T>
  CheckFailureStream& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

}  // namespace internal_check
}  // namespace jxp

/// Aborts the process with a message when `condition` is false. Active in all
/// build types: these guard invariants whose violation would corrupt results.
#define JXP_CHECK(condition)                                                  \
  if (condition) {                                                            \
  } else                                                                      \
    ::jxp::internal_check::CheckFailureStream(#condition, __FILE__, __LINE__)

#define JXP_CHECK_EQ(a, b) JXP_CHECK((a) == (b)) << " (" << (a) << " vs " << (b) << ") "
#define JXP_CHECK_NE(a, b) JXP_CHECK((a) != (b)) << " (" << (a) << " vs " << (b) << ") "
#define JXP_CHECK_LT(a, b) JXP_CHECK((a) < (b)) << " (" << (a) << " vs " << (b) << ") "
#define JXP_CHECK_LE(a, b) JXP_CHECK((a) <= (b)) << " (" << (a) << " vs " << (b) << ") "
#define JXP_CHECK_GT(a, b) JXP_CHECK((a) > (b)) << " (" << (a) << " vs " << (b) << ") "
#define JXP_CHECK_GE(a, b) JXP_CHECK((a) >= (b)) << " (" << (a) << " vs " << (b) << ") "

/// Checks that a Status-returning expression is OK.
#define JXP_CHECK_OK(expr)                                           \
  do {                                                               \
    const ::jxp::Status _jxp_check_status = (expr);                  \
    JXP_CHECK(_jxp_check_status.ok()) << _jxp_check_status.ToString(); \
  } while (false)

#endif  // JXP_COMMON_CHECK_H_
