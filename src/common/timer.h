#ifndef JXP_COMMON_TIMER_H_
#define JXP_COMMON_TIMER_H_

#include <chrono>
#include <ctime>

namespace jxp {

/// Wall-clock stopwatch (steady clock).
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed wall time in seconds since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed wall time in milliseconds.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Monotonic wall clock in integer nanoseconds (CLOCK_MONOTONIC) — the
/// time base of the latency-observability layer (obs::HdrHistogram stage
/// samples and the open-loop load harness' arrival schedule), where the
/// double-seconds WallTimer would lose integer exactness.
inline uint64_t MonotonicNanos() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<uint64_t>(ts.tv_sec) * 1000000000ull +
         static_cast<uint64_t>(ts.tv_nsec);
}

/// Process-CPU-time stopwatch; used for Table 1 (merge CPU cost), matching
/// the paper's "CPU time (in milliseconds)" measurement.
class CpuTimer {
 public:
  CpuTimer() : start_(Now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Now(); }

  /// Elapsed CPU time in seconds.
  double ElapsedSeconds() const { return Now() - start_; }

  /// Elapsed CPU time in milliseconds.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  static double Now() {
    timespec ts{};
    clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
    return static_cast<double>(ts.tv_sec) + static_cast<double>(ts.tv_nsec) * 1e-9;
  }

  double start_;
};

/// Per-thread CPU-time stopwatch (CLOCK_THREAD_CPUTIME_ID); used by trace
/// spans, where the process-wide clock would charge one span for work other
/// threads did concurrently.
class ThreadCpuTimer {
 public:
  ThreadCpuTimer() : start_(Now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Now(); }

  /// Elapsed CPU time of the calling thread in seconds.
  double ElapsedSeconds() const { return Now() - start_; }

  /// Elapsed CPU time of the calling thread in milliseconds.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  static double Now() {
    timespec ts{};
    clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
    return static_cast<double>(ts.tv_sec) + static_cast<double>(ts.tv_nsec) * 1e-9;
  }

  double start_;
};

}  // namespace jxp

#endif  // JXP_COMMON_TIMER_H_
