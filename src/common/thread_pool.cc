#include "common/thread_pool.h"

#include <algorithm>

#include "common/check.h"

namespace jxp {

ThreadPool::ThreadPool(size_t num_threads) : num_threads_(std::max<size_t>(1, num_threads)) {
  threads_.reserve(num_threads_ - 1);
  for (size_t w = 1; w < num_threads_; ++w) {
    threads_.emplace_back([this, w] { WorkerLoop(w); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::RunAssignedBlocks(const Launch& launch, size_t worker,
                                   size_t num_threads) {
  for (size_t b = worker; b < launch.num_blocks; b += num_threads) {
    const size_t block_begin = launch.begin + b * launch.grain;
    const size_t block_end = std::min(launch.end, block_begin + launch.grain);
    (*launch.body)(block_begin, block_end, b);
  }
}

void ThreadPool::WorkerLoop(size_t worker) {
  uint64_t seen = 0;
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    work_cv_.wait(lock, [&] { return shutdown_ || generation_ != seen; });
    if (shutdown_) return;
    seen = generation_;
    const Launch launch = launch_;
    lock.unlock();
    RunAssignedBlocks(launch, worker, num_threads_);
    lock.lock();
    if (++workers_done_ == num_threads_ - 1) done_cv_.notify_one();
  }
}

void ThreadPool::ParallelForBlocks(
    size_t begin, size_t end, size_t grain,
    const std::function<void(size_t, size_t, size_t)>& body) {
  if (end <= begin) return;
  JXP_CHECK_GE(grain, 1u);
  Launch launch;
  launch.body = &body;
  launch.begin = begin;
  launch.end = end;
  launch.grain = grain;
  launch.num_blocks = (end - begin + grain - 1) / grain;
  if (num_threads_ == 1 || launch.num_blocks == 1) {
    // Inline execution visits the same blocks in block order, so results
    // match the multi-threaded runs bit for bit.
    RunAssignedBlocks(launch, 0, 1);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    launch_ = launch;
    workers_done_ = 0;
    ++generation_;
  }
  work_cv_.notify_all();
  RunAssignedBlocks(launch, 0, num_threads_);
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [&] { return workers_done_ == num_threads_ - 1; });
}

void ThreadPool::ParallelFor(size_t begin, size_t end, size_t grain,
                             const std::function<void(size_t)>& fn) {
  ParallelForBlocks(begin, end, grain,
                    [&fn](size_t block_begin, size_t block_end, size_t) {
                      for (size_t i = block_begin; i < block_end; ++i) fn(i);
                    });
}

}  // namespace jxp
