#ifndef JXP_COMMON_STATUS_H_
#define JXP_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace jxp {

/// Canonical error codes, modeled after the usual database-library set
/// (Arrow / RocksDB style). The library does not use exceptions; every
/// fallible operation returns a Status or StatusOr<T>.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kIOError,
  kCorruption,
  kUnimplemented,
  kInternal,
};

/// Returns a stable human-readable name for a status code ("OK",
/// "InvalidArgument", ...).
std::string_view StatusCodeToString(StatusCode code);

/// A Status holds either success (OK) or an error code plus message.
///
/// The OK state is represented without allocation; error states carry a
/// heap-allocated message. Status is cheap to move and to test.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message. A kOk code with a
  /// non-empty message is normalized to plain OK.
  Status(StatusCode code, std::string message)
      : code_(code), message_(code == StatusCode::kOk ? std::string() : std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  /// Factory helpers, one per error code.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) { return Status(StatusCode::kNotFound, std::move(msg)); }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status IOError(std::string msg) { return Status(StatusCode::kIOError, std::move(msg)); }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) { return Status(StatusCode::kInternal, std::move(msg)); }

  /// True iff this status represents success.
  bool ok() const { return code_ == StatusCode::kOk; }

  /// The status code.
  StatusCode code() const { return code_; }

  /// The error message; empty for OK statuses.
  const std::string& message() const { return message_; }

  /// Formats as "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

}  // namespace jxp

/// Propagates an error Status from the evaluated expression, RocksDB-style.
#define JXP_RETURN_IF_ERROR(expr)                 \
  do {                                            \
    ::jxp::Status _jxp_status = (expr);           \
    if (!_jxp_status.ok()) return _jxp_status;    \
  } while (false)

#endif  // JXP_COMMON_STATUS_H_
