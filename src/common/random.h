#ifndef JXP_COMMON_RANDOM_H_
#define JXP_COMMON_RANDOM_H_

#include <cstdint>
#include <vector>

#include "common/check.h"

namespace jxp {

/// SplitMix64: a tiny, fast, high-quality 64-bit mixer. Used to seed the
/// main generator and as a standalone stateless hash-like stream.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  /// Returns the next 64-bit value of the stream.
  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

/// Deterministic pseudo-random engine (xoshiro256**). All randomized code in
/// the library takes a Random& so that simulations are exactly reproducible
/// from a single seed; std::mt19937 is avoided because its stream is slower
/// and its seeding is easy to get wrong.
class Random {
 public:
  /// Seeds the four lanes from SplitMix64(seed), the construction recommended
  /// by the xoshiro authors.
  explicit Random(uint64_t seed = 0x853c49e6748fea9bULL) { Reseed(seed); }

  /// Re-seeds the engine; the subsequent stream depends only on `seed`.
  void Reseed(uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& lane : state_) lane = sm.Next();
  }

  /// Next raw 64 bits.
  uint64_t NextUint64() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). Requires bound > 0. Uses Lemire's
  /// multiply-shift rejection method (unbiased).
  uint64_t NextBounded(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInRange(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1) with 53 bits of entropy.
  double NextDouble() { return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53; }

  /// Bernoulli draw with probability p (clamped to [0,1]).
  bool NextBool(double p) { return NextDouble() < p; }

  /// Fisher-Yates shuffle of a vector.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      const size_t j = static_cast<size_t>(NextBounded(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Samples `k` distinct indices from [0, n) (k <= n), in random order.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
};

/// Draws an index in [0, weights.size()) with probability proportional to
/// weights[i]. Requires a non-empty vector with non-negative entries and a
/// positive total.
size_t WeightedPick(const std::vector<double>& weights, Random& rng);

}  // namespace jxp

#endif  // JXP_COMMON_RANDOM_H_
