#ifndef JXP_GRAPH_SUBGRAPH_H_
#define JXP_GRAPH_SUBGRAPH_H_

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "graph/graph.h"

namespace jxp {
namespace graph {

/// A peer's local Web fragment.
///
/// A Subgraph holds a set of crawled pages (identified by their global
/// PageIds) together with the *complete out-link knowledge* of those pages: a
/// crawler that fetched page p saw every link on p, so the fragment knows all
/// successors of its local pages — both the local ones (targets inside the
/// fragment) and the external ones (targets the peer has not crawled). That
/// is exactly the knowledge the JXP world node needs: links from local pages
/// to external pages become links to the world node.
///
/// Local pages are addressed by a dense local index [0, NumLocalPages()); the
/// mapping to global PageIds is exposed both ways.
class Subgraph {
 public:
  /// Dense index of a page within this fragment.
  using LocalIndex = uint32_t;

  /// Sentinel for "not a local page".
  static constexpr LocalIndex kNotLocal = static_cast<LocalIndex>(-1);

  Subgraph() = default;

  /// Builds the fragment holding `pages` (deduplicated, any order) of the
  /// global graph, copying each page's full successor list from `global`.
  static Subgraph Induce(const Graph& global, std::vector<PageId> pages);

  /// Builds a fragment from explicit out-link knowledge: `successors[i]` is
  /// the complete successor list (global ids, any order) of `pages[i]`.
  static Subgraph FromKnowledge(std::vector<PageId> pages,
                                std::vector<std::vector<PageId>> successors);

  /// Merges two fragments (the paper's full-merge step): the page set is the
  /// union, and each page keeps its full successor knowledge. Pages known to
  /// both peers must agree on their successor lists, which holds by
  /// construction since both crawled the same global page.
  static Subgraph Merge(const Subgraph& a, const Subgraph& b);

  /// Number of local pages.
  size_t NumLocalPages() const { return pages_.size(); }

  /// Number of intra-fragment links.
  size_t NumLocalEdges() const { return local_out_targets_.size(); }

  /// Number of links from local pages to external pages.
  size_t NumExternalOutEdges() const { return succ_.size() - local_out_targets_.size(); }

  /// Global id of a local page.
  PageId GlobalId(LocalIndex i) const {
    JXP_CHECK_LT(i, pages_.size());
    return pages_[i];
  }

  /// All local pages, sorted by global id ascending.
  std::span<const PageId> Pages() const { return pages_; }

  /// Local index of a global page, or kNotLocal.
  LocalIndex LocalIndexOf(PageId global) const {
    const auto it = local_index_.find(global);
    return it == local_index_.end() ? kNotLocal : it->second;
  }

  /// True iff the fragment contains `global`.
  bool Contains(PageId global) const { return local_index_.count(global) > 0; }

  /// The complete successor list (global ids, sorted) of local page `i` —
  /// the page's true global out-links.
  std::span<const PageId> Successors(LocalIndex i) const {
    JXP_CHECK_LT(i, pages_.size());
    return {succ_.data() + succ_offsets_[i], succ_.data() + succ_offsets_[i + 1]};
  }

  /// The page's true global out-degree (local + external successors).
  size_t GlobalOutDegree(LocalIndex i) const { return Successors(i).size(); }

  /// Successors of `i` that are themselves local pages, as local indices.
  std::span<const LocalIndex> LocalOutNeighbors(LocalIndex i) const {
    JXP_CHECK_LT(i, pages_.size());
    return {local_out_targets_.data() + local_out_offsets_[i],
            local_out_targets_.data() + local_out_offsets_[i + 1]};
  }

  /// Number of successors of `i` that are external pages.
  size_t NumExternalSuccessors(LocalIndex i) const {
    return GlobalOutDegree(i) - LocalOutNeighbors(i).size();
  }

  /// The union of all successor lists, as sorted unique global ids. This is
  /// the `successors(A)` set used by the pre-meetings synopsis (Section 4.3).
  std::vector<PageId> AllSuccessors() const;

 private:
  /// Rebuilds local_index_ and the local adjacency CSR from pages_ / succ_.
  void BuildDerivedIndexes();

  std::vector<PageId> pages_;
  std::unordered_map<PageId, LocalIndex> local_index_;
  // CSR over pages_ of complete successor lists (global ids, sorted).
  std::vector<uint64_t> succ_offsets_ = {0};
  std::vector<PageId> succ_;
  // CSR over pages_ of intra-fragment adjacency (local indices).
  std::vector<uint64_t> local_out_offsets_ = {0};
  std::vector<LocalIndex> local_out_targets_;
};

}  // namespace graph
}  // namespace jxp

#endif  // JXP_GRAPH_SUBGRAPH_H_
