#include "graph/stats.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace jxp {
namespace graph {

std::map<size_t, size_t> DegreeHistogram(const Graph& g, DegreeKind kind) {
  std::map<size_t, size_t> histogram;
  for (PageId u = 0; u < g.NumNodes(); ++u) {
    const size_t d = kind == DegreeKind::kIn ? g.InDegree(u) : g.OutDegree(u);
    histogram[d]++;
  }
  return histogram;
}

std::vector<std::pair<double, double>> LogBinnedHistogram(
    const std::map<size_t, size_t>& histogram, int bins_per_decade) {
  JXP_CHECK_GT(bins_per_decade, 0);
  std::vector<std::pair<double, double>> points;
  if (histogram.empty()) return points;
  const double factor = std::pow(10.0, 1.0 / bins_per_decade);
  // Walk geometric bins [lo, lo*factor) starting at 1; degree-0 nodes are
  // not representable on a log axis and are skipped.
  std::map<int, double> bin_mass;
  for (const auto& [degree, count] : histogram) {
    if (degree == 0) continue;
    const int bin = static_cast<int>(std::floor(std::log(static_cast<double>(degree)) /
                                                std::log(factor) + 1e-12));
    bin_mass[bin] += static_cast<double>(count);
  }
  for (const auto& [bin, mass] : bin_mass) {
    const double lo = std::pow(factor, bin);
    const double hi = lo * factor;
    points.emplace_back(std::sqrt(lo * hi), mass);
  }
  return points;
}

double PowerLawExponentMle(const std::map<size_t, size_t>& histogram, size_t xmin) {
  JXP_CHECK_GE(xmin, 1u);
  double log_sum = 0;
  size_t n = 0;
  for (const auto& [degree, count] : histogram) {
    if (degree < xmin) continue;
    log_sum += count * std::log(static_cast<double>(degree) /
                                (static_cast<double>(xmin) - 0.5));
    n += count;
  }
  if (n < 2 || log_sum <= 0) return 0;
  return 1.0 + static_cast<double>(n) / log_sum;
}

size_t CountDangling(const Graph& g) {
  size_t dangling = 0;
  for (PageId u = 0; u < g.NumNodes(); ++u) {
    if (g.OutDegree(u) == 0) ++dangling;
  }
  return dangling;
}

namespace {

/// Union-find with path halving and union by size.
class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n), size_(n, 1) {
    std::iota(parent_.begin(), parent_.end(), 0u);
  }

  uint32_t Find(uint32_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  void Union(uint32_t a, uint32_t b) {
    a = Find(a);
    b = Find(b);
    if (a == b) return;
    if (size_[a] < size_[b]) std::swap(a, b);
    parent_[b] = a;
    size_[a] += size_[b];
  }

 private:
  std::vector<uint32_t> parent_;
  std::vector<uint32_t> size_;
};

}  // namespace

std::pair<std::vector<uint32_t>, size_t> WeaklyConnectedComponents(const Graph& g) {
  UnionFind uf(g.NumNodes());
  for (PageId u = 0; u < g.NumNodes(); ++u) {
    for (PageId v : g.OutNeighbors(u)) uf.Union(u, v);
  }
  std::vector<uint32_t> component(g.NumNodes());
  std::map<uint32_t, uint32_t> relabel;
  for (PageId u = 0; u < g.NumNodes(); ++u) {
    const uint32_t root = uf.Find(u);
    const auto [it, inserted] = relabel.emplace(root, static_cast<uint32_t>(relabel.size()));
    component[u] = it->second;
  }
  return {std::move(component), relabel.size()};
}

double LargestWccFraction(const Graph& g) {
  if (g.NumNodes() == 0) return 0;
  const auto [component, count] = WeaklyConnectedComponents(g);
  std::vector<size_t> sizes(count, 0);
  for (uint32_t c : component) sizes[c]++;
  return static_cast<double>(*std::max_element(sizes.begin(), sizes.end())) /
         static_cast<double>(g.NumNodes());
}

}  // namespace graph
}  // namespace jxp
