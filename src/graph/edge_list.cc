#include "graph/edge_list.h"

#include <cstdio>
#include <fstream>
#include <sstream>

namespace jxp {
namespace graph {

StatusOr<Graph> ReadEdgeList(const std::string& path, size_t min_nodes) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);
  GraphBuilder builder(min_nodes);
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const size_t first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    std::istringstream fields(line);
    long long u = -1, v = -1;
    if (!(fields >> u >> v) || u < 0 || v < 0) {
      return Status::Corruption(path + ":" + std::to_string(line_no) + ": malformed edge line");
    }
    builder.AddEdge(static_cast<PageId>(u), static_cast<PageId>(v));
  }
  if (in.bad()) return Status::IOError("read error on " + path);
  return builder.Build();
}

Status WriteEdgeList(const Graph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  for (PageId u = 0; u < g.NumNodes(); ++u) {
    for (PageId v : g.OutNeighbors(u)) out << u << ' ' << v << '\n';
  }
  out.flush();
  if (!out) return Status::IOError("write error on " + path);
  return Status::OK();
}

}  // namespace graph
}  // namespace jxp
