#include "graph/generators.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/hash.h"

namespace jxp {
namespace graph {

namespace {

/// Geometric-like draw with the given mean >= 1: returns 1 + Geometric(p)
/// where p = 1/mean, capped to keep single nodes from dominating.
size_t DrawOutDegree(double mean, Random& rng) {
  if (mean <= 1.0) return 1;
  const double p = 1.0 / mean;
  size_t k = 1;
  // Inverse-CDF sampling of the geometric part.
  const double u = rng.NextDouble();
  k += static_cast<size_t>(std::floor(std::log1p(-u) / std::log1p(-p)));
  return std::min<size_t>(k, static_cast<size_t>(mean * 16) + 8);
}

}  // namespace

Graph ErdosRenyi(size_t num_nodes, size_t num_edges, Random& rng) {
  JXP_CHECK_GE(num_nodes, 2u);
  const size_t max_edges = num_nodes * (num_nodes - 1);
  JXP_CHECK_LE(num_edges, max_edges);
  GraphBuilder builder(num_nodes);
  std::unordered_set<uint64_t> seen;
  seen.reserve(num_edges * 2);
  while (seen.size() < num_edges) {
    const PageId u = static_cast<PageId>(rng.NextBounded(num_nodes));
    const PageId v = static_cast<PageId>(rng.NextBounded(num_nodes));
    if (u == v) continue;
    const uint64_t key = (static_cast<uint64_t>(u) << 32) | v;
    if (seen.insert(key).second) builder.AddEdge(u, v);
  }
  return builder.Build();
}

Graph BarabasiAlbert(size_t num_nodes, size_t out_degree, Random& rng) {
  JXP_CHECK_GE(num_nodes, out_degree + 1);
  GraphBuilder builder(num_nodes);
  // `pool` holds one entry per (in-)edge endpoint plus one per node, so a
  // uniform draw from it is proportional to in-degree + 1.
  std::vector<PageId> pool;
  pool.reserve(num_nodes * (out_degree + 1));
  // Seed clique among the first out_degree + 1 nodes.
  const size_t seed_count = out_degree + 1;
  for (PageId u = 0; u < seed_count; ++u) {
    pool.push_back(u);
    for (PageId v = 0; v < seed_count; ++v) {
      if (u == v) continue;
      builder.AddEdge(u, v);
      pool.push_back(v);
    }
  }
  for (PageId u = static_cast<PageId>(seed_count); u < num_nodes; ++u) {
    std::unordered_set<PageId> targets;
    while (targets.size() < out_degree) {
      const PageId t = pool[rng.NextBounded(pool.size())];
      if (t != u) targets.insert(t);
    }
    for (PageId t : targets) {
      builder.AddEdge(u, t);
      pool.push_back(t);
    }
    pool.push_back(u);
  }
  return builder.Build();
}

CategorizedGraph GenerateWebGraph(const WebGraphParams& params, Random& rng) {
  JXP_CHECK_GE(params.num_categories, 1u);
  JXP_CHECK_GE(params.num_nodes, static_cast<size_t>(params.num_categories) * 4);
  JXP_CHECK_GE(params.mean_out_degree, 1.0);
  JXP_CHECK_GE(params.copy_probability, 0.0);
  JXP_CHECK_LE(params.copy_probability, 1.0);
  JXP_CHECK_GE(params.intra_category_probability, 0.0);
  JXP_CHECK_LE(params.intra_category_probability, 1.0);

  CategorizedGraph out;
  out.num_categories = params.num_categories;
  out.category.resize(params.num_nodes);
  // Balanced category assignment with randomized order: category sizes
  // differ by at most one, as in the paper's "10 peers per category" setup.
  for (size_t p = 0; p < params.num_nodes; ++p) {
    out.category[p] = static_cast<CategoryId>(p % params.num_categories);
  }
  {
    // Shuffle labels so categories are not correlated with page age.
    std::vector<CategoryId>& cats = out.category;
    rng.Shuffle(cats);
  }

  GraphBuilder builder(params.num_nodes);
  // Per-category and global pools of past link *targets*; drawing uniformly
  // from a pool implements the copy/preferential step.
  std::vector<std::vector<PageId>> category_pool(params.num_categories);
  std::vector<PageId> global_pool;
  // Per-category list of already-created nodes, for uniform (non-copy) picks.
  std::vector<std::vector<PageId>> category_nodes(params.num_categories);
  std::vector<PageId> all_nodes;

  for (PageId u = 0; u < params.num_nodes; ++u) {
    const CategoryId cat = out.category[u];
    if (!all_nodes.empty()) {
      const size_t degree = DrawOutDegree(params.mean_out_degree, rng);
      for (size_t k = 0; k < degree; ++k) {
        const bool intra = rng.NextBool(params.intra_category_probability) &&
                           !category_nodes[cat].empty();
        const std::vector<PageId>& pool = intra ? category_pool[cat] : global_pool;
        const std::vector<PageId>& nodes = intra ? category_nodes[cat] : all_nodes;
        PageId target;
        if (rng.NextBool(params.copy_probability) && !pool.empty()) {
          target = pool[rng.NextBounded(pool.size())];
        } else {
          target = nodes[rng.NextBounded(nodes.size())];
        }
        if (target == u) continue;
        builder.AddEdge(u, target);
        category_pool[out.category[target]].push_back(target);
        global_pool.push_back(target);
      }
    }
    category_nodes[cat].push_back(u);
    all_nodes.push_back(u);
  }
  out.graph = builder.Build();
  return out;
}

}  // namespace graph
}  // namespace jxp
