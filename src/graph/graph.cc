#include "graph/graph.h"

#include <algorithm>

namespace jxp {
namespace graph {

bool Graph::HasEdge(PageId u, PageId v) const {
  const auto neighbors = OutNeighbors(u);
  return std::binary_search(neighbors.begin(), neighbors.end(), v);
}

std::vector<Edge> Graph::Edges() const {
  std::vector<Edge> edges;
  edges.reserve(NumEdges());
  for (PageId u = 0; u < num_nodes_; ++u) {
    for (PageId v : OutNeighbors(u)) edges.push_back({u, v});
  }
  return edges;
}

void GraphBuilder::AddEdge(PageId u, PageId v) {
  JXP_CHECK_NE(u, kInvalidPage);
  JXP_CHECK_NE(v, kInvalidPage);
  if (options_.remove_self_loops && u == v) return;
  EnsureNodes(static_cast<size_t>(std::max(u, v)) + 1);
  edges_.push_back({u, v});
}

Graph GraphBuilder::Build() {
  std::sort(edges_.begin(), edges_.end(), [](const Edge& a, const Edge& b) {
    return a.from != b.from ? a.from < b.from : a.to < b.to;
  });
  if (options_.deduplicate) {
    edges_.erase(std::unique(edges_.begin(), edges_.end()), edges_.end());
  }

  Graph g;
  g.num_nodes_ = num_nodes_;
  g.out_offsets_.assign(num_nodes_ + 1, 0);
  g.out_targets_.reserve(edges_.size());
  for (const Edge& e : edges_) g.out_offsets_[e.from + 1]++;
  for (size_t i = 1; i <= num_nodes_; ++i) g.out_offsets_[i] += g.out_offsets_[i - 1];
  for (const Edge& e : edges_) g.out_targets_.push_back(e.to);

  // In-adjacency: counting sort by target, preserving source order (sources
  // come out sorted because edges_ is sorted by (from, to)).
  g.in_offsets_.assign(num_nodes_ + 1, 0);
  for (const Edge& e : edges_) g.in_offsets_[e.to + 1]++;
  for (size_t i = 1; i <= num_nodes_; ++i) g.in_offsets_[i] += g.in_offsets_[i - 1];
  g.in_targets_.resize(edges_.size());
  std::vector<uint64_t> cursor(g.in_offsets_.begin(), g.in_offsets_.end() - 1);
  for (const Edge& e : edges_) g.in_targets_[cursor[e.to]++] = e.from;

  edges_.clear();
  edges_.shrink_to_fit();
  return g;
}

}  // namespace graph
}  // namespace jxp
