#ifndef JXP_GRAPH_EDGE_LIST_H_
#define JXP_GRAPH_EDGE_LIST_H_

#include <string>

#include "common/statusor.h"
#include "graph/graph.h"

namespace jxp {
namespace graph {

/// Reads a whitespace-separated edge list ("u v" per line; '#' comments and
/// blank lines ignored) into a Graph. Node ids must be non-negative integers;
/// the node count is max id + 1 (or larger if `min_nodes` says so).
StatusOr<Graph> ReadEdgeList(const std::string& path, size_t min_nodes = 0);

/// Writes the graph as an edge list ("u v" per line, sorted).
Status WriteEdgeList(const Graph& g, const std::string& path);

}  // namespace graph
}  // namespace jxp

#endif  // JXP_GRAPH_EDGE_LIST_H_
