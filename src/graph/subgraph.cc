#include "graph/subgraph.h"

#include <algorithm>

namespace jxp {
namespace graph {

Subgraph Subgraph::Induce(const Graph& global, std::vector<PageId> pages) {
  std::sort(pages.begin(), pages.end());
  pages.erase(std::unique(pages.begin(), pages.end()), pages.end());

  Subgraph sg;
  sg.pages_ = std::move(pages);
  sg.succ_offsets_.assign(sg.pages_.size() + 1, 0);
  size_t total = 0;
  for (size_t i = 0; i < sg.pages_.size(); ++i) {
    JXP_CHECK_LT(sg.pages_[i], global.NumNodes());
    total += global.OutDegree(sg.pages_[i]);
    sg.succ_offsets_[i + 1] = total;
  }
  sg.succ_.reserve(total);
  for (PageId p : sg.pages_) {
    const auto neighbors = global.OutNeighbors(p);
    sg.succ_.insert(sg.succ_.end(), neighbors.begin(), neighbors.end());
  }
  sg.BuildDerivedIndexes();
  return sg;
}

Subgraph Subgraph::FromKnowledge(std::vector<PageId> pages,
                                 std::vector<std::vector<PageId>> successors) {
  JXP_CHECK_EQ(pages.size(), successors.size());
  // Sort pages, carrying their successor lists along.
  std::vector<size_t> order(pages.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&pages](size_t a, size_t b) { return pages[a] < pages[b]; });

  Subgraph sg;
  sg.succ_offsets_ = {0};
  PageId prev = kInvalidPage;
  for (size_t rank = 0; rank < order.size(); ++rank) {
    const size_t src = order[rank];
    if (pages[src] == prev) continue;  // Deduplicate pages.
    prev = pages[src];
    sg.pages_.push_back(pages[src]);
    std::vector<PageId>& succ = successors[src];
    std::sort(succ.begin(), succ.end());
    succ.erase(std::unique(succ.begin(), succ.end()), succ.end());
    sg.succ_.insert(sg.succ_.end(), succ.begin(), succ.end());
    sg.succ_offsets_.push_back(sg.succ_.size());
  }
  sg.BuildDerivedIndexes();
  return sg;
}

Subgraph Subgraph::Merge(const Subgraph& a, const Subgraph& b) {
  std::vector<PageId> pages;
  std::vector<std::vector<PageId>> successors;
  pages.reserve(a.NumLocalPages() + b.NumLocalPages());
  for (LocalIndex i = 0; i < a.NumLocalPages(); ++i) {
    pages.push_back(a.GlobalId(i));
    const auto succ = a.Successors(i);
    successors.emplace_back(succ.begin(), succ.end());
  }
  for (LocalIndex i = 0; i < b.NumLocalPages(); ++i) {
    if (a.Contains(b.GlobalId(i))) continue;  // Shared page: knowledge identical.
    pages.push_back(b.GlobalId(i));
    const auto succ = b.Successors(i);
    successors.emplace_back(succ.begin(), succ.end());
  }
  return FromKnowledge(std::move(pages), std::move(successors));
}

std::vector<PageId> Subgraph::AllSuccessors() const {
  std::vector<PageId> all(succ_.begin(), succ_.end());
  std::sort(all.begin(), all.end());
  all.erase(std::unique(all.begin(), all.end()), all.end());
  return all;
}

void Subgraph::BuildDerivedIndexes() {
  local_index_.clear();
  local_index_.reserve(pages_.size() * 2);
  for (LocalIndex i = 0; i < pages_.size(); ++i) local_index_[pages_[i]] = i;

  local_out_offsets_.assign(pages_.size() + 1, 0);
  local_out_targets_.clear();
  for (LocalIndex i = 0; i < pages_.size(); ++i) {
    for (PageId target : Successors(i)) {
      const LocalIndex t = LocalIndexOf(target);
      if (t != kNotLocal) local_out_targets_.push_back(t);
    }
    local_out_offsets_[i + 1] = local_out_targets_.size();
  }
}

}  // namespace graph
}  // namespace jxp
