#ifndef JXP_GRAPH_STATS_H_
#define JXP_GRAPH_STATS_H_

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "graph/graph.h"

namespace jxp {
namespace graph {

/// Which degree of a node to analyze.
enum class DegreeKind { kIn, kOut };

/// Histogram: degree value -> number of nodes with that degree.
std::map<size_t, size_t> DegreeHistogram(const Graph& g, DegreeKind kind);

/// Log-binned version of a degree histogram for log-log plots (Figure 3):
/// returns (bin-center degree, node count in bin) with `bins_per_decade`
/// geometric bins. Bins with zero mass are omitted.
std::vector<std::pair<double, double>> LogBinnedHistogram(
    const std::map<size_t, size_t>& histogram, int bins_per_decade = 5);

/// Maximum-likelihood estimate of the power-law exponent alpha for the tail
/// degrees >= xmin:  alpha = 1 + n / sum(ln(d_i / (xmin - 0.5))).
/// Returns 0 if fewer than 2 tail samples exist.
double PowerLawExponentMle(const std::map<size_t, size_t>& histogram, size_t xmin);

/// Number of dangling nodes (out-degree zero).
size_t CountDangling(const Graph& g);

/// Weakly-connected-component labeling: returns (component id per node,
/// number of components).
std::pair<std::vector<uint32_t>, size_t> WeaklyConnectedComponents(const Graph& g);

/// Fraction of nodes in the largest weakly connected component.
double LargestWccFraction(const Graph& g);

}  // namespace graph
}  // namespace jxp

#endif  // JXP_GRAPH_STATS_H_
