#ifndef JXP_GRAPH_GRAPH_H_
#define JXP_GRAPH_GRAPH_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/check.h"

namespace jxp {
namespace graph {

/// Global identifier of a Web page (a node of the global link graph).
using PageId = uint32_t;

/// Sentinel for "no page".
inline constexpr PageId kInvalidPage = static_cast<PageId>(-1);

/// A directed edge (link) from `from` to `to`.
struct Edge {
  PageId from = kInvalidPage;
  PageId to = kInvalidPage;

  friend bool operator==(const Edge& a, const Edge& b) = default;
};

/// Immutable directed graph in compressed-sparse-row form, with both
/// out-adjacency and in-adjacency indexes. Node ids are dense [0, NumNodes).
///
/// Construction goes through GraphBuilder, which deduplicates parallel edges
/// and (optionally) drops self-loops, the standard preprocessing for
/// PageRank-style link analysis.
class Graph {
 public:
  /// Constructs the empty graph.
  Graph() = default;

  Graph(const Graph&) = default;
  Graph& operator=(const Graph&) = default;
  Graph(Graph&&) noexcept = default;
  Graph& operator=(Graph&&) noexcept = default;

  /// Number of nodes. Node ids are 0 .. NumNodes()-1.
  size_t NumNodes() const { return num_nodes_; }

  /// Number of (deduplicated) directed edges.
  size_t NumEdges() const { return out_targets_.size(); }

  /// Out-degree of `u`.
  size_t OutDegree(PageId u) const {
    JXP_CHECK_LT(u, num_nodes_);
    return out_offsets_[u + 1] - out_offsets_[u];
  }

  /// In-degree of `u`.
  size_t InDegree(PageId u) const {
    JXP_CHECK_LT(u, num_nodes_);
    return in_offsets_[u + 1] - in_offsets_[u];
  }

  /// Successors of `u` (targets of its out-links), sorted ascending.
  std::span<const PageId> OutNeighbors(PageId u) const {
    JXP_CHECK_LT(u, num_nodes_);
    return {out_targets_.data() + out_offsets_[u], out_targets_.data() + out_offsets_[u + 1]};
  }

  /// Predecessors of `u` (sources of its in-links), sorted ascending.
  std::span<const PageId> InNeighbors(PageId u) const {
    JXP_CHECK_LT(u, num_nodes_);
    return {in_targets_.data() + in_offsets_[u], in_targets_.data() + in_offsets_[u + 1]};
  }

  /// True iff the edge u -> v exists (binary search over OutNeighbors).
  bool HasEdge(PageId u, PageId v) const;

  /// Materializes the edge list in (from, to) lexicographic order.
  std::vector<Edge> Edges() const;

 private:
  friend class GraphBuilder;

  size_t num_nodes_ = 0;
  std::vector<uint64_t> out_offsets_ = {0};
  std::vector<PageId> out_targets_;
  std::vector<uint64_t> in_offsets_ = {0};
  std::vector<PageId> in_targets_;
};

/// Incremental builder for Graph.
class GraphBuilder {
 public:
  struct Options {
    /// Drop u -> u edges. PageRank link analysis conventionally ignores
    /// self-endorsement.
    bool remove_self_loops = true;
    /// Collapse parallel edges into one.
    bool deduplicate = true;
  };

  /// Creates a builder for a graph with at least `num_nodes` nodes; AddEdge
  /// grows the node count as needed.
  explicit GraphBuilder(size_t num_nodes = 0) : num_nodes_(num_nodes), options_() {}

  GraphBuilder(size_t num_nodes, Options options) : num_nodes_(num_nodes), options_(options) {}

  /// Adds the directed edge u -> v, growing the node count to cover both.
  void AddEdge(PageId u, PageId v);

  /// Ensures the graph has at least `n` nodes.
  void EnsureNodes(size_t n) {
    if (n > num_nodes_) num_nodes_ = n;
  }

  /// Number of nodes seen so far.
  size_t NumNodes() const { return num_nodes_; }

  /// Finalizes into an immutable Graph. The builder is left empty.
  Graph Build();

 private:
  size_t num_nodes_;
  Options options_;
  std::vector<Edge> edges_;
};

}  // namespace graph
}  // namespace jxp

#endif  // JXP_GRAPH_GRAPH_H_
