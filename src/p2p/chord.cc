#include "p2p/chord.h"

#include "common/hash.h"

namespace jxp {
namespace p2p {

ChordRing::ChordRing(uint64_t seed) : seed_(seed) {}

uint64_t ChordRing::PositionOf(PeerId peer) const {
  return Mix64(static_cast<uint64_t>(peer) ^ seed_);
}

Status ChordRing::Join(PeerId peer) {
  const uint64_t pos = PositionOf(peer);
  if (position_of_.count(peer)) {
    return Status::AlreadyExists("peer " + std::to_string(peer) + " already on ring");
  }
  JXP_CHECK(ring_.emplace(pos, peer).second) << "ring position collision";
  position_of_[peer] = pos;
  // The newcomer builds its own fingers; existing peers keep possibly stale
  // tables until the next Stabilize(), as in real Chord.
  std::vector<PeerId>& table = fingers_[peer];
  table.assign(kNumFingers, peer);
  for (size_t i = 0; i < kNumFingers; ++i) {
    const uint64_t target = pos + (i == 63 ? (uint64_t{1} << 63) : (uint64_t{1} << i));
    table[i] = SuccessorIt(target)->second;
  }
  return Status::OK();
}

Status ChordRing::Leave(PeerId peer) {
  const auto it = position_of_.find(peer);
  if (it == position_of_.end()) {
    return Status::NotFound("peer " + std::to_string(peer) + " not on ring");
  }
  ring_.erase(it->second);
  position_of_.erase(it);
  fingers_.erase(peer);
  return Status::OK();
}

std::map<uint64_t, PeerId>::const_iterator ChordRing::SuccessorIt(uint64_t pos) const {
  JXP_CHECK(!ring_.empty()) << "empty ring";
  auto it = ring_.lower_bound(pos);
  if (it == ring_.end()) it = ring_.begin();  // Wrap around.
  return it;
}

PeerId ChordRing::OwnerOf(uint64_t key) const { return SuccessorIt(key)->second; }

bool ChordRing::InInterval(uint64_t x, uint64_t from, uint64_t to) {
  // Half-open ring interval (from, to]; degenerate (x, x] is the full ring.
  if (from < to) return x > from && x <= to;
  return x > from || x <= to;
}

ChordRing::LookupResult ChordRing::Lookup(uint64_t key, PeerId start) const {
  JXP_CHECK(Contains(start)) << "lookup from a peer not on the ring";
  LookupResult result;
  PeerId current = start;
  // A routing-loop guard far above the O(log n) expectation.
  const size_t max_hops = 2 * kNumFingers + ring_.size();
  while (true) {
    const uint64_t current_pos = position_of_.at(current);
    // Does `current`'s immediate successor own the key?
    auto successor_it = SuccessorIt(current_pos + 1);
    if (InInterval(key, current_pos, successor_it->first)) {
      result.owner = successor_it->second;
      if (result.owner != current) ++result.hops;
      return result;
    }
    if (current_pos == key) {  // Exact hit: current owns it.
      result.owner = current;
      return result;
    }
    // Closest preceding finger: the farthest finger that does not overshoot
    // the key.
    PeerId next = successor_it->second;  // Fallback: plain successor walk.
    const auto finger_it = fingers_.find(current);
    if (finger_it != fingers_.end()) {
      for (size_t i = kNumFingers; i-- > 0;) {
        const PeerId candidate = finger_it->second[i];
        const auto cand_pos_it = position_of_.find(candidate);
        if (cand_pos_it == position_of_.end()) continue;  // Departed peer.
        if (InInterval(cand_pos_it->second, current_pos, key - 1)) {
          next = candidate;
          break;
        }
      }
    }
    if (next == current) {
      result.owner = current;
      return result;
    }
    current = next;
    ++result.hops;
    JXP_CHECK_LE(result.hops, max_hops) << "routing loop";
  }
}

void ChordRing::Stabilize() {
  for (auto& [peer, table] : fingers_) {
    const uint64_t pos = position_of_.at(peer);
    for (size_t i = 0; i < kNumFingers; ++i) {
      const uint64_t target = pos + (i == 63 ? (uint64_t{1} << 63) : (uint64_t{1} << i));
      table[i] = SuccessorIt(target)->second;
    }
  }
}

}  // namespace p2p
}  // namespace jxp
