#include "p2p/churn.h"

namespace jxp {
namespace p2p {

ChurnEvent ChurnModel::Step(Network& network) {
  if (network.NumAlive() > options_.min_alive && rng_.NextBool(options_.leave_probability)) {
    const PeerId victim = network.RandomAlivePeer(rng_, kInvalidPeer);
    network.Leave(victim);
    return {ChurnEventType::kLeave, victim};
  }
  const size_t departed = network.NumPeers() - network.NumAlive();
  if (departed > 0 && rng_.NextBool(options_.join_probability)) {
    // Pick a random departed peer.
    size_t nth = static_cast<size_t>(rng_.NextBounded(departed));
    for (PeerId p = 0; p < network.NumPeers(); ++p) {
      if (!network.IsAlive(p)) {
        if (nth == 0) {
          network.Rejoin(p);
          return {ChurnEventType::kJoin, p};
        }
        --nth;
      }
    }
  }
  return {ChurnEventType::kNone, kInvalidPeer};
}

}  // namespace p2p
}  // namespace jxp
