#ifndef JXP_P2P_CHORD_H_
#define JXP_P2P_CHORD_H_

#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

#include "common/statusor.h"
#include "p2p/network.h"

namespace jxp {
namespace p2p {

/// A simulated Chord ring (Stoica et al., SIGCOMM 2001) — the structured
/// P2P lookup substrate referenced by the paper's P2P-infrastructure
/// citations and used by Minerva-class systems to maintain a distributed
/// directory of per-term peer statistics.
///
/// Peers hash onto a 64-bit identifier ring; a key is owned by its
/// *successor* (the first peer clockwise from the key). Each peer keeps a
/// finger table (peer closest to position id + 2^i for each i), giving
/// O(log n) routing hops. Joins and leaves keep ownership correct
/// immediately; finger tables are refreshed by Stabilize(), and lookups
/// remain correct (if slower) with stale fingers because routing always
/// falls back to ring successors.
class ChordRing {
 public:
  /// Result of a routed lookup.
  struct LookupResult {
    /// The peer owning the key.
    PeerId owner = kInvalidPeer;
    /// Routing hops taken (0 when the start node already owns the key).
    size_t hops = 0;
  };

  /// `seed` salts the position hash (the same peer set hashes to the same
  /// ring for the same seed).
  explicit ChordRing(uint64_t seed = 0xc4c1d0);

  /// Adds a peer to the ring. Returns AlreadyExists if present.
  Status Join(PeerId peer);

  /// Removes a peer. Returns NotFound if absent.
  Status Leave(PeerId peer);

  /// True iff the peer is on the ring.
  bool Contains(PeerId peer) const { return position_of_.count(peer) > 0; }

  /// Number of peers on the ring.
  size_t NumPeers() const { return ring_.size(); }

  /// The peer owning `key` (ground truth, no routing). Requires a
  /// non-empty ring.
  PeerId OwnerOf(uint64_t key) const;

  /// Routes from `start`'s finger table toward the owner of `key`,
  /// counting hops. `start` must be on the ring.
  LookupResult Lookup(uint64_t key, PeerId start) const;

  /// Rebuilds all finger tables (Chord's periodic stabilization, run to
  /// completion). Called automatically by the constructor path only; tests
  /// exercise lookups both with fresh and stale fingers.
  void Stabilize();

  /// Ring position of a peer (its hashed id).
  uint64_t PositionOf(PeerId peer) const;

  /// Number of finger-table entries per peer (fixed: 64).
  static constexpr size_t kNumFingers = 64;

 private:
  /// First ring position >= pos (wrapping), as an iterator into ring_.
  std::map<uint64_t, PeerId>::const_iterator SuccessorIt(uint64_t pos) const;

  /// True iff `x` lies in the half-open ring interval (from, to].
  static bool InInterval(uint64_t x, uint64_t from, uint64_t to);

  uint64_t seed_;
  /// position -> peer, sorted around the ring.
  std::map<uint64_t, PeerId> ring_;
  std::unordered_map<PeerId, uint64_t> position_of_;
  /// Finger tables: peer -> kNumFingers entries (peer ids); possibly stale
  /// after joins/leaves until Stabilize().
  std::unordered_map<PeerId, std::vector<PeerId>> fingers_;
};

}  // namespace p2p
}  // namespace jxp

#endif  // JXP_P2P_CHORD_H_
