#ifndef JXP_P2P_FAULTS_H_
#define JXP_P2P_FAULTS_H_

#include <cstdint>

#include "common/random.h"
#include "p2p/network.h"

namespace jxp {
namespace p2p {

/// Deterministic, seed-driven fault model for the meeting protocol (the
/// Section 7 "dynamics at all levels" open problem): every meeting attempt
/// draws a fault schedule from a FaultPlan, and the whole fault sequence is
/// a pure function of the plan's seed — independent of thread count, because
/// all draws happen on the scheduling thread (like partner selection).
///
/// The injectable faults, and why each one preserves the paper's safety
/// theorem (scores never overestimate the true PageRank; DESIGN.md §6e):
///  - message drop: one direction's message is lost; the receiver applies
///    nothing (its state is simply older — every reachable state is safe);
///  - score-list truncation: the transfer aborts after a fraction of the
///    bytes; the receiver applies the prefix of the partner's page table,
///    which is an honest message from a peer with a smaller fragment;
///  - mid-meeting crash: one side crashes after sending but before applying
///    — the classic one-sided application; the survivor applies normally;
///  - stale-state resume: a crashed peer restarts from an earlier state_io
///    checkpoint — it re-enters an earlier state of its own safe trajectory
///    (world-score monotonicity restarts from there, safety is unaffected);
///  - transient partner-unavailable: the initiator retries with capped
///    exponential backoff; exhausted retries abandon the attempt entirely.
struct FaultPlan {
  /// Per-direction probability that a meeting message is lost in transit.
  double message_drop_probability = 0;
  /// Per-direction probability that a message transfer aborts part-way.
  double truncation_probability = 0;
  /// Fraction of the message that still arrives when truncated (the page
  /// table is cut to this fraction; the world node, at the tail of the
  /// message, is lost entirely).
  double truncation_keep_fraction = 0.5;
  /// Per-direction probability that one bit of the message flips in
  /// transit. Only meaningful under core::MeetingWireMode::kMeasured, where
  /// the frame checksum detects the damage and the receiver salvages the
  /// intact frame prefix; the analytic (kEstimated) mode has no bytes to
  /// flip and ignores the decision.
  double corruption_probability = 0;
  /// Per-side probability of a mid-meeting crash: the side sends its
  /// message but crashes before applying the partner's (one-sided
  /// application; the crashed side's state does not advance).
  double crash_probability = 0;
  /// Per-side probability that the peer enters the meeting having just
  /// restarted from its last state_io checkpoint (requires the simulation
  /// to be configured with a checkpoint directory).
  double stale_resume_probability = 0;
  /// Per-attempt probability that the selected partner is unreachable.
  double unavailable_probability = 0;
  /// Retries after the first failed contact attempt before the meeting is
  /// abandoned (so at most 1 + max_retries attempts).
  int max_retries = 3;
  /// Simulated backoff before retry k (0-based): base * 2^k, capped.
  double backoff_base_ms = 10;
  double backoff_cap_ms = 1000;
  /// Wire cost of one failed contact attempt (handshake probe), charged to
  /// the initiator as wasted traffic.
  double probe_bytes = 64;
  /// Seed of the fault stream; independent of the simulation seed so fault
  /// schedules can be varied while the meeting schedule stays fixed.
  uint64_t seed = 0xfa0175;

  /// True iff any fault can actually occur. A disabled plan injects nothing
  /// and draws no randomness, so the fault-off path is bit-identical to a
  /// build without the fault layer.
  bool Enabled() const {
    return message_drop_probability > 0 || truncation_probability > 0 ||
           corruption_probability > 0 || crash_probability > 0 ||
           stale_resume_probability > 0 || unavailable_probability > 0;
  }
};

/// The fault schedule of one meeting attempt. Default-constructed = clean
/// meeting (every fault off); JxpPeer::Meet with a clean decision performs
/// exactly the unfaulted protocol.
struct MeetingFaultDecision {
  /// Failed contact attempts before the meeting went ahead (or, when
  /// `abandoned`, before the initiator gave up).
  int failed_attempts = 0;
  /// All 1 + max_retries contact attempts failed: no meeting happens.
  bool abandoned = false;
  /// Message loss per direction ("to_X" = the message X was to receive).
  bool drop_to_initiator = false;
  bool drop_to_partner = false;
  /// Delivered fraction per direction; 1.0 = complete transfer.
  double keep_to_initiator = 1.0;
  double keep_to_partner = 1.0;
  /// Single-bit corruption per direction (measured wire mode): the flip
  /// lands in the byte at `corrupt_offset_*` (a fraction of the delivered
  /// message) at bit index `corrupt_bit_*`. All values are drawn on the
  /// scheduling thread, like every other fault, so the schedule stays a
  /// pure function of the plan seed.
  bool corrupt_to_initiator = false;
  bool corrupt_to_partner = false;
  double corrupt_offset_to_initiator = 0;
  double corrupt_offset_to_partner = 0;
  int corrupt_bit_to_initiator = 0;
  int corrupt_bit_to_partner = 0;
  /// Mid-meeting crash per side (the crashed side applies nothing).
  bool crash_initiator = false;
  bool crash_partner = false;
  /// Stale-state resume per side, applied by the simulation *before* the
  /// meeting runs.
  bool stale_resume_initiator = false;
  bool stale_resume_partner = false;

  bool Clean() const {
    return failed_attempts == 0 && !abandoned && !drop_to_initiator &&
           !drop_to_partner && keep_to_initiator >= 1.0 && keep_to_partner >= 1.0 &&
           !corrupt_to_initiator && !corrupt_to_partner && !crash_initiator &&
           !crash_partner && !stale_resume_initiator && !stale_resume_partner;
  }
};

/// Aggregate fault accounting (mirrored into the jxp.faults.* metrics).
/// Every field is a pure function of the plan seed and the meeting
/// sequence, so it is bit-identical across runs and thread counts.
struct FaultStats {
  uint64_t meetings_planned = 0;
  uint64_t faulty_meetings = 0;
  uint64_t message_drops = 0;
  uint64_t truncations = 0;
  uint64_t corruptions = 0;
  uint64_t crashes = 0;
  uint64_t stale_resumes = 0;
  uint64_t unavailable_retries = 0;
  uint64_t meetings_abandoned = 0;
  /// Total simulated backoff the retry loop spent waiting.
  double backoff_sim_ms = 0;
  /// Bytes moved over the wire to no effect: dropped messages, truncated
  /// tails, messages applied by nobody because the receiver crashed, and
  /// probe messages of failed contact attempts.
  double wasted_bytes = 0;
};

/// Draws per-meeting fault schedules from a FaultPlan and keeps the
/// accounting. Not thread-safe: call NextMeeting / RecordWasted from the
/// scheduling thread only (the simulation draws each round's schedule
/// sequentially, exactly like selector and RNG state).
class FaultInjector {
 public:
  explicit FaultInjector(const FaultPlan& plan);

  const FaultPlan& plan() const { return plan_; }
  bool enabled() const { return enabled_; }

  /// Draws the fault schedule of the next meeting attempt between
  /// `initiator` and `partner`, updating the injector's counters and
  /// emitting a "fault" trace event when anything was injected.
  MeetingFaultDecision NextMeeting(PeerId initiator, PeerId partner);

  /// Folds wasted wire bytes (from a meeting outcome or probe overhead)
  /// into the stats and the jxp.faults.wasted_bytes histogram.
  void RecordWasted(double bytes);

  const FaultStats& stats() const { return stats_; }

 private:
  FaultPlan plan_;
  bool enabled_;
  Random rng_;
  FaultStats stats_;
};

}  // namespace p2p
}  // namespace jxp

#endif  // JXP_P2P_FAULTS_H_
