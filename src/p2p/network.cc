#include "p2p/network.h"

#include <algorithm>

namespace jxp {
namespace p2p {

const std::vector<double>& WireByteBuckets() {
  static const std::vector<double> buckets = {256,     1024,    4096,    16384,
                                              65536,   262144,  1048576, 4194304,
                                              16777216, 67108864};
  return buckets;
}

void PeerTrafficSummary::MergeFrom(const PeerTrafficSummary& other) {
  total_bytes += other.total_bytes;
  max_bytes = std::max(max_bytes, other.max_bytes);
  num_meetings += other.num_meetings;
  wasted_bytes += other.wasted_bytes;
  bytes_per_meeting.MergeFrom(other.bytes_per_meeting);
  mean_bytes = num_meetings > 0 ? total_bytes / static_cast<double>(num_meetings) : 0;
}

PeerTrafficSummary PeerTraffic::Summary() const {
  PeerTrafficSummary summary;
  for (double bytes : bytes_per_meeting) {
    summary.max_bytes = std::max(summary.max_bytes, bytes);
    summary.bytes_per_meeting.Observe(bytes);
  }
  summary.total_bytes = total_bytes;
  summary.wasted_bytes = wasted_bytes;
  summary.num_meetings = bytes_per_meeting.size();
  summary.mean_bytes = summary.num_meetings > 0
                           ? total_bytes / static_cast<double>(summary.num_meetings)
                           : 0;
  return summary;
}

PeerId Network::AddPeer() {
  alive_.push_back(true);
  traffic_.emplace_back();
  ++num_alive_;
  return static_cast<PeerId>(alive_.size() - 1);
}

void Network::Leave(PeerId peer) {
  JXP_CHECK_LT(peer, alive_.size());
  JXP_CHECK(alive_[peer]) << "peer " << peer << " already departed";
  alive_[peer] = false;
  --num_alive_;
}

void Network::Rejoin(PeerId peer) {
  JXP_CHECK_LT(peer, alive_.size());
  JXP_CHECK(!alive_[peer]) << "peer " << peer << " already alive";
  alive_[peer] = true;
  ++num_alive_;
}

std::vector<PeerId> Network::AlivePeers() const {
  std::vector<PeerId> peers;
  peers.reserve(num_alive_);
  for (PeerId p = 0; p < alive_.size(); ++p) {
    if (alive_[p]) peers.push_back(p);
  }
  return peers;
}

PeerId Network::RandomAlivePeer(Random& rng, PeerId exclude) const {
  size_t eligible = num_alive_;
  if (exclude != kInvalidPeer && exclude < alive_.size() && alive_[exclude]) --eligible;
  JXP_CHECK_GT(eligible, 0u) << "no eligible peer to pick";
  // Rejection sampling; the alive fraction is high in all our simulations.
  while (true) {
    const PeerId p = static_cast<PeerId>(rng.NextBounded(alive_.size()));
    if (alive_[p] && p != exclude) return p;
  }
}

double Network::TotalTrafficBytes() const {
  double total = 0;
  for (const PeerTraffic& t : traffic_) total += t.total_bytes;
  return total;
}

double Network::TotalWastedBytes() const {
  double total = 0;
  for (const PeerTraffic& t : traffic_) total += t.wasted_bytes;
  return total;
}

PeerTrafficSummary Network::AggregateTraffic() const {
  PeerTrafficSummary aggregate;
  for (const PeerTraffic& t : traffic_) aggregate.MergeFrom(t.Summary());
  return aggregate;
}

}  // namespace p2p
}  // namespace jxp
