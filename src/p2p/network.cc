#include "p2p/network.h"

namespace jxp {
namespace p2p {

PeerId Network::AddPeer() {
  alive_.push_back(true);
  traffic_.emplace_back();
  ++num_alive_;
  return static_cast<PeerId>(alive_.size() - 1);
}

void Network::Leave(PeerId peer) {
  JXP_CHECK_LT(peer, alive_.size());
  JXP_CHECK(alive_[peer]) << "peer " << peer << " already departed";
  alive_[peer] = false;
  --num_alive_;
}

void Network::Rejoin(PeerId peer) {
  JXP_CHECK_LT(peer, alive_.size());
  JXP_CHECK(!alive_[peer]) << "peer " << peer << " already alive";
  alive_[peer] = true;
  ++num_alive_;
}

std::vector<PeerId> Network::AlivePeers() const {
  std::vector<PeerId> peers;
  peers.reserve(num_alive_);
  for (PeerId p = 0; p < alive_.size(); ++p) {
    if (alive_[p]) peers.push_back(p);
  }
  return peers;
}

PeerId Network::RandomAlivePeer(Random& rng, PeerId exclude) const {
  size_t eligible = num_alive_;
  if (exclude != kInvalidPeer && exclude < alive_.size() && alive_[exclude]) --eligible;
  JXP_CHECK_GT(eligible, 0u) << "no eligible peer to pick";
  // Rejection sampling; the alive fraction is high in all our simulations.
  while (true) {
    const PeerId p = static_cast<PeerId>(rng.NextBounded(alive_.size()));
    if (alive_[p] && p != exclude) return p;
  }
}

double Network::TotalTrafficBytes() const {
  double total = 0;
  for (const PeerTraffic& t : traffic_) total += t.total_bytes;
  return total;
}

}  // namespace p2p
}  // namespace jxp
