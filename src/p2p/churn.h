#ifndef JXP_P2P_CHURN_H_
#define JXP_P2P_CHURN_H_

#include "common/random.h"
#include "p2p/network.h"

namespace jxp {
namespace p2p {

/// What happened in one churn step.
enum class ChurnEventType {
  kNone,
  kLeave,
  kJoin,
};

struct ChurnEvent {
  ChurnEventType type = ChurnEventType::kNone;
  PeerId peer = kInvalidPeer;
};

/// A simple churn model (paper Section 7 future work, implemented here):
/// before each meeting round, with probability `leave_probability` a random
/// alive peer departs, and with probability `join_probability` a random
/// departed peer re-joins. A floor on the alive count prevents the overlay
/// from dying out.
class ChurnModel {
 public:
  struct Options {
    double leave_probability = 0.0;
    double join_probability = 0.0;
    /// Never drop below this many alive peers.
    size_t min_alive = 2;
  };

  ChurnModel(Options options, uint64_t seed) : options_(options), rng_(seed) {}

  /// Samples and *applies* one churn step against the network, returning
  /// what happened. At most one event occurs per step (leave is tried
  /// first).
  ChurnEvent Step(Network& network);

 private:
  Options options_;
  Random rng_;
};

}  // namespace p2p
}  // namespace jxp

#endif  // JXP_P2P_CHURN_H_
