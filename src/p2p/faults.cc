#include "p2p/faults.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace jxp {
namespace p2p {

namespace {

/// Fault-path observables (DESIGN.md §6e). All counters are pure functions
/// of the plan seed and the meeting sequence; wasted_bytes reuses the wire
/// bucket layout so it is directly comparable to jxp.meeting.wire_bytes.
struct FaultMetrics {
  obs::Counter message_drops =
      obs::MetricsRegistry::Global().GetCounter("jxp.faults.message_drops");
  obs::Counter truncations =
      obs::MetricsRegistry::Global().GetCounter("jxp.faults.truncations");
  obs::Counter corruptions =
      obs::MetricsRegistry::Global().GetCounter("jxp.faults.corruptions");
  obs::Counter crashes = obs::MetricsRegistry::Global().GetCounter("jxp.faults.crashes");
  obs::Counter stale_resumes =
      obs::MetricsRegistry::Global().GetCounter("jxp.faults.stale_resumes");
  obs::Counter retries =
      obs::MetricsRegistry::Global().GetCounter("jxp.faults.unavailable_retries");
  obs::Counter abandoned =
      obs::MetricsRegistry::Global().GetCounter("jxp.faults.meetings_abandoned");
  obs::Counter faulty_meetings =
      obs::MetricsRegistry::Global().GetCounter("jxp.faults.faulty_meetings");
  obs::Histogram wasted_bytes = obs::MetricsRegistry::Global().GetHistogram(
      "jxp.faults.wasted_bytes", WireByteBuckets());
  /// Simulated (deterministic) backoff, not wall time — hence no "_ms"
  /// timing suffix; values are in simulated milliseconds.
  obs::Histogram backoff_sim = obs::MetricsRegistry::Global().GetHistogram(
      "jxp.faults.backoff_sim", {10, 20, 50, 100, 200, 500, 1000, 2000, 5000});
};

FaultMetrics& GetFaultMetrics() {
  static FaultMetrics metrics;
  return metrics;
}

}  // namespace

FaultInjector::FaultInjector(const FaultPlan& plan)
    : plan_(plan), enabled_(plan.Enabled()), rng_(plan.seed) {
  JXP_CHECK_GE(plan_.max_retries, 0);
  JXP_CHECK_GT(plan_.truncation_keep_fraction, 0.0);
  JXP_CHECK_LE(plan_.truncation_keep_fraction, 1.0);
}

MeetingFaultDecision FaultInjector::NextMeeting(PeerId initiator, PeerId partner) {
  MeetingFaultDecision decision;
  ++stats_.meetings_planned;
  if (!enabled_) return decision;

  // Contact phase: retry with capped exponential backoff until the partner
  // answers or the retry budget is exhausted.
  if (plan_.unavailable_probability > 0) {
    double backoff = plan_.backoff_base_ms;
    for (int attempt = 0; attempt <= plan_.max_retries; ++attempt) {
      if (!rng_.NextBool(plan_.unavailable_probability)) break;
      ++decision.failed_attempts;
      if (attempt == plan_.max_retries) {
        decision.abandoned = true;
        break;
      }
      stats_.backoff_sim_ms += backoff;
      if (obs::Enabled()) GetFaultMetrics().backoff_sim.Observe(backoff);
      backoff = std::min(backoff * 2, plan_.backoff_cap_ms);
    }
  }
  stats_.unavailable_retries += static_cast<uint64_t>(decision.failed_attempts);
  if (decision.abandoned) {
    ++stats_.meetings_abandoned;
  } else {
    // Transport and crash phase (only meaningful when the meeting happens).
    if (plan_.message_drop_probability > 0) {
      decision.drop_to_partner = rng_.NextBool(plan_.message_drop_probability);
      decision.drop_to_initiator = rng_.NextBool(plan_.message_drop_probability);
    }
    if (plan_.truncation_probability > 0) {
      if (rng_.NextBool(plan_.truncation_probability)) {
        decision.keep_to_partner = plan_.truncation_keep_fraction;
      }
      if (rng_.NextBool(plan_.truncation_probability)) {
        decision.keep_to_initiator = plan_.truncation_keep_fraction;
      }
    }
    if (plan_.corruption_probability > 0) {
      if (rng_.NextBool(plan_.corruption_probability)) {
        decision.corrupt_to_partner = true;
        decision.corrupt_offset_to_partner = rng_.NextDouble();
        decision.corrupt_bit_to_partner = static_cast<int>(rng_.NextInRange(0, 7));
      }
      if (rng_.NextBool(plan_.corruption_probability)) {
        decision.corrupt_to_initiator = true;
        decision.corrupt_offset_to_initiator = rng_.NextDouble();
        decision.corrupt_bit_to_initiator = static_cast<int>(rng_.NextInRange(0, 7));
      }
    }
    if (plan_.crash_probability > 0) {
      decision.crash_initiator = rng_.NextBool(plan_.crash_probability);
      decision.crash_partner = rng_.NextBool(plan_.crash_probability);
    }
    if (plan_.stale_resume_probability > 0) {
      decision.stale_resume_initiator = rng_.NextBool(plan_.stale_resume_probability);
      decision.stale_resume_partner = rng_.NextBool(plan_.stale_resume_probability);
    }
  }

  const uint64_t drops = static_cast<uint64_t>(decision.drop_to_initiator) +
                         static_cast<uint64_t>(decision.drop_to_partner);
  const uint64_t truncations = static_cast<uint64_t>(decision.keep_to_initiator < 1.0) +
                               static_cast<uint64_t>(decision.keep_to_partner < 1.0);
  const uint64_t corruptions = static_cast<uint64_t>(decision.corrupt_to_initiator) +
                               static_cast<uint64_t>(decision.corrupt_to_partner);
  const uint64_t crashes = static_cast<uint64_t>(decision.crash_initiator) +
                           static_cast<uint64_t>(decision.crash_partner);
  const uint64_t resumes = static_cast<uint64_t>(decision.stale_resume_initiator) +
                           static_cast<uint64_t>(decision.stale_resume_partner);
  stats_.message_drops += drops;
  stats_.truncations += truncations;
  stats_.corruptions += corruptions;
  stats_.crashes += crashes;
  stats_.stale_resumes += resumes;
  if (decision.Clean()) return decision;

  ++stats_.faulty_meetings;
  if (obs::Enabled()) {
    FaultMetrics& metrics = GetFaultMetrics();
    metrics.message_drops.Increment(drops);
    metrics.truncations.Increment(truncations);
    metrics.corruptions.Increment(corruptions);
    metrics.crashes.Increment(crashes);
    metrics.stale_resumes.Increment(resumes);
    metrics.retries.Increment(static_cast<uint64_t>(decision.failed_attempts));
    if (decision.abandoned) metrics.abandoned.Increment();
    metrics.faulty_meetings.Increment();
  }
  obs::EmitEvent("fault", [&](obs::JsonWriter& writer) {
    writer.Field("initiator", initiator)
        .Field("partner", partner)
        .Field("failed_attempts", decision.failed_attempts)
        .Field("abandoned", decision.abandoned)
        .Field("drops", drops)
        .Field("truncations", truncations)
        .Field("corruptions", corruptions)
        .Field("crashes", crashes)
        .Field("stale_resumes", resumes);
  });
  return decision;
}

void FaultInjector::RecordWasted(double bytes) {
  if (bytes <= 0) return;
  stats_.wasted_bytes += bytes;
  if (obs::Enabled()) GetFaultMetrics().wasted_bytes.Observe(bytes);
}

}  // namespace p2p
}  // namespace jxp
