#ifndef JXP_P2P_NETWORK_H_
#define JXP_P2P_NETWORK_H_

#include <cstdint>
#include <vector>

#include "common/check.h"
#include "common/random.h"
#include "obs/metrics.h"

namespace jxp {
namespace p2p {

/// Identifier of a peer in the network.
using PeerId = uint32_t;

/// Sentinel for "no peer".
inline constexpr PeerId kInvalidPeer = static_cast<PeerId>(-1);

/// Shared bucket boundaries for message-size histograms: powers of four
/// from 256 B to 64 MiB. Used both by PeerTraffic::Summary and by the
/// jxp.meeting.wire_bytes metric so the two views are comparable.
const std::vector<double>& WireByteBuckets();

/// Aggregate view of a traffic series: totals plus a fixed-bucket
/// distribution of bytes-per-meeting (buckets: WireByteBuckets()).
struct PeerTrafficSummary {
  double total_bytes = 0;
  double mean_bytes = 0;
  double max_bytes = 0;
  size_t num_meetings = 0;
  /// Bytes moved to no effect under fault injection (dropped messages,
  /// truncated tails, unapplied deliveries, failed-contact probes); 0 in a
  /// clean run. Not part of total_bytes' meeting series: probe overhead has
  /// no meeting, while a dropped message's bytes appear in both.
  double wasted_bytes = 0;
  obs::HistogramData bytes_per_meeting{WireByteBuckets()};

  /// Folds another summary into this one (histograms merge exactly).
  void MergeFrom(const PeerTrafficSummary& other);
};

/// Per-peer network traffic bookkeeping: the bytes each of the peer's
/// meetings moved (both directions), in meeting order. Figures 11/12 plot
/// quartiles of this series across peers.
struct PeerTraffic {
  /// bytes_per_meeting[m] = bytes exchanged in the peer's m-th meeting.
  std::vector<double> bytes_per_meeting;
  /// Total bytes over all meetings.
  double total_bytes = 0;
  /// Bytes this peer sent to no effect (see PeerTrafficSummary).
  double wasted_bytes = 0;

  void RecordMeeting(double bytes) {
    bytes_per_meeting.push_back(bytes);
    total_bytes += bytes;
  }

  void RecordWasted(double bytes) { wasted_bytes += bytes; }

  /// Summary statistics over the series.
  PeerTrafficSummary Summary() const;
};

/// Registry of peers in a simulated P2P overlay: which peers are alive, and
/// how much traffic each has caused. Peer state itself (graphs, scores)
/// lives with the application (core::JxpNetwork); this class models overlay
/// membership — including churn — and the wire.
class Network {
 public:
  Network() = default;

  /// Adds a peer and returns its id. Peers join alive.
  PeerId AddPeer();

  /// Marks a peer as departed. Its traffic history is retained.
  void Leave(PeerId peer);

  /// Re-joins a departed peer.
  void Rejoin(PeerId peer);

  /// True iff the peer is currently alive.
  bool IsAlive(PeerId peer) const {
    JXP_CHECK_LT(peer, alive_.size());
    return alive_[peer];
  }

  /// Number of peers ever added.
  size_t NumPeers() const { return alive_.size(); }

  /// Number of currently alive peers.
  size_t NumAlive() const { return num_alive_; }

  /// Ids of all currently alive peers, ascending.
  std::vector<PeerId> AlivePeers() const;

  /// A uniformly random alive peer different from `exclude` (pass
  /// kInvalidPeer for no exclusion). Requires at least one eligible peer.
  PeerId RandomAlivePeer(Random& rng, PeerId exclude) const;

  /// Records that a meeting of `peer` moved `bytes` bytes.
  void RecordMeetingTraffic(PeerId peer, double bytes) {
    JXP_CHECK_LT(peer, traffic_.size());
    traffic_[peer].RecordMeeting(bytes);
  }

  /// Records that `peer` sent `bytes` that produced no state change (fault
  /// injection: dropped/truncated/unapplied messages, contact probes).
  void RecordWastedTraffic(PeerId peer, double bytes) {
    JXP_CHECK_LT(peer, traffic_.size());
    traffic_[peer].RecordWasted(bytes);
  }

  /// Traffic history of a peer.
  const PeerTraffic& TrafficOf(PeerId peer) const {
    JXP_CHECK_LT(peer, traffic_.size());
    return traffic_[peer];
  }

  /// Total bytes moved by all meetings so far.
  double TotalTrafficBytes() const;

  /// Total wasted bytes over all peers (0 in a fault-free run).
  double TotalWastedBytes() const;

  /// Network-wide traffic summary: every peer's series merged into one.
  /// Note each meeting is recorded by both endpoints, so totals here count
  /// each exchange twice — same convention as TotalTrafficBytes.
  PeerTrafficSummary AggregateTraffic() const;

 private:
  std::vector<bool> alive_;
  std::vector<PeerTraffic> traffic_;
  size_t num_alive_ = 0;
};

}  // namespace p2p
}  // namespace jxp

#endif  // JXP_P2P_NETWORK_H_
