#include "metrics/ranking.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace jxp {
namespace metrics {

namespace {

bool ScoreGreater(const ScoredItem& a, const ScoredItem& b) {
  return a.second != b.second ? a.second > b.second : a.first < b.first;
}

/// Maps item id -> 1-based position for a ranking.
std::unordered_map<uint32_t, size_t> PositionsOf(std::span<const ScoredItem> ranking) {
  std::unordered_map<uint32_t, size_t> pos;
  pos.reserve(ranking.size() * 2);
  for (size_t i = 0; i < ranking.size(); ++i) pos.emplace(ranking[i].first, i + 1);
  return pos;
}

}  // namespace

std::vector<ScoredItem> TopK(std::span<const double> scores, size_t k) {
  std::vector<ScoredItem> items;
  items.reserve(scores.size());
  for (uint32_t i = 0; i < scores.size(); ++i) items.emplace_back(i, scores[i]);
  k = std::min(k, items.size());
  std::partial_sort(items.begin(), items.begin() + k, items.end(), ScoreGreater);
  items.resize(k);
  return items;
}

std::vector<ScoredItem> TopK(const std::unordered_map<uint32_t, double>& scores, size_t k) {
  std::vector<ScoredItem> items(scores.begin(), scores.end());
  k = std::min(k, items.size());
  std::partial_sort(items.begin(), items.begin() + k, items.end(), ScoreGreater);
  items.resize(k);
  return items;
}

double SpearmanFootrule(std::span<const ScoredItem> ranking1,
                        std::span<const ScoredItem> ranking2) {
  const size_t k = std::max(ranking1.size(), ranking2.size());
  if (k == 0) return 0.0;
  const auto pos1 = PositionsOf(ranking1);
  const auto pos2 = PositionsOf(ranking2);
  auto position = [k](const std::unordered_map<uint32_t, size_t>& pos, uint32_t id) {
    const auto it = pos.find(id);
    return it == pos.end() ? k + 1 : it->second;
  };
  double sum = 0;
  for (const auto& [id, score] : ranking1) {
    sum += std::abs(static_cast<double>(pos1.at(id)) - static_cast<double>(position(pos2, id)));
  }
  for (const auto& [id, score] : ranking2) {
    if (pos1.count(id)) continue;  // Already counted above.
    sum += std::abs(static_cast<double>(position(pos1, id)) - static_cast<double>(pos2.at(id)));
  }
  return sum / (static_cast<double>(k) * static_cast<double>(k + 1));
}

double KendallTauDistance(std::span<const ScoredItem> ranking1,
                          std::span<const ScoredItem> ranking2) {
  const size_t k = std::max(ranking1.size(), ranking2.size());
  if (k == 0) return 0.0;
  const auto pos1 = PositionsOf(ranking1);
  const auto pos2 = PositionsOf(ranking2);
  // Union of item ids.
  std::vector<uint32_t> items;
  items.reserve(pos1.size() + pos2.size());
  for (const auto& [id, p] : pos1) items.push_back(id);
  for (const auto& [id, p] : pos2) {
    if (!pos1.count(id)) items.push_back(id);
  }
  auto position = [k](const std::unordered_map<uint32_t, size_t>& pos, uint32_t id) {
    const auto it = pos.find(id);
    return it == pos.end() ? k + 1 : it->second;
  };
  size_t discordant = 0;
  size_t pairs = 0;
  for (size_t i = 0; i < items.size(); ++i) {
    for (size_t j = i + 1; j < items.size(); ++j) {
      const auto a1 = position(pos1, items[i]);
      const auto b1 = position(pos1, items[j]);
      const auto a2 = position(pos2, items[i]);
      const auto b2 = position(pos2, items[j]);
      if (a1 == b1 || a2 == b2) continue;  // Tied (both off-list): no order info.
      ++pairs;
      if ((a1 < b1) != (a2 < b2)) ++discordant;
    }
  }
  return pairs == 0 ? 0.0 : static_cast<double>(discordant) / static_cast<double>(pairs);
}

double PrecisionAtK(std::span<const uint32_t> retrieved,
                    const std::unordered_set<uint32_t>& relevant, size_t k) {
  JXP_CHECK_GT(k, 0u);
  const size_t limit = std::min(k, retrieved.size());
  if (limit == 0) return 0.0;
  size_t hits = 0;
  for (size_t i = 0; i < limit; ++i) {
    if (relevant.count(retrieved[i])) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(limit);
}

double NdcgAtK(std::span<const uint32_t> retrieved,
               const std::unordered_set<uint32_t>& relevant, size_t k) {
  JXP_CHECK_GT(k, 0u);
  const size_t limit = std::min(k, retrieved.size());
  double dcg = 0;
  for (size_t i = 0; i < limit; ++i) {
    if (relevant.count(retrieved[i])) {
      dcg += 1.0 / std::log2(static_cast<double>(i) + 2.0);
    }
  }
  const size_t ideal_hits = std::min(k, relevant.size());
  double ideal = 0;
  for (size_t i = 0; i < ideal_hits; ++i) {
    ideal += 1.0 / std::log2(static_cast<double>(i) + 2.0);
  }
  return ideal == 0 ? 0.0 : dcg / ideal;
}

double ReciprocalRank(std::span<const uint32_t> retrieved,
                      const std::unordered_set<uint32_t>& relevant, size_t k) {
  JXP_CHECK_GT(k, 0u);
  const size_t limit = std::min(k, retrieved.size());
  for (size_t i = 0; i < limit; ++i) {
    if (relevant.count(retrieved[i])) return 1.0 / static_cast<double>(i + 1);
  }
  return 0.0;
}

}  // namespace metrics
}  // namespace jxp
