#ifndef JXP_METRICS_ERROR_H_
#define JXP_METRICS_ERROR_H_

#include <span>
#include <unordered_map>

#include "metrics/ranking.h"

namespace jxp {
namespace metrics {

/// The paper's linear score error (Section 6.2): the average absolute
/// difference between the approximate (JXP) score and the true global PR
/// score over the top-k pages *of the centralized PR ranking*.
///
/// `global_top_k` is the centralized ranking (page, true score);
/// `approx_scores` maps page -> JXP score, with missing pages scored 0.
double LinearScoreError(std::span<const ScoredItem> global_top_k,
                        const std::unordered_map<uint32_t, double>& approx_scores);

/// Maximum absolute score difference over the same pages; a stricter
/// convergence diagnostic used by tests.
double MaxScoreError(std::span<const ScoredItem> global_top_k,
                     const std::unordered_map<uint32_t, double>& approx_scores);

}  // namespace metrics
}  // namespace jxp

#endif  // JXP_METRICS_ERROR_H_
