#include "metrics/summary.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace jxp {
namespace metrics {

namespace {

/// Type-7 quantile (linear interpolation) of sorted data.
double Quantile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0;
  if (sorted.size() == 1) return sorted[0];
  const double h = q * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(std::floor(h));
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = h - static_cast<double>(lo);
  return sorted[lo] * (1 - frac) + sorted[hi] * frac;
}

}  // namespace

Summary Summarize(std::span<const double> values) {
  Summary s;
  s.count = values.size();
  if (values.empty()) return s;
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  s.min = sorted.front();
  s.max = sorted.back();
  s.q1 = Quantile(sorted, 0.25);
  s.median = Quantile(sorted, 0.5);
  s.q3 = Quantile(sorted, 0.75);
  double sum = 0;
  for (double v : sorted) sum += v;
  s.mean = sum / static_cast<double>(sorted.size());
  return s;
}

double StdDev(std::span<const double> values) {
  if (values.size() < 2) return 0;
  double mean = 0;
  for (double v : values) mean += v;
  mean /= static_cast<double>(values.size());
  double ss = 0;
  for (double v : values) ss += (v - mean) * (v - mean);
  return std::sqrt(ss / static_cast<double>(values.size() - 1));
}

}  // namespace metrics
}  // namespace jxp
