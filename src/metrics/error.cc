#include "metrics/error.h"

#include <algorithm>
#include <cmath>

namespace jxp {
namespace metrics {

namespace {

double ApproxScore(const std::unordered_map<uint32_t, double>& approx_scores, uint32_t page) {
  const auto it = approx_scores.find(page);
  return it == approx_scores.end() ? 0.0 : it->second;
}

}  // namespace

double LinearScoreError(std::span<const ScoredItem> global_top_k,
                        const std::unordered_map<uint32_t, double>& approx_scores) {
  if (global_top_k.empty()) return 0.0;
  double sum = 0;
  for (const auto& [page, true_score] : global_top_k) {
    sum += std::abs(true_score - ApproxScore(approx_scores, page));
  }
  return sum / static_cast<double>(global_top_k.size());
}

double MaxScoreError(std::span<const ScoredItem> global_top_k,
                     const std::unordered_map<uint32_t, double>& approx_scores) {
  double worst = 0;
  for (const auto& [page, true_score] : global_top_k) {
    worst = std::max(worst, std::abs(true_score - ApproxScore(approx_scores, page)));
  }
  return worst;
}

}  // namespace metrics
}  // namespace jxp
