#ifndef JXP_METRICS_RANKING_H_
#define JXP_METRICS_RANKING_H_

#include <cstdint>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

namespace jxp {
namespace metrics {

/// One ranked item: (id, score).
using ScoredItem = std::pair<uint32_t, double>;

/// Extracts the top-k items of a dense score vector (index = id), ordered by
/// descending score with ascending-id tie-break for determinism.
std::vector<ScoredItem> TopK(std::span<const double> scores, size_t k);

/// Extracts the top-k items of a sparse id -> score map, same ordering.
std::vector<ScoredItem> TopK(const std::unordered_map<uint32_t, double>& scores, size_t k);

/// Normalized Spearman's footrule distance between two top-k rankings, the
/// paper's comparison measure (Section 6.2, after Fagin et al.):
///
///   F = sum over pages of |pos1(p) - pos2(p)|
///
/// where positions are 1-based and a page missing from one ranking takes
/// position k+1 there. Normalized by the maximum k*(k+1) (two disjoint
/// rankings) to [0, 1]: 0 = identical, 1 = no pages in common.
/// `k` is the larger of the two list sizes.
double SpearmanFootrule(std::span<const ScoredItem> ranking1,
                        std::span<const ScoredItem> ranking2);

/// Kendall's tau-a distance between two top-k rankings over the union of
/// their items (missing items at position k+1), normalized to [0, 1]:
/// fraction of discordant pairs.
double KendallTauDistance(std::span<const ScoredItem> ranking1,
                          std::span<const ScoredItem> ranking2);

/// Precision at k: fraction of the first k retrieved ids that are relevant.
/// Uses min(k, retrieved.size()) as the denominator's cap partner — if fewer
/// than k items were retrieved, precision is computed over what exists.
double PrecisionAtK(std::span<const uint32_t> retrieved,
                    const std::unordered_set<uint32_t>& relevant, size_t k);

/// Normalized discounted cumulative gain at k with binary relevance:
/// DCG = sum over relevant positions i (1-based) of 1/log2(i + 1),
/// normalized by the ideal DCG (all of the first min(k, |relevant|)
/// positions relevant). 0 when nothing relevant was retrievable.
double NdcgAtK(std::span<const uint32_t> retrieved,
               const std::unordered_set<uint32_t>& relevant, size_t k);

/// Reciprocal rank of the first relevant result within the top k
/// (1 for rank 1, 1/2 for rank 2, ...); 0 when none appears.
double ReciprocalRank(std::span<const uint32_t> retrieved,
                      const std::unordered_set<uint32_t>& relevant, size_t k);

}  // namespace metrics
}  // namespace jxp

#endif  // JXP_METRICS_RANKING_H_
