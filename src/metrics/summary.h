#ifndef JXP_METRICS_SUMMARY_H_
#define JXP_METRICS_SUMMARY_H_

#include <span>

namespace jxp {
namespace metrics {

/// Five-number-ish summary used for the message-size figures (11/12), which
/// plot median and first/third quartiles.
struct Summary {
  double min = 0;
  double q1 = 0;
  double median = 0;
  double q3 = 0;
  double max = 0;
  double mean = 0;
  size_t count = 0;
};

/// Computes the summary of a sample (empty input yields all zeros).
/// Quartiles use linear interpolation between order statistics (type 7).
Summary Summarize(std::span<const double> values);

/// Sample standard deviation (n-1 denominator); 0 for n < 2.
double StdDev(std::span<const double> values);

}  // namespace metrics
}  // namespace jxp

#endif  // JXP_METRICS_SUMMARY_H_
