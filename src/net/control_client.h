#ifndef JXP_NET_CONTROL_CLIENT_H_
#define JXP_NET_CONTROL_CLIENT_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "net/net_protocol.h"
#include "net/socket_util.h"

namespace jxp {
namespace net {

/// Blocking request/response client for a PeerDaemon's control protocol
/// (the 0x2x message types). One connection per client; the cluster driver
/// holds one ControlClient per daemon. Synchronous on purpose — the driver
/// replays meetings serially to match the oracle's schedule, so a blocking
/// round trip is exactly the flow control needed.
class ControlClient {
 public:
  ControlClient() = default;

  /// Dials 127.0.0.1:`port` (the daemon's *bound* port, never the chaos
  /// proxy — control traffic must not be faulted).
  Status Connect(uint16_t port, uint64_t io_timeout_ms = 10000);
  bool connected() const { return fd_.valid(); }
  void Close() { fd_.reset(); }

  Status GetStatus(StatusReplyMessage* out);
  /// Asks the daemon to SavePeerState to its configured state path.
  Status Checkpoint();
  /// Stops the daemon from initiating or accepting further meetings.
  Status Quiesce();
  /// Commands one meeting with `partner_id`, dialed at `port` (the
  /// partner's advertised port — under chaos, the proxy's). Blocks until
  /// the meeting completes; the daemon reports its outcome in `*out`.
  Status Meet(uint32_t partner_id, uint16_t port, MeetResultMessage* out);
  /// Dumps the daemon's local scores as exact doubles.
  Status GetScores(ScoresReplyMessage* out);
  /// Autonomous mode: starts (or resumes) the daemon's meeting scheduler.
  Status StartScheduler();
  /// Pauses the scheduler; pooled connections stay warm, inbound meetings
  /// still accepted.
  Status PauseScheduler();
  /// Drain-and-quiesce: terminal scheduler stop + quiesce + pool close.
  /// The daemon still answers control traffic afterwards.
  Status Drain();
  /// Dumps connection/meeting/pool/scheduler counters.
  Status GetNetStats(NetStatsReplyMessage* out);

 private:
  /// Sends `request` (complete frames) and reads one reply frame, checking
  /// its type byte against `expect`.
  Status RoundTrip(const std::vector<uint8_t>& request, NetMessageType expect,
                   std::vector<uint8_t>* payload);
  /// Empty-payload request -> Ack reply, failing on a negative ack.
  Status AckRoundTrip(NetMessageType request_type, NetMessageType reply_type,
                      const char* what);

  UniqueFd fd_;
};

}  // namespace net
}  // namespace jxp

#endif  // JXP_NET_CONTROL_CLIENT_H_
