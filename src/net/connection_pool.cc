#include "net/connection_pool.h"

#include <errno.h>
#include <sys/socket.h>

#include <utility>

namespace jxp {
namespace net {

ConnectionPool::ConnectionPool(ConnectionPoolOptions options,
                               std::function<uint64_t()> clock_ms)
    : options_(options), clock_ms_(std::move(clock_ms)) {}

bool ConnectionPool::LooksDead(int fd) {
  uint8_t byte = 0;
  const ssize_t n = ::recv(fd, &byte, 1, MSG_PEEK | MSG_DONTWAIT);
  if (n == 0) return true;  // Orderly close while pooled.
  if (n < 0) return errno != EAGAIN && errno != EWOULDBLOCK;
  // Unsolicited bytes on an idle request/reply connection: the stream is no
  // longer aligned on a frame boundary, so it cannot carry a meeting.
  return true;
}

void ConnectionPool::Erase(LruList::iterator it) {
  by_port_.erase(it->port);
  lru_.erase(it);  // UniqueFd closes the socket.
}

Status ConnectionPool::DialInto(uint16_t port, int* out_fd) {
  UniqueFd fd;
  if (Status status = ConnectLoopback(port, &fd); !status.ok()) {
    ++stats_.dial_failures;
    return status;
  }
  ++stats_.dials;
  Pooled pooled;
  pooled.fd = std::move(fd);
  pooled.port = port;
  pooled.in_flight = 1;
  pooled.last_used_ms = clock_ms_();
  lru_.push_front(std::move(pooled));
  by_port_[port] = lru_.begin();
  *out_fd = lru_.begin()->fd.get();
  return Status::OK();
}

Status ConnectionPool::Acquire(uint16_t port, int* out_fd, bool* out_reused) {
  *out_reused = false;
  const auto found = by_port_.find(port);
  if (found != by_port_.end()) {
    const LruList::iterator it = found->second;
    if (it->in_flight >= options_.max_in_flight) {
      ++stats_.busy_rejections;
      return Status::FailedPrecondition("connection busy (in-flight limit)");
    }
    if (!LooksDead(it->fd.get())) {
      ++it->in_flight;
      it->last_used_ms = clock_ms_();
      lru_.splice(lru_.begin(), lru_, it);  // Move to MRU.
      *out_fd = it->fd.get();
      *out_reused = true;
      ++stats_.reuses;
      return Status::OK();
    }
    // The peer tore the connection down while it sat in the pool. This is
    // lifecycle, not a failed connect: count it as half-open + redial and
    // replace it transparently.
    ++stats_.half_open_detected;
    Erase(it);
    ++stats_.redials;
    return DialInto(port, out_fd);
  }

  if (lru_.size() >= options_.max_connections) {
    // Evict the least-recently-used idle connection to make room.
    auto victim = lru_.end();
    for (auto it = lru_.begin(); it != lru_.end(); ++it) {
      if (it->in_flight == 0) victim = it;  // Last idle hit = closest to LRU end.
    }
    if (victim == lru_.end()) {
      ++stats_.busy_rejections;
      return Status::FailedPrecondition("connection pool exhausted (all in flight)");
    }
    ++stats_.evictions_lru;
    Erase(victim);
  }
  return DialInto(port, out_fd);
}

void ConnectionPool::Release(uint16_t port, bool healthy) {
  const auto found = by_port_.find(port);
  if (found == by_port_.end()) return;
  const LruList::iterator it = found->second;
  if (it->in_flight > 0) --it->in_flight;
  if (!healthy) {
    ++stats_.released_broken;
    Erase(it);
    return;
  }
  it->last_used_ms = clock_ms_();
}

size_t ConnectionPool::SweepIdle() {
  if (options_.idle_timeout_ms == 0) return 0;
  const uint64_t now = clock_ms_();
  size_t closed = 0;
  for (auto it = lru_.begin(); it != lru_.end();) {
    const auto next = std::next(it);
    const uint64_t idle = now >= it->last_used_ms ? now - it->last_used_ms : 0;
    if (it->in_flight == 0 && idle >= options_.idle_timeout_ms) {
      ++stats_.evictions_idle;
      Erase(it);
      ++closed;
    }
    it = next;
  }
  return closed;
}

size_t ConnectionPool::CloseAll() {
  size_t closed = 0;
  for (auto it = lru_.begin(); it != lru_.end();) {
    const auto next = std::next(it);
    if (it->in_flight == 0) {
      Erase(it);
      ++closed;
    }
    it = next;
  }
  return closed;
}

}  // namespace net
}  // namespace jxp
