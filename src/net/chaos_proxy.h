#ifndef JXP_NET_CHAOS_PROXY_H_
#define JXP_NET_CHAOS_PROXY_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "net/socket_util.h"
#include "p2p/faults.h"

namespace jxp {
namespace net {

struct ChaosProxyOptions {
  /// Port the proxy listens on (0 = ephemeral; read back via bound_port()).
  /// Daemons advertise THIS port, so peer meeting traffic routes through
  /// the proxy while driver control traffic dials the daemon directly.
  uint16_t listen_port = 0;
  /// The proxied daemon's real bound port.
  uint16_t target_port = 0;
  /// Fault probabilities. Only message_drop_probability,
  /// truncation_probability (+ truncation_keep_fraction) and
  /// corruption_probability apply — the proxy faults the network path, not
  /// peer processes.
  p2p::FaultPlan plan;
  uint64_t seed = 1;
};

/// Injected-fault accounting. The cluster driver compares these against the
/// daemons' detection counters: every drop or truncation must surface as
/// exactly one truncations_detected (EOF mid-blob) and every corruption as
/// exactly one corruptions_detected (checksum-failed decode) on the
/// receiving side.
struct ChaosProxyStats {
  uint64_t connections = 0;
  uint64_t frames_forwarded = 0;
  uint64_t blobs_forwarded = 0;  // Clean, complete blob transfers.
  uint64_t blobs_dropped = 0;    // 0 of N announced bytes delivered.
  uint64_t blobs_truncated = 0;  // A strict prefix delivered, then close.
  uint64_t blobs_corrupted = 0;  // One bit flipped, all bytes delivered.
};

/// The network form of PR 3's fault layer (DESIGN.md §6k): a loopback TCP
/// relay in front of one daemon that forwards protocol frames verbatim and
/// faults ONLY meeting-blob bytes — drop (announce, deliver nothing),
/// truncate (deliver a prefix, then close), or corrupt (flip one bit).
/// Faulting only blobs keeps the failure modes identical to the
/// simulation's fault model: a torn blob is salvage-decoded by the
/// receiver, never a wedged framing layer.
///
/// Threaded and blocking by design — the proxy is test harness code, and
/// two pump threads per connection (one per direction) are simpler to make
/// correct than a third event loop.
class ChaosProxy {
 public:
  explicit ChaosProxy(ChaosProxyOptions options);
  ~ChaosProxy();
  ChaosProxy(const ChaosProxy&) = delete;
  ChaosProxy& operator=(const ChaosProxy&) = delete;

  /// Binds the listener and starts the accept thread.
  Status Start();
  /// Shuts down every relay and joins all threads. Idempotent.
  void Stop();

  uint16_t bound_port() const { return bound_port_; }
  ChaosProxyStats stats() const;

 private:
  struct Relay {
    UniqueFd client;  // Dialing peer -> proxy.
    UniqueFd server;  // Proxy -> target daemon.
    std::thread forward;   // client -> server (offer direction).
    std::thread backward;  // server -> client (reply direction).
  };

  void AcceptLoop();
  /// Relays src -> dst frame by frame, faulting meeting blobs. Returns when
  /// either side closes or a drop/truncate fault kills the connection.
  void Pump(Relay* relay, int src, int dst);
  /// Draws one per-blob fault decision. 0 = clean, else the fault kind.
  enum class BlobFault { kNone, kDrop, kTruncate, kCorrupt };
  BlobFault DrawFault();
  uint64_t DrawBitIndex(uint64_t num_bits);
  static void ShutdownBoth(Relay* relay);

  ChaosProxyOptions options_;
  UniqueFd listener_;
  uint16_t bound_port_ = 0;
  std::thread accept_thread_;
  std::atomic<bool> stopping_{false};

  std::mutex mu_;  // Guards rng_ and relays_.
  Random rng_;
  std::vector<std::unique_ptr<Relay>> relays_;

  std::atomic<uint64_t> connections_{0};
  std::atomic<uint64_t> frames_forwarded_{0};
  std::atomic<uint64_t> blobs_forwarded_{0};
  std::atomic<uint64_t> blobs_dropped_{0};
  std::atomic<uint64_t> blobs_truncated_{0};
  std::atomic<uint64_t> blobs_corrupted_{0};
};

}  // namespace net
}  // namespace jxp

#endif  // JXP_NET_CHAOS_PROXY_H_
