#include "net/net_protocol.h"

#include <cstring>

#include "net/socket_util.h"

namespace jxp {
namespace net {

namespace {

using wire::ByteReader;
using wire::ByteWriter;

void Seal(NetMessageType type, std::vector<uint8_t>& payload,
          std::vector<uint8_t>& out) {
  wire::AppendFrameRaw(static_cast<uint8_t>(type), payload, out);
}

Status Malformed(const char* what) {
  return Status::InvalidArgument(std::string("malformed ") + what);
}

uint64_t DoubleBits(double v) {
  uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

double BitsDouble(uint64_t bits) {
  double v = 0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

}  // namespace

void AppendHello(const HelloMessage& msg, std::vector<uint8_t>& out) {
  std::vector<uint8_t> payload;
  ByteWriter writer(payload);
  writer.PutVarint32(msg.peer_id);
  writer.PutVarint32(msg.listen_port);
  Seal(NetMessageType::kHello, payload, out);
}

void AppendPeerExchange(const PeerExchangeMessage& msg, std::vector<uint8_t>& out) {
  std::vector<uint8_t> payload;
  ByteWriter writer(payload);
  writer.PutVarint32(static_cast<uint32_t>(msg.entries.size()));
  for (const GossipEntry& entry : msg.entries) {
    writer.PutVarint32(entry.peer_id);
    writer.PutVarint32(entry.port);
    writer.PutVarint32(entry.age_ms);
    writer.PutU8(entry.departed ? 1 : 0);
  }
  Seal(NetMessageType::kPeerExchange, payload, out);
}

void AppendMeetingHeader(NetMessageType type, const MeetingHeader& msg,
                         std::vector<uint8_t>& out) {
  std::vector<uint8_t> payload;
  ByteWriter writer(payload);
  writer.PutVarint32(msg.sender_id);
  writer.PutU32(msg.payload_bytes);
  Seal(type, payload, out);
}

void AppendMeetingDecline(uint32_t sender_id, std::vector<uint8_t>& out) {
  std::vector<uint8_t> payload;
  ByteWriter writer(payload);
  writer.PutVarint32(sender_id);
  Seal(NetMessageType::kMeetingDecline, payload, out);
}

void AppendGoodbye(uint32_t sender_id, std::vector<uint8_t>& out) {
  std::vector<uint8_t> payload;
  ByteWriter writer(payload);
  writer.PutVarint32(sender_id);
  Seal(NetMessageType::kGoodbye, payload, out);
}

void AppendEmpty(NetMessageType type, std::vector<uint8_t>& out) {
  std::vector<uint8_t> payload;
  Seal(type, payload, out);
}

void AppendMeetCommand(const MeetCommandMessage& msg, std::vector<uint8_t>& out) {
  std::vector<uint8_t> payload;
  ByteWriter writer(payload);
  writer.PutVarint32(msg.partner_id);
  writer.PutVarint32(msg.port);
  Seal(NetMessageType::kMeetCommand, payload, out);
}

void AppendMeetResult(const MeetResultMessage& msg, std::vector<uint8_t>& out) {
  std::vector<uint8_t> payload;
  ByteWriter writer(payload);
  writer.PutU8(static_cast<uint8_t>((msg.applied ? 1 : 0) | (msg.salvaged ? 2 : 0) |
                                    (msg.declined ? 4 : 0)));
  writer.PutVarint64(msg.bytes_sent);
  writer.PutVarint64(msg.bytes_received);
  writer.PutVarint64(msg.bytes_wasted);
  Seal(NetMessageType::kMeetResult, payload, out);
}

void AppendStatusReply(const StatusReplyMessage& msg, std::vector<uint8_t>& out) {
  std::vector<uint8_t> payload;
  ByteWriter writer(payload);
  writer.PutVarint32(msg.peer_id);
  writer.PutVarint64(msg.num_meetings);
  writer.PutVarint64(msg.meetings_accepted);
  writer.PutVarint32(msg.local_pages);
  writer.PutVarint32(msg.world_entries);
  writer.PutVarint32(msg.directory_size);
  writer.PutU8(msg.quiesced ? 1 : 0);
  Seal(NetMessageType::kStatusReply, payload, out);
}

void AppendScoresReply(const ScoresReplyMessage& msg, std::vector<uint8_t>& out) {
  std::vector<uint8_t> payload;
  ByteWriter writer(payload);
  writer.PutVarint32(static_cast<uint32_t>(msg.entries.size()));
  for (const ScoreEntry& entry : msg.entries) {
    writer.PutVarint32(entry.page);
    writer.PutU64(DoubleBits(entry.score));
  }
  writer.PutU64(DoubleBits(msg.world_score));
  Seal(NetMessageType::kScoresReply, payload, out);
}

void AppendAck(NetMessageType type, const AckMessage& msg, std::vector<uint8_t>& out) {
  std::vector<uint8_t> payload;
  ByteWriter writer(payload);
  writer.PutU8(msg.ok ? 1 : 0);
  writer.PutVarint32(static_cast<uint32_t>(msg.detail.size()));
  for (const char c : msg.detail) payload.push_back(static_cast<uint8_t>(c));
  Seal(type, payload, out);
}

void AppendNetStatsReply(const NetStatsReplyMessage& msg, std::vector<uint8_t>& out) {
  std::vector<uint8_t> payload;
  ByteWriter writer(payload);
  writer.PutVarint32(msg.peer_id);
  writer.PutVarint64(msg.accepts);
  writer.PutVarint64(msg.dials);
  writer.PutVarint64(msg.dial_failures);
  writer.PutVarint64(msg.meetings_initiated);
  writer.PutVarint64(msg.meetings_accepted);
  writer.PutVarint64(msg.meetings_declined);
  writer.PutVarint64(msg.meeting_failures);
  writer.PutVarint64(msg.truncations_detected);
  writer.PutVarint64(msg.corruptions_detected);
  writer.PutVarint64(msg.bytes_sent);
  writer.PutVarint64(msg.bytes_received);
  writer.PutVarint64(msg.wasted_bytes);
  writer.PutVarint64(msg.pool_reuses);
  writer.PutVarint64(msg.pool_half_open);
  writer.PutVarint64(msg.pool_redials);
  writer.PutVarint64(msg.pool_evictions_idle);
  writer.PutVarint64(msg.pool_evictions_lru);
  writer.PutVarint64(msg.pool_busy_rejections);
  writer.PutVarint64(msg.pool_open_connections);
  writer.PutU8(msg.scheduler_state);
  writer.PutVarint64(msg.sched_ticks);
  writer.PutVarint64(msg.sched_meetings_started);
  writer.PutVarint64(msg.sched_meetings_applied);
  writer.PutVarint64(msg.sched_declines);
  writer.PutVarint64(msg.sched_failures);
  writer.PutVarint64(msg.sched_busy);
  writer.PutVarint64(msg.sched_skips_no_partner);
  writer.PutVarint64(msg.sched_skips_backoff);
  writer.PutVarint64(msg.sched_backoffs_armed);
  Seal(NetMessageType::kNetStatsReply, payload, out);
}

Status ParseHello(std::span<const uint8_t> payload, HelloMessage* out) {
  ByteReader reader(payload);
  uint32_t port = 0;
  if (!reader.GetVarint32(&out->peer_id) || !reader.GetVarint32(&port) ||
      port > 0xffff || !reader.AtEnd()) {
    return Malformed("hello");
  }
  out->listen_port = static_cast<uint16_t>(port);
  return Status::OK();
}

Status ParsePeerExchange(std::span<const uint8_t> payload, PeerExchangeMessage* out) {
  ByteReader reader(payload);
  uint32_t count = 0;
  if (!reader.GetVarint32(&count)) return Malformed("peer exchange");
  // Each entry is >= 4 bytes; reject counts the payload cannot hold.
  if (count > payload.size() / 4) return Malformed("peer exchange count");
  out->entries.clear();
  out->entries.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    GossipEntry entry;
    uint32_t port = 0;
    uint8_t departed = 0;
    if (!reader.GetVarint32(&entry.peer_id) || !reader.GetVarint32(&port) ||
        port > 0xffff || !reader.GetVarint32(&entry.age_ms) ||
        !reader.GetU8(&departed)) {
      return Malformed("peer exchange entry");
    }
    entry.port = static_cast<uint16_t>(port);
    entry.departed = departed != 0;
    out->entries.push_back(entry);
  }
  if (!reader.AtEnd()) return Malformed("peer exchange trailer");
  return Status::OK();
}

Status ParseMeetingHeader(std::span<const uint8_t> payload, MeetingHeader* out) {
  ByteReader reader(payload);
  if (!reader.GetVarint32(&out->sender_id) || !reader.GetU32(&out->payload_bytes) ||
      !reader.AtEnd()) {
    return Malformed("meeting header");
  }
  return Status::OK();
}

Status ParseSenderId(std::span<const uint8_t> payload, uint32_t* out) {
  ByteReader reader(payload);
  if (!reader.GetVarint32(out) || !reader.AtEnd()) return Malformed("sender id");
  return Status::OK();
}

Status ParseMeetCommand(std::span<const uint8_t> payload, MeetCommandMessage* out) {
  ByteReader reader(payload);
  uint32_t port = 0;
  if (!reader.GetVarint32(&out->partner_id) || !reader.GetVarint32(&port) ||
      port > 0xffff || !reader.AtEnd()) {
    return Malformed("meet command");
  }
  out->port = static_cast<uint16_t>(port);
  return Status::OK();
}

Status ParseMeetResult(std::span<const uint8_t> payload, MeetResultMessage* out) {
  ByteReader reader(payload);
  uint8_t flags = 0;
  if (!reader.GetU8(&flags) || !reader.GetVarint64(&out->bytes_sent) ||
      !reader.GetVarint64(&out->bytes_received) ||
      !reader.GetVarint64(&out->bytes_wasted) || !reader.AtEnd()) {
    return Malformed("meet result");
  }
  out->applied = (flags & 1) != 0;
  out->salvaged = (flags & 2) != 0;
  out->declined = (flags & 4) != 0;
  return Status::OK();
}

Status ParseStatusReply(std::span<const uint8_t> payload, StatusReplyMessage* out) {
  ByteReader reader(payload);
  uint8_t quiesced = 0;
  if (!reader.GetVarint32(&out->peer_id) || !reader.GetVarint64(&out->num_meetings) ||
      !reader.GetVarint64(&out->meetings_accepted) ||
      !reader.GetVarint32(&out->local_pages) ||
      !reader.GetVarint32(&out->world_entries) ||
      !reader.GetVarint32(&out->directory_size) || !reader.GetU8(&quiesced) ||
      !reader.AtEnd()) {
    return Malformed("status reply");
  }
  out->quiesced = quiesced != 0;
  return Status::OK();
}

Status ParseScoresReply(std::span<const uint8_t> payload, ScoresReplyMessage* out) {
  ByteReader reader(payload);
  uint32_t count = 0;
  if (!reader.GetVarint32(&count)) return Malformed("scores reply");
  if (count > payload.size() / 9) return Malformed("scores reply count");
  out->entries.clear();
  out->entries.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    ScoreEntry entry;
    uint64_t bits = 0;
    if (!reader.GetVarint32(&entry.page) || !reader.GetU64(&bits)) {
      return Malformed("scores reply entry");
    }
    entry.score = BitsDouble(bits);
    out->entries.push_back(entry);
  }
  uint64_t world_bits = 0;
  if (!reader.GetU64(&world_bits) || !reader.AtEnd()) {
    return Malformed("scores reply trailer");
  }
  out->world_score = BitsDouble(world_bits);
  return Status::OK();
}

Status ParseAck(std::span<const uint8_t> payload, AckMessage* out) {
  ByteReader reader(payload);
  uint8_t ok = 0;
  uint32_t len = 0;
  if (!reader.GetU8(&ok) || !reader.GetVarint32(&len) || reader.remaining() != len) {
    return Malformed("ack");
  }
  out->ok = ok != 0;
  out->detail.assign(reinterpret_cast<const char*>(payload.data()) + reader.position(),
                     len);
  return Status::OK();
}

Status ParseNetStatsReply(std::span<const uint8_t> payload, NetStatsReplyMessage* out) {
  ByteReader reader(payload);
  if (!reader.GetVarint32(&out->peer_id) || !reader.GetVarint64(&out->accepts) ||
      !reader.GetVarint64(&out->dials) || !reader.GetVarint64(&out->dial_failures) ||
      !reader.GetVarint64(&out->meetings_initiated) ||
      !reader.GetVarint64(&out->meetings_accepted) ||
      !reader.GetVarint64(&out->meetings_declined) ||
      !reader.GetVarint64(&out->meeting_failures) ||
      !reader.GetVarint64(&out->truncations_detected) ||
      !reader.GetVarint64(&out->corruptions_detected) ||
      !reader.GetVarint64(&out->bytes_sent) ||
      !reader.GetVarint64(&out->bytes_received) ||
      !reader.GetVarint64(&out->wasted_bytes) ||
      !reader.GetVarint64(&out->pool_reuses) ||
      !reader.GetVarint64(&out->pool_half_open) ||
      !reader.GetVarint64(&out->pool_redials) ||
      !reader.GetVarint64(&out->pool_evictions_idle) ||
      !reader.GetVarint64(&out->pool_evictions_lru) ||
      !reader.GetVarint64(&out->pool_busy_rejections) ||
      !reader.GetVarint64(&out->pool_open_connections) ||
      !reader.GetU8(&out->scheduler_state) || !reader.GetVarint64(&out->sched_ticks) ||
      !reader.GetVarint64(&out->sched_meetings_started) ||
      !reader.GetVarint64(&out->sched_meetings_applied) ||
      !reader.GetVarint64(&out->sched_declines) ||
      !reader.GetVarint64(&out->sched_failures) ||
      !reader.GetVarint64(&out->sched_busy) ||
      !reader.GetVarint64(&out->sched_skips_no_partner) ||
      !reader.GetVarint64(&out->sched_skips_backoff) ||
      !reader.GetVarint64(&out->sched_backoffs_armed) || !reader.AtEnd()) {
    return Malformed("net stats reply");
  }
  return Status::OK();
}

Status ReadFrameBlocking(int fd, uint8_t* type, std::vector<uint8_t>* payload,
                         size_t max_payload_bytes) {
  uint8_t header[wire::kFrameHeaderBytes];
  if (Status status = ReadExact(fd, header, sizeof(header)); !status.ok()) {
    return status;
  }
  if (header[0] != wire::kMagic0 || header[1] != wire::kMagic1) {
    return Status::Corruption("bad frame magic");
  }
  if (header[2] != wire::kVersion) return Status::Corruption("bad frame version");
  uint32_t length = 0;
  for (int i = 0; i < 4; ++i) length |= static_cast<uint32_t>(header[4 + i]) << (8 * i);
  if (length > max_payload_bytes) return Status::OutOfRange("frame too large");
  uint64_t checksum = 0;
  for (int i = 0; i < 8; ++i) {
    checksum |= static_cast<uint64_t>(header[wire::kChecksumOffset + i]) << (8 * i);
  }
  payload->assign(length, 0);
  if (length > 0) {
    if (Status status = ReadExact(fd, payload->data(), length); !status.ok()) {
      return status;
    }
  }
  if (wire::ComputeFrameChecksum(header, *payload) != checksum) {
    return Status::Corruption("frame checksum mismatch");
  }
  *type = header[3];
  return Status::OK();
}

}  // namespace net
}  // namespace jxp
