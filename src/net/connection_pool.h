#ifndef JXP_NET_CONNECTION_POOL_H_
#define JXP_NET_CONNECTION_POOL_H_

#include <cstdint>
#include <functional>
#include <list>
#include <unordered_map>

#include "common/status.h"
#include "net/socket_util.h"

namespace jxp {
namespace net {

struct ConnectionPoolOptions {
  /// Maximum pooled connections. Acquiring past the cap evicts the
  /// least-recently-used idle connection; when every pooled connection is
  /// in flight the acquire is rejected (flow control, not eviction).
  size_t max_connections = 16;
  /// Idle connections older than this are closed by SweepIdle (the daemon
  /// arms a sweep timer at half this period). 0 = never expire.
  uint64_t idle_timeout_ms = 30000;
  /// Per-connection in-flight limit: concurrent leases of one connection
  /// beyond this are rejected with FailedPrecondition ("busy"). The daemon
  /// runs meetings serially so 1 is the natural limit; the cap exists as
  /// back-pressure for any future multi-issue caller.
  uint32_t max_in_flight = 1;
};

/// Teardown and reuse accounting. A pooled connection that dies *between*
/// meetings is a `half_open_detected` (plus one `redials` when the
/// transparent replacement dial happens) — never a `dial_failures`: the
/// remote end tearing down an idle connection is normal lifecycle, not a
/// failed connect, and the two must stay distinguishable in telemetry
/// (docs/METRICS.md, jxp.net.pool_*).
struct ConnectionPoolStats {
  /// Fresh TCP connects made on behalf of callers (includes redials).
  uint64_t dials = 0;
  /// Fresh connects that failed (connection refused / timeout).
  uint64_t dial_failures = 0;
  /// Acquires served from the pool without a new connect.
  uint64_t reuses = 0;
  /// Pooled connections found dead at acquire (EOF/error/stray bytes on the
  /// pre-reuse peek).
  uint64_t half_open_detected = 0;
  /// Fresh dials made to transparently replace a dead pooled connection
  /// (at-acquire detection, or the caller's one first-write retry).
  uint64_t redials = 0;
  /// Idle connections closed by the sweep timer.
  uint64_t evictions_idle = 0;
  /// Idle connections closed to make room under max_connections.
  uint64_t evictions_lru = 0;
  /// Acquires rejected because the connection hit max_in_flight.
  uint64_t busy_rejections = 0;
  /// Connections the caller released as unhealthy (mid-meeting IO error).
  uint64_t released_broken = 0;
};

/// Keeps outbound peer connections alive across meetings (DESIGN.md §6l),
/// replacing the dial-per-meeting path. Keyed by loopback port (the
/// daemon's partner address); at most one connection per port. Single
/// threaded — lives on the daemon's event-loop thread, like everything else
/// in the daemon.
///
/// Lifecycle of an acquire:
///   1. A pooled connection exists and is under its in-flight limit: peek
///      for half-open (the peer may have closed it while idle). Healthy ->
///      reuse; dead -> count half_open_detected, close, transparently
///      re-dial once (counted in both dials and redials).
///   2. No pooled connection: evict the LRU idle connection when at the
///      cap, then dial fresh.
///   3. The pooled connection is at max_in_flight: reject with
///      FailedPrecondition (callers treat it as "partner busy" back-off).
class ConnectionPool {
 public:
  /// `clock_ms` supplies the monotonic time used for idle accounting
  /// (the daemon passes the event loop's NowMs).
  ConnectionPool(ConnectionPoolOptions options, std::function<uint64_t()> clock_ms);

  /// Leases a connection to 127.0.0.1:`port`. On OK, `*out_fd` is a
  /// connected blocking socket and `*out_reused` says whether it came from
  /// the pool. Every successful Acquire must be paired with a Release.
  Status Acquire(uint16_t port, int* out_fd, bool* out_reused);

  /// Ends a lease. `healthy=false` closes the connection (the caller hit an
  /// IO error on it); otherwise it returns to the pool with a fresh idle
  /// timestamp.
  void Release(uint16_t port, bool healthy);

  /// Counts the caller-driven retry dial after a first-write failure on a
  /// reused connection (the Acquire that follows does the dialing; this
  /// marks it as a redial rather than an ordinary dial).
  void NoteRedial() { ++stats_.redials; }

  /// Closes idle connections older than idle_timeout_ms. Returns how many.
  size_t SweepIdle();

  /// Closes every idle pooled connection (drain / shutdown). Connections
  /// currently leased are left to their Release.
  size_t CloseAll();

  size_t open_connections() const { return lru_.size(); }
  const ConnectionPoolStats& stats() const { return stats_; }

 private:
  struct Pooled {
    UniqueFd fd;
    uint16_t port = 0;
    uint32_t in_flight = 0;
    uint64_t last_used_ms = 0;
  };
  using LruList = std::list<Pooled>;

  /// True when the socket shows EOF, an error, or unsolicited bytes on a
  /// non-blocking peek — all grounds for not trusting it with a meeting.
  static bool LooksDead(int fd);
  void Erase(LruList::iterator it);
  Status DialInto(uint16_t port, int* out_fd);

  ConnectionPoolOptions options_;
  std::function<uint64_t()> clock_ms_;
  /// Front = most recently used. Iterators are stable across splices.
  LruList lru_;
  std::unordered_map<uint16_t, LruList::iterator> by_port_;
  ConnectionPoolStats stats_;
};

}  // namespace net
}  // namespace jxp

#endif  // JXP_NET_CONNECTION_POOL_H_
