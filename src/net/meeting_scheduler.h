#ifndef JXP_NET_MEETING_SCHEDULER_H_
#define JXP_NET_MEETING_SCHEDULER_H_

#include <cstdint>
#include <functional>
#include <map>

#include "common/random.h"
#include "net/event_loop.h"
#include "net/peer_directory.h"

namespace jxp {
namespace net {

struct MeetingSchedulerOptions {
  /// Autonomous mode master switch: when false the daemon never constructs
  /// a scheduler and meetings happen only on kMeetCommand (driver replay).
  bool enabled = false;
  /// Start ticking as soon as the daemon starts. When false the scheduler
  /// sits in kIdle until a kStartRequest control frame arrives, which lets
  /// a driver bring a whole cluster up before any meeting fires.
  bool autostart = false;
  /// Base cadence between meeting attempts.
  uint64_t interval_ms = 50;
  /// Uniform jitter in [0, jitter_ms] added to every interval, drawn from
  /// the scheduler's seeded Random stream. Jitter desynchronizes daemons
  /// that started together (the thundering-herd of simultaneous mutual
  /// dials resolves by timeout, so fewer collisions = more meetings/sec).
  uint64_t jitter_ms = 25;
  /// Per-partner back-off after a decline, dial failure, or busy pool
  /// connection: first skip lasts backoff_initial_ms, doubling (times
  /// backoff_multiplier) up to backoff_max_ms; any success clears it.
  uint64_t backoff_initial_ms = 100;
  double backoff_multiplier = 2.0;
  uint64_t backoff_max_ms = 2000;
};

/// Autonomous-mode state machine (DESIGN.md §6l):
///
///   kIdle --Start()--> kRunning <--Start()/Pause()--> kPaused
///     |                   |                              |
///     +-------------------+----------Drain()------------+--> kDrained
///
/// kDrained is terminal: a drained scheduler never meets again (the daemon
/// pairs it with quiesce, so inbound meetings decline too).
enum class SchedulerState : uint8_t {
  kIdle = 0,
  kRunning = 1,
  kPaused = 2,
  kDrained = 3,
};

struct MeetingSchedulerStats {
  /// Timer firings (every tick either attempts a meeting or skips).
  uint64_t ticks = 0;
  uint64_t meetings_started = 0;
  uint64_t meetings_applied = 0;
  uint64_t declines = 0;
  /// Dial failures + mid-meeting failures, as reported by the meet callback.
  uint64_t failures = 0;
  /// Partner's pooled connection at its in-flight limit.
  uint64_t busy = 0;
  /// Ticks with no live partner in the directory.
  uint64_t skips_no_partner = 0;
  /// Ticks whose drawn partner was inside its back-off window.
  uint64_t skips_backoff = 0;
  /// Back-off windows armed (declines + failures + busy).
  uint64_t backoffs_armed = 0;
};

/// What one attempted meeting came to, from the scheduler's point of view.
/// The daemon maps MeetPeer outcomes (and pool rejections) onto this.
enum class MeetOutcome {
  kApplied,     // Meeting completed (possibly salvaged under chaos).
  kDeclined,    // Partner is quiesced.
  kBusy,        // Connection at in-flight limit; try again later.
  kDialFailed,  // Partner unreachable.
  kFailed,      // Mid-meeting IO/protocol failure.
};

/// Drives a daemon's autonomous meeting cadence on the event-loop timing
/// wheel (DESIGN.md §6l): each tick draws the next partner uniformly from
/// the live directory through a dedicated seeded Random stream, skips
/// partners inside their back-off window, runs the meeting via the
/// injected callback, and re-arms itself interval+jitter later. Single
/// threaded on the loop, like the daemon that owns it.
class MeetingScheduler {
 public:
  using MeetFn = std::function<MeetOutcome(const PeerDirectory::Entry&)>;

  /// `loop` and `directory` must outlive the scheduler. `meet` runs one
  /// outbound meeting with the drawn partner (the daemon binds MeetPeer).
  MeetingScheduler(EventLoop* loop, const PeerDirectory* directory,
                   MeetingSchedulerOptions options, uint64_t rng_seed, MeetFn meet);
  ~MeetingScheduler();
  MeetingScheduler(const MeetingScheduler&) = delete;
  MeetingScheduler& operator=(const MeetingScheduler&) = delete;

  /// kIdle/kPaused -> kRunning: arms the next tick. No-op when already
  /// running; a drained scheduler stays drained.
  void Start();
  /// kRunning -> kPaused: cancels the pending tick. Meetings stop but the
  /// daemon keeps serving inbound traffic and pooled connections stay warm.
  void Pause();
  /// Terminal stop. Cancels the pending tick; with the daemon's quiesce
  /// this completes drain-and-quiesce (no new meetings out, declines in).
  void Drain();

  SchedulerState state() const { return state_; }
  const MeetingSchedulerStats& stats() const { return stats_; }

 private:
  struct Backoff {
    uint64_t until_ms = 0;
    uint64_t window_ms = 0;
  };

  void Arm();
  void Tick();
  /// interval_ms plus a jitter draw from the Random stream.
  uint64_t NextDelayMs();
  void ArmBackoff(uint32_t partner_id);

  EventLoop* loop_;
  const PeerDirectory* directory_;
  MeetingSchedulerOptions options_;
  Random rng_;
  MeetFn meet_;
  SchedulerState state_ = SchedulerState::kIdle;
  EventLoop::TimerId timer_ = 0;
  /// Ordered so back-off iteration (if ever needed) is deterministic.
  std::map<uint32_t, Backoff> backoff_;
  MeetingSchedulerStats stats_;
};

}  // namespace net
}  // namespace jxp

#endif  // JXP_NET_MEETING_SCHEDULER_H_
