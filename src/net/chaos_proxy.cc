#include "net/chaos_proxy.h"

#include <errno.h>
#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <utility>

#include "net/net_protocol.h"
#include "wire/wire_format.h"

namespace jxp {
namespace net {

namespace {

/// Clears O_NONBLOCK (accepted sockets come back non-blocking; the relay
/// pumps are blocking threads).
void SetBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags & ~O_NONBLOCK);
}

/// Reads exactly `n` bytes unless EOF/error cuts the stream short; returns
/// the bytes actually read.
size_t ReadUpTo(int fd, size_t n, std::vector<uint8_t>* out) {
  out->clear();
  out->reserve(n);
  uint8_t buf[16384];
  while (out->size() < n) {
    const size_t want = std::min(sizeof(buf), n - out->size());
    const ssize_t got = ::read(fd, buf, want);
    if (got < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (got == 0) break;
    out->insert(out->end(), buf, buf + got);
  }
  return out->size();
}

bool WriteAllRaw(int fd, std::span<const uint8_t> data) {
  size_t written = 0;
  while (written < data.size()) {
    const ssize_t n = ::write(fd, data.data() + written, data.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    written += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

ChaosProxy::ChaosProxy(ChaosProxyOptions options)
    : options_(std::move(options)), rng_(options_.seed) {}

ChaosProxy::~ChaosProxy() { Stop(); }

Status ChaosProxy::Start() {
  if (Status status =
          CreateLoopbackListener(options_.listen_port, &listener_, &bound_port_);
      !status.ok()) {
    return status;
  }
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void ChaosProxy::Stop() {
  if (stopping_.exchange(true)) {
    if (accept_thread_.joinable()) accept_thread_.join();
    return;
  }
  if (listener_.valid()) ::shutdown(listener_.get(), SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::unique_ptr<Relay>> relays;
  {
    std::lock_guard<std::mutex> lock(mu_);
    relays.swap(relays_);
  }
  for (auto& relay : relays) {
    ShutdownBoth(relay.get());
    if (relay->forward.joinable()) relay->forward.join();
    if (relay->backward.joinable()) relay->backward.join();
  }
  listener_.reset();
}

void ChaosProxy::ShutdownBoth(Relay* relay) {
  if (relay->client.valid()) ::shutdown(relay->client.get(), SHUT_RDWR);
  if (relay->server.valid()) ::shutdown(relay->server.get(), SHUT_RDWR);
}

void ChaosProxy::AcceptLoop() {
  while (!stopping_.load()) {
    pollfd pfd{listener_.get(), POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 200);
    if (stopping_.load()) return;
    if (ready <= 0) continue;
    UniqueFd client;
    if (!AcceptConnection(listener_.get(), &client).ok() || !client) continue;
    UniqueFd server;
    if (!ConnectLoopback(options_.target_port, &server).ok()) {
      continue;  // Target gone; refuse by dropping the client.
    }
    SetBlocking(client.get());
    connections_.fetch_add(1);
    auto relay = std::make_unique<Relay>();
    relay->client = std::move(client);
    relay->server = std::move(server);
    Relay* raw = relay.get();
    const int client_fd = raw->client.get();
    const int server_fd = raw->server.get();
    raw->forward = std::thread([this, raw, client_fd, server_fd] {
      Pump(raw, client_fd, server_fd);
    });
    raw->backward = std::thread([this, raw, client_fd, server_fd] {
      Pump(raw, server_fd, client_fd);
    });
    std::lock_guard<std::mutex> lock(mu_);
    relays_.push_back(std::move(relay));
  }
}

ChaosProxy::BlobFault ChaosProxy::DrawFault() {
  std::lock_guard<std::mutex> lock(mu_);
  const double u = rng_.NextDouble();
  double edge = options_.plan.message_drop_probability;
  if (u < edge) return BlobFault::kDrop;
  edge += options_.plan.truncation_probability;
  if (u < edge) return BlobFault::kTruncate;
  edge += options_.plan.corruption_probability;
  if (u < edge) return BlobFault::kCorrupt;
  return BlobFault::kNone;
}

uint64_t ChaosProxy::DrawBitIndex(uint64_t num_bits) {
  std::lock_guard<std::mutex> lock(mu_);
  return rng_.NextBounded(num_bits);
}

void ChaosProxy::Pump(Relay* relay, int src, int dst) {
  std::vector<uint8_t> header(wire::kFrameHeaderBytes);
  std::vector<uint8_t> payload;
  std::vector<uint8_t> blob;
  while (!stopping_.load()) {
    // One protocol frame: 16-byte header, then the announced payload.
    // Forwarded verbatim — the proxy never re-serializes, so clean paths
    // are byte-identical to a direct connection.
    if (ReadUpTo(src, header.size(), &header) != wire::kFrameHeaderBytes) break;
    if (header[0] != wire::kMagic0 || header[1] != wire::kMagic1) {
      // Not a frame boundary; the stream is garbage. Pass the bytes on and
      // stop relaying structurally (the receiver's assembler will reject).
      (void)WriteAllRaw(dst, header);
      break;
    }
    uint32_t payload_len = 0;
    for (int i = 0; i < 4; ++i) {
      payload_len |= static_cast<uint32_t>(header[4 + i]) << (8 * i);
    }
    if (payload_len > (1u << 26)) {
      (void)WriteAllRaw(dst, header);
      break;
    }
    const bool payload_complete = ReadUpTo(src, payload_len, &payload) == payload_len;
    if (!WriteAllRaw(dst, header) || !WriteAllRaw(dst, payload)) break;
    if (!payload_complete) break;
    frames_forwarded_.fetch_add(1);

    const uint8_t type = header[3];
    const bool is_blob_header =
        type == static_cast<uint8_t>(NetMessageType::kMeetingOffer) ||
        type == static_cast<uint8_t>(NetMessageType::kMeetingReply);
    if (!is_blob_header) continue;
    MeetingHeader announce;
    if (!ParseMeetingHeader(payload, &announce).ok()) continue;

    // The next announce.payload_bytes raw bytes are the fault target.
    const size_t got = ReadUpTo(src, announce.payload_bytes, &blob);
    if (got < announce.payload_bytes) {
      // Upstream died mid-blob on its own; pass through what arrived.
      (void)WriteAllRaw(dst, blob);
      break;
    }
    switch (blob.empty() ? BlobFault::kNone : DrawFault()) {
      case BlobFault::kDrop:
        blobs_dropped_.fetch_add(1);
        ShutdownBoth(relay);
        return;
      case BlobFault::kTruncate: {
        blobs_truncated_.fetch_add(1);
        // Keep a strict prefix so the receiver always sees EOF mid-blob.
        const double keep = std::clamp(options_.plan.truncation_keep_fraction, 0.0, 1.0);
        const size_t kept = std::min(
            blob.size() - 1, static_cast<size_t>(std::floor(keep * blob.size())));
        (void)WriteAllRaw(dst, std::span<const uint8_t>(blob.data(), kept));
        ShutdownBoth(relay);
        return;
      }
      case BlobFault::kCorrupt: {
        blobs_corrupted_.fetch_add(1);
        const uint64_t bit = DrawBitIndex(static_cast<uint64_t>(blob.size()) * 8);
        blob[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
        if (!WriteAllRaw(dst, blob)) return;
        break;
      }
      case BlobFault::kNone:
        if (!WriteAllRaw(dst, blob)) return;
        if (!blob.empty()) blobs_forwarded_.fetch_add(1);
        break;
    }
  }
}

ChaosProxyStats ChaosProxy::stats() const {
  ChaosProxyStats stats;
  stats.connections = connections_.load();
  stats.frames_forwarded = frames_forwarded_.load();
  stats.blobs_forwarded = blobs_forwarded_.load();
  stats.blobs_dropped = blobs_dropped_.load();
  stats.blobs_truncated = blobs_truncated_.load();
  stats.blobs_corrupted = blobs_corrupted_.load();
  return stats;
}

}  // namespace net
}  // namespace jxp
