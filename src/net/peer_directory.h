#ifndef JXP_NET_PEER_DIRECTORY_H_
#define JXP_NET_PEER_DIRECTORY_H_

#include <cstdint>
#include <map>
#include <vector>

#include "common/random.h"
#include "net/net_protocol.h"

namespace jxp {
namespace net {

/// Each daemon's view of who else is in the cluster (DESIGN.md §6k): a seed
/// list plus whatever gossip (kPeerExchange) and direct contact teach it.
///
/// Rules, in priority order:
///   1. Departure is sticky. A peer that said Goodbye (or was gossiped as
///      departed) stays a tombstone; *gossip can never resurrect it* — only
///      hearing from the peer itself (ObserveDirect) clears the tombstone.
///      Gossip is second-hand and unordered: a stale "alive" rumor must not
///      undo a first-hand departure.
///   2. Freshness wins among rumors. Entries keep the smallest age seen;
///      gossip older than the staleness horizon is discarded outright
///      (anything that old will be evicted immediately anyway, and
///      accepting it would let an evicted tombstone sneak back in as live).
///   3. Eviction forgets only the living. EvictStale removes live entries
///      not heard from within `staleness_ms`; tombstones are retained for
///      the directory's lifetime (bounded by cluster size), which is what
///      makes rule 1 enforceable.
///
/// Clocks never cross process boundaries: gossip carries *ages* relative to
/// the sender, rebased onto the local clock on receipt.
class PeerDirectory {
 public:
  explicit PeerDirectory(uint32_t self_id, uint64_t staleness_ms = 30000)
      : self_id_(self_id), staleness_ms_(staleness_ms) {}

  struct Entry {
    uint32_t peer_id = 0;
    uint16_t port = 0;
    /// Local-clock instant the peer was last heard of (possibly via rumor).
    uint64_t last_heard_ms = 0;
    bool departed = false;
  };

  /// First-hand contact (Hello, meeting, control introduction): refreshes
  /// the entry and clears any tombstone.
  void ObserveDirect(uint32_t peer_id, uint16_t port, uint64_t now_ms);

  /// Second-hand rumor from a kPeerExchange. `entry.age_ms` is relative to
  /// the sender; entries about self, older rumors, and rumors about
  /// tombstoned peers are ignored. A `departed` rumor tombstones a live
  /// entry (departure propagates through gossip; liveness does not).
  void ObserveGossip(const GossipEntry& entry, uint64_t now_ms);

  /// First-hand departure (Goodbye frame, or connection refused on dial).
  void MarkDeparted(uint32_t peer_id, uint64_t now_ms);

  /// Removes live entries not heard from within the staleness horizon.
  /// Returns how many were evicted. Tombstones are never removed.
  size_t EvictStale(uint64_t now_ms);

  /// A bounded sample of the directory for a kPeerExchange frame, ages
  /// rebased to `now_ms`. Tombstones are included so departures propagate.
  /// Sampling is deterministic given the Random stream.
  std::vector<GossipEntry> GossipSample(uint64_t now_ms, size_t max_entries,
                                        Random& rng) const;

  /// Live (non-departed) peers, ascending id — deterministic.
  std::vector<Entry> AlivePeers() const;

  /// Uniformly random live peer; false when none.
  bool SelectPartner(Random& rng, Entry* out) const;

  const Entry* Find(uint32_t peer_id) const;
  size_t size() const { return entries_.size(); }
  size_t num_alive() const;
  uint64_t staleness_ms() const { return staleness_ms_; }

 private:
  uint32_t self_id_;
  uint64_t staleness_ms_;
  /// Ordered map: iteration order (and thus sampling and partner selection
  /// under a fixed Random stream) is deterministic.
  std::map<uint32_t, Entry> entries_;
};

}  // namespace net
}  // namespace jxp

#endif  // JXP_NET_PEER_DIRECTORY_H_
