#include "net/socket_util.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <string>

namespace jxp {
namespace net {

namespace {

Status ErrnoStatus(const char* what, int err) {
  return Status::IOError(std::string(what) + ": " + strerror(err));
}

sockaddr_in LoopbackAddr(uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  return addr;
}

}  // namespace

void UniqueFd::reset(int fd) {
  if (fd_ >= 0) ::close(fd_);
  fd_ = fd;
}

Status SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return ErrnoStatus("fcntl(F_GETFL)", errno);
  if (::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return ErrnoStatus("fcntl(F_SETFL)", errno);
  }
  return Status::OK();
}

Status SetNoDelay(int fd) {
  const int one = 1;
  if (::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one)) < 0) {
    return ErrnoStatus("setsockopt(TCP_NODELAY)", errno);
  }
  return Status::OK();
}

Status CreateLoopbackListener(uint16_t port, UniqueFd* out, uint16_t* bound_port) {
  UniqueFd fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd) return ErrnoStatus("socket", errno);
  const int one = 1;
  if (::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) < 0) {
    return ErrnoStatus("setsockopt(SO_REUSEADDR)", errno);
  }
  sockaddr_in addr = LoopbackAddr(port);
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    return ErrnoStatus("bind", errno);
  }
  if (::listen(fd.get(), SOMAXCONN) < 0) return ErrnoStatus("listen", errno);
  if (Status status = SetNonBlocking(fd.get()); !status.ok()) return status;
  if (bound_port != nullptr) {
    sockaddr_in actual{};
    socklen_t len = sizeof(actual);
    if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&actual), &len) < 0) {
      return ErrnoStatus("getsockname", errno);
    }
    *bound_port = ntohs(actual.sin_port);
  }
  *out = std::move(fd);
  return Status::OK();
}

Status AcceptConnection(int listener_fd, UniqueFd* out) {
  out->reset();
  const int fd = ::accept4(listener_fd, nullptr, nullptr, SOCK_CLOEXEC);
  if (fd < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK) return Status::OK();
    if (errno == EINTR || errno == ECONNABORTED) return Status::OK();
    return ErrnoStatus("accept", errno);
  }
  UniqueFd accepted(fd);
  if (Status status = SetNonBlocking(fd); !status.ok()) return status;
  (void)SetNoDelay(fd);  // Best-effort.
  *out = std::move(accepted);
  return Status::OK();
}

Status ConnectLoopback(uint16_t port, UniqueFd* out) {
  UniqueFd fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd) return ErrnoStatus("socket", errno);
  sockaddr_in addr = LoopbackAddr(port);
  int rc;
  do {
    rc = ::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) return ErrnoStatus("connect", errno);
  (void)SetNoDelay(fd.get());
  *out = std::move(fd);
  return Status::OK();
}

Status StartConnectLoopback(uint16_t port, UniqueFd* out) {
  UniqueFd fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC | SOCK_NONBLOCK, 0));
  if (!fd) return ErrnoStatus("socket", errno);
  sockaddr_in addr = LoopbackAddr(port);
  if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 &&
      errno != EINPROGRESS) {
    return ErrnoStatus("connect", errno);
  }
  (void)SetNoDelay(fd.get());
  *out = std::move(fd);
  return Status::OK();
}

Status FinishConnect(int fd) {
  int err = 0;
  socklen_t len = sizeof(err);
  if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) < 0) {
    return ErrnoStatus("getsockopt(SO_ERROR)", errno);
  }
  if (err != 0) return ErrnoStatus("connect", err);
  return Status::OK();
}

Status WriteAll(int fd, std::span<const uint8_t> data) {
  size_t written = 0;
  while (written < data.size()) {
    const ssize_t n = ::write(fd, data.data() + written, data.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("write", errno);
    }
    written += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status ReadExact(int fd, uint8_t* buf, size_t n) {
  size_t done = 0;
  while (done < n) {
    const ssize_t got = ::read(fd, buf + done, n - done);
    if (got < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("read", errno);
    }
    if (got == 0) return Status::IOError("unexpected EOF");
    done += static_cast<size_t>(got);
  }
  return Status::OK();
}

}  // namespace net
}  // namespace jxp
