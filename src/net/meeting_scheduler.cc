#include "net/meeting_scheduler.h"

#include <algorithm>
#include <utility>

namespace jxp {
namespace net {

MeetingScheduler::MeetingScheduler(EventLoop* loop, const PeerDirectory* directory,
                                   MeetingSchedulerOptions options, uint64_t rng_seed,
                                   MeetFn meet)
    : loop_(loop),
      directory_(directory),
      options_(options),
      rng_(rng_seed),
      meet_(std::move(meet)) {}

MeetingScheduler::~MeetingScheduler() {
  if (timer_ != 0) loop_->CancelTimer(timer_);
}

void MeetingScheduler::Start() {
  if (state_ == SchedulerState::kDrained || state_ == SchedulerState::kRunning) return;
  state_ = SchedulerState::kRunning;
  Arm();
}

void MeetingScheduler::Pause() {
  if (state_ != SchedulerState::kRunning) return;
  state_ = SchedulerState::kPaused;
  if (timer_ != 0) {
    loop_->CancelTimer(timer_);
    timer_ = 0;
  }
}

void MeetingScheduler::Drain() {
  if (state_ == SchedulerState::kDrained) return;
  state_ = SchedulerState::kDrained;
  if (timer_ != 0) {
    loop_->CancelTimer(timer_);
    timer_ = 0;
  }
}

uint64_t MeetingScheduler::NextDelayMs() {
  uint64_t delay = options_.interval_ms;
  if (options_.jitter_ms > 0) delay += rng_.NextBounded(options_.jitter_ms + 1);
  return std::max<uint64_t>(delay, 1);
}

void MeetingScheduler::Arm() {
  timer_ = loop_->AddTimer(NextDelayMs(), [this] {
    timer_ = 0;
    Tick();
  });
}

void MeetingScheduler::ArmBackoff(uint32_t partner_id) {
  Backoff& backoff = backoff_[partner_id];
  backoff.window_ms = backoff.window_ms == 0
                          ? options_.backoff_initial_ms
                          : std::min<uint64_t>(
                                static_cast<uint64_t>(static_cast<double>(
                                    backoff.window_ms) * options_.backoff_multiplier),
                                options_.backoff_max_ms);
  backoff.until_ms = loop_->NowMs() + backoff.window_ms;
  ++stats_.backoffs_armed;
}

void MeetingScheduler::Tick() {
  if (state_ != SchedulerState::kRunning) return;
  ++stats_.ticks;

  PeerDirectory::Entry partner;
  if (!directory_->SelectPartner(rng_, &partner)) {
    ++stats_.skips_no_partner;
    Arm();
    return;
  }
  const auto backoff = backoff_.find(partner.peer_id);
  if (backoff != backoff_.end() && loop_->NowMs() < backoff->second.until_ms) {
    ++stats_.skips_backoff;
    Arm();
    return;
  }

  ++stats_.meetings_started;
  switch (meet_(partner)) {
    case MeetOutcome::kApplied:
      ++stats_.meetings_applied;
      backoff_.erase(partner.peer_id);
      break;
    case MeetOutcome::kDeclined:
      ++stats_.declines;
      ArmBackoff(partner.peer_id);
      break;
    case MeetOutcome::kBusy:
      ++stats_.busy;
      ArmBackoff(partner.peer_id);
      break;
    case MeetOutcome::kDialFailed:
    case MeetOutcome::kFailed:
      ++stats_.failures;
      ArmBackoff(partner.peer_id);
      break;
  }
  // The meeting (or the daemon handling control frames in between) may have
  // drained us; only a still-running scheduler re-arms.
  if (state_ == SchedulerState::kRunning) Arm();
}

}  // namespace net
}  // namespace jxp
