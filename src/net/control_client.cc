#include "net/control_client.h"

#include <sys/socket.h>
#include <sys/time.h>

#include <string>

namespace jxp {
namespace net {

Status ControlClient::Connect(uint16_t port, uint64_t io_timeout_ms) {
  fd_.reset();
  if (Status status = ConnectLoopback(port, &fd_); !status.ok()) return status;
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(io_timeout_ms / 1000);
  tv.tv_usec = static_cast<suseconds_t>((io_timeout_ms % 1000) * 1000);
  ::setsockopt(fd_.get(), SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd_.get(), SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  return Status::OK();
}

Status ControlClient::RoundTrip(const std::vector<uint8_t>& request,
                                NetMessageType expect,
                                std::vector<uint8_t>* payload) {
  if (!fd_.valid()) return Status::FailedPrecondition("control client not connected");
  if (Status status = WriteAll(fd_.get(), request); !status.ok()) return status;
  uint8_t type = 0;
  if (Status status = ReadFrameBlocking(fd_.get(), &type, payload); !status.ok()) {
    return status;
  }
  if (type != static_cast<uint8_t>(expect)) {
    return Status::Internal("unexpected control reply type " + std::to_string(type));
  }
  return Status::OK();
}

Status ControlClient::GetStatus(StatusReplyMessage* out) {
  std::vector<uint8_t> request;
  AppendEmpty(NetMessageType::kStatusRequest, request);
  std::vector<uint8_t> payload;
  if (Status status = RoundTrip(request, NetMessageType::kStatusReply, &payload);
      !status.ok()) {
    return status;
  }
  return ParseStatusReply(payload, out);
}

Status ControlClient::Checkpoint() {
  std::vector<uint8_t> request;
  AppendEmpty(NetMessageType::kCheckpointRequest, request);
  std::vector<uint8_t> payload;
  if (Status status = RoundTrip(request, NetMessageType::kCheckpointReply, &payload);
      !status.ok()) {
    return status;
  }
  AckMessage ack;
  if (Status status = ParseAck(payload, &ack); !status.ok()) return status;
  if (!ack.ok) return Status::Internal("checkpoint failed: " + ack.detail);
  return Status::OK();
}

Status ControlClient::Quiesce() {
  std::vector<uint8_t> request;
  AppendEmpty(NetMessageType::kQuiesceRequest, request);
  std::vector<uint8_t> payload;
  if (Status status = RoundTrip(request, NetMessageType::kQuiesceReply, &payload);
      !status.ok()) {
    return status;
  }
  AckMessage ack;
  if (Status status = ParseAck(payload, &ack); !status.ok()) return status;
  if (!ack.ok) return Status::Internal("quiesce failed: " + ack.detail);
  return Status::OK();
}

Status ControlClient::Meet(uint32_t partner_id, uint16_t port, MeetResultMessage* out) {
  MeetCommandMessage command;
  command.partner_id = partner_id;
  command.port = port;
  std::vector<uint8_t> request;
  AppendMeetCommand(command, request);
  std::vector<uint8_t> payload;
  if (Status status = RoundTrip(request, NetMessageType::kMeetResult, &payload);
      !status.ok()) {
    return status;
  }
  return ParseMeetResult(payload, out);
}

Status ControlClient::AckRoundTrip(NetMessageType request_type,
                                   NetMessageType reply_type, const char* what) {
  std::vector<uint8_t> request;
  AppendEmpty(request_type, request);
  std::vector<uint8_t> payload;
  if (Status status = RoundTrip(request, reply_type, &payload); !status.ok()) {
    return status;
  }
  AckMessage ack;
  if (Status status = ParseAck(payload, &ack); !status.ok()) return status;
  if (!ack.ok) return Status::Internal(std::string(what) + " failed: " + ack.detail);
  return Status::OK();
}

Status ControlClient::StartScheduler() {
  return AckRoundTrip(NetMessageType::kStartRequest, NetMessageType::kStartReply,
                      "start");
}

Status ControlClient::PauseScheduler() {
  return AckRoundTrip(NetMessageType::kPauseRequest, NetMessageType::kPauseReply,
                      "pause");
}

Status ControlClient::Drain() {
  return AckRoundTrip(NetMessageType::kDrainRequest, NetMessageType::kDrainReply,
                      "drain");
}

Status ControlClient::GetNetStats(NetStatsReplyMessage* out) {
  std::vector<uint8_t> request;
  AppendEmpty(NetMessageType::kNetStatsRequest, request);
  std::vector<uint8_t> payload;
  if (Status status = RoundTrip(request, NetMessageType::kNetStatsReply, &payload);
      !status.ok()) {
    return status;
  }
  return ParseNetStatsReply(payload, out);
}

Status ControlClient::GetScores(ScoresReplyMessage* out) {
  std::vector<uint8_t> request;
  AppendEmpty(NetMessageType::kScoresRequest, request);
  std::vector<uint8_t> payload;
  if (Status status = RoundTrip(request, NetMessageType::kScoresReply, &payload);
      !status.ok()) {
    return status;
  }
  return ParseScoresReply(payload, out);
}

}  // namespace net
}  // namespace jxp
