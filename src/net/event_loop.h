#ifndef JXP_NET_EVENT_LOOP_H_
#define JXP_NET_EVENT_LOOP_H_

#include <array>
#include <chrono>
#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "net/socket_util.h"

namespace jxp {
namespace net {

/// A single-threaded, level-triggered epoll reactor with a hashed timing
/// wheel (DESIGN.md §6k). One EventLoop drives one PeerDaemon: readiness
/// callbacks own all protocol state, so the daemon needs no locks.
///
/// Level-triggered on purpose: callbacks may leave bytes unread (e.g. the
/// frame assembler stops at a frame boundary before a blob handoff) and the
/// next poll re-reports readiness — no starvation bookkeeping.
///
/// Timers live on a 256-slot wheel keyed by deadline tick (4 ms
/// granularity); each slot holds the timers hashing to it with their full
/// deadline, so a sweep fires exactly the expired ones and re-parks the
/// rest (the classic "rounds" check, expressed as a deadline comparison).
/// Retry/backoff deadlines in the daemon are tens of milliseconds and up,
/// so 4 ms granularity is invisible.
class EventLoop {
 public:
  using FdCallback = std::function<void(uint32_t epoll_events)>;
  using TimerCallback = std::function<void()>;
  using TimerId = uint64_t;

  static constexpr uint64_t kTickMs = 4;
  static constexpr size_t kWheelSlots = 256;

  EventLoop();
  ~EventLoop();
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Registers `fd` for `events` (EPOLLIN/EPOLLOUT/...). The callback runs
  /// on every poll where the fd is ready, with the ready mask. The loop
  /// never closes registered fds; ownership stays with the caller.
  Status Add(int fd, uint32_t events, FdCallback callback);
  /// Changes the interest mask of a registered fd.
  Status Modify(int fd, uint32_t events);
  /// Unregisters `fd`. Safe to call from inside any callback (including the
  /// fd's own): dispatch re-checks registration before each callback.
  Status Remove(int fd);
  bool IsRegistered(int fd) const { return fds_.count(fd) != 0; }

  /// Schedules `callback` to fire once, `delay_ms` from now. Returns an id
  /// for CancelTimer. Safe to call from inside callbacks (including timer
  /// callbacks re-arming themselves).
  TimerId AddTimer(uint64_t delay_ms, TimerCallback callback);
  /// Cancels a pending timer; a no-op when the timer already fired.
  void CancelTimer(TimerId id);
  size_t pending_timers() const { return pending_timers_; }

  /// Milliseconds of monotonic time since loop construction. All timer
  /// deadlines are in this clock.
  uint64_t NowMs() const;

  /// Polls once: waits up to `max_wait_ms` (clipped by the next timer
  /// deadline), dispatches ready fds, then fires expired timers. Returns
  /// false when Stop() was requested.
  bool RunOnce(int max_wait_ms);
  /// RunOnce until Stop().
  void Run();
  /// Makes Run()/RunOnce() return. Safe from any callback; also safe from
  /// another thread or a signal handler via the wakeup fd (write is
  /// async-signal-safe).
  void Stop();
  bool stopped() const { return stopped_; }
  /// The fd a signal handler may write a byte to, to wake and stop the
  /// loop. (The daemon's SIGTERM handler writes here.)
  int wakeup_fd() const { return wakeup_writer_.get(); }

 private:
  struct Timer {
    TimerId id = 0;
    uint64_t deadline_ms = 0;
    TimerCallback callback;
  };

  size_t SlotOf(uint64_t deadline_ms) const {
    return static_cast<size_t>(deadline_ms / kTickMs) % kWheelSlots;
  }
  /// Fires every timer with deadline <= now, sweeping the slots between the
  /// last processed tick and now's tick.
  void FireExpiredTimers(uint64_t now_ms);
  /// Milliseconds until the earliest pending deadline (0 when overdue);
  /// `fallback_ms` when no timers are pending.
  int TimeoutUntilNextTimer(uint64_t now_ms, int fallback_ms) const;

  UniqueFd epoll_;
  UniqueFd wakeup_reader_;
  UniqueFd wakeup_writer_;
  std::unordered_map<int, FdCallback> fds_;
  std::array<std::vector<Timer>, kWheelSlots> wheel_;
  size_t pending_timers_ = 0;
  uint64_t next_timer_id_ = 1;
  uint64_t last_tick_ = 0;
  bool stopped_ = false;
  std::chrono::steady_clock::time_point epoch_;
};

}  // namespace net
}  // namespace jxp

#endif  // JXP_NET_EVENT_LOOP_H_
