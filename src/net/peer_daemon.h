#ifndef JXP_NET_PEER_DAEMON_H_
#define JXP_NET_PEER_DAEMON_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "core/jxp_peer.h"
#include "net/connection_pool.h"
#include "net/event_loop.h"
#include "net/meeting_scheduler.h"
#include "net/net_protocol.h"
#include "net/peer_directory.h"
#include "net/socket_util.h"
#include "wire/frame_assembler.h"

namespace jxp {
namespace net {

struct PeerDaemonOptions {
  /// Port to bind (0 = ephemeral; read back via bound_port()).
  uint16_t listen_port = 0;
  /// Port announced to other peers in Hello/gossip. 0 = the bound port.
  /// Under the chaos proxy this is the proxy's port, so meeting traffic
  /// routes through the fault injector while control stays direct.
  uint16_t advertised_port = 0;
  /// Initial directory contents (the seed list).
  std::vector<GossipEntry> seed_peers;
  /// Checkpoint target of kCheckpointRequest and the SIGTERM path; empty =
  /// checkpointing disabled.
  std::string state_path;
  /// Autonomous meeting mode (DESIGN.md §6l). scheduler.enabled=false is
  /// the driver-replay mode the oracle bit-identity comparison uses:
  /// meetings happen only on kMeetCommand.
  MeetingSchedulerOptions scheduler;
  /// Outbound connection reuse (meetings + gossip share pooled connections
  /// keyed by partner port). Always on — the pool with max_connections=0 is
  /// not a supported configuration; use a large idle_timeout instead.
  ConnectionPoolOptions pool;
  /// Gossip (kPeerExchange) cadence; 0 = off. Staleness eviction runs on
  /// the same tick.
  uint64_t gossip_interval_ms = 0;
  uint64_t directory_staleness_ms = 30000;
  /// Deadline of each blocking outbound dial (meetings, gossip) and of
  /// reply writes. A two-daemon dial collision resolves as one side's
  /// timeout (counted as a failed meeting), never a deadlock.
  uint64_t io_timeout_ms = 5000;
  /// Seed of the daemon's partner/gossip sampling stream.
  uint64_t rng_seed = 1;
  /// When >= 0, the daemon watches this fd: one readable byte triggers
  /// graceful shutdown (quiesce -> checkpoint -> goodbyes -> loop stop).
  /// The daemon binary points its SIGTERM handler at a self-pipe wired
  /// here; tests write the byte directly.
  int shutdown_fd = -1;
  /// Send best-effort kGoodbye frames to live directory peers on shutdown.
  bool goodbye_on_shutdown = true;
};

/// Plain counters of one daemon's network activity. Mirrored into the
/// jxp.net.* metrics (docs/METRICS.md); kept as plain fields too so the
/// control protocol and tests can read them without a registry snapshot.
struct DaemonStats {
  uint64_t accepts = 0;
  /// Fresh outbound TCP connects (pool dials; reused meetings do not count).
  uint64_t dials = 0;
  /// Fresh connects that failed. A pooled connection found dead between
  /// meetings is NOT a dial failure — it lands in the pool's
  /// half_open_detected/redials accounting (ConnectionPoolStats).
  uint64_t dial_failures = 0;
  uint64_t meetings_initiated = 0;
  uint64_t meetings_accepted = 0;
  uint64_t meetings_declined = 0;
  uint64_t meeting_failures = 0;
  /// Blob transfers that ended early (EOF mid-blob): the receiver salvaged
  /// a prefix. One count per dropped-or-truncated blob.
  uint64_t truncations_detected = 0;
  /// Blobs that arrived complete but failed decoding (bit damage caught by
  /// the frame checksums).
  uint64_t corruptions_detected = 0;
  uint64_t bytes_sent = 0;
  uint64_t bytes_received = 0;
  /// Received bytes that decoding rejected (wasted traffic).
  uint64_t wasted_bytes = 0;
  uint64_t gossip_exchanges = 0;
  uint64_t directory_evictions = 0;
  uint64_t checkpoints = 0;
  uint64_t protocol_errors = 0;
};

/// One JXP peer as a network server (DESIGN.md §6k): owns a JxpPeer, a
/// loopback listener, and a gossip directory; speaks the net protocol over
/// an EventLoop. Single-threaded — every callback runs on the loop thread,
/// so the peer needs no locks.
///
/// Meeting semantics mirror the in-process kMeasured path bit for bit: a
/// meeting is a simultaneous exchange, so BOTH sides serialize their
/// message before applying the other's. The responder therefore encodes
/// its reply before calling ApplyMeetingBytes on the initiator's blob.
class PeerDaemon {
 public:
  PeerDaemon(std::unique_ptr<core::JxpPeer> peer, PeerDaemonOptions options);
  ~PeerDaemon();
  PeerDaemon(const PeerDaemon&) = delete;
  PeerDaemon& operator=(const PeerDaemon&) = delete;

  /// Binds the listener, seeds the directory, registers fds and timers on
  /// `loop`. The loop must outlive the daemon's use.
  Status Start(EventLoop* loop);

  uint16_t bound_port() const { return bound_port_; }
  uint16_t advertised_port() const {
    return options_.advertised_port != 0 ? options_.advertised_port : bound_port_;
  }
  /// Chaos wiring: the proxy can only be created after the daemon bound its
  /// port (the proxy targets it), so the proxied advertised port is set
  /// here, after Start() but before the loop runs.
  void set_advertised_port(uint16_t port) { options_.advertised_port = port; }

  /// One outbound meeting with the daemon at `port`, over a pooled
  /// connection (fresh dial only when none is pooled; blocking IO with
  /// io_timeout_ms). Both the kMeetCommand handler and the autonomous
  /// scheduler land here. A reused connection that turns out dead on the
  /// first write is replaced by one transparent re-dial.
  MeetResultMessage MeetPeer(uint32_t partner_id, uint16_t port);
  /// MeetPeer plus the scheduler's classification of what happened.
  MeetResultMessage MeetPeerClassified(uint32_t partner_id, uint16_t port,
                                       MeetOutcome* outcome);

  /// One push-pull gossip exchange with a random live directory peer, over
  /// the same connection pool as meetings.
  void GossipOnce();

  void Quiesce() { quiesced_ = true; }
  bool quiesced() const { return quiesced_; }
  /// SavePeerState to options.state_path.
  Status Checkpoint();
  /// Graceful shutdown: quiesce, checkpoint, best-effort goodbyes, stop
  /// the loop. Idempotent.
  void BeginShutdown();

  const core::JxpPeer& peer() const { return *peer_; }
  const DaemonStats& stats() const { return stats_; }
  /// Valid after Start(); scheduler() is null when autonomous mode is off.
  const ConnectionPool& pool() const { return *pool_; }
  const MeetingScheduler* scheduler() const { return scheduler_.get(); }
  const PeerDirectory& directory() const { return directory_; }
  PeerDirectory& directory() { return directory_; }
  StatusReplyMessage BuildStatus() const;
  ScoresReplyMessage BuildScores() const;

 private:
  struct Connection {
    UniqueFd fd;
    wire::FrameAssembler assembler;
    /// Non-zero while a meeting blob is being received on this connection.
    size_t blob_expected = 0;
    std::vector<uint8_t> blob;
    uint32_t meeting_sender = 0;
    /// The pending blob will be discarded and declined (daemon quiesced).
    bool decline_meeting = false;
  };

  void OnListenerReadable();
  void OnConnectionReadable(int fd);
  void OnShutdownFdReadable();
  /// Returns false when the connection must be closed (protocol error).
  bool HandleFrame(Connection& conn, uint8_t type, std::span<const uint8_t> payload);
  /// Full blob in hand: decline, or reply-then-apply.
  void OnMeetingBlobComplete(Connection& conn);
  /// EOF with a partial blob: the torn-transfer salvage path.
  void OnMeetingBlobTruncated(Connection& conn);
  void CloseConnection(int fd);
  /// Writes to a non-blocking fd, polling for writability up to
  /// io_timeout_ms; counts sent bytes.
  Status SendBytes(int fd, std::span<const uint8_t> data);
  void ApplyBlob(Connection& conn);
  void ArmGossipTimer();
  void ArmPoolSweepTimer();
  void UpdateDirectoryGauge();
  /// Pool + scheduler counters changed: push deltas into the jxp.net.*
  /// metrics and refresh stats_.dials/dial_failures from the pool (the pool
  /// is the only dialer now).
  void SyncNetMetrics();
  NetStatsReplyMessage BuildNetStats() const;
  /// The guts of one outbound meeting over an already-acquired connection.
  /// `fresh` = the fd came from a fresh dial (Hello still owed). Returns
  /// false with *retryable=true only when nothing was committed to the
  /// stream yet (reused fd dead on first write) — the caller may re-dial.
  bool RunMeetingOnConnection(int fd, bool fresh, uint16_t port,
                              MeetResultMessage* result, bool* retryable);

  std::unique_ptr<core::JxpPeer> peer_;
  PeerDaemonOptions options_;
  EventLoop* loop_ = nullptr;
  UniqueFd listener_;
  uint16_t bound_port_ = 0;
  PeerDirectory directory_;
  Random rng_;
  std::unordered_map<int, std::unique_ptr<Connection>> connections_;
  DaemonStats stats_;
  std::unique_ptr<ConnectionPool> pool_;
  std::unique_ptr<MeetingScheduler> scheduler_;
  /// Last pool/scheduler counter snapshots already mirrored into metrics
  /// (SyncNetMetrics adds only the deltas).
  ConnectionPoolStats pool_synced_;
  MeetingSchedulerStats sched_synced_;
  bool quiesced_ = false;
  bool shutdown_begun_ = false;
};

}  // namespace net
}  // namespace jxp

#endif  // JXP_NET_PEER_DAEMON_H_
