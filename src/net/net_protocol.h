#ifndef JXP_NET_NET_PROTOCOL_H_
#define JXP_NET_NET_PROTOCOL_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "wire/wire_format.h"

namespace jxp {
namespace net {

/// The networked runtime's message vocabulary (DESIGN.md §6k). Every
/// message is one frame with the frozen 16-byte wire header
/// (wire/wire_format.h) and a type byte from the ranges below — disjoint
/// from the meeting payload types 1..3, so a net frame can never be
/// mistaken for meeting content and vice versa.
///
/// Peer-to-peer types (0x10..0x1f) flow between daemons; control types
/// (0x20..0x2f) flow between the cluster driver and a daemon. A meeting
/// transfer itself is NOT framed per chunk on the socket: a kMeetingOffer /
/// kMeetingReply frame announces `payload_bytes`, then exactly that many
/// raw bytes of encoded meeting message follow. The receiver buffers the
/// blob and runs the fault-tolerant DecodeMeeting salvage over it, so a
/// torn or bit-flipped transfer degrades exactly like the simulation's
/// fault model instead of wedging the framing layer.
enum class NetMessageType : uint8_t {
  // Peer <-> peer.
  kHello = 0x10,          // First frame on any daemon connection.
  kPeerExchange = 0x11,   // Gossip: a sample of the sender's directory.
  kMeetingOffer = 0x12,   // Initiator -> responder; blob of payload_bytes follows.
  kMeetingReply = 0x13,   // Responder -> initiator; blob of payload_bytes follows.
  kMeetingDecline = 0x14, // Responder is quiesced/busy; no blob.
  kGoodbye = 0x15,        // Sender is departing; directory tombstone.

  // Driver <-> daemon control.
  kStatusRequest = 0x20,
  kStatusReply = 0x21,
  kCheckpointRequest = 0x22,  // Save peer state to the daemon's state path.
  kCheckpointReply = 0x23,
  kQuiesceRequest = 0x24,     // Stop initiating/accepting meetings.
  kQuiesceReply = 0x25,
  kMeetCommand = 0x26,        // Initiate one meeting with the given peer now.
  kMeetResult = 0x27,
  kScoresRequest = 0x28,      // Dump local scores (exact doubles).
  kScoresReply = 0x29,

  // Autonomous-mode control (DESIGN.md §6l). Start/pause flip the meeting
  // scheduler's state machine; drain is terminal: scheduler drained, daemon
  // quiesced, pooled connections closed — the daemon keeps answering
  // control traffic but will never meet again.
  kStartRequest = 0x2a,
  kStartReply = 0x2b,
  kPauseRequest = 0x2c,
  kPauseReply = 0x2d,
  kDrainRequest = 0x2e,
  kDrainReply = 0x2f,
  kNetStatsRequest = 0x30,    // Dump DaemonStats + pool + scheduler counters.
  kNetStatsReply = 0x31,
};

/// First frame each side sends on a daemon<->daemon connection.
struct HelloMessage {
  uint32_t peer_id = 0;
  /// Port the sender's daemon accepts connections on (advertised port —
  /// under the chaos proxy this is the proxy's port).
  uint16_t listen_port = 0;
};

/// One gossiped directory record. Times travel as *ages* relative to the
/// sender's send instant — the two processes share no clock.
struct GossipEntry {
  uint32_t peer_id = 0;
  uint16_t port = 0;
  /// How long ago the sender last heard from this peer.
  uint32_t age_ms = 0;
  /// Tombstone: the peer said Goodbye (or was reported departed).
  bool departed = false;
};

struct PeerExchangeMessage {
  std::vector<GossipEntry> entries;
};

/// Announces a meeting blob: `payload_bytes` raw bytes of encoded meeting
/// message follow this frame on the stream. Shared by offer and reply.
struct MeetingHeader {
  uint32_t sender_id = 0;
  uint32_t payload_bytes = 0;
};

/// Driver command: meet the given peer (dialed at `port`) once, now.
struct MeetCommandMessage {
  uint32_t partner_id = 0;
  uint16_t port = 0;
};

/// Outcome of one commanded (or scheduled) meeting, from the initiator's
/// point of view.
struct MeetResultMessage {
  /// The partner's message was decoded and applied (possibly salvaged).
  bool applied = false;
  /// The reply blob was truncated or corrupted and only a prefix applied.
  bool salvaged = false;
  /// The partner declined (quiesced).
  bool declined = false;
  uint64_t bytes_sent = 0;
  uint64_t bytes_received = 0;
  /// Bytes received that decoding rejected (wasted traffic).
  uint64_t bytes_wasted = 0;
};

struct StatusReplyMessage {
  uint32_t peer_id = 0;
  uint64_t num_meetings = 0;
  uint64_t meetings_accepted = 0;
  uint32_t local_pages = 0;
  uint32_t world_entries = 0;
  uint32_t directory_size = 0;
  bool quiesced = false;
};

/// One local page's exact score. Doubles cross as raw IEEE-754 bits so the
/// driver's oracle comparison is exact, not quantized.
struct ScoreEntry {
  uint32_t page = 0;
  double score = 0;
};

struct ScoresReplyMessage {
  std::vector<ScoreEntry> entries;
  /// The peer's current world-node total (world score diagnostics).
  double world_score = 0;
};

/// Generic ack payload for checkpoint/quiesce/start/pause/drain replies.
struct AckMessage {
  bool ok = false;
  std::string detail;
};

/// Full network-activity accounting of one daemon: connection, meeting,
/// pool, and scheduler counters (the fig04-analogue driver samples these to
/// report meetings/sec and dials-vs-reuses). Mirrors DaemonStats +
/// ConnectionPoolStats + MeetingSchedulerStats; every field rides as a
/// varint64 in declaration order, so extending it means appending.
struct NetStatsReplyMessage {
  uint32_t peer_id = 0;
  // DaemonStats.
  uint64_t accepts = 0;
  uint64_t dials = 0;
  uint64_t dial_failures = 0;
  uint64_t meetings_initiated = 0;
  uint64_t meetings_accepted = 0;
  uint64_t meetings_declined = 0;
  uint64_t meeting_failures = 0;
  uint64_t truncations_detected = 0;
  uint64_t corruptions_detected = 0;
  uint64_t bytes_sent = 0;
  uint64_t bytes_received = 0;
  uint64_t wasted_bytes = 0;
  // ConnectionPoolStats.
  uint64_t pool_reuses = 0;
  uint64_t pool_half_open = 0;
  uint64_t pool_redials = 0;
  uint64_t pool_evictions_idle = 0;
  uint64_t pool_evictions_lru = 0;
  uint64_t pool_busy_rejections = 0;
  uint64_t pool_open_connections = 0;
  // MeetingSchedulerStats (all zero when autonomous mode is off).
  uint8_t scheduler_state = 0;  // SchedulerState as its wire byte.
  uint64_t sched_ticks = 0;
  uint64_t sched_meetings_started = 0;
  uint64_t sched_meetings_applied = 0;
  uint64_t sched_declines = 0;
  uint64_t sched_failures = 0;
  uint64_t sched_busy = 0;
  uint64_t sched_skips_no_partner = 0;
  uint64_t sched_skips_backoff = 0;
  uint64_t sched_backoffs_armed = 0;
};

/// Encoders append one complete frame (header + payload) to `out`.
void AppendHello(const HelloMessage& msg, std::vector<uint8_t>& out);
void AppendPeerExchange(const PeerExchangeMessage& msg, std::vector<uint8_t>& out);
void AppendMeetingHeader(NetMessageType type, const MeetingHeader& msg,
                         std::vector<uint8_t>& out);
void AppendMeetingDecline(uint32_t sender_id, std::vector<uint8_t>& out);
void AppendGoodbye(uint32_t sender_id, std::vector<uint8_t>& out);
void AppendEmpty(NetMessageType type, std::vector<uint8_t>& out);
void AppendMeetCommand(const MeetCommandMessage& msg, std::vector<uint8_t>& out);
void AppendMeetResult(const MeetResultMessage& msg, std::vector<uint8_t>& out);
void AppendStatusReply(const StatusReplyMessage& msg, std::vector<uint8_t>& out);
void AppendScoresReply(const ScoresReplyMessage& msg, std::vector<uint8_t>& out);
void AppendAck(NetMessageType type, const AckMessage& msg, std::vector<uint8_t>& out);
void AppendNetStatsReply(const NetStatsReplyMessage& msg, std::vector<uint8_t>& out);

/// Decoders parse a frame *payload* (the frame layer already verified the
/// checksum). InvalidArgument on malformed payloads.
Status ParseHello(std::span<const uint8_t> payload, HelloMessage* out);
Status ParsePeerExchange(std::span<const uint8_t> payload, PeerExchangeMessage* out);
Status ParseMeetingHeader(std::span<const uint8_t> payload, MeetingHeader* out);
Status ParseSenderId(std::span<const uint8_t> payload, uint32_t* out);
Status ParseMeetCommand(std::span<const uint8_t> payload, MeetCommandMessage* out);
Status ParseMeetResult(std::span<const uint8_t> payload, MeetResultMessage* out);
Status ParseStatusReply(std::span<const uint8_t> payload, StatusReplyMessage* out);
Status ParseScoresReply(std::span<const uint8_t> payload, ScoresReplyMessage* out);
Status ParseAck(std::span<const uint8_t> payload, AckMessage* out);
Status ParseNetStatsReply(std::span<const uint8_t> payload, NetStatsReplyMessage* out);

/// Blocking request/response helpers for control clients (driver side).
/// ReadFrameBlocking reads one full frame off a blocking socket, verifies
/// magic/version/checksum, and returns its type byte + payload.
Status ReadFrameBlocking(int fd, uint8_t* type, std::vector<uint8_t>* payload,
                         size_t max_payload_bytes = 1u << 26);

}  // namespace net
}  // namespace jxp

#endif  // JXP_NET_NET_PROTOCOL_H_
