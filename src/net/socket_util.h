#ifndef JXP_NET_SOCKET_UTIL_H_
#define JXP_NET_SOCKET_UTIL_H_

#include <cstddef>
#include <cstdint>
#include <span>

#include "common/status.h"

namespace jxp {
namespace net {

/// Thin RAII + Status wrappers over the POSIX socket calls the networked
/// runtime uses (DESIGN.md §6k). Everything binds to loopback only: the
/// runtime is a local multi-process harness, not an internet-facing server.

/// Owns one file descriptor; closes it on destruction. Move-only.
class UniqueFd {
 public:
  UniqueFd() = default;
  explicit UniqueFd(int fd) : fd_(fd) {}
  ~UniqueFd() { reset(); }

  UniqueFd(const UniqueFd&) = delete;
  UniqueFd& operator=(const UniqueFd&) = delete;
  UniqueFd(UniqueFd&& other) noexcept : fd_(other.release()) {}
  UniqueFd& operator=(UniqueFd&& other) noexcept {
    if (this != &other) reset(other.release());
    return *this;
  }

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  explicit operator bool() const { return valid(); }

  /// Releases ownership without closing.
  int release() {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }
  /// Closes the current fd (if any) and adopts `fd`.
  void reset(int fd = -1);

 private:
  int fd_ = -1;
};

/// Puts `fd` into non-blocking mode.
Status SetNonBlocking(int fd);

/// Disables Nagle on a TCP socket (meeting handshakes are small
/// request/reply frames; coalescing them only adds latency).
Status SetNoDelay(int fd);

/// Creates a TCP listener bound to 127.0.0.1:`port` (port 0 picks an
/// ephemeral port), non-blocking, SO_REUSEADDR, listening. Reports the
/// actually-bound port in `*bound_port`.
Status CreateLoopbackListener(uint16_t port, UniqueFd* out, uint16_t* bound_port);

/// Accepts one pending connection from a non-blocking listener. When no
/// connection is pending (EAGAIN) returns OK with `*out` left invalid, so
/// level-triggered accept loops can drain until empty without treating
/// "drained" as an error. The accepted socket is non-blocking.
Status AcceptConnection(int listener_fd, UniqueFd* out);

/// Opens a *blocking* TCP connection to 127.0.0.1:`port`. Used by control
/// clients (driver-side) where a synchronous round trip is the point.
Status ConnectLoopback(uint16_t port, UniqueFd* out);

/// Starts a *non-blocking* connect to 127.0.0.1:`port`; the socket is
/// returned immediately (connect may still be in flight — wait for EPOLLOUT
/// and check SO_ERROR via FinishConnect).
Status StartConnectLoopback(uint16_t port, UniqueFd* out);

/// Resolves a non-blocking connect after EPOLLOUT: OK when the socket is
/// connected, IOError with the SO_ERROR detail otherwise.
Status FinishConnect(int fd);

/// Writes all of `data` to a blocking socket (retrying short writes and
/// EINTR). IOError on failure.
Status WriteAll(int fd, std::span<const uint8_t> data);

/// Reads exactly `n` bytes into `buf` from a blocking socket. IOError on
/// failure or premature EOF.
Status ReadExact(int fd, uint8_t* buf, size_t n);

}  // namespace net
}  // namespace jxp

#endif  // JXP_NET_SOCKET_UTIL_H_
