#include "net/peer_daemon.h"

#include <errno.h>
#include <poll.h>
#include <signal.h>
#include <string.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <utility>

#include "core/state_io.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"

namespace jxp {
namespace net {

namespace {

/// Process-wide jxp.net.* instrumentation (see docs/METRICS.md). Counters
/// mirror DaemonStats; the gauge tracks the directory size.
struct NetMetrics {
  obs::Counter accepts;
  obs::Counter dials;
  obs::Counter dial_failures;
  obs::Counter meetings_initiated;
  obs::Counter meetings_accepted;
  obs::Counter meetings_declined;
  obs::Counter meeting_failures;
  obs::Counter truncations_detected;
  obs::Counter corruptions_detected;
  obs::Counter bytes_sent;
  obs::Counter bytes_received;
  obs::Counter wasted_bytes;
  obs::Counter gossip_exchanges;
  obs::Counter directory_evictions;
  obs::Counter checkpoints;
  obs::Counter protocol_errors;
  obs::Gauge directory_peers;
  // Connection-pool lifecycle (ConnectionPoolStats, synced by delta).
  obs::Counter pool_reuses;
  obs::Counter pool_half_open;
  obs::Counter pool_redials;
  obs::Counter pool_evictions_idle;
  obs::Counter pool_evictions_lru;
  obs::Counter pool_busy_rejections;
  obs::Counter pool_released_broken;
  obs::Gauge pool_open_connections;
  // Autonomous scheduler (MeetingSchedulerStats, synced by delta).
  obs::Counter sched_ticks;
  obs::Counter sched_meetings_started;
  obs::Counter sched_skips_no_partner;
  obs::Counter sched_skips_backoff;
  obs::Counter sched_backoffs_armed;
};

NetMetrics& GetNetMetrics() {
  static NetMetrics* metrics = [] {
    auto* m = new NetMetrics();
    obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
    m->accepts = reg.GetCounter("jxp.net.accepts");
    m->dials = reg.GetCounter("jxp.net.dials");
    m->dial_failures = reg.GetCounter("jxp.net.dial_failures");
    m->meetings_initiated = reg.GetCounter("jxp.net.meetings_initiated");
    m->meetings_accepted = reg.GetCounter("jxp.net.meetings_accepted");
    m->meetings_declined = reg.GetCounter("jxp.net.meetings_declined");
    m->meeting_failures = reg.GetCounter("jxp.net.meeting_failures");
    m->truncations_detected = reg.GetCounter("jxp.net.truncations_detected");
    m->corruptions_detected = reg.GetCounter("jxp.net.corruptions_detected");
    m->bytes_sent = reg.GetCounter("jxp.net.bytes_sent");
    m->bytes_received = reg.GetCounter("jxp.net.bytes_received");
    m->wasted_bytes = reg.GetCounter("jxp.net.wasted_bytes");
    m->gossip_exchanges = reg.GetCounter("jxp.net.gossip_exchanges");
    m->directory_evictions = reg.GetCounter("jxp.net.directory_evictions");
    m->checkpoints = reg.GetCounter("jxp.net.checkpoints");
    m->protocol_errors = reg.GetCounter("jxp.net.protocol_errors");
    m->directory_peers = reg.GetGauge("jxp.net.directory_peers");
    m->pool_reuses = reg.GetCounter("jxp.net.pool_reuses");
    m->pool_half_open = reg.GetCounter("jxp.net.pool_half_open");
    m->pool_redials = reg.GetCounter("jxp.net.pool_redials");
    m->pool_evictions_idle = reg.GetCounter("jxp.net.pool_evictions_idle");
    m->pool_evictions_lru = reg.GetCounter("jxp.net.pool_evictions_lru");
    m->pool_busy_rejections = reg.GetCounter("jxp.net.pool_busy_rejections");
    m->pool_released_broken = reg.GetCounter("jxp.net.pool_released_broken");
    m->pool_open_connections = reg.GetGauge("jxp.net.pool_open_connections");
    m->sched_ticks = reg.GetCounter("jxp.net.sched_ticks");
    m->sched_meetings_started = reg.GetCounter("jxp.net.sched_meetings_started");
    m->sched_skips_no_partner = reg.GetCounter("jxp.net.sched_skips_no_partner");
    m->sched_skips_backoff = reg.GetCounter("jxp.net.sched_skips_backoff");
    m->sched_backoffs_armed = reg.GetCounter("jxp.net.sched_backoffs_armed");
    return m;
  }();
  return *metrics;
}

/// Sets SO_RCVTIMEO/SO_SNDTIMEO on a blocking socket.
void SetIoTimeouts(int fd, uint64_t timeout_ms) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(timeout_ms / 1000);
  tv.tv_usec = static_cast<suseconds_t>((timeout_ms % 1000) * 1000);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

/// Reads up to `n` bytes from a blocking socket, stopping early at EOF (the
/// torn-transfer case). Returns bytes read; a read error counts as EOF at
/// the bytes received so far.
size_t ReadUpTo(int fd, size_t n, std::vector<uint8_t>* out) {
  out->clear();
  out->reserve(n);
  uint8_t buf[16384];
  while (out->size() < n) {
    const size_t want = std::min(sizeof(buf), n - out->size());
    const ssize_t got = ::read(fd, buf, want);
    if (got < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (got == 0) break;
    out->insert(out->end(), buf, buf + got);
  }
  return out->size();
}

}  // namespace

PeerDaemon::PeerDaemon(std::unique_ptr<core::JxpPeer> peer, PeerDaemonOptions options)
    : peer_(std::move(peer)),
      options_(std::move(options)),
      directory_(static_cast<uint32_t>(peer_->id()), options_.directory_staleness_ms),
      rng_(options_.rng_seed) {}

PeerDaemon::~PeerDaemon() {
  if (loop_ == nullptr) return;
  if (listener_ && loop_->IsRegistered(listener_.get())) {
    (void)loop_->Remove(listener_.get());
  }
  for (auto& [fd, conn] : connections_) {
    if (loop_->IsRegistered(fd)) (void)loop_->Remove(fd);
  }
  if (options_.shutdown_fd >= 0 && loop_->IsRegistered(options_.shutdown_fd)) {
    (void)loop_->Remove(options_.shutdown_fd);
  }
}

Status PeerDaemon::Start(EventLoop* loop) {
  loop_ = loop;
  // Pooled connections make write-after-peer-close an ordinary event (a
  // dial collision resolves as one side's timeout + close, and the other
  // side may still be replying into it). Surface that as EPIPE through the
  // Status paths instead of process death.
  ::signal(SIGPIPE, SIG_IGN);
  if (Status status =
          CreateLoopbackListener(options_.listen_port, &listener_, &bound_port_);
      !status.ok()) {
    return status;
  }
  const uint64_t now = loop_->NowMs();
  for (const GossipEntry& seed : options_.seed_peers) {
    directory_.ObserveDirect(seed.peer_id, seed.port, now);
  }
  UpdateDirectoryGauge();
  if (Status status =
          loop_->Add(listener_.get(), EPOLLIN, [this](uint32_t) { OnListenerReadable(); });
      !status.ok()) {
    return status;
  }
  if (options_.shutdown_fd >= 0) {
    if (Status status = loop_->Add(options_.shutdown_fd, EPOLLIN,
                                   [this](uint32_t) { OnShutdownFdReadable(); });
        !status.ok()) {
      return status;
    }
  }
  pool_ = std::make_unique<ConnectionPool>(options_.pool,
                                           [this] { return loop_->NowMs(); });
  if (options_.scheduler.enabled) {
    // The scheduler gets its own Random stream, derived from (not equal to)
    // the daemon seed so partner draws don't entangle with gossip sampling.
    scheduler_ = std::make_unique<MeetingScheduler>(
        loop_, &directory_, options_.scheduler,
        options_.rng_seed * 0x9e3779b97f4a7c15ULL + 1,
        [this](const PeerDirectory::Entry& partner) {
          if (quiesced_) {
            // Quiesce without drain: stop initiating too. kStartRequest
            // resumes the cadence if the driver un-drains by restarting.
            scheduler_->Pause();
            return MeetOutcome::kBusy;
          }
          MeetOutcome outcome = MeetOutcome::kFailed;
          (void)MeetPeerClassified(partner.peer_id, partner.port, &outcome);
          return outcome;
        });
    if (options_.scheduler.autostart) scheduler_->Start();
  }
  ArmGossipTimer();
  ArmPoolSweepTimer();
  return Status::OK();
}

void PeerDaemon::ArmPoolSweepTimer() {
  if (options_.pool.idle_timeout_ms == 0) return;
  const uint64_t period = std::max<uint64_t>(options_.pool.idle_timeout_ms / 2, 1);
  loop_->AddTimer(period, [this] {
    if (pool_->SweepIdle() > 0) SyncNetMetrics();
    ArmPoolSweepTimer();
  });
}

void PeerDaemon::SyncNetMetrics() {
  const ConnectionPoolStats& pool_stats = pool_->stats();
  // The pool is the only dialer, so the daemon's dial counters are views of
  // the pool's (goodbye connects were never counted, as before).
  stats_.dials = pool_stats.dials;
  stats_.dial_failures = pool_stats.dial_failures;
  if (obs::Enabled()) {
    NetMetrics& metrics = GetNetMetrics();
    auto bump = [](obs::Counter& counter, uint64_t now, uint64_t prev) {
      if (now > prev) counter.Increment(now - prev);
    };
    bump(metrics.dials, pool_stats.dials, pool_synced_.dials);
    bump(metrics.dial_failures, pool_stats.dial_failures, pool_synced_.dial_failures);
    bump(metrics.pool_reuses, pool_stats.reuses, pool_synced_.reuses);
    bump(metrics.pool_half_open, pool_stats.half_open_detected,
         pool_synced_.half_open_detected);
    bump(metrics.pool_redials, pool_stats.redials, pool_synced_.redials);
    bump(metrics.pool_evictions_idle, pool_stats.evictions_idle,
         pool_synced_.evictions_idle);
    bump(metrics.pool_evictions_lru, pool_stats.evictions_lru,
         pool_synced_.evictions_lru);
    bump(metrics.pool_busy_rejections, pool_stats.busy_rejections,
         pool_synced_.busy_rejections);
    bump(metrics.pool_released_broken, pool_stats.released_broken,
         pool_synced_.released_broken);
    metrics.pool_open_connections.Set(static_cast<double>(pool_->open_connections()));
    if (scheduler_ != nullptr) {
      const MeetingSchedulerStats& sched = scheduler_->stats();
      bump(metrics.sched_ticks, sched.ticks, sched_synced_.ticks);
      bump(metrics.sched_meetings_started, sched.meetings_started,
           sched_synced_.meetings_started);
      bump(metrics.sched_skips_no_partner, sched.skips_no_partner,
           sched_synced_.skips_no_partner);
      bump(metrics.sched_skips_backoff, sched.skips_backoff,
           sched_synced_.skips_backoff);
      bump(metrics.sched_backoffs_armed, sched.backoffs_armed,
           sched_synced_.backoffs_armed);
    }
  }
  pool_synced_ = pool_stats;
  if (scheduler_ != nullptr) sched_synced_ = scheduler_->stats();
}

NetStatsReplyMessage PeerDaemon::BuildNetStats() const {
  NetStatsReplyMessage reply;
  reply.peer_id = static_cast<uint32_t>(peer_->id());
  reply.accepts = stats_.accepts;
  const ConnectionPoolStats& pool_stats = pool_->stats();
  reply.dials = pool_stats.dials;
  reply.dial_failures = pool_stats.dial_failures;
  reply.meetings_initiated = stats_.meetings_initiated;
  reply.meetings_accepted = stats_.meetings_accepted;
  reply.meetings_declined = stats_.meetings_declined;
  reply.meeting_failures = stats_.meeting_failures;
  reply.truncations_detected = stats_.truncations_detected;
  reply.corruptions_detected = stats_.corruptions_detected;
  reply.bytes_sent = stats_.bytes_sent;
  reply.bytes_received = stats_.bytes_received;
  reply.wasted_bytes = stats_.wasted_bytes;
  reply.pool_reuses = pool_stats.reuses;
  reply.pool_half_open = pool_stats.half_open_detected;
  reply.pool_redials = pool_stats.redials;
  reply.pool_evictions_idle = pool_stats.evictions_idle;
  reply.pool_evictions_lru = pool_stats.evictions_lru;
  reply.pool_busy_rejections = pool_stats.busy_rejections;
  reply.pool_open_connections = pool_->open_connections();
  if (scheduler_ != nullptr) {
    reply.scheduler_state = static_cast<uint8_t>(scheduler_->state());
    const MeetingSchedulerStats& sched = scheduler_->stats();
    reply.sched_ticks = sched.ticks;
    reply.sched_meetings_started = sched.meetings_started;
    reply.sched_meetings_applied = sched.meetings_applied;
    reply.sched_declines = sched.declines;
    reply.sched_failures = sched.failures;
    reply.sched_busy = sched.busy;
    reply.sched_skips_no_partner = sched.skips_no_partner;
    reply.sched_skips_backoff = sched.skips_backoff;
    reply.sched_backoffs_armed = sched.backoffs_armed;
  }
  return reply;
}

void PeerDaemon::ArmGossipTimer() {
  if (options_.gossip_interval_ms == 0) return;
  loop_->AddTimer(options_.gossip_interval_ms, [this] {
    const size_t evicted = directory_.EvictStale(loop_->NowMs());
    if (evicted > 0) {
      stats_.directory_evictions += evicted;
      if (obs::Enabled()) {
        GetNetMetrics().directory_evictions.Increment(evicted);
      }
    }
    if (!quiesced_) GossipOnce();
    UpdateDirectoryGauge();
    ArmGossipTimer();
  });
}

void PeerDaemon::UpdateDirectoryGauge() {
  if (obs::Enabled()) {
    GetNetMetrics().directory_peers.Set(static_cast<double>(directory_.size()));
  }
}

void PeerDaemon::OnListenerReadable() {
  // Level-triggered: drain every pending connection.
  while (true) {
    UniqueFd accepted;
    const Status status = AcceptConnection(listener_.get(), &accepted);
    if (!status.ok() || !accepted) return;
    ++stats_.accepts;
    if (obs::Enabled()) GetNetMetrics().accepts.Increment();
    const int fd = accepted.get();
    auto conn = std::make_unique<Connection>();
    conn->fd = std::move(accepted);
    if (!loop_->Add(fd, EPOLLIN, [this, fd](uint32_t) { OnConnectionReadable(fd); })
             .ok()) {
      continue;  // Connection dropped; UniqueFd closes it.
    }
    connections_.emplace(fd, std::move(conn));
  }
}

void PeerDaemon::CloseConnection(int fd) {
  if (loop_->IsRegistered(fd)) (void)loop_->Remove(fd);
  connections_.erase(fd);
}

void PeerDaemon::OnConnectionReadable(int fd) {
  const auto it = connections_.find(fd);
  if (it == connections_.end()) return;
  Connection& conn = *it->second;

  uint8_t buf[16384];
  while (true) {
    const ssize_t got = ::read(fd, buf, sizeof(buf));
    if (got < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      CloseConnection(fd);
      return;
    }
    if (got == 0) {
      // EOF. A partial meeting blob at EOF is the torn-transfer case: the
      // connection (or the chaos proxy) died mid-blob; salvage the prefix.
      if (conn.blob_expected > 0) OnMeetingBlobTruncated(conn);
      CloseConnection(fd);
      return;
    }
    stats_.bytes_received += static_cast<uint64_t>(got);
    if (obs::Enabled()) {
      GetNetMetrics().bytes_received.Increment(static_cast<uint64_t>(got));
    }
    size_t off = 0;
    const size_t n = static_cast<size_t>(got);
    while (off < n) {
      if (conn.blob_expected > 0) {
        // Raw blob mode: bytes bypass the frame assembler entirely.
        const size_t take = std::min(n - off, conn.blob_expected - conn.blob.size());
        conn.blob.insert(conn.blob.end(), buf + off, buf + off + take);
        off += take;
        if (conn.blob.size() == conn.blob_expected) OnMeetingBlobComplete(conn);
        continue;
      }
      const size_t consumed =
          conn.assembler.Feed(std::span<const uint8_t>(buf + off, n - off));
      off += consumed;
      if (conn.assembler.HasFrame()) {
        const bool keep = HandleFrame(conn, conn.assembler.frame_type(),
                                      conn.assembler.frame_payload());
        conn.assembler.ConsumeFrame();
        if (!keep) {
          CloseConnection(fd);
          return;
        }
      } else if (conn.assembler.failed() || consumed == 0) {
        ++stats_.protocol_errors;
        if (obs::Enabled()) GetNetMetrics().protocol_errors.Increment();
        CloseConnection(fd);
        return;
      }
    }
  }
}

bool PeerDaemon::HandleFrame(Connection& conn, uint8_t type,
                             std::span<const uint8_t> payload) {
  const uint64_t now = loop_->NowMs();
  switch (static_cast<NetMessageType>(type)) {
    case NetMessageType::kHello: {
      HelloMessage hello;
      if (!ParseHello(payload, &hello).ok()) break;
      directory_.ObserveDirect(hello.peer_id, hello.listen_port, now);
      UpdateDirectoryGauge();
      return true;
    }
    case NetMessageType::kPeerExchange: {
      PeerExchangeMessage exchange;
      if (!ParsePeerExchange(payload, &exchange).ok()) break;
      for (const GossipEntry& entry : exchange.entries) {
        directory_.ObserveGossip(entry, now);
      }
      ++stats_.gossip_exchanges;
      if (obs::Enabled()) GetNetMetrics().gossip_exchanges.Increment();
      UpdateDirectoryGauge();
      // Push-pull: answer with our own sample (tombstones included).
      PeerExchangeMessage reply;
      reply.entries = directory_.GossipSample(now, 16, rng_);
      std::vector<uint8_t> out;
      AppendPeerExchange(reply, out);
      return SendBytes(conn.fd.get(), out).ok();
    }
    case NetMessageType::kMeetingOffer: {
      MeetingHeader offer;
      if (!ParseMeetingHeader(payload, &offer).ok()) break;
      conn.meeting_sender = offer.sender_id;
      conn.decline_meeting = quiesced_;
      conn.blob.clear();
      conn.blob_expected = offer.payload_bytes;
      if (conn.blob_expected == 0) OnMeetingBlobComplete(conn);
      return true;
    }
    case NetMessageType::kGoodbye: {
      uint32_t sender = 0;
      if (!ParseSenderId(payload, &sender).ok()) break;
      directory_.MarkDeparted(sender, now);
      UpdateDirectoryGauge();
      return true;
    }
    case NetMessageType::kStatusRequest: {
      std::vector<uint8_t> out;
      AppendStatusReply(BuildStatus(), out);
      return SendBytes(conn.fd.get(), out).ok();
    }
    case NetMessageType::kScoresRequest: {
      std::vector<uint8_t> out;
      AppendScoresReply(BuildScores(), out);
      return SendBytes(conn.fd.get(), out).ok();
    }
    case NetMessageType::kCheckpointRequest: {
      const Status status = Checkpoint();
      AckMessage ack;
      ack.ok = status.ok();
      if (!status.ok()) ack.detail = status.ToString();
      std::vector<uint8_t> out;
      AppendAck(NetMessageType::kCheckpointReply, ack, out);
      return SendBytes(conn.fd.get(), out).ok();
    }
    case NetMessageType::kQuiesceRequest: {
      quiesced_ = true;
      AckMessage ack;
      ack.ok = true;
      std::vector<uint8_t> out;
      AppendAck(NetMessageType::kQuiesceReply, ack, out);
      return SendBytes(conn.fd.get(), out).ok();
    }
    case NetMessageType::kMeetCommand: {
      MeetCommandMessage command;
      if (!ParseMeetCommand(payload, &command).ok()) break;
      const MeetResultMessage result = MeetPeer(command.partner_id, command.port);
      std::vector<uint8_t> out;
      AppendMeetResult(result, out);
      return SendBytes(conn.fd.get(), out).ok();
    }
    case NetMessageType::kStartRequest: {
      AckMessage ack;
      if (scheduler_ == nullptr) {
        ack.detail = "autonomous mode disabled";
      } else if (scheduler_->state() == SchedulerState::kDrained) {
        ack.detail = "scheduler drained";
      } else {
        quiesced_ = false;  // Start after a pause-by-quiesce resumes fully.
        scheduler_->Start();
        ack.ok = true;
      }
      std::vector<uint8_t> out;
      AppendAck(NetMessageType::kStartReply, ack, out);
      return SendBytes(conn.fd.get(), out).ok();
    }
    case NetMessageType::kPauseRequest: {
      AckMessage ack;
      if (scheduler_ == nullptr) {
        ack.detail = "autonomous mode disabled";
      } else if (scheduler_->state() == SchedulerState::kDrained) {
        ack.detail = "scheduler drained";
      } else {
        scheduler_->Pause();
        ack.ok = true;
      }
      std::vector<uint8_t> out;
      AppendAck(NetMessageType::kPauseReply, ack, out);
      return SendBytes(conn.fd.get(), out).ok();
    }
    case NetMessageType::kDrainRequest: {
      // Drain-and-quiesce: terminal scheduler stop, inbound meetings
      // decline, warm connections close. Control traffic keeps working.
      if (scheduler_ != nullptr) scheduler_->Drain();
      quiesced_ = true;
      pool_->CloseAll();
      SyncNetMetrics();
      AckMessage ack;
      ack.ok = true;
      std::vector<uint8_t> out;
      AppendAck(NetMessageType::kDrainReply, ack, out);
      return SendBytes(conn.fd.get(), out).ok();
    }
    case NetMessageType::kNetStatsRequest: {
      std::vector<uint8_t> out;
      AppendNetStatsReply(BuildNetStats(), out);
      return SendBytes(conn.fd.get(), out).ok();
    }
    default:
      break;
  }
  ++stats_.protocol_errors;
  if (obs::Enabled()) GetNetMetrics().protocol_errors.Increment();
  return false;
}

void PeerDaemon::ApplyBlob(Connection& conn) {
  const bool complete = conn.blob.size() == conn.blob_expected;
  const core::RemoteMeetingApply applied = peer_->ApplyMeetingBytes(conn.blob);
  if (applied.applied) {
    ++stats_.meetings_accepted;
    if (obs::Enabled()) GetNetMetrics().meetings_accepted.Increment();
  }
  if (complete && (!applied.applied || applied.salvaged)) {
    ++stats_.corruptions_detected;
    if (obs::Enabled()) GetNetMetrics().corruptions_detected.Increment();
  }
  const uint64_t wasted =
      static_cast<uint64_t>(conn.blob.size() - applied.bytes_consumed);
  stats_.wasted_bytes += wasted;
  if (obs::Enabled() && wasted > 0) GetNetMetrics().wasted_bytes.Increment(wasted);
}

void PeerDaemon::OnMeetingBlobComplete(Connection& conn) {
  const size_t blob_bytes = conn.blob.size();
  if (conn.decline_meeting) {
    ++stats_.meetings_declined;
    stats_.wasted_bytes += blob_bytes;
    if (obs::Enabled()) {
      GetNetMetrics().meetings_declined.Increment();
      GetNetMetrics().wasted_bytes.Increment(blob_bytes);
    }
    std::vector<uint8_t> out;
    AppendMeetingDecline(static_cast<uint32_t>(peer_->id()), out);
    (void)SendBytes(conn.fd.get(), out);
  } else {
    // Simultaneous-exchange semantics: serialize our message BEFORE
    // applying the initiator's, exactly like MeetMeasured snapshots both
    // views up front. This is what keeps a networked meeting bit-identical
    // to the in-process one.
    const std::vector<uint8_t> reply = peer_->EncodeMeetingBytes();
    MeetingHeader header;
    header.sender_id = static_cast<uint32_t>(peer_->id());
    header.payload_bytes = static_cast<uint32_t>(reply.size());
    std::vector<uint8_t> frame;
    AppendMeetingHeader(NetMessageType::kMeetingReply, header, frame);
    if (SendBytes(conn.fd.get(), frame).ok()) (void)SendBytes(conn.fd.get(), reply);
    ApplyBlob(conn);
  }
  conn.blob_expected = 0;
  conn.blob.clear();
  conn.blob.shrink_to_fit();
}

void PeerDaemon::OnMeetingBlobTruncated(Connection& conn) {
  ++stats_.truncations_detected;
  if (obs::Enabled()) GetNetMetrics().truncations_detected.Increment();
  if (conn.decline_meeting) {
    stats_.wasted_bytes += conn.blob.size();
    if (obs::Enabled()) GetNetMetrics().wasted_bytes.Increment(conn.blob.size());
  } else {
    // The initiator's transfer died mid-blob; the connection is gone, so no
    // reply can be sent — this side still salvages the intact prefix (the
    // one-sided application the fault model calls a truncated delivery).
    ApplyBlob(conn);
  }
  conn.blob_expected = 0;
  conn.blob.clear();
}

Status PeerDaemon::SendBytes(int fd, std::span<const uint8_t> data) {
  size_t written = 0;
  const uint64_t deadline = loop_->NowMs() + options_.io_timeout_ms;
  while (written < data.size()) {
    const ssize_t n = ::write(fd, data.data() + written, data.size() - written);
    if (n > 0) {
      written += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR) {
      return Status::IOError(std::string("write: ") + strerror(errno));
    }
    const uint64_t now = loop_->NowMs();
    if (now >= deadline) return Status::IOError("write timeout");
    pollfd pfd{fd, POLLOUT, 0};
    (void)::poll(&pfd, 1, static_cast<int>(deadline - now));
  }
  stats_.bytes_sent += written;
  if (obs::Enabled()) GetNetMetrics().bytes_sent.Increment(written);
  return Status::OK();
}

MeetResultMessage PeerDaemon::MeetPeer(uint32_t partner_id, uint16_t port) {
  MeetOutcome outcome = MeetOutcome::kFailed;
  return MeetPeerClassified(partner_id, port, &outcome);
}

MeetResultMessage PeerDaemon::MeetPeerClassified(uint32_t partner_id, uint16_t port,
                                                 MeetOutcome* outcome) {
  MeetResultMessage result;
  *outcome = MeetOutcome::kFailed;
  ++stats_.meetings_initiated;
  if (obs::Enabled()) GetNetMetrics().meetings_initiated.Increment();

  int fd = -1;
  bool reused = false;
  if (Status acquired = pool_->Acquire(port, &fd, &reused); !acquired.ok()) {
    if (acquired.code() == StatusCode::kFailedPrecondition) {
      // Connection at its in-flight limit: flow control, not a failure.
      *outcome = MeetOutcome::kBusy;
    } else {
      ++stats_.meeting_failures;
      if (obs::Enabled()) GetNetMetrics().meeting_failures.Increment();
      *outcome = MeetOutcome::kDialFailed;
    }
    SyncNetMetrics();
    return result;
  }
  if (!reused) SetIoTimeouts(fd, options_.io_timeout_ms);

  (void)partner_id;  // The wire identifies the partner; the id is for logs.
  bool retryable = false;
  bool healthy = RunMeetingOnConnection(fd, !reused, port, &result, &retryable);
  if (!healthy && retryable) {
    // The pooled connection died while idle and the peek missed it (race:
    // peer closed between peek and write). Nothing of this meeting reached
    // the peer, so one transparent replacement dial is safe.
    pool_->Release(port, /*healthy=*/false);
    pool_->NoteRedial();
    if (Status redialed = pool_->Acquire(port, &fd, &reused); !redialed.ok()) {
      ++stats_.meeting_failures;
      if (obs::Enabled()) GetNetMetrics().meeting_failures.Increment();
      *outcome = MeetOutcome::kDialFailed;
      SyncNetMetrics();
      return result;
    }
    if (!reused) SetIoTimeouts(fd, options_.io_timeout_ms);
    healthy = RunMeetingOnConnection(fd, !reused, port, &result, &retryable);
  }
  pool_->Release(port, healthy);

  if (result.declined) {
    *outcome = MeetOutcome::kDeclined;
  } else if (result.applied) {
    *outcome = MeetOutcome::kApplied;
  } else {
    *outcome = MeetOutcome::kFailed;
  }
  SyncNetMetrics();
  return result;
}

bool PeerDaemon::RunMeetingOnConnection(int fd, bool fresh, uint16_t port,
                                        MeetResultMessage* result, bool* retryable) {
  *retryable = false;
  // Encode before any exchange: the initiator's message is a snapshot of
  // its pre-meeting state (simultaneous-exchange semantics).
  const std::vector<uint8_t> message = peer_->EncodeMeetingBytes();
  std::vector<uint8_t> frames;
  if (fresh) {
    // Hello only once per connection; on reuse the responder already knows
    // who we are.
    HelloMessage hello;
    hello.peer_id = static_cast<uint32_t>(peer_->id());
    hello.listen_port = advertised_port();
    AppendHello(hello, frames);
  }
  MeetingHeader offer;
  offer.sender_id = static_cast<uint32_t>(peer_->id());
  offer.payload_bytes = static_cast<uint32_t>(message.size());
  AppendMeetingHeader(NetMessageType::kMeetingOffer, offer, frames);
  if (!WriteAll(fd, frames).ok()) {
    // Before the blob starts, the responder can at worst salvage an empty
    // prefix — nothing committed. On a reused connection this is the
    // peek-missed-the-close race: let the caller re-dial silently instead
    // of charging a meeting failure.
    if (!fresh) {
      *retryable = true;
    } else {
      ++stats_.meeting_failures;
      if (obs::Enabled()) GetNetMetrics().meeting_failures.Increment();
    }
    return false;
  }
  if (!WriteAll(fd, message).ok()) {
    // The blob was cut mid-stream: the responder may salvage and APPLY a
    // prefix, so this meeting is committed — never retried.
    ++stats_.meeting_failures;
    if (obs::Enabled()) GetNetMetrics().meeting_failures.Increment();
    return false;
  }
  const uint64_t sent = frames.size() + message.size();
  result->bytes_sent += sent;
  stats_.bytes_sent += sent;
  if (obs::Enabled()) GetNetMetrics().bytes_sent.Increment(sent);

  uint8_t type = 0;
  std::vector<uint8_t> payload;
  if (!ReadFrameBlocking(fd, &type, &payload).ok()) {
    // The transfer (or the proxy) died before any reply frame — our own
    // message may have been cut; the responder does the salvaging.
    ++stats_.meeting_failures;
    if (obs::Enabled()) GetNetMetrics().meeting_failures.Increment();
    return false;
  }
  stats_.bytes_received += wire::kFrameHeaderBytes + payload.size();
  if (obs::Enabled()) {
    GetNetMetrics().bytes_received.Increment(wire::kFrameHeaderBytes + payload.size());
  }
  if (static_cast<NetMessageType>(type) == NetMessageType::kMeetingDecline) {
    // The responder consumed our blob before declining; the stream is
    // aligned and the connection stays poolable.
    result->declined = true;
    return true;
  }
  MeetingHeader reply;
  if (static_cast<NetMessageType>(type) != NetMessageType::kMeetingReply ||
      !ParseMeetingHeader(payload, &reply).ok()) {
    ++stats_.protocol_errors;
    ++stats_.meeting_failures;
    if (obs::Enabled()) {
      GetNetMetrics().protocol_errors.Increment();
      GetNetMetrics().meeting_failures.Increment();
    }
    return false;
  }
  directory_.ObserveDirect(reply.sender_id, port, loop_->NowMs());

  std::vector<uint8_t> blob;
  const size_t received = ReadUpTo(fd, reply.payload_bytes, &blob);
  result->bytes_received += received;
  stats_.bytes_received += received;
  if (obs::Enabled()) GetNetMetrics().bytes_received.Increment(received);
  const bool complete = received == reply.payload_bytes;
  if (!complete) {
    ++stats_.truncations_detected;
    if (obs::Enabled()) GetNetMetrics().truncations_detected.Increment();
  }
  const core::RemoteMeetingApply applied = peer_->ApplyMeetingBytes(blob);
  result->applied = applied.applied;
  result->salvaged = applied.salvaged || !complete;
  if (complete && (!applied.applied || applied.salvaged)) {
    ++stats_.corruptions_detected;
    if (obs::Enabled()) GetNetMetrics().corruptions_detected.Increment();
  }
  result->bytes_wasted = received - applied.bytes_consumed;
  stats_.wasted_bytes += result->bytes_wasted;
  if (obs::Enabled() && result->bytes_wasted > 0) {
    GetNetMetrics().wasted_bytes.Increment(result->bytes_wasted);
  }
  // A short blob means the connection died mid-reply; a complete one (even
  // bit-damaged — that's the payload's problem, not the stream's) leaves
  // the stream aligned for the next meeting.
  return complete;
}

void PeerDaemon::GossipOnce() {
  PeerDirectory::Entry partner;
  if (!directory_.SelectPartner(rng_, &partner)) return;
  int fd = -1;
  bool reused = false;
  if (Status acquired = pool_->Acquire(partner.port, &fd, &reused); !acquired.ok()) {
    SyncNetMetrics();
    // Busy = a meeting is on the wire to this partner right now; gossip
    // just waits for its next tick.
    if (acquired.code() == StatusCode::kFailedPrecondition) return;
    // An unreachable peer is evidence of departure; the tombstone keeps
    // gossip from re-suggesting it until it reappears first-hand.
    directory_.MarkDeparted(partner.peer_id, loop_->NowMs());
    UpdateDirectoryGauge();
    return;
  }
  if (!reused) SetIoTimeouts(fd, options_.io_timeout_ms);
  const uint64_t now = loop_->NowMs();
  std::vector<uint8_t> frames;
  if (!reused) {
    HelloMessage hello;
    hello.peer_id = static_cast<uint32_t>(peer_->id());
    hello.listen_port = advertised_port();
    AppendHello(hello, frames);
  }
  PeerExchangeMessage exchange;
  exchange.entries = directory_.GossipSample(now, 16, rng_);
  AppendPeerExchange(exchange, frames);
  bool healthy = false;
  uint8_t type = 0;
  std::vector<uint8_t> payload;
  PeerExchangeMessage reply;
  if (WriteAll(fd, frames).ok()) {
    stats_.bytes_sent += frames.size();
    if (obs::Enabled()) GetNetMetrics().bytes_sent.Increment(frames.size());
    if (ReadFrameBlocking(fd, &type, &payload).ok() &&
        static_cast<NetMessageType>(type) == NetMessageType::kPeerExchange &&
        ParsePeerExchange(payload, &reply).ok()) {
      healthy = true;
      stats_.bytes_received += wire::kFrameHeaderBytes + payload.size();
      for (const GossipEntry& entry : reply.entries) {
        directory_.ObserveGossip(entry, loop_->NowMs());
      }
      ++stats_.gossip_exchanges;
      if (obs::Enabled()) GetNetMetrics().gossip_exchanges.Increment();
      UpdateDirectoryGauge();
    }
  }
  pool_->Release(partner.port, healthy);
  SyncNetMetrics();
}

Status PeerDaemon::Checkpoint() {
  if (options_.state_path.empty()) {
    return Status::FailedPrecondition("no state path configured");
  }
  const Status status = core::SavePeerState(*peer_, options_.state_path);
  if (status.ok()) {
    ++stats_.checkpoints;
    if (obs::Enabled()) GetNetMetrics().checkpoints.Increment();
  }
  return status;
}

void PeerDaemon::OnShutdownFdReadable() {
  // One read only: the fd may be a blocking pipe, and a drain loop would
  // block the loop thread once the signal byte is consumed.
  uint8_t drain[16];
  (void)!::read(options_.shutdown_fd, drain, sizeof(drain));
  BeginShutdown();
}

void PeerDaemon::BeginShutdown() {
  if (shutdown_begun_) return;
  shutdown_begun_ = true;
  // Quiesce first: meetings in flight on other connections decline from
  // here on, so the checkpoint below is the peer's final state.
  quiesced_ = true;
  if (scheduler_ != nullptr) scheduler_->Drain();
  if (pool_ != nullptr) {
    pool_->CloseAll();
    SyncNetMetrics();
  }
  if (!options_.state_path.empty()) (void)Checkpoint();
  if (options_.goodbye_on_shutdown) {
    std::vector<uint8_t> goodbye;
    AppendGoodbye(static_cast<uint32_t>(peer_->id()), goodbye);
    for (const PeerDirectory::Entry& entry : directory_.AlivePeers()) {
      if (entry.port == 0) continue;
      UniqueFd fd;
      if (!ConnectLoopback(entry.port, &fd).ok()) continue;
      SetIoTimeouts(fd.get(), std::min<uint64_t>(options_.io_timeout_ms, 1000));
      (void)WriteAll(fd.get(), goodbye);
    }
  }
  loop_->Stop();
}

StatusReplyMessage PeerDaemon::BuildStatus() const {
  StatusReplyMessage status;
  status.peer_id = static_cast<uint32_t>(peer_->id());
  status.num_meetings = peer_->num_meetings();
  status.meetings_accepted = stats_.meetings_accepted;
  status.local_pages = static_cast<uint32_t>(peer_->fragment().NumLocalPages());
  status.world_entries = static_cast<uint32_t>(peer_->world_node().NumEntries());
  status.directory_size = static_cast<uint32_t>(directory_.size());
  status.quiesced = quiesced_;
  return status;
}

ScoresReplyMessage PeerDaemon::BuildScores() const {
  ScoresReplyMessage scores;
  const graph::Subgraph& fragment = peer_->fragment();
  const std::vector<double>& local = peer_->local_scores();
  scores.entries.reserve(local.size());
  for (size_t i = 0; i < local.size(); ++i) {
    ScoreEntry entry;
    entry.page = fragment.GlobalId(static_cast<graph::Subgraph::LocalIndex>(i));
    entry.score = local[i];
    scores.entries.push_back(entry);
  }
  scores.world_score = peer_->world_score();
  return scores;
}

}  // namespace net
}  // namespace jxp
