#include "net/peer_daemon.h"

#include <errno.h>
#include <poll.h>
#include <string.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <utility>

#include "core/state_io.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"

namespace jxp {
namespace net {

namespace {

/// Process-wide jxp.net.* instrumentation (see docs/METRICS.md). Counters
/// mirror DaemonStats; the gauge tracks the directory size.
struct NetMetrics {
  obs::Counter accepts;
  obs::Counter dials;
  obs::Counter dial_failures;
  obs::Counter meetings_initiated;
  obs::Counter meetings_accepted;
  obs::Counter meetings_declined;
  obs::Counter meeting_failures;
  obs::Counter truncations_detected;
  obs::Counter corruptions_detected;
  obs::Counter bytes_sent;
  obs::Counter bytes_received;
  obs::Counter wasted_bytes;
  obs::Counter gossip_exchanges;
  obs::Counter directory_evictions;
  obs::Counter checkpoints;
  obs::Counter protocol_errors;
  obs::Gauge directory_peers;
};

NetMetrics& GetNetMetrics() {
  static NetMetrics* metrics = [] {
    auto* m = new NetMetrics();
    obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
    m->accepts = reg.GetCounter("jxp.net.accepts");
    m->dials = reg.GetCounter("jxp.net.dials");
    m->dial_failures = reg.GetCounter("jxp.net.dial_failures");
    m->meetings_initiated = reg.GetCounter("jxp.net.meetings_initiated");
    m->meetings_accepted = reg.GetCounter("jxp.net.meetings_accepted");
    m->meetings_declined = reg.GetCounter("jxp.net.meetings_declined");
    m->meeting_failures = reg.GetCounter("jxp.net.meeting_failures");
    m->truncations_detected = reg.GetCounter("jxp.net.truncations_detected");
    m->corruptions_detected = reg.GetCounter("jxp.net.corruptions_detected");
    m->bytes_sent = reg.GetCounter("jxp.net.bytes_sent");
    m->bytes_received = reg.GetCounter("jxp.net.bytes_received");
    m->wasted_bytes = reg.GetCounter("jxp.net.wasted_bytes");
    m->gossip_exchanges = reg.GetCounter("jxp.net.gossip_exchanges");
    m->directory_evictions = reg.GetCounter("jxp.net.directory_evictions");
    m->checkpoints = reg.GetCounter("jxp.net.checkpoints");
    m->protocol_errors = reg.GetCounter("jxp.net.protocol_errors");
    m->directory_peers = reg.GetGauge("jxp.net.directory_peers");
    return m;
  }();
  return *metrics;
}

/// Sets SO_RCVTIMEO/SO_SNDTIMEO on a blocking socket.
void SetIoTimeouts(int fd, uint64_t timeout_ms) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(timeout_ms / 1000);
  tv.tv_usec = static_cast<suseconds_t>((timeout_ms % 1000) * 1000);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

/// Reads up to `n` bytes from a blocking socket, stopping early at EOF (the
/// torn-transfer case). Returns bytes read; a read error counts as EOF at
/// the bytes received so far.
size_t ReadUpTo(int fd, size_t n, std::vector<uint8_t>* out) {
  out->clear();
  out->reserve(n);
  uint8_t buf[16384];
  while (out->size() < n) {
    const size_t want = std::min(sizeof(buf), n - out->size());
    const ssize_t got = ::read(fd, buf, want);
    if (got < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (got == 0) break;
    out->insert(out->end(), buf, buf + got);
  }
  return out->size();
}

}  // namespace

PeerDaemon::PeerDaemon(std::unique_ptr<core::JxpPeer> peer, PeerDaemonOptions options)
    : peer_(std::move(peer)),
      options_(std::move(options)),
      directory_(static_cast<uint32_t>(peer_->id()), options_.directory_staleness_ms),
      rng_(options_.rng_seed) {}

PeerDaemon::~PeerDaemon() {
  if (loop_ == nullptr) return;
  if (listener_ && loop_->IsRegistered(listener_.get())) {
    (void)loop_->Remove(listener_.get());
  }
  for (auto& [fd, conn] : connections_) {
    if (loop_->IsRegistered(fd)) (void)loop_->Remove(fd);
  }
  if (options_.shutdown_fd >= 0 && loop_->IsRegistered(options_.shutdown_fd)) {
    (void)loop_->Remove(options_.shutdown_fd);
  }
}

Status PeerDaemon::Start(EventLoop* loop) {
  loop_ = loop;
  if (Status status =
          CreateLoopbackListener(options_.listen_port, &listener_, &bound_port_);
      !status.ok()) {
    return status;
  }
  const uint64_t now = loop_->NowMs();
  for (const GossipEntry& seed : options_.seed_peers) {
    directory_.ObserveDirect(seed.peer_id, seed.port, now);
  }
  UpdateDirectoryGauge();
  if (Status status =
          loop_->Add(listener_.get(), EPOLLIN, [this](uint32_t) { OnListenerReadable(); });
      !status.ok()) {
    return status;
  }
  if (options_.shutdown_fd >= 0) {
    if (Status status = loop_->Add(options_.shutdown_fd, EPOLLIN,
                                   [this](uint32_t) { OnShutdownFdReadable(); });
        !status.ok()) {
      return status;
    }
  }
  ArmMeetTimer();
  ArmGossipTimer();
  return Status::OK();
}

void PeerDaemon::ArmMeetTimer() {
  if (options_.meet_interval_ms == 0) return;
  loop_->AddTimer(options_.meet_interval_ms, [this] {
    if (!quiesced_) {
      PeerDirectory::Entry partner;
      if (directory_.SelectPartner(rng_, &partner)) {
        MeetPeer(partner.peer_id, partner.port);
      }
    }
    ArmMeetTimer();
  });
}

void PeerDaemon::ArmGossipTimer() {
  if (options_.gossip_interval_ms == 0) return;
  loop_->AddTimer(options_.gossip_interval_ms, [this] {
    const size_t evicted = directory_.EvictStale(loop_->NowMs());
    if (evicted > 0) {
      stats_.directory_evictions += evicted;
      if (obs::Enabled()) {
        GetNetMetrics().directory_evictions.Increment(evicted);
      }
    }
    if (!quiesced_) GossipOnce();
    UpdateDirectoryGauge();
    ArmGossipTimer();
  });
}

void PeerDaemon::UpdateDirectoryGauge() {
  if (obs::Enabled()) {
    GetNetMetrics().directory_peers.Set(static_cast<double>(directory_.size()));
  }
}

void PeerDaemon::OnListenerReadable() {
  // Level-triggered: drain every pending connection.
  while (true) {
    UniqueFd accepted;
    const Status status = AcceptConnection(listener_.get(), &accepted);
    if (!status.ok() || !accepted) return;
    ++stats_.accepts;
    if (obs::Enabled()) GetNetMetrics().accepts.Increment();
    const int fd = accepted.get();
    auto conn = std::make_unique<Connection>();
    conn->fd = std::move(accepted);
    if (!loop_->Add(fd, EPOLLIN, [this, fd](uint32_t) { OnConnectionReadable(fd); })
             .ok()) {
      continue;  // Connection dropped; UniqueFd closes it.
    }
    connections_.emplace(fd, std::move(conn));
  }
}

void PeerDaemon::CloseConnection(int fd) {
  if (loop_->IsRegistered(fd)) (void)loop_->Remove(fd);
  connections_.erase(fd);
}

void PeerDaemon::OnConnectionReadable(int fd) {
  const auto it = connections_.find(fd);
  if (it == connections_.end()) return;
  Connection& conn = *it->second;

  uint8_t buf[16384];
  while (true) {
    const ssize_t got = ::read(fd, buf, sizeof(buf));
    if (got < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      CloseConnection(fd);
      return;
    }
    if (got == 0) {
      // EOF. A partial meeting blob at EOF is the torn-transfer case: the
      // connection (or the chaos proxy) died mid-blob; salvage the prefix.
      if (conn.blob_expected > 0) OnMeetingBlobTruncated(conn);
      CloseConnection(fd);
      return;
    }
    stats_.bytes_received += static_cast<uint64_t>(got);
    if (obs::Enabled()) {
      GetNetMetrics().bytes_received.Increment(static_cast<uint64_t>(got));
    }
    size_t off = 0;
    const size_t n = static_cast<size_t>(got);
    while (off < n) {
      if (conn.blob_expected > 0) {
        // Raw blob mode: bytes bypass the frame assembler entirely.
        const size_t take = std::min(n - off, conn.blob_expected - conn.blob.size());
        conn.blob.insert(conn.blob.end(), buf + off, buf + off + take);
        off += take;
        if (conn.blob.size() == conn.blob_expected) OnMeetingBlobComplete(conn);
        continue;
      }
      const size_t consumed =
          conn.assembler.Feed(std::span<const uint8_t>(buf + off, n - off));
      off += consumed;
      if (conn.assembler.HasFrame()) {
        const bool keep = HandleFrame(conn, conn.assembler.frame_type(),
                                      conn.assembler.frame_payload());
        conn.assembler.ConsumeFrame();
        if (!keep) {
          CloseConnection(fd);
          return;
        }
      } else if (conn.assembler.failed() || consumed == 0) {
        ++stats_.protocol_errors;
        if (obs::Enabled()) GetNetMetrics().protocol_errors.Increment();
        CloseConnection(fd);
        return;
      }
    }
  }
}

bool PeerDaemon::HandleFrame(Connection& conn, uint8_t type,
                             std::span<const uint8_t> payload) {
  const uint64_t now = loop_->NowMs();
  switch (static_cast<NetMessageType>(type)) {
    case NetMessageType::kHello: {
      HelloMessage hello;
      if (!ParseHello(payload, &hello).ok()) break;
      directory_.ObserveDirect(hello.peer_id, hello.listen_port, now);
      UpdateDirectoryGauge();
      return true;
    }
    case NetMessageType::kPeerExchange: {
      PeerExchangeMessage exchange;
      if (!ParsePeerExchange(payload, &exchange).ok()) break;
      for (const GossipEntry& entry : exchange.entries) {
        directory_.ObserveGossip(entry, now);
      }
      ++stats_.gossip_exchanges;
      if (obs::Enabled()) GetNetMetrics().gossip_exchanges.Increment();
      UpdateDirectoryGauge();
      // Push-pull: answer with our own sample (tombstones included).
      PeerExchangeMessage reply;
      reply.entries = directory_.GossipSample(now, 16, rng_);
      std::vector<uint8_t> out;
      AppendPeerExchange(reply, out);
      return SendBytes(conn.fd.get(), out).ok();
    }
    case NetMessageType::kMeetingOffer: {
      MeetingHeader offer;
      if (!ParseMeetingHeader(payload, &offer).ok()) break;
      conn.meeting_sender = offer.sender_id;
      conn.decline_meeting = quiesced_;
      conn.blob.clear();
      conn.blob_expected = offer.payload_bytes;
      if (conn.blob_expected == 0) OnMeetingBlobComplete(conn);
      return true;
    }
    case NetMessageType::kGoodbye: {
      uint32_t sender = 0;
      if (!ParseSenderId(payload, &sender).ok()) break;
      directory_.MarkDeparted(sender, now);
      UpdateDirectoryGauge();
      return true;
    }
    case NetMessageType::kStatusRequest: {
      std::vector<uint8_t> out;
      AppendStatusReply(BuildStatus(), out);
      return SendBytes(conn.fd.get(), out).ok();
    }
    case NetMessageType::kScoresRequest: {
      std::vector<uint8_t> out;
      AppendScoresReply(BuildScores(), out);
      return SendBytes(conn.fd.get(), out).ok();
    }
    case NetMessageType::kCheckpointRequest: {
      const Status status = Checkpoint();
      AckMessage ack;
      ack.ok = status.ok();
      if (!status.ok()) ack.detail = status.ToString();
      std::vector<uint8_t> out;
      AppendAck(NetMessageType::kCheckpointReply, ack, out);
      return SendBytes(conn.fd.get(), out).ok();
    }
    case NetMessageType::kQuiesceRequest: {
      quiesced_ = true;
      AckMessage ack;
      ack.ok = true;
      std::vector<uint8_t> out;
      AppendAck(NetMessageType::kQuiesceReply, ack, out);
      return SendBytes(conn.fd.get(), out).ok();
    }
    case NetMessageType::kMeetCommand: {
      MeetCommandMessage command;
      if (!ParseMeetCommand(payload, &command).ok()) break;
      const MeetResultMessage result = MeetPeer(command.partner_id, command.port);
      std::vector<uint8_t> out;
      AppendMeetResult(result, out);
      return SendBytes(conn.fd.get(), out).ok();
    }
    default:
      break;
  }
  ++stats_.protocol_errors;
  if (obs::Enabled()) GetNetMetrics().protocol_errors.Increment();
  return false;
}

void PeerDaemon::ApplyBlob(Connection& conn) {
  const bool complete = conn.blob.size() == conn.blob_expected;
  const core::RemoteMeetingApply applied = peer_->ApplyMeetingBytes(conn.blob);
  if (applied.applied) {
    ++stats_.meetings_accepted;
    if (obs::Enabled()) GetNetMetrics().meetings_accepted.Increment();
  }
  if (complete && (!applied.applied || applied.salvaged)) {
    ++stats_.corruptions_detected;
    if (obs::Enabled()) GetNetMetrics().corruptions_detected.Increment();
  }
  const uint64_t wasted =
      static_cast<uint64_t>(conn.blob.size() - applied.bytes_consumed);
  stats_.wasted_bytes += wasted;
  if (obs::Enabled() && wasted > 0) GetNetMetrics().wasted_bytes.Increment(wasted);
}

void PeerDaemon::OnMeetingBlobComplete(Connection& conn) {
  const size_t blob_bytes = conn.blob.size();
  if (conn.decline_meeting) {
    ++stats_.meetings_declined;
    stats_.wasted_bytes += blob_bytes;
    if (obs::Enabled()) {
      GetNetMetrics().meetings_declined.Increment();
      GetNetMetrics().wasted_bytes.Increment(blob_bytes);
    }
    std::vector<uint8_t> out;
    AppendMeetingDecline(static_cast<uint32_t>(peer_->id()), out);
    (void)SendBytes(conn.fd.get(), out);
  } else {
    // Simultaneous-exchange semantics: serialize our message BEFORE
    // applying the initiator's, exactly like MeetMeasured snapshots both
    // views up front. This is what keeps a networked meeting bit-identical
    // to the in-process one.
    const std::vector<uint8_t> reply = peer_->EncodeMeetingBytes();
    MeetingHeader header;
    header.sender_id = static_cast<uint32_t>(peer_->id());
    header.payload_bytes = static_cast<uint32_t>(reply.size());
    std::vector<uint8_t> frame;
    AppendMeetingHeader(NetMessageType::kMeetingReply, header, frame);
    if (SendBytes(conn.fd.get(), frame).ok()) (void)SendBytes(conn.fd.get(), reply);
    ApplyBlob(conn);
  }
  conn.blob_expected = 0;
  conn.blob.clear();
  conn.blob.shrink_to_fit();
}

void PeerDaemon::OnMeetingBlobTruncated(Connection& conn) {
  ++stats_.truncations_detected;
  if (obs::Enabled()) GetNetMetrics().truncations_detected.Increment();
  if (conn.decline_meeting) {
    stats_.wasted_bytes += conn.blob.size();
    if (obs::Enabled()) GetNetMetrics().wasted_bytes.Increment(conn.blob.size());
  } else {
    // The initiator's transfer died mid-blob; the connection is gone, so no
    // reply can be sent — this side still salvages the intact prefix (the
    // one-sided application the fault model calls a truncated delivery).
    ApplyBlob(conn);
  }
  conn.blob_expected = 0;
  conn.blob.clear();
}

Status PeerDaemon::SendBytes(int fd, std::span<const uint8_t> data) {
  size_t written = 0;
  const uint64_t deadline = loop_->NowMs() + options_.io_timeout_ms;
  while (written < data.size()) {
    const ssize_t n = ::write(fd, data.data() + written, data.size() - written);
    if (n > 0) {
      written += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR) {
      return Status::IOError(std::string("write: ") + strerror(errno));
    }
    const uint64_t now = loop_->NowMs();
    if (now >= deadline) return Status::IOError("write timeout");
    pollfd pfd{fd, POLLOUT, 0};
    (void)::poll(&pfd, 1, static_cast<int>(deadline - now));
  }
  stats_.bytes_sent += written;
  if (obs::Enabled()) GetNetMetrics().bytes_sent.Increment(written);
  return Status::OK();
}

MeetResultMessage PeerDaemon::MeetPeer(uint32_t partner_id, uint16_t port) {
  MeetResultMessage result;
  ++stats_.meetings_initiated;
  ++stats_.dials;
  if (obs::Enabled()) {
    NetMetrics& metrics = GetNetMetrics();
    metrics.meetings_initiated.Increment();
    metrics.dials.Increment();
  }
  UniqueFd fd;
  if (!ConnectLoopback(port, &fd).ok()) {
    ++stats_.dial_failures;
    ++stats_.meeting_failures;
    if (obs::Enabled()) {
      GetNetMetrics().dial_failures.Increment();
      GetNetMetrics().meeting_failures.Increment();
    }
    return result;
  }
  SetIoTimeouts(fd.get(), options_.io_timeout_ms);

  // Encode before any exchange: the initiator's message is a snapshot of
  // its pre-meeting state (simultaneous-exchange semantics).
  const std::vector<uint8_t> message = peer_->EncodeMeetingBytes();
  std::vector<uint8_t> frames;
  HelloMessage hello;
  hello.peer_id = static_cast<uint32_t>(peer_->id());
  hello.listen_port = advertised_port();
  AppendHello(hello, frames);
  MeetingHeader offer;
  offer.sender_id = hello.peer_id;
  offer.payload_bytes = static_cast<uint32_t>(message.size());
  AppendMeetingHeader(NetMessageType::kMeetingOffer, offer, frames);
  if (!WriteAll(fd.get(), frames).ok() || !WriteAll(fd.get(), message).ok()) {
    ++stats_.meeting_failures;
    if (obs::Enabled()) GetNetMetrics().meeting_failures.Increment();
    return result;
  }
  const uint64_t sent = frames.size() + message.size();
  result.bytes_sent = sent;
  stats_.bytes_sent += sent;
  if (obs::Enabled()) GetNetMetrics().bytes_sent.Increment(sent);

  uint8_t type = 0;
  std::vector<uint8_t> payload;
  if (!ReadFrameBlocking(fd.get(), &type, &payload).ok()) {
    // The transfer (or the proxy) died before any reply frame — our own
    // message may have been cut; the responder does the salvaging.
    ++stats_.meeting_failures;
    if (obs::Enabled()) GetNetMetrics().meeting_failures.Increment();
    return result;
  }
  stats_.bytes_received += wire::kFrameHeaderBytes + payload.size();
  if (obs::Enabled()) {
    GetNetMetrics().bytes_received.Increment(wire::kFrameHeaderBytes + payload.size());
  }
  if (static_cast<NetMessageType>(type) == NetMessageType::kMeetingDecline) {
    result.declined = true;
    return result;
  }
  MeetingHeader reply;
  if (static_cast<NetMessageType>(type) != NetMessageType::kMeetingReply ||
      !ParseMeetingHeader(payload, &reply).ok()) {
    ++stats_.protocol_errors;
    ++stats_.meeting_failures;
    if (obs::Enabled()) {
      GetNetMetrics().protocol_errors.Increment();
      GetNetMetrics().meeting_failures.Increment();
    }
    return result;
  }
  directory_.ObserveDirect(reply.sender_id, port, loop_->NowMs());

  std::vector<uint8_t> blob;
  const size_t received = ReadUpTo(fd.get(), reply.payload_bytes, &blob);
  result.bytes_received = received;
  stats_.bytes_received += received;
  if (obs::Enabled()) GetNetMetrics().bytes_received.Increment(received);
  const bool complete = received == reply.payload_bytes;
  if (!complete) {
    ++stats_.truncations_detected;
    if (obs::Enabled()) GetNetMetrics().truncations_detected.Increment();
  }
  const core::RemoteMeetingApply applied = peer_->ApplyMeetingBytes(blob);
  result.applied = applied.applied;
  result.salvaged = applied.salvaged || !complete;
  if (complete && (!applied.applied || applied.salvaged)) {
    ++stats_.corruptions_detected;
    if (obs::Enabled()) GetNetMetrics().corruptions_detected.Increment();
  }
  result.bytes_wasted = received - applied.bytes_consumed;
  stats_.wasted_bytes += result.bytes_wasted;
  if (obs::Enabled() && result.bytes_wasted > 0) {
    GetNetMetrics().wasted_bytes.Increment(result.bytes_wasted);
  }
  return result;
}

void PeerDaemon::GossipOnce() {
  PeerDirectory::Entry partner;
  if (!directory_.SelectPartner(rng_, &partner)) return;
  ++stats_.dials;
  if (obs::Enabled()) GetNetMetrics().dials.Increment();
  UniqueFd fd;
  if (!ConnectLoopback(partner.port, &fd).ok()) {
    ++stats_.dial_failures;
    if (obs::Enabled()) GetNetMetrics().dial_failures.Increment();
    // An unreachable peer is evidence of departure; the tombstone keeps
    // gossip from re-suggesting it until it reappears first-hand.
    directory_.MarkDeparted(partner.peer_id, loop_->NowMs());
    UpdateDirectoryGauge();
    return;
  }
  SetIoTimeouts(fd.get(), options_.io_timeout_ms);
  const uint64_t now = loop_->NowMs();
  std::vector<uint8_t> frames;
  HelloMessage hello;
  hello.peer_id = static_cast<uint32_t>(peer_->id());
  hello.listen_port = advertised_port();
  AppendHello(hello, frames);
  PeerExchangeMessage exchange;
  exchange.entries = directory_.GossipSample(now, 16, rng_);
  AppendPeerExchange(exchange, frames);
  if (!WriteAll(fd.get(), frames).ok()) return;
  stats_.bytes_sent += frames.size();
  if (obs::Enabled()) GetNetMetrics().bytes_sent.Increment(frames.size());

  uint8_t type = 0;
  std::vector<uint8_t> payload;
  if (!ReadFrameBlocking(fd.get(), &type, &payload).ok()) return;
  PeerExchangeMessage reply;
  if (static_cast<NetMessageType>(type) != NetMessageType::kPeerExchange ||
      !ParsePeerExchange(payload, &reply).ok()) {
    return;
  }
  stats_.bytes_received += wire::kFrameHeaderBytes + payload.size();
  for (const GossipEntry& entry : reply.entries) {
    directory_.ObserveGossip(entry, loop_->NowMs());
  }
  ++stats_.gossip_exchanges;
  if (obs::Enabled()) GetNetMetrics().gossip_exchanges.Increment();
  UpdateDirectoryGauge();
}

Status PeerDaemon::Checkpoint() {
  if (options_.state_path.empty()) {
    return Status::FailedPrecondition("no state path configured");
  }
  const Status status = core::SavePeerState(*peer_, options_.state_path);
  if (status.ok()) {
    ++stats_.checkpoints;
    if (obs::Enabled()) GetNetMetrics().checkpoints.Increment();
  }
  return status;
}

void PeerDaemon::OnShutdownFdReadable() {
  // One read only: the fd may be a blocking pipe, and a drain loop would
  // block the loop thread once the signal byte is consumed.
  uint8_t drain[16];
  (void)!::read(options_.shutdown_fd, drain, sizeof(drain));
  BeginShutdown();
}

void PeerDaemon::BeginShutdown() {
  if (shutdown_begun_) return;
  shutdown_begun_ = true;
  // Quiesce first: meetings in flight on other connections decline from
  // here on, so the checkpoint below is the peer's final state.
  quiesced_ = true;
  if (!options_.state_path.empty()) (void)Checkpoint();
  if (options_.goodbye_on_shutdown) {
    std::vector<uint8_t> goodbye;
    AppendGoodbye(static_cast<uint32_t>(peer_->id()), goodbye);
    for (const PeerDirectory::Entry& entry : directory_.AlivePeers()) {
      if (entry.port == 0) continue;
      UniqueFd fd;
      if (!ConnectLoopback(entry.port, &fd).ok()) continue;
      SetIoTimeouts(fd.get(), std::min<uint64_t>(options_.io_timeout_ms, 1000));
      (void)WriteAll(fd.get(), goodbye);
    }
  }
  loop_->Stop();
}

StatusReplyMessage PeerDaemon::BuildStatus() const {
  StatusReplyMessage status;
  status.peer_id = static_cast<uint32_t>(peer_->id());
  status.num_meetings = peer_->num_meetings();
  status.meetings_accepted = stats_.meetings_accepted;
  status.local_pages = static_cast<uint32_t>(peer_->fragment().NumLocalPages());
  status.world_entries = static_cast<uint32_t>(peer_->world_node().NumEntries());
  status.directory_size = static_cast<uint32_t>(directory_.size());
  status.quiesced = quiesced_;
  return status;
}

ScoresReplyMessage PeerDaemon::BuildScores() const {
  ScoresReplyMessage scores;
  const graph::Subgraph& fragment = peer_->fragment();
  const std::vector<double>& local = peer_->local_scores();
  scores.entries.reserve(local.size());
  for (size_t i = 0; i < local.size(); ++i) {
    ScoreEntry entry;
    entry.page = fragment.GlobalId(static_cast<graph::Subgraph::LocalIndex>(i));
    entry.score = local[i];
    scores.entries.push_back(entry);
  }
  scores.world_score = peer_->world_score();
  return scores;
}

}  // namespace net
}  // namespace jxp
