#include "net/peer_directory.h"

#include <algorithm>

namespace jxp {
namespace net {

void PeerDirectory::ObserveDirect(uint32_t peer_id, uint16_t port, uint64_t now_ms) {
  if (peer_id == self_id_) return;
  Entry& entry = entries_[peer_id];
  entry.peer_id = peer_id;
  entry.port = port;
  entry.last_heard_ms = now_ms;
  entry.departed = false;  // First-hand contact beats any tombstone.
}

void PeerDirectory::ObserveGossip(const GossipEntry& gossiped, uint64_t now_ms) {
  if (gossiped.peer_id == self_id_) return;
  // Rumors at or beyond the staleness horizon are worthless: the entry
  // would be evicted on sight, and accepting it could resurrect a
  // tombstone that eviction bookkeeping already settled.
  if (gossiped.age_ms >= staleness_ms_) return;
  const uint64_t heard_ms = now_ms >= gossiped.age_ms ? now_ms - gossiped.age_ms : 0;

  auto it = entries_.find(gossiped.peer_id);
  if (it == entries_.end()) {
    // Unknown peer: adopt the rumor, tombstoned or not. (A departed rumor
    // about an unknown peer is still worth keeping — it stops us from
    // adopting a staler "alive" rumor later.)
    Entry entry;
    entry.peer_id = gossiped.peer_id;
    entry.port = gossiped.port;
    entry.last_heard_ms = heard_ms;
    entry.departed = gossiped.departed;
    entries_.emplace(gossiped.peer_id, entry);
    return;
  }
  Entry& entry = it->second;
  if (entry.departed) return;  // Sticky: gossip never resurrects.
  if (gossiped.departed) {
    // Departure propagates regardless of relative freshness.
    entry.departed = true;
    entry.last_heard_ms = std::max(entry.last_heard_ms, heard_ms);
    return;
  }
  if (heard_ms > entry.last_heard_ms) {
    entry.port = gossiped.port;
    entry.last_heard_ms = heard_ms;
  }
}

void PeerDirectory::MarkDeparted(uint32_t peer_id, uint64_t now_ms) {
  if (peer_id == self_id_) return;
  Entry& entry = entries_[peer_id];
  entry.peer_id = peer_id;
  entry.departed = true;
  entry.last_heard_ms = now_ms;
}

size_t PeerDirectory::EvictStale(uint64_t now_ms) {
  size_t evicted = 0;
  for (auto it = entries_.begin(); it != entries_.end();) {
    const Entry& entry = it->second;
    const uint64_t age = now_ms >= entry.last_heard_ms ? now_ms - entry.last_heard_ms : 0;
    if (!entry.departed && age >= staleness_ms_) {
      it = entries_.erase(it);
      ++evicted;
    } else {
      ++it;
    }
  }
  return evicted;
}

std::vector<GossipEntry> PeerDirectory::GossipSample(uint64_t now_ms,
                                                     size_t max_entries,
                                                     Random& rng) const {
  std::vector<GossipEntry> all;
  all.reserve(entries_.size());
  for (const auto& [id, entry] : entries_) {
    GossipEntry out;
    out.peer_id = entry.peer_id;
    out.port = entry.port;
    out.age_ms = static_cast<uint32_t>(
        now_ms >= entry.last_heard_ms ? now_ms - entry.last_heard_ms : 0);
    out.departed = entry.departed;
    all.push_back(out);
  }
  if (all.size() <= max_entries) return all;
  // Partial Fisher-Yates: a uniform sample, deterministic under the stream.
  for (size_t i = 0; i < max_entries; ++i) {
    const size_t j = i + static_cast<size_t>(rng.NextBounded(all.size() - i));
    std::swap(all[i], all[j]);
  }
  all.resize(max_entries);
  return all;
}

std::vector<PeerDirectory::Entry> PeerDirectory::AlivePeers() const {
  std::vector<Entry> alive;
  for (const auto& [id, entry] : entries_) {
    if (!entry.departed) alive.push_back(entry);
  }
  return alive;
}

bool PeerDirectory::SelectPartner(Random& rng, Entry* out) const {
  const std::vector<Entry> alive = AlivePeers();
  if (alive.empty()) return false;
  *out = alive[static_cast<size_t>(rng.NextBounded(alive.size()))];
  return true;
}

const PeerDirectory::Entry* PeerDirectory::Find(uint32_t peer_id) const {
  const auto it = entries_.find(peer_id);
  return it == entries_.end() ? nullptr : &it->second;
}

size_t PeerDirectory::num_alive() const {
  size_t n = 0;
  for (const auto& [id, entry] : entries_) {
    if (!entry.departed) ++n;
  }
  return n;
}

}  // namespace net
}  // namespace jxp
