#include "net/event_loop.h"

#include <errno.h>
#include <fcntl.h>
#include <string.h>
#include <sys/epoll.h>
#include <unistd.h>

#include <algorithm>
#include <limits>
#include <utility>

#include "common/check.h"

namespace jxp {
namespace net {

EventLoop::EventLoop() : epoch_(std::chrono::steady_clock::now()) {
  const int ep = ::epoll_create1(EPOLL_CLOEXEC);
  JXP_CHECK(ep >= 0);
  epoll_.reset(ep);

  int pipe_fds[2];
  JXP_CHECK(::pipe2(pipe_fds, O_CLOEXEC | O_NONBLOCK) == 0);
  wakeup_reader_.reset(pipe_fds[0]);
  wakeup_writer_.reset(pipe_fds[1]);
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = wakeup_reader_.get();
  JXP_CHECK(::epoll_ctl(epoll_.get(), EPOLL_CTL_ADD, wakeup_reader_.get(), &ev) == 0);
}

EventLoop::~EventLoop() = default;

uint64_t EventLoop::NowMs() const {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::milliseconds>(
                                   std::chrono::steady_clock::now() - epoch_)
                                   .count());
}

Status EventLoop::Add(int fd, uint32_t events, FdCallback callback) {
  if (fds_.count(fd) != 0) {
    return Status::AlreadyExists("fd already registered");
  }
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_.get(), EPOLL_CTL_ADD, fd, &ev) < 0) {
    return Status::IOError(std::string("epoll_ctl(ADD): ") + strerror(errno));
  }
  fds_.emplace(fd, std::move(callback));
  return Status::OK();
}

Status EventLoop::Modify(int fd, uint32_t events) {
  if (fds_.count(fd) == 0) return Status::NotFound("fd not registered");
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_.get(), EPOLL_CTL_MOD, fd, &ev) < 0) {
    return Status::IOError(std::string("epoll_ctl(MOD): ") + strerror(errno));
  }
  return Status::OK();
}

Status EventLoop::Remove(int fd) {
  if (fds_.erase(fd) == 0) return Status::NotFound("fd not registered");
  if (::epoll_ctl(epoll_.get(), EPOLL_CTL_DEL, fd, nullptr) < 0) {
    return Status::IOError(std::string("epoll_ctl(DEL): ") + strerror(errno));
  }
  return Status::OK();
}

EventLoop::TimerId EventLoop::AddTimer(uint64_t delay_ms, TimerCallback callback) {
  const TimerId id = next_timer_id_++;
  const uint64_t deadline = NowMs() + delay_ms;
  wheel_[SlotOf(deadline)].push_back(Timer{id, deadline, std::move(callback)});
  ++pending_timers_;
  return id;
}

void EventLoop::CancelTimer(TimerId id) {
  for (auto& slot : wheel_) {
    for (auto it = slot.begin(); it != slot.end(); ++it) {
      if (it->id == id) {
        slot.erase(it);
        --pending_timers_;
        return;
      }
    }
  }
}

void EventLoop::FireExpiredTimers(uint64_t now_ms) {
  if (pending_timers_ == 0) {
    last_tick_ = now_ms / kTickMs;
    return;
  }
  const uint64_t now_tick = now_ms / kTickMs;
  // Sweep at most one full wheel revolution: every slot that could hold an
  // expired timer is covered, and deadlines further out re-park in place.
  const uint64_t first = last_tick_ + 1;
  const uint64_t span = now_tick >= first ? now_tick - first + 1 : 0;
  const uint64_t sweeps = std::min<uint64_t>(span, kWheelSlots);
  // Expired callbacks may AddTimer (re-arm); collect first, then run, so a
  // re-armed timer landing in a swept slot is not fired in the same pass.
  std::vector<Timer> expired;
  for (uint64_t i = 0; i < sweeps; ++i) {
    auto& slot = wheel_[static_cast<size_t>((first + i) % kWheelSlots)];
    for (auto it = slot.begin(); it != slot.end();) {
      if (it->deadline_ms <= now_ms) {
        expired.push_back(std::move(*it));
        it = slot.erase(it);
        --pending_timers_;
      } else {
        ++it;
      }
    }
  }
  last_tick_ = now_tick;
  std::sort(expired.begin(), expired.end(), [](const Timer& a, const Timer& b) {
    return a.deadline_ms != b.deadline_ms ? a.deadline_ms < b.deadline_ms
                                          : a.id < b.id;
  });
  for (Timer& timer : expired) timer.callback();
}

int EventLoop::TimeoutUntilNextTimer(uint64_t now_ms, int fallback_ms) const {
  if (pending_timers_ == 0) return fallback_ms;
  uint64_t earliest = std::numeric_limits<uint64_t>::max();
  for (const auto& slot : wheel_) {
    for (const Timer& timer : slot) earliest = std::min(earliest, timer.deadline_ms);
  }
  if (earliest <= now_ms) return 0;
  const uint64_t wait = earliest - now_ms;
  const uint64_t cap = fallback_ms < 0 ? std::numeric_limits<int>::max()
                                       : static_cast<uint64_t>(fallback_ms);
  return static_cast<int>(std::min(wait, cap));
}

bool EventLoop::RunOnce(int max_wait_ms) {
  if (stopped_) return false;
  const int timeout = TimeoutUntilNextTimer(NowMs(), max_wait_ms);

  epoll_event events[64];
  int n;
  do {
    n = ::epoll_wait(epoll_.get(), events, 64, timeout);
  } while (n < 0 && errno == EINTR);
  JXP_CHECK(n >= 0);

  for (int i = 0; i < n; ++i) {
    const int fd = events[i].data.fd;
    if (fd == wakeup_reader_.get()) {
      uint8_t drain[64];
      while (::read(fd, drain, sizeof(drain)) > 0) {
      }
      stopped_ = true;
      continue;
    }
    // Re-check registration: an earlier callback this round may have
    // removed this fd.
    const auto it = fds_.find(fd);
    if (it == fds_.end()) continue;
    it->second(events[i].events);
  }

  FireExpiredTimers(NowMs());
  return !stopped_;
}

void EventLoop::Run() {
  while (RunOnce(/*max_wait_ms=*/200)) {
  }
}

void EventLoop::Stop() {
  const uint8_t byte = 1;
  // Write is async-signal-safe; a full pipe still wakes the reader.
  [[maybe_unused]] const ssize_t rc = ::write(wakeup_writer_.get(), &byte, 1);
}

}  // namespace net
}  // namespace jxp
