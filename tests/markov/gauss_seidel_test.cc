#include "markov/gauss_seidel.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "graph/generators.h"
#include "pagerank/pagerank.h"

namespace jxp {
namespace markov {
namespace {

TEST(GaussSeidelTest, MatchesPowerIterationOnWebGraph) {
  Random rng(5);
  const graph::Graph g = graph::BarabasiAlbert(500, 3, rng);
  const SparseMatrix m = pagerank::BuildLinkMatrix(g);
  const std::vector<double> uniform(m.NumStates(), 1.0 / static_cast<double>(m.NumStates()));
  PowerIterationOptions options;
  options.tolerance = 1e-13;
  options.max_iterations = 2000;
  const PowerIterationResult power =
      StationaryDistribution(m, uniform, uniform, {}, options);
  const PowerIterationResult gs = GaussSeidelStationary(m, uniform, uniform, {}, options);
  ASSERT_TRUE(power.converged);
  ASSERT_TRUE(gs.converged);
  for (size_t i = 0; i < m.NumStates(); ++i) {
    EXPECT_NEAR(gs.distribution[i], power.distribution[i], 1e-9) << "state " << i;
  }
}

TEST(GaussSeidelTest, HandlesDanglingStates) {
  SparseMatrixBuilder builder(3);
  builder.Add(0, 1, 1.0);
  builder.Add(1, 2, 1.0);
  // State 2 dangling.
  const SparseMatrix m = builder.Build();
  const std::vector<double> uniform(3, 1.0 / 3);
  PowerIterationOptions options;
  options.tolerance = 1e-13;
  const PowerIterationResult power =
      StationaryDistribution(m, uniform, uniform, {}, options);
  const PowerIterationResult gs = GaussSeidelStationary(m, uniform, uniform, {}, options);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(gs.distribution[i], power.distribution[i], 1e-10);
  }
}

TEST(GaussSeidelTest, HandlesSelfLoops) {
  SparseMatrixBuilder builder(2);
  builder.Add(0, 0, 0.9);
  builder.Add(0, 1, 0.1);
  builder.Add(1, 0, 1.0);
  const SparseMatrix m = builder.Build();
  const std::vector<double> uniform(2, 0.5);
  PowerIterationOptions options;
  options.tolerance = 1e-14;
  const PowerIterationResult power =
      StationaryDistribution(m, uniform, uniform, {}, options);
  const PowerIterationResult gs = GaussSeidelStationary(m, uniform, uniform, {}, options);
  EXPECT_NEAR(gs.distribution[0], power.distribution[0], 1e-10);
}

TEST(GaussSeidelTest, FewerSweepsOnSlowlyMixingChain) {
  // A long directed cycle mixes slowly (second eigenvalue magnitude ~1), so
  // power iteration contracts only by the damping factor per sweep, while
  // forward Gauss-Seidel propagates mass along the whole cycle within one
  // sweep. This is the regime (real Web graphs are slowly mixing) where the
  // in-place solvers from the efficient-PageRank literature shine.
  const size_t n = 1000;
  graph::GraphBuilder builder(n);
  for (graph::PageId u = 0; u < n; ++u) {
    builder.AddEdge(u, static_cast<graph::PageId>((u + 1) % n));
  }
  // A chord breaks the symmetry so the stationary distribution is far from
  // the uniform starting vector.
  builder.AddEdge(0, static_cast<graph::PageId>(n / 2));
  const SparseMatrix m = pagerank::BuildLinkMatrix(builder.Build());
  const std::vector<double> uniform(n, 1.0 / static_cast<double>(n));
  PowerIterationOptions options;
  options.tolerance = 1e-12;
  options.max_iterations = 2000;
  const PowerIterationResult power =
      StationaryDistribution(m, uniform, uniform, {}, options);
  const PowerIterationResult gs = GaussSeidelStationary(m, uniform, uniform, {}, options);
  ASSERT_TRUE(power.converged);
  ASSERT_TRUE(gs.converged);
  EXPECT_LT(gs.iterations * 4, power.iterations);
  for (size_t i = 0; i < n; i += 111) {
    EXPECT_NEAR(gs.distribution[i], power.distribution[i], 1e-10);
  }
}

}  // namespace
}  // namespace markov
}  // namespace jxp
