#include "markov/power_iteration.h"

#include <cmath>

#include <gtest/gtest.h>

#include "markov/dense_solver.h"
#include "markov/sparse_matrix.h"

namespace jxp {
namespace markov {
namespace {

SparseMatrix TwoStateChain(double p_stay_a, double p_stay_b) {
  SparseMatrixBuilder builder(2);
  builder.Add(0, 0, p_stay_a);
  builder.Add(0, 1, 1 - p_stay_a);
  builder.Add(1, 1, p_stay_b);
  builder.Add(1, 0, 1 - p_stay_b);
  return builder.Build();
}

TEST(SparseMatrixTest, BuildAndAccess) {
  SparseMatrixBuilder builder(3);
  builder.Add(0, 1, 0.5);
  builder.Add(0, 2, 0.25);
  builder.Add(0, 1, 0.25);  // Accumulates onto (0,1).
  SparseMatrix m = builder.Build();
  EXPECT_EQ(m.NumStates(), 3u);
  EXPECT_EQ(m.NumEntries(), 2u);
  EXPECT_DOUBLE_EQ(m.RowSum(0), 1.0);
  EXPECT_DOUBLE_EQ(m.RowSum(1), 0.0);
  ASSERT_EQ(m.Row(0).size(), 2u);
  EXPECT_EQ(m.Row(0)[0].column, 1u);
  EXPECT_DOUBLE_EQ(m.Row(0)[0].weight, 0.75);
}

TEST(SparseMatrixTest, LeftMultiply) {
  SparseMatrix m = TwoStateChain(0.5, 1.0);
  std::vector<double> x = {1.0, 0.0};
  std::vector<double> y(2);
  m.LeftMultiply(x, y);
  EXPECT_DOUBLE_EQ(y[0], 0.5);
  EXPECT_DOUBLE_EQ(y[1], 0.5);
}

TEST(PowerIterationTest, UndampedTwoStateChain) {
  // Stationary distribution of the chain (a->b with 0.5, b->a with 0.25):
  // pi = (1/3, 2/3).
  SparseMatrix m = TwoStateChain(0.5, 0.75);
  PowerIterationOptions options;
  options.damping = 1.0;
  options.tolerance = 1e-14;
  PowerIterationResult result = StationaryDistribution(m, options);
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(result.distribution[0], 1.0 / 3, 1e-10);
  EXPECT_NEAR(result.distribution[1], 2.0 / 3, 1e-10);
}

TEST(PowerIterationTest, MatchesDenseSolverOnRandomChain) {
  // A small dense chain with an ergodic structure.
  SparseMatrixBuilder builder(5);
  const double rows[5][5] = {
      {0.1, 0.2, 0.3, 0.2, 0.2},
      {0.25, 0.25, 0.25, 0.15, 0.10},
      {0.0, 0.5, 0.0, 0.5, 0.0},
      {0.3, 0.0, 0.3, 0.0, 0.4},
      {0.2, 0.2, 0.2, 0.2, 0.2},
  };
  for (uint32_t i = 0; i < 5; ++i) {
    for (uint32_t j = 0; j < 5; ++j) {
      if (rows[i][j] > 0) builder.Add(i, j, rows[i][j]);
    }
  }
  SparseMatrix m = builder.Build();
  PowerIterationOptions options;
  options.damping = 1.0;
  options.tolerance = 1e-14;
  PowerIterationResult iterative = StationaryDistribution(m, options);
  ASSERT_TRUE(iterative.converged);
  auto exact = ExactStationaryDistribution(ToDense(m));
  ASSERT_TRUE(exact.ok()) << exact.status();
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_NEAR(iterative.distribution[i], exact.value()[i], 1e-10) << "state " << i;
  }
}

TEST(PowerIterationTest, DanglingMassRedistributed) {
  // State 1 is dangling; its mass goes to the dangling distribution.
  SparseMatrixBuilder builder(2);
  builder.Add(0, 1, 1.0);
  SparseMatrix m = builder.Build();
  const std::vector<double> teleport = {0.5, 0.5};
  const std::vector<double> dangling = {1.0, 0.0};  // All dangling mass to 0.
  PowerIterationOptions options;
  options.damping = 0.85;
  options.tolerance = 1e-14;
  PowerIterationResult result =
      StationaryDistribution(m, teleport, dangling, {}, options);
  ASSERT_TRUE(result.converged);
  // Fixpoint: x0 = 0.85 * x1 + 0.15 * 0.5 ; x1 = 0.85 * x0 + 0.15 * 0.5.
  // Symmetric => x0 = x1 = 0.5.
  EXPECT_NEAR(result.distribution[0], 0.5, 1e-10);
  EXPECT_NEAR(result.distribution[1], 0.5, 1e-10);
}

TEST(PowerIterationTest, DistributionSumsToOne) {
  SparseMatrixBuilder builder(4);
  builder.Add(0, 1, 1.0);
  builder.Add(1, 2, 0.7);
  builder.Add(1, 0, 0.3);
  // States 2, 3 dangling.
  SparseMatrix m = builder.Build();
  PowerIterationOptions options;
  PowerIterationResult result = StationaryDistribution(m, options);
  double sum = 0;
  for (double v : result.distribution) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(PowerIterationTest, InitDoesNotChangeFixpoint) {
  SparseMatrix m = TwoStateChain(0.3, 0.6);
  PowerIterationOptions options;
  options.damping = 0.85;
  options.tolerance = 1e-14;
  const std::vector<double> teleport = {0.5, 0.5};
  PowerIterationResult from_uniform =
      StationaryDistribution(m, teleport, teleport, {}, options);
  PowerIterationResult from_skewed =
      StationaryDistribution(m, teleport, teleport, {0.99, 0.01}, options);
  EXPECT_NEAR(from_uniform.distribution[0], from_skewed.distribution[0], 1e-10);
}

TEST(MeanFirstPassageTest, TwoStateClosedForm) {
  // m_{0->1} = 1 / P(0->1) for a two-state chain leaving 0 with prob q.
  const double q = 0.25;
  std::vector<std::vector<double>> p = {{1 - q, q}, {0.5, 0.5}};
  auto m = MeanFirstPassageTimes(p, 1);
  ASSERT_TRUE(m.ok()) << m.status();
  EXPECT_NEAR(m.value()[0], 1.0 / q, 1e-10);
  EXPECT_DOUBLE_EQ(m.value()[1], 0.0);
}

TEST(MeanFirstPassageTest, MatchesSimulationStructure) {
  // Line chain 0 -> 1 -> 2 (absorbing-ish walk to the right with return).
  std::vector<std::vector<double>> p = {
      {0.5, 0.5, 0.0},
      {0.25, 0.25, 0.5},
      {0.0, 0.0, 1.0},
  };
  auto m = MeanFirstPassageTimes(p, 2);
  ASSERT_TRUE(m.ok()) << m.status();
  // Solve by hand: m1 = 1 + 0.25 m0 + 0.25 m1; m0 = 1 + 0.5 m0 + 0.5 m1
  // => m0 = 2 + m1; m1 = 1 + 0.25(2 + m1) + 0.25 m1 => 0.5 m1 = 1.5 => m1=3.
  EXPECT_NEAR(m.value()[1], 3.0, 1e-10);
  EXPECT_NEAR(m.value()[0], 5.0, 1e-10);
}

TEST(DenseSolverTest, SolvesRegularSystem) {
  std::vector<std::vector<double>> a = {{2, 1}, {1, 3}};
  std::vector<double> b = {3, 5};
  auto x = SolveLinearSystem(a, b);
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR(x.value()[0], 0.8, 1e-12);
  EXPECT_NEAR(x.value()[1], 1.4, 1e-12);
}

TEST(DenseSolverTest, ReportsSingularSystem) {
  std::vector<std::vector<double>> a = {{1, 2}, {2, 4}};
  std::vector<double> b = {1, 2};
  auto x = SolveLinearSystem(a, b);
  EXPECT_FALSE(x.ok());
  EXPECT_EQ(x.status().code(), StatusCode::kFailedPrecondition);
}

TEST(DenseSolverTest, RejectsDimensionMismatch) {
  auto x = SolveLinearSystem({{1, 2}}, {1, 2});
  EXPECT_FALSE(x.ok());
  EXPECT_EQ(x.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace markov
}  // namespace jxp
